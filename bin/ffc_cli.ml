(* ffc — command-line driver for the feedback flow control reproduction.

   Subcommands:
     ffc exp [ID | all]      regenerate paper experiments
     ffc analyze ...         run the design matrix on a topology
     ffc simulate ...        packet-level simulation of a topology
     ffc topology ...        emit canonical topologies in the DSL *)

open Cmdliner
open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_faults

(* ------------------------------------------------------------------ *)
(* Shared argument converters                                          *)
(* ------------------------------------------------------------------ *)

let topology_term =
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "topology"; "t" ] ~docv:"FILE" ~doc:"Topology description file (DSL).")
  in
  let preset =
    Arg.(
      value
      & opt (some string) None
      & info [ "preset"; "p" ] ~docv:"NAME"
          ~doc:
            "Built-in topology: single:N, parking-lot:HOPS, \
             multi-parking-lot:LOTS:HOPS, chain:HOPS:CONNS, star:LEGS, \
             dumbbell:L:R.")
  in
  let build file preset =
    match (file, preset) with
    | Some path, None -> (
      let text = In_channel.with_open_text path In_channel.input_all in
      match Dsl.parse text with
      | Ok net -> Ok net
      | Error { Dsl.line; message } ->
        Error (Printf.sprintf "%s:%d: %s" path line message))
    | None, Some spec -> (
      let fail () =
        Error
          (Printf.sprintf
             "bad preset %S (try single:4, parking-lot:3, multi-parking-lot:2:3, \
              chain:2:3, star:3, dumbbell:2:2)"
             spec)
      in
      match String.split_on_char ':' spec with
      | [ "single"; n ] -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> Ok (Topologies.single ~n ())
        | _ -> fail ())
      | [ "parking-lot"; h ] -> (
        match int_of_string_opt h with
        | Some hops when hops > 0 -> Ok (Topologies.parking_lot ~hops ())
        | _ -> fail ())
      | [ "multi-parking-lot"; l; h ] -> (
        match (int_of_string_opt l, int_of_string_opt h) with
        | Some lots, Some hops when lots > 0 && hops > 0 ->
          Ok (Topologies.multi_parking_lot ~lots ~hops ())
        | _ -> fail ())
      | [ "chain"; h; c ] -> (
        match (int_of_string_opt h, int_of_string_opt c) with
        | Some hops, Some conns when hops > 0 && conns > 0 ->
          Ok (Topologies.chain ~hops ~conns ())
        | _ -> fail ())
      | [ "star"; l ] -> (
        match int_of_string_opt l with
        | Some legs when legs > 0 -> Ok (Topologies.star ~legs ())
        | _ -> fail ())
      | [ "dumbbell"; l; r ] -> (
        match (int_of_string_opt l, int_of_string_opt r) with
        | Some left, Some right when left > 0 && right > 0 ->
          Ok (Topologies.dumbbell ~left ~right ())
        | _ -> fail ())
      | _ -> fail ())
    | None, None -> Error "provide --topology FILE or --preset NAME"
    | Some _, Some _ -> Error "--topology and --preset are mutually exclusive"
  in
  Term.(const build $ file $ preset)

(* Adjuster spec: "additive:ETA:BETA", "proportional:ETA:BETA",
   "fair-rate:ETA:BETA", "decbit:ETA:BETA". *)
let parse_adjuster spec =
  match String.split_on_char ':' spec with
  | [ kind; eta; beta ] -> (
    match (float_of_string_opt eta, float_of_string_opt beta) with
    | Some eta, Some beta -> (
      try
        match kind with
        | "additive" -> Ok (Rate_adjust.additive ~eta ~beta)
        | "proportional" -> Ok (Rate_adjust.proportional ~eta ~beta)
        | "fair-rate" -> Ok (Rate_adjust.fair_rate_limd ~eta ~beta)
        | "decbit" -> Ok (Rate_adjust.decbit_window ~eta ~beta)
        | _ -> Error (Printf.sprintf "unknown adjuster kind %S" kind)
      with Invalid_argument msg -> Error msg)
    | _ -> Error (Printf.sprintf "bad adjuster numbers in %S" spec))
  | _ -> Error (Printf.sprintf "bad adjuster spec %S (want kind:eta:beta)" spec)

let adjusters_term =
  Arg.(
    value
    & opt_all string [ "additive:0.1:0.5" ]
    & info [ "adjuster"; "a" ] ~docv:"SPEC"
        ~doc:
          "Rate-adjustment algorithm kind:eta:beta (kinds: additive, \
           proportional, fair-rate, decbit). Give one, or one per \
           connection for a heterogeneous population.")

(* All exit decisions go through the one shared contract — analyze, exp
   and serve must agree on what each number means. *)
let exit_err msg = Exit_code.fail msg

(* -j/--jobs: degree of parallelism for the work pool.  Output is
   byte-identical whatever the value — results are collected in input
   order and every task derives its own RNG stream. *)
let jobs_term =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run independent experiments and sweeps on up to $(docv) domains \
           (default: the hardware's recommended domain count). Output is \
           byte-identical to --jobs 1.")

let apply_jobs jobs =
  if jobs < 1 then exit_err "--jobs must be >= 1";
  Pool.set_default_jobs jobs

let resolve_adjusters specs n =
  let parsed =
    List.map
      (fun s -> match parse_adjuster s with Ok a -> a | Error e -> exit_err e)
      specs
  in
  match parsed with
  | [ single ] -> Array.make n single
  | many when List.length many = n -> Array.of_list many
  | many ->
    exit_err
      (Printf.sprintf "%d adjusters given for %d connections" (List.length many) n)

let parse_rates spec n =
  let parts = String.split_on_char ',' spec in
  let floats = List.map float_of_string_opt parts in
  if List.for_all Option.is_some floats && List.length floats = n then
    Array.of_list (List.map Option.get floats)
  else exit_err (Printf.sprintf "bad rate list %S for %d connections" spec n)

(* Fault spec: "stale:LAG[@CONNS]", "lossy:P[@CONNS]", "noise:SIGMA[@CONNS]",
   "quantize:T[@CONNS]", "dead@CONNS", "flap:PERIOD:UP@CONNS",
   "greedy:RAMP:CAP@CONNS", "gw-cut:GW:FRACTION:FROM[:UNTIL]"; CONNS is a
   comma-separated index list, omitted = every connection. *)
let parse_fault spec =
  let bad () = Error (Printf.sprintf "bad fault spec %S" spec) in
  let conns_of = function
    | None -> Ok None
    | Some s ->
      let parts = List.map int_of_string_opt (String.split_on_char ',' s) in
      if parts <> [] && List.for_all Option.is_some parts then
        Ok (Some (List.map Option.get parts))
      else bad ()
  in
  let lhs, conns =
    match String.split_on_char '@' spec with
    | [ lhs ] -> (lhs, None)
    | [ lhs; conns ] -> (lhs, Some conns)
    | _ -> ("", None)
  in
  let with_conns kind =
    Result.map
      (fun c ->
        match c with None -> Fault.everywhere kind | Some l -> Fault.on l kind)
      (conns_of conns)
  in
  match String.split_on_char ':' lhs with
  | [ "stale"; lag ] -> (
    match int_of_string_opt lag with
    | Some lag -> with_conns (Fault.Stale { lag })
    | None -> bad ())
  | [ "lossy"; p ] -> (
    match float_of_string_opt p with
    | Some p -> with_conns (Fault.Lossy { p })
    | None -> bad ())
  | [ "noise"; sigma ] -> (
    match float_of_string_opt sigma with
    | Some sigma -> with_conns (Fault.Noisy { sigma })
    | None -> bad ())
  | [ "quantize"; t ] -> (
    match float_of_string_opt t with
    | Some threshold -> with_conns (Fault.Quantized { threshold })
    | None -> bad ())
  | [ "dead" ] -> with_conns Fault.Dead
  | [ "flap"; period; up ] -> (
    match (int_of_string_opt period, int_of_string_opt up) with
    | Some period, Some up -> with_conns (Fault.Flap { period; up })
    | _ -> bad ())
  | [ "greedy"; ramp; cap ] -> (
    match (float_of_string_opt ramp, float_of_string_opt cap) with
    | Some ramp, Some cap -> with_conns (Fault.Greedy { ramp; cap })
    | _ -> bad ())
  | "gw-cut" :: rest -> (
    if conns <> None then bad ()
    else
      match rest with
      | [ gw; fraction; from_step ] | [ gw; fraction; from_step; _ ] -> (
        let until_step =
          match rest with
          | [ _; _; _; u ] -> Option.map Option.some (int_of_string_opt u)
          | _ -> Some None
        in
        match
          (int_of_string_opt gw, float_of_string_opt fraction,
           int_of_string_opt from_step, until_step)
        with
        | Some gw, Some fraction, Some from_step, Some until_step ->
          Ok (Fault.everywhere (Fault.Gateway_cut { gw; fraction; from_step; until_step }))
        | _ -> bad ())
      | _ -> bad ())
  | _ -> bad ()

let fault_term =
  Arg.(
    value
    & opt_all string []
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Inject a fault (repeatable): stale:LAG[@CONNS], lossy:P[@CONNS], \
           noise:SIGMA[@CONNS], quantize:T[@CONNS], dead@CONNS, \
           flap:PERIOD:UP@CONNS, greedy:RAMP:CAP@CONNS, \
           gw-cut:GW:FRACTION:FROM[:UNTIL]. CONNS is a comma-separated \
           connection index list; omitted means every connection.")

let fault_seed_term =
  Arg.(
    value & opt int 0
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed for the stochastic faults' split RNG streams.")

let retries_term =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"K"
        ~doc:
          "Supervised runs: retry a diverged run up to $(docv) times, halving \
           every adjuster's gain each time.")

let budget_term =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget" ] ~docv:"SECONDS"
        ~doc:"Wall-clock budget for supervised retries (checked between attempts).")

let escape_term =
  Arg.(
    value & opt float 1e12
    & info [ "escape" ] ~docv:"R"
        ~doc:
          "Divergence threshold: a run whose rate exceeds $(docv) (or goes \
           non-finite) counts as diverged.")

let resolve_plan fault_specs ~seed ~net =
  let specs =
    List.map
      (fun s -> match parse_fault s with Ok spec -> spec | Error e -> exit_err e)
      fault_specs
  in
  let plan = Fault.plan ~seed specs in
  (try Fault.validate plan ~net with Invalid_argument msg -> exit_err msg);
  plan

(* ------------------------------------------------------------------ *)
(* Observability flags                                                  *)
(* ------------------------------------------------------------------ *)

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL event trace (controller steps, supervisor verdicts, \
           fault firings, simulator deliveries) to $(docv). The trace is \
           deterministic: byte-identical for the same inputs at any --jobs.")

let metrics_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a JSON run manifest (command, subject, seeds, fault plan, \
           jobs, git revision) plus the final metrics snapshot to $(docv).")

let trace_stride_term =
  Arg.(
    value & opt int 1
    & info [ "trace-stride" ] ~docv:"N"
        ~doc:
          "Sample high-frequency trace events (controller steps, fault drops, \
           packet deliveries) every $(docv)-th occurrence (default 1 = all).")

let trace_sched_term =
  Arg.(
    value & flag
    & info [ "trace-sched" ]
        ~doc:
          "Also trace pool scheduling (chunk dispatch with per-domain \
           attribution). These events depend on --jobs and thread timing, so \
           they are excluded from the trace's byte-identity guarantee.")

let trace_det_term =
  Arg.(
    value & flag
    & info [ "trace-deterministic" ]
        ~doc:
          "Zero the trace's wall-clock timing channel: span events report \
           wall_ns=0 and alloc_w=0 and the service latency histograms record \
           zeros, so the full trace — spans included — is byte-identical \
           across runs and machines.")

(* ------------------------------------------------------------------ *)
(* Result-cache flags                                                  *)
(* ------------------------------------------------------------------ *)

let cache_term =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Memoize steady-state solves, window fixed points, Jacobian \
           columns/spectra and whole experiment cells in a content-addressed \
           on-disk cache (default directory $(b,_ffc_cache/)). Cached results \
           are byte-identical to fresh ones at any --jobs.")

let no_cache_term =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the result cache even when --cache or --cache-dir is given.")

let cache_dir_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Result-cache directory (implies --cache). Default: $(b,_ffc_cache/).")

(* Install the ambient result cache around [f] when asked.  The run's
   counters land next to the entries (last_run.json) so `ffc cache
   stats` and the CI smoke check can read the warm-run hit ratio
   without parsing a manifest.  Exit codes are decided by the caller
   after this returns, exactly as with [with_obs]. *)
let with_cache ~cache ~no_cache ~cache_dir f =
  let enabled = (cache || cache_dir <> None) && not no_cache in
  if not enabled then f ()
  else begin
    let c = Ffc_cache.Cache.create ?dir:cache_dir () in
    Fun.protect
      ~finally:(fun () -> Ffc_cache.Cache.write_run_stats c)
      (fun () -> Ffc_cache.Cache.with_cache c f)
  end

(* The manifest's cache section, from the ambient cache if one is
   installed (so [with_cache] must wrap [with_obs], which it does at
   every call site). *)
let cache_provenance () =
  match Ffc_cache.Cache.active () with
  | None -> None
  | Some c ->
    let k = Ffc_cache.Cache.counters c in
    Some
      {
        Ffc_obs.Provenance.cache_dir = Ffc_cache.Cache.dir c;
        key_schema = Ffc_cache.Key.schema_version;
        hits = k.Ffc_cache.Cache.hits;
        misses = k.Ffc_cache.Cache.misses;
        stores = k.Ffc_cache.Cache.stores;
        evictions = k.Ffc_cache.Cache.evictions;
        hit_ratio = Ffc_cache.Cache.hit_ratio k;
      }

(* Install an observability context around [f] when --trace/--metrics
   asked for one.  [f] must return (not call [exit]): Stdlib.exit does
   not unwind the stack, so the sink close and manifest write below
   would be skipped — exit decisions happen after this returns. *)
let with_obs ~command ~subject ?(adjusters = []) ?(seeds = []) ?(faults = [])
    ?(force = false) ~jobs ~trace ~metrics ~stride ~sched ~timing f =
  if stride < 1 then exit_err "--trace-stride must be >= 1";
  match (trace, metrics) with
  | None, None when not force -> f ()
  | _ ->
    let sink =
      match trace with
      | Some path -> Ffc_obs.Sink.file path
      | None -> Ffc_obs.Sink.null
    in
    let ctx = Ffc_obs.Ctx.make ~sink ~stride ~sched ~timing () in
    Fun.protect
      ~finally:(fun () ->
        (match metrics with
        | Some path ->
          let prov =
            Ffc_obs.Provenance.collect ~command ~subject ~adjusters ~seeds
              ~faults ?cache:(cache_provenance ()) ~jobs ~stride ()
          in
          let snap = Ffc_obs.Metrics.snapshot (Ffc_obs.Ctx.metrics ctx) in
          Ffc_obs.Provenance.write ~path prov ~metrics:(Some snap)
        | None -> ());
        Ffc_obs.Sink.close sink)
      (fun () ->
        Ffc_obs.Ctx.with_ctx ctx (fun () ->
            let seed = List.assoc_opt "fault" seeds in
            (match Ffc_obs.Ctx.tracing () with
            | Some c ->
              Ffc_obs.Ctx.emit c
                (Ffc_obs.Event.run_start ~cmd:command ~target:subject ?seed
                   ~stride ())
            | None -> ());
            let result = f () in
            (match Ffc_obs.Ctx.tracing () with
            | Some c -> Ffc_obs.Ctx.emit c (Ffc_obs.Event.run_end ~cmd:command ())
            | None -> ());
            result))

let exit_outcomes outcomes = Exit_code.of_outcomes outcomes

(* ------------------------------------------------------------------ *)
(* exp                                                                 *)
(* ------------------------------------------------------------------ *)

let exp_cmd =
  let id =
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc:"Experiment id or 'all'.")
  in
  let run id jobs cache no_cache cache_dir trace metrics stride sched det =
    apply_jobs jobs;
    match String.lowercase_ascii id with
    | "list" ->
      List.iter
        (fun e ->
          Printf.printf "%-4s %-60s [%s]\n" e.Ffc_experiments.Exp_common.id
            e.Ffc_experiments.Exp_common.title e.Ffc_experiments.Exp_common.paper_ref)
        Ffc_experiments.Registry.all
    | lid -> (
      let out =
        with_cache ~cache ~no_cache ~cache_dir (fun () ->
            with_obs ~command:"exp" ~subject:lid ~jobs ~trace ~metrics ~stride
              ~sched ~timing:(not det) (fun () ->
                match lid with
                | "all" -> Ok (Ffc_experiments.Registry.run_all ~jobs ())
                | _ -> Ffc_experiments.Registry.run_one id))
      in
      match out with Ok s -> print_string s | Error e -> exit_err e)
  in
  Cmd.v
    (Cmd.info "exp"
       ~doc:
         "Regenerate the paper's tables and figures (E1-E24); 'list' prints the \
          index, 'all' runs everything. With --cache, results are memoized in a \
          content-addressed store and a warm re-run replays byte-identically.")
    Term.(
      const run $ id $ jobs_term $ cache_term $ no_cache_term $ cache_dir_term
      $ trace_term $ metrics_term $ trace_stride_term $ trace_sched_term
      $ trace_det_term)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let r0_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "start"; "r0" ] ~docv:"R0"
          ~doc:"Comma-separated initial rates (default: 0.02 everywhere).")
  in
  let csv_trace_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-trace" ] ~docv:"FILE"
          ~doc:
            "Also write the individual+fair-share rate trajectory (400 steps) \
             as CSV to FILE.")
  in
  let json_term =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Report one supervised verdict per design as a JSON line \
             (machine-readable, deterministic: wall-clock time excluded, \
             floats exact). Implies supervised runs even without --fault.")
  in
  let run net_result specs r0_spec csv_trace_file fault_specs fault_seed retries
      budget escape json jobs cache no_cache cache_dir trace metrics stride sched
      det =
    apply_jobs jobs;
    match net_result with
    | Error e -> exit_err e
    | Ok net ->
      let n = Network.num_connections net in
      let adjusters = resolve_adjusters specs n in
      let r0 =
        match r0_spec with
        | None -> Array.make n 0.02
        | Some s -> parse_rates s n
      in
      if retries < 0 then exit_err "--retries must be >= 0";
      let plan = resolve_plan fault_specs ~seed:fault_seed ~net in
      let supervised =
        (not (Fault.is_empty plan)) || retries > 0 || budget <> None
        || escape <> 1e12 || json
      in
      if not json then Format.printf "%a@.@." Network.pp net;
      let subject =
        Printf.sprintf "topology(%d gw, %d conn)" (Network.num_gateways net) n
      in
      let run_designs () =
        if supervised then begin
          (* Faults or retry policy requested: run each design under the
             supervisor and report verdicts instead of the plain design
             matrix. *)
          List.map
            (fun d ->
              let c = Controller.create ~config:d.Analysis.config ~adjusters in
              let v =
                Supervisor.run ~escape ~retries ?wall_budget:budget ~plan c ~net ~r0
              in
              if json then begin
                print_endline
                  (Supervisor.verdict_to_json ~label:d.Analysis.label v);
                v.Supervisor.outcome
              end
              else begin
              Printf.printf "design %s\n" d.Analysis.label;
              List.iter (fun f -> Printf.printf "  fault    %s\n" f) v.Supervisor.faults;
              Printf.printf "  outcome  %s%s\n"
                (match v.Supervisor.outcome with
                | Controller.Converged { steps; _ } ->
                  Printf.sprintf "converged in %d steps" steps
                | Controller.Cycle { period; _ } ->
                  Printf.sprintf "limit cycle, period %d" period
                | Controller.Diverged { at_step } ->
                  Printf.sprintf "diverged at step %d" at_step
                | Controller.No_convergence _ -> "no convergence")
                (if v.Supervisor.recovered then
                   Printf.sprintf " (recovered: %d attempts, gain x%g)"
                     v.Supervisor.attempts v.Supervisor.damping
                 else if v.Supervisor.attempts > 1 then
                   Printf.sprintf " (%d attempts)" v.Supervisor.attempts
                 else "");
              (match v.Supervisor.final with
              | Some f -> Printf.printf "  rates    %s\n" (Vec.to_string f)
              | None -> ());
              (match v.Supervisor.min_ratio with
              | Some x -> Printf.printf "  min well-behaved throughput/baseline  %.4f\n" x
              | None -> ());
              print_newline ();
              v.Supervisor.outcome
              end)
            Analysis.designs
        end
        else
          List.map
            (fun report ->
              Format.printf "%a@.@." Analysis.pp_report report;
              report.Analysis.outcome)
            (Analysis.evaluate_all ~jobs ~adjusters ~net r0)
      in
      (* [run_designs] returns rather than exiting: the exit-code
         decision waits until [with_obs] has flushed the trace and
         written the manifest. *)
      let outcomes =
        with_cache ~cache ~no_cache ~cache_dir (fun () ->
            with_obs ~command:"analyze" ~subject ~adjusters:specs
              ~seeds:[ ("fault", fault_seed) ]
              ~faults:(Fault.describe plan) ~jobs ~trace ~metrics ~stride ~sched
              ~timing:(not det) run_designs)
      in
      (* The CSV trajectory export stays outside the observed region so
         the metrics snapshot reflects the analysis runs alone. *)
      (match csv_trace_file with
      | None -> ()
      | Some path ->
        let c = Controller.create ~config:Feedback.individual_fair_share ~adjusters in
        let traj = Controller.trajectory c ~net ~r0 ~steps:400 in
        let names =
          Array.init n (fun i -> (Network.connection net i).Network.conn_name)
        in
        Trace.write_file ~path (Trace.csv_of_trajectory ~names traj);
        Printf.printf "trace written to %s\n" path);
      exit_outcomes outcomes
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the design matrix (aggregate, individual+FIFO, individual+Fair \
          Share) on a topology and report convergence, fairness, robustness and \
          stability. With --fault or --retries the designs run under the fault \
          injector and damping supervisor instead. Exits 3 if any run diverged, \
          4 if any failed to converge.")
    Term.(
      const run $ topology_term $ adjusters_term $ r0_term $ csv_trace_term
      $ fault_term $ fault_seed_term $ retries_term $ budget_term $ escape_term
      $ json_term $ jobs_term $ cache_term $ no_cache_term $ cache_dir_term
      $ trace_term $ metrics_term $ trace_stride_term $ trace_sched_term
      $ trace_det_term)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let rates_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "rates"; "r" ] ~docv:"RATES"
          ~doc:
            "Comma-separated Poisson rates (one per connection, or a single \
             value broadcast to all). Defaults to a stable sub-critical \
             pattern when --flows synthesizes the topology.")
  in
  let discipline_term =
    Arg.(
      value
      & opt
          (enum
             [
               ("fifo", Ffc_desim.Netsim.Fifo);
               ("fair-share", Ffc_desim.Netsim.Fs_priority);
               ("fair-queueing", Ffc_desim.Netsim.Fair_queueing);
             ])
          Ffc_desim.Netsim.Fifo
      & info [ "discipline"; "d" ] ~docv:"DISC"
          ~doc:"Queue discipline: fifo, fair-share or fair-queueing.")
  in
  let horizon_term =
    Arg.(value & opt float 20_000. & info [ "horizon" ] ~docv:"T" ~doc:"Simulated time.")
  in
  let seed_term =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let flows_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "flows" ] ~docv:"N"
          ~doc:
            "Synthesize a disjoint parking-lot topology (3 hops per lot) with \
             about $(docv) concurrent flows instead of --topology/--preset. \
             Built for scale runs: 10^5-10^6 flows on the struct-of-arrays \
             core.")
  in
  let shards_term =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Simulate independent gateway domains in $(docv) groups over the \
             worker pool (0 = auto: a few per job). Results and traces are \
             byte-identical at any shard count.")
  in
  let scheduler_term =
    Arg.(
      value
      & opt (enum [ ("wheel", `Wheel); ("heap", `Heap) ]) `Wheel
      & info [ "scheduler" ] ~docv:"SCHED"
          ~doc:
            "Event calendar: the O(1) timing wheel or the reference binary \
             heap. The choice never affects results.")
  in
  let buffer_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "buffer" ] ~docv:"B"
          ~doc:
            "Per-gateway buffer limit: arrivals beyond $(docv) packets in \
             system are dropped (default: infinite buffers).")
  in
  let run net_result rates_spec discipline horizon seed flows shards scheduler
      buffer_limit jobs trace metrics stride sched det =
    apply_jobs jobs;
    if shards < 0 then exit_err "--shards must be >= 0";
    let net =
      match (flows, net_result) with
      | Some n, Error _ ->
        if n < 4 then exit_err "--flows must be >= 4";
        Topologies.multi_parking_lot ~mu:1. ~latency:0.05 ~lots:(n / 4) ~hops:3 ()
      | Some _, Ok _ -> exit_err "--flows and --topology/--preset are mutually exclusive"
      | None, Ok net -> net
      | None, Error e -> exit_err e
    in
    let n = Network.num_connections net in
    let rates =
      match (rates_spec, flows) with
      | Some spec, _ -> (
        match String.split_on_char ',' spec with
        | [ one ] when n > 1 -> (
          match float_of_string_opt one with
          | Some r -> Array.make n r
          | None -> exit_err (Printf.sprintf "bad rate %S" one))
        | _ -> parse_rates spec n)
      | None, Some _ ->
        (* The E27 load: long flows at 0.25, cross flows around 0.24. *)
        Array.init n (fun i ->
            if i mod 4 = 0 then 0.25 else 0.21 +. (0.03 *. float_of_int (i mod 3)))
      | None, None -> exit_err "provide --rates (or --flows for the default pattern)"
    in
    let shards = if shards = 0 then 4 * Pool.effective_jobs () else shards in
    let subject =
      match flows with
      | Some _ -> Printf.sprintf "flows:%d" n
      | None -> Printf.sprintf "net:%d-conns" n
    in
    let result =
      with_obs ~command:"simulate" ~subject
        ~seeds:[ ("sim", seed) ]
        ~jobs ~trace ~metrics ~stride ~sched ~timing:(not det)
        (fun () ->
          Ffc_desim.Netsim.run ~net ~rates ~discipline ~seed ~scheduler ~shards
            ~jobs ?buffer_limit ~horizon ())
    in
    let module N = Ffc_desim.Netsim in
    Printf.printf "horizon %g (10%% warmup), seed %d, %d shards over %d components\n"
      horizon seed shards (N.components result);
    Printf.printf "events executed: %d\n\n" (N.events result);
    if n <= 32 then begin
      Format.printf "%a@." Network.pp net;
      for a = 0 to Network.num_gateways net - 1 do
        Printf.printf "gateway %s: total mean queue %.4f\n"
          (Network.gateway net a).Network.gw_name
          (N.total_mean_queue result ~gw:a);
        List.iter
          (fun i ->
            Printf.printf "  conn %-10s Q = %-10.4f\n"
              (Network.connection net i).Network.conn_name
              (N.mean_queue result ~gw:a ~conn:i))
          (Network.connections_at_gateway net a)
      done;
      print_newline ();
      for i = 0 to n - 1 do
        Printf.printf
          "conn %-10s throughput = %-8.4f mean delay = %-8.4f (+/- %.4f)\n"
          (Network.connection net i).Network.conn_name
          (N.throughput result ~conn:i)
          (N.delay_mean result ~conn:i)
          (N.delay_ci95 result ~conn:i)
      done
    end
    else begin
      (* Scale summary: per-connection dumps would be megabytes at 10^5
         flows, so aggregate instead. *)
      let deliveries = ref 0 and drops = ref 0 in
      let tput = ref 0. and delay = ref 0. and counted = ref 0 in
      for i = 0 to n - 1 do
        deliveries := !deliveries + N.deliveries result ~conn:i;
        drops := !drops + N.drops result ~conn:i;
        tput := !tput +. N.throughput result ~conn:i;
        if N.deliveries result ~conn:i > 0 then begin
          delay := !delay +. N.delay_mean result ~conn:i;
          incr counted
        end
      done;
      Printf.printf "%d connections over %d gateways (%d independent domains)\n" n
        (Network.num_gateways net) (N.components result);
      Printf.printf "delivered  %d packets  (dropped %d)\n" !deliveries !drops;
      Printf.printf "aggregate throughput  %.2f pkts/time\n" !tput;
      if !counted > 0 then
        Printf.printf "mean end-to-end delay  %.4f (over %d delivering connections)\n"
          (!delay /. float_of_int !counted)
          !counted
    end
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Packet-level discrete-event simulation of a topology on the \
          struct-of-arrays desim core: timing-wheel scheduler, preallocated \
          packet pool, independent gateway domains sharded over the worker \
          pool with byte-identical results at any --shards/--jobs.")
    Term.(
      const run $ topology_term $ rates_term $ discipline_term $ horizon_term
      $ seed_term $ flows_term $ shards_term $ scheduler_term $ buffer_term
      $ jobs_term $ trace_term $ metrics_term $ trace_stride_term
      $ trace_sched_term $ trace_det_term)

(* ------------------------------------------------------------------ *)
(* closed-loop                                                         *)
(* ------------------------------------------------------------------ *)

let closed_loop_cmd =
  let discipline_term =
    Arg.(
      value
      & opt
          (enum
             [
               ("fifo", Ffc_closedloop.Closed_loop.Fifo);
               ("fair-share", Ffc_closedloop.Closed_loop.Fs_priority);
               ("fair-queueing", Ffc_closedloop.Closed_loop.Fair_queueing);
             ])
          Ffc_closedloop.Closed_loop.Fs_priority
      & info [ "discipline"; "d" ] ~docv:"DISC"
          ~doc:"Queue discipline: fifo, fair-share or fair-queueing.")
  in
  let style_term =
    Arg.(
      value
      & opt
          (enum
             [
               ("aggregate", Congestion.Aggregate);
               ("individual", Congestion.Individual);
             ])
          Congestion.Individual
      & info [ "style" ] ~docv:"STYLE" ~doc:"Feedback style: aggregate or individual.")
  in
  let interval_term =
    Arg.(
      value & opt float 300.
      & info [ "interval" ] ~docv:"T" ~doc:"Simulated time between rate updates.")
  in
  let updates_term =
    Arg.(value & opt int 100 & info [ "updates" ] ~docv:"K" ~doc:"Number of updates.")
  in
  let seed_term =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let run net_result specs style discipline interval updates seed =
    match net_result with
    | Error e -> exit_err e
    | Ok net ->
      let n = Network.num_connections net in
      let adjusters = resolve_adjusters specs n in
      let r =
        Ffc_closedloop.Closed_loop.run ~net ~discipline ~style
          ~signal:Signal.linear_fractional ~adjusters ~r0:(Array.make n 0.05)
          ~interval ~updates ~seed ()
      in
      Format.printf "%a@." Network.pp net;
      Printf.printf "closed loop: %d updates every %g time units\n\n" updates interval;
      (* Rate trajectories, one glyph per connection. *)
      let canvas = Ascii_plot.canvas ~width:64 ~height:14 () in
      for i = 0 to Stdlib.min (n - 1) 8 do
        Ascii_plot.plot_series canvas
          ~glyph:(Char.chr (Char.code 'a' + i))
          (Array.map (fun rates -> rates.(i)) r.Ffc_closedloop.Closed_loop.rates)
      done;
      print_string
        (Ascii_plot.render ~title:"measured-feedback rate trajectories"
           ~x_label:"update" ~y_label:"rate" canvas);
      Printf.printf "\ntail-mean rates:\n";
      Array.iteri
        (fun i rate ->
          Printf.printf "  conn %-10s %.4f\n"
            (Network.connection net i).Network.conn_name rate)
        r.Ffc_closedloop.Closed_loop.mean_tail_rates
  in
  Cmd.v
    (Cmd.info "closed-loop"
       ~doc:
         "Run flow control end-to-end over the packet simulator: rates adjust \
          from measured queue averages instead of the analytic model.")
    Term.(
      const run $ topology_term $ adjusters_term $ style_term $ discipline_term
      $ interval_term $ updates_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* topology                                                            *)
(* ------------------------------------------------------------------ *)

let topology_cmd =
  let seed_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "random" ] ~docv:"SEED" ~doc:"Emit a random topology instead.")
  in
  let run net_result seed =
    match seed with
    | Some seed ->
      let rng = Rng.create seed in
      print_string
        (Dsl.to_string (Topologies.random ~rng ~gateways:4 ~connections:5 ~max_path:3 ()))
    | None -> (
      match net_result with
      | Ok net -> print_string (Dsl.to_string net)
      | Error e -> exit_err e)
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Print a topology in the DSL format.")
    Term.(const run $ topology_term $ seed_term)

(* ------------------------------------------------------------------ *)
(* cache                                                               *)
(* ------------------------------------------------------------------ *)

let cache_cmd =
  let action =
    Arg.(
      required
      & pos 0 (some (enum [ ("stats", `Stats); ("clear", `Clear) ])) None
      & info [] ~docv:"ACTION" ~doc:"$(b,stats) or $(b,clear).")
  in
  let run action cache_dir =
    let store = Ffc_cache.Store.create ?root:cache_dir () in
    match action with
    | `Clear ->
      Ffc_cache.Store.clear store;
      Printf.printf "cleared %s\n" (Ffc_cache.Store.root store)
    | `Stats ->
      let ds = Ffc_cache.Store.disk_stats store in
      Printf.printf "cache dir   %s\n" (Ffc_cache.Store.root store);
      Printf.printf "layout      %s\n" Ffc_cache.Store.layout_version;
      Printf.printf "key schema  %s\n" Ffc_cache.Key.schema_version;
      Printf.printf "entries     %d\n" ds.Ffc_cache.Store.entries;
      Printf.printf "bytes       %d\n" ds.Ffc_cache.Store.bytes;
      List.iter
        (fun (tier, n) -> Printf.printf "  tier %-22s %d\n" tier n)
        ds.Ffc_cache.Store.tiers;
      (match Ffc_cache.Cache.read_run_stats store with
      | Some (c, ratio) ->
        (* One greppable line: the CI smoke check asserts on hit_ratio. *)
        Printf.printf
          "last run: hits=%d misses=%d stores=%d evictions=%d hit_ratio=%.6f\n"
          c.Ffc_cache.Cache.hits c.Ffc_cache.Cache.misses
          c.Ffc_cache.Cache.stores c.Ffc_cache.Cache.evictions ratio
      | None -> Printf.printf "last run: (none recorded)\n")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect ($(b,stats)) or delete ($(b,clear)) the content-addressed \
          result cache. $(b,clear) removes only the cache's own versioned \
          entry tree and run-stats file, never sibling files.")
    Term.(const run $ action $ cache_dir_term)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let socket_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Bind a Unix-domain socket at $(docv) and serve clients.")
  in
  let script_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Serve the request lines in $(docv) ($(b,-) = stdin) in-process \
             and print the replies — no socket. Blank lines and # comments \
             are skipped.")
  in
  let snapshot_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"PATH"
          ~doc:
            "Crash safety: atomically publish the service state to $(docv) \
             every --snapshot-every mutations and at shutdown; on startup, \
             recover from an existing snapshot there.")
  in
  let snapshot_every_term =
    Arg.(
      value & opt int 16
      & info [ "snapshot-every" ] ~docv:"K"
          ~doc:"Auto-snapshot every $(docv)-th committed join/leave.")
  in
  let b_ss_term =
    Arg.(
      value & opt float 0.5
      & info [ "b-ss" ] ~docv:"B" ~doc:"Steady feedback signal in (0,1).")
  in
  let epsilon_term =
    Arg.(
      value & opt float 1e-6
      & info [ "epsilon" ] ~docv:"E"
          ~doc:"Admission slack: admit only if Theorem-5 min-ratio >= 1-$(docv).")
  in
  let min_rate_term =
    Arg.(
      value & opt float 0.
      & info [ "min-rate" ] ~docv:"R"
          ~doc:"Reject a newcomer whose admitted fair rate would be below $(docv).")
  in
  let degrade_term =
    Arg.(
      value
      & opt (t3 ~sep:':' float float float) (0.5, 2., 8.)
      & info [ "degrade" ] ~docv:"INC:CACHED:SHED"
          ~doc:
            "Degradation-ladder backlog thresholds (logical seconds): full \
             resolve below INC, incremental patch below CACHED, cached \
             estimate below SHED, shed adds beyond.")
  in
  let timeout_term =
    Arg.(
      value & opt float 0.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-solve wall-clock timeout (0 = off). Leave off for \
             byte-deterministic decision logs.")
  in
  let svc_retries_term =
    Arg.(
      value & opt int 2
      & info [ "svc-retries" ] ~docv:"K"
          ~doc:
            "Retries per failed solve, with deterministic jittered \
             exponential backoff, before degrading a tier.")
  in
  let backoff_term =
    Arg.(
      value & opt float 0.05
      & info [ "backoff" ] ~docv:"SECONDS" ~doc:"Base backoff delay.")
  in
  let seed_term =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Backoff-jitter seed.")
  in
  let max_sessions_term =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Concurrent-session cap: connections past $(docv) receive one \
             shed line and are closed at accept.")
  in
  let idle_timeout_term =
    Arg.(
      value & opt float 0.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Close sessions with no traffic for $(docv) seconds (0 = never).")
  in
  let run net_result specs socket script snapshot_path snapshot_every b_ss
      epsilon min_rate (d_inc, d_cached, d_shed) timeout svc_retries backoff seed
      max_sessions idle_timeout fault_specs fault_seed retries escape jobs cache
      no_cache cache_dir trace metrics stride sched det =
    apply_jobs jobs;
    match net_result with
    | Error e -> exit_err e
    | Ok net ->
      let n = Network.num_connections net in
      let adjusters = resolve_adjusters specs n in
      let plan = resolve_plan fault_specs ~seed:fault_seed ~net in
      if svc_retries < 0 then exit_err "--svc-retries must be >= 0";
      if retries < 0 then exit_err "--retries must be >= 0";
      if max_sessions < 1 then exit_err "--max-sessions must be >= 1";
      if idle_timeout < 0. then exit_err "--idle-timeout must be >= 0";
      let config =
        {
          Ffc_service.Admission.default_config with
          b_ss;
          epsilon;
          min_rate;
          backlog_incremental = d_inc;
          backlog_cached = d_cached;
          backlog_shed = d_shed;
          timeout;
          retries = svc_retries;
          backoff_base = backoff;
          (* Really sleeping between retries only makes sense with real
             clients on a socket; script replays stay instant. *)
          sleep_backoff = script = None;
          seed;
          plan;
          sup_retries = retries;
          escape;
        }
      in
      let controller =
        Controller.create ~config:Feedback.individual_fair_share ~adjusters
      in
      let engine =
        try Ffc_service.Admission.create ~config controller ~net
        with Invalid_argument msg -> exit_err msg
      in
      let server =
        Ffc_service.Server.create ?snapshot_path ~snapshot_every engine
      in
      (match Ffc_service.Server.recover server with
      | Ok false -> ()
      | Ok true ->
        Printf.eprintf "ffc serve: recovered %d mutations (seq %d) from %s\n%!"
          (Ffc_service.Admission.mutations engine)
          (Ffc_service.Admission.seq engine)
          (Option.get snapshot_path)
      | Error e ->
        Exit_code.fail_service (Printf.sprintf "cannot recover snapshot: %s" e));
      let subject = Printf.sprintf "service(%d gw, %d conn)" (Network.num_gateways net) n in
      with_cache ~cache ~no_cache ~cache_dir (fun () ->
          (* [force]: a daemon always carries a metrics registry, even
             with no --trace/--metrics, so the protocol's live [metrics]
             and latency histograms work out of the box. *)
          with_obs ~command:"serve" ~subject ~adjusters:specs
            ~seeds:[ ("service", seed); ("fault", fault_seed) ]
            ~faults:(Fault.describe plan) ~force:true ~jobs ~trace ~metrics
            ~stride ~sched ~timing:(not det)
            (fun () ->
              match (script, socket) with
              | Some _, Some _ -> exit_err "--script and --socket are mutually exclusive"
              | None, None -> exit_err "provide --socket PATH or --script FILE"
              | Some file, None ->
                let text =
                  if file = "-" then In_channel.input_all In_channel.stdin
                  else In_channel.with_open_text file In_channel.input_all
                in
                let lines = String.split_on_char '\n' text in
                List.iter print_endline
                  (Ffc_service.Server.run_script server lines)
              | None, Some sock -> (
                try
                  Ffc_service.Server.serve ~max_sessions ~idle_timeout server
                    ~socket:sock
                with Unix.Unix_error (e, fn, _) ->
                  Exit_code.fail_service
                    (Printf.sprintf "socket %s: %s (%s)" sock
                       (Unix.error_message e) fn))))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the online gateway service: a long-lived admission-control \
          daemon over a Unix-domain socket (or an in-process --script \
          replay). Clients add/remove flows and query supervised health; \
          every add runs the Theorem-5 + spectral-radius admission test, \
          overload degrades gracefully down the full > incremental > cached \
          > shed ladder, and state snapshots atomically for crash recovery. \
          Exits 5 when recovery or the socket fails.")
    Term.(
      const run $ topology_term $ adjusters_term $ socket_term $ script_term
      $ snapshot_term $ snapshot_every_term $ b_ss_term $ epsilon_term
      $ min_rate_term $ degrade_term $ timeout_term $ svc_retries_term
      $ backoff_term $ seed_term $ max_sessions_term $ idle_timeout_term
      $ fault_term $ fault_seed_term $ retries_term $ escape_term $ jobs_term
      $ cache_term $ no_cache_term $ cache_dir_term $ trace_term $ metrics_term
      $ trace_stride_term $ trace_sched_term $ trace_det_term)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let report_cmd =
    let file_term =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"FILE"
            ~doc:"JSONL trace written by --trace ($(b,-) = stdin).")
    in
    let json_term =
      Arg.(
        value & flag
        & info [ "json" ]
            ~doc:"Emit the aggregate as one JSON line instead of a table.")
    in
    let run file json =
      let acc = Ffc_obs.Trace_report.create () in
      let feed ic =
        let rec go () =
          match In_channel.input_line ic with
          | None -> ()
          | Some line ->
            Ffc_obs.Trace_report.add_line acc line;
            go ()
        in
        go ()
      in
      (if file = "-" then feed In_channel.stdin
       else
         try In_channel.with_open_text file feed
         with Sys_error e -> exit_err e);
      if json then print_endline (Ffc_obs.Trace_report.render_json acc)
      else print_string (Ffc_obs.Trace_report.render acc)
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Aggregate a JSONL trace into a per-phase table: span counts, \
            inclusive wall time and minor allocations per phase, plus \
            service decisions tallied by tier — the numbers to cross-check \
            against the daemon's own stats counters.")
      Term.(const run $ file_term $ json_term)
  in
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Inspect JSONL traces produced by --trace (see $(b,report)).")
    [ report_cmd ]

(* ------------------------------------------------------------------ *)
(* bench                                                               *)
(* ------------------------------------------------------------------ *)

let bench_cmd =
  let diff_cmd =
    let old_term =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"OLD" ~doc:"Baseline BENCH.json.")
    in
    let new_term =
      Arg.(
        required
        & pos 1 (some string) None
        & info [] ~docv:"NEW" ~doc:"Candidate BENCH.json.")
    in
    let tolerance_term =
      Arg.(
        value
        & opt_all string []
        & info [ "tolerance" ] ~docv:"[NAME=]PCT"
            ~doc:
              "Allowed ns/run slowdown in percent: a bare $(b,PCT) sets the \
               default for every kernel (initially 100), $(b,NAME=PCT) \
               overrides one kernel (split on the last $(b,=)). Repeatable.")
    in
    let run old_path new_path tolerance_specs =
      exit (Bench_diff.run ~old_path ~new_path ~tolerance_specs)
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare the per-kernel ns/run of two BENCH.json files and print \
            the delta table. Exits 6 when any kernel slowed down past its \
            tolerance or disappeared — the CI perf-regression gate.")
      Term.(const run $ old_term $ new_term $ tolerance_term)
  in
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Benchmark bookkeeping (see $(b,diff) — the perf-regression gate).")
    [ diff_cmd ]

(* ------------------------------------------------------------------ *)
(* drive                                                               *)
(* ------------------------------------------------------------------ *)

let drive_cmd =
  let socket_term =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Socket of a running ffc serve.")
  in
  let script_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Send the raw request lines in $(docv) ($(b,-) = stdin) instead \
             of generating churn; blank lines and # comments are skipped.")
  in
  let arrivals_term =
    Arg.(
      value & opt int 64
      & info [ "arrivals" ] ~docv:"N" ~doc:"Poisson arrivals to generate.")
  in
  let rate_term =
    Arg.(
      value & opt float 4.
      & info [ "rate" ] ~docv:"LAMBDA" ~doc:"Poisson arrival rate.")
  in
  let size_dist_term =
    Arg.(
      value
      & opt string "exp:1"
      & info [ "size-dist" ] ~docv:"SPEC"
          ~doc:
            "Document-size distribution: const:S, exp:MEAN, uniform:LO:HI or \
             pareto:ALPHA:XMIN.")
  in
  let seed_term =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Churn stream seed.")
  in
  let query_every_term =
    Arg.(
      value & opt int 0
      & info [ "query-every" ] ~docv:"K"
          ~doc:"Also query supervised health every $(docv)-th request (0 = never).")
  in
  let shutdown_term =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Send a final shutdown once the churn is done.")
  in
  let wait_term =
    Arg.(
      value & opt float 5.
      & info [ "wait" ] ~docv:"SECONDS"
          ~doc:"Keep retrying the initial connect for up to $(docv) seconds.")
  in
  let clients_term =
    Arg.(
      value & opt int 1
      & info [ "clients" ] ~docv:"N"
          ~doc:
            "Multiplex the request stream over $(docv) concurrent sessions of \
             the daemon, round-robin in lockstep (each request waits for its \
             reply before the next is sent), so the global request order — \
             and the daemon's decision log — stays deterministic.")
  in
  let batch_term =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"K"
          ~doc:
            "Coalesce consecutive churn adds into batch ... end brackets of \
             up to $(docv) members — one rank-$(docv) admission solve each. A \
             whole bracket rides a single session.")
  in
  let connect ~socket ~wait =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let deadline = Unix.gettimeofday () +. wait in
    let rec go () =
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> ()
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.05;
        go ()
      | exception Unix.Unix_error (e, _, _) ->
        Exit_code.fail_service
          (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))
    in
    go ();
    (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  let run socket script arrivals rate size_dist_spec seed query_every shutdown
      wait clients batch =
    if clients < 1 then exit_err "--clients must be >= 1";
    if batch < 1 then exit_err "--batch must be >= 1";
    if batch > 1024 then exit_err "--batch must be <= 1024 (the server's bracket cap)";
    (* One connection per client session.  Requests rotate over them in
       lockstep — every request is answered before the next is sent — so
       the order the daemon reads them in is exactly the order they were
       issued, whatever session each one rides. *)
    let conns = Array.init clients (fun _ -> connect ~socket ~wait) in
    let next = ref 0 in
    let pick () =
      let c = conns.(!next) in
      next := (!next + 1) mod clients;
      c
    in
    let recv ic =
      match In_channel.input_line ic with
      | Some reply ->
        print_endline reply;
        reply
      | None -> Exit_code.fail_service "server closed the connection"
    in
    let send_on (ic, oc) line =
      output_string oc (line ^ "\n");
      flush oc;
      recv ic
    in
    let send line = send_on (pick ()) line in
    (* A batch bracket is session state, so the whole bracket rides one
       connection: write every line, then collect one reply per member
       plus the summary.  Each non-silent line inside a bracket produces
       exactly one reply (buffered adds reply at [end]), so the count is
       [lines - 1] — the opening [batch] alone stays silent. *)
    let send_batch lines =
      let ic, oc = pick () in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      flush oc;
      List.init (max 0 (List.length lines - 1)) (fun _ -> recv ic)
    in
    let send_shutdown () = ignore (send_on conns.(0) "shutdown" : string) in
    match script with
    | Some file ->
      let text =
        if file = "-" then In_channel.input_all In_channel.stdin
        else In_channel.with_open_text file In_channel.input_all
      in
      let lines = String.split_on_char '\n' text in
      (* Bracket-aware replay: a [batch ... end] unit must ride one
         session (and is pipelined — member replies only come at [end]),
         everything else rotates line by line. *)
      let bracket = ref None in
      List.iter
        (fun line ->
          let t = String.trim line in
          if t <> "" && t.[0] <> '#' then
            match !bracket with
            | None ->
              if t = "batch" then bracket := Some [ t ]
              else ignore (send t : string)
            | Some acc ->
              if List.length acc > 1025 then
                exit_err "script batch bracket exceeds the 1024-member cap"
              else if t = "end" then begin
                bracket := None;
                ignore (send_batch (List.rev (t :: acc)) : string list)
              end
              else bracket := Some (t :: acc))
        lines;
      (match !bracket with
      | Some _ ->
        prerr_endline
          "ffc drive: warning: script ends inside a batch bracket; the \
           bracket was not sent (an unterminated bracket is never applied)"
      | None -> ());
      if shutdown then send_shutdown ()
    | None ->
      let size_dist =
        match Ffc_service.Churn.parse_size_dist size_dist_spec with
        | Ok d -> d
        | Error e -> exit_err e
      in
      if arrivals < 0 then exit_err "--arrivals must be >= 0";
      if rate <= 0. then exit_err "--rate must be positive";
      let stats =
        Ffc_service.Churn.run ~query_every ~batch ~send_batch ~seed ~rate
          ~arrivals ~size_dist ~send ()
      in
      if shutdown then send_shutdown ();
      (* One greppable summary line for scripts and the CI smoke job. *)
      Printf.printf
        "drive: arrivals=%d admits=%d rejects=%d sheds=%d departures=%d \
         queries=%d errors=%d min_min_ratio=%s last_time=%s\n"
        stats.Ffc_service.Churn.arrivals stats.Ffc_service.Churn.admits
        stats.Ffc_service.Churn.rejects stats.Ffc_service.Churn.sheds
        stats.Ffc_service.Churn.departures stats.Ffc_service.Churn.queries
        stats.Ffc_service.Churn.errors
        (match stats.Ffc_service.Churn.min_min_ratio with
        | None -> "none"
        | Some r -> Ffc_obs.Jsonf.float_rt r)
        (Ffc_obs.Jsonf.float_rt stats.Ffc_service.Churn.last_time)
  in
  Cmd.v
    (Cmd.info "drive"
       ~doc:
         "Drive a running ffc serve daemon: either replay a request script \
          or generate Poisson churn with general document sizes \
          (Gromoll-Williams), removing each admitted flow once its document \
          has been served at the admitted rate. Prints every response line \
          plus a final summary. --clients N multiplexes the stream over N \
          concurrent sessions in deterministic lockstep; --batch K coalesces \
          adds into batch ... end brackets.")
    Term.(
      const run $ socket_term $ script_term $ arrivals_term $ rate_term
      $ size_dist_term $ seed_term $ query_every_term $ shutdown_term
      $ wait_term $ clients_term $ batch_term)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "ffc" ~version:"1.0.0"
      ~doc:
        "Feedback flow control: a reproduction of Shenker's SIGCOMM 1990 \
         theoretical analysis."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            exp_cmd; analyze_cmd; simulate_cmd; closed_loop_cmd; topology_cmd;
            cache_cmd; serve_cmd; drive_cmd; trace_cmd; bench_cmd;
          ]))
