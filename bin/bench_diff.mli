(** The comparator behind [ffc bench diff OLD.json NEW.json].

    Scrapes the per-kernel ["name"]/["ns_per_run"] rows out of two
    BENCH.json files (one flat JSON object per line — no JSON parser
    needed) and compares them under per-kernel slowdown tolerances. *)

val run :
  old_path:string -> new_path:string -> tolerance_specs:string list -> int
(** Print the delta table and return the process exit code:
    {!Exit_code.ok}, or {!Exit_code.regression} when any kernel slowed
    down past its tolerance or disappeared from [new_path].

    Each tolerance spec is either ["PCT"] (the default allowed slowdown
    percentage for every kernel, initially 100) or ["NAME=PCT"] for one
    kernel — split on the {e last} ['='], since kernel names may contain
    ['='].  A kernel that {e speeds up} past its tolerance is reported
    as improved but never fails the diff. *)
