(* The perf-regression comparator behind `ffc bench diff`.

   BENCH.json's "kernels" section is one flat JSON object per line,
   each carrying "name" and "ns_per_run" — exactly the fields the
   Jsonf scrapers read, so no JSON parser dependency.  Other sections
   ("scans", "obs", "sparse", ...) have no "ns_per_run" field and fall
   through the scrape, which is what makes line-by-line scanning of
   the whole file safe. *)

type kernel = { ns_per_run : float }

let parse_file path =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> Exit_code.fail e
  in
  let rows = ref [] in
  List.iter
    (fun line ->
      match
        ( Ffc_obs.Jsonf.string_field line ~key:"name",
          Ffc_obs.Jsonf.number_field line ~key:"ns_per_run" )
      with
      | Some name, Some ns -> rows := (name, { ns_per_run = ns }) :: !rows
      | _ -> ())
    (String.split_on_char '\n' text);
  if !rows = [] then
    Exit_code.fail (Printf.sprintf "%s: no kernel rows (name + ns_per_run)" path);
  List.rev !rows

(* Tolerances are percentages of allowed slowdown.  A spec is either a
   bare "PCT" (the default for every kernel) or "NAME=PCT" — split on
   the {e last} '=' because kernel names themselves contain '='
   (e.g. "ffc/desim 1000 time units (FS, rho=0.6)"). *)
type tolerances = { default : float; per_kernel : (string * float) list }

let parse_tolerances specs =
  let parse_pct spec s =
    match float_of_string_opt s with
    | Some p when Float.is_finite p && p >= 0. -> p
    | _ -> Exit_code.fail (Printf.sprintf "bad tolerance %S" spec)
  in
  List.fold_left
    (fun acc spec ->
      match String.rindex_opt spec '=' with
      | None -> { acc with default = parse_pct spec spec }
      | Some i ->
        let name = String.sub spec 0 i in
        let pct = String.sub spec (i + 1) (String.length spec - i - 1) in
        { acc with per_kernel = (name, parse_pct spec pct) :: acc.per_kernel })
    { default = 100.; per_kernel = [] }
    specs

let tolerance_for tol name =
  match List.assoc_opt name tol.per_kernel with
  | Some p -> p
  | None -> tol.default

type verdict = Ok_within | Regression | Improved | Added | Removed

let verdict_label = function
  | Ok_within -> "ok"
  | Regression -> "REGRESSION"
  | Improved -> "improved"
  | Added -> "added"
  | Removed -> "REMOVED"

type row = {
  r_name : string;
  r_old : float option;
  r_new : float option;
  r_delta_pct : float option;
  r_tol : float;
  r_verdict : verdict;
}

let diff ~tol old_rows new_rows =
  let names =
    List.sort_uniq compare (List.map fst old_rows @ List.map fst new_rows)
  in
  List.map
    (fun name ->
      let r_tol = tolerance_for tol name in
      let r_old = Option.map (fun k -> k.ns_per_run) (List.assoc_opt name old_rows) in
      let r_new = Option.map (fun k -> k.ns_per_run) (List.assoc_opt name new_rows) in
      let r_delta_pct, r_verdict =
        match (r_old, r_new) with
        | Some o, Some n when o > 0. ->
          let d = (n -. o) /. o *. 100. in
          ( Some d,
            if d > r_tol then Regression
            else if d < -.r_tol then Improved
            else Ok_within )
        | Some _, Some _ -> (None, Ok_within)
        | Some _, None -> (None, Removed)
        | None, Some _ -> (None, Added)
        | None, None -> (None, Ok_within)
      in
      { r_name = name; r_old; r_new; r_delta_pct; r_tol; r_verdict })
    names

let failed rows =
  List.exists (fun r -> r.r_verdict = Regression || r.r_verdict = Removed) rows

let ns_cell = function None -> "-" | Some ns -> Printf.sprintf "%.0f" ns

let render rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%-58s %12s %12s %9s %6s  %s\n" "kernel" "old ns/run"
       "new ns/run" "delta" "tol" "verdict");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-58s %12s %12s %9s %5.0f%%  %s\n" r.r_name
           (ns_cell r.r_old) (ns_cell r.r_new)
           (match r.r_delta_pct with
           | None -> "-"
           | Some d -> Printf.sprintf "%+.1f%%" d)
           r.r_tol
           (verdict_label r.r_verdict)))
    rows;
  let worst =
    List.fold_left
      (fun acc r ->
        match r.r_delta_pct with Some d -> Float.max acc d | None -> acc)
      Float.neg_infinity rows
  in
  let regressions =
    List.length (List.filter (fun r -> r.r_verdict = Regression) rows)
  in
  let removed = List.length (List.filter (fun r -> r.r_verdict = Removed) rows) in
  Buffer.add_string buf
    (Printf.sprintf "%d kernels compared: %d regression(s), %d removed%s\n"
       (List.length rows) regressions removed
       (if Float.is_finite worst then Printf.sprintf ", worst delta %+.1f%%" worst
        else ""));
  Buffer.contents buf

let run ~old_path ~new_path ~tolerance_specs =
  let tol = parse_tolerances tolerance_specs in
  let rows = diff ~tol (parse_file old_path) (parse_file new_path) in
  print_string (render rows);
  if failed rows then Exit_code.regression else Exit_code.ok
