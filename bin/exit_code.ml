let ok = 0
let usage = 1
let diverged = 3
let no_convergence = 4
let service_failure = 5
let regression = 6

let fail_with code msg =
  Printf.eprintf "ffc: %s\n" msg;
  exit code

let fail msg = fail_with usage msg
let fail_service msg = fail_with service_failure msg

let of_outcomes outcomes =
  let open Ffc_core in
  if List.exists (function Controller.Diverged _ -> true | _ -> false) outcomes
  then begin
    Printf.eprintf "ffc: outcome: diverged\n";
    exit diverged
  end
  else if
    List.exists
      (function Controller.No_convergence _ -> true | _ -> false)
      outcomes
  then begin
    Printf.eprintf "ffc: outcome: no convergence within the step budget\n";
    exit no_convergence
  end
