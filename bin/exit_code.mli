(** The ffc executable's exit-code contract, in one place.

    Scripts and the CI jobs branch on these numbers, so they are part of
    the CLI's public interface: 0 success, 1 usage or input error
    (cmdliner also uses 1 for its own parse errors), 3 a supervised or
    analyzed run diverged, 4 a run hit its step budget without
    converging, 5 the gateway service failed to start or recover, 6 a
    benchmark comparison found a performance regression. *)

val ok : int
val usage : int
val diverged : int
val no_convergence : int
val service_failure : int
val regression : int

val fail : string -> 'a
(** Print [ffc: msg] on stderr and exit with {!usage}. *)

val fail_service : string -> 'a
(** Print [ffc: msg] on stderr and exit with {!service_failure}. *)

val of_outcomes : Ffc_core.Controller.outcome list -> unit
(** Exit with {!diverged} or {!no_convergence} (with the verdict on
    stderr) when any outcome ended badly; return otherwise.  Converged
    and limit-cycle outcomes are successes. *)
