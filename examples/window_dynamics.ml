(* Window-based flow control: rates through Little's law.

   Real algorithms (DECbit, TCP) adjust windows, not rates.  A window w
   induces the rate r = w/d(r) — a self-consistent fixed point, because
   the round-trip delay d itself depends on the induced rates.  This
   example shows three things on a latency-asymmetric dumbbell:

   1. window control is self-limiting (huge windows cannot overload);
   2. the classic constant-window-increase algorithm is latency-unfair;
   3. a TSI window adjuster fixes the unfairness without abandoning
      windows.

     dune exec examples/window_dynamics.exe *)

open Ffc_numerics
open Ffc_topology
open Ffc_core

let net =
  Dsl.parse_exn
    "gateway bottleneck mu=1.0\n\
     gateway short-access mu=10.0 latency=0.5\n\
     gateway long-access  mu=10.0 latency=8.0\n\
     connection short path=short-access,bottleneck\n\
     connection long  path=long-access,bottleneck\n"

let config = Feedback.individual_fifo

let () =
  (* 1. Self-limitation. *)
  Printf.printf "fixed windows -> induced rates (r = w/d(r)):\n";
  List.iter
    (fun w ->
      let rates = Window.rates_of_windows config ~net ~windows:[| w; w |] in
      Printf.printf "  w = %-8g rates = %-24s bottleneck load = %.6f\n" w
        (Vec.to_string rates) (Vec.sum rates))
    [ 0.5; 2.; 20.; 200. ];
  Printf.printf "No window is large enough to overload the gateway: the queue\n";
  Printf.printf "grows until Little's law caps the rate below capacity.\n\n";

  (* 2 & 3. Window dynamics. *)
  let show name config adjuster =
    match Window.run config ~net ~adjusters:(Array.make 2 adjuster) ~w0:[| 0.5; 0.5 |] with
    | Window.Converged { windows; rates; steps } ->
      Printf.printf "%s (converged in %d steps):\n  windows = %s\n  rates   = %s\n\n"
        name steps (Vec.to_string windows) (Vec.to_string rates)
    | Window.No_convergence _ -> Printf.printf "%s: no convergence\n\n" name
    | Window.Diverged { at_step; _ } ->
      Printf.printf "%s: diverged at step %d\n\n" name at_step
  in
  show "DECbit window algorithm (constant increase, aggregate bit)"
    Feedback.aggregate_fifo
    (Window.decbit ~eta:0.05 ~beta:0.5);
  show "TSI adjuster in window space (individual signal)" config
    (Window.additive_tsi ~eta:0.1 ~beta:0.5);
  Printf.printf
    "Equal windows over unequal RTTs starve the long path (rates track\n\
     1/RTT); the TSI window adjuster converges to a larger window for the\n\
     longer path and exactly fair rates — the unfairness was never about\n\
     windows, only about the constant window increase.\n"
