(** Composable, deterministic fault plans (paper §2.4, §3.4).

    The paper's robustness analysis (Theorem 5) asks what a flow-control
    design guarantees when components misbehave.  This module describes
    {e how} they misbehave: a [plan] is a seeded list of fault [spec]s
    that the {!Injector} applies between controller iterations,
    perturbing the feedback path (stale / lossy / corrupted / quantized
    signals), the population (dead and greedy connections — the §3.4
    adversary), and the plant itself (gateway capacity cut to a fraction
    and later restored).

    Plans are data: building one performs no randomness and installs
    nothing.  All stochastic faults (loss, noise) draw from per-connection
    SplitMix64 streams derived from the plan's seed, so the same plan on
    the same network yields bit-identical trajectories wherever and
    however often it runs. *)

open Ffc_topology

type kind =
  | Stale of { lag : int }
      (** The connection adjusts using the combined signal b_i from [lag]
          steps ago ([lag >= 1]) — a feedback packet stuck in a slow
          queue.  Before step [lag], the earliest available signal (step
          0's) is used.  Delays d_i are not lagged: the model's d is the
          round-trip estimate the source already smooths. *)
  | Lossy of { p : float }
      (** With probability [p] per step, the connection's update is
          skipped entirely — the feedback packet was dropped.  [p] in
          [0, 1]; [p = 1] freezes the connection. *)
  | Noisy of { sigma : float }
      (** Additive Gaussian noise on the signal: b_i ← clamp(b_i + σZ)
          to [0, 1].  [sigma >= 0]. *)
  | Quantized of { threshold : float }
      (** DECbit-style single-bit feedback: b_i ← 0 if b_i < threshold,
          1 otherwise.  [threshold] in (0, 1). *)
  | Dead
      (** The connection never adjusts: its rate is frozen at whatever it
          was when the fault activated (here: for the whole run). *)
  | Greedy of { ramp : float; cap : float }
      (** The §3.4 adversary: ignores congestion entirely and ramps
          r ← min(cap, r + ramp) every step.  [ramp > 0]; [cap] must be
          finite and positive (the queueing layer requires finite rates;
          pick a cap several times the bottleneck capacity to model
          unbounded greed). *)
  | Gateway_cut of { gw : int; fraction : float; from_step : int; until_step : int option }
      (** Gateway [gw]'s service rate is multiplied by [fraction]
          (in (0, 1]) from step [from_step] (inclusive) until
          [until_step] (exclusive); [None] means the degradation is
          permanent — the failure special case.  Connection targets are
          ignored for this kind. *)
  | Flap of { period : int; up : int }
      (** Churn at the fault layer: the connection periodically joins
          and leaves.  In each cycle of [period] steps it is present for
          the first [up] steps (adjusting normally, climbing back from
          wherever the last departure left it) and absent for the rest
          (rate forced to 0 — it consumes nothing and ignores feedback).
          Requires [period >= 2] and [1 <= up < period].  A flapping
          peer counts as misbehaving for Theorem 5: the min-ratio
          guarantee quantifies over the connections that stay. *)

type spec = { kind : kind; conns : int list option }
(** A fault and the connections it applies to; [None] means every
    connection.  [conns] is ignored by [Gateway_cut]. *)

val everywhere : kind -> spec
(** The fault applied to all connections. *)

val on : int list -> kind -> spec
(** The fault applied to the listed connection indices. *)

type plan = { seed : int; specs : spec list }

val plan : ?seed:int -> spec list -> plan
(** Bundle specs with a seed (default 0) for the stochastic faults'
    split RNG streams. *)

val none : plan
(** The empty plan: injecting it is exactly the unfaulted iteration. *)

val is_empty : plan -> bool

val validate : plan -> net:Network.t -> unit
(** Raises [Invalid_argument] when a parameter is out of range, a
    connection or gateway index does not exist in [net], a gateway cut
    has [until_step <= from_step], or a connection is targeted by both
    [Dead] and [Greedy] (mutually exclusive misbehaviors). *)

val horizon : plan -> int
(** The first step index from which the plan's iteration map is
    time-invariant: the latest gateway-cut boundary ([until_step], or
    [from_step] for a permanent cut); 0 when no cut is scheduled.
    Supervised runs pass this as [min_steps] to
    {!Ffc_core.Controller.run_map} so a temporary fixed point under a
    transient cut is not mistaken for convergence. *)

val misbehaving : plan -> n:int -> bool array
(** Which of the [n] connections run an adversarial algorithm ([Dead] or
    [Greedy]) under the plan.  Theorem 5's guarantee quantifies over the
    {e complement}: the well-behaved connections. *)

val describe : plan -> string list
(** One human-readable line per spec (empty list for {!none}); used in
    supervisor verdicts and experiment tables. *)
