open Ffc_numerics
open Ffc_topology
open Ffc_core

type cut = { gw : int; fraction : float; from_step : int; until_step : int option }

type t = {
  controller : Controller.t;
  base_net : Network.t;
  plan : Fault.plan;
  trivial : bool;
  (* Compiled per-connection tables (length = num_connections). *)
  lag : int array;  (* 0 = fresh signal; stale specs compose by max. *)
  loss_p : float array;  (* composed as independent drops: 1 - prod(1-p). *)
  sigma : float array;  (* composed as independent noises: sqrt(sum sigma^2). *)
  quant : float option array;  (* last spec wins *)
  dead : bool array;
  greedy : (float * float) option array;  (* (ramp, cap) *)
  flap : (int * int) option array;  (* (period, up): last spec wins *)
  cuts : cut list;
  loss_rng : Rng.t array;
  noise_rng : Rng.t array;
  (* Ring of true (pre-perturbation) combined signals, one slot per step
     back to the deepest lag. *)
  history : Vec.t array;
  mutable next_step : int;
  mutable cur_net : Network.t;
  mutable cur_active : bool array;  (* cuts.(j) active at the current step *)
}

let compile_conns n = function None -> List.init n Fun.id | Some l -> l

let create ?(plan = Fault.none) controller ~net =
  Fault.validate plan ~net;
  let n = Network.num_connections net in
  if Array.length (Controller.adjusters controller) <> n then
    invalid_arg "Injector.create: adjuster count does not match the network";
  let lag = Array.make n 0 in
  let loss_keep = Array.make n 1. in
  let var = Array.make n 0. in
  let quant = Array.make n None in
  let dead = Array.make n false in
  let greedy = Array.make n None in
  let flap = Array.make n None in
  let cuts = ref [] in
  List.iter
    (fun { Fault.kind; conns } ->
      let each f = List.iter f (compile_conns n conns) in
      match kind with
      | Fault.Stale { lag = l } -> each (fun i -> lag.(i) <- max lag.(i) l)
      | Fault.Lossy { p } -> each (fun i -> loss_keep.(i) <- loss_keep.(i) *. (1. -. p))
      | Fault.Noisy { sigma } -> each (fun i -> var.(i) <- var.(i) +. (sigma *. sigma))
      | Fault.Quantized { threshold } -> each (fun i -> quant.(i) <- Some threshold)
      | Fault.Dead -> each (fun i -> dead.(i) <- true)
      | Fault.Greedy { ramp; cap } -> each (fun i -> greedy.(i) <- Some (ramp, cap))
      | Fault.Gateway_cut { gw; fraction; from_step; until_step } ->
        cuts := { gw; fraction; from_step; until_step } :: !cuts
      | Fault.Flap { period; up } -> each (fun i -> flap.(i) <- Some (period, up)))
    plan.Fault.specs;
  let cuts = List.rev !cuts in
  (* Independent split streams per connection, in a fixed order that
     depends only on the plan seed and the network size — never on how
     many draws any sibling makes. *)
  let base = Rng.create plan.Fault.seed in
  let loss_rng = Array.init n (fun _ -> Rng.split base) in
  let noise_rng = Array.init n (fun _ -> Rng.split base) in
  let max_lag = Array.fold_left max 0 lag in
  {
    controller;
    base_net = net;
    plan;
    trivial = Fault.is_empty plan;
    lag;
    loss_p = Array.map (fun keep -> 1. -. keep) loss_keep;
    sigma = Array.map sqrt var;
    quant;
    dead;
    greedy;
    flap;
    cuts;
    loss_rng;
    noise_rng;
    history = Array.make (max_lag + 1) [||];
    next_step = 0;
    cur_net = net;
    cur_active = Array.make (List.length cuts) false;
  }

let plan t = t.plan
let steps_taken t = t.next_step

let cut_active c k =
  k >= c.from_step && (match c.until_step with None -> true | Some u -> k < u)

let degraded_net base cuts ~active =
  let net = ref base in
  List.iteri
    (fun j c ->
      if active.(j) then
        let mu = (Network.gateway !net c.gw).Network.mu *. c.fraction in
        net := Network.with_mu !net ~gw:c.gw ~mu)
    cuts;
  !net

let net_at t k =
  let active = Array.of_list (List.map (fun c -> cut_active c k) t.cuts) in
  degraded_net t.base_net t.cuts ~active

(* Refresh the cached degraded network only when a cut crosses one of
   its step boundaries — the common step pays two integer compares per
   cut. *)
let refresh_net t k =
  let changed = ref false in
  List.iteri
    (fun j c ->
      let a = cut_active c k in
      if a <> t.cur_active.(j) then begin
        t.cur_active.(j) <- a;
        changed := true;
        Ffc_obs.Ctx.incr_named "injector.cuts";
        match Ffc_obs.Ctx.tracing () with
        | Some ctx ->
          Ffc_obs.Ctx.emit ctx
            (Ffc_obs.Event.fault_cut ~step:k ~gw:c.gw ~active:a)
        | None -> ()
      end)
    t.cuts;
  if !changed then t.cur_net <- degraded_net t.base_net t.cuts ~active:t.cur_active

let clamp01 x = Float.max 0. (Float.min 1. x)

let step t ~step:k rates =
  Ffc_obs.Ctx.incr_injector_steps ();
  if t.trivial then begin
    t.next_step <- k + 1;
    Controller.step t.controller ~net:t.base_net rates
  end
  else begin
    if k <> t.next_step then
      invalid_arg
        (Printf.sprintf "Injector.step: step %d out of order (expected %d)" k
           t.next_step);
    refresh_net t k;
    let obs =
      match Ffc_obs.Ctx.tracing () with
      | Some c when Ffc_obs.Ctx.sample c k -> Some c
      | Some _ | None -> None
    in
    let b, d =
      Feedback.evaluate (Controller.config t.controller) ~net:t.cur_net ~rates
    in
    let hist_len = Array.length t.history in
    t.history.(k mod hist_len) <- b;
    let adjusters = Controller.adjusters t.controller in
    let next =
      Array.mapi
        (fun i r ->
          (* Per-connection draws happen unconditionally for every
             connection carrying a stochastic fault, so each stream's
             position depends only on the step index — composition with
             dead/greedy overrides cannot shift a neighbor's draws. *)
          let dropped =
            t.loss_p.(i) > 0. && Rng.uniform t.loss_rng.(i) < t.loss_p.(i)
          in
          let noise =
            if t.sigma.(i) > 0. then t.sigma.(i) *. Rng.gaussian t.noise_rng.(i)
            else 0.
          in
          match t.flap.(i) with
          | Some (period, up) when k mod period >= up ->
            (* Absent phase: the peer has left — rate pinned to 0.  The
               boundary steps (departure at phase [up], rejoin at phase
               0) are the observable churn events. *)
            if k mod period = up then begin
              Ffc_obs.Ctx.incr_named "injector.flaps";
              match obs with
              | Some c ->
                Ffc_obs.Ctx.emit c (Ffc_obs.Event.fault_flap ~step:k ~conn:i ~present:false)
              | None -> ()
            end;
            0.
          | flapping -> (
            (match flapping with
            | Some (period, _) when k mod period = 0 && k > 0 -> (
              match obs with
              | Some c ->
                Ffc_obs.Ctx.emit c (Ffc_obs.Event.fault_flap ~step:k ~conn:i ~present:true)
              | None -> ())
            | _ -> ());
            if t.dead.(i) then r
            else
              match t.greedy.(i) with
            | Some (ramp, cap) -> Float.min cap (r +. ramp)
            | None ->
              if dropped then begin
                Ffc_obs.Ctx.incr_injector_drops ();
                (match obs with
                | Some c ->
                  Ffc_obs.Ctx.emit c (Ffc_obs.Event.fault_drop ~step:k ~conn:i)
                | None -> ());
                r
              end
              else begin
                (* Perturbation order: staleness picks which true signal
                   the connection sees, noise corrupts it, quantization
                   collapses the corrupted value to one bit. *)
                let bi =
                  if t.lag.(i) = 0 then b.(i)
                  else t.history.(max 0 (k - t.lag.(i)) mod hist_len).(i)
                in
                let bi = if noise <> 0. then clamp01 (bi +. noise) else bi in
                let bi =
                  match t.quant.(i) with
                  | None -> bi
                  | Some threshold -> if bi < threshold then 0. else 1.
                in
                Float.max 0. (r +. Rate_adjust.eval adjusters.(i) ~r ~b:bi ~d:d.(i))
              end))
        rates
    in
    t.next_step <- k + 1;
    next
  end

let map t k r = step t ~step:k r
