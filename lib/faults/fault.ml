open Ffc_topology

type kind =
  | Stale of { lag : int }
  | Lossy of { p : float }
  | Noisy of { sigma : float }
  | Quantized of { threshold : float }
  | Dead
  | Greedy of { ramp : float; cap : float }
  | Gateway_cut of { gw : int; fraction : float; from_step : int; until_step : int option }
  | Flap of { period : int; up : int }

type spec = { kind : kind; conns : int list option }

let everywhere kind = { kind; conns = None }
let on conns kind = { kind; conns = Some conns }

type plan = { seed : int; specs : spec list }

let plan ?(seed = 0) specs = { seed; specs }
let none = { seed = 0; specs = [] }
let is_empty p = p.specs = []

let validate { specs; seed = _ } ~net =
  let nc = Network.num_connections net in
  let ng = Network.num_gateways net in
  let check_conns = function
    | None -> ()
    | Some [] -> invalid_arg "Fault.validate: empty connection target list"
    | Some conns ->
      List.iter
        (fun i ->
          if i < 0 || i >= nc then
            invalid_arg (Printf.sprintf "Fault.validate: connection %d out of range" i))
        conns
  in
  let dead = Array.make nc false
  and greedy = Array.make nc false
  and flap = Array.make nc false in
  let mark tbl conns =
    let targets = match conns with None -> List.init nc Fun.id | Some l -> l in
    List.iter (fun i -> tbl.(i) <- true) targets
  in
  List.iter
    (fun { kind; conns } ->
      check_conns conns;
      match kind with
      | Stale { lag } ->
        if lag < 1 then invalid_arg "Fault.validate: stale lag must be >= 1"
      | Lossy { p } ->
        if not (p >= 0. && p <= 1.) then
          invalid_arg "Fault.validate: loss probability must be in [0,1]"
      | Noisy { sigma } ->
        if not (sigma >= 0.) then invalid_arg "Fault.validate: noise sigma must be >= 0"
      | Quantized { threshold } ->
        if not (threshold > 0. && threshold < 1.) then
          invalid_arg "Fault.validate: quantization threshold must be in (0,1)"
      | Dead -> mark dead conns
      | Greedy { ramp; cap } ->
        if not (ramp > 0.) then invalid_arg "Fault.validate: greedy ramp must be > 0";
        if not (cap > 0. && Float.is_finite cap) then
          invalid_arg "Fault.validate: greedy cap must be finite and positive";
        mark greedy conns
      | Gateway_cut { gw; fraction; from_step; until_step } ->
        if gw < 0 || gw >= ng then
          invalid_arg (Printf.sprintf "Fault.validate: gateway %d out of range" gw);
        if not (fraction > 0. && fraction <= 1.) then
          invalid_arg "Fault.validate: cut fraction must be in (0,1]";
        if from_step < 0 then invalid_arg "Fault.validate: cut from_step must be >= 0";
        (match until_step with
        | Some u when u <= from_step ->
          invalid_arg "Fault.validate: cut until_step must exceed from_step"
        | Some _ | None -> ())
      | Flap { period; up } ->
        if period < 2 then invalid_arg "Fault.validate: flap period must be >= 2";
        if up < 1 || up >= period then
          invalid_arg "Fault.validate: flap up must satisfy 1 <= up < period";
        mark flap conns)
    specs;
  for i = 0 to nc - 1 do
    if dead.(i) && greedy.(i) then
      invalid_arg
        (Printf.sprintf "Fault.validate: connection %d is both dead and greedy" i);
    (* Flap claims the peer's whole presence; composing it with another
       whole-algorithm override is contradictory. *)
    if flap.(i) && (dead.(i) || greedy.(i)) then
      invalid_arg
        (Printf.sprintf
           "Fault.validate: connection %d is both flapping and dead/greedy" i)
  done

let horizon { specs; seed = _ } =
  List.fold_left
    (fun acc { kind; conns = _ } ->
      match kind with
      | Gateway_cut { from_step; until_step; _ } ->
        Int.max acc (match until_step with Some u -> u | None -> from_step)
      (* A flap never becomes time-invariant; its runs settle into limit
         cycles (caught by cycle detection), not fixed points, so it
         contributes nothing to the convergence-suppression horizon. *)
      | Stale _ | Lossy _ | Noisy _ | Quantized _ | Dead | Greedy _ | Flap _ -> acc)
    0 specs

let misbehaving { specs; seed = _ } ~n =
  let out = Array.make n false in
  List.iter
    (fun { kind; conns } ->
      match kind with
      | Dead | Greedy _ | Flap _ ->
        let targets = match conns with None -> List.init n Fun.id | Some l -> l in
        List.iter (fun i -> if i >= 0 && i < n then out.(i) <- true) targets
      | Stale _ | Lossy _ | Noisy _ | Quantized _ | Gateway_cut _ -> ())
    specs;
  out

let describe { specs; seed = _ } =
  let targets = function
    | None -> "all"
    | Some conns -> String.concat "," (List.map string_of_int conns)
  in
  List.map
    (fun { kind; conns } ->
      match kind with
      | Stale { lag } -> Printf.sprintf "stale(lag=%d)@%s" lag (targets conns)
      | Lossy { p } -> Printf.sprintf "lossy(p=%g)@%s" p (targets conns)
      | Noisy { sigma } -> Printf.sprintf "noisy(sigma=%g)@%s" sigma (targets conns)
      | Quantized { threshold } ->
        Printf.sprintf "quantized(thresh=%g)@%s" threshold (targets conns)
      | Dead -> Printf.sprintf "dead@%s" (targets conns)
      | Greedy { ramp; cap } ->
        Printf.sprintf "greedy(ramp=%g,cap=%g)@%s" ramp cap (targets conns)
      | Gateway_cut { gw; fraction; from_step; until_step } ->
        Printf.sprintf "gw-cut(gw=%d,x%g,from=%d%s)" gw fraction from_step
          (match until_step with
          | None -> ",permanent"
          | Some u -> Printf.sprintf ",until=%d" u)
      | Flap { period; up } ->
        Printf.sprintf "flap(period=%d,up=%d)@%s" period up (targets conns))
    specs
