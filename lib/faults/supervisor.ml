open Ffc_numerics
open Ffc_core

type verdict = {
  outcome : Controller.outcome;
  attempts : int;
  damping : float;
  faults : string list;
  final : Vec.t option;
  baselines : Vec.t option;
  min_ratio : float option;
  recovered : bool;
  total_steps : int;
  wall_seconds : float;
}

(* Deterministic JSON rendering of a verdict: model values only —
   [wall_seconds] is deliberately excluded so two runs with identical
   inputs render identical bytes (same contract as the trace events).
   Numbers go through [Jsonf] so parsing the text recovers the exact
   doubles. *)
let verdict_to_json ?label v =
  let module J = Ffc_obs.Jsonf in
  let buf = Buffer.create 256 in
  let field ?(first = false) k value =
    if not first then Buffer.add_char buf ',';
    J.add_escaped buf k;
    Buffer.add_char buf ':';
    Buffer.add_string buf value
  in
  let vec = function
    | None -> "null"
    | Some v ->
      let b = Buffer.create (Array.length v * 12) in
      Buffer.add_char b '[';
      Array.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (J.float_json x))
        v;
      Buffer.add_char b ']';
      Buffer.contents b
  in
  let strings l =
    "[" ^ String.concat "," (List.map J.string l) ^ "]"
  in
  Buffer.add_char buf '{';
  (match label with
  | Some l ->
    field ~first:true "label" (J.string l);
    field "outcome" (J.string (Controller.outcome_label v.outcome))
  | None -> field ~first:true "outcome" (J.string (Controller.outcome_label v.outcome)));
  (* One numeric slot per outcome, as in the ctrl.outcome trace event:
     convergence step, cycle period, divergence step, or 0. *)
  let steps =
    match v.outcome with
    | Controller.Converged { steps; _ } -> steps
    | Controller.Cycle { period; _ } -> period
    | Controller.Diverged { at_step } -> at_step
    | Controller.No_convergence _ -> 0
  in
  field "steps" (string_of_int steps);
  field "attempts" (string_of_int v.attempts);
  field "damping" (J.float_json v.damping);
  field "recovered" (string_of_bool v.recovered);
  field "total_steps" (string_of_int v.total_steps);
  field "faults" (strings v.faults);
  field "final" (vec v.final);
  field "baselines" (vec v.baselines);
  field "min_ratio"
    (match v.min_ratio with None -> "null" | Some x -> J.float_json x);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Scale every adjustment by [factor] — the "halve the gain" retry.
   The damped algorithm has the same zero set, so its declared b_SS
   (and with it the reservation baseline) is unchanged. *)
let damped factor controller =
  if factor = 1. then controller
  else
    let adjusters =
      Array.map
        (fun adj ->
          let b_ss = Rate_adjust.declared_b_ss adj in
          Rate_adjust.make
            ~name:(Printf.sprintf "damped(%gx %s)" factor (Rate_adjust.name adj))
            ?b_ss
            (fun ~r ~b ~d -> factor *. Rate_adjust.eval adj ~r ~b ~d))
        (Controller.adjusters controller)
    in
    Controller.create ~config:(Controller.config controller) ~adjusters

let reservation_baselines controller ~net =
  let adjusters = Controller.adjusters controller in
  let b_ss = Array.map Rate_adjust.declared_b_ss adjusters in
  if Array.for_all Option.is_some b_ss then
    Some
      (Robustness.baselines
         ~signal:(Controller.config controller).Feedback.signal
         ~b_ss:(Array.map Option.get b_ss) ~net)
  else None

let orbit_mean orbit =
  let n = Array.length orbit.(0) in
  let acc = Array.make n 0. in
  Array.iter (Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x)) orbit;
  Array.map (fun s -> s /. float_of_int (Array.length orbit)) acc

(* Tail mean of a non-convergent run: keep iterating the same injector
   (its histories and RNG streams are already positioned at [from_step])
   and average, stopping early if the orbit leaves the finite range. *)
let tail_mean inj ~from_step ~window last =
  let acc = Array.copy last in
  let count = ref 1 in
  let r = ref last in
  (try
     for j = 0 to window - 2 do
       let next = Injector.step inj ~step:(from_step + j) !r in
       if Array.exists (fun x -> not (Float.is_finite x)) next then raise Exit;
       Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x) next;
       incr count;
       r := next
     done
   with Exit | Failure _ -> ());
  Array.map (fun s -> s /. float_of_int !count) acc

let run ?tol ?(max_steps = 20_000) ?max_period ?(escape = 1e12) ?(retries = 3)
    ?(retry_cycles = false) ?wall_budget ?(tail_window = 128) ?(plan = Fault.none)
    controller ~net ~r0 =
  Fault.validate plan ~net;
  let t0 = Unix.gettimeofday () in
  let n = Array.length r0 in
  let well_behaved =
    let bad = Fault.misbehaving plan ~n in
    Array.map not bad
  in
  let budget_left () =
    match wall_budget with
    | None -> true
    | Some budget -> Unix.gettimeofday () -. t0 < budget
  in
  let rec attempt a total_steps =
    let damping = Float.pow 0.5 (float_of_int a) in
    (match Ffc_obs.Ctx.tracing () with
    | Some ctx ->
      Ffc_obs.Ctx.emit ctx (Ffc_obs.Event.sup_attempt ~attempt:a ~damping)
    | None -> ());
    let c = damped damping controller in
    let inj = Injector.create ~plan c ~net in
    let outcome =
      Controller.run_map ?tol ~max_steps ~min_steps:(Fault.horizon plan) ?max_period
        ~escape ~map:(Injector.map inj) ~r0 ()
    in
    let steps_used =
      match outcome with
      | Controller.Converged { steps; _ } -> steps
      | Controller.Diverged { at_step } -> at_step
      | Controller.Cycle _ | Controller.No_convergence _ -> max_steps
    in
    let total_steps = total_steps + steps_used in
    let failed =
      match outcome with
      | Controller.Diverged _ -> true
      | Controller.Cycle _ -> retry_cycles
      | Controller.Converged _ | Controller.No_convergence _ -> false
    in
    if failed && a < retries && budget_left () then attempt (a + 1) total_steps
    else begin
      let final =
        match outcome with
        | Controller.Converged { steady; _ } -> Some steady
        | Controller.Cycle { orbit; _ } -> Some (orbit_mean orbit)
        | Controller.No_convergence { last } ->
          Some (tail_mean inj ~from_step:(Injector.steps_taken inj) ~window:tail_window last)
        | Controller.Diverged _ -> None
      in
      let baselines = reservation_baselines controller ~net in
      let min_ratio =
        match (final, baselines) with
        | Some final, Some baselines ->
          let best = ref Float.infinity in
          Array.iteri
            (fun i ok ->
              if ok && baselines.(i) > 0. then
                best := Float.min !best (final.(i) /. baselines.(i)))
            well_behaved;
          if Float.is_finite !best then Some !best else None
        | _ -> None
      in
      let recovered =
        a > 0
        &&
        match outcome with
        | Controller.Converged _ -> true
        | Controller.Cycle _ -> not retry_cycles
        | Controller.Diverged _ | Controller.No_convergence _ -> false
      in
      Ffc_obs.Ctx.incr_named "supervisor.runs";
      if a > 0 then Ffc_obs.Ctx.incr_named "supervisor.retried";
      if recovered then Ffc_obs.Ctx.incr_named "supervisor.recovered";
      (match Ffc_obs.Ctx.tracing () with
      | Some ctx ->
        (* [wall_seconds] stays out of the event: wall-clock time would
           break trace byte-identity across runs. *)
        Ffc_obs.Ctx.emit ctx
          (Ffc_obs.Event.sup_verdict
             ~outcome:(Controller.outcome_label outcome)
             ~attempts:(a + 1) ~recovered ~total_steps ?min_ratio ())
      | None -> ());
      {
        outcome;
        attempts = a + 1;
        damping;
        faults = Fault.describe plan;
        final;
        baselines;
        min_ratio;
        recovered;
        total_steps;
        wall_seconds = Unix.gettimeofday () -. t0;
      }
    end
  in
  attempt 0 0
