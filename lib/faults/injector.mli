(** Stateful application of a {!Fault.plan} to the controller iteration.

    An injector wraps {!Ffc_core.Controller.step} as a step-indexed map:
    at step k it evaluates the (possibly degraded) network's feedback,
    perturbs each connection's signal per the plan — staleness reads the
    true signal recorded [lag] steps earlier, loss skips the update,
    noise and quantization corrupt the value — and applies the
    rate-adjustment algorithms, with [Dead]/[Greedy] connections
    overridden by their adversarial behaviors.

    With an empty plan {!step} delegates directly to
    [Controller.step] — the unfaulted path pays one branch.

    Determinism: all stochastic faults draw from per-connection
    SplitMix64 streams split off the plan seed at {!create}; a given
    (plan, controller, network, r0) therefore produces bit-identical
    trajectories on every run, machine, and pool schedule. *)

open Ffc_numerics
open Ffc_topology
open Ffc_core

type t

val create : ?plan:Fault.plan -> Controller.t -> net:Network.t -> t
(** Validates the plan against the network ([Invalid_argument] on
    mismatch) and compiles it.  [plan] defaults to {!Fault.none}. *)

val plan : t -> Fault.plan

val step : t -> step:int -> Vec.t -> Vec.t
(** The faulted iteration map at step [step] (0-based).  Steps must be
    taken consecutively from 0 — the stale-signal history and the
    per-connection RNG streams advance with each call — and
    [Invalid_argument] is raised on an out-of-order step (empty-plan
    injectors skip the bookkeeping entirely).  Use a fresh injector for
    a fresh trajectory. *)

val map : t -> int -> Vec.t -> Vec.t
(** [map t] is [fun k r -> step t ~step:k r] — shaped for
    {!Controller.run_map}'s [map] argument. *)

val steps_taken : t -> int
(** Number of consecutive steps taken so far. *)

val net_at : t -> int -> Network.t
(** The network as the plan degrades it at a given step: every
    [Gateway_cut] active at that step multiplies its gateway's μ by its
    fraction (cuts on the same gateway compose multiplicatively).  Pure:
    does not advance the injector. *)
