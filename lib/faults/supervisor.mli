(** Supervised controller runs: watchdogs, damping retries, verdicts.

    [run] wraps {!Ffc_core.Controller.run_map} over a fault
    {!Injector} with the policy a large stress sweep needs to degrade
    gracefully instead of dying on one pathological cell:

    - {b divergence watchdog}: inherited from [run_map] — escape
      threshold, non-finite states (NaN included), and NaN-producing
      adjusters all end an attempt as [Diverged];
    - {b bounded retry with adaptive gain damping}: a diverged attempt
      (optionally also a detected cycle) is retried with every
      adjuster's step halved — f ↦ δ·f with δ = 1/2, 1/4, … — up to a
      retry budget, restarting from [r0] with the same fault streams;
    - {b budgets}: per-attempt step cap, and an optional wall-clock
      budget checked between attempts (an attempt in flight is never
      interrupted, keeping results deterministic);
    - {b a structured verdict}: the outcome, the faults that were
      active, the retries spent, a representative final rate vector
      (steady state, cycle-orbit mean, or tail mean), and the minimum
      ratio of well-behaved throughput to the μ/N reservation baseline —
      the Theorem-5 quantity under stress. *)

open Ffc_numerics
open Ffc_topology
open Ffc_core

type verdict = {
  outcome : Controller.outcome;  (** Of the last attempt. *)
  attempts : int;  (** Runs performed: 1 + retries used. *)
  damping : float;  (** Gain multiplier of the last attempt (1.0 = undamped). *)
  faults : string list;  (** {!Fault.describe} of the active plan. *)
  final : Vec.t option;
      (** Representative final rates: the steady state, the mean of a
          cycle orbit, or the mean of the last [tail_window] iterates of
          a non-convergent run (robust verdicts for oscillating regimes
          — binary feedback, noisy signals — need the time average, not
          one arbitrary iterate).  [None] after unrecovered
          divergence. *)
  baselines : Vec.t option;
      (** μ/N reservation baselines against the {e undegraded} network,
          from the adjusters' declared steady-state signals; [None] when
          an adjuster declares none. *)
  min_ratio : float option;
      (** min over well-behaved connections of final/baseline — ≥ 1−ε is
          the Theorem-5 guarantee under stress.  Requires [final] and
          [baselines]. *)
  recovered : bool;
      (** The first attempt failed (diverged, or cycled under
          [retry_cycles]) but a damped retry reached a bounded attractor:
          a steady state, or — when cycles are not themselves retried — a
          limit cycle.  Damping shrinks the orbit below the escape
          threshold even when it cannot remove the oscillation. *)
  total_steps : int;  (** Iterations summed over attempts. *)
  wall_seconds : float;
}

val verdict_to_json : ?label:string -> verdict -> string
(** One self-contained JSON object for a verdict — the machine-readable
    form behind [analyze --json] and the gateway service's [query]
    responses.  Deterministic by construction: model values only
    ([wall_seconds] is excluded, like wall-clock time in trace events),
    floats rendered so parsing recovers the exact doubles.  The [steps]
    field carries the outcome's numeric slot (convergence step, cycle
    period, divergence step, or 0), discriminated by [outcome]. *)

val run :
  ?tol:float ->
  ?max_steps:int ->
  ?max_period:int ->
  ?escape:float ->
  ?retries:int ->
  ?retry_cycles:bool ->
  ?wall_budget:float ->
  ?tail_window:int ->
  ?plan:Fault.plan ->
  Controller.t ->
  net:Network.t ->
  r0:Vec.t ->
  verdict
(** Defaults: [retries] 3, [retry_cycles] false, [tail_window] 128, no
    wall budget, [plan] {!Fault.none}; the rest as in
    {!Controller.run}.  [wall_budget] caps elapsed seconds before each
    retry — leave it unset in deterministic sweeps. *)
