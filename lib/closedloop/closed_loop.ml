open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_desim

type discipline = Fifo | Fs_priority | Fair_queueing

type result = {
  times : float array;
  rates : float array array;
  signals : float array array;
  final_rates : float array;
  mean_tail_rates : float array;
}

let qdisc_of = function
  | Fifo -> Qdisc.Fifo
  | Fs_priority -> Qdisc.Preemptive_priority
  | Fair_queueing -> Qdisc.Fair_queueing

(* Fair Share thinning table from the *current* rate vector at a gateway:
   cumulative (class, rate) pairs; see Netsim for the open-loop analogue. *)
let fs_class_table ~local_rates ~rate =
  if rate <= 0. then [||]
  else begin
    let sorted = Vec.sorted_increasing local_rates in
    let entries = ref [] in
    let cum = ref 0. in
    Array.iteri
      (fun j threshold ->
        let increment = if j = 0 then threshold else threshold -. sorted.(j - 1) in
        if increment > 0. && threshold <= rate then begin
          cum := !cum +. increment;
          entries := (j, !cum) :: !entries
        end)
      sorted;
    Array.of_list (List.rev !entries)
  end

let draw_fs_class table rng ~rate =
  let u = Rng.uniform rng *. rate in
  let n = Array.length table in
  let rec go i =
    if i >= n - 1 then fst table.(n - 1)
    else begin
      let _, cum = table.(i) in
      if u <= cum then fst table.(i) else go (i + 1)
    end
  in
  if n = 0 then 0 else go 0

(* A capacity-based event-rate estimate sizes the timing-wheel tick:
   executed events per unit time are bounded by completions plus
   forwards at every gateway (~2 mu each) whatever the rates do. *)
let wheel_for net =
  let n_gws = Network.num_gateways net in
  let cap = ref 0. in
  for a = 0 to n_gws - 1 do
    cap := !cap +. (2. *. (Network.gateway net a).Network.mu)
  done;
  Scheduler.Wheel { tick = Scheduler.auto_tick ~events_per_time:!cap }

(* Per-gateway (connection, hop) incidence in Gamma(a) order — shared by
   the FS table refresh and the measured-queue readout. *)
let gateway_incidence net paths =
  let n_gws = Network.num_gateways net in
  Array.init n_gws (fun a ->
      Network.connections_at_gateway net a
      |> List.map (fun i ->
             let hop = ref (-1) in
             Array.iteri (fun k g -> if g = a then hop := k) paths.(i);
             (i, !hop))
      |> Array.of_list)

let run ~net ~discipline ~style ~signal ~adjusters ~r0 ~interval ~updates ~seed () =
  let n_conns = Network.num_connections net in
  let n_gws = Network.num_gateways net in
  if Array.length adjusters <> n_conns then
    invalid_arg "Closed_loop.run: adjuster count mismatch";
  if Array.length r0 <> n_conns then invalid_arg "Closed_loop.run: r0 length mismatch";
  if not (interval > 0.) then invalid_arg "Closed_loop.run: interval must be positive";
  if updates <= 0 then invalid_arg "Closed_loop.run: updates must be positive";
  Array.iter
    (fun r ->
      if (not (Float.is_finite r)) || r < 0. then
        invalid_arg "Closed_loop.run: rates must be finite and non-negative")
    r0;
  let sim = Sim.create ~scheduler:(wheel_for net) () in
  let root_rng = Rng.create seed in
  let pool = Packet.Pool.create () in
  let current_rates = Array.copy r0 in
  let paths =
    Array.init n_conns (fun i -> Array.of_list (Network.gateways_of_connection net i))
  in
  let flat = Measure.Flat.create ~paths in
  let incidence = gateway_incidence net paths in
  (* FS thinning tables per (connection, hop), refreshed at every
     control update. *)
  let class_tables = Array.map (Array.map (fun _ -> ([||] : (int * float) array))) paths in
  let refresh_class_tables () =
    if discipline = Fs_priority then
      for a = 0 to n_gws - 1 do
        let local_rates = Network.rates_at_gateway net ~rates:current_rates a in
        Array.iter
          (fun (i, hop) ->
            class_tables.(i).(hop) <-
              fs_class_table ~local_rates ~rate:current_rates.(i))
          incidence.(a)
      done
  in
  refresh_class_tables ();
  let servers = Array.make n_gws None in
  let server_of a = match servers.(a) with Some s -> s | None -> assert false in
  let class_rng = Rng.split root_rng in
  let fs = discipline = Fs_priority in
  let inject_at pkt hop =
    let i = Packet.Pool.conn pool pkt in
    let a = paths.(i).(hop) in
    Packet.Pool.set_hop pool pkt hop;
    (if fs then begin
       let table = class_tables.(i).(hop) in
       if Array.length table > 0 then
         Packet.Pool.set_klass pool pkt
           (draw_fs_class table class_rng ~rate:(Float.max 1e-12 current_rates.(i)))
       else Packet.Pool.set_klass pool pkt 0
     end);
    Measure.Flat.incr flat ~slot:(Measure.Flat.slot flat ~conn:i ~hop) ~now:(Sim.now sim);
    Server.inject (server_of a) pkt
  in
  let h_forward = Sim.register sim (fun pkt hop -> inject_at pkt hop) in
  let deliver pkt =
    let i = Packet.Pool.conn pool pkt in
    Measure.Flat.record_delay flat ~conn:i (Sim.now sim -. Packet.Pool.born pool pkt);
    Measure.Flat.count_delivery flat ~conn:i;
    Packet.Pool.free pool pkt
  in
  let h_deliver = Sim.register sim (fun pkt _ -> deliver pkt) in
  let on_depart a pkt =
    let i = Packet.Pool.conn pool pkt in
    let hop = Packet.Pool.hop pool pkt in
    Measure.Flat.decr flat ~slot:(Measure.Flat.slot flat ~conn:i ~hop) ~now:(Sim.now sim);
    let latency = (Network.gateway net a).Network.latency in
    if hop < Array.length paths.(i) - 1 then
      Sim.schedule_code_after sim ~delay:latency ~handler:h_forward ~a:pkt ~b:(hop + 1)
    else if latency > 0. then
      Sim.schedule_code_after sim ~delay:latency ~handler:h_deliver ~a:pkt ~b:0
    else deliver pkt
  in
  for a = 0 to n_gws - 1 do
    let rng = Rng.split root_rng in
    servers.(a) <-
      Some
        (Server.create ~sim ~rng ~pool
           ~mu:(Network.gateway net a).Network.mu
           ~qdisc:(qdisc_of discipline) ~on_depart:(on_depart a) ())
  done;
  let emit pkt = inject_at pkt 0 in
  let sources =
    Array.init n_conns (fun i ->
        let rng = Rng.split root_rng in
        Source.create ~sim ~rng ~pool ~conn:i ~rate:r0.(i) ~emit ())
  in
  Array.iter Source.start sources;
  (* The control loop.  At each update instant: read measured per-gateway
     queue averages over the closing window, form congestion measures and
     bottleneck-combined signals, adjust every rate, reset the window. *)
  let times = Array.make updates 0. in
  let rates_log = Array.make updates [||] in
  let signals_log = Array.make updates [||] in
  let line_latency i =
    Array.fold_left
      (fun acc a -> acc +. (Network.gateway net a).Network.latency)
      0. paths.(i)
  in
  let do_update k =
    let now = Sim.now sim in
    (* Per-gateway measured queue vectors in local connection order. *)
    let measured_queues =
      Array.init n_gws (fun a ->
          Array.map
            (fun (i, hop) ->
              Measure.Flat.mean_occupancy flat
                ~slot:(Measure.Flat.slot flat ~conn:i ~hop)
                ~now)
            incidence.(a))
    in
    let b =
      Array.init n_conns (fun i ->
          List.fold_left
            (fun acc a ->
              let local = Network.local_index net ~conn:i ~gw:a in
              let measures = Congestion.measures style measured_queues.(a) in
              Float.max acc (Signal.eval signal measures.(local)))
            0.
            (Network.gateways_of_connection net i))
    in
    let d =
      Array.init n_conns (fun i ->
          let measured = Measure.Flat.delay_mean flat ~conn:i in
          if Measure.Flat.delay_count flat ~conn:i > 0 then measured
          else line_latency i)
    in
    Array.iteri
      (fun i r ->
        let dr = Rate_adjust.eval adjusters.(i) ~r ~b:b.(i) ~d:d.(i) in
        current_rates.(i) <- Float.max 0. (r +. dr);
        Source.set_rate sources.(i) current_rates.(i))
      (Array.copy current_rates);
    refresh_class_tables ();
    Measure.Flat.reset flat ~now;
    times.(k) <- now;
    rates_log.(k) <- Array.copy current_rates;
    signals_log.(k) <- b
  in
  for k = 0 to updates - 1 do
    Sim.run ~until:(float_of_int (k + 1) *. interval) sim;
    do_update k
  done;
  let tail = Stdlib.max 1 (updates / 4) in
  let mean_tail_rates =
    Array.init n_conns (fun i ->
        let acc = ref 0. in
        for k = updates - tail to updates - 1 do
          acc := !acc +. rates_log.(k).(i)
        done;
        !acc /. float_of_int tail)
  in
  {
    times;
    rates = rates_log;
    signals = signals_log;
    final_rates = Array.copy current_rates;
    mean_tail_rates;
  }

type drop_result = {
  dr_times : float array;
  dr_rates : float array array;
  dr_mean_tail_rates : float array;
  drop_fraction : float array;
  mean_utilization : float;
}

let run_drop_tail ~net ~buffer ~adjusters ~r0 ~interval ~updates ~seed () =
  let n_conns = Network.num_connections net in
  let n_gws = Network.num_gateways net in
  if Array.length adjusters <> n_conns then
    invalid_arg "Closed_loop.run_drop_tail: adjuster count mismatch";
  if Array.length r0 <> n_conns then
    invalid_arg "Closed_loop.run_drop_tail: r0 length mismatch";
  if buffer < 1 then invalid_arg "Closed_loop.run_drop_tail: buffer must be >= 1";
  if not (interval > 0.) then
    invalid_arg "Closed_loop.run_drop_tail: interval must be positive";
  if updates <= 0 then invalid_arg "Closed_loop.run_drop_tail: updates must be positive";
  let sim = Sim.create ~scheduler:(wheel_for net) () in
  let root_rng = Rng.create seed in
  let pool = Packet.Pool.create () in
  let current_rates = Array.copy r0 in
  let paths =
    Array.init n_conns (fun i -> Array.of_list (Network.gateways_of_connection net i))
  in
  let flat = Measure.Flat.create ~paths in
  let servers = Array.make n_gws None in
  let server_of a = match servers.(a) with Some s -> s | None -> assert false in
  let total_drops = Array.make n_conns 0 in
  let total_emitted = Array.make n_conns 0 in
  let inject_at pkt hop =
    let i = Packet.Pool.conn pool pkt in
    let a = paths.(i).(hop) in
    Packet.Pool.set_hop pool pkt hop;
    Measure.Flat.incr flat ~slot:(Measure.Flat.slot flat ~conn:i ~hop) ~now:(Sim.now sim);
    Server.inject (server_of a) pkt
  in
  let h_forward = Sim.register sim (fun pkt hop -> inject_at pkt hop) in
  let deliver pkt =
    let i = Packet.Pool.conn pool pkt in
    Measure.Flat.record_delay flat ~conn:i (Sim.now sim -. Packet.Pool.born pool pkt);
    Measure.Flat.count_delivery flat ~conn:i;
    Packet.Pool.free pool pkt
  in
  let h_deliver = Sim.register sim (fun pkt _ -> deliver pkt) in
  let on_drop pkt =
    (* The packet never entered this gateway's system: undo the occupancy
       increment recorded at injection. *)
    let i = Packet.Pool.conn pool pkt in
    let hop = Packet.Pool.hop pool pkt in
    Measure.Flat.decr flat ~slot:(Measure.Flat.slot flat ~conn:i ~hop) ~now:(Sim.now sim);
    Measure.Flat.count_drop flat ~conn:i;
    total_drops.(i) <- total_drops.(i) + 1;
    Packet.Pool.free pool pkt
  in
  let on_depart a pkt =
    let i = Packet.Pool.conn pool pkt in
    let hop = Packet.Pool.hop pool pkt in
    Measure.Flat.decr flat ~slot:(Measure.Flat.slot flat ~conn:i ~hop) ~now:(Sim.now sim);
    let latency = (Network.gateway net a).Network.latency in
    if hop < Array.length paths.(i) - 1 then
      Sim.schedule_code_after sim ~delay:latency ~handler:h_forward ~a:pkt ~b:(hop + 1)
    else if latency > 0. then
      Sim.schedule_code_after sim ~delay:latency ~handler:h_deliver ~a:pkt ~b:0
    else deliver pkt
  in
  for a = 0 to n_gws - 1 do
    let rng = Rng.split root_rng in
    servers.(a) <-
      Some
        (Server.create ~sim ~rng ~pool
           ~mu:(Network.gateway net a).Network.mu
           ~qdisc:Qdisc.Fifo ~buffer_limit:buffer ~on_drop
           ~on_depart:(on_depart a) ())
  done;
  let emit pkt =
    let i = Packet.Pool.conn pool pkt in
    total_emitted.(i) <- total_emitted.(i) + 1;
    inject_at pkt 0
  in
  let sources =
    Array.init n_conns (fun i ->
        let rng = Rng.split root_rng in
        Source.create ~sim ~rng ~pool ~conn:i ~rate:r0.(i) ~emit ())
  in
  Array.iter Source.start sources;
  let times = Array.make updates 0. in
  let rates_log = Array.make updates [||] in
  let tail = Stdlib.max 1 (updates / 4) in
  let tail_delivered = Array.make n_conns 0 in
  let do_update k =
    let now = Sim.now sim in
    (* Binary implicit signal: any drop in the window sets the "bit". *)
    Array.iteri
      (fun i r ->
        let b = if Measure.Flat.drops flat ~conn:i > 0 then 1. else 0. in
        let d =
          if Measure.Flat.delay_count flat ~conn:i > 0 then
            Measure.Flat.delay_mean flat ~conn:i
          else 1.
        in
        let dr = Rate_adjust.eval adjusters.(i) ~r ~b ~d in
        current_rates.(i) <- Float.max 0. (r +. dr);
        Source.set_rate sources.(i) current_rates.(i))
      (Array.copy current_rates);
    if k >= updates - tail then
      for i = 0 to n_conns - 1 do
        tail_delivered.(i) <- tail_delivered.(i) + Measure.Flat.deliveries flat ~conn:i
      done;
    Measure.Flat.reset flat ~now;
    times.(k) <- now;
    rates_log.(k) <- Array.copy current_rates
  in
  for k = 0 to updates - 1 do
    Sim.run ~until:(float_of_int (k + 1) *. interval) sim;
    do_update k
  done;
  let dr_mean_tail_rates =
    Array.init n_conns (fun i ->
        let acc = ref 0. in
        for k = updates - tail to updates - 1 do
          acc := !acc +. rates_log.(k).(i)
        done;
        !acc /. float_of_int tail)
  in
  let drop_fraction =
    Array.init n_conns (fun i ->
        if total_emitted.(i) = 0 then 0.
        else float_of_int total_drops.(i) /. float_of_int total_emitted.(i))
  in
  let total_mu = ref 0. in
  for a = 0 to n_gws - 1 do
    total_mu := !total_mu +. (Network.gateway net a).Network.mu
  done;
  let delivered_rate =
    Array.fold_left ( + ) 0 tail_delivered
    |> float_of_int
    |> fun x -> x /. (float_of_int tail *. interval)
  in
  {
    dr_times = times;
    dr_rates = rates_log;
    dr_mean_tail_rates;
    drop_fraction;
    mean_utilization = delivered_rate /. !total_mu;
  }
