(** Canonical cache-key encoders for the core model types.

    Relies on the naming contract of docs/CACHING.md: a component's
    printed name uniquely determines its behavior (the repo's
    constructors embed every parameter in the name), so names plus the
    code-schema version address results faithfully.  Custom components
    built with [make]-style constructors must follow the same
    convention to be safely memoized. *)

open Ffc_topology

val add_network : Ffc_cache.Key.t -> Network.t -> unit
(** Keys the full topology via its canonical printed form
    ([Dsl.to_string]: %.17g capacities/latencies + connection paths). *)

val add_config : Ffc_cache.Key.t -> Feedback.config -> unit
(** Style, signal name, discipline name, optional weight vector. *)

val add_adjusters : Ffc_cache.Key.t -> Rate_adjust.t array -> unit

val add_mat : Ffc_cache.Key.t -> Ffc_numerics.Mat.t -> unit
(** Dimensions plus every element's bit pattern. *)
