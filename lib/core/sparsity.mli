(** Route-incidence sparsity of DF, and grouped-probe schedules.

    A connection's rate perturbs only the gateways on its route, so
    DF_ij ≠ 0 requires i and j to share a gateway.  This module derives
    that (symmetric) pattern from a {!Ffc_topology.Network.t} and colors
    it into probe groups: columns with disjoint supports are
    finite-differenced jointly (Curtis-Powell-Reid), which is
    bit-for-bit identical to probing them one at a time because no
    component of the flow map reads two bumped coordinates.

    On densely coupled topologies (a single shared gateway; chains,
    stars and dumbbells, where every pair of connections meets at some
    gateway) the schedule degenerates to one column per group — the
    dense probing order, unchanged. *)

open Ffc_topology

type t

val of_network : Network.t -> t
(** Pattern and probe schedule for DF of the flow-control map on this
    network. *)

val size : t -> int
(** Number of connections (= rows = columns of DF). *)

val supports : t -> int array array
(** [supports p].(j) — the sorted indices structurally coupled to
    connection j, j included.  By symmetry this is both the row support
    of column j and the column support of row j (i.e. the CSR row
    pattern).  The returned arrays are the internal ones: do not
    mutate. *)

val groups : t -> int array array
(** The probe schedule: a partition of the columns such that supports
    within a group are pairwise disjoint.  Deterministic in the
    pattern. *)

val nnz : t -> int
(** Stored-entry count of the pattern. *)

val density : t -> float
(** [nnz / n²] (0 for the empty system). *)

val color_columns : ?only_rows:bool array -> t -> int array -> int array array
(** [color_columns ~only_rows p cols] — a probe schedule for a subset of
    columns where only conflicts on rows with [only_rows.(i) = true]
    matter: the incremental-update case, where entries are recomputed
    only in the affected rows.  Without [only_rows], all rows count. *)
