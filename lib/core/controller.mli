(** The synchronous flow-control iteration r' = F(r) (paper §2.3.2).

    At every discrete step each connection reads its combined congestion
    signal b_i and round-trip delay d_i, then updates
    r_i ← max(0, r_i + f_i(r_i, b_i, d_i)).  Connections may run
    different rate-adjustment algorithms f_i (the heterogeneity of §3.4).
    The iteration's asymptotics are classified into convergence to a
    steady state, an attracting cycle, divergence, or neither. *)

open Ffc_numerics
open Ffc_topology

type t

val create : config:Feedback.config -> adjusters:Rate_adjust.t array -> t
(** One adjuster per connection (checked against the network at use). *)

val homogeneous : config:Feedback.config -> adjuster:Rate_adjust.t -> n:int -> t
(** All [n] connections share one algorithm. *)

val config : t -> Feedback.config
val adjusters : t -> Rate_adjust.t array

val step : t -> net:Network.t -> Vec.t -> Vec.t
(** One synchronous update of all rates. *)

val apply_feedback : t -> b:Vec.t -> d:Vec.t -> Vec.t -> Vec.t
(** The adjuster half of {!step}: r_i ← max(0, r_i + f_i(r_i, b_i, d_i))
    from already-computed feedback vectors.  {!step} is
    [Feedback.evaluate] followed by this; exposing the halves lets a
    wrapper (the fault-injection layer) perturb the feedback path between
    them without the unfaulted path paying anything. *)

val map : t -> net:Network.t -> Vec.t -> Vec.t
(** Alias of {!step} — the iteration map F, for Jacobian probing. *)

val map_rows : t -> net:Network.t -> rows:int array -> Vec.t -> Vec.t
(** [map_rows t ~net ~rows r] computes only the components F_i with
    [i] in [rows] (other entries are 0), evaluating only the gateways
    those connections cross — see {!Feedback.evaluate_rows}.  Entries
    at [rows] are bit-for-bit those of {!map}.  Used by the incremental
    Jacobian kernel to probe a churn-affected sub-network at sub-linear
    cost. *)

val step_subset : t -> net:Network.t -> mask:bool array -> Vec.t -> Vec.t
(** Like {!step}, but only connections with [mask.(i) = true] update
    their rate; the rest hold theirs.  Models asynchronous update
    schedules (paper §2.5; cf. Mosely's asynchronous algorithms): with
    individual feedback the fair steady state remains the unique
    attractor under any schedule that updates everyone infinitely
    often. *)

val trajectory : t -> net:Network.t -> r0:Vec.t -> steps:int -> Vec.t array
(** [steps + 1] states including [r0]. *)

type outcome =
  | Converged of { steady : Vec.t; steps : int }
  | Cycle of { period : int; orbit : Vec.t array }
      (** An attracting cycle; [orbit] lists one full period. *)
  | Diverged of { at_step : int }
      (** A rate exceeded the escape threshold or became non-finite. *)
  | No_convergence of { last : Vec.t }

val outcome_label : outcome -> string
(** ["converged"], ["cycle"], ["diverged"] or ["no_convergence"] — the
    stable identifiers used in trace events and metric names. *)

val run_map :
  ?tol:float -> ?max_steps:int -> ?min_steps:int -> ?max_period:int -> ?escape:float ->
  map:(int -> Vec.t -> Vec.t) -> r0:Vec.t -> unit -> outcome
(** The watchdog loop of {!run}, generalized over the iteration map:
    [map k r] is the state after step [k] (0-based) from state [r].
    This is the core hook the fault injector and the supervised runner
    drive — the map may depend on the step index (gateway degradation
    windows, stale-signal history).

    [min_steps] (default 0) suppresses the [Converged] and [Cycle]
    verdicts before that many steps — a time-varying map can sit at a
    temporary fixed point (a network converged under a transient
    gateway cut that has yet to be restored), and only the caller knows
    the horizon after which the map is time-invariant.  Divergence is
    still detected from step 0.

    Hardening, shared with {!run}: a state with any non-finite component
    (NaN included — NaN compares false against every threshold, so it
    needs its own check) or component beyond [escape] yields [Diverged];
    this includes [r0] itself, reported as [Diverged] at step 0.  A map
    evaluation that raises [Failure] (e.g. {!Rate_adjust.eval} on a
    NaN-producing adjuster) is likewise [Diverged] at that step, so one
    pathological parameter cell degrades gracefully instead of killing a
    whole sweep. *)

val run :
  ?tol:float -> ?max_steps:int -> ?max_period:int -> ?escape:float ->
  t -> net:Network.t -> r0:Vec.t -> outcome
(** Iterates from [r0] (default [tol] 1e-10, [max_steps] 20000,
    [max_period] 32, [escape] 1e12).  Convergence requires the relative
    sup-norm step to stay below [tol] for several consecutive steps; cycle
    detection compares the tail of the orbit at all lags up to
    [max_period].  Divergence hardening as in {!run_map}. *)

val run_async :
  ?tol:float -> ?max_steps:int -> ?p:float -> ?escape:float -> rng:Rng.t -> t ->
  net:Network.t -> r0:Vec.t -> outcome
(** Iterates {!step_subset} with a fresh Bernoulli([p]) mask each step
    ([p] defaults to 0.5).  The divergence threshold [escape] defaults
    to 1e12, as in {!run}.  Convergence detection as in {!run}; cycle
    detection is skipped because the randomized schedule has no
    deterministic period, so non-convergent runs end as
    [No_convergence]. *)

val steady_state : ?tol:float -> t -> net:Network.t -> Vec.t -> bool
(** Whether [r] is (numerically) a fixed point of the map. *)
