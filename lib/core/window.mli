(** Window-based flow control (paper §4).

    DECbit and TCP adjust a {e window} — a cap on packets in flight — not
    a rate.  In the steady-flow model a window w_i induces the sending
    rate through Little's law: r_i = w_i / d_i(r), where d_i is the
    round-trip delay at the induced rates — a self-consistent fixed
    point.  Because d_i grows without bound as a bottleneck approaches
    saturation, window control is {e self-limiting}: no finite window
    vector can overload a gateway.

    The window dynamics w ← max(0, w + f_w(w, b, d)) mirror the rate
    dynamics of §2.3.2.  §4 models DECbit's window algorithm as a
    constant per-step window increase — which is what produces its
    latency unfairness.  Running the TSI form f_w = η(β−b) in window
    space instead pins the bottleneck signal at β and recovers fair
    rates with {e unequal} windows — the unfairness lies in the constant
    window increase, not in window control itself (experiment E21). *)

open Ffc_numerics
open Ffc_topology

val rates_of_windows :
  ?tol:float -> ?max_iter:int -> Feedback.config -> net:Network.t ->
  windows:Vec.t -> Vec.t
(** The rate vector solving r_i = w_i/d_i(r) (Gauss-Seidel sweeps of
    per-component bisections; [tol] defaults to 1e-10, [max_iter] — the
    sweep cap, rarely reached except very close to saturation — to
    50000).  Windows
    must be non-negative and finite; a zero window induces a zero
    rate. *)

type adjuster

val adjuster_name : adjuster -> string

val additive_tsi : eta:float -> beta:float -> adjuster
(** f_w = η(β−b) — the TSI form transplanted to window space. *)

val decbit : eta:float -> beta:float -> adjuster
(** f_w = (1−b)η − β·b·w — §4's model of the DECbit window algorithm:
    constant additive window increase, multiplicative decrease.  Steady
    windows are equal across connections, so steady {e rates} are
    inversely proportional to round-trip delay. *)

val make_adjuster : name:string -> (w:float -> b:float -> d:float -> float) -> adjuster

type outcome =
  | Converged of { windows : Vec.t; rates : Vec.t; steps : int }
  | No_convergence of { windows : Vec.t; rates : Vec.t }
  | Diverged of { windows : Vec.t; at_step : int }
      (** An adjuster drove some window non-finite (NaN or +∞) at
          [at_step]; [windows] is the offending post-update vector.  No
          induced rates exist for it, so none are reported. *)

val run :
  ?tol:float -> ?max_steps:int -> Feedback.config -> net:Network.t ->
  adjusters:adjuster array -> w0:Vec.t -> outcome
(** Iterates the window dynamics: each step solves the induced rates,
    computes signals and delays at those rates, and updates every
    window.  A non-finite window update classifies as [Diverged] — it
    never reaches {!rates_of_windows}'s finiteness [invalid_arg]. *)
