(** Robustness in the presence of heterogeneity (paper §2.4.4, §3.4).

    A flow-control design is robust when every connection — whatever
    rate-adjustment algorithms the {e others} run — receives at least the
    throughput it would get from a reservation-based network that
    dedicates it a 1/N^a slice of each gateway: the baseline
    r̄_i = ρ_SS(i) · min_{a∈γ(i)} μ^a/N^a, where ρ_SS(i) is the
    utilization connection i's own TSI algorithm would pin on a private
    server.  Theorem 5 reduces robustness of TSI individual feedback to a
    pointwise inequality on the service discipline:
    Q_i(r) ≤ r_i/(μ − N·r_i). *)

open Ffc_numerics
open Ffc_queueing
open Ffc_topology

val criterion_holds :
  ?tol:float -> Service.t -> mu:float -> rates:Vec.t -> bool
(** The Theorem 5 inequality at one rate vector (components with
    μ ≤ N·r_i are unconstrained). *)

val criterion_violation_rate :
  Service.t -> rng:Rng.t -> n:int -> mu:float -> trials:int -> float
(** Fraction of [trials] random rate vectors (n connections, each rate
    uniform in [0, μ]) violating the criterion.  0 for Fair Share,
    positive for FIFO. *)

val reservation_rate : signal:Signal.t -> b_ss:float -> mu:float -> n:int -> float
(** Steady rate of one connection alone on a server of rate μ/n —
    the reservation baseline at a single gateway. *)

val baselines :
  signal:Signal.t -> b_ss:float array -> net:Network.t -> Vec.t
(** Per-connection reservation baselines r̄_i; [b_ss] gives each
    connection's own steady signal (heterogeneous algorithms have
    different ones). *)

val baselines_masked :
  signal:Signal.t -> b_ss:float array -> net:Network.t -> active:bool array ->
  Vec.t
(** {!baselines} against the {e active} sub-population: the fan-in N^a
    in r̄_i = ρ_SS(i) · min_{a∈γ(i)} μ^a/N^a counts only connections with
    [active.(j) = true] — the reservation a flow is owed while some
    slots sit idle.  Inactive connections get baseline 0.  With an
    all-true mask this is exactly {!baselines}.  Used by the online
    gateway service's admission test, where the population changes with
    every join/leave. *)

val is_robust_outcome : ?tol:float -> baselines:Vec.t -> Vec.t -> bool
(** [is_robust_outcome ~baselines steady] — every connection meets its
    baseline within relative [tol] (default 1e-6). *)

val shortfalls : steady:Vec.t -> baselines:Vec.t -> Vec.t
(** max(0, r̄_i − r_i) per connection — how far below the guarantee each
    connection landed. *)
