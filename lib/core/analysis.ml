open Ffc_numerics

type design = { label : string; config : Feedback.config }

let designs =
  [
    { label = "aggregate"; config = Feedback.aggregate_fifo };
    { label = "individual+fifo"; config = Feedback.individual_fifo };
    { label = "individual+fair-share"; config = Feedback.individual_fair_share };
  ]

type report = {
  design : string;
  outcome : Controller.outcome;
  steady : Vec.t option;
  fair : bool option;
  jain : float option;
  robust : bool option;
  unilateral : bool option;
  systemic : bool option;
  spectral_radius : float option;
  df_triangular : bool option;
}

let evaluate ?tol ?max_steps ?(manifold_dim = 0) ?struct_tol design ~adjusters ~net ~r0 =
  let controller = Controller.create ~config:design.config ~adjusters in
  let outcome = Controller.run ?tol ?max_steps controller ~net ~r0 in
  match outcome with
  | Controller.Converged { steady; _ } ->
    let fair = Fairness.is_fair design.config ~net ~rates:steady in
    let jain = Fairness.jain steady in
    let robust =
      let b_ss = Array.map Rate_adjust.declared_b_ss adjusters in
      if Array.for_all Option.is_some b_ss then begin
        let b_ss = Array.map Option.get b_ss in
        let baselines = Robustness.baselines ~signal:design.config.signal ~b_ss ~net in
        Some (Robustness.is_robust_outcome ~baselines steady)
      end
      else None
    in
    let df = Jacobian.of_controller controller ~net ~at:steady in
    {
      design = design.label;
      outcome;
      steady = Some steady;
      fair = Some fair;
      jain = Some jain;
      robust;
      unilateral = Some (Jacobian.unilaterally_stable df);
      systemic =
        Some (Jacobian.systemically_stable ~ignore_unit:manifold_dim ?struct_tol df);
      spectral_radius = Some (Jacobian.spectral_radius ?struct_tol df);
      df_triangular = Some (Jacobian.triangular_in_rate_order df ~rates:steady);
    }
  | Controller.Cycle _ | Controller.Diverged _ | Controller.No_convergence _ ->
    {
      design = design.label;
      outcome;
      steady = None;
      fair = None;
      jain = None;
      robust = None;
      unilateral = None;
      systemic = None;
      spectral_radius = None;
      df_triangular = None;
    }

let evaluate_all ?tol ?max_steps ?manifold_dim ?struct_tol ?jobs ~adjusters ~net r0 =
  (* The three designs are independent; evaluate them on separate
     domains, keeping the report order fixed. *)
  Pool.parallel_map
    ~jobs:(Pool.effective_jobs ?jobs ())
    (fun d -> evaluate ?tol ?max_steps ?manifold_dim ?struct_tol d ~adjusters ~net ~r0)
    (Array.of_list designs)
  |> Array.to_list

let pp_opt_bool ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some true -> Format.pp_print_string ppf "yes"
  | Some false -> Format.pp_print_string ppf "no"

let pp_report ppf r =
  let outcome_str =
    match r.outcome with
    | Controller.Converged { steps; _ } -> Printf.sprintf "converged(%d)" steps
    | Controller.Cycle { period; _ } -> Printf.sprintf "cycle(%d)" period
    | Controller.Diverged { at_step } -> Printf.sprintf "diverged(%d)" at_step
    | Controller.No_convergence _ -> "no-convergence"
  in
  Format.fprintf ppf
    "@[<v>design %s: %s@,  fair=%a jain=%s robust=%a unilateral=%a systemic=%a \
     rho(DF)=%s triangular=%a@]"
    r.design outcome_str pp_opt_bool r.fair
    (match r.jain with Some j -> Printf.sprintf "%.4f" j | None -> "-")
    pp_opt_bool r.robust pp_opt_bool r.unilateral pp_opt_bool r.systemic
    (match r.spectral_radius with Some s -> Printf.sprintf "%.4f" s | None -> "-")
    pp_opt_bool r.df_triangular
