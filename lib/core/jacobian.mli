(** The stability matrix DF (paper §3.3).

    DF_ij = ∂F_i/∂r_j at a steady state decides linear stability: the
    steady state is stable when every eigenvalue has modulus below one.
    The paper contrasts {e unilateral} stability (|DF_ii| < 1 — what a
    single connection can measure by perturbing its own rate) with
    {e systemic} stability (the full spectrum), and proves that under
    Fair Share the matrix is triangular once connections are ordered by
    rate, making the two coincide (Theorem 4).

    Derivatives are numeric.  The MAX/MIN kinks the paper notes make
    one-sided derivatives differ at some steady states; both central and
    one-sided modes are provided.  Every probe direction that would
    evaluate at a negative rate (the map's domain is r ≥ 0) falls back
    to a forward difference — Central and Backward alike.

    Probing is structure-aware: DF_ij can be nonzero only when i and j
    share a gateway ({!Sparsity}), so columns with disjoint supports are
    finite-differenced jointly (grouped Curtis-Powell-Reid probes) and
    the result can be held in CSR form ({!numeric_sparse},
    {!of_controller_sparse}).  Grouped probes are bit-for-bit identical
    to lone-column ones, and off-pattern dense entries are exactly +0.0,
    so the sparse and dense paths build the same matrix.

    Columns (or probe groups) are independent finite differences, so
    they fan out over {!Ffc_numerics.Pool} ([jobs], default the pool
    default; forced sequential under an outer pool and for small
    systems).  The result is bit-identical at every jobs count: the
    shared base evaluation is forced before the fan-out and each column
    is a pure function of its index. *)

open Ffc_numerics

type mode = Central | Forward | Backward

val numeric :
  ?jobs:int -> ?dx:float -> ?mode:mode -> (Vec.t -> Vec.t) -> at:Vec.t -> Mat.t
(** Jacobian of an arbitrary vector map ([dx] defaults to 1e-7 relative to
    each coordinate's magnitude). *)

val numeric_sparse :
  ?jobs:int -> ?dx:float -> ?mode:mode -> (Vec.t -> Vec.t) ->
  pattern:Sparsity.t -> at:Vec.t -> Mat.Sparse.t
(** Structure-aware Jacobian: probes the map through [pattern]'s probe
    groups (columns with disjoint supports share one probe pair) and
    stores only the pattern's entries.  Requires the map to actually
    respect the pattern — component i reading a coordinate outside its
    support would silently alias into grouped probes.  For the
    flow-control map with the pattern from
    {!Sparsity.of_network} this holds by construction, and
    [Mat.Sparse.to_dense (numeric_sparse f ~pattern ~at)] is bit-for-bit
    [numeric f ~at]. *)

val of_controller :
  ?jobs:int -> ?dx:float -> ?mode:mode -> Controller.t ->
  net:Ffc_topology.Network.t -> at:Vec.t -> Mat.t
(** DF of the flow-control map at [at].  Probes through the
    route-incidence pattern when it is genuinely sparse (< half dense),
    the plain dense path otherwise — both produce the same bits.
    Memoized through the ambient result cache ({!Ffc_cache.Cache}) when
    one is installed; [jobs] is excluded from the cache key because
    columns are bit-identical at every jobs count. *)

val of_controller_sparse :
  ?jobs:int -> ?dx:float -> ?mode:mode -> Controller.t ->
  net:Ffc_topology.Network.t -> at:Vec.t -> Mat.Sparse.t
(** CSR-valued DF on the route-incidence pattern (memoized, tier
    ["jac.sparse"]).  [to_dense] of the result is bit-for-bit
    {!of_controller}. *)

val update_flow :
  ?jobs:int -> ?dx:float -> ?mode:mode -> Controller.t ->
  net:Ffc_topology.Network.t -> prev:Mat.Sparse.t -> prev_at:Vec.t ->
  at:Vec.t -> Mat.Sparse.t
(** Incremental DF rebuild after flow churn: given [prev] =
    {!of_controller_sparse} at [prev_at] (same [dx]/[mode]), patches
    only the entries whose row is structurally coupled to a changed
    coordinate, probing the touched sub-network alone
    ({!Controller.map_rows}) through a churn-restricted coloring.  The
    result is bit-for-bit {!of_controller_sparse} at [at] — provably
    independent of [prev] — and is memoized on the destination point
    (tier ["jac.update"]).  Cost scales with the churn-affected region:
    on a topology of independent lots, a single join/leave re-probes
    one lot.  Raises [Invalid_argument] when [prev] does not match the
    network's pattern. *)

val eigenvalues : ?struct_tol:float -> Mat.t -> Complex.t array
(** {!Ffc_numerics.Eigen.eigenvalues}, memoized on the matrix content
    through the ambient result cache.  Composes with the cached DF: a
    warm run rebuilds neither the finite-difference columns nor the QR
    iteration. *)

val eigenvalues_sorted : ?struct_tol:float -> Mat.t -> Complex.t array
(** {!Ffc_numerics.Eigen.eigenvalues_sorted}, memoized likewise. *)

val eigenvalues_sparse : ?struct_tol:float -> Mat.Sparse.t -> Complex.t array
(** {!Ffc_numerics.Eigen.eigenvalues_sparse}, memoized likewise (tier
    ["eigen.spectrum.sparse"]): the triangular fast path runs on the
    stored entries without densifying. *)

val unilaterally_stable : ?tol:float -> Mat.t -> bool
(** |DF_ii| < 1 − [tol] for every i (default [tol] 1e-9). *)

val systemically_stable :
  ?tol:float -> ?ignore_unit:int -> ?struct_tol:float -> Mat.t -> bool
(** Spectral radius below 1, optionally discounting [ignore_unit]
    eigenvalues of modulus ~1 for steady-state manifolds (aggregate
    feedback has an (N−1)-dimensional manifold at a single gateway).
    [struct_tol] reaches the structure detection — it used to be
    dropped here. *)

val spectral_radius : ?struct_tol:float -> Mat.t -> float
(** Largest eigenvalue modulus over the cached spectrum.  [struct_tol]
    is threaded through to {!eigenvalues} (it used to be silently
    dropped). *)

val spectral_radius_sparse : ?struct_tol:float -> Mat.Sparse.t -> float
(** {!spectral_radius} over the cached sparse spectrum. *)

val spectral_radius_incremental : ?struct_tol:float -> Mat.Sparse.t -> float
(** Cheap ρ(DF) after {!update_flow}: the structural diagonal when the
    CSR matrix is (permuted) triangular, else a power-iteration
    estimate cross-checked by a deflated second iteration; falls back
    to the full cached spectrum when either check fails, so the value
    is never silently wrong. *)

val triangular_in_rate_order : ?tol:float -> Mat.t -> rates:Vec.t -> bool
(** Whether DF is lower triangular after simultaneously permuting rows and
    columns into increasing-rate order — Theorem 4's structure under Fair
    Share. [tol] defaults to 1e-6 (numeric differentiation noise). *)

val diagonal : Mat.t -> Vec.t
(** The unilateral responses DF_ii. *)
