(** The stability matrix DF (paper §3.3).

    DF_ij = ∂F_i/∂r_j at a steady state decides linear stability: the
    steady state is stable when every eigenvalue has modulus below one.
    The paper contrasts {e unilateral} stability (|DF_ii| < 1 — what a
    single connection can measure by perturbing its own rate) with
    {e systemic} stability (the full spectrum), and proves that under
    Fair Share the matrix is triangular once connections are ordered by
    rate, making the two coincide (Theorem 4).

    Derivatives are numeric.  The MAX/MIN kinks the paper notes make
    one-sided derivatives differ at some steady states; both central and
    one-sided modes are provided.

    Columns are independent finite differences, so they fan out over
    {!Ffc_numerics.Pool} ([jobs], default the pool default; forced
    sequential under an outer pool and for small systems).  The result
    is bit-identical at every jobs count: the shared base evaluation is
    forced before the fan-out and each column is a pure function of its
    index. *)

open Ffc_numerics

type mode = Central | Forward | Backward

val numeric :
  ?jobs:int -> ?dx:float -> ?mode:mode -> (Vec.t -> Vec.t) -> at:Vec.t -> Mat.t
(** Jacobian of an arbitrary vector map ([dx] defaults to 1e-7 relative to
    each coordinate's magnitude). *)

val of_controller :
  ?jobs:int -> ?dx:float -> ?mode:mode -> Controller.t ->
  net:Ffc_topology.Network.t -> at:Vec.t -> Mat.t
(** DF of the flow-control map at [at].  Memoized through the ambient
    result cache ({!Ffc_cache.Cache}) when one is installed; [jobs] is
    excluded from the cache key because columns are bit-identical at
    every jobs count. *)

val eigenvalues : ?struct_tol:float -> Mat.t -> Complex.t array
(** {!Ffc_numerics.Eigen.eigenvalues}, memoized on the matrix content
    through the ambient result cache.  Composes with the cached DF: a
    warm run rebuilds neither the finite-difference columns nor the QR
    iteration. *)

val eigenvalues_sorted : ?struct_tol:float -> Mat.t -> Complex.t array
(** {!Ffc_numerics.Eigen.eigenvalues_sorted}, memoized likewise. *)

val unilaterally_stable : ?tol:float -> Mat.t -> bool
(** |DF_ii| < 1 − [tol] for every i (default [tol] 1e-9). *)

val systemically_stable : ?tol:float -> ?ignore_unit:int -> Mat.t -> bool
(** Spectral radius below 1, optionally discounting [ignore_unit]
    eigenvalues of modulus ~1 for steady-state manifolds (aggregate
    feedback has an (N−1)-dimensional manifold at a single gateway). *)

val spectral_radius : Mat.t -> float

val triangular_in_rate_order : ?tol:float -> Mat.t -> rates:Vec.t -> bool
(** Whether DF is lower triangular after simultaneously permuting rows and
    columns into increasing-rate order — Theorem 4's structure under Fair
    Share. [tol] defaults to 1e-6 (numeric differentiation noise). *)

val diagonal : Mat.t -> Vec.t
(** The unilateral responses DF_ii. *)
