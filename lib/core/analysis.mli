(** High-level evaluation of the paper's design matrix.

    Runs a rate-adjuster population on a network under each of the three
    distinct design points — aggregate feedback (discipline-insensitive),
    individual feedback + FIFO, individual feedback + Fair Share — and
    reports convergence, fairness, robustness, and stability in one
    record per design.  This is the API the examples and the experiment
    harness are written against. *)

open Ffc_numerics
open Ffc_topology

type design = { label : string; config : Feedback.config }

val designs : design list
(** The paper's three distinct design points, with B = C/(1+C). *)

type report = {
  design : string;
  outcome : Controller.outcome;
  steady : Vec.t option;  (** Populated when the run converged. *)
  fair : bool option;
  jain : float option;
  robust : bool option;  (** Against the adjusters' own baselines. *)
  unilateral : bool option;  (** |DF_ii| < 1 at the steady state. *)
  systemic : bool option;  (** All eigenvalues inside the unit circle. *)
  spectral_radius : float option;
  df_triangular : bool option;  (** Theorem 4's structure. *)
}

val evaluate :
  ?tol:float -> ?max_steps:int -> ?manifold_dim:int -> ?struct_tol:float ->
  design -> adjusters:Rate_adjust.t array -> net:Network.t -> r0:Vec.t -> report
(** Full single-design evaluation. [manifold_dim] eigenvalues of modulus
    ~1 are discounted in the systemic-stability verdict (aggregate
    feedback at a single gateway has an (N−1)-dimensional steady
    manifold). [struct_tol] is threaded through to the spectrum's
    triangular-structure detection (default: exact zeros, unchanged).
    Robustness verdicts require every adjuster to declare its
    b_SS; otherwise [robust = None]. *)

val evaluate_all :
  ?tol:float -> ?max_steps:int -> ?manifold_dim:int -> ?struct_tol:float ->
  ?jobs:int ->
  adjusters:Rate_adjust.t array -> net:Network.t -> Vec.t -> report list
(** [evaluate_all ~adjusters ~net r0] — {!evaluate} over {!designs},
    one domain per design (up to [jobs], default
    {!Pool.default_jobs}); the report list is always in {!designs}
    order. *)

val pp_report : Format.formatter -> report -> unit
