open Ffc_numerics

type mode = Central | Forward | Backward

let numeric ?jobs ?(dx = 1e-7) ?(mode = Central) f ~at =
  let n = Array.length at in
  let h = Array.init n (fun j -> dx *. (1. +. Float.abs at.(j))) in
  (* The flow-control map lives on r >= 0: fall back to a forward
     difference when a central probe would leave the domain. *)
  let col_mode =
    Array.init n (fun j ->
        if mode = Central && at.(j) -. h.(j) < 0. then Forward else mode)
  in
  (* The shared base evaluation f(at) is forced once, before the fan-out,
     so the per-column closures only read it — no lazy cell is raced
     between domains. *)
  let base =
    if Array.exists (fun m -> m <> Central) col_mode then Some (f at) else None
  in
  let column j =
    let bump delta =
      let x = Array.copy at in
      x.(j) <- x.(j) +. delta;
      f x
    in
    let h = h.(j) in
    match col_mode.(j) with
    | Central ->
      let plus = bump h and minus = bump (-.h) in
      Array.init n (fun i -> (plus.(i) -. minus.(i)) /. (2. *. h))
    | Forward ->
      let plus = bump h and base = Option.get base in
      Array.init n (fun i -> (plus.(i) -. base.(i)) /. h)
    | Backward ->
      let minus = bump (-.h) and base = Option.get base in
      Array.init n (fun i -> (base.(i) -. minus.(i)) /. h)
  in
  (* Columns are independent and each is a deterministic function of
     (f, at, j), so fanning them out over the pool returns bit-identical
     matrices at every jobs count.  Small systems stay sequential: a
     domain spawn costs more than a handful of map evaluations. *)
  let jobs = Stdlib.min (Pool.effective_jobs ?jobs ()) (Stdlib.max 1 (n / 8)) in
  let cols = Pool.parallel_init ~jobs n column in
  Mat.init n n (fun i j -> cols.(j).(i))

let of_controller ?jobs ?dx ?mode controller ~net ~at =
  numeric ?jobs ?dx ?mode (fun r -> Controller.map controller ~net r) ~at

let unilaterally_stable ?(tol = 1e-9) df =
  let d = Mat.diagonal df in
  Array.for_all (fun x -> Float.abs x < 1. -. tol) d

let systemically_stable ?tol ?ignore_unit df =
  Eigen.is_linearly_stable ?tol ?ignore_unit df

let spectral_radius df = Eigen.spectral_radius df

let triangular_in_rate_order ?(tol = 1e-6) df ~rates =
  let n = Array.length rates in
  if Mat.rows df <> n then invalid_arg "Jacobian.triangular_in_rate_order: size mismatch";
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare rates.(a) rates.(b)) order;
  Mat.is_lower_triangular ~tol (Mat.permute_rows_cols df order)

let diagonal = Mat.diagonal
