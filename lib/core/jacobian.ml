open Ffc_numerics

type mode = Central | Forward | Backward

(* The flow-control map lives on r >= 0: any probe direction that would
   evaluate at a negative rate falls back to a forward difference.
   Central probes minus at [at - h]; an explicit Backward mode probes
   there too, so both need the guard — guarding only Central (as this
   code once did) let Backward requests differentiate through the
   domain boundary at near-zero rates. *)
let domain_mode mode ~at ~h j =
  match mode with
  | (Central | Backward) when at.(j) -. h.(j) < 0. -> Forward
  | m -> m

let step_sizes ~dx at = Array.map (fun x -> dx *. (1. +. Float.abs x)) at

let numeric ?jobs ?(dx = 1e-7) ?(mode = Central) f ~at =
  let n = Array.length at in
  let h = step_sizes ~dx at in
  let col_mode = Array.init n (domain_mode mode ~at ~h) in
  (* The shared base evaluation f(at) is forced once, before the fan-out,
     so the per-column closures only read it — no lazy cell is raced
     between domains. *)
  let base =
    if Array.exists (fun m -> m <> Central) col_mode then Some (f at) else None
  in
  let column j =
    let bump delta =
      let x = Array.copy at in
      x.(j) <- x.(j) +. delta;
      f x
    in
    let h = h.(j) in
    match col_mode.(j) with
    | Central ->
      let plus = bump h and minus = bump (-.h) in
      Array.init n (fun i -> (plus.(i) -. minus.(i)) /. (2. *. h))
    | Forward ->
      let plus = bump h and base = Option.get base in
      Array.init n (fun i -> (plus.(i) -. base.(i)) /. h)
    | Backward ->
      let minus = bump (-.h) and base = Option.get base in
      Array.init n (fun i -> (base.(i) -. minus.(i)) /. h)
  in
  (* Columns are independent and each is a deterministic function of
     (f, at, j), so fanning them out over the pool returns bit-identical
     matrices at every jobs count.  Small systems stay sequential: a
     domain spawn costs more than a handful of map evaluations. *)
  let jobs = Stdlib.min (Pool.effective_jobs ?jobs ()) (Stdlib.max 1 (n / 8)) in
  let cols = Pool.parallel_init ~jobs n column in
  Mat.init n n (fun i j -> cols.(j).(i))

(* Grouped (Curtis-Powell-Reid) probing: every group bundles columns
   with pairwise-disjoint supports, so one plus/minus probe pair serves
   the whole group — each used component f_i sees exactly one bumped
   coordinate, making the extracted differences bit-for-bit the
   lone-column ones.  [rows_of_col j] selects which rows of column j to
   extract (its full support for a fresh build, the churn-affected rows
   for an incremental update).  Groups are independent, so they fan out
   over the pool exactly as dense columns do — same bit-identity
   argument, now clamped on the group count. *)
let grouped_probes ?jobs ~f ~at ~h ~col_mode ~groups ~rows_of_col ~base () =
  let group_values g =
    let need_plus = Array.exists (fun j -> col_mode.(j) <> Backward) g in
    let need_minus = Array.exists (fun j -> col_mode.(j) <> Forward) g in
    let probe up =
      let x = Array.copy at in
      Array.iter
        (fun j ->
          match col_mode.(j) with
          | Central -> x.(j) <- (if up then x.(j) +. h.(j) else x.(j) -. h.(j))
          | Forward -> if up then x.(j) <- x.(j) +. h.(j)
          | Backward -> if not up then x.(j) <- x.(j) -. h.(j))
        g;
      f x
    in
    let plus = if need_plus then probe true else base in
    let minus = if need_minus then probe false else base in
    Array.map
      (fun j ->
        let h = h.(j) in
        match col_mode.(j) with
        | Central ->
          Array.map (fun i -> (plus.(i) -. minus.(i)) /. (2. *. h)) (rows_of_col j)
        | Forward ->
          Array.map (fun i -> (plus.(i) -. base.(i)) /. h) (rows_of_col j)
        | Backward ->
          Array.map (fun i -> (base.(i) -. minus.(i)) /. h) (rows_of_col j))
      g
  in
  let ngroups = Array.length groups in
  let jobs =
    Stdlib.min (Pool.effective_jobs ?jobs ()) (Stdlib.max 1 (ngroups / 8))
  in
  Pool.parallel_init ~jobs ngroups (fun gi -> group_values groups.(gi))

(* CSR skeleton of the symmetric route-incidence pattern: row i stores
   exactly the columns in supports.(i). *)
let csr_skeleton supports =
  let n = Array.length supports in
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + Array.length supports.(i)
  done;
  let col_idx = Array.make row_ptr.(n) 0 in
  for i = 0 to n - 1 do
    Array.blit supports.(i) 0 col_idx row_ptr.(i) (Array.length supports.(i))
  done;
  (row_ptr, col_idx)

(* Position of stored entry (i, j): binary search of j within row i's
   sorted support. *)
let entry_pos supports row_ptr i j =
  let s = supports.(i) in
  let lo = ref 0 and hi = ref (Array.length s - 1) in
  let p = ref (-1) in
  while !p < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if s.(mid) = j then p := mid else if s.(mid) < j then lo := mid + 1 else hi := mid - 1
  done;
  if !p < 0 then invalid_arg "Jacobian: entry outside the sparsity pattern";
  row_ptr.(i) + !p

let numeric_sparse ?jobs ?(dx = 1e-7) ?(mode = Central) f ~pattern ~at =
  let n = Array.length at in
  if Sparsity.size pattern <> n then
    invalid_arg "Jacobian.numeric_sparse: pattern size mismatch";
  let supports = Sparsity.supports pattern in
  let row_ptr, col_idx = csr_skeleton supports in
  let h = step_sizes ~dx at in
  let col_mode = Array.init n (domain_mode mode ~at ~h) in
  let base = f at in
  let gvals =
    grouped_probes ?jobs ~f ~at ~h ~col_mode ~groups:(Sparsity.groups pattern)
      ~rows_of_col:(fun j -> supports.(j))
      ~base ()
  in
  let values = Array.make row_ptr.(n) 0. in
  Array.iteri
    (fun gi g ->
      Array.iteri
        (fun k j ->
          Array.iteri
            (fun m i -> values.(entry_pos supports row_ptr i j) <- gvals.(gi).(k).(m))
            supports.(j))
        g)
    (Sparsity.groups pattern);
  Mat.Sparse.create ~rows:n ~cols:n ~row_ptr ~col_idx ~values

let mode_name = function Central -> "central" | Forward -> "forward" | Backward -> "backward"

(* Past half density the CSR build stores more bookkeeping than it
   saves and the probe schedule is column-per-column anyway; the dense
   path is the honest one there. *)
let pattern_is_sparse p =
  let n = Sparsity.size p in
  2 * Sparsity.nnz p <= n * n

let controller_map controller ~net r = Controller.map controller ~net r

(* Structure-aware dense build: probe through the route-incidence
   pattern when it is genuinely sparse, densify the CSR result.
   Off-pattern finite differences are exactly +0.0 (the map component
   f_i reads only rates sharing a gateway with i, so uncoupled probes
   subtract to zero), and grouped probes are bit-for-bit lone-column
   ones, so this returns the very matrix the dense path builds —
   which is what lets both paths share one cache tier below. *)
let build_controller_df ?jobs ~dx ~mode controller ~net ~at =
  let p = Sparsity.of_network net in
  if pattern_is_sparse p then begin
    Ffc_obs.Ctx.incr_named "jac.build.sparse";
    Mat.Sparse.to_dense
      (numeric_sparse ?jobs ~dx ~mode (controller_map controller ~net) ~pattern:p ~at)
  end
  else begin
    Ffc_obs.Ctx.incr_named "jac.build.dense";
    numeric ?jobs ~dx ~mode (controller_map controller ~net) ~at
  end

let controller_key ~dx ~mode controller ~net ~at k =
  Ffc_cache.Key.float k dx;
  Ffc_cache.Key.str k (mode_name mode);
  Cache_key.add_config k (Controller.config controller);
  Cache_key.add_adjusters k (Controller.adjusters controller);
  Cache_key.add_network k net;
  Ffc_cache.Key.floats k at

(* Memoized (tier "jac.of_controller"): DF is a pure function of the
   controller design, the topology, the linearization point, the step
   and the mode.  [jobs] only shapes the fan-out — columns are
   bit-identical at every jobs count (see [numeric]) — so it is
   deliberately NOT part of the key: that is what makes cached results
   jobs-invariant.  The grouped sparse build returns the same bits as
   the dense probing path (see [build_controller_df]), so entries
   written by either remain valid for both. *)
let of_controller ?jobs ?(dx = 1e-7) ?(mode = Central) controller ~net ~at =
  Ffc_obs.Span.with_span "jac.of_controller" @@ fun () ->
  Ffc_cache.Cache.memo ~tier:"jac.of_controller"
    ~build:(controller_key ~dx ~mode controller ~net ~at)
    ~encode:(fun m -> Ffc_cache.Codec.(encode (fun b -> put_floats b (Mat.to_flat m))))
    ~decode:(fun r ->
      let flat = Ffc_cache.Codec.get_floats r in
      let n = Array.length at in
      if Array.length flat <> n * n then
        raise (Ffc_cache.Codec.Corrupt "Jacobian: flat size mismatch");
      Mat.of_flat ~rows:n ~cols:n flat)
    (fun () -> build_controller_df ?jobs ~dx ~mode controller ~net ~at)

let encode_sparse s =
  Ffc_cache.Codec.(
    encode (fun b ->
        let row_ptr, col_idx, values = Mat.Sparse.to_csr s in
        put_int b (Mat.Sparse.rows s);
        put_int b (Mat.Sparse.cols s);
        put_int b (Array.length col_idx);
        Array.iter (put_int b) row_ptr;
        Array.iter (put_int b) col_idx;
        put_floats b values))

let decode_sparse r =
  let rows = Ffc_cache.Codec.get_int r in
  let cols = Ffc_cache.Codec.get_int r in
  let nnz = Ffc_cache.Codec.get_int r in
  if rows < 0 || cols < 0 || nnz < 0 then
    raise (Ffc_cache.Codec.Corrupt "Jacobian: bad sparse dimensions");
  let row_ptr = Array.init (rows + 1) (fun _ -> Ffc_cache.Codec.get_int r) in
  let col_idx = Array.init nnz (fun _ -> Ffc_cache.Codec.get_int r) in
  let values = Ffc_cache.Codec.get_floats r in
  if Array.length values <> nnz then
    raise (Ffc_cache.Codec.Corrupt "Jacobian: sparse value count mismatch");
  try Mat.Sparse.create ~rows ~cols ~row_ptr ~col_idx ~values
  with Invalid_argument msg -> raise (Ffc_cache.Codec.Corrupt msg)

(* CSR-valued DF (tier "jac.sparse"), same key fields as the dense
   tier.  On a dense pattern the column-per-column probe runs and the
   result is masked onto the pattern — entries the mask drops are
   exactly +0.0, so nothing is lost. *)
let of_controller_sparse ?jobs ?(dx = 1e-7) ?(mode = Central) controller ~net ~at =
  Ffc_obs.Span.with_span "jac.sparse" @@ fun () ->
  Ffc_cache.Cache.memo ~tier:"jac.sparse"
    ~build:(controller_key ~dx ~mode controller ~net ~at)
    ~encode:encode_sparse ~decode:decode_sparse
    (fun () ->
      let p = Sparsity.of_network net in
      if pattern_is_sparse p then begin
        Ffc_obs.Ctx.incr_named "jac.build.sparse";
        numeric_sparse ?jobs ~dx ~mode (controller_map controller ~net) ~pattern:p ~at
      end
      else begin
        Ffc_obs.Ctx.incr_named "jac.build.dense";
        Mat.Sparse.of_dense ~pattern:(Sparsity.supports p)
          (numeric ?jobs ~dx ~mode (controller_map controller ~net) ~at)
      end)

(* Incremental rebuild after flow churn.  With [prev] = DF at
   [prev_at], only entries (i, j) whose row i is structurally coupled
   to a changed coordinate can differ at [at]: every value f_i reads is
   in support(i), so if no changed coordinate intersects support(i) —
   and column j's own rate and step are unchanged, which holds because
   changed columns are coupled to themselves — the finite difference
   reproduces the previous bits exactly.  Those rows R are re-probed
   through a coloring restricted to conflicts on R, and the probes
   evaluate only the touched sub-network ([Controller.map_rows]), so
   the cost scales with the churn-affected region, not the system.

   The patched matrix is therefore bit-for-bit [of_controller_sparse]
   at [at] — independent of [prev] — which is what makes it safe to
   memoize (tier "jac.update") on the destination point alone. *)
let update_flow ?jobs ?(dx = 1e-7) ?(mode = Central) controller ~net ~prev ~prev_at
    ~at =
  let n = Array.length at in
  if Array.length prev_at <> n then
    invalid_arg "Jacobian.update_flow: point size mismatch";
  if Mat.Sparse.rows prev <> n || Mat.Sparse.cols prev <> n then
    invalid_arg "Jacobian.update_flow: previous Jacobian size mismatch";
  Ffc_obs.Span.with_span "jac.update" @@ fun () ->
  Ffc_cache.Cache.memo ~tier:"jac.update"
    ~build:(controller_key ~dx ~mode controller ~net ~at)
    ~encode:encode_sparse ~decode:decode_sparse
    (fun () ->
      let p = Sparsity.of_network net in
      if Sparsity.nnz p <> Mat.Sparse.nnz prev then
        invalid_arg "Jacobian.update_flow: previous Jacobian pattern mismatch";
      let supports = Sparsity.supports p in
      let bits = Int64.bits_of_float in
      let changed = ref [] in
      for j = n - 1 downto 0 do
        if bits at.(j) <> bits prev_at.(j) then changed := j :: !changed
      done;
      match !changed with
      | [] -> Mat.Sparse.copy prev
      | changed ->
        Ffc_obs.Ctx.incr_named "jac.update.incremental";
        (* R: rows coupled to a changed coordinate. *)
        let rmask = Array.make n false in
        List.iter
          (fun c -> Array.iter (fun i -> rmask.(i) <- true) supports.(c))
          changed;
        let rows =
          Array.of_seq
            (Seq.filter (fun i -> rmask.(i)) (Seq.init n Fun.id))
        in
        (* C: columns with at least one stored entry in R, with the rows
           each column must refresh. *)
        let rows_of = Array.make n [||] in
        let cols = ref [] in
        let cmask = Array.make n false in
        Array.iter
          (fun i ->
            Array.iter
              (fun j -> if not cmask.(j) then begin cmask.(j) <- true; cols := j :: !cols end)
              supports.(i))
          rows;
        let cols = Array.of_list (List.rev !cols) in
        Array.sort compare cols;
        Array.iter
          (fun j ->
            rows_of.(j) <- Array.of_seq (Seq.filter (fun i -> rmask.(i)) (Array.to_seq supports.(j))))
          cols;
        let groups = Sparsity.color_columns ~only_rows:rmask p cols in
        let h = step_sizes ~dx at in
        let col_mode = Array.init n (domain_mode mode ~at ~h) in
        let f = Controller.map_rows controller ~net ~rows in
        let base = f at in
        let gvals =
          grouped_probes ?jobs ~f ~at ~h ~col_mode ~groups
            ~rows_of_col:(fun j -> rows_of.(j))
            ~base ()
        in
        let out = Mat.Sparse.copy prev in
        Array.iteri
          (fun gi g ->
            Array.iteri
              (fun k j ->
                Array.iteri
                  (fun m i -> Mat.Sparse.set_existing out i j gvals.(gi).(k).(m))
                  rows_of.(j))
              g)
          groups;
        out)

let unilaterally_stable ?(tol = 1e-9) df =
  let d = Mat.diagonal df in
  Array.for_all (fun x -> Float.abs x < 1. -. tol) d

let systemically_stable ?tol ?ignore_unit ?struct_tol df =
  Eigen.is_linearly_stable ?tol ?ignore_unit ?struct_tol df

(* Cached eigen spectra (tiers "eigen.spectrum"/"eigen.spectrum_sorted"/
   "eigen.spectrum.sparse"): keyed on the matrix content, so they
   compose with the cached DF above — a warm run rebuilds neither the
   columns nor the QR iteration. *)

let encode_spectrum ev =
  Ffc_cache.Codec.(
    encode (fun b ->
        put_int b (Array.length ev);
        Array.iter
          (fun z ->
            put_float b z.Complex.re;
            put_float b z.Complex.im)
          ev))

let decode_spectrum r =
  let n = Ffc_cache.Codec.get_int r in
  if n < 0 then raise (Ffc_cache.Codec.Corrupt "Jacobian: negative spectrum length");
  Array.init n (fun _ ->
      let re = Ffc_cache.Codec.get_float r in
      let im = Ffc_cache.Codec.get_float r in
      { Complex.re; im })

let add_struct_tol ~struct_tol k =
  match struct_tol with
  | None -> Ffc_cache.Key.bool k false
  | Some t ->
    Ffc_cache.Key.bool k true;
    Ffc_cache.Key.float k t

let spectrum_key ~struct_tol df k =
  add_struct_tol ~struct_tol k;
  Cache_key.add_mat k df

let sparse_spectrum_key ~struct_tol s k =
  add_struct_tol ~struct_tol k;
  let row_ptr, col_idx, values = Mat.Sparse.to_csr s in
  Ffc_cache.Key.int k (Mat.Sparse.rows s);
  Ffc_cache.Key.int k (Mat.Sparse.cols s);
  Array.iter (Ffc_cache.Key.int k) row_ptr;
  Array.iter (Ffc_cache.Key.int k) col_idx;
  Ffc_cache.Key.floats k values

let eigenvalues ?struct_tol df =
  Ffc_cache.Cache.memo ~tier:"eigen.spectrum"
    ~build:(spectrum_key ~struct_tol df)
    ~encode:encode_spectrum ~decode:decode_spectrum
    (fun () -> Eigen.eigenvalues ?struct_tol df)

let eigenvalues_sorted ?struct_tol df =
  Ffc_cache.Cache.memo ~tier:"eigen.spectrum_sorted"
    ~build:(spectrum_key ~struct_tol df)
    ~encode:encode_spectrum ~decode:decode_spectrum
    (fun () -> Eigen.eigenvalues_sorted ?struct_tol df)

let eigenvalues_sparse ?struct_tol s =
  Ffc_cache.Cache.memo ~tier:"eigen.spectrum.sparse"
    ~build:(sparse_spectrum_key ~struct_tol s)
    ~encode:encode_spectrum ~decode:decode_spectrum
    (fun () -> Eigen.eigenvalues_sparse ?struct_tol s)

let spectral_radius_of ev =
  Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 0. ev

(* Same fold Eigen.spectral_radius uses, over the cached spectrum.
   [struct_tol] is threaded through to the structure detection — it
   used to be silently dropped here, so a caller asking for a relaxed
   triangularity tolerance still paid (and keyed) the exact-zero
   default. *)
let spectral_radius ?struct_tol df = spectral_radius_of (eigenvalues ?struct_tol df)

let spectral_radius_sparse ?struct_tol s =
  spectral_radius_of (eigenvalues_sparse ?struct_tol s)

(* Cheap rho(DF) after an incremental update: the structural diagonal
   when the updated CSR is (permuted) triangular — O(nnz); otherwise a
   power iteration for the dominant pair, cross-checked by a deflated
   second iteration that must not find anything of larger modulus.
   Matrices that fail either check fall back to the full (cached)
   spectrum, so the estimate is never silently wrong. *)
let spectral_radius_incremental ?struct_tol s =
  match Eigen.structural_eigenvalues_sparse ?tol:struct_tol s with
  | Some d ->
    Ffc_obs.Ctx.incr_named "jac.rho.structural";
    Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. d
  | None -> (
    let fallback () =
      Ffc_obs.Ctx.incr_named "jac.rho.fallback";
      spectral_radius_sparse ?struct_tol s
    in
    match Eigen.power_iteration_sparse s with
    | None -> fallback ()
    | Some (lam, v) -> (
      let rho = Float.abs lam in
      match Eigen.power_iteration_sparse ~deflate:v s with
      | Some (lam2, _) when Float.abs lam2 <= rho *. (1. +. 1e-9) ->
        Ffc_obs.Ctx.incr_named "jac.rho.power";
        rho
      | Some _ | None -> fallback ()))

let triangular_in_rate_order ?(tol = 1e-6) df ~rates =
  let n = Array.length rates in
  if Mat.rows df <> n then invalid_arg "Jacobian.triangular_in_rate_order: size mismatch";
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare rates.(a) rates.(b)) order;
  Mat.is_lower_triangular ~tol (Mat.permute_rows_cols df order)

let diagonal = Mat.diagonal
