open Ffc_numerics

type mode = Central | Forward | Backward

let numeric ?jobs ?(dx = 1e-7) ?(mode = Central) f ~at =
  let n = Array.length at in
  let h = Array.init n (fun j -> dx *. (1. +. Float.abs at.(j))) in
  (* The flow-control map lives on r >= 0: fall back to a forward
     difference when a central probe would leave the domain. *)
  let col_mode =
    Array.init n (fun j ->
        if mode = Central && at.(j) -. h.(j) < 0. then Forward else mode)
  in
  (* The shared base evaluation f(at) is forced once, before the fan-out,
     so the per-column closures only read it — no lazy cell is raced
     between domains. *)
  let base =
    if Array.exists (fun m -> m <> Central) col_mode then Some (f at) else None
  in
  let column j =
    let bump delta =
      let x = Array.copy at in
      x.(j) <- x.(j) +. delta;
      f x
    in
    let h = h.(j) in
    match col_mode.(j) with
    | Central ->
      let plus = bump h and minus = bump (-.h) in
      Array.init n (fun i -> (plus.(i) -. minus.(i)) /. (2. *. h))
    | Forward ->
      let plus = bump h and base = Option.get base in
      Array.init n (fun i -> (plus.(i) -. base.(i)) /. h)
    | Backward ->
      let minus = bump (-.h) and base = Option.get base in
      Array.init n (fun i -> (base.(i) -. minus.(i)) /. h)
  in
  (* Columns are independent and each is a deterministic function of
     (f, at, j), so fanning them out over the pool returns bit-identical
     matrices at every jobs count.  Small systems stay sequential: a
     domain spawn costs more than a handful of map evaluations. *)
  let jobs = Stdlib.min (Pool.effective_jobs ?jobs ()) (Stdlib.max 1 (n / 8)) in
  let cols = Pool.parallel_init ~jobs n column in
  Mat.init n n (fun i j -> cols.(j).(i))

let mode_name = function Central -> "central" | Forward -> "forward" | Backward -> "backward"

(* Memoized (tier "jac.of_controller"): DF is a pure function of the
   controller design, the topology, the linearization point, the step
   and the mode.  [jobs] only shapes the fan-out — columns are
   bit-identical at every jobs count (see [numeric]) — so it is
   deliberately NOT part of the key: that is what makes cached results
   jobs-invariant. *)
let of_controller ?jobs ?(dx = 1e-7) ?(mode = Central) controller ~net ~at =
  Ffc_cache.Cache.memo ~tier:"jac.of_controller"
    ~build:(fun k ->
      Ffc_cache.Key.float k dx;
      Ffc_cache.Key.str k (mode_name mode);
      Cache_key.add_config k (Controller.config controller);
      Cache_key.add_adjusters k (Controller.adjusters controller);
      Cache_key.add_network k net;
      Ffc_cache.Key.floats k at)
    ~encode:(fun m -> Ffc_cache.Codec.(encode (fun b -> put_floats b (Mat.to_flat m))))
    ~decode:(fun r ->
      let flat = Ffc_cache.Codec.get_floats r in
      let n = Array.length at in
      if Array.length flat <> n * n then
        raise (Ffc_cache.Codec.Corrupt "Jacobian: flat size mismatch");
      Mat.of_flat ~rows:n ~cols:n flat)
    (fun () -> numeric ?jobs ~dx ~mode (fun r -> Controller.map controller ~net r) ~at)

let unilaterally_stable ?(tol = 1e-9) df =
  let d = Mat.diagonal df in
  Array.for_all (fun x -> Float.abs x < 1. -. tol) d

let systemically_stable ?tol ?ignore_unit df =
  Eigen.is_linearly_stable ?tol ?ignore_unit df

(* Cached eigen spectra (tiers "eigen.spectrum"/"eigen.spectrum_sorted"):
   keyed on the matrix content, so they compose with the cached DF above
   — a warm run rebuilds neither the columns nor the QR iteration. *)

let encode_spectrum ev =
  Ffc_cache.Codec.(
    encode (fun b ->
        put_int b (Array.length ev);
        Array.iter
          (fun z ->
            put_float b z.Complex.re;
            put_float b z.Complex.im)
          ev))

let decode_spectrum r =
  let n = Ffc_cache.Codec.get_int r in
  if n < 0 then raise (Ffc_cache.Codec.Corrupt "Jacobian: negative spectrum length");
  Array.init n (fun _ ->
      let re = Ffc_cache.Codec.get_float r in
      let im = Ffc_cache.Codec.get_float r in
      { Complex.re; im })

let spectrum_key ~struct_tol df k =
  (match struct_tol with
  | None -> Ffc_cache.Key.bool k false
  | Some t ->
    Ffc_cache.Key.bool k true;
    Ffc_cache.Key.float k t);
  Cache_key.add_mat k df

let eigenvalues ?struct_tol df =
  Ffc_cache.Cache.memo ~tier:"eigen.spectrum"
    ~build:(spectrum_key ~struct_tol df)
    ~encode:encode_spectrum ~decode:decode_spectrum
    (fun () -> Eigen.eigenvalues ?struct_tol df)

let eigenvalues_sorted ?struct_tol df =
  Ffc_cache.Cache.memo ~tier:"eigen.spectrum_sorted"
    ~build:(spectrum_key ~struct_tol df)
    ~encode:encode_spectrum ~decode:decode_spectrum
    (fun () -> Eigen.eigenvalues_sorted ?struct_tol df)

(* Same fold Eigen.spectral_radius uses, over the cached spectrum. *)
let spectral_radius df =
  Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 0. (eigenvalues df)

let triangular_in_rate_order ?(tol = 1e-6) df ~rates =
  let n = Array.length rates in
  if Mat.rows df <> n then invalid_arg "Jacobian.triangular_in_rate_order: size mismatch";
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare rates.(a) rates.(b)) order;
  Mat.is_lower_triangular ~tol (Mat.permute_rows_cols df order)

let diagonal = Mat.diagonal
