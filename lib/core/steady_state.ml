open Ffc_queueing
open Ffc_topology

let steady_utilization ~signal ~b_ss =
  if not (b_ss > 0. && b_ss < 1.) then
    invalid_arg "Steady_state: b_ss must be in (0,1)";
  Mm1.g_inv (Signal.inverse signal b_ss)

let max_min_fair ~capacities ~net =
  let ng = Network.num_gateways net in
  let nc = Network.num_connections net in
  if Array.length capacities <> ng then
    invalid_arg "Steady_state.max_min_fair: capacities length mismatch";
  let remaining_cap = Array.copy capacities in
  let remaining_fanin = Array.init ng (fun a -> Network.fanin net a) in
  let rates = Array.make nc 0. in
  let active = Array.make nc true in
  let active_count = ref nc in
  while !active_count > 0 do
    (* Gateway with the smallest equal share among gateways that still
       carry active connections. *)
    let best = ref (-1) in
    let best_share = ref Float.infinity in
    for a = 0 to ng - 1 do
      if remaining_fanin.(a) > 0 then begin
        let share = remaining_cap.(a) /. float_of_int remaining_fanin.(a) in
        if share < !best_share then begin
          best_share := share;
          best := a
        end
      end
    done;
    if !best < 0 then begin
      (* No gateway constrains the remaining connections; they are
         unconstrained in this capacity model, which cannot happen when
         every connection crosses at least one gateway. *)
      active_count := 0
    end
    else begin
      let share = Float.max 0. !best_share in
      List.iter
        (fun i ->
          if active.(i) then begin
            rates.(i) <- share;
            active.(i) <- false;
            decr active_count;
            List.iter
              (fun a ->
                remaining_cap.(a) <- remaining_cap.(a) -. share;
                remaining_fanin.(a) <- remaining_fanin.(a) - 1)
              (Network.gateways_of_connection net i)
          end)
        (Network.connections_at_gateway net !best)
    end
  done;
  rates

let bottleneck_shares ~signal ~b_ss ~net =
  let rho = steady_utilization ~signal ~b_ss in
  Array.init (Network.num_gateways net) (fun a ->
      (Network.gateway net a).Network.mu *. rho)

(* Memoized (tier "steady.fair"): the water-filling is a pure function
   of the signal curve, the steady signal level and the topology, and
   it anchors most experiment cells — the canonical tier-1 cache
   target.  Uncached when no ambient cache is installed. *)
let fair ~signal ~b_ss ~net =
  Ffc_cache.Cache.memo ~tier:"steady.fair"
    ~build:(fun k ->
      Ffc_cache.Key.str k (Signal.name signal);
      Ffc_cache.Key.float k b_ss;
      Cache_key.add_network k net)
    ~encode:(fun rates -> Ffc_cache.Codec.(encode (fun b -> put_floats b rates)))
    ~decode:Ffc_cache.Codec.get_floats
    (fun () ->
      let capacities = bottleneck_shares ~signal ~b_ss ~net in
      max_min_fair ~capacities ~net)
