open Ffc_queueing
open Ffc_topology

let steady_utilization ~signal ~b_ss =
  if not (b_ss > 0. && b_ss < 1.) then
    invalid_arg "Steady_state: b_ss must be in (0,1)";
  Mm1.g_inv (Signal.inverse signal b_ss)

(* Water-filling over a subset of the connections: inactive ones hold
   rate 0 and consume neither capacity nor fan-in.  With an all-true
   mask this is exactly [max_min_fair].  The gateway scan and the
   freeze order are index-ascending as in the unmasked loop, so the
   fill decomposes bitwise over connected components of the
   gateway-sharing graph on active connections — per-gateway arithmetic
   never reads state from another component, and within a component the
   pick sequence is the same whether or not other components are
   present.  The incremental [update_fair] below rests on that. *)
let max_min_fair_masked ~capacities ~net ~active =
  let ng = Network.num_gateways net in
  let nc = Network.num_connections net in
  if Array.length capacities <> ng then
    invalid_arg "Steady_state.max_min_fair: capacities length mismatch";
  if Array.length active <> nc then
    invalid_arg "Steady_state.max_min_fair_masked: mask length mismatch";
  let remaining_cap = Array.copy capacities in
  let remaining_fanin =
    Array.init ng (fun a ->
        List.fold_left
          (fun acc i -> if active.(i) then acc + 1 else acc)
          0
          (Network.connections_at_gateway net a))
  in
  let rates = Array.make nc 0. in
  let active = Array.copy active in
  let active_count = ref (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 active) in
  while !active_count > 0 do
    (* Gateway with the smallest equal share among gateways that still
       carry active connections. *)
    let best = ref (-1) in
    let best_share = ref Float.infinity in
    for a = 0 to ng - 1 do
      if remaining_fanin.(a) > 0 then begin
        let share = remaining_cap.(a) /. float_of_int remaining_fanin.(a) in
        if share < !best_share then begin
          best_share := share;
          best := a
        end
      end
    done;
    if !best < 0 then begin
      (* No gateway constrains the remaining connections; they are
         unconstrained in this capacity model, which cannot happen when
         every connection crosses at least one gateway. *)
      active_count := 0
    end
    else begin
      let share = Float.max 0. !best_share in
      List.iter
        (fun i ->
          if active.(i) then begin
            rates.(i) <- share;
            active.(i) <- false;
            decr active_count;
            List.iter
              (fun a ->
                remaining_cap.(a) <- remaining_cap.(a) -. share;
                remaining_fanin.(a) <- remaining_fanin.(a) - 1)
              (Network.gateways_of_connection net i)
          end)
        (Network.connections_at_gateway net !best)
    end
  done;
  rates

let max_min_fair ~capacities ~net =
  (* [remaining_fanin] starts at [Network.fanin] exactly as before: the
     masked loop counts the all-true mask to the same numbers. *)
  max_min_fair_masked ~capacities ~net
    ~active:(Array.make (Network.num_connections net) true)

let bottleneck_shares ~signal ~b_ss ~net =
  let rho = steady_utilization ~signal ~b_ss in
  Array.init (Network.num_gateways net) (fun a ->
      (Network.gateway net a).Network.mu *. rho)

(* Memoized (tier "steady.fair"): the water-filling is a pure function
   of the signal curve, the steady signal level and the topology, and
   it anchors most experiment cells — the canonical tier-1 cache
   target.  Uncached when no ambient cache is installed. *)
let fair ~signal ~b_ss ~net =
  Ffc_obs.Span.with_span "steady.fair" @@ fun () ->
  Ffc_cache.Cache.memo ~tier:"steady.fair"
    ~build:(fun k ->
      Ffc_cache.Key.str k (Signal.name signal);
      Ffc_cache.Key.float k b_ss;
      Cache_key.add_network k net)
    ~encode:(fun rates -> Ffc_cache.Codec.(encode (fun b -> put_floats b rates)))
    ~decode:Ffc_cache.Codec.get_floats
    (fun () ->
      let capacities = bottleneck_shares ~signal ~b_ss ~net in
      max_min_fair ~capacities ~net)

let add_mask k active =
  Ffc_cache.Key.int k (Array.length active);
  Array.iter (Ffc_cache.Key.bool k) active

(* Memoized (tier "steady.fair_masked"): [fair] over a churn mask —
   the steady state the churn experiments re-solve at every join and
   leave. *)
let fair_masked ~signal ~b_ss ~net ~active =
  Ffc_obs.Span.with_span "steady.fair_masked" @@ fun () ->
  Ffc_cache.Cache.memo ~tier:"steady.fair_masked"
    ~build:(fun k ->
      Ffc_cache.Key.str k (Signal.name signal);
      Ffc_cache.Key.float k b_ss;
      Cache_key.add_network k net;
      add_mask k active)
    ~encode:(fun rates -> Ffc_cache.Codec.(encode (fun b -> put_floats b rates)))
    ~decode:Ffc_cache.Codec.get_floats
    (fun () ->
      let capacities = bottleneck_shares ~signal ~b_ss ~net in
      max_min_fair_masked ~capacities ~net ~active)

(* Incremental re-solve after activity churn.  The fill decomposes over
   connected components of the gateway-sharing graph (see
   [max_min_fair_masked]), so only the components touching a changed
   connection need refilling; everyone else keeps the previous bits.
   Components are taken in the graph over connections active in either
   mask — a superset of both masks' components — so the refill region
   is closed under both the old and the new coupling.  The result is
   bit-for-bit [fair_masked ~active], independent of [prev], which is
   what makes it safe to memoize (tier "ss.update") on the new mask
   alone. *)
let update_fair ~signal ~b_ss ~net ~prev ~prev_active ~active =
  let nc = Network.num_connections net in
  if Array.length prev <> nc || Array.length prev_active <> nc
     || Array.length active <> nc
  then invalid_arg "Steady_state.update_fair: size mismatch";
  Ffc_obs.Span.with_span "steady.update" @@ fun () ->
  Ffc_cache.Cache.memo ~tier:"ss.update"
    ~build:(fun k ->
      Ffc_cache.Key.str k (Signal.name signal);
      Ffc_cache.Key.float k b_ss;
      Cache_key.add_network k net;
      add_mask k active)
    ~encode:(fun rates -> Ffc_cache.Codec.(encode (fun b -> put_floats b rates)))
    ~decode:Ffc_cache.Codec.get_floats
    (fun () ->
      let changed = ref [] in
      for i = nc - 1 downto 0 do
        if prev_active.(i) <> active.(i) then changed := i :: !changed
      done;
      match !changed with
      | [] -> Array.copy prev
      | changed ->
        Ffc_obs.Ctx.incr_named "ss.update.incremental";
        (* Flood the union graph from the changed connections: two
           connections are adjacent when they share a gateway and both
           are active in either mask. *)
        let union_active i = prev_active.(i) || active.(i) in
        let in_region = Array.make nc false in
        let stack = ref (List.filter union_active changed) in
        List.iter (fun i -> in_region.(i) <- true) !stack;
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | i :: rest ->
            stack := rest;
            List.iter
              (fun a ->
                List.iter
                  (fun j ->
                    if union_active j && not in_region.(j) then begin
                      in_region.(j) <- true;
                      stack := j :: !stack
                    end)
                  (Network.connections_at_gateway net a))
              (Network.gateways_of_connection net i)
        done;
        let submask = Array.init nc (fun i -> in_region.(i) && active.(i)) in
        let capacities = bottleneck_shares ~signal ~b_ss ~net in
        let refill = max_min_fair_masked ~capacities ~net ~active:submask in
        Array.init nc (fun i ->
            if in_region.(i) then refill.(i)
            else if active.(i) then prev.(i)
            else 0.))
