let csv_of_trajectory ?names traj =
  if Array.length traj = 0 then "step\n"
  else begin
    let dim = Array.length traj.(0) in
    let names =
      match names with
      | Some ns ->
        if Array.length ns <> dim then
          invalid_arg "Trace.csv_of_trajectory: names length mismatch";
        ns
      | None -> Array.init dim (Printf.sprintf "r%d")
    in
    let buf = Buffer.create (Array.length traj * dim * 12) in
    Buffer.add_string buf "step";
    Array.iter
      (fun n ->
        Buffer.add_char buf ',';
        Buffer.add_string buf n)
      names;
    Buffer.add_char buf '\n';
    Array.iteri
      (fun k state ->
        if Array.length state <> dim then
          invalid_arg "Trace.csv_of_trajectory: ragged trajectory";
        Buffer.add_string buf (string_of_int k);
        Array.iter
          (fun x ->
            Buffer.add_char buf ',';
            Buffer.add_string buf (Ffc_obs.Jsonf.float_rt x))
          state;
        Buffer.add_char buf '\n')
      traj;
    Buffer.contents buf
  end

let csv_of_series ~name xs =
  csv_of_trajectory ~names:[| name |] (Array.map (fun x -> [| x |]) xs)

let write_file ~path content = Ffc_obs.Sink.write_file ~path content
