(** Steady-state theory: the fair construction of Theorem 2.

    For a TSI algorithm with steady signal b_SS, every bottleneck gateway
    is pinned at congestion C_SS = B⁻¹(b_SS), i.e. at utilization
    ρ_SS = C_SS/(1+C_SS).  The unique fair steady state is then the
    max-min fair ("water-filling") allocation against per-gateway
    capacities μ^a·ρ_SS: repeatedly find the gateway with the smallest
    equal share, freeze its connections at that share, remove them, and
    continue (the construction in the proof of Theorem 2).  By the
    Corollary this is also the unique steady state of every TSI
    {e individual}-feedback algorithm, whatever the service discipline. *)

open Ffc_numerics
open Ffc_topology

val steady_utilization : signal:Signal.t -> b_ss:float -> float
(** ρ_SS = g⁻¹(B⁻¹(b_SS)) ∈ [0, 1). *)

val fair : signal:Signal.t -> b_ss:float -> net:Network.t -> Vec.t
(** The unique fair steady state. Requires [b_ss] ∈ (0, 1) and every
    gateway to carry at least one connection. *)

val bottleneck_shares : signal:Signal.t -> b_ss:float -> net:Network.t -> float array
(** Per-gateway capacity μ^a·ρ_SS used by the construction (diagnostic). *)

val max_min_fair : capacities:float array -> net:Network.t -> Vec.t
(** The underlying water-filling against arbitrary per-gateway
    capacities — exposed for reuse and tests. *)

val max_min_fair_masked :
  capacities:float array -> net:Network.t -> active:bool array -> Vec.t
(** {!max_min_fair} restricted to the connections with
    [active.(i) = true]; inactive connections hold rate 0 and consume
    neither capacity nor gateway fan-in.  With an all-true mask this is
    bit-for-bit {!max_min_fair}.  The fill decomposes bitwise over
    connected components of the gateway-sharing graph on active
    connections — the property {!update_fair} exploits. *)

val fair_masked :
  signal:Signal.t -> b_ss:float -> net:Network.t -> active:bool array -> Vec.t
(** The fair steady state of the active sub-population (memoized, tier
    ["steady.fair_masked"]) — what the system settles to while some
    flows have left. *)

val update_fair :
  signal:Signal.t -> b_ss:float -> net:Network.t -> prev:Vec.t ->
  prev_active:bool array -> active:bool array -> Vec.t
(** Incremental re-solve after joins/leaves: given [prev] =
    {!fair_masked} at [prev_active], refills only the gateway-sharing
    components touched by a changed connection and keeps everyone
    else's previous bits.  The result is bit-for-bit
    {!fair_masked ~active} — independent of [prev] — and is memoized on
    the new mask alone (tier ["ss.update"]). *)
