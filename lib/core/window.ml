open Ffc_numerics
open Ffc_topology

let default_solver_tol = 1e-10
let default_solver_max_iter = 50_000

let solve_rates ~tol ~max_iter config ~net ~windows =
  let n = Network.num_connections net in
  if Array.length windows <> n then
    invalid_arg "Window.rates_of_windows: windows length mismatch";
  Array.iter
    (fun w ->
      if (not (Float.is_finite w)) || w < 0. then
        invalid_arg "Window.rates_of_windows: windows must be finite and non-negative")
    windows;
  (* Gauss-Seidel sweeps: for each connection in turn, solve the scalar
     equation r_i = w_i / d_i(r) with the other rates held fixed.  d_i is
     increasing in r_i, so h(r_i) = w_i/d_i − r_i is strictly decreasing
     with a unique root, found by bisection — robust arbitrarily close to
     saturation (where naive fixed-point iteration on r = w/d
     oscillates). *)
  let r = Array.make n 0. in
  let solve_component i =
    if windows.(i) = 0. then r.(i) <- 0.
    else begin
      let residual x =
        r.(i) <- x;
        let d = (Feedback.delays config ~net ~rates:r).(i) in
        if d = Float.infinity then -.x else (windows.(i) /. d) -. x
      in
      (* Upper bracket: the rate a window commands at the empty-network
         delay; h is <= 0 there. *)
      r.(i) <- 0.;
      let d0 = (Feedback.delays config ~net ~rates:r).(i) in
      let hi = windows.(i) /. d0 in
      let lo = ref 0. and hi = ref hi in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if residual mid > 0. then lo := mid else hi := mid
      done;
      r.(i) <- 0.5 *. (!lo +. !hi)
    end
  in
  let finished = ref false in
  let sweep = ref 0 in
  while (not !finished) && !sweep < max_iter do
    incr sweep;
    let before = Array.copy r in
    for i = 0 to n - 1 do
      solve_component i
    done;
    if Vec.dist_inf r before <= tol *. (1. +. Vec.norm_inf r) then finished := true
  done;
  r

(* The public fixed-point solver is memoized (tier "window.rates"); the
   run loop below calls [solve_rates] directly so a 20k-step trajectory
   does one whole-run lookup, not 20k per-step ones. *)
let rates_of_windows ?(tol = default_solver_tol) ?(max_iter = default_solver_max_iter)
    config ~net ~windows =
  Ffc_cache.Cache.memo ~tier:"window.rates"
    ~build:(fun k ->
      Ffc_cache.Key.float k tol;
      Ffc_cache.Key.int k max_iter;
      Cache_key.add_config k config;
      Cache_key.add_network k net;
      Ffc_cache.Key.floats k windows)
    ~encode:(fun rates -> Ffc_cache.Codec.(encode (fun b -> put_floats b rates)))
    ~decode:Ffc_cache.Codec.get_floats
    (fun () -> solve_rates ~tol ~max_iter config ~net ~windows)

type adjuster = { name : string; f : w:float -> b:float -> d:float -> float }

let adjuster_name a = a.name

let make_adjuster ~name f = { name; f }

let additive_tsi ~eta ~beta =
  if not (eta > 0.) then invalid_arg "Window.additive_tsi: eta must be positive";
  if not (beta > 0. && beta < 1.) then
    invalid_arg "Window.additive_tsi: beta must be in (0,1)";
  make_adjuster
    ~name:(Printf.sprintf "window-additive(eta=%g,beta=%g)" eta beta)
    (fun ~w:_ ~b ~d:_ -> eta *. (beta -. b))

let decbit ~eta ~beta =
  if not (eta > 0.) then invalid_arg "Window.decbit: eta must be positive";
  if not (beta > 0. && beta < 1.) then invalid_arg "Window.decbit: beta must be in (0,1)";
  make_adjuster
    ~name:(Printf.sprintf "window-decbit(eta=%g,beta=%g)" eta beta)
    (fun ~w ~b ~d:_ -> ((1. -. b) *. eta) -. (beta *. b *. w))

type outcome =
  | Converged of { windows : Vec.t; rates : Vec.t; steps : int }
  | No_convergence of { windows : Vec.t; rates : Vec.t }
  | Diverged of { windows : Vec.t; at_step : int }

let encode_outcome o =
  Ffc_cache.Codec.(
    encode (fun b ->
        match o with
        | Converged { windows; rates; steps } ->
          put_int b 0;
          put_floats b windows;
          put_floats b rates;
          put_int b steps
        | No_convergence { windows; rates } ->
          put_int b 1;
          put_floats b windows;
          put_floats b rates
        | Diverged { windows; at_step } ->
          put_int b 2;
          put_floats b windows;
          put_int b at_step))

let decode_outcome r =
  Ffc_cache.Codec.(
    match get_int r with
    | 0 ->
      let windows = get_floats r in
      let rates = get_floats r in
      Converged { windows; rates; steps = get_int r }
    | 1 ->
      let windows = get_floats r in
      No_convergence { windows; rates = get_floats r }
    | 2 ->
      let windows = get_floats r in
      Diverged { windows; at_step = get_int r }
    | tag -> raise (Corrupt (Printf.sprintf "Window.outcome: unknown tag %d" tag)))

let run_uncached ~tol ~max_steps config ~net ~adjusters ~w0 =
  let n = Network.num_connections net in
  if Array.length adjusters <> n then invalid_arg "Window.run: adjuster count mismatch";
  if Array.length w0 <> n then invalid_arg "Window.run: w0 length mismatch";
  let solve windows =
    solve_rates ~tol:default_solver_tol ~max_iter:default_solver_max_iter config ~net
      ~windows
  in
  let w = ref (Array.copy w0) in
  let result = ref None in
  let quiet = ref 0 in
  let step = ref 0 in
  while !result = None && !step < max_steps do
    incr step;
    let rates = solve !w in
    let b = Feedback.signals config ~net ~rates in
    let d = Feedback.delays config ~net ~rates in
    let next =
      Array.mapi
        (fun i wi ->
          let dw = (adjusters.(i)).f ~w:wi ~b:b.(i) ~d:d.(i) in
          Float.max 0. (wi +. dw))
        !w
    in
    (* A NaN or ±∞ step escapes max(0, w + dw) — NaN because max
       propagates it, +∞ because it is a legal upper bound — and would
       only surface one step later as rates_of_windows's unrelated
       "windows must be finite" invalid_arg.  Classify it here as
       divergence, the way Controller.run treats non-finite rates. *)
    if Array.exists (fun wi -> not (Float.is_finite wi)) next then
      result := Some (Diverged { windows = next; at_step = !step })
    else begin
      if Vec.dist_inf next !w <= tol *. (1. +. Vec.norm_inf next) then begin
        incr quiet;
        if !quiet >= 3 then begin
          let rates = solve next in
          result := Some (Converged { windows = next; rates; steps = !step })
        end
      end
      else quiet := 0;
      w := next
    end
  done;
  match !result with
  | Some o -> o
  | None ->
    let rates = solve !w in
    No_convergence { windows = !w; rates }

(* Whole-trajectory memoization (tier "window.run"): the run is a pure
   function of its tolerances, the feedback design, the topology, the
   adjuster names (which embed their parameters — the naming contract
   of docs/CACHING.md) and the start vector. *)
let run ?(tol = 1e-9) ?(max_steps = 20_000) config ~net ~adjusters ~w0 =
  Ffc_cache.Cache.memo ~tier:"window.run"
    ~build:(fun k ->
      Ffc_cache.Key.float k tol;
      Ffc_cache.Key.int k max_steps;
      Cache_key.add_config k config;
      Cache_key.add_network k net;
      Ffc_cache.Key.strs k (Array.to_list (Array.map adjuster_name adjusters));
      Ffc_cache.Key.floats k w0)
    ~encode:encode_outcome ~decode:decode_outcome
    (fun () -> run_uncached ~tol ~max_steps config ~net ~adjusters ~w0)
