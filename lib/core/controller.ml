open Ffc_numerics
open Ffc_topology

type t = { config : Feedback.config; adjusters : Rate_adjust.t array }

let create ~config ~adjusters =
  if Array.length adjusters = 0 then invalid_arg "Controller.create: no adjusters";
  { config; adjusters }

let homogeneous ~config ~adjuster ~n =
  if n <= 0 then invalid_arg "Controller.homogeneous: need n > 0";
  { config; adjusters = Array.make n adjuster }

let config t = t.config
let adjusters t = t.adjusters

let check_net t net rates =
  let n = Network.num_connections net in
  if Array.length t.adjusters <> n then
    invalid_arg "Controller: adjuster count does not match the network";
  if Array.length rates <> n then
    invalid_arg "Controller: rate vector does not match the network"

let apply_feedback t ~b ~d rates =
  let n = Array.length rates in
  if Array.length t.adjusters <> n then
    invalid_arg "Controller.apply_feedback: adjuster count mismatch";
  if Array.length b <> n || Array.length d <> n then
    invalid_arg "Controller.apply_feedback: feedback length mismatch";
  Array.mapi
    (fun i r ->
      let dr = Rate_adjust.eval t.adjusters.(i) ~r ~b:b.(i) ~d:d.(i) in
      Float.max 0. (r +. dr))
    rates

let step t ~net rates =
  check_net t net rates;
  Ffc_obs.Ctx.incr_controller_steps ();
  let b, d = Feedback.evaluate t.config ~net ~rates in
  apply_feedback t ~b ~d rates

let map = step

(* Restricted map: F_i for i in [rows] only, via the row-restricted
   feedback pass.  The entries at [rows] are bit-for-bit those of
   [map]; the rest are 0.  Counted separately from full controller
   steps — a partial evaluation is not a step of the iteration. *)
let map_rows t ~net ~rows rates =
  check_net t net rates;
  Ffc_obs.Ctx.incr_named "controller.partial_steps";
  let b, d = Feedback.evaluate_rows t.config ~net ~rates ~rows in
  let out = Array.make (Array.length rates) 0. in
  Array.iter
    (fun i ->
      let dr = Rate_adjust.eval t.adjusters.(i) ~r:rates.(i) ~b:b.(i) ~d:d.(i) in
      out.(i) <- Float.max 0. (rates.(i) +. dr))
    rows;
  out

let step_subset t ~net ~mask rates =
  check_net t net rates;
  if Array.length mask <> Array.length rates then
    invalid_arg "Controller.step_subset: mask length mismatch";
  let b, d = Feedback.evaluate t.config ~net ~rates in
  Array.mapi
    (fun i r ->
      if mask.(i) then begin
        let dr = Rate_adjust.eval t.adjusters.(i) ~r ~b:b.(i) ~d:d.(i) in
        Float.max 0. (r +. dr)
      end
      else r)
    rates

let trajectory t ~net ~r0 ~steps =
  (* Store a private copy of r0: [Array.make] would alias the caller's
     array into out.(0), letting later caller mutation corrupt the
     recorded history. *)
  let out = Array.make (steps + 1) (Array.copy r0) in
  for k = 1 to steps do
    out.(k) <- step t ~net out.(k - 1)
  done;
  out

type outcome =
  | Converged of { steady : Vec.t; steps : int }
  | Cycle of { period : int; orbit : Vec.t array }
  | Diverged of { at_step : int }
  | No_convergence of { last : Vec.t }

let outcome_label = function
  | Converged _ -> "converged"
  | Cycle _ -> "cycle"
  | Diverged _ -> "diverged"
  | No_convergence _ -> "no_convergence"

(* The step count a reader most wants per outcome kind: convergence
   step, cycle period, divergence step; 0 when the loop just ran out. *)
let outcome_steps = function
  | Converged { steps; _ } -> steps
  | Cycle { period; _ } -> period
  | Diverged { at_step; _ } -> at_step
  | No_convergence _ -> 0

let observe_outcome outcome =
  Ffc_obs.Ctx.incr_named "controller.runs";
  Ffc_obs.Ctx.incr_named ("controller.runs." ^ outcome_label outcome);
  (match Ffc_obs.Ctx.tracing () with
  | Some c ->
    Ffc_obs.Ctx.emit c
      (Ffc_obs.Event.ctrl_outcome
         ~outcome:(outcome_label outcome)
         ~steps:(outcome_steps outcome))
  | None -> ());
  outcome

(* A rate vector counts as escaped when any component is non-finite or
   beyond the threshold.  NaN must be caught explicitly: [Float.abs nan
   > escape] is false, so a bare threshold comparison would let a NaN
   state sail on into the queueing layer, which rejects it with an
   exception instead of a clean [Diverged]. *)
let escaped ~escape v =
  Array.exists (fun x -> (not (Float.is_finite x)) || Float.abs x > escape) v

let run_map ?(tol = 1e-10) ?(max_steps = 20_000) ?(min_steps = 0) ?(max_period = 32)
    ?(escape = 1e12) ~map ~r0 () =
  (* A private copy of r0, for the same aliasing reason as [trajectory]:
     every window slot starts as the same array, and slot 0 may survive
     into the result (e.g. [No_convergence] at max_steps 0). *)
  let r0 = Array.copy r0 in
  let window = Array.make (4 * max_period) r0 in
  let window_len = Array.length window in
  let push k v = window.(k mod window_len) <- v in
  let get k = window.(k mod window_len) in
  push 0 r0;
  let result = ref None in
  (* The start itself may already be out of bounds (or NaN): report it
     as divergence at step 0 rather than crashing inside the queueing
     layer's rate validation. *)
  if escaped ~escape r0 then result := Some (Diverged { at_step = 0 });
  let quiet = ref 0 in
  let k = ref 0 in
  while !result = None && !k < max_steps do
    let cur = get !k in
    (* [Rate_adjust.eval] signals a NaN-producing adjuster with
       [Failure]; treat it as divergence at this step so one
       pathological cell degrades gracefully instead of killing a whole
       sweep. *)
    match (try Some (map !k cur) with Failure _ -> None) with
    | None ->
      incr k;
      result := Some (Diverged { at_step = !k })
    | Some next ->
    incr k;
    push !k next;
    if escaped ~escape next
    then result := Some (Diverged { at_step = !k })
    else begin
      let delta = Vec.dist_inf next cur /. (1. +. Vec.norm_inf next) in
      (match Ffc_obs.Ctx.tracing () with
      | Some c when Ffc_obs.Ctx.sample c !k ->
        Ffc_obs.Ctx.emit c
          (Ffc_obs.Event.ctrl_step ~step:!k ~residual:delta ~rates:next)
      | Some _ | None -> ());
      (* A time-varying map (e.g. a transient gateway cut) may sit at a
         temporary fixed point; no Converged/Cycle verdict is issued
         before [min_steps], when the caller warrants the map is still
         changing. *)
      if delta <= tol && !k >= min_steps then begin
        incr quiet;
        if !quiet >= 3 then result := Some (Converged { steady = next; steps = !k })
      end
      else begin
        quiet := 0;
        (* Cycle check once enough history accumulated.  A genuine cycle
           has lag-p mismatch far below the consecutive movement over the
           same span; a slowly converging orbit has them comparable, so a
           relative test separates the two. *)
        if !k >= window_len && !k >= min_steps then begin
          let scale = 1. +. Vec.norm_inf (get !k) in
          let found = ref None in
          let p = ref 2 in
          while !found = None && !p <= max_period do
            let span = 2 * !p in
            let match_err = ref 0. in
            let local_amp = ref 0. in
            for back = 0 to span - 1 do
              let a = get (!k - back) in
              match_err := Float.max !match_err (Vec.dist_inf a (get (!k - back - !p)));
              local_amp := Float.max !local_amp (Vec.dist_inf a (get (!k - back - 1)))
            done;
            if
              !local_amp > 1e-8 *. scale
              && !match_err <= Float.max (1e-12 *. scale) (1e-3 *. !local_amp)
            then found := Some !p;
            incr p
          done;
          match !found with
          | Some period ->
            let orbit = Array.init period (fun j -> get (!k - period + 1 + j)) in
            result := Some (Cycle { period; orbit })
          | None -> ()
        end
      end
    end
  done;
  observe_outcome
    (match !result with
    | Some outcome -> outcome
    | None -> No_convergence { last = get !k })

let run ?tol ?max_steps ?max_period ?escape t ~net ~r0 =
  check_net t net r0;
  run_map ?tol ?max_steps ?max_period ?escape ~map:(fun _ r -> step t ~net r) ~r0 ()

let run_async ?(tol = 1e-10) ?(max_steps = 100_000) ?(p = 0.5) ?(escape = 1e12) ~rng
    t ~net ~r0 =
  check_net t net r0;
  let n = Array.length r0 in
  let r = ref (Array.copy r0) in
  let result = ref None in
  if escaped ~escape r0 then result := Some (Diverged { at_step = 0 });
  let quiet = ref 0 in
  let k = ref 0 in
  while !result = None && !k < max_steps do
    incr k;
    let mask = Array.init n (fun _ -> Rng.uniform rng < p) in
    (* As in [run_map]: a NaN-producing adjuster ([Failure] from
       [Rate_adjust.eval], here possibly from the quiescence probe too)
       is divergence, not a crash. *)
    match
      (try
         let next = step_subset t ~net ~mask !r in
         if escaped ~escape next then Some (`Escaped)
         else begin
           (* Quiescence must be judged against the full synchronous map, not
              the masked step — a mask of all-false would otherwise look like
              convergence. *)
           let full = step t ~net next in
           let delta = Vec.dist_inf full next /. (1. +. Vec.norm_inf next) in
           Some (`Next (next, delta))
         end
       with Failure _ -> None)
    with
    | None | Some `Escaped -> result := Some (Diverged { at_step = !k })
    | Some (`Next (next, delta)) ->
      if delta <= tol then begin
        incr quiet;
        if !quiet >= 3 then result := Some (Converged { steady = next; steps = !k })
      end
      else quiet := 0;
      r := next
  done;
  observe_outcome
    (match !result with
    | Some outcome -> outcome
    | None -> No_convergence { last = !r })

let steady_state ?(tol = 1e-8) t ~net rates =
  let next = step t ~net rates in
  Vec.dist_inf next rates <= tol *. (1. +. Vec.norm_inf rates)
