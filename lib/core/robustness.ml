open Ffc_numerics
open Ffc_queueing
open Ffc_topology

let criterion_holds ?(tol = 1e-9) svc ~mu ~rates =
  let n = float_of_int (Array.length rates) in
  let q = Service.queue_lengths svc ~mu rates in
  let ok = ref true in
  Array.iteri
    (fun i qi ->
      let denom = mu -. (n *. rates.(i)) in
      if denom > 0. then begin
        let bound = rates.(i) /. denom in
        if qi > bound +. (tol *. (1. +. bound)) then ok := false
      end)
    q;
  !ok

let criterion_violation_rate svc ~rng ~n ~mu ~trials =
  if trials <= 0 || n <= 0 then invalid_arg "Robustness.criterion_violation_rate";
  let violations = ref 0 in
  for _ = 1 to trials do
    let rates = Array.init n (fun _ -> Rng.float rng mu) in
    if not (criterion_holds svc ~mu ~rates) then incr violations
  done;
  float_of_int !violations /. float_of_int trials

let reservation_rate ~signal ~b_ss ~mu ~n =
  if n <= 0 then invalid_arg "Robustness.reservation_rate: n must be positive";
  let rho_ss = Mm1.g_inv (Signal.inverse signal b_ss) in
  mu /. float_of_int n *. rho_ss

(* Shared kernel: baselines with the fan-in N^a counted over a
   sub-population.  [fanin a] must be >= 1 whenever some connection in
   the population traverses gateway [a]. *)
let baselines_with_fanin ~signal ~b_ss ~net ~member ~fanin =
  let nc = Network.num_connections net in
  if Array.length b_ss <> nc then invalid_arg "Robustness.baselines: b_ss length mismatch";
  Array.init nc (fun i ->
      if not (member i) then 0.
      else
        let rho_ss = Mm1.g_inv (Signal.inverse signal b_ss.(i)) in
        let min_slice =
          List.fold_left
            (fun acc a ->
              let g = Network.gateway net a in
              Float.min acc (g.Network.mu /. float_of_int (fanin a)))
            Float.infinity
            (Network.gateways_of_connection net i)
        in
        rho_ss *. min_slice)

let baselines ~signal ~b_ss ~net =
  baselines_with_fanin ~signal ~b_ss ~net
    ~member:(fun _ -> true)
    ~fanin:(Network.fanin net)

let baselines_masked ~signal ~b_ss ~net ~active =
  let nc = Network.num_connections net in
  if Array.length active <> nc then
    invalid_arg "Robustness.baselines_masked: mask length mismatch";
  let fanin =
    Array.init (Network.num_gateways net) (fun a ->
        List.fold_left
          (fun acc i -> if active.(i) then acc + 1 else acc)
          0
          (Network.connections_at_gateway net a))
  in
  baselines_with_fanin ~signal ~b_ss ~net
    ~member:(fun i -> active.(i))
    ~fanin:(fun a -> fanin.(a))

let is_robust_outcome ?(tol = 1e-6) ~baselines steady =
  if Array.length steady <> Array.length baselines then
    invalid_arg "Robustness.is_robust_outcome: length mismatch";
  Array.for_all2
    (fun r baseline -> r >= baseline -. (tol *. (1. +. baseline)))
    steady baselines

let shortfalls ~steady ~baselines =
  if Array.length steady <> Array.length baselines then
    invalid_arg "Robustness.shortfalls: length mismatch";
  Array.map2 (fun baseline r -> Float.max 0. (baseline -. r)) baselines steady
