(* Route-incidence sparsity of the stability matrix DF.

   One connection's rate perturbs only the queues at the gateways on
   its route, so ∂F_i/∂r_j can be nonzero only when i and j share a
   gateway.  The pattern is symmetric — couple(i, j) iff γ(i) ∩ γ(j) ≠ ∅
   — and [support.(j)] (which always contains j itself) is therefore
   both the row support of column j and the column support of row j.

   On top of the pattern sits a Curtis-Powell-Reid probe schedule:
   columns whose supports are disjoint can be finite-differenced in one
   joint evaluation of the flow map, because no component of F reads
   more than one of the bumped coordinates — the grouped probe is
   bit-for-bit the lone-column probe.  Groups come from a greedy
   distance-2 coloring of the column-conflict graph. *)

open Ffc_topology

type t = {
  n : int;
  support : int array array;
  groups : int array array;
  nnz : int;
}

let size t = t.n
let supports t = t.support
let groups t = t.groups
let nnz t = t.nnz

let density t =
  if t.n = 0 then 0.
  else float_of_int t.nnz /. (float_of_int t.n *. float_of_int t.n)

(* Greedy smallest-free-color coloring of the conflict relation
   "supports intersect (within [only_rows], when given)".  Deterministic:
   columns are visited in the order given and each takes the least color
   not yet claimed by any of its (masked) support rows, so the schedule
   is a pure function of the pattern — the jobs-invariance of the
   grouped Jacobian rests on this.  Cost: each column scans the colors
   already claimed by its rows, O(sum_j sum_{i in support(j)} deg(i)). *)
let color ?only_rows ~support cols =
  let total_rows = Array.length support in
  let m = Array.length cols in
  if m = 0 then [||]
  else begin
    (* claimed.(i): colors already assigned to columns claiming row i.
       No color repeats within one row's list — same-colored columns
       never share a (masked) row. *)
    let claimed = Array.make total_rows [] in
    let last_seen = Array.make m (-1) in
    let color_of = Array.make m 0 in
    let ncolors = ref 0 in
    let row_ok i = match only_rows with None -> true | Some mask -> mask.(i) in
    Array.iteri
      (fun cidx j ->
        Array.iter
          (fun i ->
            if row_ok i then
              List.iter (fun c -> last_seen.(c) <- cidx) claimed.(i))
          support.(j);
        let c = ref 0 in
        while !c < !ncolors && last_seen.(!c) = cidx do
          incr c
        done;
        if !c = !ncolors then incr ncolors;
        color_of.(cidx) <- !c;
        Array.iter
          (fun i -> if row_ok i then claimed.(i) <- !c :: claimed.(i))
          support.(j))
      cols;
    let out = Array.make !ncolors [] in
    for cidx = m - 1 downto 0 do
      out.(color_of.(cidx)) <- cols.(cidx) :: out.(color_of.(cidx))
    done;
    Array.map Array.of_list out
  end

let build net =
  Ffc_obs.Span.with_span "sparsity.probe" @@ fun () ->
  let n = Network.num_connections net in
  let mark = Array.make (Stdlib.max 1 n) false in
  let support =
    Array.init n (fun j ->
        let acc = ref [] in
        List.iter
          (fun a ->
            List.iter
              (fun i ->
                if not mark.(i) then begin
                  mark.(i) <- true;
                  acc := i :: !acc
                end)
              (Network.connections_at_gateway net a))
          (Network.gateways_of_connection net j);
        let arr = Array.of_list !acc in
        List.iter (fun i -> mark.(i) <- false) !acc;
        Array.sort compare arr;
        arr)
  in
  let nnz = Array.fold_left (fun acc s -> acc + Array.length s) 0 support in
  let groups =
    (* Past half density the coloring degenerates towards one column per
       group anyway (and its bookkeeping towards O(N^3) on fully coupled
       topologies), so take the per-column schedule directly — which is
       exactly the dense probing order, bit for bit. *)
    if 2 * nnz > n * n then Array.init n (fun j -> [| j |])
    else color ~support (Array.init n Fun.id)
  in
  { n; support; groups; nnz }

(* The pattern is a pure function of the network, and churn workloads
   (update_flow / update_fair stepping the same net) would otherwise
   rebuild it on every call.  One slot keyed on physical identity is
   enough for those loops; a miss just recomputes.  Atomic so
   concurrent domains read a consistent pair. *)
let memo : (Network.t * t) option Atomic.t = Atomic.make None

let of_network net =
  match Atomic.get memo with
  | Some (key, p) when key == net -> p
  | _ ->
    let p = build net in
    Atomic.set memo (Some (net, p));
    p

let color_columns ?only_rows t cols = color ?only_rows ~support:t.support cols
