(** Rate-adjustment algorithms f(r, b, d) (paper §2.3.2 and §4).

    At each synchronous step every source updates
    r ← max(0, r + f(r, b, d)) from its current rate [r], combined
    congestion signal [b] ∈ [0,1], and round-trip delay [d].  Theorem 1
    characterizes the time-scale invariant (TSI) algorithms: f vanishes at
    exactly one signal level b_SS, for every r and d. *)

type t

val make : name:string -> ?b_ss:float -> (r:float -> b:float -> d:float -> float) -> t
(** [b_ss] declares the steady-state signal when the algorithm is TSI by
    construction. *)

val name : t -> string

val eval : t -> r:float -> b:float -> d:float -> float
(** Raises [Failure] if the underlying function produces a non-finite
    value (NaN or ±∞) — rate adjustment must be total and finite on
    r ≥ 0, b ∈ [0,1], d ∈ (0,∞].  {!Controller.run} maps the failure to
    a [Diverged] outcome at that step. *)

val declared_b_ss : t -> float option

(** {1 The paper's algorithm families} *)

val additive : eta:float -> beta:float -> t
(** f = η(β − b) — the canonical TSI algorithm (§3.3's examples): steady
    exactly at b = β, constant step size η. [eta > 0], [beta] ∈ (0,1). *)

val proportional : eta:float -> beta:float -> t
(** f = ηr(β − b) — multiplicative TSI variant. Note that r = 0 is an
    artificial fixed point (f(0,·,·) = 0), so condition (2) of Theorem 1
    fails on the boundary; the classifier reports this. *)

val fair_rate_limd : eta:float -> beta:float -> t
(** f = (1−b)η − βbr — the rate-based linear-increase multiplicative-
    decrease form of §4: guaranteed fair (steady rate η(1−b)/(βb) is the
    same for every connection sharing a bottleneck) but {e not} TSI
    (the steady rate does not scale with line speed). *)

val decbit_window : eta:float -> beta:float -> t
(** f = (1−b)η/d − βbr — §4's model of the original DECbit/Jacobson
    window algorithm: the increase term is divided by the round-trip
    delay, so connections with longer paths get less throughput — neither
    fair nor TSI. *)

val aimd : increase:float -> decrease:float -> t
(** f = (1−b)·increase − b·decrease·r — additive-increase
    multiplicative-decrease, the Chiu–Jain/DECbit policy for {e binary}
    signals: grow by [increase] while the bit is clear, shrink by the
    fraction [decrease] when it is set.  With a continuous signal this
    coincides with [fair_rate_limd] up to parameter naming; it is kept
    separate because E14 runs it against {!Signal.binary}, where no
    steady state exists and only long-term averages are meaningful.
    [increase > 0], [decrease] ∈ (0, 1). *)

(** {1 Classification} *)

type tsi_verdict =
  | Tsi of float  (** TSI with this steady-state signal b_SS. *)
  | Boundary_tsi of float
      (** f vanishes at a unique interior b_SS for every r > 0 and d, but
          also vanishes identically at r = 0 (e.g. [proportional]). *)
  | Not_tsi

val classify_tsi : ?rs:float array -> ?ds:float array -> t -> tsi_verdict
(** Numerically applies Theorem 1's criterion: for each sampled (r, d),
    find the zeros of b ↦ f(r,b,d) on [0,1]; TSI iff a single common zero
    exists for all samples (and f is nonzero elsewhere).  Default sample
    grids cover r ∈ [0, 100], d ∈ [0.01, 100]. *)
