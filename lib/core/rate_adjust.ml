open Ffc_numerics

type t = {
  name : string;
  b_ss : float option;
  f : r:float -> b:float -> d:float -> float;
}

let make ~name ?b_ss f = { name; b_ss; f }

let name t = t.name

let eval t ~r ~b ~d =
  let v = t.f ~r ~b ~d in
  (* NaN and ±∞ alike: an infinite step escapes the NaN-only guard,
     survives max(0, r + dv), and only blows up later inside whatever
     consumes the rates — classify at the source instead. *)
  if not (Float.is_finite v) then
    failwith (Printf.sprintf "Rate_adjust.eval: %s produced non-finite %g at r=%g b=%g d=%g"
                t.name v r b d);
  v

let declared_b_ss t = t.b_ss

let check_params ~eta ~beta =
  if not (eta > 0.) then invalid_arg "Rate_adjust: eta must be positive";
  if not (beta > 0. && beta < 1.) then invalid_arg "Rate_adjust: beta must be in (0,1)"

let additive ~eta ~beta =
  check_params ~eta ~beta;
  make
    ~name:(Printf.sprintf "additive(eta=%g,beta=%g)" eta beta)
    ~b_ss:beta
    (fun ~r:_ ~b ~d:_ -> eta *. (beta -. b))

let proportional ~eta ~beta =
  check_params ~eta ~beta;
  make
    ~name:(Printf.sprintf "proportional(eta=%g,beta=%g)" eta beta)
    ~b_ss:beta
    (fun ~r ~b ~d:_ -> eta *. r *. (beta -. b))

let fair_rate_limd ~eta ~beta =
  check_params ~eta ~beta;
  make
    ~name:(Printf.sprintf "fair-rate-limd(eta=%g,beta=%g)" eta beta)
    (fun ~r ~b ~d:_ -> ((1. -. b) *. eta) -. (beta *. b *. r))

let decbit_window ~eta ~beta =
  check_params ~eta ~beta;
  make
    ~name:(Printf.sprintf "decbit-window(eta=%g,beta=%g)" eta beta)
    (fun ~r ~b ~d ->
      let increase = if d = Float.infinity then 0. else (1. -. b) *. eta /. d in
      increase -. (beta *. b *. r))

let aimd ~increase ~decrease =
  if not (increase > 0.) then invalid_arg "Rate_adjust.aimd: increase must be positive";
  if not (decrease > 0. && decrease < 1.) then
    invalid_arg "Rate_adjust.aimd: decrease must be in (0,1)";
  make
    ~name:(Printf.sprintf "aimd(+%g,x%g)" increase (1. -. decrease))
    (fun ~r ~b ~d:_ -> ((1. -. b) *. increase) -. (b *. decrease *. r))

type tsi_verdict = Tsi of float | Boundary_tsi of float | Not_tsi

(* Zeros of b -> f(r,b,d) on [0,1], located by sign scanning + bisection.
   Returns `All_zero when f vanishes on the whole interval. *)
let signal_zeros t ~r ~d =
  let n = 200 in
  let f b = eval t ~r ~b ~d in
  let grid = Array.init (n + 1) (fun k -> float_of_int k /. float_of_int n) in
  let values = Array.map f grid in
  if Array.for_all (fun v -> Float.abs v <= 1e-12) values then `All_zero
  else begin
    let zeros = ref [] in
    for k = 0 to n - 1 do
      let a = values.(k) and b = values.(k + 1) in
      if Float.abs a <= 1e-12 then begin
        if not (List.exists (fun z -> Float.abs (z -. grid.(k)) < 1e-6) !zeros) then
          zeros := grid.(k) :: !zeros
      end
      else if a *. b < 0. then begin
        match Rootfind.bisect f ~lo:grid.(k) ~hi:grid.(k + 1) with
        | Rootfind.Root z -> zeros := z :: !zeros
        | Rootfind.No_bracket | Rootfind.No_convergence _ -> ()
      end
    done;
    if Float.abs values.(n) <= 1e-12 then begin
      if not (List.exists (fun z -> Float.abs (z -. 1.) < 1e-6) !zeros) then
        zeros := 1. :: !zeros
    end;
    `Zeros (List.rev !zeros)
  end

let classify_tsi ?rs ?ds t =
  let rs = match rs with Some v -> v | None -> [| 0.; 0.01; 0.5; 1.; 5.; 100. |] in
  let ds = match ds with Some v -> v | None -> [| 0.01; 1.; 100. |] in
  let interior = Array.to_list rs |> List.filter (fun r -> r > 0.) in
  (* All samples must expose exactly one zero, and all zeros must agree;
     returns that common zero. *)
  let common_zero samples =
    let rec go acc = function
      | [] -> acc
      | (r, d) :: rest -> (
        match signal_zeros t ~r ~d with
        | `All_zero -> None
        | `Zeros [ z ] -> (
          match acc with
          | Some z0 when Float.abs (z0 -. z) > 1e-6 -> None
          | Some _ | None -> go (Some z) rest)
        | `Zeros _ -> None)
    in
    go None samples
  in
  let pairs rs = List.concat_map (fun r -> List.map (fun d -> (r, d)) (Array.to_list ds)) rs in
  match common_zero (pairs (Array.to_list rs)) with
  | Some z -> Tsi z
  | None -> (
    (* Retry excluding r = 0: catches the proportional family. *)
    match common_zero (pairs interior) with
    | Some z ->
      let zero_at_origin =
        List.for_all
          (fun d -> signal_zeros t ~r:0. ~d = `All_zero)
          (Array.to_list ds)
      in
      if zero_at_origin then Boundary_tsi z else Not_tsi
    | None -> Not_tsi)
