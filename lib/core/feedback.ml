open Ffc_numerics
open Ffc_queueing
open Ffc_topology

type config = {
  style : Congestion.style;
  signal : Signal.t;
  discipline : Service.t;
  weights : Vec.t option;
}

let make ?weights ~style ~signal ~discipline () = { style; signal; discipline; weights }

let aggregate_fifo =
  make ~style:Congestion.Aggregate ~signal:Signal.linear_fractional
    ~discipline:Service.fifo ()

let individual_fifo =
  make ~style:Congestion.Individual ~signal:Signal.linear_fractional
    ~discipline:Service.fifo ()

let individual_fair_share =
  make ~style:Congestion.Individual ~signal:Signal.linear_fractional
    ~discipline:Service.fair_share ()

let queues config ~net ~rates ~gw =
  let local = Network.rates_at_gateway net ~rates gw in
  Service.queue_lengths config.discipline ~mu:(Network.gateway net gw).Network.mu local

(* Per-gateway congestion measures, honoring the optional weights (mapped
   into the gateway's local connection order). *)
let local_measures config ~net ~gw queues =
  match (config.style, config.weights) with
  | Congestion.Individual, Some weights ->
    let local_weights =
      Network.connections_at_gateway net gw
      |> List.map (fun i -> weights.(i))
      |> Array.of_list
    in
    Congestion.weighted_measures ~weights:local_weights queues
  | (Congestion.Aggregate | Congestion.Individual), _ ->
    Congestion.measures config.style queues

let signals_of_gateway config ~net ~gw queues =
  let c = local_measures config ~net ~gw queues in
  Array.map (Signal.eval config.signal) c

let per_gateway_signals config ~net ~rates =
  Array.init (Network.num_gateways net) (fun a ->
      let q = queues config ~net ~rates ~gw:a in
      signals_of_gateway config ~net ~gw:a q)

(* Bottleneck combination b_i = max_{a in gamma(i)} b^a_i from
   already-computed per-gateway signal vectors. *)
let combine_signals ~net per_gw =
  Array.init (Network.num_connections net) (fun i ->
      List.fold_left
        (fun acc a ->
          let pos = Network.local_index net ~conn:i ~gw:a in
          Float.max acc per_gw.(a).(pos))
        0.
        (Network.gateways_of_connection net i))

let signals config ~net ~rates =
  combine_signals ~net (per_gateway_signals config ~net ~rates)

let bottlenecks config ~net ~rates =
  (* One per-gateway evaluation feeds both the combined signals and the
     arg-max filter. *)
  let per_gw = per_gateway_signals config ~net ~rates in
  let b = combine_signals ~net per_gw in
  Array.init (Network.num_connections net) (fun i ->
      List.filter
        (fun a ->
          let pos = Network.local_index net ~conn:i ~gw:a in
          Float.abs (per_gw.(a).(pos) -. b.(i)) <= 1e-12)
        (Network.gateways_of_connection net i))

let combine_delays ~net per_gw_sojourns =
  Array.init (Network.num_connections net) (fun i ->
      List.fold_left
        (fun acc a ->
          let w = per_gw_sojourns.(a) in
          let pos = Network.local_index net ~conn:i ~gw:a in
          acc +. (Network.gateway net a).Network.latency +. w.(pos))
        0.
        (Network.gateways_of_connection net i))

let delays config ~net ~rates =
  let sojourns =
    Array.init (Network.num_gateways net) (fun a ->
        let local = Network.rates_at_gateway net ~rates a in
        Service.sojourn_times config.discipline
          ~mu:(Network.gateway net a).Network.mu local)
  in
  combine_delays ~net sojourns

(* Restricted evaluation: feedback for the connections in [rows] only,
   touching only the gateways those connections cross.  Per-gateway
   arithmetic is a pure function of that gateway's local rate vector
   ([Service.evaluate] on [rates_at_gateway]), and the per-connection
   combines below fold in the same order as [combine_signals] /
   [combine_delays], so the entries produced for [rows] are bit-for-bit
   the ones [evaluate] computes — the property the incremental Jacobian
   kernels rely on.  Entries outside [rows] are left at 0. *)
let evaluate_rows config ~net ~rates ~rows =
  let num_gw = Network.num_gateways net in
  let needed = Array.make num_gw false in
  Array.iter
    (fun i -> List.iter (fun a -> needed.(a) <- true) (Network.gateways_of_connection net i))
    rows;
  let per_gw_signals = Array.make num_gw [||] in
  let per_gw_sojourns = Array.make num_gw [||] in
  for a = 0 to num_gw - 1 do
    if needed.(a) then begin
      let local = Network.rates_at_gateway net ~rates a in
      let q, w =
        Service.evaluate config.discipline ~mu:(Network.gateway net a).Network.mu local
      in
      per_gw_signals.(a) <- signals_of_gateway config ~net ~gw:a q;
      per_gw_sojourns.(a) <- w
    end
  done;
  let n = Network.num_connections net in
  let b = Array.make n 0. in
  let d = Array.make n 0. in
  Array.iter
    (fun i ->
      let gws = Network.gateways_of_connection net i in
      b.(i) <-
        List.fold_left
          (fun acc a ->
            let pos = Network.local_index net ~conn:i ~gw:a in
            Float.max acc per_gw_signals.(a).(pos))
          0. gws;
      d.(i) <-
        List.fold_left
          (fun acc a ->
            let pos = Network.local_index net ~conn:i ~gw:a in
            acc +. (Network.gateway net a).Network.latency +. per_gw_sojourns.(a).(pos))
          0. gws)
    rows;
  (b, d)

let evaluate config ~net ~rates =
  (* Signals and delays both derive from the per-gateway queue state;
     one [Service.evaluate] per gateway feeds both, halving the queue
     computations of a controller step relative to calling [signals]
     and [delays] separately.  Values are identical to the separate
     calls — the shared queue vector is the same one both would
     compute. *)
  let num_gw = Network.num_gateways net in
  let per_gw_signals = Array.make num_gw [||] in
  let per_gw_sojourns = Array.make num_gw [||] in
  for a = 0 to num_gw - 1 do
    let local = Network.rates_at_gateway net ~rates a in
    let q, w =
      Service.evaluate config.discipline ~mu:(Network.gateway net a).Network.mu local
    in
    per_gw_signals.(a) <- signals_of_gateway config ~net ~gw:a q;
    per_gw_sojourns.(a) <- w
  done;
  (combine_signals ~net per_gw_signals, combine_delays ~net per_gw_sojourns)
