(* Canonical cache-key encoders for the core model types.

   The determinism contract these rely on (documented in
   docs/CACHING.md): a component's *name* uniquely determines its
   behavior.  The repo's constructors uphold it — adjusters, signals
   and disciplines all embed their parameters in their printed names
   (e.g. "additive(eta=0.1,beta=0.5)", "weighted-fair-share(..)") —
   so a name plus the code-schema version is a faithful key fragment.
   Custom [make]/[make_adjuster] components must follow the same
   convention to be safely memoized. *)

open Ffc_queueing
open Ffc_topology
module Key = Ffc_cache.Key

let add_network k net = Key.str k (Dsl.to_string net)

let add_config k (c : Feedback.config) =
  Key.str k (Congestion.style_name c.style);
  Key.str k (Signal.name c.signal);
  Key.str k (Service.name c.discipline);
  match c.weights with
  | None -> Key.bool k false
  | Some w ->
    Key.bool k true;
    Key.floats k w

let add_adjusters k adjusters =
  Key.strs k (Array.to_list (Array.map Rate_adjust.name adjusters))

let add_mat k m =
  Key.int k (Ffc_numerics.Mat.rows m);
  Key.int k (Ffc_numerics.Mat.cols m);
  Key.floats k (Ffc_numerics.Mat.to_flat m)
