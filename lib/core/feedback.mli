(** Network-wide feedback assembly (paper §2.3.1).

    Combines the service discipline's queue lengths, the congestion
    measures, and the signal function into per-connection congestion
    signals, following bottleneck philosophy: each connection responds to
    the most congested gateway on its path, b_i = max_{a∈γ(i)} B(C^a_i). *)

open Ffc_numerics
open Ffc_queueing
open Ffc_topology

type config = {
  style : Congestion.style;
  signal : Signal.t;
  discipline : Service.t;
  weights : Vec.t option;
      (** When set (indexed by global connection), [Individual] style uses
          the weighted congestion measure — the companion of the weighted
          Fair Share discipline (E18). [None] everywhere in the paper's
          own designs. *)
}

val make :
  ?weights:Vec.t -> style:Congestion.style -> signal:Signal.t ->
  discipline:Service.t -> unit -> config

val aggregate_fifo : config
(** Aggregate feedback (discipline irrelevant for signals; FIFO for
    delays), B = C/(1+C). *)

val individual_fifo : config
val individual_fair_share : config

val per_gateway_signals : config -> net:Network.t -> rates:Vec.t -> float array array
(** Element [(a, k)] is b^a of the k-th connection in
    [Network.connections_at_gateway net a]. *)

val signals : config -> net:Network.t -> rates:Vec.t -> Vec.t
(** Combined per-connection signals b_i (bottleneck max). *)

val bottlenecks : config -> net:Network.t -> rates:Vec.t -> int list array
(** For each connection, the gateways achieving its maximal signal
    (within a 1e-12 absolute tolerance). *)

val delays : config -> net:Network.t -> rates:Vec.t -> Vec.t
(** Round-trip delays d_i = Σ_{a∈γ(i)} (l_a + Q^a_i/r_i). *)

val evaluate : config -> net:Network.t -> rates:Vec.t -> Vec.t * Vec.t
(** [(signals, delays)] from a single pass over the gateways: the
    per-gateway queue state is evaluated once and feeds both outputs,
    which are identical to separate {!signals} and {!delays} calls.
    This is the entry point {!Controller.step} uses — the map
    evaluation the Jacobian probes 2N times per stability check. *)

val evaluate_rows :
  config -> net:Network.t -> rates:Vec.t -> rows:int array -> Vec.t * Vec.t
(** {!evaluate} restricted to the connections in [rows]: only the
    gateways those connections cross are evaluated, so the cost scales
    with the touched sub-network rather than the whole system.  The
    entries at indices in [rows] are bit-for-bit the ones {!evaluate}
    produces (per-gateway arithmetic depends only on that gateway's
    local rates); all other entries are 0.  This is the probe kernel of
    the incremental Jacobian update ({!Jacobian.update_flow}). *)

val queues : config -> net:Network.t -> rates:Vec.t -> gw:int -> Vec.t
(** The queue-length vector at one gateway (in Γ(a) local order). *)
