(* Dense real eigensolver: balance -> Hessenberg -> double-shift QR.
   The QR iteration follows the classical `hqr` scheme (Wilkinson;
   Press et al.), rewritten 0-indexed with relative-epsilon deflation
   tests instead of the historical float-rounding tricks.

   The kernels run in place on a flat row-major [float array] with
   unsafe accessors — the matrices are square and every index is a loop
   variable already confined to [0, n), so the checks would only cost.
   The checked [Mat] API stays at the entry points.

   On top of the dense path sits a structure-aware layer: a matrix that
   is triangular — or triangular after a simultaneous row/column
   permutation, the shape Theorem 4 gives Fair Share stability matrices
   in rate order — has its eigenvalues on its diagonal, read in O(N^2)
   detection time instead of the O(N^3) QR iteration. *)

let eps = 1e-13

(* Diagonal similarity scaling so that row and column norms are comparable;
   improves eigenvalue accuracy on badly scaled matrices.  [a] is flat
   row-major of size n*n. *)
let balance a n =
  let g i j = Array.unsafe_get a ((i * n) + j) in
  let s i j v = Array.unsafe_set a ((i * n) + j) v in
  let radix = 2. in
  let sqrdx = radix *. radix in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let c = ref 0. and r = ref 0. in
      for j = 0 to n - 1 do
        if j <> i then begin
          c := !c +. Float.abs (g j i);
          r := !r +. Float.abs (g i j)
        end
      done;
      if !c <> 0. && !r <> 0. then begin
        let gr = ref (!r /. radix) in
        let f = ref 1. in
        let sum = !c +. !r in
        while !c < !gr do
          f := !f *. radix;
          c := !c *. sqrdx
        done;
        gr := !r *. radix;
        while !c > !gr do
          f := !f /. radix;
          c := !c /. sqrdx
        done;
        if (!c +. !r) /. !f < 0.95 *. sum then begin
          changed := true;
          let inv = 1. /. !f in
          for j = 0 to n - 1 do
            s i j (g i j *. inv)
          done;
          for j = 0 to n - 1 do
            s j i (g j i *. !f)
          done
        end
      end
    done
  done

(* Reduction to upper Hessenberg form by stabilized elementary similarity
   transformations (Gaussian elimination with pivoting). *)
let reduce_hessenberg a n =
  let g i j = Array.unsafe_get a ((i * n) + j) in
  let s i j v = Array.unsafe_set a ((i * n) + j) v in
  for m = 1 to n - 2 do
    let x = ref 0. in
    let pivot = ref m in
    for j = m to n - 1 do
      if Float.abs (g j (m - 1)) > Float.abs !x then begin
        x := g j (m - 1);
        pivot := j
      end
    done;
    if !pivot <> m then begin
      for j = m - 1 to n - 1 do
        let t = g !pivot j in
        s !pivot j (g m j);
        s m j t
      done;
      for j = 0 to n - 1 do
        let t = g j !pivot in
        s j !pivot (g j m);
        s j m t
      done
    end;
    if !x <> 0. then
      for i = m + 1 to n - 1 do
        let y = g i (m - 1) in
        if y <> 0. then begin
          let y = y /. !x in
          for j = m to n - 1 do
            s i j (g i j -. (y *. g m j))
          done;
          for j = 0 to n - 1 do
            s j m (g j m +. (y *. g j i))
          done
        end
      done
  done;
  (* Clear the multipliers stored below the subdiagonal. *)
  for i = 0 to n - 1 do
    for j = 0 to i - 2 do
      s i j 0.
    done
  done

let hessenberg m =
  if Mat.rows m <> Mat.cols m then invalid_arg "Eigen.hessenberg: not square";
  let n = Mat.rows m in
  let a = Mat.to_flat m in
  reduce_hessenberg a n;
  Mat.of_flat ~rows:n ~cols:n a

let sign_of magnitude reference =
  if reference >= 0. then Float.abs magnitude else -.Float.abs magnitude

(* Double-shift QR on an upper Hessenberg matrix, with deflation.  [a] is
   flat row-major and destroyed.  Returns eigenvalues as (re, im) pairs. *)
let hqr a n =
  let g i j = Array.unsafe_get a ((i * n) + j) in
  let set i j v = Array.unsafe_set a ((i * n) + j) v in
  let wr = Array.make n 0. and wi = Array.make n 0. in
  let anorm = ref 0. in
  for i = 0 to n - 1 do
    for j = Stdlib.max (i - 1) 0 to n - 1 do
      anorm := !anorm +. Float.abs (g i j)
    done
  done;
  if !anorm = 0. then anorm := 1.;
  let nn = ref (n - 1) in
  let t = ref 0. in
  while !nn >= 0 do
    let its = ref 0 in
    let finished_block = ref false in
    while not !finished_block do
      (* Look for a single small subdiagonal element to split the matrix. *)
      let l = ref !nn in
      (try
         while !l >= 1 do
           let s =
             let s = Float.abs (g (!l - 1) (!l - 1)) +. Float.abs (g !l !l) in
             if s = 0. then !anorm else s
           in
           if Float.abs (g !l (!l - 1)) <= eps *. s then begin
             set !l (!l - 1) 0.;
             raise Exit
           end;
           decr l
         done
       with Exit -> ());
      let x = ref (g !nn !nn) in
      if !l = !nn then begin
        (* One real root found. *)
        wr.(!nn) <- !x +. !t;
        wi.(!nn) <- 0.;
        decr nn;
        finished_block := true
      end
      else begin
        let y = ref (g (!nn - 1) (!nn - 1)) in
        let w = ref (g !nn (!nn - 1) *. g (!nn - 1) !nn) in
        if !l = !nn - 1 then begin
          (* A 2x2 block: two roots, real or complex-conjugate. *)
          let p = ref (0.5 *. (!y -. !x)) in
          let q = (!p *. !p) +. !w in
          let z = ref (sqrt (Float.abs q)) in
          x := !x +. !t;
          if q >= 0. then begin
            z := !p +. sign_of !z !p;
            wr.(!nn - 1) <- !x +. !z;
            wr.(!nn) <- wr.(!nn - 1);
            if !z <> 0. then wr.(!nn) <- !x -. (!w /. !z);
            wi.(!nn - 1) <- 0.;
            wi.(!nn) <- 0.
          end
          else begin
            wr.(!nn - 1) <- !x +. !p;
            wr.(!nn) <- !x +. !p;
            wi.(!nn) <- -. !z;
            wi.(!nn - 1) <- !z
          end;
          nn := !nn - 2;
          finished_block := true
        end
        else begin
          if !its = 60 then failwith "Eigen.eigenvalues: QR did not converge";
          if !its = 10 || !its = 20 || !its = 30 || !its = 40 || !its = 50 then begin
            (* Exceptional shift to break symmetry-induced stalls. *)
            t := !t +. !x;
            for i = 0 to !nn do
              set i i (g i i -. !x)
            done;
            let s = Float.abs (g !nn (!nn - 1)) +. Float.abs (g (!nn - 1) (!nn - 2)) in
            x := 0.75 *. s;
            y := !x;
            w := -0.4375 *. s *. s
          end;
          incr its;
          (* Find two consecutive small subdiagonal elements: start row m. *)
          let m = ref (!nn - 2) in
          let p = ref 0. and q = ref 0. and r = ref 0. in
          (try
             while !m >= !l do
               let z = g !m !m in
               let rr = !x -. z in
               let ss = !y -. z in
               p := (((rr *. ss) -. !w) /. g (!m + 1) !m) +. g !m (!m + 1);
               q := g (!m + 1) (!m + 1) -. z -. rr -. ss;
               r := g (!m + 2) (!m + 1);
               let s = Float.abs !p +. Float.abs !q +. Float.abs !r in
               p := !p /. s;
               q := !q /. s;
               r := !r /. s;
               if !m = !l then raise Exit;
               let u = Float.abs (g !m (!m - 1)) *. (Float.abs !q +. Float.abs !r) in
               let v =
                 Float.abs !p
                 *. (Float.abs (g (!m - 1) (!m - 1)) +. Float.abs z
                    +. Float.abs (g (!m + 1) (!m + 1)))
               in
               if u <= eps *. v then raise Exit;
               decr m
             done;
             m := !l
           with Exit -> ());
          for i = !m + 2 to !nn do
            set i (i - 2) 0.;
            if i <> !m + 2 then set i (i - 3) 0.
          done;
          (* Double QR step on rows l..nn, columns m..nn. *)
          for k = !m to !nn - 1 do
            if k <> !m then begin
              p := g k (k - 1);
              q := g (k + 1) (k - 1);
              r := 0.;
              if k <> !nn - 1 then r := g (k + 2) (k - 1);
              x := Float.abs !p +. Float.abs !q +. Float.abs !r;
              if !x <> 0. then begin
                p := !p /. !x;
                q := !q /. !x;
                r := !r /. !x
              end
            end;
            let s = sign_of (sqrt ((!p *. !p) +. (!q *. !q) +. (!r *. !r))) !p in
            if s <> 0. then begin
              if k = !m then begin
                if !l <> !m then set k (k - 1) (-.g k (k - 1))
              end
              else set k (k - 1) (-.s *. !x);
              p := !p +. s;
              x := !p /. s;
              y := !q /. s;
              let z = !r /. s in
              q := !q /. !p;
              r := !r /. !p;
              for j = k to !nn do
                let pj = g k j +. (!q *. g (k + 1) j) in
                let pj =
                  if k <> !nn - 1 then begin
                    let pj = pj +. (!r *. g (k + 2) j) in
                    set (k + 2) j (g (k + 2) j -. (pj *. z));
                    pj
                  end
                  else pj
                in
                set (k + 1) j (g (k + 1) j -. (pj *. !y));
                set k j (g k j -. (pj *. !x))
              done;
              let mmin = Stdlib.min !nn (k + 3) in
              for i = !l to mmin do
                let pi = (!x *. g i k) +. (!y *. g i (k + 1)) in
                let pi =
                  if k <> !nn - 1 then begin
                    let pi = pi +. (z *. g i (k + 2)) in
                    set i (k + 2) (g i (k + 2) -. (pi *. !r));
                    pi
                  end
                  else pi
                in
                set i (k + 1) (g i (k + 1) -. (pi *. !q));
                set i k (g i k -. pi)
              done
            end
          done
        end
      end
    done
  done;
  Array.init n (fun i -> { Complex.re = wr.(i); im = wi.(i) })

let eigenvalues_dense m =
  if Mat.rows m <> Mat.cols m then invalid_arg "Eigen.eigenvalues: not square";
  let n = Mat.rows m in
  if n = 0 then [||]
  else if n = 1 then [| { Complex.re = Mat.get m 0 0; im = 0. } |]
  else begin
    let a = Mat.to_flat m in
    balance a n;
    reduce_hessenberg a n;
    hqr a n
  end

(* ------------------------------------------------------------------ *)
(* Structure detection (Theorem 4 fast path)                           *)
(* ------------------------------------------------------------------ *)

(* An ordering v of the indices such that m.(v_i).(v_j) is (within
   [tol]) zero for all j > i — i.e. the matrix is lower triangular after
   simultaneously permuting rows and columns by v.  Greedy topological
   sort of the off-diagonal dependency relation: repeatedly pick the
   smallest remaining row whose above-[tol] off-diagonal entries all sit
   in already-picked columns.  Each pick scans O(N), so detection —
   success or failure — is O(N^2).  Covers lower triangular (identity
   order), upper triangular (reversal), and any simultaneous permutation
   of either, such as Fair Share Jacobians in rate order. *)
let triangular_order ?(tol = 0.) m =
  if Mat.rows m <> Mat.cols m then invalid_arg "Eigen.triangular_order: not square";
  let n = Mat.rows m in
  let nonzero i j = Float.abs (Mat.unsafe_get m i j) > tol in
  (* pending.(i): off-diagonal entries of row i in not-yet-picked columns. *)
  let pending = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j <> i && nonzero i j then pending.(i) <- pending.(i) + 1
    done
  done;
  let picked = Array.make n false in
  let order = Array.make n 0 in
  let ok = ref true in
  (try
     for pos = 0 to n - 1 do
       let next = ref (-1) in
       for i = n - 1 downto 0 do
         if (not picked.(i)) && pending.(i) = 0 then next := i
       done;
       if !next < 0 then begin
         ok := false;
         raise Exit
       end;
       let i = !next in
       picked.(i) <- true;
       order.(pos) <- i;
       for k = 0 to n - 1 do
         if (not picked.(k)) && nonzero k i then pending.(k) <- pending.(k) - 1
       done
     done
   with Exit -> ());
  if !ok then Some order else None

let structural_eigenvalues ?tol m =
  if Mat.rows m <> Mat.cols m then None
  else
    match triangular_order ?tol m with
    | None -> None
    | Some _ ->
      (* A simultaneous permutation is a similarity and preserves the
         diagonal as a set, so the eigenvalues are the diagonal entries
         in any order. *)
      Some (Mat.diagonal m)

let eigenvalues ?struct_tol m =
  Ffc_obs.Span.with_span "eigen.spectrum" @@ fun () ->
  match structural_eigenvalues ?tol:struct_tol m with
  | Some d -> Array.map (fun re -> { Complex.re; im = 0. }) d
  | None -> eigenvalues_dense m

let sort_by_modulus ev =
  Array.sort
    (fun a b ->
      let c = Float.compare (Complex.norm b) (Complex.norm a) in
      if c <> 0 then c else Float.compare b.Complex.re a.Complex.re)
    ev;
  ev

let eigenvalues_sorted ?struct_tol m = sort_by_modulus (eigenvalues ?struct_tol m)

let spectral_radius_of ev =
  Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 0. ev

let spectral_radius ?struct_tol m = spectral_radius_of (eigenvalues ?struct_tol m)
let spectral_radius_dense m = spectral_radius_of (eigenvalues_dense m)

let is_linearly_stable ?(tol = 1e-9) ?(ignore_unit = 0) ?struct_tol m =
  let ev = eigenvalues_sorted ?struct_tol m in
  let n = Array.length ev in
  if ignore_unit >= n then true
  else Complex.norm ev.(ignore_unit) < 1. -. tol

let power_iteration ?(max_iter = 10_000) ?(tol = 1e-12) m =
  if Mat.rows m <> Mat.cols m then invalid_arg "Eigen.power_iteration: not square";
  let n = Mat.rows m in
  if n = 0 then None
  else begin
    (* A fixed, slightly asymmetric start vector avoids starting orthogonal
       to the dominant eigenvector for the structured matrices tested. *)
    let v = ref (Array.init n (fun i -> 1. +. (0.01 *. float_of_int i))) in
    let lambda = ref 0. in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iter do
      incr iter;
      let w = Mat.mul_vec m !v in
      let norm = Vec.norm2 w in
      if norm < 1e-300 then begin
        lambda := 0.;
        converged := true
      end
      else begin
        let w = Vec.scale (1. /. norm) w in
        let next = Vec.dot w (Mat.mul_vec m w) in
        if Float.abs (next -. !lambda) <= tol *. (1. +. Float.abs next) then
          converged := true;
        lambda := next;
        v := w
      end
    done;
    if !converged then Some (!lambda, !v) else None
  end

let triangular_eigenvalues m =
  if Mat.is_triangular m then Some (Mat.diagonal m) else None

(* ------------------------------------------------------------------ *)
(* Sparse (CSR) structure layer                                        *)
(* ------------------------------------------------------------------ *)

(* The CSR counterpart of [triangular_order].  Same greedy topological
   sort, but the dependency counts and their decrements walk only the
   stored entries, so the graph work is O(nnz); the smallest-ready-row
   scan keeps the dense picker's O(N) per pick (trivial next to the QR
   iteration either path avoids). *)
let triangular_order_sparse ?(tol = 0.) s =
  if Mat.Sparse.rows s <> Mat.Sparse.cols s then
    invalid_arg "Eigen.triangular_order_sparse: not square";
  let n = Mat.Sparse.rows s in
  let pending = Array.make n 0 in
  (* dependents.(j): rows whose off-diagonal entry in column j is above
     [tol] — the rows to release when j is picked. *)
  let dependents = Array.make n [] in
  for i = 0 to n - 1 do
    Mat.Sparse.iter_row s i (fun j v ->
        if j <> i && Float.abs v > tol then begin
          pending.(i) <- pending.(i) + 1;
          dependents.(j) <- i :: dependents.(j)
        end)
  done;
  let picked = Array.make n false in
  let order = Array.make n 0 in
  let ok = ref true in
  (try
     for pos = 0 to n - 1 do
       let next = ref (-1) in
       for i = n - 1 downto 0 do
         if (not picked.(i)) && pending.(i) = 0 then next := i
       done;
       if !next < 0 then begin
         ok := false;
         raise Exit
       end;
       let i = !next in
       picked.(i) <- true;
       order.(pos) <- i;
       List.iter
         (fun k -> if not picked.(k) then pending.(k) <- pending.(k) - 1)
         dependents.(i)
     done
   with Exit -> ());
  if !ok then Some order else None

let structural_eigenvalues_sparse ?tol s =
  if Mat.Sparse.rows s <> Mat.Sparse.cols s then None
  else
    match triangular_order_sparse ?tol s with
    | None -> None
    | Some _ -> Some (Mat.Sparse.diagonal s)

let eigenvalues_sparse ?struct_tol s =
  Ffc_obs.Span.with_span "eigen.spectrum.sparse" @@ fun () ->
  match structural_eigenvalues_sparse ?tol:struct_tol s with
  | Some d -> Array.map (fun re -> { Complex.re; im = 0. }) d
  | None -> eigenvalues_dense (Mat.Sparse.to_dense s)

let spectral_radius_sparse ?struct_tol s =
  spectral_radius_of (eigenvalues_sparse ?struct_tol s)

let power_iteration_sparse ?(max_iter = 10_000) ?(tol = 1e-12) ?deflate s =
  if Mat.Sparse.rows s <> Mat.Sparse.cols s then
    invalid_arg "Eigen.power_iteration_sparse: not square";
  let n = Mat.Sparse.rows s in
  (match deflate with
  | Some d when Array.length d <> n ->
    invalid_arg "Eigen.power_iteration_sparse: deflation vector size mismatch"
  | _ -> ());
  if n = 0 then None
  else begin
    (* Projection deflation: after every mat-vec, remove the component
       along [deflate] (the previously found dominant eigenvector), so
       the iteration settles on the dominant eigenvalue of the
       complement — the cross-check that a claimed dominant pair really
       dominates the rest of the spectrum. *)
    let project w =
      match deflate with
      | None -> w
      | Some d ->
        let dd = Vec.dot d d in
        if dd < 1e-300 then w
        else begin
          let c = Vec.dot d w /. dd in
          Array.mapi (fun i wi -> wi -. (c *. d.(i))) w
        end
    in
    (* Same fixed asymmetric start as the dense iteration, with CSR
       mat-vec products: each step costs O(nnz) instead of O(N^2). *)
    let v = ref (project (Array.init n (fun i -> 1. +. (0.01 *. float_of_int i)))) in
    let lambda = ref 0. in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iter do
      incr iter;
      let w = project (Mat.Sparse.mul_vec s !v) in
      let norm = Vec.norm2 w in
      if norm < 1e-300 then begin
        lambda := 0.;
        converged := true
      end
      else begin
        let w = Vec.scale (1. /. norm) w in
        let next = Vec.dot w (project (Mat.Sparse.mul_vec s w)) in
        if Float.abs (next -. !lambda) <= tol *. (1. +. Float.abs next) then
          converged := true;
        lambda := next;
        v := w
      end
    done;
    if !converged then Some (!lambda, !v) else None
  end
