(** Descriptive statistics for simulation measurements.

    Provides streaming (one-pass, numerically stable) moment accumulation,
    time-weighted averages for queue-length processes, quantiles,
    histograms, simple confidence intervals, autocorrelation, and the
    fairness indices used in the evaluation. *)

(** {1 Streaming moments} *)

type running
(** Welford accumulator for mean and variance. *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
(** 0 when empty. *)

val running_variance : running -> float
(** Unbiased sample variance; 0 with fewer than two observations. *)

val running_stddev : running -> float

val running_ci95_halfwidth : running -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean: [1.96 * stddev / sqrt n]; 0 with fewer than two observations. *)

(** {1 Time-weighted averages} *)

type time_weighted
(** Accumulates the time average of a piecewise-constant process, e.g. an
    instantaneous queue length: the average of [x(t)] over the observation
    window. *)

val tw_create : ?start:float -> unit -> time_weighted
val tw_observe : time_weighted -> now:float -> value:float -> unit
(** [tw_observe acc ~now ~value] records that the process has held its
    previous value up to [now] and takes [value] from [now] on.
    Observations must be non-decreasing in time. *)

val tw_mean : time_weighted -> now:float -> float
(** Time average over [\[start, now\]]; 0 over an empty window. *)

(** {1 Batch statistics} *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float
val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [\[0,1\]] using linear interpolation between
    order statistics. The array must be non-empty and NaN-free
    ([Invalid_argument] otherwise — NaN has no rank, and it used to
    poison exactly the upper quantiles silently).  ±∞ is orderable and
    passes through; interpolating strictly between −∞ and +∞ order
    statistics is undefined and yields NaN. *)

val median : float array -> float

val autocorrelation : float array -> int -> float
(** [autocorrelation xs lag] — sample autocorrelation coefficient; 0 when
    the series is too short or constant. *)

(** {1 Histograms} *)

type histogram

val histogram : ?bins:int -> float array -> histogram
(** Equal-width histogram over the data range (default 20 bins). The array
    must be non-empty. *)

val histogram_counts : histogram -> (float * float * int) array
(** [(lo, hi, count)] per bin, in order. *)

(** {1 Fairness indices} *)

val jain_index : float array -> float
(** Jain's fairness index (Σx)²/(n·Σx²) ∈ (0, 1]; 1 iff all equal. By
    convention 1 for empty or all-zero allocations. *)

val max_min_ratio : float array -> float
(** max/min of the allocation; [infinity] when some component is 0 but not
    all are, 1 for the all-zero allocation.  Components must be
    non-negative and NaN-free ([Invalid_argument] otherwise): the
    all-zero convention is only sound once negatives are ruled out. *)
