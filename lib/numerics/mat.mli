(** Dense square-friendly float matrices (row-major), plus a CSR sparse
    companion ({!Sparse}).

    Provides the small-matrix linear algebra needed by the stability
    analysis: products, LU factorization with partial pivoting, linear
    solves (including the Sherman-Morrison rank-1 update
    {!solve_rank1}), determinants, inverses, and structural predicates
    (triangularity) used to verify Theorem 4's triangular stability
    matrix.

    {b Zero-dimension contract.}  Every constructor in this module —
    [create], [init], [of_arrays], [of_flat], and the {!Sparse}
    constructors — accepts zero rows and/or columns and produces the
    corresponding empty matrix ([of_arrays [||]] is the 0x0 matrix).
    Only {e negative} dimensions and shape mismatches (ragged rows, flat
    length <> rows*cols) raise [Invalid_argument].  All operations are
    total on empty matrices: products, transposes and norms return
    empty/zero results rather than raising. *)

type t
(** A dense [rows x cols] matrix. *)

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Rows must be of equal (possibly zero) length; [[||]] is the 0x0
    matrix (see the zero-dimension contract above). The array is
    copied. Raises [Invalid_argument] on ragged rows. *)

val to_arrays : t -> float array array

val to_flat : t -> float array
(** A fresh row-major copy of the entries — the layout the eigensolver's
    in-place kernels work on. Length [rows * cols]. *)

val of_flat : rows:int -> cols:int -> float array -> t
(** Inverse of {!to_flat}; the array is copied. Raises
    [Invalid_argument] when the length is not [rows * cols]. *)

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float
(** [get] without bounds checks — for inner loops that have already
    validated their index ranges. Out-of-range indices are undefined
    behaviour. *)

val unsafe_set : t -> int -> int -> float -> unit

val copy : t -> t

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. Raises [Invalid_argument] on inner-dimension
    mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t

val trace : t -> float

val frobenius_norm : t -> float

val approx_equal : ?tol:float -> t -> t -> bool

val is_lower_triangular : ?tol:float -> t -> bool
(** True when all entries strictly above the diagonal have absolute value
    at most [tol] (default [1e-9]). *)

val is_upper_triangular : ?tol:float -> t -> bool

val is_triangular : ?tol:float -> t -> bool
(** Lower or upper triangular. *)

val permute_rows_cols : t -> int array -> t
(** [permute_rows_cols m p] is the matrix with entry [(i, j)] equal to
    [m(p.(i), p.(j))] — simultaneous row/column permutation, used to test
    triangularity after sorting connections by rate. *)

val lu : t -> (t * int array * int) option
(** [lu m] is [Some (lu, perm, sign)] — the packed LU factorization with
    partial pivoting of a square matrix — or [None] when [m] is singular to
    working precision. *)

val solve : t -> Vec.t -> Vec.t option
(** [solve a b] solves [a x = b] for square [a]; [None] when singular. *)

val solve_rank1 : t -> u:Vec.t -> v:Vec.t -> Vec.t -> Vec.t option
(** [solve_rank1 a ~u ~v b] solves [(a + u v^T) x = b] by the
    Sherman-Morrison identity: one LU factorization of [a] and two
    substitutions instead of refactoring the perturbed matrix — the
    solve-side kernel for rank-1 flow-churn updates.  [None] when [a]
    is singular or the update makes the system singular
    ([1 + v^T a^-1 u ~ 0]). *)

val det : t -> float

val inverse : t -> t option

val diagonal : t -> Vec.t

val pp : Format.formatter -> t -> unit

(** Compressed-sparse-row matrices over the same conventions as the
    dense type.  Entries outside the stored pattern are exactly +0.0,
    so [to_dense] of a sparse finite-difference Jacobian is bit-for-bit
    the matrix the dense probing path builds.  Follows the module's
    zero-dimension contract. *)
module Sparse : sig
  type dense = t

  type t
  (** A [rows x cols] CSR matrix. *)

  val create :
    rows:int -> cols:int -> row_ptr:int array -> col_idx:int array ->
    values:float array -> t
  (** Validated CSR assembly: [row_ptr] has length [rows + 1], starts at
      0, is non-decreasing and ends at the entry count; column indices
      are in range and strictly increasing within each row.  All arrays
      are copied. *)

  val rows : t -> int
  val cols : t -> int

  val nnz : t -> int
  (** Stored-entry count (structural nonzeros; stored values may be 0). *)

  val copy : t -> t

  val to_csr : t -> int array * int array * float array
  (** [(row_ptr, col_idx, values)] — fresh copies, the inverse of
      {!create}. *)

  val get : t -> int -> int -> float
  (** Entries outside the pattern read as 0. *)

  val set_existing : t -> int -> int -> float -> unit
  (** In-place write to a stored entry; raises [Invalid_argument] for an
      entry outside the pattern (the pattern itself is immutable). *)

  val iter_row : t -> int -> (int -> float -> unit) -> unit
  (** [iter_row s i f] calls [f j v] for each stored entry [(i, j)] in
      increasing column order. *)

  val to_dense : t -> dense

  val of_dense : ?pattern:int array array -> dense -> t
  (** Without [pattern], keeps exactly the structural nonzeros.  With
      [pattern] (per-row sorted, strictly increasing column lists), the
      stored pattern is taken verbatim — entries of the dense matrix
      outside it are dropped, entries inside it are stored even when
      zero — so [to_dense (of_dense ~pattern m)] masks [m] to the
      pattern. *)

  val mul_vec : t -> Vec.t -> Vec.t

  val diagonal : t -> Vec.t

  val equal : t -> t -> bool
  (** Same shape, same stored pattern, and bit-identical stored values
      (NaN-safe: compares float bits, not [=]). *)
end
