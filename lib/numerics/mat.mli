(** Dense square-friendly float matrices (row-major).

    Provides the small-matrix linear algebra needed by the stability
    analysis: products, LU factorization with partial pivoting, linear
    solves, determinants, inverses, and structural predicates
    (triangularity) used to verify Theorem 4's triangular stability
    matrix. *)

type t
(** A dense [rows x cols] matrix. *)

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Rows must be non-empty and of equal length. The array is copied. *)

val to_arrays : t -> float array array

val to_flat : t -> float array
(** A fresh row-major copy of the entries — the layout the eigensolver's
    in-place kernels work on. Length [rows * cols]. *)

val of_flat : rows:int -> cols:int -> float array -> t
(** Inverse of {!to_flat}; the array is copied. Raises
    [Invalid_argument] when the length is not [rows * cols]. *)

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float
(** [get] without bounds checks — for inner loops that have already
    validated their index ranges. Out-of-range indices are undefined
    behaviour. *)

val unsafe_set : t -> int -> int -> float -> unit

val copy : t -> t

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. Raises [Invalid_argument] on inner-dimension
    mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t

val trace : t -> float

val frobenius_norm : t -> float

val approx_equal : ?tol:float -> t -> t -> bool

val is_lower_triangular : ?tol:float -> t -> bool
(** True when all entries strictly above the diagonal have absolute value
    at most [tol] (default [1e-9]). *)

val is_upper_triangular : ?tol:float -> t -> bool

val is_triangular : ?tol:float -> t -> bool
(** Lower or upper triangular. *)

val permute_rows_cols : t -> int array -> t
(** [permute_rows_cols m p] is the matrix with entry [(i, j)] equal to
    [m(p.(i), p.(j))] — simultaneous row/column permutation, used to test
    triangularity after sorting connections by rate. *)

val lu : t -> (t * int array * int) option
(** [lu m] is [Some (lu, perm, sign)] — the packed LU factorization with
    partial pivoting of a square matrix — or [None] when [m] is singular to
    working precision. *)

val solve : t -> Vec.t -> Vec.t option
(** [solve a b] solves [a x = b] for square [a]; [None] when singular. *)

val det : t -> float

val inverse : t -> t option

val diagonal : t -> Vec.t

val pp : Format.formatter -> t -> unit
