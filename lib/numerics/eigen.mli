(** Eigenvalues of small dense real matrices, with a structure-aware
    fast path.

    The stability analysis of the flow-control map (paper §3.3) requires
    all eigenvalues of the Jacobian DF — which is real but generally
    non-symmetric, so eigenvalues may form complex-conjugate pairs.  The
    dense path is classical: balancing, reduction to upper Hessenberg
    form by stabilized elementary transformations, then the implicit
    double-shift (Francis) QR iteration with deflation — O(N³).

    Theorem 4 makes the dense path overkill for the matrices this
    repository cares about most: under Fair Share the Jacobian is
    triangular once connections are ordered by rate, so its eigenvalues
    are its diagonal.  {!eigenvalues}, {!spectral_radius} and
    {!is_linearly_stable} therefore first look for triangular or
    permuted-triangular structure in O(N²) ({!triangular_order}) and
    read the diagonal when they find it; [struct_tol] controls how small
    an entry must be to count as structurally zero (default exactly 0 —
    finite differencing of a Fair Share map produces exact zeros above
    the diagonal, so the default is both safe and effective).  The
    [_dense] entry points always run the QR path.

    All routines operate on copies and never mutate their input. *)

val hessenberg : Mat.t -> Mat.t
(** [hessenberg m] is an upper-Hessenberg matrix similar to square [m]
    (entries below the first subdiagonal are exactly zero). *)

val triangular_order : ?tol:float -> Mat.t -> int array option
(** [triangular_order m] is [Some v] when [m] is lower triangular after
    simultaneously permuting rows and columns by [v] — i.e.
    [|m.(v_i).(v_j)| <= tol] for all [j > i] (default [tol = 0.], exact
    zeros).  Covers plain lower triangular (identity order), upper
    triangular (reversal) and any simultaneous permutation of either,
    such as Fair Share stability matrices in rate order (Theorem 4).
    O(N²) whether it succeeds or fails. *)

val structural_eigenvalues : ?tol:float -> Mat.t -> Vec.t option
(** The diagonal, when {!triangular_order} detects (permuted) triangular
    structure — the eigenvalues, exactly, since a simultaneous
    permutation is a similarity.  [None] for dense matrices (and
    non-square ones). *)

val eigenvalues : ?struct_tol:float -> Mat.t -> Complex.t array
(** All eigenvalues of a square matrix, in no particular order:
    the diagonal when (permuted-)triangular structure is detected at
    [struct_tol], the QR path otherwise. Raises [Failure] if the QR
    iteration fails to converge (does not happen for the matrices in
    this repository) and [Invalid_argument] if the matrix is not
    square. *)

val eigenvalues_dense : Mat.t -> Complex.t array
(** The QR path unconditionally — for cross-checking the fast path and
    for benchmarking. *)

val eigenvalues_sorted : ?struct_tol:float -> Mat.t -> Complex.t array
(** Eigenvalues sorted by decreasing modulus (ties broken by real part). *)

val spectral_radius : ?struct_tol:float -> Mat.t -> float
(** Largest eigenvalue modulus — the quantity that decides linear
    stability of the iteration r' = F(r). *)

val spectral_radius_dense : Mat.t -> float
(** {!spectral_radius} via the QR path unconditionally. *)

val is_linearly_stable :
  ?tol:float -> ?ignore_unit:int -> ?struct_tol:float -> Mat.t -> bool
(** [is_linearly_stable df] holds when every eigenvalue of [df] has
    modulus < 1 − [tol] (default [tol = 1e-9]).  [ignore_unit] (default 0)
    discounts that many eigenvalues closest to modulus 1 — used for
    steady-state manifolds, where deviations *along* the manifold carry
    unit eigenvalues that the paper's stability notion ignores. *)

val power_iteration :
  ?max_iter:int -> ?tol:float -> Mat.t -> (float * Vec.t) option
(** Dominant eigenvalue (by modulus, assuming it is real) and its
    eigenvector, via normalized power iteration; [None] when the iteration
    does not settle — e.g. a complex dominant pair. Used as an independent
    cross-check of [eigenvalues]. *)

val triangular_eigenvalues : Mat.t -> Vec.t option
(** For a (numerically) triangular matrix, its eigenvalues are the
    diagonal; [None] when the matrix is not triangular. Implements the
    observation at the heart of Theorem 4.  See
    {!structural_eigenvalues} for the permutation-aware version. *)

(** {2 Sparse (CSR) structure layer}

    The same structure-first strategy for {!Mat.Sparse} matrices —
    e.g. grouped-finite-difference Jacobians — without densifying on the
    fast path: detection walks the stored entries (O(nnz) graph work)
    and the diagonal read costs O(N).  Only the dense-QR fallback pays
    for a [to_dense]. *)

val triangular_order_sparse : ?tol:float -> Mat.Sparse.t -> int array option
(** CSR counterpart of {!triangular_order}; identical result on
    [Mat.Sparse.to_dense] of the input (stored entries with
    [|v| <= tol] — default exactly 0 — count as structural zeros). *)

val structural_eigenvalues_sparse : ?tol:float -> Mat.Sparse.t -> Vec.t option
(** The diagonal when {!triangular_order_sparse} succeeds. *)

val eigenvalues_sparse : ?struct_tol:float -> Mat.Sparse.t -> Complex.t array
(** Structure-first spectrum of a square CSR matrix: the diagonal on the
    triangular path, dense QR on [to_dense] otherwise. *)

val spectral_radius_sparse : ?struct_tol:float -> Mat.Sparse.t -> float

val power_iteration_sparse :
  ?max_iter:int -> ?tol:float -> ?deflate:Vec.t -> Mat.Sparse.t ->
  (float * Vec.t) option
(** {!power_iteration} with O(nnz) CSR mat-vec steps — the independent
    cross-check used after incremental Jacobian updates.  With
    [deflate] (a previously found dominant eigenvector), every iterate
    is projected onto its orthogonal complement, estimating the
    dominant eigenvalue of the remaining spectrum — the deflation pass
    that certifies a claimed dominant pair actually dominates. *)
