type running = { mutable n : int; mutable mean : float; mutable m2 : float }

let running_create () = { n = 0; mean = 0.; m2 = 0. }

let running_add r x =
  r.n <- r.n + 1;
  let delta = x -. r.mean in
  r.mean <- r.mean +. (delta /. float_of_int r.n);
  r.m2 <- r.m2 +. (delta *. (x -. r.mean))

let running_count r = r.n
let running_mean r = r.mean

let running_variance r =
  if r.n < 2 then 0. else r.m2 /. float_of_int (r.n - 1)

let running_stddev r = sqrt (running_variance r)

let running_ci95_halfwidth r =
  if r.n < 2 then 0.
  else 1.96 *. running_stddev r /. sqrt (float_of_int r.n)

type time_weighted = {
  start : float;
  mutable last_time : float;
  mutable last_value : float;
  mutable integral : float;
}

let tw_create ?(start = 0.) () =
  { start; last_time = start; last_value = 0.; integral = 0. }

let tw_observe acc ~now ~value =
  if now < acc.last_time then invalid_arg "Stats.tw_observe: time went backwards";
  acc.integral <- acc.integral +. (acc.last_value *. (now -. acc.last_time));
  acc.last_time <- now;
  acc.last_value <- value

let tw_mean acc ~now =
  let span = now -. acc.start in
  if span <= 0. then 0.
  else
    let total = acc.integral +. (acc.last_value *. (now -. acc.last_time)) in
    total /. span

let mean xs =
  if Array.length xs = 0 then 0.
  else Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if not (p >= 0. && p <= 1.) then invalid_arg "Stats.quantile: p outside [0,1]";
  (* NaN has no rank: Float.compare sorts it past +infinity, so it used
     to poison exactly the upper quantiles and nothing else.  ±∞ is
     orderable and passes through. *)
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.quantile: NaN in input")
    xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  (* Linear interpolation at rank p*(n-1).  [pos] lies in [0, n-1] by
     construction (round-to-nearest cannot push p*(n-1) past the
     representable n-1), so truncation alone gives the lower index; only
     [hi] needs clamping, for p = 1. *)
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float pos in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  (* Exact-rank and equal-endpoint shortcuts keep infinities clean:
     0 · ∞ in the interpolation would otherwise manufacture a NaN. *)
  if frac = 0. || sorted.(lo) = sorted.(hi) then sorted.(lo)
  else (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median xs = quantile xs 0.5

let autocorrelation xs lag =
  let n = Array.length xs in
  if lag < 0 || lag >= n || n < 2 then 0.
  else begin
    let m = mean xs in
    let denom = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    if denom <= 0. then 0.
    else begin
      let num = ref 0. in
      for i = 0 to n - 1 - lag do
        num := !num +. ((xs.(i) -. m) *. (xs.(i + lag) -. m))
      done;
      !num /. denom
    end
  end

type histogram = { lo : float; width : float; counts : int array }

let histogram ?(bins = 20) xs =
  if Array.length xs = 0 then invalid_arg "Stats.histogram: empty array";
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = Array.fold_left Float.min xs.(0) xs in
  let hi = Array.fold_left Float.max xs.(0) xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      (* x >= lo, so the truncated index is non-negative; x = hi lands
         on [bins] and is folded into the last bin. *)
      let idx = Stdlib.min (bins - 1) (int_of_float ((x -. lo) /. width)) in
      counts.(idx) <- counts.(idx) + 1)
    xs;
  { lo; width; counts }

let histogram_counts h =
  Array.mapi
    (fun i c ->
      let lo = h.lo +. (float_of_int i *. h.width) in
      (lo, lo +. h.width, c))
    h.counts

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then 1.
  else begin
    let s = Array.fold_left ( +. ) 0. xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if s2 <= 0. then 1. else s *. s /. (float_of_int n *. s2)
  end

let max_min_ratio xs =
  if Array.length xs = 0 then 1.
  else begin
    (* The index only means anything for allocations (x ≥ 0): with a
       negative component, mx = 0 used to report the all-zero
       convention's 1.0 and mx/mn a meaningless negative ratio. *)
    Array.iter
      (fun x ->
        if Float.is_nan x then invalid_arg "Stats.max_min_ratio: NaN in input";
        if x < 0. then invalid_arg "Stats.max_min_ratio: negative allocation")
      xs;
    let mx = Array.fold_left Float.max xs.(0) xs in
    let mn = Array.fold_left Float.min xs.(0) xs in
    if mx = 0. then 1. else if mn = 0. then Float.infinity else mx /. mn
  end
