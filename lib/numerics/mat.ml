type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0. }

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.get: index out of bounds";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.set: index out of bounds";
  m.data.((i * m.cols) + j) <- x

let unsafe_get m i j = Array.unsafe_get m.data ((i * m.cols) + j)
let unsafe_set m i j x = Array.unsafe_set m.data ((i * m.cols) + j) x

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

(* Zero-dimension contract (see mat.mli): every constructor accepts
   empty shapes, so [of_arrays [||]] is the 0x0 matrix rather than an
   error — the same contract [create] and [of_flat] already followed. *)
let of_arrays a =
  let r = Array.length a in
  let c = if r = 0 then 0 else Array.length a.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Mat.of_arrays: ragged rows")
    a;
  init r c (fun i j -> a.(i).(j))

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let to_flat m = Array.copy m.data

let of_flat ~rows ~cols data =
  if rows < 0 || cols < 0 then invalid_arg "Mat.of_flat: negative dimension";
  if Array.length data <> rows * cols then
    invalid_arg "Mat.of_flat: data length does not match dimensions";
  { rows; cols; data = Array.copy data }

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let lift2 name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg ("Mat." ^ name ^ ": dimension mismatch");
  init a.rows a.cols (fun i j -> f (get a i j) (get b i j))

let add a b = lift2 "add" ( +. ) a b
let sub a b = lift2 "sub" ( -. ) a b
let scale s m = init m.rows m.cols (fun i j -> s *. get m i j)

(* Hot kernels below run on the flat [data] array with unsafe accessors:
   the i-k-j loop order keeps the inner loop walking both [b] and the
   output row contiguously, with no bounds checks. Dimension checks stay
   at the entry. *)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: inner dimension mismatch";
  let m = a.rows and n = a.cols and p = b.cols in
  let out = create m p in
  let ad = a.data and bd = b.data and od = out.data in
  for i = 0 to m - 1 do
    let arow = i * n and orow = i * p in
    for k = 0 to n - 1 do
      let aik = Array.unsafe_get ad (arow + k) in
      let brow = k * p in
      for j = 0 to p - 1 do
        Array.unsafe_set od (orow + j)
          (Array.unsafe_get od (orow + j) +. (aik *. Array.unsafe_get bd (brow + j)))
      done
    done
  done;
  out

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  let rows = m.rows and cols = m.cols in
  let d = m.data in
  Array.init rows (fun i ->
      let row = i * cols in
      let acc = ref 0. in
      for j = 0 to cols - 1 do
        acc := !acc +. (Array.unsafe_get d (row + j) *. Array.unsafe_get v j)
      done;
      !acc)

let trace m =
  let n = Stdlib.min m.rows m.cols in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. get m i i
  done;
  !acc

let frobenius_norm m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let is_lower_triangular ?(tol = 1e-9) m =
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (get m i j) > tol then ok := false
    done
  done;
  !ok

let is_upper_triangular ?tol m = is_lower_triangular ?tol (transpose m)

let is_triangular ?tol m = is_lower_triangular ?tol m || is_upper_triangular ?tol m

let permute_rows_cols m p =
  if m.rows <> m.cols then invalid_arg "Mat.permute_rows_cols: not square";
  if Array.length p <> m.rows then
    invalid_arg "Mat.permute_rows_cols: permutation length mismatch";
  init m.rows m.cols (fun i j -> get m p.(i) p.(j))

(* LU with partial pivoting (Doolittle).  The factorization is stored packed
   in a single matrix: unit lower factor strictly below the diagonal, upper
   factor on and above it. *)
let lu m =
  if m.rows <> m.cols then invalid_arg "Mat.lu: not square";
  let n = m.rows in
  let a = copy m in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1 in
  let singular = ref false in
  (try
     for k = 0 to n - 1 do
       (* Pivot search in column k. *)
       let piv = ref k in
       for i = k + 1 to n - 1 do
         if Float.abs (get a i k) > Float.abs (get a !piv k) then piv := i
       done;
       if Float.abs (get a !piv k) < 1e-300 then begin
         singular := true;
         raise Exit
       end;
       if !piv <> k then begin
         for j = 0 to n - 1 do
           let t = get a k j in
           set a k j (get a !piv j);
           set a !piv j t
         done;
         let t = perm.(k) in
         perm.(k) <- perm.(!piv);
         perm.(!piv) <- t;
         sign := - !sign
       end;
       for i = k + 1 to n - 1 do
         let factor = get a i k /. get a k k in
         set a i k factor;
         for j = k + 1 to n - 1 do
           set a i j (get a i j -. (factor *. get a k j))
         done
       done
     done
   with Exit -> ());
  if !singular then None else Some (a, perm, !sign)

(* Substitution with an already-packed factorization, so callers that
   solve against the same matrix repeatedly (e.g. the rank-1 update
   below) factor once. *)
let lu_solve (f, perm) b =
  let n = Array.length perm in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution with the unit lower factor. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (get f i j *. x.(j))
    done
  done;
  (* Back substitution with the upper factor. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (get f i j *. x.(j))
    done;
    x.(i) <- x.(i) /. get f i i
  done;
  x

let solve a b =
  if a.rows <> Array.length b then invalid_arg "Mat.solve: dimension mismatch";
  match lu a with
  | None -> None
  | Some (f, perm, _) -> Some (lu_solve (f, perm) b)

(* Sherman-Morrison: (A + u v^T)^-1 b = y - (v.y / (1 + v.z)) z with
   y = A^-1 b and z = A^-1 u — two substitutions against one LU
   factorization instead of refactoring the perturbed matrix.  This is
   the solve-side companion of the rank-1 Jacobian updates: a single
   flow's join/leave perturbs DF by a few rows, and solves against
   I - DF can absorb each rank-1 piece at O(N^2). *)
let solve_rank1 a ~u ~v b =
  if a.rows <> a.cols then invalid_arg "Mat.solve_rank1: not square";
  if Array.length u <> a.rows || Array.length v <> a.rows
     || Array.length b <> a.rows
  then invalid_arg "Mat.solve_rank1: dimension mismatch";
  match lu a with
  | None -> None
  | Some (f, perm, _) ->
    let y = lu_solve (f, perm) b in
    let z = lu_solve (f, perm) u in
    let denom = 1. +. Vec.dot v z in
    if Float.abs denom < 1e-300 then None
    else begin
      let c = Vec.dot v y /. denom in
      Some (Array.init a.rows (fun i -> y.(i) -. (c *. z.(i))))
    end

let det m =
  match lu m with
  | None -> 0.
  | Some (f, _, sign) ->
    let acc = ref (float_of_int sign) in
    for i = 0 to m.rows - 1 do
      acc := !acc *. get f i i
    done;
    !acc

let inverse m =
  if m.rows <> m.cols then invalid_arg "Mat.inverse: not square";
  let n = m.rows in
  match lu m with
  | None -> None
  | Some _ ->
    let inv = create n n in
    let ok = ref true in
    for j = 0 to n - 1 do
      let e = Array.init n (fun i -> if i = j then 1. else 0.) in
      match solve m e with
      | None -> ok := false
      | Some col ->
        for i = 0 to n - 1 do
          set inv i j col.(i)
        done
    done;
    if !ok then Some inv else None

let diagonal m =
  let n = Stdlib.min m.rows m.cols in
  Array.init n (fun i -> get m i i)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[@[<hov>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%10.6g" (get m i j)
    done;
    Format.fprintf ppf "@]]";
    if i < m.rows - 1 then Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"

(* Compressed sparse rows over the same flat float conventions as the
   dense type: [values] is the row-major concatenation of the stored
   entries, [col_idx] their column indices (strictly increasing within a
   row), and [row_ptr] the per-row slice bounds.  Entries outside the
   stored pattern are exactly +0.0, matching what a dense
   finite-difference column writes for structurally-decoupled pairs —
   which is what makes [to_dense] round-trips bit-exact against the
   dense Jacobian path. *)
module Sparse = struct
  type dense = t

  (* The outer constructors/accessors, captured before the sparse
     definitions shadow their names. *)
  let dense_create = create
  let dense_get = get

  type t = {
    srows : int;
    scols : int;
    row_ptr : int array;
    col_idx : int array;
    values : float array;
  }

  let create ~rows ~cols ~row_ptr ~col_idx ~values =
    if rows < 0 || cols < 0 then invalid_arg "Mat.Sparse.create: negative dimension";
    if Array.length row_ptr <> rows + 1 then
      invalid_arg "Mat.Sparse.create: row_ptr length must be rows + 1";
    if rows >= 0 && (Array.length row_ptr = 0 || row_ptr.(0) <> 0) then
      invalid_arg "Mat.Sparse.create: row_ptr must start at 0";
    let nnz = Array.length col_idx in
    if Array.length values <> nnz then
      invalid_arg "Mat.Sparse.create: col_idx/values length mismatch";
    if row_ptr.(rows) <> nnz then
      invalid_arg "Mat.Sparse.create: row_ptr must end at the entry count";
    for i = 0 to rows - 1 do
      if row_ptr.(i) > row_ptr.(i + 1) then
        invalid_arg "Mat.Sparse.create: row_ptr must be non-decreasing";
      for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        if col_idx.(k) < 0 || col_idx.(k) >= cols then
          invalid_arg "Mat.Sparse.create: column index out of bounds";
        if k > row_ptr.(i) && col_idx.(k) <= col_idx.(k - 1) then
          invalid_arg "Mat.Sparse.create: columns must be strictly increasing per row"
      done
    done;
    {
      srows = rows;
      scols = cols;
      row_ptr = Array.copy row_ptr;
      col_idx = Array.copy col_idx;
      values = Array.copy values;
    }

  let rows s = s.srows
  let cols s = s.scols
  let nnz s = Array.length s.values
  let copy s = { s with values = Array.copy s.values }
  let to_csr s = (Array.copy s.row_ptr, Array.copy s.col_idx, Array.copy s.values)

  (* Position of (i, j) in the stored pattern, by binary search within
     row i; -1 when the entry is structurally zero. *)
  let find s i j =
    let lo = ref s.row_ptr.(i) and hi = ref (s.row_ptr.(i + 1) - 1) in
    let pos = ref (-1) in
    while !pos < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = s.col_idx.(mid) in
      if c = j then pos := mid else if c < j then lo := mid + 1 else hi := mid - 1
    done;
    !pos

  let get s i j =
    if i < 0 || i >= s.srows || j < 0 || j >= s.scols then
      invalid_arg "Mat.Sparse.get: index out of bounds";
    let pos = find s i j in
    if pos < 0 then 0. else s.values.(pos)

  let set_existing s i j x =
    if i < 0 || i >= s.srows || j < 0 || j >= s.scols then
      invalid_arg "Mat.Sparse.set_existing: index out of bounds";
    let pos = find s i j in
    if pos < 0 then invalid_arg "Mat.Sparse.set_existing: entry outside the pattern";
    s.values.(pos) <- x

  let iter_row s i f =
    if i < 0 || i >= s.srows then invalid_arg "Mat.Sparse.iter_row: row out of bounds";
    for k = s.row_ptr.(i) to s.row_ptr.(i + 1) - 1 do
      f s.col_idx.(k) s.values.(k)
    done

  let to_dense s =
    let m = dense_create s.srows s.scols in
    for i = 0 to s.srows - 1 do
      for k = s.row_ptr.(i) to s.row_ptr.(i + 1) - 1 do
        unsafe_set m i s.col_idx.(k) s.values.(k)
      done
    done;
    m

  (* [pattern], when given, lists each row's stored columns (sorted,
     strictly increasing); entries of [m] outside it are dropped even if
     nonzero.  Without it the structural nonzeros of [m] are kept. *)
  let of_dense ?pattern m =
    let r = m.rows and c = m.cols in
    let row_cols =
      match pattern with
      | Some p ->
        if Array.length p <> r then
          invalid_arg "Mat.Sparse.of_dense: pattern row count mismatch";
        p
      | None ->
        Array.init r (fun i ->
            let acc = ref [] in
            for j = c - 1 downto 0 do
              if dense_get m i j <> 0. then acc := j :: !acc
            done;
            Array.of_list !acc)
    in
    let row_ptr = Array.make (r + 1) 0 in
    for i = 0 to r - 1 do
      row_ptr.(i + 1) <- row_ptr.(i) + Array.length row_cols.(i)
    done;
    let nnz = row_ptr.(r) in
    let col_idx = Array.make nnz 0 and values = Array.make nnz 0. in
    for i = 0 to r - 1 do
      Array.iteri
        (fun k j ->
          col_idx.(row_ptr.(i) + k) <- j;
          values.(row_ptr.(i) + k) <- dense_get m i j)
        row_cols.(i)
    done;
    create ~rows:r ~cols:c ~row_ptr ~col_idx ~values

  let mul_vec s v =
    if s.scols <> Array.length v then invalid_arg "Mat.Sparse.mul_vec: dimension mismatch";
    Array.init s.srows (fun i ->
        let acc = ref 0. in
        for k = s.row_ptr.(i) to s.row_ptr.(i + 1) - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get s.values k
               *. Array.unsafe_get v (Array.unsafe_get s.col_idx k))
        done;
        !acc)

  let diagonal s =
    let n = Stdlib.min s.srows s.scols in
    Array.init n (fun i ->
        let pos = find s i i in
        if pos < 0 then 0. else s.values.(pos))

  let equal a b =
    a.srows = b.srows && a.scols = b.scols && a.row_ptr = b.row_ptr
    && a.col_idx = b.col_idx
    && Array.for_all2 (fun (x : float) y -> Int64.bits_of_float x = Int64.bits_of_float y)
         a.values b.values
end
