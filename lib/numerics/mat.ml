type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0. }

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.get: index out of bounds";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.set: index out of bounds";
  m.data.((i * m.cols) + j) <- x

let unsafe_get m i j = Array.unsafe_get m.data ((i * m.cols) + j)
let unsafe_set m i j x = Array.unsafe_set m.data ((i * m.cols) + j) x

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays a =
  let r = Array.length a in
  if r = 0 then invalid_arg "Mat.of_arrays: no rows";
  let c = Array.length a.(0) in
  if c = 0 then invalid_arg "Mat.of_arrays: empty rows";
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Mat.of_arrays: ragged rows")
    a;
  init r c (fun i j -> a.(i).(j))

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let to_flat m = Array.copy m.data

let of_flat ~rows ~cols data =
  if rows < 0 || cols < 0 then invalid_arg "Mat.of_flat: negative dimension";
  if Array.length data <> rows * cols then
    invalid_arg "Mat.of_flat: data length does not match dimensions";
  { rows; cols; data = Array.copy data }

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let lift2 name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg ("Mat." ^ name ^ ": dimension mismatch");
  init a.rows a.cols (fun i j -> f (get a i j) (get b i j))

let add a b = lift2 "add" ( +. ) a b
let sub a b = lift2 "sub" ( -. ) a b
let scale s m = init m.rows m.cols (fun i j -> s *. get m i j)

(* Hot kernels below run on the flat [data] array with unsafe accessors:
   the i-k-j loop order keeps the inner loop walking both [b] and the
   output row contiguously, with no bounds checks. Dimension checks stay
   at the entry. *)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: inner dimension mismatch";
  let m = a.rows and n = a.cols and p = b.cols in
  let out = create m p in
  let ad = a.data and bd = b.data and od = out.data in
  for i = 0 to m - 1 do
    let arow = i * n and orow = i * p in
    for k = 0 to n - 1 do
      let aik = Array.unsafe_get ad (arow + k) in
      let brow = k * p in
      for j = 0 to p - 1 do
        Array.unsafe_set od (orow + j)
          (Array.unsafe_get od (orow + j) +. (aik *. Array.unsafe_get bd (brow + j)))
      done
    done
  done;
  out

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  let rows = m.rows and cols = m.cols in
  let d = m.data in
  Array.init rows (fun i ->
      let row = i * cols in
      let acc = ref 0. in
      for j = 0 to cols - 1 do
        acc := !acc +. (Array.unsafe_get d (row + j) *. Array.unsafe_get v j)
      done;
      !acc)

let trace m =
  let n = Stdlib.min m.rows m.cols in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. get m i i
  done;
  !acc

let frobenius_norm m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let is_lower_triangular ?(tol = 1e-9) m =
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (get m i j) > tol then ok := false
    done
  done;
  !ok

let is_upper_triangular ?tol m = is_lower_triangular ?tol (transpose m)

let is_triangular ?tol m = is_lower_triangular ?tol m || is_upper_triangular ?tol m

let permute_rows_cols m p =
  if m.rows <> m.cols then invalid_arg "Mat.permute_rows_cols: not square";
  if Array.length p <> m.rows then
    invalid_arg "Mat.permute_rows_cols: permutation length mismatch";
  init m.rows m.cols (fun i j -> get m p.(i) p.(j))

(* LU with partial pivoting (Doolittle).  The factorization is stored packed
   in a single matrix: unit lower factor strictly below the diagonal, upper
   factor on and above it. *)
let lu m =
  if m.rows <> m.cols then invalid_arg "Mat.lu: not square";
  let n = m.rows in
  let a = copy m in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1 in
  let singular = ref false in
  (try
     for k = 0 to n - 1 do
       (* Pivot search in column k. *)
       let piv = ref k in
       for i = k + 1 to n - 1 do
         if Float.abs (get a i k) > Float.abs (get a !piv k) then piv := i
       done;
       if Float.abs (get a !piv k) < 1e-300 then begin
         singular := true;
         raise Exit
       end;
       if !piv <> k then begin
         for j = 0 to n - 1 do
           let t = get a k j in
           set a k j (get a !piv j);
           set a !piv j t
         done;
         let t = perm.(k) in
         perm.(k) <- perm.(!piv);
         perm.(!piv) <- t;
         sign := - !sign
       end;
       for i = k + 1 to n - 1 do
         let factor = get a i k /. get a k k in
         set a i k factor;
         for j = k + 1 to n - 1 do
           set a i j (get a i j -. (factor *. get a k j))
         done
       done
     done
   with Exit -> ());
  if !singular then None else Some (a, perm, !sign)

let solve a b =
  if a.rows <> Array.length b then invalid_arg "Mat.solve: dimension mismatch";
  match lu a with
  | None -> None
  | Some (f, perm, _) ->
    let n = a.rows in
    let x = Array.init n (fun i -> b.(perm.(i))) in
    (* Forward substitution with the unit lower factor. *)
    for i = 1 to n - 1 do
      for j = 0 to i - 1 do
        x.(i) <- x.(i) -. (get f i j *. x.(j))
      done
    done;
    (* Back substitution with the upper factor. *)
    for i = n - 1 downto 0 do
      for j = i + 1 to n - 1 do
        x.(i) <- x.(i) -. (get f i j *. x.(j))
      done;
      x.(i) <- x.(i) /. get f i i
    done;
    Some x

let det m =
  match lu m with
  | None -> 0.
  | Some (f, _, sign) ->
    let acc = ref (float_of_int sign) in
    for i = 0 to m.rows - 1 do
      acc := !acc *. get f i i
    done;
    !acc

let inverse m =
  if m.rows <> m.cols then invalid_arg "Mat.inverse: not square";
  let n = m.rows in
  match lu m with
  | None -> None
  | Some _ ->
    let inv = create n n in
    let ok = ref true in
    for j = 0 to n - 1 do
      let e = Array.init n (fun i -> if i = j then 1. else 0.) in
      match solve m e with
      | None -> ok := false
      | Some col ->
        for i = 0 to n - 1 do
          set inv i j col.(i)
        done
    done;
    if !ok then Some inv else None

let diagonal m =
  let n = Stdlib.min m.rows m.cols in
  Array.init n (fun i -> get m i i)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[@[<hov>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%10.6g" (get m i j)
    done;
    Format.fprintf ppf "@]]";
    if i < m.rows - 1 then Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"
