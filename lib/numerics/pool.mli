(** Multicore work pool on stdlib [Domain].

    [parallel_map] and [parallel_init] fan work out over OCaml 5 domains
    with chunked self-scheduling, while keeping results in input order —
    callers observe the same values (and can render byte-identical
    output) whatever the degree of parallelism.  The first exception
    raised by any task is re-raised, with its backtrace, from the
    calling domain.

    Spawning domains from inside a pool task is rejected ({!Nested}):
    nesting oversubscribes the machine and deadlocks nothing but wastes
    everything.  Sequential execution ([jobs = 1]) is allowed anywhere,
    and {!effective_jobs} collapses to 1 automatically inside a worker,
    so parallel entry points can be composed freely — the outermost one
    wins. *)

exception Nested
(** Raised when a task running on a pool worker attempts to spawn a
    nested pool ([jobs >= 2] from inside {!parallel_map} /
    {!parallel_init}). *)

val default_jobs : unit -> int
(** The process-wide default parallelism, initially
    [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Overrides {!default_jobs}; must be >= 1.  Set once at startup (e.g.
    from a [--jobs] CLI flag). *)

val in_worker : unit -> bool
(** Whether the calling domain is currently executing a pool task. *)

val effective_jobs : ?jobs:int -> unit -> int
(** [jobs] if given, else {!default_jobs}; forced to 1 when called from
    inside a pool worker so that nested parallel entry points degrade to
    sequential instead of raising {!Nested}. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~jobs f a] is [Array.map f a] computed by up to [jobs]
    domains (default {!default_jobs}), results in input order.  [f] must
    be safe to call concurrently from several domains.  Raises {!Nested}
    when invoked with [jobs >= 2] from inside a pool task.

    The fan-out is clamped to [Domain.recommended_domain_count ()]:
    domains beyond the physical cores never run concurrently and only
    add stop-the-world GC synchronization stalls.  [jobs >= 2] keeps its
    worker-context semantics ({!in_worker}, {!Nested}) even when the
    clamp collapses the execution to the calling domain, so program
    behaviour — including byte-identical results — does not depend on
    the machine's core count. *)

val parallel_init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init ~jobs n f] is [Array.init n f], parallelized as in
    {!parallel_map}. *)
