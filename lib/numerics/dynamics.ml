type classification =
  | Fixed_point of float
  | Cycle of float array
  | Chaotic of float
  | Aperiodic of float
  | Divergent

let iterate g ~x0 ~n =
  let out = Array.make n 0. in
  let x = ref x0 in
  for i = 0 to n - 1 do
    x := g !x;
    out.(i) <- !x
  done;
  out

let orbit_tail g ~x0 ~transient ~keep =
  let x = ref x0 in
  for _ = 1 to transient do
    x := g !x
  done;
  iterate g ~x0:!x ~n:keep

let lyapunov ?(dx = 1e-7) g ~x0 ~n =
  let x = ref x0 in
  for _ = 1 to 1000 do
    x := g !x
  done;
  let acc = ref 0. in
  let degenerate = ref false in
  for _ = 1 to n do
    let deriv = (g (!x +. dx) -. g (!x -. dx)) /. (2. *. dx) in
    let mag = Float.abs deriv in
    if mag <= 0. then degenerate := true else acc := !acc +. log mag;
    x := g !x
  done;
  if !degenerate then Float.neg_infinity else !acc /. float_of_int n

(* An orbit has period p if consecutive samples repeat with lag p.  We
   require the repetition to hold across the whole kept window and take the
   smallest such p. *)
let detect_period samples ~max_period ~tol =
  let n = Array.length samples in
  let holds p =
    let ok = ref true in
    for i = 0 to n - 1 - p do
      if Float.abs (samples.(i) -. samples.(i + p)) > tol then ok := false
    done;
    !ok
  in
  let rec go p =
    if p > max_period || p >= n then None
    else if holds p then Some p
    else go (p + 1)
  in
  go 1

let rotate_cycle_to_min cycle =
  let n = Array.length cycle in
  let start = ref 0 in
  for i = 1 to n - 1 do
    if cycle.(i) < cycle.(!start) then start := i
  done;
  Array.init n (fun i -> cycle.((!start + i) mod n))

let classify ?(transient = 2000) ?(keep = 512) ?(max_period = 64) ?(tol = 1e-6)
    ?(escape = 1e9) g ~x0 =
  let x = ref x0 in
  let diverged = ref false in
  (try
     for _ = 1 to transient do
       x := g !x;
       if (not (Float.is_finite !x)) || Float.abs !x > escape then begin
         diverged := true;
         raise Exit
       end
     done
   with Exit -> ());
  if !diverged then Divergent
  else begin
    let samples = iterate g ~x0:!x ~n:keep in
    let bad =
      Array.exists (fun v -> (not (Float.is_finite v)) || Float.abs v > escape) samples
    in
    if bad then Divergent
    else
      match detect_period samples ~max_period ~tol with
      | Some 1 -> Fixed_point samples.(keep - 1)
      | Some p -> Cycle (rotate_cycle_to_min (Array.sub samples (keep - p) p))
      | None ->
        let le = lyapunov g ~x0:!x ~n:keep in
        if le > 0. then Chaotic le else Aperiodic le
  end

let bifurcation_scan ?(transient = 2000) ?(keep = 128) ?jobs g ~params ~x0 =
  (* Each parameter's orbit is independent; fan out over domains and
     collect in parameter order so the scan stays deterministic. *)
  Pool.parallel_map
    ~jobs:(Pool.effective_jobs ?jobs ())
    (fun p ->
      let samples = orbit_tail (g p) ~x0 ~transient ~keep in
      (p, samples))
    params
