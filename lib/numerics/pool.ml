exception Nested

let default = Atomic.make (Domain.recommended_domain_count ())

let default_jobs () = Atomic.get default

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Atomic.set default j

let inside : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get inside

let effective_jobs ?jobs () =
  if in_worker () then 1
  else match jobs with Some j -> j | None -> default_jobs ()

let parallel_map ?jobs f arr =
  let n = Array.length arr in
  let requested =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Pool.parallel_map: jobs must be >= 1"
    | Some j -> j
    | None -> default_jobs ()
  in
  let requested = Stdlib.min requested n in
  if requested <= 1 then Array.map f arr
  else begin
    if in_worker () then raise Nested;
    (* Fan out at most one domain per physical core: extra domains never
       run concurrently, they only add stop-the-world GC synchronization
       stalls.  When the clamp collapses to 1 (single-core machine), run
       on the calling domain but keep the worker context, so [Nested]
       and [effective_jobs] behave identically on any hardware. *)
    let jobs = Stdlib.min requested (Domain.recommended_domain_count ()) in
    if jobs <= 1 then begin
      Domain.DLS.set inside true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set inside false)
        (fun () -> Array.map f arr)
    end
    else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    (* Chunked self-scheduling: small enough to balance uneven task
       costs, large enough that the atomic counter is not contended. *)
    let chunk = Stdlib.max 1 (n / (jobs * 4)) in
    let worker () =
      Domain.DLS.set inside true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set inside false)
        (fun () ->
          let continue = ref true in
          while !continue do
            let start = Atomic.fetch_and_add next chunk in
            if start >= n || Atomic.get failure <> None then continue := false
            else begin
              let stop = Stdlib.min n (start + chunk) in
              try
                for i = start to stop - 1 do
                  results.(i) <- Some (f arr.(i))
                done
              with e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failure None (Some (e, bt)));
                continue := false
            end
          done)
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain participates instead of idling at the join. *)
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
    end
  end

let parallel_init ?jobs n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  parallel_map ?jobs f (Array.init n Fun.id)
