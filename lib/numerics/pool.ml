exception Nested

let default = Atomic.make (Domain.recommended_domain_count ())

let default_jobs () = Atomic.get default

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Atomic.set default j

let inside : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get inside

let effective_jobs ?jobs () =
  if in_worker () then 1
  else match jobs with Some j -> j | None -> default_jobs ()

let parallel_map ?jobs f arr =
  let n = Array.length arr in
  let requested =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Pool.parallel_map: jobs must be >= 1"
    | Some j -> j
    | None -> default_jobs ()
  in
  Ffc_obs.Ctx.add_pool_tasks n;
  let requested = Stdlib.min requested n in
  if requested <= 1 then Array.map f arr
  else begin
    if in_worker () then raise Nested;
    (* Fan out at most one domain per physical core: extra domains never
       run concurrently, they only add stop-the-world GC synchronization
       stalls.  When the clamp collapses to 1 (single-core machine), run
       on the calling domain but keep the worker context, so [Nested]
       and [effective_jobs] behave identically on any hardware. *)
    let jobs = Stdlib.min requested (Domain.recommended_domain_count ()) in
    if jobs <= 1 then begin
      Domain.DLS.set inside true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set inside false)
        (fun () -> Array.map f arr)
    end
    else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    (* Chunked self-scheduling: small enough to balance uneven task
       costs, large enough that the atomic counter is not contended. *)
    let chunk = Stdlib.max 1 (n / (jobs * 4)) in
    (* When a trace sink is live, each task's emissions are captured into
       a private buffer and flushed in task-index order at the join —
       that is what keeps a trace byte-identical at any --jobs value.
       Scheduling detail (which domain ran which chunk) is inherently
       nondeterministic, so it is only recorded behind [Ctx.sched]. *)
    let obs = Ffc_obs.Ctx.tracing () in
    let traces =
      match obs with None -> [||] | Some _ -> Array.make n ""
    in
    let sched =
      match obs with Some c when Ffc_obs.Ctx.sched c -> true | _ -> false
    in
    let chunk_log = Array.make jobs [] in
    let worker slot () =
      Domain.DLS.set inside true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set inside false)
        (fun () ->
          let continue = ref true in
          while !continue do
            let start = Atomic.fetch_and_add next chunk in
            if start >= n || Atomic.get failure <> None then continue := false
            else begin
              let stop = Stdlib.min n (start + chunk) in
              if sched then
                chunk_log.(slot) <- (start, stop) :: chunk_log.(slot);
              try
                for i = start to stop - 1 do
                  match obs with
                  | None -> results.(i) <- Some (f arr.(i))
                  | Some _ ->
                    let r, trace =
                      Ffc_obs.Sink.capture (fun () -> f arr.(i))
                    in
                    results.(i) <- Some r;
                    traces.(i) <- trace
                done
              with e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failure None (Some (e, bt)));
                continue := false
            end
          done)
    in
    let domains =
      Array.init (jobs - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    (* The calling domain participates instead of idling at the join. *)
    worker 0 ();
    Array.iter Domain.join domains;
    (match obs with
    | None -> ()
    | Some c ->
      (* Flush even on failure: completed tasks' events are real. *)
      let sink = Ffc_obs.Ctx.sink c in
      Array.iter (fun s -> Ffc_obs.Sink.emit_raw sink s) traces;
      if sched then begin
        Ffc_obs.Ctx.emit c (Ffc_obs.Event.pool_map ~tasks:n ~jobs ~chunk);
        let chunks = ref [] in
        Array.iteri
          (fun slot log ->
            List.iter
              (fun (start, stop) -> chunks := (start, stop, slot) :: !chunks)
              log;
            let tasks =
              List.fold_left (fun a (s, e) -> a + (e - s)) 0 log
            in
            Ffc_obs.Metrics.Counter.add
              (Ffc_obs.Metrics.counter
                 (Ffc_obs.Ctx.metrics c)
                 (Printf.sprintf "pool.domain%d.tasks" slot))
              tasks)
          chunk_log;
        List.iter
          (fun (start, stop, domain) ->
            Ffc_obs.Ctx.emit c (Ffc_obs.Event.pool_chunk ~start ~stop ~domain))
          (List.sort compare !chunks)
      end);
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
    end
  end

let parallel_init ?jobs n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  parallel_map ?jobs f (Array.init n Fun.id)
