(** Analysis of one-dimensional iterated maps.

    The paper's §3.3 observes that when the flow-control steady state loses
    stability the symmetric update reduces to a scalar recursion that
    "proceeds from stable behavior, to oscillatory behavior, to chaotic
    behavior" (citing Collet–Eckmann).  This module classifies orbits of
    x' = g(x): attracting fixed points, periodic cycles, divergence, and
    chaos (via the largest Lyapunov exponent estimated by finite
    differences along the orbit). *)

type classification =
  | Fixed_point of float  (** Orbit settles at this value. *)
  | Cycle of float array
      (** Attracting cycle, listed in orbit order from its smallest
          element; length is the period (≥ 2). *)
  | Chaotic of float
      (** No low-period attractor found, orbit bounded, positive Lyapunov
          exponent (the payload). *)
  | Aperiodic of float
      (** Bounded, no low-period attractor, non-positive Lyapunov exponent
          (the payload) — e.g. quasiperiodic or slowly converging. *)
  | Divergent  (** Orbit escaped beyond the escape radius. *)

val iterate : (float -> float) -> x0:float -> n:int -> float array
(** First [n] iterates of the map starting *after* [x0] (so index 0 holds
    g(x0)). *)

val orbit_tail : (float -> float) -> x0:float -> transient:int -> keep:int -> float array
(** Iterates the map [transient] times from [x0] to discard the transient,
    then returns the next [keep] iterates. *)

val lyapunov : ?dx:float -> (float -> float) -> x0:float -> n:int -> float
(** Largest Lyapunov exponent estimate: average of [log |g'(x_t)|] along
    [n] orbit points after a discarded transient, with [g'] computed by
    central differences of width [dx] (default [1e-7]).  Negative for
    attracting fixed points and cycles, positive for chaos, [neg_infinity]
    if the derivative hits zero exactly. *)

val classify :
  ?transient:int -> ?keep:int -> ?max_period:int -> ?tol:float ->
  ?escape:float -> (float -> float) -> x0:float -> classification
(** Classifies the orbit of [g] from [x0].  [transient] iterations are
    discarded (default 2000), [keep] are analyzed (default 512),
    periods up to [max_period] (default 64) are recognized with absolute
    tolerance [tol] (default 1e-6), and any iterate with magnitude above
    [escape] (default 1e9) is deemed divergent. *)

val bifurcation_scan :
  ?transient:int -> ?keep:int -> ?jobs:int -> (float -> float -> float) ->
  params:float array -> x0:float -> (float * float array) array
(** [bifurcation_scan g ~params ~x0] — for each parameter value [p], the
    post-transient orbit samples of [g p], as used to draw a bifurcation
    diagram.  Parameters are scanned in parallel over up to [jobs]
    domains (default {!Pool.default_jobs}); results are returned in
    parameter order regardless of [jobs]. *)
