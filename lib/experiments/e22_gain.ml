open Ffc_numerics
open Ffc_topology
open Ffc_core

type row = {
  eta : float;
  design : string;
  spectral_radius : float;
  steps : int;
  converged : bool;
}

let compute ?(etas = [ 0.02; 0.05; 0.1; 0.2; 0.4; 0.6 ]) ?(n = 4) ?jobs () =
  let net = Topologies.single ~mu:1. ~n () in
  let r0 = Array.init n (fun i -> 0.02 +. (0.02 *. float_of_int i)) in
  (* The eta x design grid is embarrassingly parallel and deterministic
     (no RNG): fan the cells over the pool in row-major order, keeping
     the row order of the sequential version. *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun eta -> List.map (fun design -> (eta, design)) Analysis.designs)
         etas)
  in
  Pool.parallel_map
    ~jobs:(Pool.effective_jobs ?jobs ())
    (fun (eta, design) ->
      let adjusters = Array.make n (Rate_adjust.additive ~eta ~beta:0.5) in
      let controller = Controller.create ~config:design.Analysis.config ~adjusters in
      let manifold = if design.Analysis.label = "aggregate" then n - 1 else 0 in
      (* Spectral radius at the fair point (discounting manifold
         modes for aggregate feedback). *)
      let fair = Array.make n (0.5 /. float_of_int n) in
      let df = Jacobian.of_controller controller ~net ~at:fair in
      let ev = Jacobian.eigenvalues_sorted df in
      let spectral_radius =
        (* Skip [manifold] eigenvalues of modulus ~1. *)
        if manifold < Array.length ev then Complex.norm ev.(manifold) else 0.
      in
      match Controller.run ~max_steps:40_000 controller ~net ~r0 with
      | Controller.Converged { steps; _ } ->
        {
          eta;
          design = design.Analysis.label;
          spectral_radius;
          steps;
          converged = true;
        }
      | _ ->
        { eta; design = design.Analysis.label; spectral_radius; steps = 0;
          converged = false })
    cells
  |> Array.to_list

let run () =
  let rows = compute () in
  let header = [ "eta"; "design"; "rho(DF) (predicted)"; "steps"; "converged" ] in
  let body =
    List.map
      (fun r ->
        [
          Exp_common.fnum r.eta;
          r.design;
          Exp_common.fnum r.spectral_radius;
          (if r.converged then string_of_int r.steps else "-");
          Exp_common.fbool r.converged;
        ])
      rows
  in
  "Single gateway, N = 4, additive beta = 0.5, gain sweep:\n\n"
  ^ Exp_common.table ~header ~rows:body
  ^ "\nHigher gain contracts faster until the spectral radius reaches 1 and\n\
     every design destabilizes together (near eta = 0.5, where the\n\
     scalar response 1 - 2*eta*... crosses -1).  Between the individual\n\
     designs, Fair Share contracts strictly faster than FIFO at every\n\
     gain — Theorem 4's triangular DF is also a performance win.\n\
     Aggregate feedback's transverse modes contract fastest of all, but\n\
     that speed is deceptive: its manifold directions never contract, so\n\
     it converges quickly to an arbitrary (generally unfair) point.\n"

let experiment =
  {
    Exp_common.id = "E22";
    title = "Ablation: gain vs convergence speed across designs";
    paper_ref = "\xc2\xa73.3 (stability), ablation";
    run;
  }
