type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : unit -> string;
}

let fnum x =
  if x = Float.infinity then "inf"
  else if x = Float.neg_infinity then "-inf"
  else if Float.is_nan x then "nan"
  else if x = 0. then "0"
  else if Float.abs x >= 0.001 && Float.abs x < 100000. then Printf.sprintf "%.4g" x
  else Printf.sprintf "%.3e" x

let fbool b = if b then "yes" else "no"

let table ~header ~rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc row -> Stdlib.max acc (List.length row)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> Stdlib.max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    let cells =
      List.mapi
        (fun c w ->
          let cell = match List.nth_opt row c with Some s -> s | None -> "" in
          Printf.sprintf "%-*s" w cell)
        widths
    in
    "  " ^ String.concat "  " cells
  in
  let rule =
    "  " ^ String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" ((render_row header :: rule :: List.map render_row rows) @ [ "" ])

let section title = Printf.sprintf "%s\n%s\n" title (String.make (String.length title) '~')

(* The cell tier: a whole experiment's rendered report, memoized on its
   identity and the code-schema version.  Every experiment keeps
   wall-clock time (and any other nondeterminism) out of its report —
   the repo-wide byte-identity contract — which is exactly what makes a
   replayed cell indistinguishable from a fresh one.  This is the tier
   that turns a warm `ffc exp --all` into pure cache reads. *)
let render t =
  Ffc_cache.Cache.memo_string ~tier:"cell"
    ~build:(fun k ->
      Ffc_cache.Key.str k t.id;
      Ffc_cache.Key.str k t.title;
      Ffc_cache.Key.str k t.paper_ref)
    (fun () ->
      let sep = String.make 72 '=' in
      Printf.sprintf "%s\n%s: %s  [paper: %s]\n%s\n%s" sep t.id t.title t.paper_ref sep
        (t.run ()))
