let all =
  [
    E01_table1.experiment;
    E02_tsi.experiment;
    E03_aggregate_fairness.experiment;
    E04_individual_fairness.experiment;
    E05_stability.experiment;
    E06_chaos.experiment;
    E07_triangular.experiment;
    E08_starvation.experiment;
    E09_robustness.experiment;
    E10_decbit.experiment;
    E11_delay.experiment;
    E12_validation.experiment;
    E13_asynchrony.experiment;
    E14_binary_feedback.experiment;
    E15_async.experiment;
    E16_signal_ablation.experiment;
    E17_closed_loop.experiment;
    E18_weighted.experiment;
    E19_implicit.experiment;
    E20_game.experiment;
    E21_window.experiment;
    E22_gain.experiment;
    E23_scale.experiment;
    E24_transient.experiment;
    E25_stress.experiment;
    E26_churn.experiment;
    E27_million.experiment;
  ]

let find id =
  let target = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.Exp_common.id = target) all

let run_all ?jobs () =
  (* Experiments render on up to [jobs] domains; collecting by index and
     concatenating in registry order keeps the output byte-identical to
     a sequential run.  Each experiment seeds its own SplitMix64 stream,
     so none shares mutable state with its siblings. *)
  Ffc_numerics.Pool.parallel_map ?jobs Exp_common.render (Array.of_list all)
  |> Array.to_list |> String.concat "\n"

let run_one id =
  match find id with
  | Some e -> Ok (Exp_common.render e)
  | None ->
    Error
      (Printf.sprintf "unknown experiment %S; valid ids: %s" id
         (String.concat ", " (List.map (fun e -> e.Exp_common.id) all)))
