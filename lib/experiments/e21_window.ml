open Ffc_numerics
open Ffc_topology
open Ffc_core

type result = {
  decbit_windows : float array;
  decbit_rates : float array;
  decbit_rate_ratio : float;
  delay_ratio : float;
  tsi_windows : float array;
  tsi_rates : float array;
  tsi_fair : bool;
  giant_window_utilization : float;
}

let net =
  Network.create
    ~gateways:
      [|
        { Network.gw_name = "bottleneck"; mu = 1.; latency = 0. };
        { Network.gw_name = "short-access"; mu = 10.; latency = 0.5 };
        { Network.gw_name = "long-access"; mu = 10.; latency = 8. };
      |]
    ~connections:
      [|
        { Network.conn_name = "short"; path = [ 1; 0 ] };
        { Network.conn_name = "long"; path = [ 2; 0 ] };
      |]

let config = Feedback.individual_fifo

(* The original DECbit algorithm used aggregate feedback; running its
   window form under it makes the two connections' signals — and hence
   their steady windows — identical, isolating the latency bias. *)
let aggregate_config = Feedback.aggregate_fifo

let converge config adjuster =
  match
    Window.run config ~net ~adjusters:(Array.make 2 adjuster) ~w0:[| 0.5; 0.5 |]
  with
  | Window.Converged { windows; rates; _ } -> (windows, rates)
  | Window.No_convergence { windows; rates } -> (windows, rates)
  | Window.Diverged { windows; at_step } ->
    (* The paper's window adjusters are self-limiting; divergence here
       means a bad parameterization, not an experimental result. *)
    failwith
      (Printf.sprintf "E21: window dynamics diverged at step %d (windows = %s)"
         at_step (Vec.to_string windows))

let compute () =
  let decbit_windows, decbit_rates =
    converge aggregate_config (Window.decbit ~eta:0.05 ~beta:0.5)
  in
  let delays = Feedback.delays aggregate_config ~net ~rates:decbit_rates in
  let tsi_windows, tsi_rates =
    converge config (Window.additive_tsi ~eta:0.1 ~beta:0.5)
  in
  let giant_rates = Window.rates_of_windows config ~net ~windows:[| 2000.; 2000. |] in
  {
    decbit_windows;
    decbit_rates;
    decbit_rate_ratio = decbit_rates.(0) /. decbit_rates.(1);
    delay_ratio = delays.(1) /. delays.(0);
    tsi_windows;
    tsi_rates;
    tsi_fair =
      Float.abs (tsi_rates.(0) -. tsi_rates.(1)) < 1e-4 *. (1. +. tsi_rates.(0));
    giant_window_utilization = Vec.sum giant_rates /. 1.;
  }

let run () =
  let r = compute () in
  Exp_common.table
    ~header:[ "adjuster"; "windows (short, long)"; "rates"; "verdict" ]
    ~rows:
      [
        [
          "DECbit (constant increase)";
          Vec.to_string r.decbit_windows;
          Vec.to_string r.decbit_rates;
          Printf.sprintf "rate ratio %.3g tracks delay ratio %.3g"
            r.decbit_rate_ratio r.delay_ratio;
        ];
        [
          "TSI eta(beta - b) in window space";
          Vec.to_string r.tsi_windows;
          Vec.to_string r.tsi_rates;
          (if r.tsi_fair then "fair rates from unequal windows" else "NOT FAIR");
        ];
      ]
  ^ Printf.sprintf
      "\n\
       Equal windows + unequal RTTs = unfair rates; the TSI window\n\
       adjuster instead converges to windows proportional to each path's\n\
       delay and recovers exactly fair rates.  Self-limitation: fixed\n\
       windows of 2000 packets still only induce bottleneck load\n\
       %.8f < 1 — the queue grows until Little's law caps the rate;\n\
       window control cannot overload a gateway.\n"
      r.giant_window_utilization

let experiment =
  {
    Exp_common.id = "E21";
    title = "Window-based control: constant increase is the culprit";
    paper_ref = "\xc2\xa74 (window vs rate), extension";
    run;
  }
