open Ffc_numerics
open Ffc_topology
open Ffc_core

type row = {
  gateways : int;
  connections : int;
  converged : bool;
  fair : bool;
  matched_prediction : bool;
  systemic : bool;
  rho : float;
  steps : int;
  wall_seconds : float;
}

let compute ?(seed = 99) ?(sizes = [ (4, 8); (8, 20); (16, 48); (24, 80); (48, 160) ])
    ?jobs () =
  (* Per-task RNG streams, split off one SplitMix64 base before the fan
     out: task k's stream depends only on (seed, k), never on how its
     siblings are scheduled, so the sweep is deterministic at any [jobs]. *)
  let base = Rng.create seed in
  let tasks = Array.of_list sizes in
  let rngs = Array.map (fun _ -> Rng.split base) tasks in
  Pool.parallel_init
    ~jobs:(Pool.effective_jobs ?jobs ())
    (Array.length tasks)
    (fun k ->
      let gateways, connections = tasks.(k) in
      let rng = rngs.(k) in
      let net =
        Topologies.random ~rng ~latency_range:(0., 0.) ~gateways ~connections
          ~max_path:4 ()
      in
      let n = Network.num_connections net in
      let controller =
        Controller.homogeneous ~config:Feedback.individual_fair_share
          ~adjuster:Scenario.standard_adjuster ~n
      in
      let r0 = Scenario.random_start ~rng ~net ~lo:0. ~hi:0.2 in
      let predicted =
        Steady_state.fair ~signal:Signal.linear_fractional
          ~b_ss:Scenario.default_beta ~net
      in
      let t0 = Unix.gettimeofday () in
      let outcome = Controller.run ~max_steps:120_000 controller ~net ~r0 in
      let wall_seconds = Unix.gettimeofday () -. t0 in
      match outcome with
      | Controller.Converged { steady; steps } ->
        (* Stability audit at the fixed point through the structure-aware
           kernel: the Jacobian columns fan out over the pool (sequential
           here, under the outer sweep) and the eigensolve takes the
           Theorem-4 diagonal read whenever the triangular structure is
           detected, falling back to dense QR otherwise. *)
        let df = Jacobian.of_controller controller ~net ~at:steady in
        {
          gateways;
          connections;
          converged = true;
          fair =
            Fairness.is_fair ~tol:1e-4 Feedback.individual_fair_share ~net
              ~rates:steady;
          matched_prediction = Vec.approx_equal ~tol:1e-4 steady predicted;
          systemic = Jacobian.systemically_stable df;
          rho = Jacobian.spectral_radius df;
          steps;
          wall_seconds;
        }
      | _ ->
        {
          gateways;
          connections;
          converged = false;
          fair = false;
          matched_prediction = false;
          systemic = false;
          rho = Float.nan;
          steps = 0;
          wall_seconds;
        })
  |> Array.to_list

let run () =
  let rows = compute () in
  (* Wall-clock stays out of the report so `exp all` output is
     byte-identical across runs and --jobs settings; the bench harness
     tracks timing instead. *)
  let header =
    [
      "gateways"; "connections"; "converged"; "fair"; "= water-filling"; "stable";
      "rho(DF)"; "steps";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.gateways;
          string_of_int r.connections;
          Exp_common.fbool r.converged;
          Exp_common.fbool r.fair;
          Exp_common.fbool r.matched_prediction;
          Exp_common.fbool r.systemic;
          (if Float.is_nan r.rho then "-" else Exp_common.fnum r.rho);
          string_of_int r.steps;
        ])
      rows
  in
  "Random topologies, individual feedback + Fair Share, random starts:\n\n"
  ^ Exp_common.table ~header ~rows:body
  ^ "\nTheorem 3's guarantee is size-independent: every run lands exactly\n\
     on the unique water-filling allocation — now stress-tested up to\n\
     48 gateways / 160 connections — and the Jacobian audit at the fixed\n\
     point confirms linear stability (rho(DF) < 1) at every size.\n"

let experiment =
  {
    Exp_common.id = "E23";
    title = "Scale stress: random networks, dozens of connections";
    paper_ref = "Theorems 2-3 at scale";
    run;
  }
