(** E26 — flow churn: rank-1/structured incremental updates vs full
    rebuilds.

    On disjoint parking lots (block-diagonal coupling), toggles one flow
    per step with a seeded RNG and advances the masked fair steady state
    ({!Ffc_core.Steady_state.update_fair}) and the CSR stability matrix
    ({!Ffc_core.Jacobian.update_flow}) incrementally, comparing each
    step against from-scratch rebuilds at the same activity mask.  The
    incremental results must match within 1e-9 at every step (rates and
    DF entries agree bit-for-bit by construction; the spectral radius
    goes through the deflation-checked power-iteration estimate). *)

type step_report = {
  step : int;
  event : string;  (** ["join lot2.cross0"] etc. *)
  active_count : int;
  d_rates : float;  (** max |incremental − full| over rates. *)
  d_df : float;  (** max |incremental − full| over stored DF entries. *)
  d_rho : float;  (** |incremental ρ − full ρ|. *)
}

type summary = {
  lots : int;
  hops : int;
  n : int;
  nnz : int;  (** Stored entries of the route-incidence pattern. *)
  groups : int;  (** Probe groups for a from-scratch build ([<= n]). *)
  steps : step_report list;
  max_d_rates : float;
  max_d_df : float;
  max_d_rho : float;
  all_within : bool;  (** Every deviation ≤ 1e-9. *)
}

val compute : ?lots:int -> ?hops:int -> ?steps:int -> ?seed:int -> unit -> summary

val experiment : Exp_common.t
