open Ffc_numerics
open Ffc_topology
open Ffc_core

type row = {
  n : int;
  unilateral : float;
  predicted_eigenvalue : float;
  measured_eigenvalue : float;
  converged : bool;
}

let compute ?(eta = 0.1) ?(ns = [ 2; 5; 10; 15; 19; 21; 25; 30 ]) ?jobs () =
  (* Each N is an independent, fully deterministic task (no RNG), so the
     sweep fans out over the pool and the rows are byte-identical at any
     jobs count. *)
  Pool.parallel_map
    ~jobs:(Pool.effective_jobs ?jobs ())
    (fun n ->
      let net = Topologies.single ~mu:1. ~n () in
      let adjuster = Rate_adjust.additive ~eta ~beta:0.5 in
      let c = Controller.homogeneous ~config:Feedback.aggregate_fifo ~adjuster ~n in
      let fair = Array.make n (0.5 /. float_of_int n) in
      let df = Jacobian.of_controller c ~net ~at:fair in
      let measured =
        Array.fold_left
          (fun acc z -> if z.Complex.re < acc then z.Complex.re else acc)
          1.
          (Jacobian.eigenvalues df)
      in
      (* Perturb the fair point with a component along the all-ones
         direction — the mode carrying the 1 - eta*N eigenvalue.  (A
         perturbation that keeps the sum fixed lies in the steady-state
         manifold and tests nothing.) *)
      let r0 =
        Array.mapi
          (fun i r -> r *. (1.02 +. (0.01 *. float_of_int i /. float_of_int n)))
          fair
      in
      let converged =
        match Controller.run ~max_steps:8_000 c ~net ~r0 with
        | Controller.Converged _ -> true
        | _ -> false
      in
      {
        n;
        unilateral = 1. -. eta;
        predicted_eigenvalue = 1. -. (eta *. float_of_int n);
        measured_eigenvalue = measured;
        converged;
      })
    (Array.of_list ns)
  |> Array.to_list

let run () =
  let eta = 0.1 in
  let rows = compute ~eta () in
  let header =
    [ "N"; "DF_ii"; "1 - eta*N (paper)"; "min eigenvalue (measured)"; "converges" ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.n;
          Exp_common.fnum r.unilateral;
          Exp_common.fnum r.predicted_eigenvalue;
          Exp_common.fnum r.measured_eigenvalue;
          Exp_common.fbool r.converged;
        ])
      rows
  in
  Exp_common.table ~header ~rows:body
  ^ Printf.sprintf
      "\n\
       eta = %g: every N is unilaterally stable (|DF_ii| = %g < 1), yet\n\
       systemic stability is lost once |1 - eta*N| > 1, i.e. N > %g —\n\
       matching the convergence column.\n"
      eta (1. -. eta) (2. /. eta)

let experiment =
  {
    Exp_common.id = "E5";
    title = "Unilateral vs systemic stability of aggregate feedback";
    paper_ref = "\xc2\xa73.3 instability example";
    run;
  }
