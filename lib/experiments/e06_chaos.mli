(** E6 — §3.3's route to chaos (the paper's implicit "figure").

    With B = (C/(1+C))² at a single gateway, the symmetric aggregate map
    reduces to the scalar quadratic recursion r' = r + η(β − (Nr)²)
    (the paper's F = r + ηN(β − r²) up to rescaling).  Increasing N
    drives the recursion from a stable fixed point through period
    doubling to chaos (Collet–Eckmann) and finally divergence.

    The flow-control model additionally truncates rates at zero; the
    truncated map replaces both the chaotic band and divergence with
    relaxation cycles through r = 0 — a finding this reproduction makes
    explicit.  The experiment reports both maps side by side and draws
    the bifurcation diagram of the truncated one. *)

type row = {
  n : int;
  untruncated : string;
      (** Orbit class of the paper's literal recursion:
          "fixed-point" | "period-k" | "chaotic(λ)" | "divergent". *)
  truncated : string;  (** Same map with the model's max(0, ·) clamp. *)
}

val scalar_map : ?truncate:bool -> eta:float -> beta:float -> n:int -> float -> float
(** The reduced map ([truncate] defaults to [true], matching the
    flow-control model). *)

val reduction_is_exact : unit -> bool
(** Checks that the full N-connection vector iteration from a symmetric
    start follows the (truncated) scalar map exactly for 50 steps. *)

val compute : ?eta:float -> ?beta:float -> ?ns:int list -> ?jobs:int -> unit -> row list
(** The N values are classified on up to [jobs] domains (default
    {!Ffc_numerics.Pool.default_jobs}, forced to 1 under an outer pool);
    row order follows [ns] regardless. *)

val bifurcation_diagram : ?eta:float -> ?beta:float -> unit -> string
(** ASCII scatter of post-transient truncated-orbit samples against N. *)

val experiment : Exp_common.t
