(** The experiment registry: every table, figure, and in-text quantitative
    claim of the paper, plus the validation and extension experiments,
    addressable by id. *)

val all : Exp_common.t list
(** E1 … E13 in order. *)

val find : string -> Exp_common.t option
(** Lookup by id, case-insensitive ("e5" matches "E5"). *)

val run_all : ?jobs:int -> unit -> string
(** Renders every experiment, in order, fanning the work out over up to
    [jobs] domains (default {!Ffc_numerics.Pool.default_jobs}).  The
    output is byte-identical for every [jobs] value: results are
    collected by registry index, and each experiment derives its own
    deterministic RNG stream. *)

val run_one : string -> (string, string) result
(** Renders one experiment by id; [Error] lists valid ids. *)
