open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_closedloop
open Ffc_desim

(* E27: the million-flow desim core at work.  Open-loop rows sweep
   10^3..10^5 concurrent flows through disjoint parking-lot domains on
   the timing-wheel scheduler with sharded components; a closed-loop
   section then runs the E17 control loop at 10^5 flows and checks the
   allocation against the per-lot water-filling prediction.  Everything
   reported is shard- and jobs-invariant, so the rendered text is
   byte-identical at any parallelism. *)

type row = {
  flows : int;
  gateways : int;
  components : int;
  shards : int;
  events : int;
  deliveries : int;
  delay : float;  (** mean end-to-end delay of the probe connections *)
  shard_invariant : bool option;
      (** [Some ok] when the row was re-run at 1 shard and compared;
          [None] for the largest rows (too costly to run twice). *)
}

type closed_row = {
  cl_flows : int;
  cl_gateways : int;
  cl_updates : int;
  cl_long_rate : float;  (** mean tail rate of the 3-hop flows *)
  cl_cross_rate : float;  (** mean tail rate of the 1-hop cross flows *)
  cl_long_predicted : float;
  cl_cross_predicted : float;
  cl_jain : float;
}

type t = { rows : row list; closed : closed_row }

let hops = 3
let conns_per_lot = hops + 1

(* Stable sub-critical load: every gateway carries one long flow at 0.25
   and one cross flow at ~0.25, for rho ~ 0.5. *)
let rate_of i = if i mod conns_per_lot = 0 then 0.25 else 0.21 +. (0.03 *. float_of_int (i mod 3))

let lot_net ~lots = Topologies.multi_parking_lot ~mu:1. ~latency:0.05 ~lots ~hops ()

let open_row ?jobs ~seed ~flows () =
  let lots = max 1 (flows / conns_per_lot) in
  let net = lot_net ~lots in
  let n = Network.num_connections net in
  let rates = Array.init n (fun i -> rate_of i) in
  (* Events scale with flows x horizon: shrink the horizon as the flow
     count grows so every row costs a comparable number of events. *)
  let horizon = Float.max 20. (2e5 /. float_of_int flows) in
  let shards = 8 in
  let run ~shards =
    Netsim.run ~net ~rates ~discipline:Netsim.Fs_priority ~seed ~shards ?jobs ~horizon
      ()
  in
  let r = run ~shards in
  let probes = min n 64 in
  let probe_stats r =
    List.init probes (fun i ->
        (Netsim.delay_mean r ~conn:i, Netsim.throughput r ~conn:i, Netsim.deliveries r ~conn:i))
  in
  let shard_invariant =
    if flows > 10_000 then None
    else
      let r1 = run ~shards:1 in
      Some (probe_stats r = probe_stats r1 && Netsim.events r = Netsim.events r1)
  in
  let delay =
    let acc = ref 0. in
    for i = 0 to probes - 1 do
      acc := !acc +. Netsim.delay_mean r ~conn:i
    done;
    !acc /. float_of_int probes
  in
  let deliveries = ref 0 in
  for i = 0 to n - 1 do
    deliveries := !deliveries + Netsim.deliveries r ~conn:i
  done;
  {
    flows = n;
    gateways = Network.num_gateways net;
    components = Netsim.components r;
    shards;
    events = Netsim.events r;
    deliveries = !deliveries;
    delay;
    shard_invariant;
  }

let closed_loop ~seed ~flows ~updates =
  let lots = max 1 (flows / conns_per_lot) in
  let net = lot_net ~lots in
  let n = Network.num_connections net in
  let signal = Signal.linear_fractional in
  let r =
    Closed_loop.run ~net ~discipline:Closed_loop.Fs_priority
      ~style:Congestion.Individual ~signal
      ~adjusters:(Array.make n Scenario.standard_adjuster)
      ~r0:(Array.make n 0.1) ~interval:3. ~updates ~seed ()
  in
  (* Every lot is an identical parking lot, so the water-filling target
     needs computing only once, on a single lot. *)
  let predicted =
    Steady_state.fair ~signal ~b_ss:Scenario.default_beta
      ~net:(Topologies.parking_lot ~mu:1. ~latency:0.05 ~hops ())
  in
  let long_sum = ref 0. and cross_sum = ref 0. in
  Array.iteri
    (fun i rate ->
      if i mod conns_per_lot = 0 then long_sum := !long_sum +. rate
      else cross_sum := !cross_sum +. rate)
    r.Closed_loop.mean_tail_rates;
  {
    cl_flows = n;
    cl_gateways = Network.num_gateways net;
    cl_updates = updates;
    cl_long_rate = !long_sum /. float_of_int lots;
    cl_cross_rate = !cross_sum /. float_of_int (lots * hops);
    cl_long_predicted = predicted.(0);
    cl_cross_predicted =
      Array.(fold_left ( +. ) 0. (sub predicted 1 hops)) /. float_of_int hops;
    cl_jain = Stats.jain_index r.Closed_loop.mean_tail_rates;
  }

let compute ?(seed = 27) ?(flows = [ 1_000; 10_000; 100_000 ])
    ?(closed_flows = 100_000) ?(updates = 6) ?jobs () =
  let rows = List.map (fun flows -> open_row ?jobs ~seed ~flows ()) flows in
  { rows; closed = closed_loop ~seed ~flows:closed_flows ~updates }

let run () =
  let { rows; closed = c } = compute () in
  let header =
    [ "flows"; "gateways"; "shards"; "events"; "delivered"; "probe delay"; "shard-inv" ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.flows;
          string_of_int r.gateways;
          string_of_int (min r.shards r.components);
          string_of_int r.events;
          string_of_int r.deliveries;
          Exp_common.fnum r.delay;
          (match r.shard_invariant with
          | Some ok -> Exp_common.fbool ok
          | None -> "-");
        ])
      rows
  in
  Printf.sprintf
    "Open loop, disjoint parking lots (hops=%d), Fair Share, timing-wheel\n\
     scheduler, components sharded over the domain pool:\n\n\
     %s\n\
     Closed loop at the top scale: %d flows over %d gateways, %d control\n\
     updates of the standard adjuster on individual fair-share feedback.\n\n\
     %s\n\
     Rows marked shard-inv were re-run unsharded and matched bit for bit;\n\
     the larger runs rely on the same per-entity RNG streams, so their\n\
     statistics are equally shard- and jobs-independent.  In six updates\n\
     the closed loop moves every class from the cold start (r0 = 0.1)\n\
     to the neighbourhood of the water-filling share — the tail rates\n\
     still overshoot it, but fairness is already high; the point of the\n\
     section is that the control loop itself runs at 10^5 flows.\n"
    hops
    (Exp_common.table ~header ~rows:body)
    c.cl_flows c.cl_gateways c.cl_updates
    (Exp_common.table
       ~header:[ "flow class"; "mean tail rate"; "water-filling" ]
       ~rows:
         [
           [ "long (3 hops)"; Exp_common.fnum c.cl_long_rate; Exp_common.fnum c.cl_long_predicted ];
           [ "cross (1 hop)"; Exp_common.fnum c.cl_cross_rate; Exp_common.fnum c.cl_cross_predicted ];
           [ "Jain index"; Exp_common.fnum c.cl_jain; "1" ];
         ])

let experiment =
  {
    Exp_common.id = "E27";
    title = "Million-flow desim: timing wheel + sharded components at 10^5 flows";
    paper_ref = "SS2.1-2.2 mechanisms at scale";
    run;
  }
