(** E5 — §3.3's instability example: unilateral stability does not imply
    systemic stability for aggregate feedback.

    Single gateway, μ = 1, B = C/(1+C), f = η(β−b): the stability matrix
    is DF = I − η·1·1ᵀ with unilateral entries 1−η and leading eigenvalue
    1−ηN.  Sweeping N shows the predicted threshold N* = 2/η between
    convergence and oscillation. *)

type row = {
  n : int;
  unilateral : float;  (** DF_ii = 1 − η. *)
  predicted_eigenvalue : float;  (** 1 − ηN. *)
  measured_eigenvalue : float;  (** From the numeric Jacobian. *)
  converged : bool;  (** Dynamics from a slightly perturbed fair start. *)
}

val compute : ?eta:float -> ?ns:int list -> ?jobs:int -> unit -> row list
(** The Ns run on up to [jobs] domains (default
    {!Ffc_numerics.Pool.default_jobs}, forced to 1 under an outer pool);
    every task is deterministic, so rows are identical at any jobs
    count. *)

val experiment : Exp_common.t
