open Ffc_numerics
open Ffc_topology
open Ffc_core

type row = { n : int; untruncated : string; truncated : string }

let scalar_map ?(truncate = true) ~eta ~beta ~n x =
  let nx = float_of_int n *. x in
  let next = x +. (eta *. (beta -. (nx *. nx))) in
  if truncate then Float.max 0. next else next

let reduction_is_exact () =
  let eta = 0.1 and beta = 0.5 and n = 8 in
  let net = Topologies.single ~mu:1. ~n () in
  let config =
    Feedback.make ~style:Congestion.Aggregate ~signal:(Signal.power 2.)
      ~discipline:Ffc_queueing.Service.fifo ()
  in
  let c =
    Controller.homogeneous ~config ~adjuster:(Rate_adjust.additive ~eta ~beta) ~n
  in
  let r0 = 0.03 in
  let vec_traj = Controller.trajectory c ~net ~r0:(Array.make n r0) ~steps:50 in
  let ok = ref true in
  let x = ref r0 in
  Array.iteri
    (fun k state ->
      if k > 0 then begin
        x := scalar_map ~eta ~beta ~n !x;
        Array.iter
          (fun ri -> if Float.abs (ri -. !x) > 1e-9 *. (1. +. !x) then ok := false)
          state
      end)
    vec_traj;
  !ok

let classification_name = function
  | Dynamics.Fixed_point _ -> "fixed-point"
  | Dynamics.Cycle c -> Printf.sprintf "period-%d" (Array.length c)
  | Dynamics.Chaotic l -> Printf.sprintf "chaotic(%.2f)" l
  | Dynamics.Aperiodic _ -> "aperiodic"
  | Dynamics.Divergent -> "divergent"

let compute ?(eta = 0.1) ?(beta = 0.5)
    ?(ns = [ 4; 8; 14; 16; 18; 19; 20; 21; 22; 26 ]) ?jobs () =
  (* Each N's orbit classification is independent; scan them on separate
     domains, collected in list order. *)
  Pool.parallel_map
    ~jobs:(Pool.effective_jobs ?jobs ())
    (fun n ->
      let x0 = 0.9 *. sqrt beta /. float_of_int n in
      let classify truncate =
        classification_name
          (Dynamics.classify (scalar_map ~truncate ~eta ~beta ~n) ~x0)
      in
      { n; untruncated = classify false; truncated = classify true })
    (Array.of_list ns)
  |> Array.to_list

let bifurcation_diagram ?(eta = 0.1) ?(beta = 0.5) () =
  let params = Array.init 60 (fun k -> 4. +. (float_of_int k *. 0.5)) in
  let scan =
    Dynamics.bifurcation_scan
      (fun p x -> scalar_map ~eta ~beta ~n:(int_of_float p) x)
      ~params ~x0:0.02 ~keep:48
  in
  let points =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (p, samples) ->
              (* Normalize orbit values by the fixed-point scale so the
                 diagram stays readable across N. *)
              Array.map (fun x -> (p, x *. p)) samples)
            scan))
  in
  Ascii_plot.scatter ~width:70 ~height:24
    ~title:
      (Printf.sprintf
         "bifurcation (truncated map): orbit samples (scaled by N) vs N   \
          [eta=%g beta=%g]" eta beta)
    ~x_label:"N (connections)" ~y_label:"N*r (post-transient samples)" points

let run () =
  let rows = compute () in
  let header = [ "N"; "paper recursion (no clamp)"; "model map (clamped at 0)" ] in
  let body =
    List.map (fun r -> [ string_of_int r.n; r.untruncated; r.truncated ]) rows
  in
  Printf.sprintf "Reduction of the vector iteration to the scalar map is exact: %s\n\n"
    (Exp_common.fbool (reduction_is_exact ()))
  ^ Exp_common.table ~header ~rows:body
  ^ Printf.sprintf
      "\n\
       The paper's recursion shows the full progression it describes:\n\
       stable (N < 1/(eta*sqrt(beta)) = %.1f) -> period doubling -> chaos\n\
       (positive Lyapunov exponents in parentheses, with the classical\n\
       period-3 window at N = 20) -> divergence.  The flow-control model's\n\
       truncation at r = 0 replaces the chaotic/divergent band with\n\
       relaxation cycles through zero — oscillatory, as the paper says,\n\
       though no longer formally chaotic.\n\n"
      (1. /. (0.1 *. sqrt 0.5))
  ^ bifurcation_diagram ()

let experiment =
  {
    Exp_common.id = "E6";
    title = "Route to chaos of unstable aggregate feedback";
    paper_ref = "\xc2\xa73.3 (Collet-Eckmann remark)";
    run;
  }
