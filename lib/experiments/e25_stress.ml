open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_faults

type row = {
  fault : string;
  destructive : bool;
  design : string;
  outcome : string;
  attempts : int;
  min_ratio : float option;
  robust : bool;
  starvation : float;
}

type recovery = {
  plain_outcome : string;
  supervised_outcome : string;
  supervised_attempts : int;
  recovered : bool;
  recovered_min_ratio : float option;
}

type result = {
  eps : float;
  rows : row list;
  fs_all_robust : bool;
  aggregate_starved : string list;
  recovery : recovery;
}

(* One bottleneck, four identical well-behaved sources: the cleanest
   setting for the Theorem-5 question, because every connection's
   baseline is exactly mu/N * rho_ss and any starvation is the fault's
   doing, not the topology's. *)
let n = 4
let net () = Topologies.single ~mu:1. ~n ()
let r0 () = Array.make n 0.3
let adjuster = Rate_adjust.additive ~eta:0.1 ~beta:0.5
let max_steps = 4000

(* Severities tuned so that non-destructive cells stress the feedback
   path without moving the achievable equilibrium: the greedy cap is 4x
   the bottleneck (unbounded greed as far as the gateway is concerned)
   and the transient capacity cut ends well before [max_steps]. *)
let cells ~seed =
  [
    ("none", false, Fault.plan ~seed []);
    ("stale(lag=4)@3", false, Fault.plan ~seed [ Fault.on [ 3 ] (Fault.Stale { lag = 4 }) ]);
    ( "stale(lag=12)@3",
      false,
      Fault.plan ~seed [ Fault.on [ 3 ] (Fault.Stale { lag = 12 }) ] );
    ( "lossy(p=0.3)",
      false,
      Fault.plan ~seed:(seed + 1) [ Fault.everywhere (Fault.Lossy { p = 0.3 }) ] );
    ( "lossy(p=0.7)",
      false,
      Fault.plan ~seed:(seed + 2) [ Fault.everywhere (Fault.Lossy { p = 0.7 }) ] );
    ( "noisy(sigma=0.05)",
      false,
      Fault.plan ~seed:(seed + 3) [ Fault.everywhere (Fault.Noisy { sigma = 0.05 }) ] );
    ( "quantized(0.5)",
      false,
      Fault.plan ~seed [ Fault.everywhere (Fault.Quantized { threshold = 0.5 }) ] );
    ("dead@3", false, Fault.plan ~seed [ Fault.on [ 3 ] Fault.Dead ]);
    ( "greedy@3",
      false,
      Fault.plan ~seed [ Fault.on [ 3 ] (Fault.Greedy { ramp = 0.05; cap = 4. }) ] );
    ( "gw-cut(x0.5,10..200)",
      false,
      Fault.plan ~seed
        [
          Fault.everywhere
            (Fault.Gateway_cut
               { gw = 0; fraction = 0.5; from_step = 10; until_step = Some 200 });
        ] );
    ( "gw-cut(x0.5,permanent)",
      true,
      Fault.plan ~seed
        [
          Fault.everywhere
            (Fault.Gateway_cut
               { gw = 0; fraction = 0.5; from_step = 10; until_step = None });
        ] );
  ]

let outcome_tag = function
  | Controller.Converged { steps; _ } -> Printf.sprintf "converged@%d" steps
  | Controller.Cycle { period; _ } -> Printf.sprintf "cycle(p=%d)" period
  | Controller.Diverged { at_step } -> Printf.sprintf "diverged@%d" at_step
  | Controller.No_convergence _ -> "no-conv"

(* The recovery demonstration: proportional adjusters overreact to a
   short feedback lag — the orbit overshoots the escape threshold and a
   plain run diverges.  Halving the gain shrinks the orbit into a
   bounded limit cycle whose mean keeps everyone above baseline. *)
let recovery_demo () =
  let net = net () in
  let c =
    Controller.homogeneous ~config:Feedback.individual_fair_share
      ~adjuster:(Rate_adjust.proportional ~eta:2.5 ~beta:0.7)
      ~n
  in
  let plan = Fault.plan [ Fault.everywhere (Fault.Stale { lag = 3 }) ] in
  let escape = 2. in
  let plain = Supervisor.run ~max_steps ~escape ~retries:0 ~plan c ~net ~r0:(r0 ()) in
  let sup = Supervisor.run ~max_steps ~escape ~retries:3 ~plan c ~net ~r0:(r0 ()) in
  {
    plain_outcome = outcome_tag plain.Supervisor.outcome;
    supervised_outcome = outcome_tag sup.Supervisor.outcome;
    supervised_attempts = sup.Supervisor.attempts;
    recovered = sup.Supervisor.recovered;
    recovered_min_ratio = sup.Supervisor.min_ratio;
  }

let compute ?(eps = 0.05) ?(seed = 42) ?jobs () =
  let net = net () in
  let cells = cells ~seed in
  let designs = Analysis.designs in
  let tasks =
    List.concat_map
      (fun (label, destructive, plan) ->
        List.map (fun d -> (label, destructive, plan, d)) designs)
      cells
    |> Array.of_list
  in
  (* Each task is fully determined by its cell's plan seed — no shared
     RNG to split — so collecting by index keeps the matrix identical at
     any [jobs].  [effective_jobs] collapses to 1 inside a pool worker,
     which is what lets [exp all --jobs N] fan out over experiments. *)
  let rows =
    Pool.parallel_map
      ~jobs:(Pool.effective_jobs ?jobs ())
      (fun (fault, destructive, plan, d) ->
        let c = Controller.homogeneous ~config:d.Analysis.config ~adjuster ~n in
        let v = Supervisor.run ~max_steps ~plan c ~net ~r0:(r0 ()) in
        let robust =
          match v.Supervisor.min_ratio with Some x -> x >= 1. -. eps | None -> false
        in
        let starvation =
          if robust then 0.
          else
            match v.Supervisor.min_ratio with
            | Some x -> Float.max 0. (1. -. x)
            | None -> 1.
        in
        {
          fault;
          destructive;
          design = d.Analysis.label;
          outcome = outcome_tag v.Supervisor.outcome;
          attempts = v.Supervisor.attempts;
          min_ratio = v.Supervisor.min_ratio;
          robust;
          starvation;
        })
      tasks
    |> Array.to_list
  in
  let fs_all_robust =
    List.for_all
      (fun r -> r.destructive || r.design <> "individual+fair-share" || r.robust)
      rows
  in
  let aggregate_starved =
    List.filter_map
      (fun r ->
        if (not r.destructive) && r.design = "aggregate" && not r.robust then
          Some r.fault
        else None)
      rows
  in
  { eps; rows; fs_all_robust; aggregate_starved; recovery = recovery_demo () }

let run () =
  let r = compute () in
  let header =
    [ "fault"; "design"; "outcome"; "tries"; "min thr/baseline"; "robust"; "starvation" ]
  in
  let body =
    List.map
      (fun row ->
        [
          (if row.destructive then row.fault ^ " !" else row.fault);
          row.design;
          row.outcome;
          string_of_int row.attempts;
          (match row.min_ratio with None -> "-" | Some x -> Exp_common.fnum x);
          Exp_common.fbool row.robust;
          (if row.starvation = 0. then "-" else Exp_common.fnum row.starvation);
        ])
      r.rows
  in
  let part1 =
    Exp_common.section
      (Printf.sprintf
         "Theorem 5 under stress: min well-behaved throughput vs mu/N (eps = %g)" r.eps)
    ^ Exp_common.table ~header ~rows:body
    ^ "\n(\"!\" marks destructive cells — a permanent capacity cut defeats any\n\
       feedback design; the guarantee is only claimed for the rest.)\n"
  in
  let part2 =
    Exp_common.section "Supervised recovery (proportional gain, stale feedback)"
    ^ Exp_common.table
        ~header:[ "runner"; "outcome"; "attempts"; "min thr/baseline" ]
        ~rows:
          [
            [ "plain (no retries)"; r.recovery.plain_outcome; "1"; "-" ];
            [
              "supervised (damping)";
              r.recovery.supervised_outcome;
              string_of_int r.recovery.supervised_attempts;
              (match r.recovery.recovered_min_ratio with
              | None -> "-"
              | Some x -> Exp_common.fnum x);
            ];
          ]
  in
  part1 ^ "\n" ^ part2
  ^ Printf.sprintf
      "\n\
       Fair Share robust in all non-destructive cells: %s\n\
       Aggregate starves in: %s\n\
       Supervisor recovered the diverging cell: %s\n"
      (Exp_common.fbool r.fs_all_robust)
      (String.concat ", " r.aggregate_starved)
      (Exp_common.fbool r.recovery.recovered)
  ^ "\nExpected: individual + Fair Share keeps every well-behaved connection\n\
     above (1 - eps) * mu/N in every non-destructive cell — Theorem 5's\n\
     guarantee survives degraded feedback and misbehaving peers — while\n\
     aggregate feedback starves connections under stale, lossy, dead and\n\
     greedy faults, and FIFO sits in between.  The damping supervisor\n\
     turns a diverging proportional-gain run into a bounded cycle.\n"

let experiment =
  {
    Exp_common.id = "E25";
    title = "Robustness stress matrix: faults, failures, supervision";
    paper_ref = "Theorem 5, \xc2\xa73.4 under injected faults";
    run;
  }
