(** E23 — Scale stress: the theory holds (and the implementation stays
    fast) on networks far larger than the paper's examples.

    Random topologies with tens of gateways and dozens of connections:
    TSI individual feedback must still converge to the water-filling
    allocation, stay fair, and do so in interactive time. *)

type row = {
  gateways : int;
  connections : int;
  converged : bool;
  fair : bool;
  matched_prediction : bool;
  systemic : bool;
      (** Linear stability of the fixed point, audited through the
          structure-aware Jacobian kernel (Theorem-4 diagonal read when
          the triangular structure is detected, dense QR otherwise).
          [false] when the run did not converge. *)
  rho : float;  (** ρ(DF) at the fixed point; NaN when not converged. *)
  steps : int;
  wall_seconds : float;  (** Measured, but kept out of the report text. *)
}

val compute : ?seed:int -> ?sizes:(int * int) list -> ?jobs:int -> unit -> row list
(** Sizes run on up to [jobs] domains (default
    {!Ffc_numerics.Pool.default_jobs}, forced to 1 under an outer pool);
    each size draws from its own SplitMix64 stream split off [seed], so
    results are independent of scheduling. *)

val experiment : Exp_common.t
