(** Shared scaffolding for the experiment harness: a uniform experiment
    record and plain-text table rendering, so every table the harness
    emits looks the same in logs and in EXPERIMENTS.md. *)

type t = {
  id : string;  (** e.g. "E5". *)
  title : string;
  paper_ref : string;  (** The paper artifact reproduced, e.g. "§3.3". *)
  run : unit -> string;  (** Produces the full printed report. *)
}

val table : header:string list -> rows:string list list -> string
(** Monospace table with a header rule; column widths fit content. *)

val section : string -> string
(** An underlined section heading. *)

val fnum : float -> string
(** Compact numeric formatting ("0.25", "1.33e-05", "inf"). *)

val fbool : bool -> string
(** "yes"/"no". *)

val render : t -> string
(** Header block (id, title, paper reference) followed by the report.
    Memoized as a whole ("cell" tier) through the ambient result cache
    when one is installed: reports exclude wall-clock time by contract,
    so a replayed cell is byte-identical to a fresh one. *)
