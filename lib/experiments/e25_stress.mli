(** E25 — Robustness stress matrix: designs under injected faults.

    Sweeps the paper's design points (aggregate, individual+FIFO,
    individual+Fair-Share) against a matrix of fault cells — stale,
    lossy, noisy, and quantized feedback; dead and greedy connections;
    transient and permanent gateway capacity cuts — under the
    supervised runner, and checks the Theorem-5 guarantee in each cell:
    does every {e well-behaved} connection keep at least (1−ε)·μ/N?
    Cells marked destructive (a permanent capacity cut) are expected to
    break even Fair Share; everywhere else FS should hold the line while
    aggregate feedback starves someone.  A final section demonstrates
    supervised recovery: a gain/lag combination that plain
    {!Ffc_core.Controller.run} reports as [Diverged] is stabilized by
    the supervisor's damping retries.

    The sweep fans out over the pool with one task per (cell, design)
    pair; all randomness comes from per-cell fault-plan seeds, so the
    result is bit-identical at any [jobs]. *)

type row = {
  fault : string;  (** Cell label, e.g. "stale(lag=4)@3". *)
  destructive : bool;
      (** The cell is expected to defeat every design (plant failure,
          not feedback degradation). *)
  design : string;
  outcome : string;  (** Compact outcome tag, e.g. "converged@79". *)
  attempts : int;
  min_ratio : float option;
      (** min over well-behaved connections of throughput / (μ/N·ρ_ss)
          baseline; [None] after unrecovered divergence. *)
  robust : bool;  (** [min_ratio >= 1 - eps]. *)
  starvation : float;
      (** Starvation depth 1 − min_ratio where the guarantee fails
          (0 when robust; 1 when a baseline-entitled connection gets
          nothing). *)
}

type recovery = {
  plain_outcome : string;  (** Single attempt, no damping. *)
  supervised_outcome : string;
  supervised_attempts : int;
  recovered : bool;
  recovered_min_ratio : float option;
}

type result = {
  eps : float;
  rows : row list;  (** Cell-major, design order within each cell. *)
  fs_all_robust : bool;
      (** Fair Share robust in every non-destructive cell. *)
  aggregate_starved : string list;
      (** Non-destructive cells where the aggregate design fails the
          guarantee. *)
  recovery : recovery;
}

val compute : ?eps:float -> ?seed:int -> ?jobs:int -> unit -> result
(** Defaults: [eps] 0.05, [seed] 42, [jobs] the pool default. *)

val experiment : Exp_common.t
