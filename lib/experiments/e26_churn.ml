open Ffc_numerics
open Ffc_topology
open Ffc_core

type step_report = {
  step : int;
  event : string;
  active_count : int;
  d_rates : float;
  d_df : float;
  d_rho : float;
}

type summary = {
  lots : int;
  hops : int;
  n : int;
  nnz : int;
  groups : int;
  steps : step_report list;
  max_d_rates : float;
  max_d_df : float;
  max_d_rho : float;
  all_within : bool;
}

let tol = 1e-9

let compute ?(lots = 4) ?(hops = 3) ?(steps = 24) ?(seed = 26) () =
  let net = Topologies.multi_parking_lot ~lots ~hops () in
  let n = Network.num_connections net in
  let pattern = Sparsity.of_network net in
  let signal = Signal.linear_fractional in
  let b_ss = 0.5 in
  let controller =
    Controller.homogeneous ~config:Feedback.individual_fair_share
      ~adjuster:(Rate_adjust.additive ~eta:0.1 ~beta:0.5) ~n
  in
  let rng = Rng.create seed in
  let active = Array.make n true in
  (* Step 0 state, built from scratch; every later step advances it
     incrementally and checks against a from-scratch rebuild. *)
  let prev_active = ref (Array.copy active) in
  let prev_ss = ref (Steady_state.fair_masked ~signal ~b_ss ~net ~active) in
  let prev_df =
    ref (Jacobian.of_controller_sparse controller ~net ~at:!prev_ss)
  in
  let reports = ref [] in
  for step = 1 to steps do
    (* One join or leave per step: toggle a uniformly random connection
       (never below one active flow per lot's worth overall). *)
    let c = ref (Rng.int rng n) in
    let active_count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 active in
    if active_count <= 1 && active.(!c) then
      c := (!c + 1) mod n;
    active.(!c) <- not active.(!c);
    let event =
      Printf.sprintf "%s %s"
        (if active.(!c) then "join" else "leave")
        (Network.connection net !c).Network.conn_name
    in
    let mask = Array.copy active in
    (* Incremental path: patch the previous steady state and Jacobian. *)
    let inc_ss =
      Steady_state.update_fair ~signal ~b_ss ~net ~prev:!prev_ss
        ~prev_active:!prev_active ~active:mask
    in
    let inc_df =
      Jacobian.update_flow controller ~net ~prev:!prev_df ~prev_at:!prev_ss
        ~at:inc_ss
    in
    let rho_inc = Jacobian.spectral_radius_incremental inc_df in
    (* Reference path: full from-scratch solves at the same mask. *)
    let full_ss = Steady_state.fair_masked ~signal ~b_ss ~net ~active:mask in
    let full_df = Jacobian.of_controller_sparse controller ~net ~at:full_ss in
    let rho_full = Jacobian.spectral_radius_sparse full_df in
    let d_rates =
      let d = ref 0. in
      Array.iteri (fun i r -> d := Float.max !d (Float.abs (r -. full_ss.(i)))) inc_ss;
      !d
    in
    let d_df =
      let _, _, vi = Mat.Sparse.to_csr inc_df in
      let _, _, vf = Mat.Sparse.to_csr full_df in
      let d = ref 0. in
      Array.iteri (fun k v -> d := Float.max !d (Float.abs (v -. vf.(k)))) vi;
      !d
    in
    let d_rho = Float.abs (rho_inc -. rho_full) in
    let active_count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 mask in
    reports := { step; event; active_count; d_rates; d_df; d_rho } :: !reports;
    prev_active := mask;
    prev_ss := inc_ss;
    prev_df := inc_df
  done;
  let steps = List.rev !reports in
  let fold f = List.fold_left (fun acc r -> Float.max acc (f r)) 0. steps in
  let max_d_rates = fold (fun r -> r.d_rates) in
  let max_d_df = fold (fun r -> r.d_df) in
  let max_d_rho = fold (fun r -> r.d_rho) in
  {
    lots;
    hops;
    n;
    nnz = Sparsity.nnz pattern;
    groups = Array.length (Sparsity.groups pattern);
    steps;
    max_d_rates;
    max_d_df;
    max_d_rho;
    all_within =
      max_d_rates <= tol && max_d_df <= tol && max_d_rho <= tol;
  }

let run () =
  let s = compute () in
  let header = [ "step"; "event"; "active"; "|drates|"; "|dDF|"; "|drho|" ] in
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.step;
          r.event;
          string_of_int r.active_count;
          Exp_common.fnum r.d_rates;
          Exp_common.fnum r.d_df;
          Exp_common.fnum r.d_rho;
        ])
      s.steps
  in
  Printf.sprintf
    "Flow churn on %d disjoint parking lots of %d hops (%d connections):\n\
     route-incidence pattern has %d of %d entries (%d probe groups for %d\n\
     columns).  Each step toggles one flow, advances the steady state and\n\
     the CSR Jacobian incrementally (update_fair / update_flow), and\n\
     compares against full from-scratch rebuilds at the same mask.\n\n"
    s.lots s.hops s.n s.nnz (s.n * s.n) s.groups s.n
  ^ Exp_common.table ~header ~rows
  ^ Printf.sprintf
      "\nmax deviation: rates %s, DF entries %s, rho %s  (tolerance %s)\n\
       incremental == full within tolerance at every step: %s\n\
       (rates and DF agree bit-for-bit by construction; rho goes through\n\
       the deflation-checked power-iteration estimate.)\n"
      (Exp_common.fnum s.max_d_rates) (Exp_common.fnum s.max_d_df)
      (Exp_common.fnum s.max_d_rho) (Exp_common.fnum tol)
      (Exp_common.fbool s.all_within)

let experiment =
  {
    Exp_common.id = "E26";
    title = "Churn: incremental steady-state and Jacobian updates";
    paper_ref = "\xc2\xa73.3 machinery";
    run;
  }
