(** E7 — Theorem 4: with Fair Share service, unilateral stability implies
    systemic stability because DF is triangular in rate order.

    Sweeps random single-bottleneck populations with heterogeneous βs
    (so steady rates are distinct and the triangular structure is
    visible), converges each under individual feedback with both
    disciplines, and compares structure and stability verdicts. *)

type summary = {
  trials : int;
  fs_converged : int;
  fs_triangular : int;  (** DF triangular in rate order under FS. *)
  fs_unilateral_eq_systemic : int;
      (** Verdicts coincide under FS (Theorem 4). *)
  fs_diag_eigen_match : int;
      (** Eigenvalues = diagonal entries under FS. *)
  fifo_converged : int;
  fifo_triangular : int;  (** Expected ~0: FIFO couples everyone. *)
}

val compute : ?trials:int -> ?seed:int -> ?jobs:int -> unit -> summary
(** Trials run on up to [jobs] domains (default
    {!Ffc_numerics.Pool.default_jobs}, forced to 1 under an outer pool);
    each trial draws from its own SplitMix64 stream split off [seed], so
    the summary is independent of scheduling. *)

val experiment : Exp_common.t
