(** E22 — Ablation: the gain η sets the speed/stability tradeoff, and
    Fair Share buys a better contraction than FIFO at every gain.

    Linear theory says the iteration contracts at the spectral radius of
    DF at the steady state; steps-to-converge should scale like
    1/−log ρ(DF) until the gain crosses the stability boundary.  This
    ablation sweeps η for the three designs at one gateway, recording
    the measured convergence steps and the predicted spectral radius, and
    locates each design's empirical stability edge. *)

type row = {
  eta : float;
  design : string;
  spectral_radius : float;  (** ρ(DF) at the steady state, manifold modes
                                discounted for aggregate feedback. *)
  steps : int;  (** 0 when the run fails to converge. *)
  converged : bool;
}

val compute : ?etas:float list -> ?n:int -> ?jobs:int -> unit -> row list
(** The eta x design grid runs on up to [jobs] domains (default
    {!Ffc_numerics.Pool.default_jobs}, forced to 1 under an outer pool);
    every cell is deterministic, so rows are identical at any jobs
    count. *)

val experiment : Exp_common.t
