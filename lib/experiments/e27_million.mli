(** E27: scale capstone for the desim core — 10^3..10^5 concurrent flows
    through disjoint parking-lot domains on the timing-wheel scheduler,
    sharded across the domain pool, plus a closed-loop control run at
    10^5 flows checked against the water-filling allocation.

    All reported quantities are shard- and jobs-invariant, so the
    rendered report is byte-identical at any parallelism. *)

type row = {
  flows : int;
  gateways : int;
  components : int;
  shards : int;
  events : int;
  deliveries : int;
  delay : float;
  shard_invariant : bool option;
}

type closed_row = {
  cl_flows : int;
  cl_gateways : int;
  cl_updates : int;
  cl_long_rate : float;
  cl_cross_rate : float;
  cl_long_predicted : float;
  cl_cross_predicted : float;
  cl_jain : float;
}

type t = { rows : row list; closed : closed_row }

val compute :
  ?seed:int ->
  ?flows:int list ->
  ?closed_flows:int ->
  ?updates:int ->
  ?jobs:int ->
  unit ->
  t
(** [flows] lists the open-loop row sizes (each rounded down to a whole
    number of 4-connection lots); [closed_flows] sizes the closed-loop
    section. Reduced values make a CI-friendly smoke run. *)

val experiment : Exp_common.t
