open Ffc_numerics
open Ffc_topology
open Ffc_core

type summary = {
  trials : int;
  fs_converged : int;
  fs_triangular : int;
  fs_unilateral_eq_systemic : int;
  fs_diag_eigen_match : int;
  fifo_converged : int;
  fifo_triangular : int;
}

(* Per-trial verdicts, folded into the summary after the fan-out. *)
type trial = {
  fs : (bool * bool * bool) option;
      (* converged: (triangular, unilateral = systemic, diag = eigenvalues) *)
  fifo : bool option; (* converged: triangular *)
}

let compute ?(trials = 10) ?(seed = 23) ?jobs () =
  (* Per-trial RNG streams split off one SplitMix64 base before the fan
     out: trial k's draws depend only on (seed, k), so the sweep is
     deterministic at any [jobs]. *)
  let base = Rng.create seed in
  let rngs = Array.init trials (fun _ -> Rng.split base) in
  let run_trial k =
    let rng = rngs.(k) in
    let n = 2 + Rng.int rng 3 in
    let net = Topologies.single ~mu:1. ~n () in
    (* Distinct betas spread over (0.2, 0.8) give distinct steady rates. *)
    let adjusters =
      Array.init n (fun i ->
          let beta = 0.2 +. (0.6 *. (float_of_int i +. 0.5) /. float_of_int n) in
          Rate_adjust.additive ~eta:0.1 ~beta)
    in
    let r0 = Scenario.random_start ~rng ~net ~lo:0.01 ~hi:0.2 in
    let analyze config =
      let c = Controller.create ~config ~adjusters in
      match Controller.run ~max_steps:40_000 c ~net ~r0 with
      | Controller.Converged { steady; _ } ->
        let df = Jacobian.of_controller ~mode:Jacobian.Forward c ~net ~at:steady in
        Some (steady, df)
      | _ -> None
    in
    let fs =
      match analyze Feedback.individual_fair_share with
      | Some (steady, df) ->
        let tri = Jacobian.triangular_in_rate_order ~tol:1e-4 df ~rates:steady in
        let uni = Jacobian.unilaterally_stable df in
        let sys = Jacobian.systemically_stable df in
        let diag_match =
          (* Eigenvalues of a triangular matrix are its diagonal.  The
             dense QR path is forced here on purpose: the structure-aware
             default would read the diagonal and make this check
             vacuous. *)
          let ev = Array.map (fun z -> z.Complex.re) (Eigen.eigenvalues_dense df) in
          let dg = Jacobian.diagonal df in
          Array.sort Float.compare ev;
          Array.sort Float.compare dg;
          Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-3) ev dg
        in
        Some (tri, uni = sys, diag_match)
      | None -> None
    in
    let fifo =
      match analyze Feedback.individual_fifo with
      | Some (steady, df) ->
        Some (Jacobian.triangular_in_rate_order ~tol:1e-4 df ~rates:steady)
      | None -> None
    in
    { fs; fifo }
  in
  let results =
    Pool.parallel_init ~jobs:(Pool.effective_jobs ?jobs ()) trials run_trial
  in
  Array.fold_left
    (fun s t ->
      let s =
        match t.fs with
        | Some (tri, uni_eq_sys, diag_match) ->
          {
            s with
            fs_converged = s.fs_converged + 1;
            fs_triangular = (s.fs_triangular + if tri then 1 else 0);
            fs_unilateral_eq_systemic =
              (s.fs_unilateral_eq_systemic + if uni_eq_sys then 1 else 0);
            fs_diag_eigen_match = (s.fs_diag_eigen_match + if diag_match then 1 else 0);
          }
        | None -> s
      in
      match t.fifo with
      | Some tri ->
        {
          s with
          fifo_converged = s.fifo_converged + 1;
          fifo_triangular = (s.fifo_triangular + if tri then 1 else 0);
        }
      | None -> s)
    {
      trials;
      fs_converged = 0;
      fs_triangular = 0;
      fs_unilateral_eq_systemic = 0;
      fs_diag_eigen_match = 0;
      fifo_converged = 0;
      fifo_triangular = 0;
    }
    results

let run () =
  let s = compute () in
  let header = [ "metric"; "FS"; "FIFO" ] in
  let rows =
    [
      [ "converged runs"; string_of_int s.fs_converged; string_of_int s.fifo_converged ];
      [ "DF triangular in rate order"; string_of_int s.fs_triangular;
        string_of_int s.fifo_triangular ];
      [ "unilateral = systemic verdict"; string_of_int s.fs_unilateral_eq_systemic; "-" ];
      [ "eigenvalues = diagonal"; string_of_int s.fs_diag_eigen_match; "-" ];
    ]
  in
  Printf.sprintf "%d random heterogeneous populations at a single gateway:\n\n" s.trials
  ^ Exp_common.table ~header ~rows
  ^ "\nExpected per Theorem 4: under FS, DF is always triangular, its\n\
     eigenvalues are its diagonal, and the unilateral verdict decides\n\
     systemic stability; FIFO has no such structure.\n"

let experiment =
  {
    Exp_common.id = "E7";
    title = "Fair Share makes DF triangular (Theorem 4)";
    paper_ref = "Theorem 4, \xc2\xa73.3";
    run;
  }
