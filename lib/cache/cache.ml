(* The result cache: ambient installation + the memo combinator.

   Mirrors Ffc_obs.Ctx: callers never thread a cache handle — memoized
   kernels probe the process-wide ambient slot, and with none installed
   a memo site costs one atomic load and a branch before running the
   computation as before.  Installation is a single Atomic.set, so pool
   domains racing an install observe the old or the new cache, never a
   torn one.

   Correctness contract: a hit must be indistinguishable from a miss.
   Payload codecs are bit-exact (Codec), keys cover every input (Key),
   and anything structurally wrong on disk — truncation, foreign bytes,
   a tier collision — decodes to Codec.Corrupt, which is demoted to a
   recomputation and counted as an eviction. *)

type t = {
  store : Store.t;
  schema : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  evictions : int Atomic.t;
}

let create ?(dir = Store.default_root) ?(schema = Key.schema_version) () =
  {
    store = Store.create ~root:dir ();
    schema;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let store t = t.store
let dir t = Store.root t.store

(* --- ambient slot ----------------------------------------------------- *)

let ambient : t option Atomic.t = Atomic.make None

let active () = Atomic.get ambient
let install t = Atomic.set ambient (Some t)
let clear_ambient () = Atomic.set ambient None

let with_cache t f =
  let prev = Atomic.get ambient in
  Atomic.set ambient (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set ambient prev) f

(* --- counters --------------------------------------------------------- *)

type counters = { hits : int; misses : int; stores : int; evictions : int }

let counters (t : t) =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    stores = Atomic.get t.stores;
    evictions = Atomic.get t.evictions;
  }

let lookups c = c.hits + c.misses

let hit_ratio c =
  let l = lookups c in
  if l = 0 then 0. else float_of_int c.hits /. float_of_int l

let reset (t : t) =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.stores 0;
  Atomic.set t.evictions 0

(* --- the memo combinator ---------------------------------------------- *)

let trace_lookup ~tier ~key ~hit =
  match Ffc_obs.Ctx.tracing () with
  | None -> ()
  | Some c -> Ffc_obs.Ctx.emit c (Ffc_obs.Event.cache_lookup ~tier ~key ~hit)

let trace_store ~tier ~key ~bytes =
  match Ffc_obs.Ctx.tracing () with
  | None -> ()
  | Some c -> Ffc_obs.Ctx.emit c (Ffc_obs.Event.cache_store ~tier ~key ~bytes)

let compute_and_store (t : t) ~tier ~hex ~encode compute =
  Atomic.incr t.misses;
  Ffc_obs.Ctx.incr_named "cache.misses";
  trace_lookup ~tier ~key:hex ~hit:false;
  let v = compute () in
  (* The "cache.put" span covers encode + publish only (the compute is
     the caller's own phase).  Miss-only, so — like the cache.lookup /
     cache.store events — it sits outside the cold/warm trace
     byte-identity contract. *)
  let stored =
    match Ffc_obs.Ctx.tracing () with
    | None ->
      let payload = encode v in
      if Store.save t.store ~tier ~hex payload then Some (String.length payload)
      else None
    | Some _ ->
      Ffc_obs.Span.with_span
        ~attrs:[ ("tier", Ffc_obs.Jsonf.string tier) ]
        "cache.put"
        (fun () ->
          let payload = encode v in
          if Store.save t.store ~tier ~hex payload then
            Some (String.length payload)
          else None)
  in
  (match stored with
  | Some bytes ->
    Atomic.incr t.stores;
    Ffc_obs.Ctx.incr_named "cache.stores";
    trace_store ~tier ~key:hex ~bytes
  | None -> ());
  v

let evict (t : t) =
  Atomic.incr t.evictions;
  Ffc_obs.Ctx.incr_named "cache.evictions"

let memo ~tier ~build ~encode ~decode compute =
  match active () with
  | None -> compute ()
  | Some t -> (
    let k = Key.create ~schema:t.schema ~tier () in
    build k;
    let hex = Key.hex k in
    (* The "cache.get" span covers the store probe only and fires on
       every lookup, hit or miss alike (no outcome attribute), so the
       span stream is identical between a cold and a warm run. *)
    let probe () = Store.load t.store ~tier ~hex in
    let loaded =
      match Ffc_obs.Ctx.tracing () with
      | None -> probe ()
      | Some _ ->
        Ffc_obs.Span.with_span
          ~attrs:[ ("tier", Ffc_obs.Jsonf.string tier) ]
          "cache.get" probe
    in
    match loaded with
    | Store.Miss -> compute_and_store t ~tier ~hex ~encode compute
    | Store.Evicted ->
      evict t;
      compute_and_store t ~tier ~hex ~encode compute
    | Store.Hit payload -> (
      match Codec.decode payload decode with
      | v ->
        Atomic.incr t.hits;
        Ffc_obs.Ctx.incr_named "cache.hits";
        trace_lookup ~tier ~key:hex ~hit:true;
        v
      | exception Codec.Corrupt _ ->
        (* Structurally valid entry whose payload does not decode —
           e.g. written by an older build under a colliding schema.
           Drop it and recompute. *)
        (try Sys.remove (Store.entry_path t.store ~hex) with Sys_error _ -> ());
        evict t;
        compute_and_store t ~tier ~hex ~encode compute))

(* --- memoized-string convenience -------------------------------------- *)

let memo_string ~tier ~build compute =
  memo ~tier ~build
    ~encode:(fun s -> Codec.encode (fun b -> Codec.put_string b s))
    ~decode:Codec.get_string compute

(* --- run stats -------------------------------------------------------- *)

let run_stats_json c ~ratio =
  Printf.sprintf
    "{\"hits\": %d, \"misses\": %d, \"stores\": %d, \"evictions\": %d, \
     \"hit_ratio\": %.6f}\n"
    c.hits c.misses c.stores c.evictions ratio

let write_run_stats t =
  let c = counters t in
  let path = Store.run_stats_path t.store in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  try
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (run_stats_json c ~ratio:(hit_ratio c)));
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> (
    try Sys.remove tmp with Sys_error _ -> ())

let read_run_stats store =
  match In_channel.with_open_bin (Store.run_stats_path store) In_channel.input_all with
  | exception Sys_error _ -> None
  | data -> (
    try
      Scanf.sscanf data
        "{\"hits\": %d, \"misses\": %d, \"stores\": %d, \"evictions\": %d, \
         \"hit_ratio\": %f}"
        (fun hits misses stores evictions ratio ->
          Some ({ hits; misses; stores; evictions }, ratio))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
