(* Disk store: one file per entry under a versioned layout,

     <root>/v1/<first two hex chars>/<32-hex-key>

   with a one-line header naming the format, the tier and the payload
   length, then the raw payload bytes.

   Writes go to a unique temp file in the same directory and land with
   Sys.rename, so concurrent writers (pool domains, or two processes
   sharing a cache dir) each publish a complete entry or nothing —
   readers never observe a torn file.  Both sides are best-effort: any
   I/O failure on read is a miss, any failure on write just skips the
   store (the computation already succeeded).  A header/length mismatch
   is a corrupt entry: it is deleted and reported so the caller can
   count the eviction. *)

let layout_version = "v1"
let default_root = "_ffc_cache"
let magic = "ffc-cache-entry"

type t = { root : string }

let create ?(root = default_root) () =
  if root = "" then invalid_arg "Store.create: empty root";
  { root }

let root t = t.root
let version_dir t = Filename.concat t.root layout_version

let entry_path t ~hex =
  if String.length hex < 3 then invalid_arg "Store.entry_path: key too short";
  Filename.concat (Filename.concat (version_dir t) (String.sub hex 0 2)) hex

let run_stats_path t = Filename.concat t.root "last_run.json"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- entry format ----------------------------------------------------- *)

let render ~tier payload =
  Printf.sprintf "%s %s %s %d\n%s" magic layout_version tier
    (String.length payload)
    payload

(* Header: "ffc-cache-entry v1 <tier> <len>\n".  Returns the payload or
   None on any structural mismatch. *)
let parse ~tier data =
  match String.index_opt data '\n' with
  | None -> None
  | Some nl -> (
    let header = String.sub data 0 nl in
    match String.split_on_char ' ' header with
    | [ m; v; t; len ] when m = magic && v = layout_version && t = tier -> (
      match int_of_string_opt len with
      | Some len when len = String.length data - nl - 1 ->
        Some (String.sub data (nl + 1) len)
      | _ -> None)
    | _ -> None)

(* --- read/write ------------------------------------------------------- *)

type lookup = Hit of string | Miss | Evicted

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> Some data
  | exception Sys_error _ -> None

let load t ~tier ~hex =
  let path = entry_path t ~hex in
  if not (Sys.file_exists path) then Miss
  else
    match read_file path with
    | None -> Miss
    | Some data -> (
      match parse ~tier data with
      | Some payload -> Hit payload
      | None ->
        (* Corrupt or truncated: drop it so the rewrite below is clean. *)
        (try Sys.remove path with Sys_error _ -> ());
        Evicted)

let tmp_counter = Atomic.make 0

let save t ~tier ~hex payload =
  let path = entry_path t ~hex in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  try
    mkdir_p (Filename.dirname path);
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (render ~tier payload));
    Sys.rename tmp path;
    true
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    false

(* --- maintenance ------------------------------------------------------ *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let clear t =
  rm_rf (version_dir t);
  (try Sys.remove (run_stats_path t) with Sys_error _ -> ());
  (* Only if now empty: the root may be a shared directory. *)
  try Unix.rmdir t.root with Unix.Unix_error _ -> ()

type disk_stats = { entries : int; bytes : int; tiers : (string * int) list }

let entry_tier path =
  match In_channel.with_open_bin path In_channel.input_line with
  | Some header -> (
    match String.split_on_char ' ' header with
    | [ m; _; t; _ ] when m = magic -> t
    | _ -> "(corrupt)")
  | None -> "(corrupt)"
  | exception Sys_error _ -> "(corrupt)"

let disk_stats t =
  let entries = ref 0 and bytes = ref 0 in
  let tiers = Hashtbl.create 8 in
  let dir = version_dir t in
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun shard ->
        let shard_dir = Filename.concat dir shard in
        if Sys.is_directory shard_dir then
          Array.iter
            (fun f ->
              let path = Filename.concat shard_dir f in
              incr entries;
              (bytes := !bytes + (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0));
              let tier = entry_tier path in
              Hashtbl.replace tiers tier
                (1 + Option.value ~default:0 (Hashtbl.find_opt tiers tier)))
            (Sys.readdir shard_dir))
      (Sys.readdir dir);
  let tiers = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tiers [] in
  {
    entries = !entries;
    bytes = !bytes;
    tiers = List.sort (fun (a, _) (b, _) -> compare a b) tiers;
  }
