(** Content-addressed cache keys: a canonical, injective encoding of a
    computation's inputs hashed to a 128-bit hex digest.

    Build a key with {!create} (which seeds it with the code-schema
    version and the tier name), append every input with the typed
    [str]/[int]/[float]/[floats]/[bool]/[strs] fields — field order is
    part of the key — and read the digest with {!hex}.  Floats are
    keyed by IEEE bit pattern, so any representable change to an input
    changes the key.

    The digest is stdlib MD5: an identity/integrity mechanism with zero
    extra dependencies, not a security boundary (the cache directory is
    as trusted as the working tree it lives in). *)

val schema_version : string
(** Bumped whenever a memoized computation changes meaning — every
    outstanding entry is invalidated at once because the schema is
    hashed into every key. *)

type t

val create : ?schema:string -> tier:string -> unit -> t
(** [schema] defaults to {!schema_version}; tests override it to prove
    that a bump invalidates. *)

val str : t -> string -> unit
val int : t -> int -> unit
val float : t -> float -> unit
val floats : t -> float array -> unit
val bool : t -> bool -> unit
val strs : t -> string list -> unit

val hex : t -> string
(** 32 lowercase hex characters (128 bits). *)
