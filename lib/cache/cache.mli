(** The deterministic result cache: ambient installation and the memo
    combinator.

    Like the observability context ({!Ffc_obs.Ctx}), the cache is
    ambient: memoized kernels probe a process-wide slot instead of
    threading a handle, and with no cache installed a memo site costs
    one atomic load and a branch.  Install one around a whole run with
    {!with_cache}.

    Determinism contract: a hit is indistinguishable from a miss —
    payload codecs are bit-exact, keys cover every input including the
    code-schema version, and corrupt or undecodable entries demote to
    recomputation (counted as evictions).  Cached values are therefore
    byte-identical to fresh ones at any [--jobs]; only the hit/miss
    {e counters} can vary on a cold parallel run, when two domains race
    the same key and both miss.  See docs/CACHING.md. *)

type t

val create : ?dir:string -> ?schema:string -> unit -> t
(** [dir] defaults to [_ffc_cache]; [schema] to {!Key.schema_version}
    (override in tests to prove invalidation).  Nothing touches the
    disk until the first store. *)

val store : t -> Store.t
val dir : t -> string

(** {2 Ambient installation} *)

val active : unit -> t option
val install : t -> unit
val clear_ambient : unit -> unit

val with_cache : t -> (unit -> 'a) -> 'a
(** Installs, runs, restores the previous ambient cache (exceptions
    included). *)

(** {2 Counters} *)

type counters = { hits : int; misses : int; stores : int; evictions : int }

val counters : t -> counters
val lookups : counters -> int
val hit_ratio : counters -> float
(** hits / (hits + misses); 0 when there were no lookups. *)

val reset : t -> unit

(** {2 Memoization} *)

val memo :
  tier:string ->
  build:(Key.t -> unit) ->
  encode:('a -> string) ->
  decode:(Codec.reader -> 'a) ->
  (unit -> 'a) ->
  'a
(** [memo ~tier ~build ~encode ~decode compute]: with no ambient cache,
    just [compute ()].  Otherwise derive the content key ([build] must
    append {e every} input the computation depends on), return the
    decoded entry on a hit, or compute, publish and return on a miss.
    [encode]/[decode] must be exact inverses on every producible value;
    mismatches surface as {!Codec.Corrupt} and demote to recompute. *)

val memo_string :
  tier:string -> build:(Key.t -> unit) -> (unit -> string) -> string
(** {!memo} specialized to string-valued computations (experiment
    cells). *)

(** {2 Per-run stats} *)

val write_run_stats : t -> unit
(** Atomically record this cache's counters as [<dir>/last_run.json]
    (read back by the [cache stats] CLI subcommand and the CI smoke
    check). *)

val read_run_stats : Store.t -> (counters * float) option
(** The last run's counters and hit ratio, if a well-formed stats file
    exists. *)
