(** Disk store for cache entries: one file per entry under a versioned
    layout ([<root>/v1/<2-hex shard>/<32-hex key>]), each with a header
    naming the format version, the tier and the payload length.

    Writes are atomic (unique temp file + [Sys.rename] in the same
    directory), so concurrent writers — pool domains or separate
    processes sharing a cache dir — publish complete entries or
    nothing.  All I/O is best-effort: read failures are misses, write
    failures are skipped stores; only structural corruption is
    surfaced (as {!Evicted}, after deleting the bad entry). *)

type t

val layout_version : string
val default_root : string

val create : ?root:string -> unit -> t
(** [root] defaults to {!default_root} ([_ffc_cache]).  No directories
    are created until the first {!save}. *)

val root : t -> string
val entry_path : t -> hex:string -> string
val run_stats_path : t -> string
(** Where {!Cache.write_run_stats} records the last run's counters. *)

type lookup = Hit of string | Miss | Evicted

val load : t -> tier:string -> hex:string -> lookup
(** [Evicted] means the entry existed but was corrupt/truncated or
    belonged to a different tier under the same key; it has been
    deleted and the caller should recompute (and count the eviction). *)

val save : t -> tier:string -> hex:string -> string -> bool
(** Atomically publish an entry; [false] if the write failed (read-only
    directory, disk full, …) — the cache then simply stays cold. *)

val clear : t -> unit
(** Remove the versioned entry tree and the run-stats file, then the
    root directory only if it is empty — never anything else. *)

type disk_stats = { entries : int; bytes : int; tiers : (string * int) list }

val disk_stats : t -> disk_stats
(** Walk the store: entry/byte totals and per-tier entry counts
    (sorted by tier name). *)
