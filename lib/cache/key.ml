(* Content-addressed cache keys.

   A key is the 128-bit digest of a canonical byte string built from
   everything the memoized computation depends on: the code-schema
   version, the tier name, and a sequence of tagged, framed fields.
   Tagging + length-prefixing makes the encoding injective — ["ab","c"]
   and ["a","bc"] hash differently, a float field can never collide
   with an int field — so two keys agree exactly when the inputs do.

   Floats are keyed by their IEEE bit pattern: 0.1 +. 0.2 and 0.3 are
   different inputs and must not share an entry.  The digest is
   stdlib [Digest] (MD5): content addressing here is an integrity and
   identity mechanism, not a security boundary, and MD5 keeps the
   dependency surface at zero. *)

let schema_version = "ffc1"

type t = { buf : Buffer.t }

let create ?(schema = schema_version) ~tier () =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "ffc-cache\x00";
  Codec.put_string buf schema;
  Codec.put_string buf tier;
  { buf }

let str t s =
  Buffer.add_char t.buf 'S';
  Codec.put_string t.buf s

let int t i =
  Buffer.add_char t.buf 'I';
  Codec.put_int t.buf i

let float t x =
  Buffer.add_char t.buf 'F';
  Codec.put_float t.buf x

let floats t a =
  Buffer.add_char t.buf 'V';
  Codec.put_floats t.buf a

let bool t v = Buffer.add_char t.buf (if v then 'T' else 'f')

let strs t l =
  Buffer.add_char t.buf 'L';
  Codec.put_int t.buf (List.length l);
  List.iter (fun s -> Codec.put_string t.buf s) l

let hex t = Digest.to_hex (Digest.string (Buffer.contents t.buf))
