(** Canonical binary payload codec for cache entries.

    Framed, bit-exact and injective: integers are 64-bit little-endian,
    floats are their IEEE-754 bit patterns (so encode ∘ decode is the
    identity on every float, NaN payloads and signed zeros included),
    strings are length-prefixed.  Deliberately not [Marshal]: a decoder
    applied to corrupted bytes must fail with the recoverable
    {!Corrupt}, never crash or type-confuse. *)

exception Corrupt of string
(** Every decoding failure: truncation, implausible lengths, trailing
    bytes.  The cache layer maps it to "treat entry as miss". *)

val encode : (Buffer.t -> unit) -> string
(** Run a writer against a fresh buffer and return its bytes. *)

val put_int : Buffer.t -> int -> unit
val put_float : Buffer.t -> float -> unit
val put_string : Buffer.t -> string -> unit
val put_floats : Buffer.t -> float array -> unit

type reader

val get_int : reader -> int
val get_float : reader -> float
val get_string : reader -> string
val get_floats : reader -> float array

val decode : string -> (reader -> 'a) -> 'a
(** Run a reader over the whole payload; raises {!Corrupt} if the
    reader fails or leaves trailing bytes. *)
