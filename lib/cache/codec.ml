(* Canonical binary payload codec.

   Hand-rolled instead of Marshal on purpose: Marshal.from_string on a
   corrupted or stale entry can segfault or type-confuse, and its byte
   format is not a determinism contract.  Here every value is framed
   (fixed-width little-endian integers, IEEE float bits, length-prefixed
   strings), encoding is bit-exact and injective, and every decoder
   failure is the recoverable {!Corrupt} exception — which the cache
   layer maps to "treat as miss". *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* --- writing ---------------------------------------------------------- *)

let encode f =
  let b = Buffer.create 256 in
  f b;
  Buffer.contents b

let put_int b i = Buffer.add_int64_le b (Int64.of_int i)
let put_float b x = Buffer.add_int64_le b (Int64.bits_of_float x)

let put_string b s =
  put_int b (String.length s);
  Buffer.add_string b s

let put_floats b a =
  put_int b (Array.length a);
  Array.iter (put_float b) a

(* --- reading ---------------------------------------------------------- *)

type reader = { data : string; mutable pos : int }

let remaining r = String.length r.data - r.pos

let need r n =
  if n < 0 || n > remaining r then
    corrupt "truncated payload: need %d bytes at offset %d of %d" n r.pos
      (String.length r.data)

let get_int r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  let i = Int64.to_int v in
  if Int64.of_int i <> v then corrupt "integer out of native range";
  i

let get_float r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let get_string r =
  let n = get_int r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let get_floats r =
  let n = get_int r in
  if n < 0 || n > remaining r / 8 then corrupt "float array length %d implausible" n;
  Array.init n (fun _ -> get_float r)

let decode data f =
  let r = { data; pos = 0 } in
  let v = f r in
  if r.pos <> String.length data then
    corrupt "trailing bytes: consumed %d of %d" r.pos (String.length data);
  v
