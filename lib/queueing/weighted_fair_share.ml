open Ffc_numerics

let check ~mu ~weights rates =
  if not (mu > 0.) then invalid_arg "Weighted_fair_share: mu must be positive";
  if Array.length weights <> Array.length rates then
    invalid_arg "Weighted_fair_share: weights/rates length mismatch";
  Array.iter
    (fun w ->
      if (not (Float.is_finite w)) || w <= 0. then
        invalid_arg "Weighted_fair_share: weights must be finite and positive")
    weights;
  Array.iter
    (fun r ->
      if (not (Float.is_finite r)) || r < 0. then
        invalid_arg "Weighted_fair_share: rates must be finite and non-negative")
    rates

let normalized_rates ~weights rates =
  if Array.length weights <> Array.length rates then
    invalid_arg "Weighted_fair_share.normalized_rates: length mismatch";
  Array.map2 (fun r w -> r /. w) rates weights

let fair_cumulative_load ~weights rates i =
  if i < 0 || i >= Array.length rates then
    invalid_arg "Weighted_fair_share.fair_cumulative_load: index out of bounds";
  let phi = normalized_rates ~weights rates in
  let phi_i = phi.(i) in
  let acc = ref 0. in
  Array.iteri (fun k pk -> acc := !acc +. (weights.(k) *. Float.min pk phi_i)) phi;
  !acc

(* Queues in phi-sorted order.  [order] maps sorted position -> original
   index.  Level j (sorted position j) carries increment
   (phi_j - phi_{j-1}) from every connection at position >= j, each
   weighted; its occupancy g(T_j) - g(T_{j-1}) is split across those
   connections in proportion to weight. *)
let queue_lengths ~mu ~weights rates =
  check ~mu ~weights rates;
  let n = Array.length rates in
  let phi = normalized_rates ~weights rates in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare phi.(a) phi.(b)) order;
  (* Suffix weight sums W_j in sorted order. *)
  let suffix_w = Array.make (n + 1) 0. in
  for pos = n - 1 downto 0 do
    suffix_w.(pos) <- suffix_w.(pos + 1) +. weights.(order.(pos))
  done;
  let q = Array.make n 0. in
  let partial_t = ref 0. in
  (* Per-connection accumulated share; fill as we walk levels. *)
  let g_prev = ref 0. in
  let saturated = ref false in
  (* shares.(pos) accumulates the queue of the connection at sorted
     position pos. *)
  let shares = Array.make n 0. in
  for j = 0 to n - 1 do
    let idx = order.(j) in
    let phi_j = phi.(idx) in
    (* T_j = partial sum of w*phi for positions < j plus phi_j * suffix
       weights from j on. *)
    let t = !partial_t +. (suffix_w.(j) *. phi_j) in
    if (not !saturated) && t < mu then begin
      let g_here = Mm1.g (t /. mu) in
      let level_occupancy = g_here -. !g_prev in
      if level_occupancy > 0. && suffix_w.(j) > 0. then
        (* Distribute this level's occupancy weight-proportionally over
           the connections participating in it (positions >= j). *)
        for pos = j to n - 1 do
          shares.(pos) <-
            shares.(pos) +. (level_occupancy *. weights.(order.(pos)) /. suffix_w.(j))
        done;
      g_prev := g_here
    end
    else saturated := true;
    if !saturated then
      (* This and all later connections have T >= mu: infinite queues for
         positive rates.  (The shares they accumulated from earlier,
         finite levels are dominated by the divergence.) *)
      shares.(j) <- (if rates.(idx) > 0. then Float.infinity else shares.(j));
    partial_t := !partial_t +. (weights.(idx) *. phi_j)
  done;
  Array.iteri (fun pos idx -> q.(idx) <- shares.(pos)) order;
  q

let service ~weights =
  Service.make
    ~name:(Printf.sprintf "weighted-fair-share(%s)" (Vec.to_string weights))
    (fun ~mu rates -> queue_lengths ~mu ~weights rates)

(* Audited against the paper (PR 5).  Theorem 5's criterion is the
   connection's fair SHARE of the queue that would form if everyone ran
   at its normalized rate — (w_i/W)·g(W·φ_i/μ) with g(ρ) = ρ/(1−ρ) and
   φ_i = r_i/w_i — which simplifies to r_i/(μ − W·φ_i).  It is NOT the
   occupancy of a dedicated μ·w_i/W server, g(W·φ_i/μ) = W·φ_i/(μ − W·φ_i):
   that dedicated-server reading is W/w_i times looser and is not what
   the fair-share discipline guarantees.  Tightness check: the
   minimum-φ connection's cumulative fair load is T_1 = W·φ_1, so its
   actual share is exactly (w_1/W)·g(W·φ_1/μ) — the bound holds with
   equality there, which would be violated by any tighter constant and
   makes the looser candidate identifiable as wrong.  At unit weights
   this reduces to the unweighted criterion r_i/(μ − N·r_i) used by
   Robustness.criterion_holds; the agreement is pinned by a cross-check
   test. *)
let robustness_bound ~mu ~weights rates i =
  if i < 0 || i >= Array.length rates then
    invalid_arg "Weighted_fair_share.robustness_bound: index out of bounds";
  let total_w = Vec.sum weights in
  let denom = mu -. (total_w *. rates.(i) /. weights.(i)) in
  if denom > 0. then rates.(i) /. denom else Float.infinity
