open Ffc_numerics

type t = { name : string; queue_lengths : mu:float -> Vec.t -> Vec.t }

let make ~name queue_lengths = { name; queue_lengths }

let fifo = make ~name:"fifo" Fifo.queue_lengths
let fair_share = make ~name:"fair-share" Fair_share.queue_lengths

(* M/M/1-PS has the same mean per-class occupancy as M/M/1-FIFO. *)
let processor_sharing = make ~name:"processor-sharing" Fifo.queue_lengths

let name t = t.name

let queue_lengths t ~mu rates = t.queue_lengths ~mu rates

let total_queue t ~mu rates = Vec.sum (queue_lengths t ~mu rates)

(* Limiting sojourn of an infinitesimal connection, by probing with a
   tiny rate.  Disciplines are symmetric in the connection order (see
   the .mli), so the limit is the same whichever zero-rate slot carries
   the probe — one probe pass serves every zero-rate connection instead
   of one re-evaluation each. *)
let sojourns_of_queues t ~mu rates q =
  let zero_limit =
    lazy
      (let probe = 1e-9 *. mu in
       let i0 = ref (-1) in
       Array.iteri (fun i r -> if !i0 < 0 && r = 0. then i0 := i) rates;
       let rates' = Array.copy rates in
       rates'.(!i0) <- probe;
       (t.queue_lengths ~mu rates').(!i0) /. probe)
  in
  Array.mapi (fun i r -> if r > 0. then q.(i) /. r else Lazy.force zero_limit) rates

let evaluate t ~mu rates =
  let q = queue_lengths t ~mu rates in
  (q, sojourns_of_queues t ~mu rates q)

let sojourn_times t ~mu rates = sojourns_of_queues t ~mu rates (queue_lengths t ~mu rates)

let builtin = [ fifo; fair_share ]
