(** Service-discipline abstraction.

    A discipline is, for the purposes of the paper's model, exactly its
    symmetric queue-length function Q(r) (paper §2.2).  This module
    packages the built-in disciplines (FIFO, Fair Share) behind one type
    so that the flow-control layer, the feasibility checker and the
    experiments can be written discipline-generically, and lets tests
    define custom disciplines. *)

open Ffc_numerics

type t

val fifo : t
val fair_share : t

val processor_sharing : t
(** Egalitarian processor sharing.  For M/M/1 with exponential service the
    per-connection mean occupancy is the same as FIFO's
    (ρ_i/(1−ρ_tot)) — a known insensitivity result — so within this
    model PS and FIFO are {e indistinguishable}: every theorem that holds
    for FIFO holds verbatim for PS.  Exposed to make that observation
    testable; only the name differs from {!fifo}. *)

val make : name:string -> (mu:float -> Vec.t -> Vec.t) -> t
(** A custom discipline from its queue-length function. The function must
    be symmetric in the connection order to model a gateway with no a
    priori knowledge of connections; [Feasibility.symmetric_ok] can verify
    this numerically. *)

val name : t -> string

val queue_lengths : t -> mu:float -> Vec.t -> Vec.t
(** Mean per-connection numbers in system for sending-rate vector [r]. *)

val total_queue : t -> mu:float -> Vec.t -> float
(** Σ_i Q_i — for work-conserving disciplines this equals g(ρ_tot)
    regardless of the discipline (the conservation the paper notes makes
    aggregate signals discipline-insensitive). *)

val sojourn_times : t -> mu:float -> Vec.t -> Vec.t
(** Per-connection mean time in system by Little's law Q_i/r_i, with the
    infinitesimal-probe limit at zero rate (one shared probe — the
    discipline's symmetry makes the limit slot-independent). *)

val evaluate : t -> mu:float -> Vec.t -> Vec.t * Vec.t
(** [(queue_lengths, sojourn_times)] from a single queue-length
    evaluation — the discipline's Q(r) is the expensive part, and both
    outputs derive from it, so fusing them halves the cost of a
    combined signals+delays pass. *)

val builtin : t list
(** The two disciplines studied in the paper, FIFO first. *)
