(** Weighted Fair Share (extension of the paper's FS discipline).

    FS protects connections by capping, at each priority level, how much
    of every other connection's traffic a connection can be made to queue
    behind.  The weighted generalization assigns each connection a weight
    w_i and measures greediness by the {e normalized} rate φ_i = r_i/w_i:
    sorting by increasing φ, level j carries rate w_k·(φ_j − φ_{j−1})
    from every connection k with φ_k ≥ φ_j, so within a level traffic is
    split weight-proportionally.  With all weights equal this is exactly
    the paper's Fair Share.

    Mean queues follow the same preemptive-priority telescoping as FS:

      T_i = Σ_k w_k · min(φ_k, φ_i)
      Q_i = Σ_{j ≤ i} (g(T_j/μ) − g(T_{j−1}/μ)) · w_i / W_j,
        W_j = Σ_{k : φ_k ≥ φ_j} w_k

    Consequences mirrored from the paper: Σ Q_i = g(ρ_tot) (conservation),
    Q_i finite iff T_i < μ (weighted isolation), the Theorem-5-style
    bound Q_i ≤ r_i/(μ − W·φ_i) with W = Σw (weighted robustness), and —
    because Q_i depends only on connections with smaller φ — the
    triangular stability structure of Theorem 4 carries over.  Under TSI
    individual feedback the unique steady state allocates rates
    {e proportionally to weights}: r_i = w_i·ρ_SS·μ/W (experiment
    E18). *)

open Ffc_numerics

val queue_lengths : mu:float -> weights:Vec.t -> Vec.t -> Vec.t
(** [queue_lengths ~mu ~weights rates] — mean per-connection numbers in
    system, input order preserved.  Weights must be positive and finite;
    rates non-negative and finite; [mu] positive. *)

val normalized_rates : weights:Vec.t -> Vec.t -> Vec.t
(** φ_i = r_i/w_i. *)

val fair_cumulative_load : weights:Vec.t -> Vec.t -> int -> float
(** T_i = Σ_k w_k·min(φ_k, φ_i). *)

val service : weights:Vec.t -> Service.t
(** Packages a fixed weight vector as a {!Service.t} (the weight vector
    must match the rate vectors it is applied to). *)

val robustness_bound : mu:float -> weights:Vec.t -> Vec.t -> int -> float
(** r_i/(μ − W·φ_i) when positive, [infinity] otherwise — the weighted
    Theorem-5 bound: connection i's fair share (w_i/W)·g(W·φ_i/μ) of
    the queue that would form if every connection ran at its
    normalized rate, with g(ρ) = ρ/(1−ρ).  Deliberately {e not} the
    dedicated-server occupancy g(W·φ_i/μ) = W·φ_i/(μ − W·φ_i), which
    is W/w_i times looser; the share form is tight — the minimum-φ
    connection meets it with equality — and reduces at unit weights to
    the unweighted criterion r_i/(μ − N·r_i) of the core robustness
    module. *)
