open Ffc_numerics

let check ~mu rates =
  if not (mu > 0.) then invalid_arg "Fair_share: mu must be positive";
  Array.iter
    (fun r ->
      if (not (Float.is_finite r)) || r < 0. then
        invalid_arg "Fair_share: rates must be finite and non-negative")
    rates

let fair_cumulative_load rates i =
  if i < 0 || i >= Array.length rates then
    invalid_arg "Fair_share.fair_cumulative_load: index out of bounds";
  let ri = rates.(i) in
  Array.fold_left (fun acc r -> acc +. Float.min r ri) 0. rates

(* Sorted-order queue recursion.  [sorted] is the increasing rate vector;
   returns queues in sorted order.  After the first saturated level every
   later connection with positive rate saturates too (T is nondecreasing). *)
let queues_sorted ~mu sorted =
  let n = Array.length sorted in
  let q = Array.make n 0. in
  let partial_t = ref 0. in
  let partial_q = ref 0. in
  let saturated = ref false in
  for i = 0 to n - 1 do
    (* T_i = partial sum of smaller rates + (N - i) * r_i. *)
    let t = !partial_t +. (float_of_int (n - i) *. sorted.(i)) in
    if !saturated || t >= mu then begin
      saturated := true;
      q.(i) <- (if sorted.(i) > 0. then Float.infinity else 0.)
    end
    else begin
      let gi = Mm1.g (t /. mu) in
      q.(i) <- (gi -. !partial_q) /. float_of_int (n - i);
      (* Guard against negative round-off. *)
      if q.(i) < 0. then q.(i) <- 0.;
      partial_q := !partial_q +. q.(i)
    end;
    partial_t := !partial_t +. sorted.(i)
  done;
  q

let queue_lengths ~mu rates =
  check ~mu rates;
  let n = Array.length rates in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare rates.(a) rates.(b)) order;
  let sorted = Array.map (fun idx -> rates.(idx)) order in
  let q_sorted = queues_sorted ~mu sorted in
  let q = Array.make n 0. in
  Array.iteri (fun pos idx -> q.(idx) <- q_sorted.(pos)) order;
  q

let total_queue ~mu rates =
  check ~mu rates;
  Mm1.g (Vec.sum rates /. mu)

let level_rates rates =
  let sorted = Vec.sorted_increasing rates in
  Array.mapi
    (fun j r -> if j = 0 then r else r -. sorted.(j - 1))
    sorted

let decomposition rates =
  Array.iter
    (fun r ->
      if (not (Float.is_finite r)) || r < 0. then
        invalid_arg "Fair_share.decomposition: rates must be finite and non-negative")
    rates;
  let n = Array.length rates in
  let sorted = Vec.sorted_increasing rates in
  let increments = level_rates rates in
  Array.init n (fun i ->
      Array.init n (fun j ->
          (* Connection i participates in level j iff its rate reaches the
             level's threshold sorted.(j). *)
          if rates.(i) >= sorted.(j) then increments.(j) else 0.))

let sojourn_times ~mu rates =
  check ~mu rates;
  let q = queue_lengths ~mu rates in
  (* Limiting sojourn of an infinitesimal connection: probe with a tiny
     rate that does not perturb the others.  The probed rate multiset is
     the same whichever zero-rate slot carries the probe, so one probe
     pass serves every zero-rate connection — O(N log N) total instead
     of a full recomputation per zero-rate connection. *)
  let zero_limit =
    lazy
      (let probe = 1e-9 *. mu in
       let i0 = ref (-1) in
       Array.iteri (fun i r -> if !i0 < 0 && r = 0. then i0 := i) rates;
       let rates' = Array.copy rates in
       rates'.(!i0) <- probe;
       let q' = queue_lengths ~mu rates' in
       q'.(!i0) /. probe)
  in
  Array.mapi (fun i r -> if r > 0. then q.(i) /. r else Lazy.force zero_limit) rates
