(** Metrics registry: named counters, gauges, and fixed-bucket
    histograms.

    Hot-path discipline: {!counter}/{!gauge}/{!histogram} resolve a name
    to a handle once (mutex-guarded hashtable — the cold path); updates
    through a handle are single [Atomic] read-modify-writes — O(1), no
    allocation, safe from any domain.  Because every update is atomic,
    totals accumulated under the multicore pool are identical whatever
    the degree of parallelism.

    Histograms record bucket occupancy plus a running sum of finite
    observations: each observation lands in the first bucket whose
    upper bound is >= the value, with an overflow bucket above the last
    bound.  That keeps [observe] allocation-free and race-free, at the
    price of bucket-resolution quantiles.  Aggregation of per-domain
    tallies goes through {!Histogram.Local} — the supported merge path;
    [add_bucket]/[bucket_index] remain exposed for raw-array call sites
    but bypass the sum. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create.  Raises [Invalid_argument] if the name is already
    registered as another kind. *)

val gauge : t -> string -> gauge

val default_buckets : float array
(** Powers of ten from 1e-12 to 1e4. *)

val decade_index : float -> int
(** [Histogram.bucket_index] specialized to {!default_buckets}: an
    inlinable compare ladder (no loop, no array loads, no allocation)
    for per-event hot paths that tally into a local array and merge
    with [Histogram.add_bucket].  NaN and values above 1e4 return the
    overflow index (17). *)

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] (default {!default_buckets}) are strictly increasing upper
    bounds; an overflow bucket is added above the last.  Re-registering
    an existing histogram with different buckets raises. *)

module Counter : sig
  val incr : counter -> unit
  val add : counter -> int -> unit
  (** Raises [Invalid_argument] on a negative increment. *)

  val value : counter -> int
  val name : counter -> string
end

module Gauge : sig
  val set : gauge -> float -> unit
  val value : gauge -> float
  val name : gauge -> string
end

module Histogram : sig
  val observe : histogram -> float -> unit
  (** NaN and values above the last bound count in the overflow
      bucket. *)

  val num_buckets : histogram -> int
  (** Bucket count including the overflow bucket. *)

  val bucket_index : histogram -> float -> int
  (** The bucket {!observe} would count [x] in. *)

  val add_bucket : histogram -> int -> int -> unit
  (** [add_bucket h i n] merges [n] observations straight into bucket
      [i] — for hot loops that tally into a plain local array and flush
      once, paying one atomic RMW per bucket instead of per
      observation.  Raises [Invalid_argument] on negative [n].  Bypasses
      the sum; prefer {!Local} unless the values are already gone. *)

  val count : histogram -> int

  val sum : histogram -> float
  (** Running sum of all {e finite} observations (non-finite values
      count in the overflow bucket but are excluded here, so one NaN
      cannot poison the sum). *)

  val quantile : histogram -> float -> float
  (** Upper bound of the bucket containing the q-quantile ([q] clamped
      to [0, 1]); [infinity] when it falls in the overflow bucket, [nan]
      when the histogram is empty. *)

  val name : histogram -> string

  (** The supported merge path for per-domain aggregation: a [Local.t]
      shadows its parent's buckets in a plain array, is observed with
      zero synchronization from its owning domain, and [flush]es into
      the parent with one atomic RMW per occupied bucket (sum
      included).  Create per task/shard, flush at the join. *)
  module Local : sig
    type t

    val create : histogram -> t
    (** A zeroed local tally whose buckets mirror the parent's. *)

    val observe : t -> float -> unit
    (** Non-atomic: call only from the owning domain. *)

    val flush : t -> unit
    (** Merge into the parent and zero the local tally (idempotent
        until the next [observe]). *)
  end
end

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      bounds : float array;
      counts : int array;
      total : int;
      sum : float;
    }

type snapshot = (string * value) list
(** Sorted by name — deterministic render order. *)

val snapshot : t -> snapshot
val reset : t -> unit
(** Counters and histogram buckets to 0, gauges to 0. *)

val render_text : snapshot -> string
(** One line per instrument. *)

val render_json : snapshot -> string
(** A JSON array of instrument objects (pretty, one per line). *)

val render_json_line : snapshot -> string
(** {!render_json} compacted onto a single line with no whitespace —
    the form the service's [metrics] verb replies with (protocol
    responses are one line each). *)

val render_prometheus : snapshot -> string
(** Prometheus text exposition: names flattened to [ffc_*] (dots and
    dashes become underscores), one [# TYPE] line per instrument,
    histograms as cumulative [_bucket{le="..."}] series plus [_sum] and
    [_count].  Names are listed in docs/OBSERVABILITY.md. *)
