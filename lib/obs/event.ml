(* JSONL trace events.

   Every constructor renders one self-contained JSON object with an
   "ev" discriminator first; payloads carry only deterministic data —
   step indices, seeds, simulation time, model values — never
   wall-clock timestamps, so a trace is byte-identical across runs,
   machines, and pool schedules (scheduling events excepted; see
   [pool_map]/[pool_chunk], which are off by default). *)

let obj kind fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"ev\":";
  Jsonf.add_escaped buf kind;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ',';
      Jsonf.add_escaped buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let int_ = string_of_int
let bool_ = string_of_bool

let floats xs =
  let buf = Buffer.create (Array.length xs * 12) in
  Buffer.add_char buf '[';
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Jsonf.float_json x))
    xs;
  Buffer.add_char buf ']';
  Buffer.contents buf

let opt_field name = function None -> [] | Some v -> [ (name, v) ]

(* ------------------------------------------------------------------ *)
(* Run lifecycle                                                       *)
(* ------------------------------------------------------------------ *)

let run_start ~cmd ?target ?seed ~stride () =
  obj "run.start"
    ([ ("cmd", Jsonf.string cmd) ]
    @ opt_field "target" (Option.map Jsonf.string target)
    @ opt_field "seed" (Option.map int_ seed)
    @ [ ("stride", int_ stride) ])

let run_end ~cmd () = obj "run.end" [ ("cmd", Jsonf.string cmd) ]

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

(* [attrs] values are pre-rendered JSON fragments (see Span.attrs);
   [lc] is the per-scope logical clock.  The timing channel — wall_ns
   and alloc_w on span.end — is the single deliberate exception to the
   no-wall-clock rule above; Span zeroes both when the context's
   [timing] flag is off (--trace-deterministic). *)

let span_start ~id ~name ~lc ~attrs =
  obj "span.start"
    ([ ("id", Jsonf.string id); ("name", Jsonf.string name); ("lc", int_ lc) ]
    @ attrs)

let span_end ~id ~name ~lc ~wall_ns ~alloc_w ~attrs =
  obj "span.end"
    ([
       ("id", Jsonf.string id);
       ("name", Jsonf.string name);
       ("lc", int_ lc);
       ("wall_ns", int_ wall_ns);
       ("alloc_w", int_ alloc_w);
     ]
    @ attrs)

(* ------------------------------------------------------------------ *)
(* Controller iteration                                                *)
(* ------------------------------------------------------------------ *)

let ctrl_step ~step ~residual ~rates =
  obj "ctrl.step"
    [
      ("step", int_ step);
      ("residual", Jsonf.float_json residual);
      ("rates", floats rates);
    ]

(* [steps] is the converged step count, the divergence step, the cycle
   period, or 0 for no-convergence — one numeric slot, disambiguated by
   [outcome]. *)
let ctrl_outcome ~outcome ~steps =
  obj "ctrl.outcome" [ ("outcome", Jsonf.string outcome); ("steps", int_ steps) ]

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let sup_attempt ~attempt ~damping =
  obj "sup.attempt"
    [ ("attempt", int_ attempt); ("damping", Jsonf.float_json damping) ]

let sup_verdict ~outcome ~attempts ~recovered ~total_steps ?min_ratio () =
  obj "sup.verdict"
    ([
       ("outcome", Jsonf.string outcome);
       ("attempts", int_ attempts);
       ("recovered", bool_ recovered);
       ("total_steps", int_ total_steps);
     ]
    @ opt_field "min_ratio" (Option.map Jsonf.float_json min_ratio))

(* ------------------------------------------------------------------ *)
(* Fault injector                                                      *)
(* ------------------------------------------------------------------ *)

let fault_drop ~step ~conn =
  obj "fault.drop" [ ("step", int_ step); ("conn", int_ conn) ]

let fault_cut ~step ~gw ~active =
  obj "fault.cut" [ ("step", int_ step); ("gw", int_ gw); ("active", bool_ active) ]

let fault_flap ~step ~conn ~present =
  obj "fault.flap"
    [ ("step", int_ step); ("conn", int_ conn); ("present", bool_ present) ]

(* ------------------------------------------------------------------ *)
(* Online gateway service                                              *)
(* ------------------------------------------------------------------ *)

let svc_decision ~seq ~op ?conn ~decision ~tier ?rho ?min_ratio ?rate ~backlog () =
  obj "svc.decision"
    ([ ("seq", int_ seq); ("op", Jsonf.string op) ]
    @ opt_field "conn" (Option.map Jsonf.string conn)
    @ [ ("decision", Jsonf.string decision); ("tier", Jsonf.string tier) ]
    @ opt_field "rho" (Option.map Jsonf.float_json rho)
    @ opt_field "min_ratio" (Option.map Jsonf.float_json min_ratio)
    @ opt_field "rate" (Option.map Jsonf.float_json rate)
    @ [ ("backlog", Jsonf.float_json backlog) ])

let svc_degrade ~seq ~from_tier ~to_tier =
  obj "svc.degrade"
    [
      ("seq", int_ seq);
      ("from", Jsonf.string from_tier);
      ("to", Jsonf.string to_tier);
    ]

let svc_recover ~seq ~tier =
  obj "svc.recover" [ ("seq", int_ seq); ("tier", Jsonf.string tier) ]

let svc_backoff ~seq ~attempt ~delay =
  obj "svc.backoff"
    [ ("seq", int_ seq); ("attempt", int_ attempt); ("delay", Jsonf.float_json delay) ]

let svc_snapshot ~seq ~bytes =
  obj "svc.snapshot" [ ("seq", int_ seq); ("bytes", int_ bytes) ]

(* ------------------------------------------------------------------ *)
(* Discrete-event simulator                                            *)
(* ------------------------------------------------------------------ *)

let desim_delivery ~time ~conn ~delay =
  obj "desim.delivery"
    [
      ("t", Jsonf.float_json time);
      ("conn", int_ conn);
      ("delay", Jsonf.float_json delay);
    ]

let desim_summary ~conn ~deliveries ~throughput =
  obj "desim.summary"
    [
      ("conn", int_ conn);
      ("deliveries", int_ deliveries);
      ("throughput", Jsonf.float_json throughput);
    ]

(* ------------------------------------------------------------------ *)
(* Pool scheduling (nondeterministic by nature; ctx.sched-gated)       *)
(* ------------------------------------------------------------------ *)

let pool_map ~tasks ~jobs ~chunk =
  obj "pool.map" [ ("tasks", int_ tasks); ("jobs", int_ jobs); ("chunk", int_ chunk) ]

let pool_chunk ~start ~stop ~domain =
  obj "pool.chunk"
    [ ("start", int_ start); ("stop", int_ stop); ("domain", int_ domain) ]

(* ------------------------------------------------------------------ *)
(* Result cache                                                        *)
(* ------------------------------------------------------------------ *)

let cache_lookup ~tier ~key ~hit =
  obj "cache.lookup"
    [ ("tier", Jsonf.string tier); ("key", Jsonf.string key); ("hit", bool_ hit) ]

let cache_store ~tier ~key ~bytes =
  obj "cache.store"
    [ ("tier", Jsonf.string tier); ("key", Jsonf.string key); ("bytes", int_ bytes) ]
