(* Deterministic, nestable span tracing over the ambient context.

   A span is a named phase of work (a solve, a probe, a cache lookup,
   one service request).  Identity and ordering are fully deterministic:

   - Ids are hierarchical dotted paths assigned by arrival order within
     the parent ("0", "0.1", "0.1.0", ...), so they depend only on the
     program's own call structure, never on scheduling.
   - Every start/end ticks a per-scope logical clock ([lc]), giving a
     total order over span events that is reproducible run to run.

   Durations live in a separate *timing channel*: span.end carries
   wall_ns (Unix.gettimeofday delta) and alloc_w (Gc.minor_words
   delta).  Those are the only nondeterministic trace payloads; when
   the context's [timing] flag is off (--trace-deterministic) both are
   emitted as 0 and the whole span stream is byte-identical across
   runs, machines, and --jobs values.

   Determinism under the pool: span state (id stack, root counter,
   logical clock) is per-domain, and a Sink.capture boundary — which
   is how the pool collects each task's trace — saves and resets it,
   so every captured task numbers its spans from a fresh scope.  The
   pool flushes captures in task-index order at the join; span ids
   therefore depend only on (task index, call structure), never on
   which worker ran the task.  The hook is registered at module-init
   time below.

   Hot-path contract: when no trace is being written, [with_span] costs
   the one atomic load inside [Ctx.tracing] plus a branch, and
   allocates nothing (same contract as every other instrumentation
   site; re-benched in BENCH.json's "obs" section). *)

type frame = {
  id : string;
  name : string;
  mutable children : int; (* next child ordinal under this span *)
  mutable closed : bool;
  wall0 : float; (* Unix.gettimeofday at start; 0. when timing off *)
  alloc0 : float; (* Gc.minor_words at start; 0. when timing off *)
}

type state = {
  mutable stack : frame list; (* open spans, innermost first *)
  mutable roots : int; (* next root ordinal in this scope *)
  mutable lc : int; (* logical clock: one tick per span event *)
}

let fresh_state () = { stack = []; roots = 0; lc = 0 }
let dls : state Domain.DLS.key = Domain.DLS.new_key fresh_state

(* Reset at every capture boundary: each pooled task numbers spans from
   a fresh scope, making the flushed trace independent of --jobs. *)
let () =
  Sink.on_capture (fun () ->
      let saved = Domain.DLS.get dls in
      Domain.DLS.set dls (fresh_state ());
      fun () -> Domain.DLS.set dls saved)

type handle = { ctx : Ctx.t; state : state; frame : frame }
type t = handle option

let off : t = None
let on t = Option.is_some t

let start ?(attrs = []) name : t =
  match Ctx.tracing () with
  | None -> None
  | Some ctx ->
    let st = Domain.DLS.get dls in
    let id =
      match st.stack with
      | [] ->
        let ord = st.roots in
        st.roots <- ord + 1;
        string_of_int ord
      | parent :: _ ->
        let ord = parent.children in
        parent.children <- ord + 1;
        parent.id ^ "." ^ string_of_int ord
    in
    let timing = Ctx.timing ctx in
    let frame =
      {
        id;
        name;
        children = 0;
        closed = false;
        wall0 = (if timing then Unix.gettimeofday () else 0.);
        alloc0 = (if timing then Gc.minor_words () else 0.);
      }
    in
    st.stack <- frame :: st.stack;
    let lc = st.lc in
    st.lc <- lc + 1;
    Ctx.emit ctx (Event.span_start ~id ~name ~lc ~attrs);
    Some { ctx; state = st; frame }

let finish ?(attrs = []) (t : t) =
  match t with
  | None -> ()
  | Some { ctx; state = st; frame } ->
    if not frame.closed then begin
      frame.closed <- true;
      (* Pop to (and including) this frame.  Children left open by an
         escaped exception between a raw start/finish pair are
         abandoned silently: their end event never happened, which the
         trace report surfaces as unmatched starts. *)
      let rec pop = function
        | f :: rest when f == frame -> st.stack <- rest
        | _ :: rest -> pop rest
        | [] -> () (* scope was reset under us (capture boundary) *)
      in
      pop st.stack;
      let timing = Ctx.timing ctx in
      let wall_ns =
        if timing then
          Int.max 0
            (int_of_float ((Unix.gettimeofday () -. frame.wall0) *. 1e9))
        else 0
      in
      let alloc_w =
        if timing then
          Int.max 0 (int_of_float (Gc.minor_words () -. frame.alloc0))
        else 0
      in
      let lc = st.lc in
      st.lc <- lc + 1;
      Ctx.emit ctx
        (Event.span_end ~id:frame.id ~name:frame.name ~lc ~wall_ns ~alloc_w
           ~attrs)
    end

let with_span ?attrs name f =
  match start ?attrs name with
  | None -> f ()
  | some -> Fun.protect ~finally:(fun () -> finish some) f
