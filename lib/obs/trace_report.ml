(* Aggregate a JSONL trace into a per-phase breakdown: for every span
   name, how many spans closed and how much wall time / minor-heap
   allocation they covered ("where did the admission budget go").
   Service decisions are tallied by tier and by decision alongside, so
   the report can be cross-checked against the daemon's own `stats`
   counters.

   Works line-by-line with the Jsonf field scrapers — every event this
   repo emits is a flat one-line JSON object — so the aggregator has no
   parser dependency and handles multi-gigabyte traces in constant
   memory.  Wall totals are *inclusive*: a parent span's time contains
   its children's (the spans nest, the table does not). *)

type phase = {
  ph_name : string;
  ph_count : int; (* span.end events *)
  ph_wall_ns : int; (* total inclusive wall time *)
  ph_alloc_w : int; (* total minor words allocated *)
}

type acc = {
  phases : (string, int * int * int) Hashtbl.t; (* name -> count, wall, alloc *)
  tiers : (string, int) Hashtbl.t; (* svc.decision tier -> count *)
  decisions : (string, int) Hashtbl.t; (* svc.decision decision -> count *)
  mutable events : int; (* parseable event lines *)
  mutable starts : int; (* span.start events *)
  mutable ends : int; (* span.end events *)
  mutable other : int; (* non-event / unparseable lines *)
}

let create () =
  {
    phases = Hashtbl.create 32;
    tiers = Hashtbl.create 8;
    decisions = Hashtbl.create 8;
    events = 0;
    starts = 0;
    ends = 0;
    other = 0;
  }

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let add_line acc line =
  if String.trim line = "" then ()
  else
    match Jsonf.string_field line ~key:"ev" with
    | None -> acc.other <- acc.other + 1
    | Some ev ->
      acc.events <- acc.events + 1;
      (match ev with
      | "span.start" -> acc.starts <- acc.starts + 1
      | "span.end" -> (
        acc.ends <- acc.ends + 1;
        match Jsonf.string_field line ~key:"name" with
        | None -> ()
        | Some name ->
          let wall =
            int_of_float
              (Option.value ~default:0. (Jsonf.number_field line ~key:"wall_ns"))
          in
          let alloc =
            int_of_float
              (Option.value ~default:0. (Jsonf.number_field line ~key:"alloc_w"))
          in
          let c, w, a =
            Option.value ~default:(0, 0, 0) (Hashtbl.find_opt acc.phases name)
          in
          Hashtbl.replace acc.phases name (c + 1, w + wall, a + alloc))
      | "svc.decision" ->
        Option.iter (bump acc.tiers) (Jsonf.string_field line ~key:"tier");
        Option.iter (bump acc.decisions)
          (Jsonf.string_field line ~key:"decision")
      | _ -> ())

let of_lines lines =
  let acc = create () in
  List.iter (add_line acc) lines;
  acc

(* Sorted heaviest-first (ties and the all-zero --trace-deterministic
   case fall back to name order, keeping the table reproducible). *)
let phases acc =
  Hashtbl.fold
    (fun name (c, w, a) rows ->
      { ph_name = name; ph_count = c; ph_wall_ns = w; ph_alloc_w = a } :: rows)
    acc.phases []
  |> List.sort (fun x y ->
         match compare y.ph_wall_ns x.ph_wall_ns with
         | 0 -> String.compare x.ph_name y.ph_name
         | c -> c)

let assoc_sorted tbl =
  Hashtbl.fold (fun k v rows -> (k, v) :: rows) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let tiers acc = assoc_sorted acc.tiers
let decisions acc = assoc_sorted acc.decisions
let events acc = acc.events
let unmatched_starts acc = acc.starts - acc.ends

let render acc =
  let buf = Buffer.create 1024 in
  let rows = phases acc in
  Printf.bprintf buf "%-28s %10s %14s %14s\n" "phase" "count" "wall_ms"
    "alloc_kw";
  List.iter
    (fun p ->
      Printf.bprintf buf "%-28s %10d %14.3f %14.1f\n" p.ph_name p.ph_count
        (float_of_int p.ph_wall_ns /. 1e6)
        (float_of_int p.ph_alloc_w /. 1e3))
    rows;
  if rows = [] then Buffer.add_string buf "(no spans in trace)\n";
  Printf.bprintf buf "spans: %d closed" acc.ends;
  let dangling = unmatched_starts acc in
  if dangling > 0 then Printf.bprintf buf " (%d unmatched starts)" dangling;
  Printf.bprintf buf "; events: %d" acc.events;
  if acc.other > 0 then Printf.bprintf buf "; non-event lines: %d" acc.other;
  Buffer.add_char buf '\n';
  let tier_rows = tiers acc in
  if tier_rows <> [] then begin
    Buffer.add_string buf "service tiers:";
    List.iter (fun (t, n) -> Printf.bprintf buf " %s=%d" t n) tier_rows;
    Buffer.add_char buf '\n'
  end;
  let dec_rows = decisions acc in
  if dec_rows <> [] then begin
    Buffer.add_string buf "service decisions:";
    List.iter (fun (d, n) -> Printf.bprintf buf " %s=%d" d n) dec_rows;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let render_json acc =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"phases\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"name\":%s,\"count\":%d,\"wall_ns\":%d,\"alloc_w\":%d}"
        (Jsonf.string p.ph_name) p.ph_count p.ph_wall_ns p.ph_alloc_w)
    (phases acc);
  Buffer.add_string buf "],\"tiers\":{";
  List.iteri
    (fun i (t, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "%s:%d" (Jsonf.string t) n)
    (tiers acc);
  Buffer.add_string buf "},\"decisions\":{";
  List.iteri
    (fun i (d, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "%s:%d" (Jsonf.string d) n)
    (decisions acc);
  Printf.bprintf buf "},\"spans\":%d,\"unmatched_starts\":%d,\"events\":%d}"
    acc.ends
    (Stdlib.max 0 (unmatched_starts acc))
    acc.events;
  Buffer.contents buf
