(* The observability context: one metrics registry + one trace sink +
   sampling policy, installed process-wide (ambient) so instrumentation
   reaches every layer without threading a parameter through the
   controller, injector, simulator and pool APIs.

   Hot-path contract: with no context installed an instrumented site
   pays one atomic load and one branch; with a context installed but a
   null sink it additionally pays one atomic counter increment — no
   name lookups (the canonical hot counters are pre-resolved here at
   [make]) and no allocation. *)

type hot = {
  controller_steps : Metrics.counter;
  injector_steps : Metrics.counter;
  injector_drops : Metrics.counter;
  desim_injections : Metrics.counter;
  desim_deliveries : Metrics.counter;
  pool_tasks : Metrics.counter;
}

type t = {
  metrics : Metrics.t;
  sink : Sink.t;
  stride : int;
  sched : bool;
  timing : bool;
  hot : hot;
}

let make ?metrics ?(sink = Sink.null) ?(stride = 1) ?(sched = false)
    ?(timing = true) () =
  if stride < 1 then invalid_arg "Ctx.make: stride must be >= 1";
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  {
    metrics;
    sink;
    stride;
    sched;
    timing;
    hot =
      {
        controller_steps = Metrics.counter metrics "controller.steps";
        injector_steps = Metrics.counter metrics "injector.steps";
        injector_drops = Metrics.counter metrics "injector.drops";
        desim_injections = Metrics.counter metrics "desim.injections";
        desim_deliveries = Metrics.counter metrics "desim.deliveries";
        pool_tasks = Metrics.counter metrics "pool.tasks";
      };
  }

let metrics c = c.metrics
let sink c = c.sink
let stride c = c.stride
let sched c = c.sched
let timing c = c.timing

let ambient_cell : t option Atomic.t = Atomic.make None
let ambient () = Atomic.get ambient_cell
let install c = Atomic.set ambient_cell (Some c)
let clear () = Atomic.set ambient_cell None

let with_ctx c f =
  let saved = Atomic.get ambient_cell in
  Atomic.set ambient_cell (Some c);
  Fun.protect ~finally:(fun () -> Atomic.set ambient_cell saved) f

(* The ambient context filtered to "a trace is actually being written":
   instrumentation that builds event payloads guards on this so the
   null-sink path allocates nothing. *)
let tracing () =
  match Atomic.get ambient_cell with
  | Some c when Sink.enabled c.sink -> Some c
  | Some _ | None -> None

let emit c line = Sink.emit c.sink line
let sample c step = step mod c.stride = 0

(* Pre-resolved hot-counter taps: one atomic load, one branch, one
   atomic increment; nothing allocated. *)
let incr_controller_steps () =
  match Atomic.get ambient_cell with
  | None -> ()
  | Some c -> Metrics.Counter.incr c.hot.controller_steps

let incr_injector_steps () =
  match Atomic.get ambient_cell with
  | None -> ()
  | Some c -> Metrics.Counter.incr c.hot.injector_steps

let incr_injector_drops () =
  match Atomic.get ambient_cell with
  | None -> ()
  | Some c -> Metrics.Counter.incr c.hot.injector_drops

let incr_desim_injections () =
  match Atomic.get ambient_cell with
  | None -> ()
  | Some c -> Metrics.Counter.incr c.hot.desim_injections

let incr_desim_deliveries () =
  match Atomic.get ambient_cell with
  | None -> ()
  | Some c -> Metrics.Counter.incr c.hot.desim_deliveries

let add_pool_tasks n =
  match Atomic.get ambient_cell with
  | None -> ()
  | Some c -> Metrics.Counter.add c.hot.pool_tasks n

(* Cold-path convenience: bump a counter by name on the ambient
   registry (hashtable lookup — fine at run/outcome frequency). *)
let incr_named name =
  match Atomic.get ambient_cell with
  | None -> ()
  | Some c -> Metrics.Counter.incr (Metrics.counter c.metrics name)
