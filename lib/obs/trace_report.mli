(** Aggregate a JSONL trace into a per-phase time/alloc breakdown.

    Feeds on the repo's own one-line trace events via the {!Jsonf}
    scrapers (no parser dependency, constant memory): every [span.end]
    adds its [wall_ns]/[alloc_w] to its phase (span name), and every
    [svc.decision] is tallied by tier and by decision — the latter is
    what the acceptance check compares against the daemon's [stats]
    counters.

    Wall totals are {e inclusive}: a parent span's time contains its
    children's.  Under [--trace-deterministic] all wall/alloc totals
    are 0 and the table degrades to span counts. *)

type acc
(** A streaming accumulator. *)

type phase = {
  ph_name : string;
  ph_count : int;  (** closed spans *)
  ph_wall_ns : int;  (** total inclusive wall time *)
  ph_alloc_w : int;  (** total minor words allocated *)
}

val create : unit -> acc

val add_line : acc -> string -> unit
(** Feed one trace line.  Blank lines are skipped; lines without an
    ["ev"] field count as non-event lines; event kinds the report does
    not aggregate still count toward {!events}. *)

val of_lines : string list -> acc

val phases : acc -> phase list
(** Heaviest wall-time first; ties (and the all-zero deterministic
    case) in name order. *)

val tiers : acc -> (string * int) list
(** [svc.decision] counts by serving tier, name-sorted. *)

val decisions : acc -> (string * int) list
(** [svc.decision] counts by decision (admit/reject/ok/...),
    name-sorted. *)

val events : acc -> int
val unmatched_starts : acc -> int
(** [span.start]s without a matching [span.end] — nonzero means an
    exception escaped a raw start/finish pair or the trace was cut. *)

val render : acc -> string
(** The human table: phase rows (count, wall ms, alloc kw), span and
    event totals, service tier/decision tallies. *)

val render_json : acc -> string
(** One-line JSON: [{"phases":[...],"tiers":{...},"decisions":{...},
    "spans":N,"unmatched_starts":N,"events":N}]. *)
