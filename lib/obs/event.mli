(** JSONL trace-event constructors.

    Each function renders one self-contained JSON object (no trailing
    newline) whose first field is the ["ev"] discriminator.  Payloads
    are deterministic by construction — step indices, seeds, simulation
    time, model values; never wall-clock time — so traces are
    byte-identical across runs and pool schedules.  The two [pool_*]
    events are the exception (scheduling is inherently nondeterministic)
    and are only emitted when {!Ctx.t}'s [sched] flag is set.

    The full schema is documented in [docs/OBSERVABILITY.md]. *)

val run_start :
  cmd:string -> ?target:string -> ?seed:int -> stride:int -> unit -> string
(** First line of a CLI trace: subcommand, subject (experiment id or
    topology), optional fault seed, sampling stride.  Deliberately free
    of jobs/git/host fields — those live in the provenance manifest —
    so the trace stays byte-identical across [--jobs]. *)

val run_end : cmd:string -> unit -> string

val span_start :
  id:string ->
  name:string ->
  lc:int ->
  attrs:(string * string) list ->
  string
(** A {!Span} opened: hierarchical dotted id (["0.2.1"]), phase name,
    per-scope logical-clock tick, plus caller attributes (values are
    pre-rendered JSON fragments).  Fully deterministic. *)

val span_end :
  id:string ->
  name:string ->
  lc:int ->
  wall_ns:int ->
  alloc_w:int ->
  attrs:(string * string) list ->
  string
(** The matching close.  [wall_ns] (wall-clock duration) and [alloc_w]
    (minor words allocated) form the {e timing channel} — the only
    nondeterministic trace payload; both are 0 when the context's
    [timing] flag is off ([--trace-deterministic]). *)

val ctrl_step : step:int -> residual:float -> rates:float array -> string
(** One controller iteration: relative sup-norm residual and the full
    post-step rate vector.  Sampled at the context stride. *)

val ctrl_outcome : outcome:string -> steps:int -> string
(** [outcome] is ["converged"], ["cycle"], ["diverged"] or
    ["no_convergence"]; [steps] is respectively the convergence step,
    the period, the divergence step, or 0. *)

val sup_attempt : attempt:int -> damping:float -> string
(** Start of supervisor attempt [attempt] (0-based) at gain multiplier
    [damping]. *)

val sup_verdict :
  outcome:string ->
  attempts:int ->
  recovered:bool ->
  total_steps:int ->
  ?min_ratio:float ->
  unit ->
  string

val fault_drop : step:int -> conn:int -> string
(** A lossy fault suppressed connection [conn]'s update at [step].
    Sampled at the context stride. *)

val fault_cut : step:int -> gw:int -> active:bool -> string
(** A gateway-cut crossed a step boundary (activated or restored). *)

val fault_flap : step:int -> conn:int -> present:bool -> string
(** A flapping peer crossed a phase boundary: departed
    ([present = false]) or rejoined ([present = true]).  Sampled at the
    context stride. *)

(** {2 Online gateway service}

    Emitted by [Ffc_service]: one [svc.decision] per processed request,
    plus ladder transitions, retry backoffs and snapshot publications.
    All payloads are model values (logical timestamps, never wall-clock
    time), so service traces obey the byte-identity contract. *)

val svc_decision :
  seq:int ->
  op:string ->
  ?conn:string ->
  decision:string ->
  tier:string ->
  ?rho:float ->
  ?min_ratio:float ->
  ?rate:float ->
  backlog:float ->
  unit ->
  string
(** One admission/removal/query decision: request sequence number,
    operation, the slot involved, admit/reject/ok, the degradation-ladder
    tier that served it, and the stability evidence (ρ(DF), Theorem-5
    min-ratio, the newcomer's steady rate) when computed. *)

val svc_degrade : seq:int -> from_tier:string -> to_tier:string -> string
(** The overload ladder stepped down (e.g. full → incremental). *)

val svc_recover : seq:int -> tier:string -> string
(** The ladder stepped back up after the backlog drained. *)

val svc_backoff : seq:int -> attempt:int -> delay:float -> string
(** A transient solver failure triggered retry [attempt] after a
    deterministic jittered exponential [delay] (logical seconds). *)

val svc_snapshot : seq:int -> bytes:int -> string
(** A crash-safe state snapshot was atomically published. *)

val desim_delivery : time:float -> conn:int -> delay:float -> string
(** Every [stride]-th packet delivery: simulation time and end-to-end
    delay. *)

val desim_summary : conn:int -> deliveries:int -> throughput:float -> string
(** Per-connection totals over the measurement window, at the end of a
    simulation run. *)

val pool_map : tasks:int -> jobs:int -> chunk:int -> string
(** A parallel fan-out completed (sched-gated: jobs-dependent). *)

val pool_chunk : start:int -> stop:int -> domain:int -> string
(** One self-scheduled chunk [start, stop) ran on worker slot [domain]
    (sched-gated: the attribution is scheduling-dependent). *)

val cache_lookup : tier:string -> key:string -> hit:bool -> string
(** One result-cache probe: memo tier, 32-hex content key, outcome.
    Cached {e values} are jobs-invariant, but on a cold parallel run
    two domains can race to the same key and both record a miss, so
    these events — like the [pool_*] pair — sit outside the trace
    byte-identity contract (see docs/CACHING.md). *)

val cache_store : tier:string -> key:string -> bytes:int -> string
(** A computed result was published to the store ([bytes] of payload). *)
