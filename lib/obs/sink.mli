(** Trace sinks: null / in-memory buffer / file, behind one [emit].

    Instrumentation sites must guard event construction on {!enabled} —
    with the null sink an instrumented hot path then pays one branch and
    allocates nothing.  Buffer and file sinks are mutex-guarded, so
    emission from concurrent domains is safe (though unordered; the pool
    uses {!capture} to impose task order — see
    {!Ffc_numerics.Pool.parallel_map}). *)

type t

val null : t
(** Drops everything; {!enabled} is [false]. *)

val buffer : unit -> t
(** Accumulates lines in memory; read with {!contents}. *)

val file : string -> t
(** Opens [path] for writing (truncates). *)

val enabled : t -> bool

val emit : t -> string -> unit
(** Appends one line (a ['\n'] is added).  If a {!capture} is active on
    this domain the line goes to the capture buffer instead of the
    sink's target; on the null sink it is dropped either way. *)

val emit_raw : t -> string -> unit
(** Appends pre-rendered bytes (no newline added) — the pool uses this
    to flush captured task traces in task order.  An active {!capture}
    on this domain still receives the bytes, so flushes compose with an
    enclosing capture. *)

val capture : (unit -> 'a) -> 'a * string
(** [capture f] runs [f] with this domain's {!emit} calls redirected
    into a fresh private buffer and returns [f ()] together with the
    captured bytes.  Nests (the inner capture wins while active).  On an
    exception the redirect is popped and the captured bytes are lost
    with the unwind. *)

val on_capture : (unit -> unit -> unit) -> unit
(** Registers a capture-boundary hook: [hook ()] runs when a {!capture}
    begins (typically saving and resetting some per-domain ambient
    state) and returns the restore closure run when that capture ends.
    Used by {!Span} to restart span ids and the logical clock inside
    each captured task, which keeps span streams byte-identical at any
    [--jobs].  Register at module init only. *)

val write_file : path:string -> string -> unit
(** One-shot whole-file write (truncates) — the shared primitive behind
    CSV exports and provenance manifests.  Not subject to {!capture}. *)

val contents : t -> string
(** Buffer sinks only; raises [Invalid_argument] otherwise. *)

val close : t -> unit
(** Flushes and closes a file sink (idempotent); no-op otherwise. *)
