(* Run provenance: what produced an artifact.

   A manifest names the subcommand, the subject (experiment id or
   topology), the algorithm population, every seed, the fault plan, the
   source revision, and the execution shape (jobs, stride) — plus the
   final metrics snapshot.  Written as one JSON object to the side
   (--metrics FILE), never into the trace: jobs and git state vary
   between equivalent runs, and the trace must stay byte-identical
   across them. *)

(* Result-cache provenance: where results were memoized, under which
   key schema, and how the run's lookups went.  Plain data — the cache
   layer depends on this library, not the other way around, so the CLI
   fills it in from the ambient cache's counters. *)
type cache_info = {
  cache_dir : string;
  key_schema : string;
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  hit_ratio : float;
}

type t = {
  command : string;
  subject : string;
  adjusters : string list;
  seeds : (string * int) list;
  faults : string list;
  jobs : int;
  stride : int;
  git : string option;
  cache : cache_info option;
}

(* The revision stamp, best-effort: a run outside a checkout (or
   without git on PATH) gets [None], not an exception. *)
let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty --tags 2>/dev/null"
    in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some line when line <> "" -> Some line
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let collect ~command ~subject ?(adjusters = []) ?(seeds = []) ?(faults = [])
    ?cache ~jobs ~stride () =
  {
    command;
    subject;
    adjusters;
    seeds;
    faults;
    jobs;
    stride;
    git = git_describe ();
    cache;
  }

let to_json t ~metrics =
  let buf = Buffer.create 1024 in
  let field name value =
    Jsonf.add_escaped buf name;
    Buffer.add_string buf ": ";
    Buffer.add_string buf value
  in
  let string_list l =
    "[" ^ String.concat ", " (List.map Jsonf.string l) ^ "]"
  in
  Buffer.add_string buf "{\n  ";
  field "command" (Jsonf.string t.command);
  Buffer.add_string buf ",\n  ";
  field "subject" (Jsonf.string t.subject);
  Buffer.add_string buf ",\n  ";
  field "adjusters" (string_list t.adjusters);
  Buffer.add_string buf ",\n  ";
  field "seeds"
    ("{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Jsonf.string k ^ ": " ^ string_of_int v) t.seeds)
    ^ "}");
  Buffer.add_string buf ",\n  ";
  field "faults" (string_list t.faults);
  Buffer.add_string buf ",\n  ";
  field "jobs" (string_of_int t.jobs);
  Buffer.add_string buf ",\n  ";
  field "trace_stride" (string_of_int t.stride);
  Buffer.add_string buf ",\n  ";
  field "git" (match t.git with Some g -> Jsonf.string g | None -> "null");
  (match t.cache with
  | None -> ()
  | Some c ->
    Buffer.add_string buf ",\n  ";
    field "cache"
      (Printf.sprintf
         "{\"dir\": %s, \"key_schema\": %s, \"hits\": %d, \"misses\": %d, \
          \"stores\": %d, \"evictions\": %d, \"hit_ratio\": %.6f}"
         (Jsonf.string c.cache_dir) (Jsonf.string c.key_schema) c.hits c.misses
         c.stores c.evictions c.hit_ratio));
  (match metrics with
  | None -> ()
  | Some snap ->
    Buffer.add_string buf ",\n  ";
    field "metrics" (Metrics.render_json snap));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let write ~path t ~metrics = Sink.write_file ~path (to_json t ~metrics)
