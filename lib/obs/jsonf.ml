(* Shared JSON-fragment formatting: one float format and one string
   escaper for every renderer in the repo (trace events, metric
   snapshots, provenance manifests, CSV export), so numbers round-trip
   identically everywhere. *)

(* Round-trip float text: %.17g prints enough digits that reading the
   string back recovers the exact double. *)
let float_rt x = Printf.sprintf "%.17g" x

(* JSON has no non-finite numbers; render them as null. *)
let float_json x = if Float.is_finite x then float_rt x else "null"

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let string s =
  let buf = Buffer.create (String.length s + 2) in
  add_escaped buf s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Field scraping                                                      *)
(* ------------------------------------------------------------------ *)

(* Minimal extraction from the flat one-line JSON objects this repo
   itself renders (service replies, trace events, BENCH.json rows) —
   enough for the churn driver, the trace aggregator and the bench
   comparator without a JSON parser dependency.  The first occurrence
   of a key wins. *)

(* Position just after ["key":] in [s], if the key occurs. *)
let after_key s ~key =
  let pat = Printf.sprintf "\"%s\":" key in
  let n = String.length s and m = String.length pat in
  let rec scan i =
    if i + m > n then None
    else if String.sub s i m = pat then Some (i + m)
    else scan (i + 1)
  in
  scan 0

(* Skip the spaces a pretty-printed file puts after the colon; our own
   renderers emit none, so this is only for tolerance. *)
let skip_ws s i =
  let n = String.length s in
  let j = ref i in
  while !j < n && (s.[!j] = ' ' || s.[!j] = '\t') do
    incr j
  done;
  !j

let string_field s ~key =
  match after_key s ~key with
  | None -> None
  | Some i ->
    let i = skip_ws s i in
    if i >= String.length s || s.[i] <> '"' then None
    else
      let buf = Buffer.create 16 in
      let rec go j =
        if j >= String.length s then None
        else
          match s.[j] with
          | '"' -> Some (Buffer.contents buf)
          | '\\' when j + 1 < String.length s ->
            (* Our own renderer only emits the simple JSON escapes;
               the scraper handles exactly those. *)
            (match s.[j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | c -> Buffer.add_char buf c);
            go (j + 2)
          | c ->
            Buffer.add_char buf c;
            go (j + 1)
      in
      go (i + 1)

let number_field s ~key =
  match after_key s ~key with
  | None -> None
  | Some i ->
    let i = skip_ws s i in
    let n = String.length s in
    let stop = ref i in
    while
      !stop < n
      && (match s.[!stop] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr stop
    done;
    if !stop = i then None else float_of_string_opt (String.sub s i (!stop - i))

let bool_field s ~key =
  match after_key s ~key with
  | None -> None
  | Some i ->
    let i = skip_ws s i in
    let n = String.length s in
    if i + 4 <= n && String.sub s i 4 = "true" then Some true
    else if i + 5 <= n && String.sub s i 5 = "false" then Some false
    else None
