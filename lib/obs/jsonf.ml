(* Shared JSON-fragment formatting: one float format and one string
   escaper for every renderer in the repo (trace events, metric
   snapshots, provenance manifests, CSV export), so numbers round-trip
   identically everywhere. *)

(* Round-trip float text: %.17g prints enough digits that reading the
   string back recovers the exact double. *)
let float_rt x = Printf.sprintf "%.17g" x

(* JSON has no non-finite numbers; render them as null. *)
let float_json x = if Float.is_finite x then float_rt x else "null"

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let string s =
  let buf = Buffer.create (String.length s + 2) in
  add_escaped buf s;
  Buffer.contents buf
