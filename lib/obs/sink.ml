(* Trace sinks: where JSONL event lines go.

   Three targets — null (drop), in-memory buffer, file — behind one
   [emit].  Instrumentation sites guard event *construction* on
   [enabled], so a null sink costs one branch and zero allocation.

   Determinism under the pool: [capture] redirects this domain's
   emissions into a private buffer (domain-local storage, so concurrent
   workers never interleave mid-line).  The pool captures each task's
   emissions and flushes them to the real sink in task-index order at
   the join, which is what makes a trace byte-identical at any --jobs
   value. *)

type target =
  | Null
  | Buffer of Buffer.t
  | File of { oc : out_channel; mutable closed : bool }

type t = { target : target; lock : Mutex.t }

let null = { target = Null; lock = Mutex.create () }
let buffer () = { target = Buffer (Buffer.create 4096); lock = Mutex.create () }

let file path =
  { target = File { oc = open_out path; closed = false }; lock = Mutex.create () }

let enabled t = match t.target with Null -> false | Buffer _ | File _ -> true

(* The capture redirect is per-domain: a pool worker captures its own
   task's emissions without seeing its siblings'. *)
let redirect : Buffer.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Pre-rendered bytes (e.g. a flushed task capture).  An active capture
   on this domain still wins, so flushes compose with an enclosing
   capture instead of leaking around it. *)
let emit_raw t s =
  if String.length s > 0 then
    match t.target with
    | Null -> ()
    | Buffer _ | File _ -> (
      match !(Domain.DLS.get redirect) with
      | Some buf -> Buffer.add_string buf s
      | None -> (
        match t.target with
        | Null -> ()
        | Buffer b -> with_lock t (fun () -> Buffer.add_string b s)
        | File f ->
          with_lock t (fun () -> if not f.closed then output_string f.oc s)))

let emit t line =
  match t.target with
  | Null -> ()
  | Buffer _ | File _ -> (
    match !(Domain.DLS.get redirect) with
    | Some buf ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n'
    | None -> emit_raw t (line ^ "\n"))

(* Capture boundaries double as scope boundaries for modules keeping
   per-domain ambient trace state (Span's id/clock stack): each hook
   runs when a capture begins and returns the closure that undoes it
   when the capture ends.  Registration happens at module init, so the
   list is effectively fixed before any pool runs; the atomic only
   guards against a registration racing a capture. *)
let capture_hooks : (unit -> unit -> unit) list Atomic.t = Atomic.make []

let rec on_capture hook =
  let old = Atomic.get capture_hooks in
  if not (Atomic.compare_and_set capture_hooks old (hook :: old)) then
    on_capture hook

let capture f =
  let cell = Domain.DLS.get redirect in
  let saved = !cell in
  let buf = Buffer.create 512 in
  let restores = List.map (fun hook -> hook ()) (Atomic.get capture_hooks) in
  cell := Some buf;
  let result =
    Fun.protect
      ~finally:(fun () ->
        cell := saved;
        List.iter (fun restore -> restore ()) restores)
      f
  in
  (result, Buffer.contents buf)

(* One-shot whole-file write (CSV exports, manifests).  Not a sink and
   not subject to capture: artifacts always land on disk. *)
let write_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let contents t =
  match t.target with
  | Buffer b -> with_lock t (fun () -> Buffer.contents b)
  | Null | File _ -> invalid_arg "Sink.contents: not a buffer sink"

let close t =
  match t.target with
  | Null | Buffer _ -> ()
  | File f ->
    with_lock t (fun () ->
        if not f.closed then begin
          f.closed <- true;
          close_out f.oc
        end)
