(** Run provenance: a machine-readable manifest of what produced an
    artifact — subcommand, subject, adjusters, seeds, fault plan,
    source revision, jobs, trace stride — plus the final metrics
    snapshot.

    The manifest goes to its own file ([--metrics FILE]), never into
    the event trace: jobs and git state legitimately differ between
    runs whose traces must stay byte-identical. *)

type cache_info = {
  cache_dir : string;
  key_schema : string;  (** Cache key schema version, e.g. ["ffc1"]. *)
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  hit_ratio : float;
}
(** How the run's result-cache lookups went.  Plain data: the cache
    layer depends on this library, so the CLI copies the ambient
    cache's counters in here rather than this module reading them. *)

type t = {
  command : string;
  subject : string;  (** Experiment id, or the topology description. *)
  adjusters : string list;
  seeds : (string * int) list;
  faults : string list;  (** {!Ffc_faults.Fault.describe} lines. *)
  jobs : int;
  stride : int;
  git : string option;
  cache : cache_info option;  (** [None] when the run was uncached. *)
}

val git_describe : unit -> string option
(** [git describe --always --dirty --tags], or [None] when unavailable
    (no checkout, no git).  Never raises. *)

val collect :
  command:string ->
  subject:string ->
  ?adjusters:string list ->
  ?seeds:(string * int) list ->
  ?faults:string list ->
  ?cache:cache_info ->
  jobs:int ->
  stride:int ->
  unit ->
  t
(** Fills [git] via {!git_describe}. *)

val to_json : t -> metrics:Metrics.snapshot option -> string
(** One JSON object; [metrics] becomes a ["metrics"] array field. *)

val write : path:string -> t -> metrics:Metrics.snapshot option -> unit
