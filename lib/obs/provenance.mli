(** Run provenance: a machine-readable manifest of what produced an
    artifact — subcommand, subject, adjusters, seeds, fault plan,
    source revision, jobs, trace stride — plus the final metrics
    snapshot.

    The manifest goes to its own file ([--metrics FILE]), never into
    the event trace: jobs and git state legitimately differ between
    runs whose traces must stay byte-identical. *)

type t = {
  command : string;
  subject : string;  (** Experiment id, or the topology description. *)
  adjusters : string list;
  seeds : (string * int) list;
  faults : string list;  (** {!Ffc_faults.Fault.describe} lines. *)
  jobs : int;
  stride : int;
  git : string option;
}

val git_describe : unit -> string option
(** [git describe --always --dirty --tags], or [None] when unavailable
    (no checkout, no git).  Never raises. *)

val collect :
  command:string ->
  subject:string ->
  ?adjusters:string list ->
  ?seeds:(string * int) list ->
  ?faults:string list ->
  jobs:int ->
  stride:int ->
  unit ->
  t
(** Fills [git] via {!git_describe}. *)

val to_json : t -> metrics:Metrics.snapshot option -> string
(** One JSON object; [metrics] becomes a ["metrics"] array field. *)

val write : path:string -> t -> metrics:Metrics.snapshot option -> unit
