(** The observability context: a metrics registry, a trace sink, and
    the sampling policy, installed process-wide.

    Instrumented layers (controller, injector, supervisor, simulator,
    pool) read the {e ambient} context instead of taking a parameter:
    with none installed a site costs one atomic load and a branch; with
    a context whose sink is {!Sink.null} it additionally costs one
    atomic counter increment and allocates nothing (the canonical hot
    counters are pre-resolved at {!make}); event payloads are only
    constructed when {!tracing} says a real sink is attached.

    The context is deliberately immutable and installation is a single
    [Atomic.set], so workers racing a concurrent install/clear observe
    either the old or the new context, never a torn one. *)

type t

val make :
  ?metrics:Metrics.t ->
  ?sink:Sink.t ->
  ?stride:int ->
  ?sched:bool ->
  ?timing:bool ->
  unit ->
  t
(** Defaults: a fresh registry, {!Sink.null}, [stride] 1, [sched]
    false, [timing] true.  [stride] > 0 samples high-frequency events
    (controller steps, fault drops, packet deliveries): an event
    indexed [k] is emitted when [k mod stride = 0].  [sched]
    additionally emits the nondeterministic pool scheduling events
    ([pool.map]/[pool.chunk]), which are excluded from the byte-identity
    contract.  [timing] false zeroes the non-deterministic timing
    channel on span events ([wall_ns]/[alloc_w] — see {!Span}); the CLI
    sets it from [--trace-deterministic]. *)

val metrics : t -> Metrics.t
val sink : t -> Sink.t
val stride : t -> int
val sched : t -> bool
val timing : t -> bool

val ambient : unit -> t option
val install : t -> unit
val clear : unit -> unit

val with_ctx : t -> (unit -> 'a) -> 'a
(** Installs, runs, restores the previous ambient context (exceptions
    included). *)

val tracing : unit -> t option
(** The ambient context when its sink is enabled, else [None] — the
    guard under which instrumentation may build event payloads. *)

val emit : t -> string -> unit
(** [Sink.emit] on the context's sink. *)

val sample : t -> int -> bool
(** [sample c k] is [k mod stride = 0]. *)

(** {2 Hot-counter taps}

    One atomic load + branch when no context is installed; one atomic
    increment otherwise.  Zero allocation. *)

val incr_controller_steps : unit -> unit
val incr_injector_steps : unit -> unit
val incr_injector_drops : unit -> unit
val incr_desim_injections : unit -> unit
val incr_desim_deliveries : unit -> unit
val add_pool_tasks : int -> unit

val incr_named : string -> unit
(** Cold path: get-or-create a counter by name on the ambient registry
    and increment it (no-op without a context).  For run/outcome-level
    events where a hashtable lookup is immaterial. *)
