(** Deterministic, nestable span tracing over the ambient {!Ctx}.

    A span marks a named phase of work (a solve, a sparsity probe, a
    cache lookup, one service request).  Span {e identity} is fully
    deterministic: ids are hierarchical dotted paths assigned by
    arrival order within the parent (["0"], ["0.1"], ["0.1.0"], ...)
    and every start/end ticks a per-scope logical clock, so the span
    stream is byte-identical across runs, machines and [--jobs] values
    — a {!Sink.capture} boundary (how the pool collects each task's
    trace) resets the scope, making ids a function of (task index,
    call structure) only.

    Span {e durations} live in a separate timing channel: [span.end]
    carries [wall_ns] (wall-clock nanoseconds) and [alloc_w] (minor
    heap words allocated).  These are the only nondeterministic trace
    payloads; with the context's [timing] flag off
    ([--trace-deterministic]) both render as [0].

    When no trace is being written, {!with_span} costs one atomic load
    and a branch and allocates nothing (the standing <2% overhead
    contract, re-benched in BENCH.json's ["obs"] section).

    Attribute values are pre-rendered JSON fragments — build them with
    {!Jsonf.string} / {!Jsonf.float_json} / [string_of_int].  Callers
    that must construct attribute lists on a hot path should guard on
    {!Ctx.tracing} first so the list is only built when a sink is
    attached. *)

type t
(** A span handle; a shared no-op value when tracing is off. *)

val off : t
(** The no-op handle (what {!start} returns with tracing off) — useful
    as an initializer. *)

val on : t -> bool
(** [true] when the handle refers to a live span — the guard under
    which callers may build end-attributes for {!finish}. *)

val start : ?attrs:(string * string) list -> string -> t
(** Opens a span named [name] under the innermost open span of this
    domain's scope (or as a new root).  Emits a [span.start] event.
    With tracing off: one atomic load, returns {!off}. *)

val finish : ?attrs:(string * string) list -> t -> unit
(** Closes the span: emits the matching [span.end] carrying the timing
    channel and any end-attributes (e.g. the serving tier, decided only
    after the work ran).  Idempotent; {!off} is a no-op.  Children left
    open (an exception escaped a raw start/finish pair) are abandoned —
    their end event never appears, which {!Trace_report} surfaces as
    unmatched starts. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] wraps [f] in a span (exception-safe: the span is
    finished on unwind).  The common entry point for instrumentation
    sites without end-attributes. *)
