(** Shared JSON-fragment formatting used by every renderer (trace
    events, metric snapshots, provenance manifests) and by the CSV
    export, so numbers print identically everywhere. *)

val float_rt : float -> string
(** [%.17g]: enough digits that parsing the text recovers the exact
    double.  Non-finite values print as [inf]/[-inf]/[nan] (not valid
    JSON — use {!float_json} inside JSON). *)

val float_json : float -> string
(** {!float_rt} for finite floats, ["null"] otherwise. *)

val string : string -> string
(** A quoted, escaped JSON string literal. *)

val add_escaped : Buffer.t -> string -> unit
(** {!string}, appended to a buffer. *)

(** {2 Field scraping}

    Minimal field extraction from the flat one-line JSON objects this
    repo itself renders (service replies, trace events, BENCH.json
    kernel rows) — enough for the churn driver, the trace aggregator
    and the bench comparator without a JSON parser dependency.  [key]
    must name a top-level or embedded field; the {e first} occurrence
    wins. *)

val after_key : string -> key:string -> int option
(** Position just after [{"key":}] in the line, if the key occurs. *)

val string_field : string -> key:string -> string option
val number_field : string -> key:string -> float option
val bool_field : string -> key:string -> bool option
