(** Shared JSON-fragment formatting used by every renderer (trace
    events, metric snapshots, provenance manifests) and by the CSV
    export, so numbers print identically everywhere. *)

val float_rt : float -> string
(** [%.17g]: enough digits that parsing the text recovers the exact
    double.  Non-finite values print as [inf]/[-inf]/[nan] (not valid
    JSON — use {!float_json} inside JSON). *)

val float_json : float -> string
(** {!float_rt} for finite floats, ["null"] otherwise. *)

val string : string -> string
(** A quoted, escaped JSON string literal. *)

val add_escaped : Buffer.t -> string -> unit
(** {!string}, appended to a buffer. *)
