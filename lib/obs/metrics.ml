(* Named counters, gauges and fixed-bucket histograms.

   Hot-path updates are single atomic operations on pre-resolved handles
   — no name lookup, no allocation — so instruments can sit inside the
   controller iteration and the desim event loop, including under the
   multicore pool (several domains updating one counter lose nothing:
   every mutation is an [Atomic] RMW).  Totals are therefore identical
   whatever the degree of parallelism, which keeps the metrics snapshot
   of a pooled sweep comparable across [--jobs] values.

   Name resolution ([counter] / [gauge] / [histogram]) is the cold path:
   a mutex-guarded hashtable, called once per instrument at setup. *)

type counter = { c_name : string; c_cell : int Atomic.t }
type gauge = { g_name : string; g_cell : float Atomic.t }

type histogram = {
  h_name : string;
  bounds : float array;  (* strictly increasing bucket upper bounds *)
  counts : int Atomic.t array;  (* length bounds + 1; last = overflow *)
  h_sum : float Atomic.t;  (* sum of finite observations *)
  decades : bool;  (* bounds are exactly [default_buckets] *)
}

type instrument = C of counter | G of gauge | H of histogram

type t = { lock : Mutex.t; table : (string, instrument) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 64 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered as a different kind" name)

let counter t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (C c) -> c
      | Some _ -> kind_error name
      | None ->
        let c = { c_name = name; c_cell = Atomic.make 0 } in
        Hashtbl.add t.table name (C c);
        c)

let gauge t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (G g) -> g
      | Some _ -> kind_error name
      | None ->
        let g = { g_name = name; g_cell = Atomic.make 0. } in
        Hashtbl.add t.table name (G g);
        g)

(* Powers of ten spanning residuals (1e-12) through delays and step
   counts (1e4): generic enough that one default serves every current
   histogram, fixed so snapshots are comparable across runs.  Written
   as literals so [decade_index]'s compare ladder matches them exactly
   (10. ** k is not guaranteed bit-identical to the literal). *)
let default_buckets =
  [|
    1e-12; 1e-11; 1e-10; 1e-9; 1e-8; 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1;
    1.; 1e1; 1e2; 1e3; 1e4;
  |]

(* Exact bucket index for [default_buckets], as a branch ladder over
   float literals: 3–5 compares, no array loads, no loop — so it stays
   inlinable (classic ocamlopt refuses loops) into per-packet hot paths
   where even a binary search over the bounds is measurable.  NaN fails
   every compare and falls through to the overflow bucket (17), same as
   [bucket_index]. *)
let[@inline] decade_index x =
  if x <= 1e-4 then
    if x <= 1e-8 then
      if x <= 1e-10 then
        if x <= 1e-12 then 0 else if x <= 1e-11 then 1 else 2
      else if x <= 1e-9 then 3
      else 4
    else if x <= 1e-6 then if x <= 1e-7 then 5 else 6
    else if x <= 1e-5 then 7
    else 8
  else if x <= 1. then
    if x <= 1e-2 then (if x <= 1e-3 then 9 else 10)
    else if x <= 1e-1 then 11
    else 12
  else if x <= 1e2 then (if x <= 1e1 then 13 else 14)
  else if x <= 1e3 then 15
  else if x <= 1e4 then 16
  else 17

let histogram ?(buckets = default_buckets) t name =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metrics.histogram: empty bucket list";
  for i = 1 to n - 1 do
    if not (buckets.(i) > buckets.(i - 1)) then
      invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
  done;
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (H h) ->
        if h.bounds <> buckets then
          invalid_arg
            (Printf.sprintf "Metrics: histogram %S re-registered with other buckets"
               name);
        h
      | Some _ -> kind_error name
      | None ->
        let h =
          {
            h_name = name;
            bounds = Array.copy buckets;
            counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0.;
            decades = buckets = default_buckets;
          }
        in
        Hashtbl.add t.table name (H h);
        h)

module Counter = struct
  let incr c = ignore (Atomic.fetch_and_add c.c_cell 1)

  let add c k =
    if k < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    ignore (Atomic.fetch_and_add c.c_cell k)

  let value c = Atomic.get c.c_cell
  let name c = c.c_name
end

module Gauge = struct
  let set g x = Atomic.set g.g_cell x
  let value g = Atomic.get g.g_cell
  let name g = g.g_name
end

module Histogram = struct
  (* Bucket of [x]: first bound with x <= bound ("le" semantics); NaN and
     anything above the last bound land in the overflow bucket.  Default
     decade bounds take the [decade_index] ladder; anything else binary
     searches. *)
  let[@inline] bucket_index h x =
    if h.decades then decade_index x
    else begin
      let bounds = h.bounds in
      let n = Array.length bounds in
      if not (x <= bounds.(n - 1)) then n  (* overflow; also catches NaN *)
      else begin
        let lo = ref 0 and hi = ref (n - 1) in
        (* invariant: x <= bounds.(!hi); bounds below !lo are all < x *)
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if x <= bounds.(mid) then hi := mid else lo := mid + 1
        done;
        !lo
      end
    end

  (* Atomic float accumulation: CAS on the boxed cell.  Non-finite
     observations still count in the overflow bucket but are excluded
     from the sum so one NaN cannot poison it. *)
  let rec add_sum cell x =
    let old = Atomic.get cell in
    if not (Atomic.compare_and_set cell old (old +. x)) then add_sum cell x

  let observe h x =
    ignore (Atomic.fetch_and_add h.counts.(bucket_index h x) 1);
    if Float.is_finite x then add_sum h.h_sum x

  let num_buckets h = Array.length h.counts

  (* Bulk merge for call sites that count observations into a plain
     local array during a tight loop and flush once at the end — one
     atomic RMW per bucket instead of one per observation. *)
  let add_bucket h i n =
    if n < 0 then invalid_arg "Metrics.Histogram.add_bucket: negative count";
    ignore (Atomic.fetch_and_add h.counts.(i) n)

  let count h = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts
  let sum h = Atomic.get h.h_sum

  (* Upper bound of the bucket holding the q-quantile (infinity when it
     falls in the overflow bucket, nan when the histogram is empty).
     q is clamped into [0, 1]; q = 0 reads the first occupied bucket. *)
  let quantile h q =
    let total = count h in
    if total = 0 then Float.nan
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
      let n = Array.length h.bounds in
      let cum = ref 0 and found = ref None and i = ref 0 in
      while !found = None && !i <= n do
        cum := !cum + Atomic.get h.counts.(!i);
        if !cum >= rank then
          found := Some (if !i < n then h.bounds.(!i) else Float.infinity);
        incr i
      done;
      match !found with Some b -> b | None -> Float.infinity
    end

  let name h = h.h_name

  (* The documented merge path for per-domain tallies: a [Local] is a
     plain (non-atomic) shadow of its parent's buckets, observed in a
     tight loop with zero synchronization, then [flush]ed — one atomic
     RMW per occupied bucket plus one CAS for the sum, instead of one
     per observation.  Flush from the owning domain only; the parent
     may be shared. *)
  module Local = struct
    (* The sum lives in a 1-slot float array (flat, unboxed): a mutable
       float field in this mixed record would re-box on every store —
       one minor allocation per observation, measurable in per-packet
       hot loops. *)
    type nonrec t = {
      parent : histogram;
      l_counts : int array;
      l_sum : float array;
    }

    let create parent =
      {
        parent;
        l_counts = Array.make (Array.length parent.counts) 0;
        l_sum = [| 0. |];
      }

    let[@inline] observe l x =
      let i = bucket_index l.parent x in
      l.l_counts.(i) <- l.l_counts.(i) + 1;
      if Float.is_finite x then l.l_sum.(0) <- l.l_sum.(0) +. x

    let flush l =
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            ignore (Atomic.fetch_and_add l.parent.counts.(i) n);
            l.l_counts.(i) <- 0
          end)
        l.l_counts;
      if l.l_sum.(0) <> 0. then begin
        add_sum l.parent.h_sum l.l_sum.(0);
        l.l_sum.(0) <- 0.
      end
  end
end

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      bounds : float array;
      counts : int array;
      total : int;
      sum : float;
    }

type snapshot = (string * value) list

let snapshot t =
  let rows =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun name ins acc ->
            let v =
              match ins with
              | C c -> Counter_v (Counter.value c)
              | G g -> Gauge_v (Gauge.value g)
              | H h ->
                let counts = Array.map Atomic.get h.counts in
                Histogram_v
                  {
                    bounds = Array.copy h.bounds;
                    counts;
                    total = Array.fold_left ( + ) 0 counts;
                    sum = Atomic.get h.h_sum;
                  }
            in
            (name, v) :: acc)
          t.table [])
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

let reset t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ ins ->
          match ins with
          | C c -> Atomic.set c.c_cell 0
          | G g -> Atomic.set g.g_cell 0.
          | H h ->
            Array.iter (fun cell -> Atomic.set cell 0) h.counts;
            Atomic.set h.h_sum 0.)
        t.table)

(* Renderers.  [%.17g] round-trips every finite float; non-finite values
   become "null" in JSON and their usual names in text. *)
let text_float x =
  if Float.is_nan x then "nan"
  else if x = Float.infinity then "inf"
  else if x = Float.neg_infinity then "-inf"
  else Jsonf.float_rt x

let render_text snap =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      (match v with
      | Counter_v n -> Printf.bprintf buf "counter   %-40s %d" name n
      | Gauge_v x -> Printf.bprintf buf "gauge     %-40s %s" name (text_float x)
      | Histogram_v { bounds; counts; total; sum } ->
        Printf.bprintf buf "histogram %-40s total=%d sum=%s" name total
          (text_float sum);
        Array.iteri
          (fun i c ->
            if c > 0 then
              Printf.bprintf buf " le(%s)=%d"
                (if i < Array.length bounds then Printf.sprintf "%g" bounds.(i)
                 else "inf")
                c)
          counts);
      Buffer.add_char buf '\n')
    snap;
  Buffer.contents buf

(* [pretty] interleaves the newline-and-indent separators of the
   manifest format; the compact form (one line, no spaces) is what the
   service's [metrics] verb returns, since protocol replies are one
   line each. *)
let render_json_gen ~pretty snap =
  let buf = Buffer.create 1024 in
  let sp = if pretty then " " else "" in
  Buffer.add_string buf "[";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",";
      if pretty then Buffer.add_string buf "\n  ";
      match v with
      | Counter_v n ->
        Printf.bprintf buf "{\"name\":%s%s,%s\"kind\":%s\"counter\",%s\"value\":%s%d}"
          sp (Jsonf.string name) sp sp sp sp n
      | Gauge_v x ->
        Printf.bprintf buf "{\"name\":%s%s,%s\"kind\":%s\"gauge\",%s\"value\":%s%s}"
          sp (Jsonf.string name) sp sp sp sp (Jsonf.float_json x)
      | Histogram_v { bounds; counts; total; sum } ->
        Printf.bprintf buf
          "{\"name\":%s%s,%s\"kind\":%s\"histogram\",%s\"total\":%s%d,%s\"sum\":%s%s,%s\"buckets\":%s["
          sp (Jsonf.string name) sp sp sp sp total sp sp (Jsonf.float_json sum)
          sp sp;
        Array.iteri
          (fun i c ->
            if i > 0 then Buffer.add_string buf (if pretty then ", " else ",");
            Printf.bprintf buf "{\"le\":%s%s,%s\"count\":%s%d}" sp
              (if i < Array.length bounds then Jsonf.float_json bounds.(i)
               else "null")
              sp sp c)
          counts;
        Buffer.add_string buf "]}")
    snap;
  if pretty then Buffer.add_string buf "\n";
  Buffer.add_string buf "]";
  Buffer.contents buf

let render_json snap = render_json_gen ~pretty:true snap
let render_json_line snap = render_json_gen ~pretty:false snap

(* Prometheus text exposition.  Instrument names are dotted internally;
   the exposition flattens them to [ffc_] + underscores.  Histograms
   render cumulative [_bucket{le="..."}] series plus [_sum]/[_count],
   per the exposition format. *)
let prom_name name =
  let mapped =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name
  in
  "ffc_" ^ mapped

let prom_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else Jsonf.float_rt x

let render_prometheus snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      match v with
      | Counter_v c ->
        Printf.bprintf buf "# TYPE %s counter\n%s %d\n" n n c
      | Gauge_v x ->
        Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" n n (prom_float x)
      | Histogram_v { bounds; counts; total; sum } ->
        Printf.bprintf buf "# TYPE %s histogram\n" n;
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            cum := !cum + c;
            let le =
              if i < Array.length bounds then Printf.sprintf "%g" bounds.(i)
              else "+Inf"
            in
            Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" n le !cum)
          counts;
        Printf.bprintf buf "%s_sum %s\n" n (prom_float sum);
        Printf.bprintf buf "%s_count %d\n" n total)
    snap;
  Buffer.contents buf
