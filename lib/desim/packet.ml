type id = int

module Pool = struct
  type t = {
    mutable conn : int array;
    mutable klass : int array;
    mutable hop : int array;
    mutable born : float array;
    mutable work : float array;
    mutable next : int array;  (** Free-list link; -1 terminates. *)
    mutable state : Bytes.t;  (** 0 = free, 1 = in flight. *)
    mutable free_head : int;
    mutable live : int;
    mutable allocated : int;
    max_packets : int;
  }

  let create ?(initial = 1024) ?(max_packets = max_int) () =
    if initial <= 0 then invalid_arg "Packet.Pool.create: initial must be positive";
    if max_packets <= 0 then
      invalid_arg "Packet.Pool.create: max_packets must be positive";
    let n = min (max 16 initial) max_packets in
    {
      conn = Array.make n 0;
      klass = Array.make n 0;
      hop = Array.make n 0;
      born = Array.make n 0.;
      work = Array.make n 0.;
      next = Array.init n (fun i -> if i = n - 1 then -1 else i + 1);
      state = Bytes.make n '\000';
      free_head = 0;
      live = 0;
      allocated = 0;
      max_packets;
    }

  let grow t =
    let n = Array.length t.conn in
    let n' = min (2 * n) t.max_packets in
    let add = n' - n in
    let grow_i a = Array.append a (Array.make add 0) in
    let grow_f a = Array.append a (Array.make add 0.) in
    t.conn <- grow_i t.conn;
    t.klass <- grow_i t.klass;
    t.hop <- grow_i t.hop;
    t.born <- grow_f t.born;
    t.work <- grow_f t.work;
    t.next <-
      Array.append t.next (Array.init add (fun i -> if i = add - 1 then -1 else n + i + 1));
    t.state <- Bytes.cat t.state (Bytes.make add '\000');
    t.free_head <- n

  let alloc t ~conn ~born =
    if t.free_head < 0 then
      if Array.length t.conn < t.max_packets then grow t
      else
        failwith
          (Printf.sprintf
             "Packet.Pool.alloc: pool exhausted (%d packets in flight, max_packets=%d)"
             t.live t.max_packets);
    let id = t.free_head in
    t.free_head <- t.next.(id);
    t.conn.(id) <- conn;
    t.born.(id) <- born;
    t.klass.(id) <- 0;
    t.hop.(id) <- 0;
    t.work.(id) <- 0.;
    Bytes.unsafe_set t.state id '\001';
    t.live <- t.live + 1;
    t.allocated <- t.allocated + 1;
    id

  let free t id =
    if id < 0 || id >= Array.length t.conn || Bytes.get t.state id <> '\001' then
      invalid_arg
        (Printf.sprintf "Packet.Pool.free: packet %d is not in flight (double free?)" id);
    Bytes.unsafe_set t.state id '\000';
    t.next.(id) <- t.free_head;
    t.free_head <- id;
    t.live <- t.live - 1

  let[@inline] conn t id = t.conn.(id)
  let[@inline] born t id = t.born.(id)
  let[@inline] klass t id = t.klass.(id)
  let[@inline] set_klass t id k = t.klass.(id) <- k
  let[@inline] work t id = t.work.(id)
  let[@inline] set_work t id w = t.work.(id) <- w
  let[@inline] hop t id = t.hop.(id)
  let[@inline] set_hop t id h = t.hop.(id) <- h

  let is_live t id = id >= 0 && id < Array.length t.conn && Bytes.get t.state id = '\001'
  let live t = t.live
  let capacity t = Array.length t.conn
  let allocated t = t.allocated
end
