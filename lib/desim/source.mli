(** Poisson packet sources (paper §2.1).

    A source emits packets for one connection with exponential
    interarrival gaps.  The rate is adjustable at runtime ({!set_rate}),
    which is what closed-loop flow control drives: a change takes effect
    from the next scheduled gap (at most one in-flight interarrival uses
    the old rate).

    Packets are allocated from the source's {!Packet.Pool} and handed to
    [emit] as pool ids; the source registers its arrival handler once at
    construction, so steady-state emission allocates nothing. *)

type t

val create :
  sim:Sim.t ->
  rng:Ffc_numerics.Rng.t ->
  pool:Packet.Pool.t ->
  conn:int ->
  rate:float ->
  emit:(Packet.id -> unit) ->
  unit ->
  t
(** [rate] must be non-negative; a zero-rate source never emits. The
    source starts emitting when [start] is called.  [emit] receives each
    packet at its creation instant and owns it from then on (the emitted
    packet is live until some downstream consumer frees it). *)

val start : t -> unit
(** Schedules the first arrival. Idempotent. *)

val rate : t -> float
(** The current sending rate. *)

val set_rate : t -> float -> unit
(** Changes the sending rate.  Raising the rate of a stopped (zero-rate)
    source restarts it; lowering it to zero lets the pending arrival fire
    and then stops.  Rates must be finite and non-negative. *)

val emitted : t -> int
(** Packets emitted so far. *)
