open Ffc_numerics

type occ = {
  mutable level : int;
  mutable window_start : float;
  mutable last_change : float;
  mutable integral : float;
}

type t = {
  occs : (int * int, occ) Hashtbl.t;
  delays : (int, Stats.running) Hashtbl.t;
  delivered : (int, int ref) Hashtbl.t;
  dropped : (int, int ref) Hashtbl.t;
}

let create () =
  {
    occs = Hashtbl.create 32;
    delays = Hashtbl.create 8;
    delivered = Hashtbl.create 8;
    dropped = Hashtbl.create 8;
  }

let occ t key now =
  match Hashtbl.find_opt t.occs key with
  | Some o -> o
  | None ->
    let o = { level = 0; window_start = now; last_change = now; integral = 0. } in
    Hashtbl.add t.occs key o;
    o

let advance o ~now =
  if now < o.last_change then invalid_arg "Measure: time went backwards";
  o.integral <- o.integral +. (float_of_int o.level *. (now -. o.last_change));
  o.last_change <- now

let incr t ~key ~now =
  let o = occ t key now in
  advance o ~now;
  o.level <- o.level + 1

let decr t ~key ~now =
  let o = occ t key now in
  advance o ~now;
  if o.level <= 0 then invalid_arg "Measure.decr: occupancy would go negative";
  o.level <- o.level - 1

let occupancy t ~key =
  match Hashtbl.find_opt t.occs key with Some o -> o.level | None -> 0

let mean_occupancy t ~key ~now =
  match Hashtbl.find_opt t.occs key with
  | None -> 0.
  | Some o ->
    let span = now -. o.window_start in
    if span <= 0. then 0.
    else begin
      let total = o.integral +. (float_of_int o.level *. (now -. o.last_change)) in
      total /. span
    end

let reset t ~now =
  Hashtbl.iter
    (fun _ o ->
      o.window_start <- now;
      o.last_change <- now;
      o.integral <- 0.)
    t.occs;
  Hashtbl.reset t.delays;
  Hashtbl.reset t.delivered;
  Hashtbl.reset t.dropped

let delay_acc t conn =
  match Hashtbl.find_opt t.delays conn with
  | Some acc -> acc
  | None ->
    let acc = Stats.running_create () in
    Hashtbl.add t.delays conn acc;
    acc

let record_delay t ~conn d = Stats.running_add (delay_acc t conn) d

let delay_mean t ~conn =
  match Hashtbl.find_opt t.delays conn with
  | Some acc -> Stats.running_mean acc
  | None -> 0.

let delay_ci95 t ~conn =
  match Hashtbl.find_opt t.delays conn with
  | Some acc -> Stats.running_ci95_halfwidth acc
  | None -> 0.

let delay_count t ~conn =
  match Hashtbl.find_opt t.delays conn with
  | Some acc -> Stats.running_count acc
  | None -> 0

let count_delivery t ~conn =
  match Hashtbl.find_opt t.delivered conn with
  | Some r -> r := !r + 1
  | None -> Hashtbl.add t.delivered conn (ref 1)

let deliveries t ~conn =
  match Hashtbl.find_opt t.delivered conn with Some r -> !r | None -> 0

let count_drop t ~conn =
  match Hashtbl.find_opt t.dropped conn with
  | Some r -> r := !r + 1
  | None -> Hashtbl.add t.dropped conn (ref 1)

let drops t ~conn =
  match Hashtbl.find_opt t.dropped conn with Some r -> !r | None -> 0

module Flat = struct
  type t = {
    offsets : int array;  (** conn -> first slot; length n_conns + 1. *)
    level : int array;
    last : float array;
    integral : float array;
    mutable window_start : float;
    delays : Stats.running array;
    delivered : int array;
    dropped : int array;
  }

  let create ~paths =
    let n = Array.length paths in
    let offsets = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      offsets.(i + 1) <- offsets.(i) + Array.length paths.(i)
    done;
    let slots = offsets.(n) in
    {
      offsets;
      level = Array.make slots 0;
      last = Array.make slots 0.;
      integral = Array.make slots 0.;
      window_start = 0.;
      delays = Array.init n (fun _ -> Stats.running_create ());
      delivered = Array.make n 0;
      dropped = Array.make n 0;
    }

  let[@inline] slot t ~conn ~hop = t.offsets.(conn) + hop

  let num_conns t = Array.length t.delivered
  let num_slots t = Array.length t.level

  let[@inline] advance t s ~now =
    t.integral.(s) <- t.integral.(s) +. (float_of_int t.level.(s) *. (now -. t.last.(s)));
    t.last.(s) <- now

  let incr t ~slot ~now =
    advance t slot ~now;
    t.level.(slot) <- t.level.(slot) + 1

  let decr t ~slot ~now =
    advance t slot ~now;
    if t.level.(slot) <= 0 then
      invalid_arg "Measure.Flat.decr: occupancy would go negative";
    t.level.(slot) <- t.level.(slot) - 1

  let occupancy t ~slot = t.level.(slot)

  let mean_occupancy t ~slot ~now =
    let span = now -. t.window_start in
    if span <= 0. then 0.
    else begin
      let total =
        t.integral.(slot) +. (float_of_int t.level.(slot) *. (now -. t.last.(slot)))
      in
      total /. span
    end

  let reset t ~now =
    t.window_start <- now;
    Array.fill t.integral 0 (Array.length t.integral) 0.;
    Array.fill t.last 0 (Array.length t.last) now;
    Array.fill t.delivered 0 (Array.length t.delivered) 0;
    Array.fill t.dropped 0 (Array.length t.dropped) 0;
    for i = 0 to Array.length t.delays - 1 do
      t.delays.(i) <- Stats.running_create ()
    done

  let record_delay t ~conn d = Stats.running_add t.delays.(conn) d
  let delay_mean t ~conn = Stats.running_mean t.delays.(conn)
  let delay_ci95 t ~conn = Stats.running_ci95_halfwidth t.delays.(conn)
  let delay_count t ~conn = Stats.running_count t.delays.(conn)
  let delay_stats t ~conn = t.delays.(conn)

  let[@inline] count_delivery t ~conn =
    t.delivered.(conn) <- t.delivered.(conn) + 1

  let deliveries t ~conn = t.delivered.(conn)

  let[@inline] count_drop t ~conn = t.dropped.(conn) <- t.dropped.(conn) + 1
  let drops t ~conn = t.dropped.(conn)
end
