(** Pluggable event scheduler: reference binary heap or timing wheel.

    Both back ends order coded events by [(time, schedule sequence)] —
    the determinism contract of {!Sim} — so the choice never changes a
    simulation's results, only its speed.  [Heap] is {!Event_heap}, the
    original O(log n) scheduler kept as the reference implementation;
    [Wheel] is the O(1)-amortized {!Timing_wheel}.  Popped fields are
    read back through accessors instead of a returned tuple so that the
    hot path allocates nothing. *)

type kind =
  | Heap
  | Wheel of { tick : float }
      (** [tick]: level-0 slot width, ideally near the mean event
          spacing; see {!auto_tick}. *)

type t

val create : kind -> t
(** Raises [Invalid_argument] for a non-positive or non-finite wheel
    [tick]. *)

val kind : t -> kind

val auto_tick : events_per_time:float -> float
(** A good wheel tick for a workload expected to execute
    [events_per_time] events per simulated time unit: the mean event
    spacing, clamped to a sane range.  Any positive value is correct;
    this one keeps ready-heap occupancy near one event per tick. *)

val schedule : t -> time:float -> handler:int -> a:int -> b:int -> unit
(** Raises [Invalid_argument] on non-finite or negative [time]. *)

val pop : t -> bool
(** Removes the earliest event; [false] when empty.  On [true], read
    the event through {!popped_time} .. {!popped_b} until the next
    [pop]. *)

val popped_time : t -> float

val popped_handler : t -> int

val popped_a : t -> int

val popped_b : t -> int

val next_time : t -> float
(** Earliest pending time; [infinity] when empty. *)

val size : t -> int
