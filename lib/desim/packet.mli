(** Packets as pool indices over struct-of-arrays storage.

    A packet is an [int] handle into a {!Pool}: preallocated parallel
    arrays hold each field, a free list recycles slots, and allocation
    never boxes — the `PacketDB` pattern of htsim, which is what lets
    the simulator carry 10⁵–10⁶ packets without allocator or GC
    pressure on the event hot path.

    A handle is live from {!Pool.alloc} until {!Pool.free}; the pool
    never hands the same id to two in-flight packets, and [free]ing a
    non-live handle raises (catching double frees in tests). *)

type id = int
(** A live packet handle.  Field accessors are only meaningful between
    the packet's [alloc] and [free]. *)

module Pool : sig
  type t

  val create : ?initial:int -> ?max_packets:int -> unit -> t
  (** [initial] slots are preallocated (default 1024, minimum 16) and
      the pool doubles on demand up to [max_packets] (default:
      unbounded).  Raises [Invalid_argument] on non-positive sizes. *)

  val alloc : t -> conn:int -> born:float -> id
  (** A fresh packet with class 0, no work, hop 0.  Raises [Failure]
      with a diagnostic message when [max_packets] packets are already
      in flight. *)

  val free : t -> id -> unit
  (** Returns the slot to the free list.  Raises [Invalid_argument]
      when [id] is not in flight (double free or stale handle). *)

  val conn : t -> id -> int
  (** Connection index, fixed at [alloc]. *)

  val born : t -> id -> float
  (** Creation time, for end-to-end delay measurement. *)

  val klass : t -> id -> int
  (** Priority class for the preemptive-priority (Fair Share)
      discipline; 0 is the highest priority.  Re-assigned per gateway
      by the FS thinning.  Ignored by FIFO. *)

  val set_klass : t -> id -> int -> unit

  val work : t -> id -> float
  (** Remaining service requirement at the current gateway, in units of
      normalized work (service time = work/μ).  Re-drawn at each
      gateway per the paper's Poisson-output independence assumption. *)

  val set_work : t -> id -> float -> unit

  val hop : t -> id -> int
  (** Index of the packet's current gateway within its connection's
      path — carried in the packet so forwarding needs no path scan. *)

  val set_hop : t -> id -> int -> unit

  val is_live : t -> id -> bool

  val live : t -> int
  (** Packets currently in flight. *)

  val capacity : t -> int
  (** Allocated slots (grows; never shrinks). *)

  val allocated : t -> int
  (** Total [alloc] calls over the pool's lifetime. *)
end
