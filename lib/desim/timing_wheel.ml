let slot_bits = 8
let slots = 1 lsl slot_bits
let mask = slots - 1
let levels = 3

(* Ticks at or beyond [2^60] would overflow the int arithmetic of slot
   indexing long before any realistic simulation reaches them. *)
let max_tick_f = 1152921504606846976. (* 2^60 *)

type t = {
  tick : float;
  inv_tick : float;
  (* Event pool, struct of arrays; [ev_next] doubles as the free-list
     link and the slot-chain link. *)
  mutable ev_time : float array;
  mutable ev_seq : int array;
  mutable ev_h : int array;
  mutable ev_a : int array;
  mutable ev_b : int array;
  mutable ev_tick : int array;
  mutable ev_next : int array;
  mutable free_head : int;
  (* Wheel slots, [levels * slots] flattened; each entry heads an
     intrusive chain of event indices, -1 when empty. *)
  wheel : int array;
  counts : int array;  (** Live events per level. *)
  mutable cur : int;  (** Current tick; all pending events are >= it. *)
  (* Events of the current tick, a binary min-heap by (time, seq). *)
  mutable ready : int array;
  mutable ready_len : int;
  (* Events beyond the level-2 window, a binary min-heap by (time, seq). *)
  mutable over : int array;
  mutable over_len : int;
  mutable size : int;
  mutable next_seq : int;
  mutable popped_time : float;
  mutable popped_h : int;
  mutable popped_a : int;
  mutable popped_b : int;
}

let create ?(initial = 64) ~tick () =
  if (not (Float.is_finite tick)) || tick <= 0. then
    invalid_arg "Timing_wheel.create: tick must be finite and positive";
  let n = max 16 initial in
  let t =
    {
      tick;
      inv_tick = 1. /. tick;
      ev_time = Array.make n 0.;
      ev_seq = Array.make n 0;
      ev_h = Array.make n 0;
      ev_a = Array.make n 0;
      ev_b = Array.make n 0;
      ev_tick = Array.make n 0;
      ev_next = Array.init n (fun i -> if i = n - 1 then -1 else i + 1);
      free_head = 0;
      wheel = Array.make (levels * slots) (-1);
      counts = Array.make levels 0;
      cur = 0;
      ready = Array.make 16 0;
      ready_len = 0;
      over = Array.make 16 0;
      over_len = 0;
      size = 0;
      next_seq = 0;
      popped_time = 0.;
      popped_h = 0;
      popped_a = 0;
      popped_b = 0;
    }
  in
  t

let tick t = t.tick
let size t = t.size

let grow_pool t =
  let n = Array.length t.ev_time in
  let grow_f a = Array.append a (Array.make n 0.) in
  let grow_i a = Array.append a (Array.make n 0) in
  t.ev_time <- grow_f t.ev_time;
  t.ev_seq <- grow_i t.ev_seq;
  t.ev_h <- grow_i t.ev_h;
  t.ev_a <- grow_i t.ev_a;
  t.ev_b <- grow_i t.ev_b;
  t.ev_tick <- grow_i t.ev_tick;
  t.ev_next <- Array.append t.ev_next (Array.init n (fun i -> if i = n - 1 then -1 else n + i + 1));
  t.free_head <- n

(* (time, seq) ordering shared by the ready and overflow heaps. *)
let[@inline] before t i j =
  t.ev_time.(i) < t.ev_time.(j)
  || (t.ev_time.(i) = t.ev_time.(j) && t.ev_seq.(i) < t.ev_seq.(j))

let heap_push t heap len idx =
  let heap = if len = Array.length heap then Array.append heap (Array.make len 0) else heap in
  heap.(len) <- idx;
  let i = ref len in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    before t heap.(!i) heap.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = heap.(p) in
    heap.(p) <- heap.(!i);
    heap.(!i) <- tmp;
    i := p
  done;
  heap

let heap_pop t heap len =
  let root = heap.(0) in
  let last = len - 1 in
  heap.(0) <- heap.(last);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < last && before t heap.(l) heap.(!s) then s := l;
    if r < last && before t heap.(r) heap.(!s) then s := r;
    if !s = !i then continue := false
    else begin
      let tmp = heap.(!s) in
      heap.(!s) <- heap.(!i);
      heap.(!i) <- tmp;
      i := !s
    end
  done;
  root

let[@inline] ready_push t idx =
  t.ready <- heap_push t t.ready t.ready_len idx;
  t.ready_len <- t.ready_len + 1

let[@inline] over_push t idx =
  t.over <- heap_push t t.over t.over_len idx;
  t.over_len <- t.over_len + 1

(* Place event [idx] into the ready heap, a wheel level, or the overflow
   heap, according to how far its tick lies from [cur].  Level k holds
   events sharing the level-(k+1) block prefix with [cur] but not the
   level-k one — the invariant the cascades below maintain. *)
let route t idx =
  let tk = t.ev_tick.(idx) in
  let cur = t.cur in
  if tk <= cur then ready_push t idx
  else begin
    let level =
      if tk lsr slot_bits = cur lsr slot_bits then 0
      else if tk lsr (2 * slot_bits) = cur lsr (2 * slot_bits) then 1
      else if tk lsr (3 * slot_bits) = cur lsr (3 * slot_bits) then 2
      else -1
    in
    if level < 0 then over_push t idx
    else begin
      let slot = (tk lsr (level * slot_bits)) land mask in
      let cell = (level * slots) + slot in
      t.ev_next.(idx) <- t.wheel.(cell);
      t.wheel.(cell) <- idx;
      t.counts.(level) <- t.counts.(level) + 1
    end
  end

let schedule t ~time ~handler ~a ~b =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Timing_wheel.schedule: time must be finite and non-negative";
  let ticks_f = time *. t.inv_tick in
  if ticks_f >= max_tick_f then
    invalid_arg "Timing_wheel.schedule: time beyond wheel range for tick width";
  if t.free_head < 0 then grow_pool t;
  let idx = t.free_head in
  t.free_head <- t.ev_next.(idx);
  t.ev_time.(idx) <- time;
  t.ev_seq.(idx) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.ev_h.(idx) <- handler;
  t.ev_a.(idx) <- a;
  t.ev_b.(idx) <- b;
  t.ev_tick.(idx) <- int_of_float ticks_f;
  t.size <- t.size + 1;
  route t idx

(* Move the chain of wheel cell [cell] (at [level]) off the wheel and
   re-route each event relative to the advanced [cur]. *)
let drain_cell t level cell =
  let idx = ref t.wheel.(cell) in
  t.wheel.(cell) <- -1;
  while !idx >= 0 do
    let next = t.ev_next.(!idx) in
    t.counts.(level) <- t.counts.(level) - 1;
    route t !idx;
    idx := next
  done

(* Advance [cur] until the ready heap holds the earliest pending events.
   Precondition: size > 0.  A cascade may route events of several
   successive ticks into the ready heap at once; the heap's (time, seq)
   ordering keeps the pop order exact regardless. *)
let rec refill t =
  if t.ready_len > 0 then ()
  else if t.counts.(0) > 0 then begin
    (* The next events are in the current level-0 block: scan forward
       from [cur]'s slot.  All level-0 events live at residues >= cur's,
       so the scan cannot fall off the end. *)
    let s = ref (t.cur land mask) in
    while t.wheel.(!s) < 0 do
      incr s
    done;
    t.cur <- (t.cur land lnot mask) lor !s;
    drain_cell t 0 !s
    (* Every event in that cell has tick = cur, so [route] sent it to
       the ready heap: done. *)
  end
  else if t.counts.(1) > 0 then begin
    let s = ref (((t.cur lsr slot_bits) land mask) + 1) in
    while t.wheel.(slots + !s) < 0 do
      incr s
    done;
    t.cur <- (t.cur lsr (2 * slot_bits)) lsl (2 * slot_bits) lor (!s lsl slot_bits);
    drain_cell t 1 (slots + !s);
    refill t
  end
  else if t.counts.(2) > 0 then begin
    let s = ref (((t.cur lsr (2 * slot_bits)) land mask) + 1) in
    while t.wheel.((2 * slots) + !s) < 0 do
      incr s
    done;
    t.cur <-
      (t.cur lsr (3 * slot_bits)) lsl (3 * slot_bits) lor (!s lsl (2 * slot_bits));
    drain_cell t 2 ((2 * slots) + !s);
    refill t
  end
  else begin
    (* Everything pending is past the level-2 window: jump to the
       overflow's earliest level-2 block and pull that block in. *)
    let top = t.over.(0) in
    t.cur <- (t.ev_tick.(top) lsr (3 * slot_bits)) lsl (3 * slot_bits);
    let block = t.cur lsr (3 * slot_bits) in
    while t.over_len > 0 && t.ev_tick.(t.over.(0)) lsr (3 * slot_bits) = block do
      let idx = heap_pop t t.over t.over_len in
      t.over_len <- t.over_len - 1;
      route t idx
    done;
    refill t
  end

let pop t =
  if t.size = 0 then false
  else begin
    if t.ready_len = 0 then refill t;
    let idx = heap_pop t t.ready t.ready_len in
    t.ready_len <- t.ready_len - 1;
    t.popped_time <- t.ev_time.(idx);
    t.popped_h <- t.ev_h.(idx);
    t.popped_a <- t.ev_a.(idx);
    t.popped_b <- t.ev_b.(idx);
    t.ev_next.(idx) <- t.free_head;
    t.free_head <- idx;
    t.size <- t.size - 1;
    true
  end

let next_time t =
  if t.size = 0 then Float.infinity
  else begin
    if t.ready_len = 0 then refill t;
    t.ev_time.(t.ready.(0))
  end

let popped_time t = t.popped_time
let popped_handler t = t.popped_h
let popped_a t = t.popped_a
let popped_b t = t.popped_b
