(** Binary min-heap of timestamped events.

    Orders by time, breaking ties by insertion sequence so that events
    scheduled earlier fire earlier — a determinism guarantee the
    simulator's reproducibility relies on. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** [time] must be finite. *)

val pop_min : 'a t -> (float * 'a) option
(** Removes and returns the earliest event; [None] when empty.  The
    vacated slot is cleared so the popped payload is no longer reachable
    from the heap, and the backing array shrinks once it is at most a
    quarter full. *)

val peek_min : 'a t -> (float * 'a) option

val size : 'a t -> int

val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Length of the backing array — exposed so tests can observe the
    grow/shrink policy. *)
