(** Discrete-event simulation core: a clock and an event calendar.

    Events execute in timestamp order (ties broken by scheduling order);
    executing an event may schedule further events.  Time never flows
    backwards.

    Two scheduling APIs share one calendar:

    - {!schedule}/{!schedule_after} take a thunk — the convenient form
      for setup and tests; each call boxes one closure.
    - {!register} + {!schedule_code} is the allocation-free hot path:
      an entity registers its handler once at construction and then
      schedules coded events [(handler, a, b)] — no closure and (with
      the timing-wheel scheduler) no heap node per event.

    The calendar itself is pluggable ({!Scheduler.kind}): the reference
    binary heap or the O(1)-amortized timing wheel.  Both obey the same
    ordering contract, so results never depend on the choice. *)

type t

val create : ?scheduler:Scheduler.kind -> unit -> t
(** Default scheduler: a timing wheel with a 1/64 time-unit tick. *)

val now : t -> float
(** Current simulation time (0 before the first event). *)

val register : t -> (int -> int -> unit) -> int
(** Registers an event handler and returns its code for
    {!schedule_code}.  Handlers live for the simulation's lifetime. *)

val schedule_code : t -> at:float -> handler:int -> a:int -> b:int -> unit
(** Schedules [(handler, a, b)] at absolute time [at].  Raises
    [Invalid_argument] when [at] is in the past or non-finite. *)

val schedule_code_after : t -> delay:float -> handler:int -> a:int -> b:int -> unit
(** [delay] must be non-negative and finite. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Raises [Invalid_argument] when [at] is in the past or non-finite. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** [delay] must be non-negative and finite. *)

val step : t -> bool
(** Executes the next event; [false] when the calendar is empty. *)

val run : ?until:float -> t -> unit
(** Executes events until the calendar empties or the next event is past
    [until]; the clock is then advanced to [until] when given (so
    time-weighted measurements can close their window there). *)

val pending : t -> int
(** Number of scheduled events. *)

val events : t -> int
(** Events executed so far — the simulator's work counter. *)
