type t = {
  sched : Scheduler.t;
  mutable clock : float;
  mutable handlers : (int -> int -> unit) array;
  mutable n_handlers : int;
  (* Slot table for the thunk-compatibility path (handler 0): each
     scheduled thunk parks in a recycled slot addressed by the event's
     [a] argument. *)
  mutable thunks : (unit -> unit) array;
  mutable thunk_free : int list;
  mutable n_thunks : int;
  mutable events : int;
}

let no_thunk () = ()

let default_scheduler = Scheduler.Wheel { tick = 0.015625 }

let create ?(scheduler = default_scheduler) () =
  let t =
    {
      sched = Scheduler.create scheduler;
      clock = 0.;
      handlers = Array.make 8 (fun _ _ -> ());
      n_handlers = 0;
      thunks = Array.make 8 no_thunk;
      thunk_free = [];
      n_thunks = 0;
      events = 0;
    }
  in
  (* Handler 0: run and release the thunk in slot [a]. *)
  t.handlers.(0) <-
    (fun a _ ->
      let f = t.thunks.(a) in
      t.thunks.(a) <- no_thunk;
      t.thunk_free <- a :: t.thunk_free;
      f ());
  t.n_handlers <- 1;
  t

let now t = t.clock

let register t f =
  if t.n_handlers = Array.length t.handlers then begin
    let bigger = Array.make (2 * t.n_handlers) t.handlers.(0) in
    Array.blit t.handlers 0 bigger 0 t.n_handlers;
    t.handlers <- bigger
  end;
  t.handlers.(t.n_handlers) <- f;
  t.n_handlers <- t.n_handlers + 1;
  t.n_handlers - 1

let schedule_code t ~at ~handler ~a ~b =
  if not (Float.is_finite at) then invalid_arg "Sim.schedule: non-finite time";
  if at < t.clock then invalid_arg "Sim.schedule: time in the past";
  Scheduler.schedule t.sched ~time:at ~handler ~a ~b

let schedule_code_after t ~delay ~handler ~a ~b =
  if (not (Float.is_finite delay)) || delay < 0. then
    invalid_arg "Sim.schedule_after: bad delay";
  schedule_code t ~at:(t.clock +. delay) ~handler ~a ~b

let schedule t ~at thunk =
  if not (Float.is_finite at) then invalid_arg "Sim.schedule: non-finite time";
  if at < t.clock then invalid_arg "Sim.schedule: time in the past";
  let slot =
    match t.thunk_free with
    | s :: rest ->
      t.thunk_free <- rest;
      s
    | [] ->
      if t.n_thunks = Array.length t.thunks then begin
        let bigger = Array.make (2 * t.n_thunks) no_thunk in
        Array.blit t.thunks 0 bigger 0 t.n_thunks;
        t.thunks <- bigger
      end;
      t.n_thunks <- t.n_thunks + 1;
      t.n_thunks - 1
  in
  t.thunks.(slot) <- thunk;
  Scheduler.schedule t.sched ~time:at ~handler:0 ~a:slot ~b:0

let schedule_after t ~delay thunk =
  if (not (Float.is_finite delay)) || delay < 0. then
    invalid_arg "Sim.schedule_after: bad delay";
  schedule t ~at:(t.clock +. delay) thunk

let step t =
  if Scheduler.pop t.sched then begin
    t.clock <- Scheduler.popped_time t.sched;
    t.events <- t.events + 1;
    (t.handlers.(Scheduler.popped_handler t.sched))
      (Scheduler.popped_a t.sched) (Scheduler.popped_b t.sched);
    true
  end
  else false

let run ?until t =
  (match until with
  | None -> while step t do () done
  | Some stop -> while Scheduler.next_time t.sched <= stop && step t do () done);
  match until with
  | Some stop when stop > t.clock -> t.clock <- stop
  | Some _ | None -> ()

let pending t = Scheduler.size t.sched

let events t = t.events
