(* Slots beyond [len] are [Empty] so that popped entries — and their
   payloads — are not kept reachable from the backing array. *)
type 'a slot = Empty | Entry of { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a slot array;
  mutable len : int;
  mutable next_seq : int;
}

let min_capacity = 16

let create () = { data = [||]; len = 0; next_seq = 0 }

let precedes a b =
  match (a, b) with
  | Entry a, Entry b -> a.time < b.time || (a.time = b.time && a.seq < b.seq)
  | Empty, _ | _, Empty -> assert false

let resize t cap =
  let data = Array.make cap Empty in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let grow t =
  let cap = Array.length t.data in
  if t.len = cap then resize t (Stdlib.max min_capacity (cap * 2))

(* Release the unused tail once the heap occupies at most a quarter of
   its capacity, so a burst of events does not pin memory forever. *)
let shrink t =
  let cap = Array.length t.data in
  if cap > min_capacity && t.len <= cap / 4 then
    resize t (Stdlib.max min_capacity (cap / 2))

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && precedes t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && precedes t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time payload =
  if not (Float.is_finite time) then invalid_arg "Event_heap.push: non-finite time";
  let entry = Entry { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop_min t =
  if t.len = 0 then None
  else begin
    match t.data.(0) with
    | Empty -> assert false
    | Entry min ->
      t.len <- t.len - 1;
      t.data.(0) <- t.data.(t.len);
      t.data.(t.len) <- Empty;
      if t.len > 0 then sift_down t 0;
      shrink t;
      Some (min.time, min.payload)
  end

let peek_min t =
  if t.len = 0 then None
  else
    match t.data.(0) with
    | Empty -> assert false
    | Entry e -> Some (e.time, e.payload)

let size t = t.len

let is_empty t = t.len = 0

let capacity t = Array.length t.data
