type kind = Heap | Wheel of { tick : float }

type t = {
  k : kind;
  heap : (int * int * int) Event_heap.t;  (** Used when [k = Heap]. *)
  wheel : Timing_wheel.t;  (** Used when [k = Wheel _]. *)
  mutable last_time : float;
  mutable last_h : int;
  mutable last_a : int;
  mutable last_b : int;
}

let auto_tick ~events_per_time =
  if (not (Float.is_finite events_per_time)) || events_per_time <= 0. then 1.
  else Float.min 1e6 (Float.max 1e-9 (1. /. events_per_time))

let create k =
  let tick = match k with Heap -> 1. | Wheel { tick } -> tick in
  {
    k;
    heap = Event_heap.create ();
    wheel = Timing_wheel.create ~tick ();
    last_time = 0.;
    last_h = 0;
    last_a = 0;
    last_b = 0;
  }

let kind t = t.k

let schedule t ~time ~handler ~a ~b =
  match t.k with
  | Heap ->
    if not (Float.is_finite time) || time < 0. then
      invalid_arg "Scheduler.schedule: time must be finite and non-negative";
    Event_heap.push t.heap ~time (handler, a, b)
  | Wheel _ -> Timing_wheel.schedule t.wheel ~time ~handler ~a ~b

let pop t =
  match t.k with
  | Heap -> (
    match Event_heap.pop_min t.heap with
    | None -> false
    | Some (time, (h, a, b)) ->
      t.last_time <- time;
      t.last_h <- h;
      t.last_a <- a;
      t.last_b <- b;
      true)
  | Wheel _ ->
    if Timing_wheel.pop t.wheel then begin
      t.last_time <- Timing_wheel.popped_time t.wheel;
      t.last_h <- Timing_wheel.popped_handler t.wheel;
      t.last_a <- Timing_wheel.popped_a t.wheel;
      t.last_b <- Timing_wheel.popped_b t.wheel;
      true
    end
    else false

let popped_time t = t.last_time
let popped_handler t = t.last_h
let popped_a t = t.last_a
let popped_b t = t.last_b

let next_time t =
  match t.k with
  | Heap -> (
    match Event_heap.peek_min t.heap with Some (time, _) -> time | None -> Float.infinity)
  | Wheel _ -> Timing_wheel.next_time t.wheel

let size t =
  match t.k with Heap -> Event_heap.size t.heap | Wheel _ -> Timing_wheel.size t.wheel
