(** Queue disciplines for the simulated gateways.

    Three disciplines are provided:
    - [Fifo] — arrival order, the baseline of the paper;
    - [Preemptive_priority] — serves the lowest [klass] first, preempting
      the packet in service when a strictly higher-priority packet
      arrives; combined with the Fair Share thinning of sources this
      realizes the FS discipline of §2.2 exactly;
    - [Fair_queueing] — the bid-based packet-level approximation of
      head-of-line processor sharing from Demers–Keshav–Shenker
      [Dem89], non-preemptive, which §4 discusses as the realistic
      counterpart of Fair Share.

    A [buffer] holds waiting packet ids and is bound to the
    {!Packet.Pool} carrying their fields; the server drives it through
    [enqueue]/[dequeue] and consults [preempts] on arrivals.  FIFO and
    priority buffers store ids in growable int rings — no allocation
    per packet on the hot path. *)

type t = Fifo | Preemptive_priority | Fair_queueing

type buffer

val buffer : t -> pool:Packet.Pool.t -> buffer

val enqueue : buffer -> Packet.id -> unit
(** Adds a packet to the waiting set.  For [Fair_queueing] this also
    assigns the packet its finish-number bid from the connection's
    previous finish number and the current virtual time. *)

val dequeue : buffer -> Packet.id
(** Removes the next packet to serve, or [-1] when empty: head of line
    (FIFO), lowest class with FCFS within class and resumed packets
    first ([Preemptive_priority]), or smallest bid ([Fair_queueing],
    which also advances the virtual time). *)

val requeue_front : buffer -> Packet.id -> unit
(** Puts a preempted packet back so it resumes before any waiting packet
    of its own class. Only meaningful for [Preemptive_priority]. *)

val preempts : buffer -> incoming:Packet.id -> in_service:Packet.id -> bool
(** Whether the incoming packet must preempt the one in service. *)

val waiting : buffer -> int
(** Number of packets currently buffered (excluding any in service). *)
