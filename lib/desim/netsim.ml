open Ffc_numerics
open Ffc_topology

type discipline = Fifo | Fs_priority | Fair_queueing

type result = {
  net : Network.t;
  measure : Measure.t;
  horizon : float;
  window : float;
}

(* Fair Share thinning: for a connection with rate [r] at a gateway whose
   local sorted rates produce level increments [incr], the packet belongs
   to level j with probability incr.(j)/r for each level the connection
   participates in (those with threshold <= r).  Precomputes the
   cumulative distribution as (class, cumulative rate) pairs. *)
let fs_class_table ~local_rates ~rate =
  if rate <= 0. then [||]
  else begin
    let sorted = Vec.sorted_increasing local_rates in
    let entries = ref [] in
    let cum = ref 0. in
    Array.iteri
      (fun j threshold ->
        let increment = if j = 0 then threshold else threshold -. sorted.(j - 1) in
        if increment > 0. && threshold <= rate then begin
          cum := !cum +. increment;
          entries := (j, !cum) :: !entries
        end)
      sorted;
    Array.of_list (List.rev !entries)
  end

let draw_fs_class table rng ~rate =
  let u = Rng.uniform rng *. rate in
  let n = Array.length table in
  let rec go i =
    if i >= n - 1 then fst table.(n - 1)
    else begin
      let _, cum = table.(i) in
      if u <= cum then fst table.(i) else go (i + 1)
    end
  in
  if n = 0 then 0 else go 0

let qdisc_of = function
  | Fifo -> Qdisc.Fifo
  | Fs_priority -> Qdisc.Preemptive_priority
  | Fair_queueing -> Qdisc.Fair_queueing

let run ~net ~rates ~discipline ~seed ?warmup ~horizon () =
  let n_conns = Network.num_connections net in
  let n_gws = Network.num_gateways net in
  if Array.length rates <> n_conns then
    invalid_arg "Netsim.run: rates length mismatch";
  Array.iter
    (fun r ->
      if (not (Float.is_finite r)) || r < 0. then
        invalid_arg "Netsim.run: rates must be finite and non-negative")
    rates;
  let warmup = match warmup with Some w -> w | None -> 0.1 *. horizon in
  if not (horizon > warmup && warmup >= 0.) then
    invalid_arg "Netsim.run: need horizon > warmup >= 0";
  let sim = Sim.create () in
  let root_rng = Rng.create seed in
  let measure = Measure.create () in
  Ffc_obs.Ctx.incr_named "desim.runs";
  (* Metrics are tallied into plain locals during the event loop and
     merged into the registry once at the end of the run: per-packet
     atomic RMWs on shared counters cost several percent of the whole
     simulation, which would break the < 2% null-sink overhead
     contract.  The merge is equivalent — a run's totals are
     deterministic — and runs in parallel domains still combine
     correctly because the final merge is atomic. *)
  let obs_ctx = Ffc_obs.Ctx.ambient () in
  let delay_hist =
    match obs_ctx with
    | Some c ->
      Some (Ffc_obs.Metrics.histogram (Ffc_obs.Ctx.metrics c) "desim.delay")
    | None -> None
  in
  let injections = ref 0 and deliveries = ref 0 in
  let local_delays =
    match delay_hist with
    | Some h -> Array.make (Ffc_obs.Metrics.Histogram.num_buckets h) 0
    | None -> [||]
  in
  let trc = Ffc_obs.Ctx.tracing () in
  (* Paths as arrays for O(1) next-hop lookup. *)
  let paths =
    Array.init n_conns (fun i -> Array.of_list (Network.gateways_of_connection net i))
  in
  (* Per (gateway, connection) FS class tables. *)
  let class_tables = Hashtbl.create 64 in
  if discipline = Fs_priority then
    for a = 0 to n_gws - 1 do
      let local_rates = Network.rates_at_gateway net ~rates a in
      List.iter
        (fun i ->
          Hashtbl.add class_tables (a, i)
            (fs_class_table ~local_rates ~rate:rates.(i)))
        (Network.connections_at_gateway net a)
    done;
  let servers = Array.make n_gws None in
  let server_of a =
    match servers.(a) with Some s -> s | None -> assert false
  in
  (* Injection into gateway [a]: draw the FS priority class from a
     dedicated stream, account occupancy, hand to the server. *)
  let class_rng = Rng.split root_rng in
  let inject a (pkt : Packet.t) =
    (if discipline = Fs_priority then
       match Hashtbl.find_opt class_tables (a, pkt.conn) with
       | Some table -> pkt.klass <- draw_fs_class table class_rng ~rate:rates.(pkt.conn)
       | None -> pkt.klass <- 0);
    incr injections;
    Measure.incr measure ~key:(a, pkt.conn) ~now:(Sim.now sim);
    Server.inject (server_of a) pkt
  in
  (* Departure from gateway [a]: forward across the line (after the line's
     latency) or deliver. *)
  let on_depart a (pkt : Packet.t) =
    Measure.decr measure ~key:(a, pkt.conn) ~now:(Sim.now sim);
    let path = paths.(pkt.conn) in
    let pos = ref (-1) in
    Array.iteri (fun k g -> if g = a then pos := k) path;
    let latency = (Network.gateway net a).Network.latency in
    if !pos < Array.length path - 1 then begin
      let next = path.(!pos + 1) in
      Sim.schedule_after sim ~delay:latency (fun () -> inject next pkt)
    end
    else begin
      let deliver () =
        let delay = Sim.now sim -. pkt.born in
        Measure.record_delay measure ~conn:pkt.conn delay;
        Measure.count_delivery measure ~conn:pkt.conn;
        (* [decade_index] is exact for "desim.delay": it was registered
           with the default decade buckets above (a conflicting earlier
           registration would have raised there). *)
        if Array.length local_delays > 0 then begin
          let i = Ffc_obs.Metrics.decade_index delay in
          local_delays.(i) <- local_delays.(i) + 1
        end;
        (* [!deliveries] is the all-time delivery ordinal — the
           simulator is deterministic for a given seed, so stride
           sampling on it is too.  Only maintained when tracing: the
           "desim.deliveries" counter is merged from [Measure] after
           the run, so the null-sink hot path skips the increment. *)
        match trc with
        | Some c ->
          incr deliveries;
          if Ffc_obs.Ctx.sample c !deliveries then
            Ffc_obs.Ctx.emit c
              (Ffc_obs.Event.desim_delivery ~time:(Sim.now sim)
                 ~conn:pkt.conn ~delay)
        | None -> ()
      in
      if latency > 0. then Sim.schedule_after sim ~delay:latency deliver else deliver ()
    end
  in
  for a = 0 to n_gws - 1 do
    let rng = Rng.split root_rng in
    servers.(a) <-
      Some
        (Server.create ~sim ~rng
           ~mu:(Network.gateway net a).Network.mu
           ~qdisc:(qdisc_of discipline) ~on_depart:(on_depart a) ())
  done;
  let sources =
    Array.init n_conns (fun i ->
        let rng = Rng.split root_rng in
        Source.create ~sim ~rng ~conn:i ~rate:rates.(i)
          ~emit:(fun pkt -> inject paths.(i).(0) pkt)
          ())
  in
  Array.iter Source.start sources;
  if warmup > 0. then Sim.schedule sim ~at:warmup (fun () -> Measure.reset measure ~now:warmup);
  Sim.run ~until:horizon sim;
  (match obs_ctx with
  | Some c ->
    let m = Ffc_obs.Ctx.metrics c in
    Ffc_obs.Metrics.Counter.add
      (Ffc_obs.Metrics.counter m "desim.injections")
      !injections;
    (* Deliveries within the measurement window, from [Measure] — the
       same value whether or not the run was traced. *)
    let delivered = ref 0 in
    for i = 0 to n_conns - 1 do
      delivered := !delivered + Measure.deliveries measure ~conn:i
    done;
    Ffc_obs.Metrics.Counter.add
      (Ffc_obs.Metrics.counter m "desim.deliveries")
      !delivered;
    (match delay_hist with
    | Some h ->
      Array.iteri
        (fun i n -> if n > 0 then Ffc_obs.Metrics.Histogram.add_bucket h i n)
        local_delays
    | None -> ())
  | None -> ());
  (match trc with
  | Some c ->
    let window = horizon -. warmup in
    for i = 0 to n_conns - 1 do
      let deliveries = Measure.deliveries measure ~conn:i in
      Ffc_obs.Ctx.emit c
        (Ffc_obs.Event.desim_summary ~conn:i ~deliveries
           ~throughput:(float_of_int deliveries /. window))
    done
  | None -> ());
  { net; measure; horizon; window = horizon -. warmup }

let mean_queue r ~gw ~conn =
  Measure.mean_occupancy r.measure ~key:(gw, conn) ~now:r.horizon

let total_mean_queue r ~gw =
  List.fold_left
    (fun acc conn -> acc +. mean_queue r ~gw ~conn)
    0.
    (Network.connections_at_gateway r.net gw)

let delay_mean r ~conn = Measure.delay_mean r.measure ~conn
let delay_ci95 r ~conn = Measure.delay_ci95 r.measure ~conn

let throughput r ~conn =
  float_of_int (Measure.deliveries r.measure ~conn) /. r.window

let window r = r.window
