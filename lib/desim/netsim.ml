open Ffc_numerics
open Ffc_topology

type discipline = Fifo | Fs_priority | Fair_queueing

(* Fair Share thinning: for a connection with rate [r] at a gateway whose
   local sorted rates produce level increments [incr], the packet belongs
   to level j with probability incr.(j)/r for each level the connection
   participates in (those with threshold <= r).  Precomputes the
   cumulative distribution as (class, cumulative rate) pairs. *)
let fs_class_table ~local_rates ~rate =
  if rate <= 0. then [||]
  else begin
    let sorted = Vec.sorted_increasing local_rates in
    let entries = ref [] in
    let cum = ref 0. in
    Array.iteri
      (fun j threshold ->
        let increment = if j = 0 then threshold else threshold -. sorted.(j - 1) in
        if increment > 0. && threshold <= rate then begin
          cum := !cum +. increment;
          entries := (j, !cum) :: !entries
        end)
      sorted;
    Array.of_list (List.rev !entries)
  end

let draw_fs_class table rng ~rate =
  let u = Rng.uniform rng *. rate in
  let n = Array.length table in
  let rec go i =
    if i >= n - 1 then fst table.(n - 1)
    else begin
      let _, cum = table.(i) in
      if u <= cum then fst table.(i) else go (i + 1)
    end
  in
  if n = 0 then 0 else go 0

let qdisc_of = function
  | Fifo -> Qdisc.Fifo
  | Fs_priority -> Qdisc.Preemptive_priority
  | Fair_queueing -> Qdisc.Fair_queueing

type result = {
  net : Network.t;
  horizon : float;
  window : float;
  paths : int array array;  (** Global gateway paths per connection. *)
  conn_shard : int array;
  conn_local : int array;
  flats : Measure.Flat.t array;  (** Per shard, locally indexed. *)
  total_events : int;
  n_components : int;
}

(* Everything a shard worker needs, fully precomputed on the calling
   domain so workers share only read-only state (each RNG stream is
   touched by exactly one shard). *)
type shard_plan = {
  sp_conns : int array;  (** Global connection ids, canonical order. *)
  sp_gws : int array;  (** Global gateway ids, canonical order. *)
  sp_paths : int array array;  (** Per local conn, local gateway path. *)
  sp_rates : float array;  (** Per local conn. *)
  sp_comp : int array;  (** Per local conn, local component ordinal. *)
  sp_n_comps : int;
  sp_tables : (int * float) array array array;  (** Per local conn, per hop. *)
  sp_events_per_time : float;
}

type shard_out = {
  so_flat : Measure.Flat.t;
  so_events : int;
  so_injections : int;
  so_hist : Ffc_obs.Metrics.Histogram.Local.t option;
      (* per-shard delay tally; flushed into "desim.delay" at the join *)
}

let run ~net ~rates ~discipline ~seed ?warmup ?(scheduler = `Wheel) ?(shards = 1)
    ?jobs ?buffer_limit ~horizon () =
  let n_conns = Network.num_connections net in
  let n_gws = Network.num_gateways net in
  if Array.length rates <> n_conns then
    invalid_arg "Netsim.run: rates length mismatch";
  Array.iter
    (fun r ->
      if (not (Float.is_finite r)) || r < 0. then
        invalid_arg "Netsim.run: rates must be finite and non-negative")
    rates;
  let warmup = match warmup with Some w -> w | None -> 0.1 *. horizon in
  if not (horizon > warmup && warmup >= 0.) then
    invalid_arg "Netsim.run: need horizon > warmup >= 0";
  if shards < 1 then invalid_arg "Netsim.run: shards must be >= 1";
  Ffc_obs.Ctx.incr_named "desim.runs";
  let paths =
    Array.init n_conns (fun i -> Array.of_list (Network.gateways_of_connection net i))
  in
  (* Connected components of the gateway graph (edges: consecutive hops
     of any path) — the independent simulation domains. *)
  let uf = Array.init n_gws (fun a -> a) in
  let rec find a = if uf.(a) = a then a else (let r = find uf.(a) in uf.(a) <- r; r) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then if ra < rb then uf.(rb) <- ra else uf.(ra) <- rb
  in
  Array.iter
    (fun path ->
      for k = 1 to Array.length path - 1 do
        union path.(0) path.(k)
      done)
    paths;
  (* Canonical component ids: order of first appearance over ascending
     gateway index — independent of everything but the topology. *)
  let comp_of_gw = Array.make n_gws (-1) in
  let n_comps = ref 0 in
  for a = 0 to n_gws - 1 do
    let r = find a in
    if comp_of_gw.(r) < 0 then begin
      comp_of_gw.(r) <- !n_comps;
      incr n_comps
    end;
    comp_of_gw.(a) <- comp_of_gw.(r)
  done;
  let n_comps = !n_comps in
  let comp_of_conn =
    Array.init n_conns (fun i -> comp_of_gw.(paths.(i).(0)))
  in
  (* Component weights (expected events per unit time) drive both the
     contiguous shard partition and the wheel tick choice. *)
  let comp_weight = Array.make n_comps 0. in
  Array.iteri
    (fun i path ->
      let c = comp_of_conn.(i) in
      comp_weight.(c) <-
        comp_weight.(c) +. (rates.(i) *. float_of_int ((2 * Array.length path) + 2)))
    paths;
  let total_weight = Array.fold_left ( +. ) 0. comp_weight in
  let shards = min shards n_comps |> max 1 in
  (* Contiguous partition balanced by cumulative weight: component [c]
     goes to the group its weight-prefix ratio lands in — monotone in
     [c], hence contiguous; deterministic for a given topology. *)
  let shard_of_comp = Array.make n_comps 0 in
  let cum = ref 0. in
  for c = 0 to n_comps - 1 do
    shard_of_comp.(c) <-
      (if total_weight <= 0. then c * shards / max 1 n_comps
       else min (shards - 1) (int_of_float (!cum /. total_weight *. float_of_int shards)));
    cum := !cum +. comp_weight.(c)
  done;
  (* Per-entity SplitMix64 streams, pre-split in fixed global order so a
     component's draws never depend on sharding (the E23 per-task-stream
     pattern). *)
  let root_rng = Rng.create seed in
  let server_rngs = Array.init n_gws (fun _ -> Rng.split root_rng) in
  let class_rngs = Array.init n_gws (fun _ -> Rng.split root_rng) in
  let source_rngs = Array.init n_conns (fun _ -> Rng.split root_rng) in
  (* Global FS thinning tables, one per (connection, hop). *)
  let fs_tables =
    if discipline <> Fs_priority then [||]
    else
      Array.init n_conns (fun i ->
          Array.map
            (fun a ->
              fs_class_table
                ~local_rates:(Network.rates_at_gateway net ~rates a)
                ~rate:rates.(i))
            paths.(i))
  in
  (* Shard plans: canonical order everywhere is ascending component id,
     then ascending global id within the component. *)
  let comp_conns = Array.make n_comps [] in
  for i = n_conns - 1 downto 0 do
    comp_conns.(comp_of_conn.(i)) <- i :: comp_conns.(comp_of_conn.(i))
  done;
  let comp_gws = Array.make n_comps [] in
  for a = n_gws - 1 downto 0 do
    comp_gws.(comp_of_gw.(a)) <- a :: comp_gws.(comp_of_gw.(a))
  done;
  let conn_shard = Array.make n_conns 0 in
  let conn_local = Array.make n_conns 0 in
  let gw_local = Array.make n_gws 0 in
  let plans =
    Array.init shards (fun s ->
        let comps = ref [] in
        for c = n_comps - 1 downto 0 do
          if shard_of_comp.(c) = s then comps := c :: !comps
        done;
        let comps = !comps in
        let conns =
          List.concat_map (fun c -> comp_conns.(c)) comps |> Array.of_list
        in
        let gws = List.concat_map (fun c -> comp_gws.(c)) comps |> Array.of_list in
        Array.iteri (fun a_l a -> gw_local.(a) <- a_l) gws;
        Array.iteri
          (fun i_l i ->
            conn_shard.(i) <- s;
            conn_local.(i) <- i_l)
          conns;
        let comp_ord = ref (-1) and last_comp = ref (-1) in
        let sp_comp =
          Array.map
            (fun i ->
              let c = comp_of_conn.(i) in
              if c <> !last_comp then begin
                last_comp := c;
                incr comp_ord
              end;
              !comp_ord)
            conns
        in
        {
          sp_conns = conns;
          sp_gws = gws;
          sp_paths = Array.map (fun i -> Array.map (fun a -> gw_local.(a)) paths.(i)) conns;
          sp_rates = Array.map (fun i -> rates.(i)) conns;
          sp_comp;
          sp_n_comps = List.length comps;
          sp_tables =
            (if discipline = Fs_priority then Array.map (fun i -> fs_tables.(i)) conns
             else Array.make (Array.length conns) [||]);
          sp_events_per_time =
            List.fold_left (fun acc c -> acc +. comp_weight.(c)) 0. comps;
        })
  in
  let delay_hist =
    match Ffc_obs.Ctx.ambient () with
    | Some c ->
      Some (Ffc_obs.Metrics.histogram (Ffc_obs.Ctx.metrics c) "desim.delay")
    | None -> None
  in
  let fs = discipline = Fs_priority in
  let run_shard (p : shard_plan) =
    let n_l = Array.length p.sp_conns in
    let flat = Measure.Flat.create ~paths:p.sp_paths in
    if n_l = 0 then { so_flat = flat; so_events = 0; so_injections = 0; so_hist = None }
    else begin
      let scheduler_kind =
        match scheduler with
        | `Heap -> Scheduler.Heap
        | `Wheel ->
          Scheduler.Wheel
            { tick = Scheduler.auto_tick ~events_per_time:p.sp_events_per_time }
      in
      let sim = Sim.create ~scheduler:scheduler_kind () in
      let pool = Packet.Pool.create ~initial:1024 () in
      let trc = Ffc_obs.Ctx.tracing () in
      (* Per-shard local tally (Histogram.Local): zero-sync observes in
         the event loop, one bulk flush into the shared histogram at
         the main-domain merge. *)
      let local_delays =
        Option.map Ffc_obs.Metrics.Histogram.Local.create delay_hist
      in
      let injections = ref 0 in
      (* Per-component delivery trace buffers — flushed in component
         order at the end so the trace stream is independent of how
         components were grouped into shards. *)
      let trace_buf = Array.make p.sp_n_comps [] in
      let trace_ord = Array.make p.sp_n_comps 0 in
      let servers = Array.make (Array.length p.sp_gws) None in
      let server_of a_l =
        match servers.(a_l) with Some s -> s | None -> assert false
      in
      let latency = Array.map (fun a -> (Network.gateway net a).Network.latency) p.sp_gws in
      let inject_at pkt hop =
        let i_l = Packet.Pool.conn pool pkt in
        let a_l = p.sp_paths.(i_l).(hop) in
        Packet.Pool.set_hop pool pkt hop;
        (if fs then
           let table = p.sp_tables.(i_l).(hop) in
           Packet.Pool.set_klass pool pkt
             (draw_fs_class table class_rngs.(p.sp_gws.(a_l)) ~rate:p.sp_rates.(i_l)));
        incr injections;
        Measure.Flat.incr flat ~slot:(Measure.Flat.slot flat ~conn:i_l ~hop) ~now:(Sim.now sim);
        Server.inject (server_of a_l) pkt
      in
      let h_forward = Sim.register sim (fun pkt hop -> inject_at pkt hop) in
      let deliver pkt =
        let i_l = Packet.Pool.conn pool pkt in
        let delay = Sim.now sim -. Packet.Pool.born pool pkt in
        Measure.Flat.record_delay flat ~conn:i_l delay;
        Measure.Flat.count_delivery flat ~conn:i_l;
        (match local_delays with
        | Some l -> Ffc_obs.Metrics.Histogram.Local.observe l delay
        | None -> ());
        (match trc with
        | Some c ->
          (* Stride sampling on the component's own delivery ordinal —
             deterministic and sharding-independent. *)
          let comp = p.sp_comp.(i_l) in
          trace_ord.(comp) <- trace_ord.(comp) + 1;
          if Ffc_obs.Ctx.sample c trace_ord.(comp) then
            trace_buf.(comp) <-
              Ffc_obs.Event.desim_delivery ~time:(Sim.now sim) ~conn:p.sp_conns.(i_l)
                ~delay
              :: trace_buf.(comp)
        | None -> ());
        Packet.Pool.free pool pkt
      in
      let h_deliver = Sim.register sim (fun pkt _ -> deliver pkt) in
      let on_depart a_l pkt =
        let i_l = Packet.Pool.conn pool pkt in
        let hop = Packet.Pool.hop pool pkt in
        Measure.Flat.decr flat ~slot:(Measure.Flat.slot flat ~conn:i_l ~hop) ~now:(Sim.now sim);
        let lat = latency.(a_l) in
        if hop < Array.length p.sp_paths.(i_l) - 1 then
          Sim.schedule_code_after sim ~delay:lat ~handler:h_forward ~a:pkt ~b:(hop + 1)
        else if lat > 0. then
          Sim.schedule_code_after sim ~delay:lat ~handler:h_deliver ~a:pkt ~b:0
        else deliver pkt
      in
      let on_drop pkt =
        let i_l = Packet.Pool.conn pool pkt in
        let hop = Packet.Pool.hop pool pkt in
        Measure.Flat.decr flat ~slot:(Measure.Flat.slot flat ~conn:i_l ~hop) ~now:(Sim.now sim);
        Measure.Flat.count_drop flat ~conn:i_l;
        Packet.Pool.free pool pkt
      in
      Array.iteri
        (fun a_l a ->
          servers.(a_l) <-
            Some
              (Server.create ~sim ~rng:server_rngs.(a) ~pool
                 ~mu:(Network.gateway net a).Network.mu
                 ~qdisc:(qdisc_of discipline) ?buffer_limit ~on_drop
                 ~on_depart:(on_depart a_l) ()))
        p.sp_gws;
      let emit pkt = inject_at pkt 0 in
      let sources =
        Array.init n_l (fun i_l ->
            Source.create ~sim ~rng:source_rngs.(p.sp_conns.(i_l)) ~pool ~conn:i_l
              ~rate:p.sp_rates.(i_l) ~emit ())
      in
      Array.iter Source.start sources;
      if warmup > 0. then
        Sim.schedule sim ~at:warmup (fun () -> Measure.Flat.reset flat ~now:warmup);
      Sim.run ~until:horizon sim;
      (match trc with
      | Some c ->
        for comp = 0 to p.sp_n_comps - 1 do
          List.iter (Ffc_obs.Ctx.emit c) (List.rev trace_buf.(comp))
        done
      | None -> ());
      {
        so_flat = flat;
        so_events = Sim.events sim - (if warmup > 0. then 1 else 0);
        so_injections = !injections;
        so_hist = local_delays;
      }
    end
  in
  (* The per-shard span is sched-gated like the pool.* events: shard
     membership depends on --shards, so it sits outside the trace
     byte-identity contract. *)
  let simulate (p : shard_plan) =
    match Ffc_obs.Ctx.tracing () with
    | Some c when Ffc_obs.Ctx.sched c ->
      Ffc_obs.Span.with_span
        ~attrs:[ ("conns", string_of_int (Array.length p.sp_conns)) ]
        "desim.shard"
        (fun () -> run_shard p)
    | _ -> run_shard p
  in
  let jobs = Pool.effective_jobs ?jobs () |> min shards in
  let outs = Pool.parallel_map ~jobs simulate plans in
  let total_events = Array.fold_left (fun acc o -> acc + o.so_events) 0 outs in
  let flats = Array.map (fun o -> o.so_flat) outs in
  (* Deterministic merge of the observability tallies (main domain). *)
  (match Ffc_obs.Ctx.ambient () with
  | Some c ->
    let m = Ffc_obs.Ctx.metrics c in
    let add name v = Ffc_obs.Metrics.Counter.add (Ffc_obs.Metrics.counter m name) v in
    add "desim.injections" (Array.fold_left (fun acc o -> acc + o.so_injections) 0 outs);
    add "desim.events" total_events;
    let delivered = ref 0 and dropped = ref 0 in
    for i = 0 to n_conns - 1 do
      let f = flats.(conn_shard.(i)) in
      delivered := !delivered + Measure.Flat.deliveries f ~conn:conn_local.(i);
      dropped := !dropped + Measure.Flat.drops f ~conn:conn_local.(i)
    done;
    add "desim.deliveries" !delivered;
    add "desim.drops" !dropped;
    (* Flush the per-shard tallies in shard order (workers are joined;
       the parent histogram takes one RMW per occupied bucket). *)
    Array.iter
      (fun o -> Option.iter Ffc_obs.Metrics.Histogram.Local.flush o.so_hist)
      outs
  | None -> ());
  (match Ffc_obs.Ctx.tracing () with
  | Some c ->
    let window = horizon -. warmup in
    for i = 0 to n_conns - 1 do
      let deliveries =
        Measure.Flat.deliveries flats.(conn_shard.(i)) ~conn:conn_local.(i)
      in
      Ffc_obs.Ctx.emit c
        (Ffc_obs.Event.desim_summary ~conn:i ~deliveries
           ~throughput:(float_of_int deliveries /. window))
    done
  | None -> ());
  {
    net;
    horizon;
    window = horizon -. warmup;
    paths;
    conn_shard;
    conn_local;
    flats;
    total_events;
    n_components = n_comps;
  }

let hop_of r ~gw ~conn =
  let path = r.paths.(conn) in
  let pos = ref (-1) in
  Array.iteri (fun k a -> if a = gw then pos := k) path;
  !pos

let mean_queue r ~gw ~conn =
  let hop = hop_of r ~gw ~conn in
  if hop < 0 then 0.
  else begin
    let f = r.flats.(r.conn_shard.(conn)) in
    Measure.Flat.mean_occupancy f
      ~slot:(Measure.Flat.slot f ~conn:r.conn_local.(conn) ~hop)
      ~now:r.horizon
  end

let total_mean_queue r ~gw =
  List.fold_left
    (fun acc conn -> acc +. mean_queue r ~gw ~conn)
    0.
    (Network.connections_at_gateway r.net gw)

let delay_mean r ~conn =
  Measure.Flat.delay_mean r.flats.(r.conn_shard.(conn)) ~conn:r.conn_local.(conn)

let delay_ci95 r ~conn =
  Measure.Flat.delay_ci95 r.flats.(r.conn_shard.(conn)) ~conn:r.conn_local.(conn)

let deliveries r ~conn =
  Measure.Flat.deliveries r.flats.(r.conn_shard.(conn)) ~conn:r.conn_local.(conn)

let drops r ~conn =
  Measure.Flat.drops r.flats.(r.conn_shard.(conn)) ~conn:r.conn_local.(conn)

let throughput r ~conn = float_of_int (deliveries r ~conn) /. r.window

let window r = r.window

let events r = r.total_events

let components r = r.n_components
