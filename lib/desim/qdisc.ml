type t = Fifo | Preemptive_priority | Fair_queueing

(* Growable ring of packet ids — the allocation-free FIFO primitive.
   Capacity is a power of two so indexing is a mask. *)
module Ring = struct
  type t = { mutable buf : int array; mutable head : int; mutable len : int }

  let create () = { buf = Array.make 16 0; head = 0; len = 0 }

  let grow r =
    let n = Array.length r.buf in
    let buf = Array.make (2 * n) 0 in
    for i = 0 to r.len - 1 do
      buf.(i) <- r.buf.((r.head + i) land (n - 1))
    done;
    r.buf <- buf;
    r.head <- 0

  let push r id =
    if r.len = Array.length r.buf then grow r;
    r.buf.((r.head + r.len) land (Array.length r.buf - 1)) <- id;
    r.len <- r.len + 1

  (* -1 when empty. *)
  let pop r =
    if r.len = 0 then -1
    else begin
      let id = r.buf.(r.head) in
      r.head <- (r.head + 1) land (Array.length r.buf - 1);
      r.len <- r.len - 1;
      id
    end

  let length r = r.len
end

(* Per-class storage for the priority discipline: resumed packets stack
   in front (LIFO resume order is irrelevant as at most one packet is
   ever preempted at a time per class), normal arrivals queue FCFS. *)
type bucket = { mutable resumed : int list; arrivals : Ring.t }

type prio = {
  mutable buckets : bucket array;  (** Indexed by class. *)
  mutable occupied : int;
  mutable min_class : int;
      (** Lower bound on the lowest non-empty class — a scan hint, not
          an invariant. *)
}

type fq = {
  bids : int Event_heap.t;  (** Keyed by finish-number bid. *)
  last_finish : (int, float) Hashtbl.t;  (** Per connection. *)
  mutable virtual_time : float;
}

type impl = Fifo_buf of Ring.t | Prio_buf of prio | Fq_buf of fq

type buffer = { disc : t; pool : Packet.Pool.t; impl : impl }

let buffer disc ~pool =
  let impl =
    match disc with
    | Fifo -> Fifo_buf (Ring.create ())
    | Preemptive_priority ->
      Prio_buf { buckets = [||]; occupied = 0; min_class = 0 }
    | Fair_queueing ->
      Fq_buf
        { bids = Event_heap.create (); last_finish = Hashtbl.create 8; virtual_time = 0. }
  in
  { disc; pool; impl }

let bucket p klass =
  if klass >= Array.length p.buckets then begin
    let n = Array.length p.buckets in
    let n' = max (klass + 1) (max 4 (2 * n)) in
    let bigger =
      Array.init n' (fun i ->
          if i < n then p.buckets.(i) else { resumed = []; arrivals = Ring.create () })
    in
    p.buckets <- bigger
  end;
  p.buckets.(klass)

let enqueue buf id =
  match buf.impl with
  | Fifo_buf r -> Ring.push r id
  | Prio_buf p ->
    let klass = Packet.Pool.klass buf.pool id in
    Ring.push (bucket p klass).arrivals id;
    p.occupied <- p.occupied + 1;
    if klass < p.min_class then p.min_class <- klass
  | Fq_buf fq ->
    let conn = Packet.Pool.conn buf.pool id in
    let prev =
      match Hashtbl.find_opt fq.last_finish conn with Some f -> f | None -> 0.
    in
    let bid = Float.max fq.virtual_time prev +. Packet.Pool.work buf.pool id in
    Hashtbl.replace fq.last_finish conn bid;
    Event_heap.push fq.bids ~time:bid id

let dequeue buf =
  match buf.impl with
  | Fifo_buf r -> Ring.pop r
  | Prio_buf p ->
    if p.occupied = 0 then -1
    else begin
      (* Scan classes upward from the hint (decreasing priority). *)
      let c = ref p.min_class in
      let found = ref (-1) in
      while !found < 0 do
        let b = p.buckets.(!c) in
        (match b.resumed with
        | id :: rest ->
          b.resumed <- rest;
          found := id
        | [] ->
          let id = Ring.pop b.arrivals in
          if id >= 0 then found := id else incr c)
      done;
      p.min_class <- !c;
      p.occupied <- p.occupied - 1;
      !found
    end
  | Fq_buf fq -> (
    match Event_heap.pop_min fq.bids with
    | None -> -1
    | Some (bid, id) ->
      fq.virtual_time <- Float.max fq.virtual_time bid;
      id)

let requeue_front buf id =
  match buf.impl with
  | Fifo_buf r ->
    (* FIFO is non-preemptive; requeue only happens if a caller misuses
       the discipline — preserve the packet anyway. *)
    Ring.push r id
  | Prio_buf p ->
    let klass = Packet.Pool.klass buf.pool id in
    let b = bucket p klass in
    b.resumed <- id :: b.resumed;
    p.occupied <- p.occupied + 1;
    if klass < p.min_class then p.min_class <- klass
  | Fq_buf fq ->
    (* Resume with its original bid semantics: re-bid at current virtual
       time without charging a second full quantum. *)
    Event_heap.push fq.bids ~time:fq.virtual_time id

let preempts buf ~incoming ~in_service =
  match buf.disc with
  | Fifo | Fair_queueing -> false
  | Preemptive_priority ->
    Packet.Pool.klass buf.pool incoming < Packet.Pool.klass buf.pool in_service

let waiting buf =
  match buf.impl with
  | Fifo_buf r -> Ring.length r
  | Prio_buf p -> p.occupied
  | Fq_buf fq -> Event_heap.size fq.bids
