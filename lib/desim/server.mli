(** An exponential server with a pluggable queue discipline — one
    simulated gateway.

    Service requirements are exponential: each packet's [work] is drawn
    Exp(1) on arrival at the server, and service takes work/μ time
    (so per-gateway service times are Exp(μ), independent across gateways
    per the paper's Poisson-output assumption).  Preemption is
    preempt-resume: the interrupted packet keeps its remaining work.

    The server registers one completion handler with its {!Sim} at
    construction and schedules coded completion events — nothing is
    allocated per packet or per event. *)

type t

val create :
  sim:Sim.t ->
  rng:Ffc_numerics.Rng.t ->
  pool:Packet.Pool.t ->
  mu:float ->
  qdisc:Qdisc.t ->
  ?buffer_limit:int ->
  ?on_drop:(Packet.id -> unit) ->
  on_depart:(Packet.id -> unit) ->
  unit ->
  t
(** [on_depart] fires at the instant a packet completes service.
    [buffer_limit], when given, caps the number of packets in the system
    (waiting + in service): an arrival finding the system full is dropped
    at the door ([on_drop] fires, nothing else happens) — the drop-tail
    behaviour whose losses serve as the implicit congestion signal of
    Jacobson's algorithm (paper §1).  The paper's own model assumes
    infinite buffers, the default. *)

val inject : t -> Packet.id -> unit
(** Packet arrival. Draws the packet's work, may start service
    immediately or preempt the packet in service (per the discipline). *)

val in_system : t -> int
(** Instantaneous number of packets at the server (waiting + in
    service). *)

val busy : t -> bool
