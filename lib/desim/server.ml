open Ffc_numerics

type t = {
  sim : Sim.t;
  rng : Rng.t;
  pool : Packet.Pool.t;
  mu : float;
  buffer : Qdisc.buffer;
  buffer_limit : int;  (** [max_int] when unlimited. *)
  on_drop : Packet.id -> unit;
  on_depart : Packet.id -> unit;
  mutable cur : int;  (** Packet in service; -1 when idle. *)
  mutable cur_completion : float;
  mutable cur_token : int;
      (** Validity token of the scheduled completion event; a stale
          completion (of a preempted service) finds a newer token and
          does nothing. *)
  mutable next_token : int;
  mutable handler : int;
}

let rec complete t token =
  if t.cur >= 0 && t.cur_token = token then begin
    let pkt = t.cur in
    t.cur <- -1;
    t.on_depart pkt;
    if t.cur < 0 then begin
      let next = Qdisc.dequeue t.buffer in
      if next >= 0 then start_service t next
    end
  end

and start_service t pkt =
  let token = t.next_token in
  t.next_token <- token + 1;
  let completion = Sim.now t.sim +. (Packet.Pool.work t.pool pkt /. t.mu) in
  t.cur <- pkt;
  t.cur_completion <- completion;
  t.cur_token <- token;
  Sim.schedule_code t.sim ~at:completion ~handler:t.handler ~a:token ~b:0

let create ~sim ~rng ~pool ~mu ~qdisc ?buffer_limit ?(on_drop = fun _ -> ())
    ~on_depart () =
  if not (mu > 0.) then invalid_arg "Server.create: mu must be positive";
  (match buffer_limit with
  | Some k when k < 1 -> invalid_arg "Server.create: buffer_limit must be >= 1"
  | Some _ | None -> ());
  let t =
    {
      sim;
      rng;
      pool;
      mu;
      buffer = Qdisc.buffer qdisc ~pool;
      buffer_limit = (match buffer_limit with Some k -> k | None -> max_int);
      on_drop;
      on_depart;
      cur = -1;
      cur_completion = 0.;
      cur_token = -1;
      next_token = 0;
      handler = -1;
    }
  in
  t.handler <- Sim.register sim (fun token _ -> complete t token);
  t

let in_system t = Qdisc.waiting t.buffer + if t.cur >= 0 then 1 else 0

let inject t pkt =
  if in_system t >= t.buffer_limit then t.on_drop pkt
  else begin
    Packet.Pool.set_work t.pool pkt (Rng.exponential t.rng ~rate:1.);
    Qdisc.enqueue t.buffer pkt;
    if t.cur < 0 then begin
      let next = Qdisc.dequeue t.buffer in
      if next >= 0 then start_service t next
    end
    else if Qdisc.preempts t.buffer ~incoming:pkt ~in_service:t.cur then begin
      (* Preempt-resume: bank the remaining work and invalidate the
         pending completion by clearing [cur] before restarting. *)
      let cur = t.cur in
      Packet.Pool.set_work t.pool cur ((t.cur_completion -. Sim.now t.sim) *. t.mu);
      t.cur <- -1;
      Qdisc.requeue_front t.buffer cur;
      let next = Qdisc.dequeue t.buffer in
      if next >= 0 then start_service t next
    end
  end

let busy t = t.cur >= 0
