(** Measurement collection for simulation runs.

    Tracks time-weighted per-key occupancy (the simulated counterpart of
    the model's mean queue lengths Q^a_i), end-to-end delay samples, and
    delivery counts.  [reset] discards history at the end of a warmup
    period while preserving instantaneous occupancy, so statistics cover
    only the measured window. *)

type t

val create : unit -> t

val incr : t -> key:int * int -> now:float -> unit
(** Occupancy of [key = (gateway, connection)] increased by one. *)

val decr : t -> key:int * int -> now:float -> unit

val occupancy : t -> key:int * int -> int
(** Instantaneous occupancy (0 for unseen keys). *)

val mean_occupancy : t -> key:int * int -> now:float -> float
(** Time-average occupancy since creation or the last [reset]. *)

val reset : t -> now:float -> unit
(** Restarts every time average and delay/delivery statistic at [now],
    keeping current occupancy levels. *)

val record_delay : t -> conn:int -> float -> unit

val delay_mean : t -> conn:int -> float
(** 0 when no samples. *)

val delay_ci95 : t -> conn:int -> float

val delay_count : t -> conn:int -> int

val count_delivery : t -> conn:int -> unit

val deliveries : t -> conn:int -> int

val count_drop : t -> conn:int -> unit
(** A packet of the connection was dropped (finite-buffer gateways). *)

val drops : t -> conn:int -> int
(** Drops since creation or the last [reset]. *)

(** Flat, array-indexed variant of the same collector, for
    production-scale runs: per-(connection, hop) occupancy slots are
    contiguous arrays addressed by precomputed offsets — no hashing, no
    key tuples, no allocation on the per-packet path.  Used by
    {!Netsim} and the closed loop; the hashtable collector above stays
    as the flexible/reference API. *)
module Flat : sig
  type t

  val create : paths:int array array -> t
  (** One occupancy slot per (connection, hop): [paths.(i)] is
      connection [i]'s gateway path and only its length matters.
      Statistics windows start at time 0. *)

  val slot : t -> conn:int -> hop:int -> int
  (** The slot of connection [conn]'s [hop]-th gateway.  Only valid for
      [hop < length paths.(conn)]. *)

  val num_conns : t -> int

  val num_slots : t -> int

  val incr : t -> slot:int -> now:float -> unit

  val decr : t -> slot:int -> now:float -> unit
  (** Raises [Invalid_argument] when occupancy would go negative. *)

  val occupancy : t -> slot:int -> int

  val mean_occupancy : t -> slot:int -> now:float -> float
  (** Time-average occupancy since creation or the last [reset]. *)

  val reset : t -> now:float -> unit
  (** Restarts every statistic at [now], keeping occupancy levels. *)

  val record_delay : t -> conn:int -> float -> unit

  val delay_mean : t -> conn:int -> float

  val delay_ci95 : t -> conn:int -> float

  val delay_count : t -> conn:int -> int

  val delay_stats : t -> conn:int -> Ffc_numerics.Stats.running

  val count_delivery : t -> conn:int -> unit

  val deliveries : t -> conn:int -> int

  val count_drop : t -> conn:int -> unit

  val drops : t -> conn:int -> int
end
