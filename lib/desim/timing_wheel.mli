(** Hierarchical timing wheel over coded events.

    A three-level wheel of 256-slot arrays plus an overflow heap,
    scheduling *coded* events — a timestamp and three small integers
    [(handler, a, b)] — with no per-event allocation: event state lives
    in struct-of-arrays storage recycled through a free list, and slot
    chains are intrusive linked lists through that storage.

    Determinism contract: events pop in ascending [(time, sequence)]
    order, where the sequence is the schedule order — exactly the order
    {!Event_heap} produces.  The wheel achieves this by draining each
    occupied tick through a tiny ready-heap ordered by [(time, seq)]:
    every event still on the wheel belongs to a strictly later tick,
    hence a strictly later time, so the interleaving is exact.

    Schedule and pop are O(1) amortized for event populations whose
    times are spread over many ticks (the design point: [tick] chosen
    near the mean event spacing); the worst case degrades gracefully to
    the ready-heap's O(log k) for k events sharing one tick. *)

type t

val create : ?initial:int -> tick:float -> unit -> t
(** [tick] is the width of a level-0 slot in simulated time.  Raises
    [Invalid_argument] unless [tick] is finite and positive.
    [initial] sizes the event pool (default 64). *)

val tick : t -> float

val schedule : t -> time:float -> handler:int -> a:int -> b:int -> unit
(** [time] must be finite, non-negative, and below [2^60 * tick] (the
    wheel's addressable range); raises [Invalid_argument] otherwise.
    Events never popped so far may be scheduled at any time >= 0 —
    monotonicity is the caller's contract, as in {!Sim}. *)

val pop : t -> bool
(** Removes the earliest event; [false] when empty.  On [true] the
    popped fields are readable until the next [pop]. *)

val popped_time : t -> float

val popped_handler : t -> int

val popped_a : t -> int

val popped_b : t -> int

val next_time : t -> float
(** Time of the earliest pending event; [infinity] when empty. *)

val size : t -> int

val slot_bits : int
(** Log2 of the per-level slot count (the wheel is [3] levels of
    [2^slot_bits] slots; later times live in the overflow heap). *)

val levels : int
