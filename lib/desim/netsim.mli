(** Packet-level simulation of a whole network (paper §2.1 made
    concrete).

    Assembles Poisson sources, exponential servers, and line latencies
    from a {!Ffc_topology.Network.t}; runs to a horizon; and reports
    time-average per-connection queue lengths at every gateway,
    end-to-end delays, and delivered throughput over the post-warmup
    window.  Used to validate the analytic Q(r) functions (experiment
    E12), to study feedback with real delays (E13), and — rebuilt
    around a struct-of-arrays packet pool, coded events, and a
    timing-wheel calendar — to reach 10⁵–10⁶ concurrent connections
    (E27).

    {b Sharding.}  The network is decomposed into connected components
    (gateway domains no connection crosses between); [shards] groups
    consecutive components and simulates the groups on
    {!Ffc_numerics.Pool} domains.  Every entity (server, class drawer,
    source) owns a SplitMix64 stream pre-split from the seed in fixed
    global order, so a component's sample path — and therefore every
    reported statistic — is bit-identical whatever the shard count or
    [jobs]; trace events are emitted grouped by component in canonical
    component order, which makes traced runs byte-identical too.

    The Fair Share discipline is realized exactly as §2.2 defines it:
    each packet is independently thinned into a priority level with
    probability proportional to the level's rate increment, and gateways
    run preemptive-resume priority service. *)

open Ffc_topology

type discipline =
  | Fifo
  | Fs_priority  (** Fair Share: thinning + preemptive priority. *)
  | Fair_queueing  (** Bid-based Demers–Keshav–Shenker fair queueing. *)

type result

val run :
  net:Network.t ->
  rates:float array ->
  discipline:discipline ->
  seed:int ->
  ?warmup:float ->
  ?scheduler:[ `Heap | `Wheel ] ->
  ?shards:int ->
  ?jobs:int ->
  ?buffer_limit:int ->
  horizon:float ->
  unit ->
  result
(** Simulates with per-connection Poisson rates [rates]. Statistics cover
    [(warmup, horizon)]; [warmup] defaults to 10% of the horizon.

    [scheduler] picks the event calendar (default [`Wheel], with a tick
    auto-sized to the expected event rate); the choice never affects
    results.  [shards] (default 1; clamped to the component count)
    splits independent components over up to [jobs] domains — results
    and traces are byte-identical at any [shards]/[jobs].
    [buffer_limit] caps each gateway's system occupancy, arrivals
    beyond it are dropped at the door (counted in {!drops}).

    Raises [Invalid_argument] on negative rates, a rate-vector length
    mismatch, [horizon <= warmup], or [shards < 1]. *)

val mean_queue : result -> gw:int -> conn:int -> float
(** Time-average number of connection [conn]'s packets at gateway [gw] —
    the simulated Q^a_i. 0 when the connection does not cross the
    gateway. *)

val total_mean_queue : result -> gw:int -> float

val delay_mean : result -> conn:int -> float
val delay_ci95 : result -> conn:int -> float
val throughput : result -> conn:int -> float
(** Delivered packets per unit time over the measurement window. *)

val deliveries : result -> conn:int -> int
val drops : result -> conn:int -> int
(** Packets of [conn] dropped at full gateways ([buffer_limit] runs). *)

val window : result -> float
(** Length of the measurement window. *)

val events : result -> int
(** Simulation events executed (arrivals, completions, forwards,
    deliveries) — the work measure behind events/sec benchmarks.
    Independent of the shard count. *)

val components : result -> int
(** Independent gateway domains found in the topology. *)
