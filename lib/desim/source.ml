open Ffc_numerics

type t = {
  sim : Sim.t;
  rng : Rng.t;
  pool : Packet.Pool.t;
  conn : int;
  mutable rate : float;
  emit : Packet.id -> unit;
  mutable emitted : int;
  mutable started : bool;
  mutable pending : bool;  (** An arrival event is scheduled. *)
  mutable handler : int;
}

let check_rate rate =
  if (not (Float.is_finite rate)) || rate < 0. then
    invalid_arg "Source: rate must be finite and non-negative"

let schedule_next t =
  if t.rate > 0. && not t.pending then begin
    t.pending <- true;
    Sim.schedule_code_after t.sim
      ~delay:(Rng.exponential t.rng ~rate:t.rate)
      ~handler:t.handler ~a:0 ~b:0
  end

let arrival t =
  t.pending <- false;
  let pkt = Packet.Pool.alloc t.pool ~conn:t.conn ~born:(Sim.now t.sim) in
  t.emitted <- t.emitted + 1;
  t.emit pkt;
  schedule_next t

let create ~sim ~rng ~pool ~conn ~rate ~emit () =
  check_rate rate;
  let t =
    {
      sim;
      rng;
      pool;
      conn;
      rate;
      emit;
      emitted = 0;
      started = false;
      pending = false;
      handler = -1;
    }
  in
  t.handler <- Sim.register sim (fun _ _ -> arrival t);
  t

let start t =
  if not t.started then begin
    t.started <- true;
    schedule_next t
  end

let rate t = t.rate

let set_rate t rate =
  check_rate rate;
  t.rate <- rate;
  (* Wake a stopped source; a pending arrival keeps its old draw and the
     new rate applies from the following gap. *)
  if t.started then schedule_next t

let emitted t = t.emitted
