type state = {
  digest : string;
  seq : int;
  mutations : int;
  vclock : float;
  last_time : float;
  active : bool array;
  rates : float array;
  rho : float;
  rho_fresh : bool;
  last_tier : string;
  counters : (string * int) list;
}

let magic = "ffc-snapshot 1"

let render s =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  let fl = Ffc_obs.Jsonf.float_rt in
  line "%s" magic;
  line "digest %s" s.digest;
  line "seq %d" s.seq;
  line "mutations %d" s.mutations;
  line "vclock %s" (fl s.vclock);
  line "last_time %s" (fl s.last_time);
  line "active %s"
    (String.init (Array.length s.active) (fun i -> if s.active.(i) then '1' else '0'));
  line "rates %s" (String.concat " " (Array.to_list (Array.map fl s.rates)));
  line "rho %s" (fl s.rho);
  line "rho_fresh %b" s.rho_fresh;
  line "last_tier %s" s.last_tier;
  List.iter (fun (k, v) -> line "counter %s %d" k v) s.counters;
  line "end";
  Buffer.contents buf

let write ~path s =
  let text = render s in
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let bytes = Bytes.unsafe_of_string text in
      let n = Bytes.length bytes in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write fd bytes !written (n - !written)
      done;
      (* fsync the tmp file before the rename publishes it: a buffered
         flush alone only reaches the OS page cache, so power loss
         between flush and writeback could still expose a truncated
         file under the final name. *)
      Unix.fsync fd);
  Unix.rename tmp path;
  (* Persist the rename itself: fsync the containing directory so the
     new directory entry survives power loss too.  Best-effort — some
     filesystems refuse directory fsync. *)
  (try
     let dfd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 in
     Fun.protect
       ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
       (fun () -> Unix.fsync dfd)
   with Unix.Unix_error _ -> ());
  String.length text

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
    let lines = String.split_on_char '\n' text in
    let err fmt = Printf.ksprintf (fun m -> Error ("snapshot: " ^ m)) fmt in
    let fields = Hashtbl.create 16 in
    let counters = ref [] in
    let rec scan saw_end = function
      | [] | [ "" ] -> if saw_end then Ok () else err "missing end marker"
      | "end" :: rest -> scan true rest
      | l :: rest when saw_end ->
        if l = "" then scan true rest else err "trailing data after end: %S" l
      | l :: rest -> (
        match String.index_opt l ' ' with
        | None -> err "malformed line %S" l
        | Some i -> (
          let key = String.sub l 0 i in
          let value = String.sub l (i + 1) (String.length l - i - 1) in
          match key with
          | "counter" -> (
            match String.index_opt value ' ' with
            | None -> err "malformed counter line %S" l
            | Some j -> (
              let name = String.sub value 0 j in
              match int_of_string_opt (String.sub value (j + 1) (String.length value - j - 1)) with
              | Some n ->
                counters := (name, n) :: !counters;
                scan saw_end rest
              | None -> err "bad counter value in %S" l))
          | _ ->
            if Hashtbl.mem fields key then err "duplicate field %S" key
            else begin
              Hashtbl.add fields key value;
              scan saw_end rest
            end))
    in
    match lines with
    | first :: rest when first = magic -> (
      match scan false rest with
      | Error e -> Error e
      | Ok () -> (
        let get k =
          match Hashtbl.find_opt fields k with
          | Some v -> Ok v
          | None -> err "missing field %S" k
        in
        let int_of k v =
          match int_of_string_opt v with
          | Some n -> Ok n
          | None -> err "bad integer for %S" k
        in
        let float_of k v =
          match float_of_string_opt v with
          | Some x -> Ok x
          | None -> err "bad float for %S" k
        in
        let ( let* ) = Result.bind in
        let* digest = get "digest" in
        let* seq = Result.bind (get "seq") (int_of "seq") in
        let* mutations = Result.bind (get "mutations") (int_of "mutations") in
        let* vclock = Result.bind (get "vclock") (float_of "vclock") in
        let* last_time = Result.bind (get "last_time") (float_of "last_time") in
        let* active_s = get "active" in
        let* active =
          let ok = ref true in
          let a =
            Array.init (String.length active_s) (fun i ->
                match active_s.[i] with
                | '1' -> true
                | '0' -> false
                | _ ->
                  ok := false;
                  false)
          in
          if !ok then Ok a else err "bad active mask %S" active_s
        in
        let* rates_s = get "rates" in
        let* rates =
          let parts =
            List.filter (fun s -> s <> "") (String.split_on_char ' ' rates_s)
          in
          let floats = List.map float_of_string_opt parts in
          if List.for_all Option.is_some floats then
            Ok (Array.of_list (List.map Option.get floats))
          else err "bad rates vector"
        in
        let* rho = Result.bind (get "rho") (float_of "rho") in
        let* rho_fresh =
          Result.bind (get "rho_fresh") (fun v ->
              match bool_of_string_opt v with
              | Some b -> Ok b
              | None -> err "bad rho_fresh %S" v)
        in
        let* last_tier = get "last_tier" in
        if Array.length rates <> Array.length active then
          err "rates/active length mismatch"
        else
          Ok
            {
              digest;
              seq;
              mutations;
              vclock;
              last_time;
              active;
              rates;
              rho;
              rho_fresh;
              last_tier;
              counters = List.rev !counters;
            }))
    | first :: _ -> err "bad magic %S" first
    | [] -> err "empty file")
