(** The gateway service's line protocol.

    One request per line, one JSON-object response per line.  Requests
    are plain text (easy to type into a socket by hand); responses are
    self-contained JSON objects rendered with {!Ffc_obs.Jsonf}, so the
    response stream doubles as the admission-decision log and obeys the
    trace byte-identity contract: model values and logical timestamps
    only, never wall-clock time.

    Request grammar (whitespace-separated; [key=value] fields may come
    in any order after the positional part):

    {v
    add [NAME] [t=TIME] [size=SIZE]     join: NAME picks a specific idle
                                        slot, omitted = first idle slot
    batch                               open a batch bracket: subsequent
                                        adds are buffered and admitted
                                        together on "end"
    end                                 close the bracket: one rank-k
                                        solve, one reply per member plus
                                        a trailing batch summary
    remove NAME [t=TIME]                leave
    query [t=TIME]                      status + supervised verdict
    stats [t=TIME]                      counters snapshot (never shed;
                                        stale=true when degraded)
    metrics [prom]                      live metrics registry, compact
                                        JSON or Prometheus text ("prom")
    snapshot                            force a state snapshot now
    shutdown                            snapshot (if configured) and stop
    v}

    [t] is the request's {e logical} arrival time (the churn driver
    stamps its Poisson arrivals); omitted means "immediately after the
    previous request".  [size] is the flow's document-size demand —
    recorded for the decision log and used by the churn driver to
    schedule the departure. *)

type add = { conn : string option; time : float option; size : float option }
(** The payload of one [add] request — also the unit a batch bracket
    accumulates. *)

type request =
  | Add of add
  | Batch_begin
  | Batch_end
  | Remove of { conn : string; time : float option }
  | Query of { time : float option }
  | Stats of { time : float option }
  | Metrics of { prom : bool }
  | Snapshot
  | Shutdown

val parse : string -> (request, string) result
(** Parse one request line.  Blank lines and [#]-comments are rejected
    with a descriptive error (the server replies with an error object
    rather than dying). *)

val render : request -> string
(** The canonical request line for [req] — [parse (render r)] is [Ok r].
    Used by the churn driver. *)

(** {2 Response scraping}

    Minimal field extraction from the service's own flat JSON responses
    — enough for the churn driver and the CI smoke scripts to read
    decisions without a JSON parser dependency.  [key] must name a
    top-level or embedded field; the {e first} occurrence wins.
    (Aliases of the {!Ffc_obs.Jsonf} scrapers, which the trace
    aggregator and bench comparator share.) *)

val json_string_field : string -> key:string -> string option
val json_number_field : string -> key:string -> float option
val json_bool_field : string -> key:string -> bool option
