(** Crash-safe service state snapshots.

    A snapshot is the whole resumable state of the admission engine —
    active mask, steady-state rates (exact IEEE doubles via
    {!Ffc_obs.Jsonf.float_rt}), logical clock, ladder position and
    counters — rendered to a deterministic text format and published
    with the write-to-temp + atomic-rename idiom, so a reader (or a
    restarted server) only ever sees a complete snapshot, never a torn
    one.  Rendering is a pure function of the state: re-snapshotting an
    untouched restored engine reproduces the pre-crash file
    byte-for-byte — the recovery check the CI smoke job asserts.

    The [digest] field fingerprints the engine's configuration
    (topology, adjusters, signal, admission thresholds); {!Admission}
    refuses to restore a snapshot taken under a different
    configuration.  The Jacobian cache is deliberately {e not}
    persisted: it is recomputed (bit-identically, and warm from the
    result cache when one is installed) on first use after restart. *)

type state = {
  digest : string;  (** Config fingerprint (hex). *)
  seq : int;  (** Requests processed. *)
  mutations : int;  (** Committed joins/leaves. *)
  vclock : float;  (** Logical work clock. *)
  last_time : float;  (** Latest request arrival time. *)
  active : bool array;
  rates : float array;  (** Full-length vector; 0 at inactive slots. *)
  rho : float;  (** Last spectral-radius value. *)
  rho_fresh : bool;  (** Whether [rho] was computed at [rates] or is a
                         cached-tier estimate. *)
  last_tier : string;  (** Ladder tier of the last served mutation. *)
  counters : (string * int) list;  (** In canonical render order. *)
}

val render : state -> string
(** The exact file contents (deterministic; ends with a newline). *)

val write : path:string -> state -> int
(** Atomically publish to [path] (temp file + rename); returns the byte
    count.  Raises [Sys_error]/[Unix.Unix_error] on I/O failure. *)

val load : path:string -> (state, string) result
(** Parse a snapshot file; [Error] describes the first malformed line
    (corrupt snapshots are reported, never silently half-loaded). *)
