(** The online admission-control engine (ROADMAP item 2).

    A long-running gateway service over a fixed universe of connection
    slots: [add] activates an idle slot (a flow arrives), [remove]
    deactivates it (the flow's document finished).  Each [add] runs an
    {e admission test} in the spirit of Musacchio–Walrand ingress
    discarding — the flow enters only when the network can absorb it:

    - the candidate fair steady state gives the newcomer at least
      [min_rate] (its minimum useful throughput);
    - the Theorem-5 min-ratio check passes: every active flow keeps at
      least [1 − epsilon] of its reservation baseline
      ({!Ffc_core.Robustness.baselines_masked} against the candidate
      population);
    - the candidate steady state is systemically stable: ρ(DF) < 1.

    Rejected flows are discarded at ingress — engine state is
    untouched.

    {b The degradation ladder.}  Work is accounted on a logical clock:
    each request carries an arrival time [t] (stamped by the churn
    driver) and each served tier has a logical cost; the {e backlog}
    [vclock − t] measures overload.  As it grows the engine degrades,
    tier by tier, and every response records the tier that served it:

    - {b full}: from-scratch steady state + sparse DF + exact spectral
      radius (idle default — the most accurate answer);
    - {b incremental}: O(churn) patches —
      {!Ffc_core.Steady_state.update_fair} /
      {!Ffc_core.Jacobian.update_flow} /
      [spectral_radius_incremental] — bit-identical to full by the PR-6
      contract, at a fraction of the cost;
    - {b cached}: exact incremental rates, but ρ(DF) is the cached
      previous estimate ([rho_fresh = false] in responses) — no Jacobian
      work at all;
    - {b shed}: beyond the last threshold an [add] is rejected at
      ingress without touching the solvers (removals are never shed —
      departures must always be processed).

    When the backlog drains the ladder steps back up; transitions are
    counted and traced ([svc.degrade]/[svc.recover]).

    {b Robustness envelope.}  Every solve is wrapped in a bounded retry
    loop with deterministic jittered exponential backoff — the jitter
    derives from [(seed, seq)], so two runs of the same request stream
    back off identically.  A tier whose solve keeps failing degrades to
    the next tier; a request that exhausts the whole ladder is rejected
    (add) or answered from patched rates alone (remove).  The optional
    per-solve [timeout] is {e observational}: a solve that finishes
    after the deadline keeps its result (the work is done — discarding
    it would re-pay the whole solve) and the overrun is counted only in
    the ambient metrics registry ([service.timeouts]), which sits
    outside the determinism contract like the latency histograms.

    {b Batched admission.}  {!handle_batch} admits a whole bracket of
    adds as one rank-k solve: member rates come from a chain of
    {!Ffc_core.Steady_state.update_fair} patches (bit-identical to the
    serial rates by the incremental-kernel contract) and the expensive
    stability evidence — DF and ρ(DF) — is computed once, on the
    batch-final accepted mask.  Per-member verdicts bit-match serial
    execution whenever ρ stays on one side of 1 across the batch (the
    regular case); if the single check lands at ρ ≥ 1 the candidates
    are replayed serially against committed state, reproducing the
    greedy serial verdicts including which member crosses the line.

    Determinism contract: every response line is a pure function of the
    request stream and the configuration — byte-identical at any
    [--jobs], across restarts from a snapshot, and across cache
    cold/warm runs; [timeout] no longer weakens this. *)

open Ffc_topology
open Ffc_core
open Ffc_faults

type tier = Full | Incremental | Cached

val tier_label : tier -> string
(** ["full"], ["incremental"], ["cached"]. *)

type config = {
  signal : Signal.t;
  b_ss : float;  (** Steady signal pinning the fair steady state. *)
  epsilon : float;  (** Theorem-5 slack: admit only if min-ratio ≥ 1−ε. *)
  min_rate : float;  (** Ingress discard: newcomer needs at least this. *)
  backlog_incremental : float;  (** Backlog at which full → incremental. *)
  backlog_cached : float;  (** Backlog at which incremental → cached. *)
  backlog_shed : float;  (** Backlog beyond which adds are shed. *)
  cost_full : float;  (** Logical service cost per tier... *)
  cost_incremental : float;
  cost_cached : float;
  cost_shed : float;  (** ...including the cost of saying no. *)
  cost_query : float;
  timeout : float;  (** Per-solve wall-clock deadline, seconds; 0 = off.
                        Observational only: overruns are counted in the
                        metrics registry, never reflected in replies. *)
  retries : int;  (** Backoff retries per solve. *)
  backoff_base : float;  (** Base backoff delay, seconds. *)
  sleep_backoff : bool;  (** Really sleep between retries (daemon mode);
                             off in tests so retried runs stay fast. *)
  seed : int;  (** Backoff-jitter seed. *)
  plan : Fault.plan;  (** Fault plan for [query]'s supervised verdict. *)
  sup_retries : int;  (** Supervisor damping retries for [query]. *)
  escape : float;  (** Supervisor divergence threshold for [query]. *)
}

val default_config : config
(** linear-fractional signal, b_SS 0.5, ε 1e-6, min_rate 0, ladder at
    backlog 0.5 / 2 / 8 logical seconds with costs 0.05 / 0.01 / 0.002 /
    5e-4 (query 0.05), timeout off, 2 retries at base 0.05 s without
    sleeping, seed 0, empty fault plan. *)

type t

val create :
  ?config:config ->
  ?failure_hook:(seq:int -> attempt:int -> bool) ->
  ?slow_hook:(seq:int -> attempt:int -> float) ->
  Controller.t ->
  net:Network.t ->
  t
(** A fresh engine over [net]'s slots, all idle.  [failure_hook] is a
    test seam: returning [true] makes that solve attempt fail as a
    transient solver error (exercises timeout/backoff/degrade paths).
    [slow_hook] is the timeout test seam: the returned duration (in
    seconds, > 0) is slept before that solve attempt runs, so a test
    can make a solve overrun [config.timeout] without faking clocks. *)

type reply = { line : string; mutated : bool }
(** One response line (no trailing newline) and whether the request
    committed a join/leave (drives the server's snapshot cadence). *)

val handle : ?sid:int -> t -> Protocol.request -> reply
(** Serve [Add]/[Remove]/[Query]/[Stats].  [Metrics]/[Snapshot]/
    [Shutdown] are the server's business, and [Batch_begin]/[Batch_end]
    are session-level bracket state (use {!handle_batch}); all raise
    [Invalid_argument] here.  [sid] tags the request's span with the
    serving session (attribute only — replies never carry it).

    Read-only verbs are {e never} refused: past the shed threshold a
    [query] is answered from the last committed state (tier ["shed"],
    verdict withheld, [stale=true]) at shed cost, a [query] in the
    cached band skips the verdict machinery and is likewise tagged
    [stale=true], and [stats] is free — no vclock charge — reporting
    tier ["shed"] with [stale=true] when overloaded.

    When an ambient {!Ffc_obs.Ctx} is installed, every request runs
    under a ["svc.request"] span (op at start; served tier and decision
    as end attributes) and its wall-clock latency is observed in the
    per-tier [service.latency.<tier>] histogram (zeroed under
    [--trace-deterministic], like the span timing channel). *)

val handle_batch : ?sid:int -> t -> Protocol.add list -> reply list
(** Admit a bracket of adds as one rank-k solve (see the module
    preamble).  Returns exactly [length adds + 1] replies: one per
    member, in request order, each carrying a ["batch"] field with the
    bracket size, then a trailing batch summary
    ([op = "batch"], member tallies, the batch tier and ρ).  Member
    tiers never leave the full/incremental/cached/shed vocabulary:
    admitted members report the batch's entry tier ("cached" when the
    stability evidence is stale), per-member rejections report
    ["cached"] (they only received patch work).  When an ambient
    {!Ffc_obs.Ctx} is installed the whole bracket runs under a single
    ["svc.batch"] span — the observable witness that a batch of K adds
    performs exactly one ρ(DF) check. *)

val next_seq : t -> int
(** Claim the next request sequence number (used by the server for the
    snapshot/shutdown replies it composes itself). *)

(** {2 Introspection} *)

val net : t -> Network.t
val active : t -> bool array
val active_count : t -> int
val rates : t -> float array
val rho : t -> float
val seq : t -> int
val mutations : t -> int
val vclock : t -> float
val config_digest : t -> string
(** Hex fingerprint of everything that must match for a snapshot to be
    restorable: topology, adjusters, signal, thresholds, costs, seeds,
    fault plan. *)

(** {2 Snapshot integration} *)

val state : t -> Snapshot.state
(** The engine's resumable state (digest included). *)

val restore : t -> Snapshot.state -> (unit, string) result
(** Adopt a snapshot taken by an identically-configured engine; refuses
    (with a message) on digest or size mismatch.  The Jacobian cache is
    rebuilt lazily — bit-identically — on first incremental use. *)
