open Ffc_numerics

type size_dist =
  | Const of float
  | Exp of float
  | Uniform of float * float
  | Pareto of { alpha : float; xmin : float }

let parse_size_dist s =
  let num x = float_of_string_opt x in
  match String.split_on_char ':' s with
  | [ "const"; v ] -> (
    match num v with
    | Some v when v > 0. -> Ok (Const v)
    | _ -> Error "const needs a positive size")
  | [ "exp"; m ] -> (
    match num m with
    | Some m when m > 0. -> Ok (Exp m)
    | _ -> Error "exp needs a positive mean")
  | [ "uniform"; lo; hi ] -> (
    match (num lo, num hi) with
    | Some lo, Some hi when 0. < lo && lo <= hi -> Ok (Uniform (lo, hi))
    | _ -> Error "uniform needs bounds 0 < lo <= hi")
  | [ "pareto"; alpha; xmin ] -> (
    match (num alpha, num xmin) with
    | Some alpha, Some xmin when alpha > 0. && xmin > 0. ->
      Ok (Pareto { alpha; xmin })
    | _ -> Error "pareto needs positive alpha and xmin")
  | _ ->
    Error
      (Printf.sprintf
         "unknown size distribution %S (try const:S, exp:M, uniform:LO:HI, \
          pareto:ALPHA:XMIN)"
         s)

let describe_size_dist = function
  | Const v -> Printf.sprintf "const:%g" v
  | Exp m -> Printf.sprintf "exp:%g" m
  | Uniform (lo, hi) -> Printf.sprintf "uniform:%g:%g" lo hi
  | Pareto { alpha; xmin } -> Printf.sprintf "pareto:%g:%g" alpha xmin

let sample_size rng = function
  | Const v -> v
  | Exp m -> -.m *. Float.log (Rng.uniform_pos rng)
  | Uniform (lo, hi) -> lo +. ((hi -. lo) *. Rng.uniform rng)
  | Pareto { alpha; xmin } ->
    xmin *. Float.pow (Rng.uniform_pos rng) (-1. /. alpha)

type stats = {
  arrivals : int;
  admits : int;
  rejects : int;
  sheds : int;
  departures : int;
  queries : int;
  errors : int;
  min_min_ratio : float option;
  last_time : float;
}

let run ?(query_every = 0) ?(batch = 1) ?send_batch ~seed ~rate ~arrivals
    ~size_dist ~send () =
  if rate <= 0. then invalid_arg "Churn.run: rate must be positive";
  if arrivals < 0 then invalid_arg "Churn.run: arrivals must be >= 0";
  if batch < 1 then invalid_arg "Churn.run: batch must be >= 1";
  if batch > 1 && send_batch = None then
    invalid_arg "Churn.run: batch > 1 needs a send_batch callback";
  let rng = Rng.create seed in
  (* Pending departures, kept sorted by time (ties by insertion order —
     list append preserves it). Populations are service-sized, so a
     sorted list beats pulling in a heap. *)
  let pending = ref ([] : (float * string) list) in
  let insert t conn =
    let rec go = function
      | [] -> [ (t, conn) ]
      | (t', _) :: _ as l when t' > t -> (t, conn) :: l
      | x :: rest -> x :: go rest
    in
    pending := go !pending
  in
  let stats =
    ref
      {
        arrivals = 0;
        admits = 0;
        rejects = 0;
        sheds = 0;
        departures = 0;
        queries = 0;
        errors = 0;
        min_min_ratio = None;
        last_time = 0.;
      }
  in
  let sent = ref 0 in
  let note_time t = stats := { !stats with last_time = Float.max !stats.last_time t } in
  (* Account one add's reply: decision tallies, the running min-ratio,
     and the departure the admitted rate schedules.  Shared by the
     serial path and the batched member replies. *)
  let note_add_reply t size resp =
    if Protocol.json_bool_field resp ~key:"ok" = Some false then
      stats := { !stats with errors = !stats.errors + 1 }
    else
      match Protocol.json_string_field resp ~key:"decision" with
      | Some "admit" -> (
        stats := { !stats with admits = !stats.admits + 1 };
        (match Protocol.json_number_field resp ~key:"min_ratio" with
        | Some r ->
          let m =
            match !stats.min_min_ratio with
            | None -> r
            | Some m -> Float.min m r
          in
          stats := { !stats with min_min_ratio = Some m }
        | None -> ());
        match
          ( Protocol.json_string_field resp ~key:"conn",
            Protocol.json_number_field resp ~key:"rate" )
        with
        | Some conn, Some r when r > 0. -> insert (t +. (size /. r)) conn
        | Some conn, _ ->
          (* Admitted at zero rate should be impossible; remove it
             immediately so the slot is not leaked forever. *)
          insert t conn
        | None, _ -> ())
      | Some _ when Protocol.json_string_field resp ~key:"tier" = Some "shed" ->
        stats := { !stats with sheds = !stats.sheds + 1 }
      | Some _ -> stats := { !stats with rejects = !stats.rejects + 1 }
      | None -> stats := { !stats with errors = !stats.errors + 1 }
  in
  (* Adds buffered in an open batch bracket (newest first). *)
  let buffer = ref ([] : (float * float * string) list) in
  let flush_batch () =
    match !buffer with
    | [] -> ()
    | buf ->
      let buf = List.rev buf in
      buffer := [];
      let lines =
        (Protocol.render Batch_begin :: List.map (fun (_, _, l) -> l) buf)
        @ [ Protocol.render Batch_end ]
      in
      let replies = (Option.get send_batch) lines in
      (* One reply per member in order, then the batch summary. *)
      let rec pair bs rs =
        match (bs, rs) with
        | [], _ -> ()
        | (t, size, _) :: bs', r :: rs' ->
          note_add_reply t size r;
          pair bs' rs'
        | _ :: bs', [] ->
          (* A member reply is missing (transport trouble): count it as
             an error rather than silently losing the arrival. *)
          stats := { !stats with errors = !stats.errors + 1 };
          pair bs' []
      in
      let members =
        match List.rev replies with
        | _summary :: rev_members when List.length replies > List.length buf ->
          List.rev rev_members
        | _ -> replies
      in
      pair buf members
  in
  let maybe_query t =
    if query_every > 0 && !sent mod query_every = 0 then begin
      flush_batch ();
      let resp = send (Protocol.render (Query { time = Some t })) in
      incr sent;
      stats := { !stats with queries = !stats.queries + 1 };
      ignore resp
    end
  in
  let depart (t, conn) =
    (* The bracket must flush before any departure so the request
       stream the engine sees stays globally time-ordered. *)
    flush_batch ();
    let resp = send (Protocol.render (Remove { conn; time = Some t })) in
    incr sent;
    note_time t;
    if Protocol.json_bool_field resp ~key:"ok" = Some false then
      stats := { !stats with errors = !stats.errors + 1 }
    else stats := { !stats with departures = !stats.departures + 1 };
    maybe_query t
  in
  let arrive t =
    let size = sample_size rng size_dist in
    let line =
      Protocol.render (Add { conn = None; time = Some t; size = Some size })
    in
    incr sent;
    note_time t;
    stats := { !stats with arrivals = !stats.arrivals + 1 };
    if batch <= 1 then note_add_reply t size (send line)
    else begin
      buffer := (t, size, line) :: !buffer;
      if List.length !buffer >= batch then flush_batch ()
    end;
    maybe_query t
  in
  let t = ref 0. in
  for _ = 1 to arrivals do
    t := !t +. (-.Float.log (Rng.uniform_pos rng) /. rate);
    (* Flush every departure scheduled before this arrival first, so the
       request stream is globally time-ordered. *)
    let rec flush () =
      match !pending with
      | (td, _) :: _ when td <= !t ->
        let ev = List.hd !pending in
        pending := List.tl !pending;
        depart ev;
        flush ()
      | _ -> ()
    in
    flush ();
    arrive !t
  done;
  flush_batch ();
  List.iter depart !pending;
  pending := [];
  !stats
