(** The gateway service server: session dispatch, snapshot cadence, and
    the Unix-domain-socket daemon behind [ffc serve].

    The server wraps an {!Admission} engine with the requests the engine
    refuses to own — [snapshot] and [shutdown] — the per-session [batch]
    bracket state, plus crash safety: once [snapshot_every] committed
    mutations have accumulated since the last snapshot the state is
    automatically published to [snapshot_path] ({!Snapshot.write}'s
    fsync'd atomic rename), shutdown publishes a final snapshot, and
    {!recover} adopts whatever snapshot a previous incarnation left
    behind.  Kill the daemon at any point and the restarted server
    resumes from a state at most [snapshot_every] mutations old; restart
    immediately after a snapshot and the resumed state is bit-identical
    (the CI smoke job re-snapshots and diffs).

    {b Concurrency model.}  The daemon is a single-threaded
    [Unix.select] event loop serving many sessions at once: per-session
    read/write buffers, non-blocking writes (a slow reader never stalls
    another session's replies — a reader whose pending replies exceed
    1 MiB is shed instead), optional per-session idle timeouts, and a
    bounded session table with accept-time shedding past the limit.
    The {e admission engine} stays strictly serial behind its logical
    clock: requests are executed one at a time in the order the loop
    reads them, so the decision log is a pure function of the global
    request arrival order — byte-identical however that order is
    distributed over sessions.  Transient [accept] errors never kill
    the daemon ({!classify_accept_error}).

    {b Batch brackets} are session state: [batch] opens a bracket,
    subsequent [add]s buffer silently, [end] admits them as one
    {!Admission.handle_batch} rank-k solve and flushes one reply per
    member plus a summary.  A session that disconnects with an open
    bracket discards it — a bracket is never applied implicitly. *)

type t

val create : ?snapshot_path:string -> ?snapshot_every:int -> Admission.t -> t
(** [snapshot_every] defaults to 16 mutations; no [snapshot_path] means
    snapshotting is off ([snapshot] requests report an error). *)

val engine : t -> Admission.t

val recover : t -> (bool, string) result
(** Restore from [snapshot_path] if a snapshot exists there:
    [Ok true] restored, [Ok false] nothing to restore, [Error] the file
    exists but is corrupt or from a different configuration (the server
    must refuse to start rather than serve from a wrong state). *)

type session
(** Per-client protocol state: the session id (tagged on request spans)
    and the open batch bracket, if any. *)

val new_session : ?sid:int -> unit -> session
(** A fresh session.  [sid] defaults to 0 (the scripted/in-process
    session); the daemon numbers accepted sessions 1, 2, ... per run,
    so sids — and the span attributes carrying them — stay
    deterministic. *)

val handle_session_line :
  t ->
  session ->
  string ->
  [ `Replies of string list | `Silent | `Quit of string list ]
(** Serve one request line within [session].  Blank lines and [#]
    comments are [`Silent] (scripts stay annotatable); parse errors get
    an [ok:false] reply that still consumes a sequence number, so the
    decision log stays aligned across replays.  [batch] and buffered
    adds are [`Silent]; [end] returns the whole bracket's replies at
    once.  [`Quit] carries the final replies — shutdown after writing
    them. *)

val handle_line : t -> string -> [ `Reply of string | `Silent | `Quit of string ]
(** Bracketless compatibility entry point: one throwaway session per
    call (batch brackets cannot span calls); multi-line replies are
    newline-joined.  Prefer {!handle_session_line}. *)

val run_script : t -> string list -> string list
(** Feed lines through {!handle_session_line} on a single fresh session
    (so [batch ... end] brackets work), collecting replies; stops after
    a shutdown line.  The in-process transport used by tests and
    [ffc serve --script]. *)

val classify_accept_error :
  Unix.error -> [ `Retry | `Ignore | `Backoff | `Fatal ]
(** How the event loop treats a failing [Unix.accept]: [`Retry]
    immediately ([EINTR]), [`Ignore] the vanished client and move on
    ([ECONNABORTED]/[EAGAIN]/[EWOULDBLOCK]), [`Backoff] — stop accepting
    this round but keep serving existing sessions ([EMFILE]/[ENFILE]/
    [ENOBUFS]/[ENOMEM]), [`Fatal] re-raise (a real bug must surface). *)

val serve : ?max_sessions:int -> ?idle_timeout:float -> t -> socket:string -> unit
(** Bind [socket] (an existing stale socket file is replaced) and run
    the event loop until a [shutdown] request or a signal.  At most
    [max_sessions] (default 64) concurrent sessions; connections past
    the limit receive one shed line and are closed at accept.
    [idle_timeout] > 0 closes sessions with no traffic for that many
    seconds (default 0 = never).  On shutdown, pending replies are
    drained (bounded grace period) and the socket file is removed. *)
