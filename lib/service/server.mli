(** The gateway service server: line dispatch, snapshot cadence, and
    the Unix-domain-socket daemon loop behind [ffc serve].

    The server wraps an {!Admission} engine with the two requests the
    engine refuses to own — [snapshot] and [shutdown] — plus crash
    safety: every [snapshot_every]-th committed mutation is
    automatically published to [snapshot_path] ({!Snapshot.write}'s
    atomic rename), shutdown publishes a final snapshot, and
    {!recover} adopts whatever snapshot a previous incarnation left
    behind.  Kill the daemon at any point and the restarted server
    resumes from a state at most [snapshot_every] mutations old; restart
    immediately after a snapshot and the resumed state is bit-identical
    (the CI smoke job re-snapshots and diffs).

    The daemon serves one client at a time — admission decisions are
    inherently serial (each depends on the population the previous one
    committed), so a single-threaded accept loop {e is} the concurrency
    model, not a shortcut. *)

type t

val create : ?snapshot_path:string -> ?snapshot_every:int -> Admission.t -> t
(** [snapshot_every] defaults to 16 mutations; no [snapshot_path] means
    snapshotting is off ([snapshot] requests report an error). *)

val engine : t -> Admission.t

val recover : t -> (bool, string) result
(** Restore from [snapshot_path] if a snapshot exists there:
    [Ok true] restored, [Ok false] nothing to restore, [Error] the file
    exists but is corrupt or from a different configuration (the server
    must refuse to start rather than serve from a wrong state). *)

val handle_line : t -> string -> [ `Reply of string | `Silent | `Quit of string ]
(** Serve one request line: the response to send back ([`Quit] is the
    final response — shutdown after replying).  Blank lines and [#]
    comments are [`Silent] (scripts stay annotatable); parse errors get
    an [ok:false] reply that still consumes a sequence number, so the
    decision log stays aligned across replays. *)

val run_script : t -> string list -> string list
(** Feed lines through {!handle_line}, collecting replies; stops after a
    shutdown line.  The in-process transport used by tests and
    [ffc serve --script]. *)

val serve : t -> socket:string -> unit
(** Bind [socket] (an existing stale socket file is replaced), then
    accept clients one at a time, serving line-by-line until a
    [shutdown] request or a signal.  Returns after shutdown with the
    socket file removed. *)
