type t = {
  engine : Admission.t;
  snapshot_path : string option;
  snapshot_every : int;
  (* Mutation count at the last published snapshot: the cadence rule is
     "snapshot once [snapshot_every] mutations have accumulated since",
     which stays correct when a batch commits many mutations at once
     and skips the exact multiple. *)
  mutable last_snap_mutations : int;
}

let create ?snapshot_path ?(snapshot_every = 16) engine =
  if snapshot_every <= 0 then
    invalid_arg "Server.create: snapshot_every must be positive";
  { engine; snapshot_path; snapshot_every; last_snap_mutations = 0 }

let engine t = t.engine

let recover t =
  match t.snapshot_path with
  | None -> Ok false
  | Some path ->
    if not (Sys.file_exists path) then Ok false
    else (
      match Snapshot.load ~path with
      | Error e -> Error e
      | Ok state -> (
        match Admission.restore t.engine state with
        | Ok () ->
          t.last_snap_mutations <- Admission.mutations t.engine;
          Ok true
        | Error e -> Error e))

let json fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Ffc_obs.Jsonf.add_escaped buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let jstr = Ffc_obs.Jsonf.string

let take_snapshot t ~seq =
  match t.snapshot_path with
  | None -> Error "snapshotting is off (no snapshot path configured)"
  | Some path ->
    let bytes = Snapshot.write ~path (Admission.state t.engine) in
    t.last_snap_mutations <- Admission.mutations t.engine;
    Ffc_obs.Ctx.incr_named "service.snapshots";
    (match Ffc_obs.Ctx.tracing () with
    | Some c -> Ffc_obs.Ctx.emit c (Ffc_obs.Event.svc_snapshot ~seq ~bytes)
    | None -> ());
    Ok bytes

let maybe_snapshot t =
  if
    t.snapshot_path <> None
    && Admission.mutations t.engine - t.last_snap_mutations >= t.snapshot_every
  then
    ignore (take_snapshot t ~seq:(Admission.seq t.engine) : (int, string) result)

(* ------------------------------------------------------------------ *)
(* Sessions: per-client protocol state                                  *)
(* ------------------------------------------------------------------ *)

type session = {
  sid : int;
  (* An open batch bracket accumulates adds (reversed) until "end". *)
  mutable bracket : Protocol.add list option;
}

let max_batch = 1024

(* Session ids are deterministic: scripted/in-process sessions default
   to 0, and the daemon numbers accepted sessions 1, 2, ... per run —
   a global counter would leak process history into the span stream. *)
let new_session ?(sid = 0) () = { sid; bracket = None }

let error_reply t msg =
  let seq = Admission.next_seq t.engine in
  json [ ("ok", "false"); ("seq", string_of_int seq); ("error", jstr msg) ]

let handle_session_line t s line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then `Silent
  else
    match Protocol.parse trimmed with
    | Error e -> `Replies [ error_reply t e ]
    | Ok req -> (
      match (s.bracket, req) with
      | None, Protocol.Batch_begin ->
        s.bracket <- Some [];
        `Silent
      | None, Protocol.Batch_end ->
        `Replies [ error_reply t "end without an open batch bracket" ]
      | Some _, Protocol.Batch_begin ->
        `Replies [ error_reply t "batch bracket already open" ]
      | Some adds, Protocol.Add a ->
        if List.length adds >= max_batch then begin
          s.bracket <- None;
          `Replies
            [
              error_reply t
                (Printf.sprintf "batch exceeds %d adds; bracket discarded"
                   max_batch);
            ]
        end
        else begin
          s.bracket <- Some (a :: adds);
          `Silent
        end
      | Some adds, Protocol.Batch_end ->
        s.bracket <- None;
        let replies =
          Admission.handle_batch ~sid:s.sid t.engine (List.rev adds)
        in
        if List.exists (fun r -> r.Admission.mutated) replies then
          maybe_snapshot t;
        `Replies (List.map (fun r -> r.Admission.line) replies)
      | Some _, _ ->
        (* Anything else inside a bracket is a protocol error: brackets
           exist to coalesce adds, and silently interleaving other verbs
           would make the batch semantics ambiguous.  The bracket stays
           open. *)
        `Replies [ error_reply t "only add is allowed inside a batch bracket" ]
      | None, Protocol.Snapshot -> (
        let seq = Admission.next_seq t.engine in
        match take_snapshot t ~seq with
        | Error e ->
          `Replies
            [ json [ ("ok", "false"); ("seq", string_of_int seq); ("error", jstr e) ] ]
        | Ok bytes ->
          `Replies
            [
              json
                [
                  ("ok", "true");
                  ("op", jstr "snapshot");
                  ("seq", string_of_int seq);
                  ("bytes", string_of_int bytes);
                  ("mutations", string_of_int (Admission.mutations t.engine));
                ];
            ])
      | None, Protocol.Shutdown ->
        let seq = Admission.next_seq t.engine in
        let snapshot_field =
          (* Best effort: shutdown still succeeds when the final snapshot
             cannot be written, but the reply says so. *)
          match t.snapshot_path with
          | None -> [ ("snapshot", "false") ]
          | Some _ -> (
            match take_snapshot t ~seq with
            | Ok _ -> [ ("snapshot", "true") ]
            | Error e -> [ ("snapshot", "false"); ("snapshot_error", jstr e) ])
        in
        `Quit
          [
            json
              ([
                 ("ok", "true");
                 ("op", jstr "shutdown");
                 ("seq", string_of_int seq);
                 ("served", string_of_int (Admission.seq t.engine));
               ]
              @ snapshot_field);
          ]
      | None, Protocol.Metrics { prom } -> (
        let seq = Admission.next_seq t.engine in
        (* Live introspection of the daemon's ambient metrics registry —
           answered at the server level so the admission engine's logical
           clock and decision stream stay untouched. *)
        match Ffc_obs.Ctx.ambient () with
        | None ->
          `Replies
            [
              json
                [
                  ("ok", "false");
                  ("seq", string_of_int seq);
                  ("error", jstr "no metrics registry installed");
                ];
            ]
        | Some c ->
          let snap = Ffc_obs.Metrics.snapshot (Ffc_obs.Ctx.metrics c) in
          let body =
            if prom then
              [
                ("format", jstr "prometheus");
                ("text", jstr (Ffc_obs.Metrics.render_prometheus snap));
              ]
            else
              [
                ("format", jstr "json");
                ("metrics", Ffc_obs.Metrics.render_json_line snap);
              ]
          in
          `Replies
            [
              json
                ([ ("ok", "true"); ("op", jstr "metrics"); ("seq", string_of_int seq) ]
                @ body);
            ])
      | None, req ->
        let { Admission.line = reply; mutated } =
          Admission.handle ~sid:s.sid t.engine req
        in
        if mutated then maybe_snapshot t;
        `Replies [ reply ])

let handle_line t line =
  (* Bracketless compatibility entry point: each call runs in a throwaway
     session, so batch brackets cannot span calls (use
     {!handle_session_line} for that). *)
  match handle_session_line t (new_session ()) line with
  | `Silent -> `Silent
  | `Replies rs -> `Reply (String.concat "\n" rs)
  | `Quit rs -> `Quit (String.concat "\n" rs)

let run_script t lines =
  let s = new_session () in
  let rec go acc = function
    | [] -> List.rev acc
    | line :: rest -> (
      match handle_session_line t s line with
      | `Silent -> go acc rest
      | `Replies rs -> go (List.rev_append rs acc) rest
      | `Quit rs -> List.rev (List.rev_append rs acc))
  in
  go [] lines

(* ------------------------------------------------------------------ *)
(* Unix-domain-socket daemon: single-threaded select event loop         *)
(* ------------------------------------------------------------------ *)

(* How [Unix.accept] failures are handled; exposed for the dedicated
   test.  Transient interruptions retry immediately, already-gone
   clients are ignored, resource exhaustion stops accepting for this
   loop round (existing sessions keep being served; the listener is
   retried next round), anything else is a real bug and must surface. *)
let classify_accept_error = function
  | Unix.EINTR -> `Retry
  | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK -> `Ignore
  | Unix.EMFILE | Unix.ENFILE | Unix.ENOBUFS | Unix.ENOMEM -> `Backoff
  | _ -> `Fatal

type conn = {
  fd : Unix.file_descr;
  state : session;
  inbuf : Buffer.t;  (* unparsed bytes: at most one partial line *)
  mutable out : string;  (* pending reply bytes *)
  mutable out_pos : int;
  mutable last_activity : float;
  mutable closing : bool;  (* drain [out], then close *)
}

let max_out_buffer = 1 lsl 20  (* slow-reader backpressure bound *)
let max_line_bytes = 1 lsl 16
let shutdown_grace = 2.0  (* seconds to drain replies after shutdown *)

let serve ?(max_sessions = 64) ?(idle_timeout = 0.) t ~socket =
  if max_sessions <= 0 then invalid_arg "Server.serve: max_sessions must be positive";
  (* A dead server leaves its socket file behind; replace it.  Refuse
     to unlink anything that is not a socket — a mistyped path must not
     delete a real file. *)
  (match Unix.lstat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" socket)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* A client vanishing mid-reply must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Unix.close lfd;
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind lfd (Unix.ADDR_UNIX socket);
      Unix.listen lfd (max 8 (min max_sessions 128));
      Unix.set_nonblock lfd;
      let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
      let next_sid = ref 0 in
      let shutting_down = ref false in
      let shutdown_deadline = ref infinity in
      let scratch = Bytes.create 4096 in
      let drop c =
        Hashtbl.remove conns c.state.sid;
        try Unix.close c.fd with Unix.Unix_error _ -> ()
      in
      let pending c = String.length c.out - c.out_pos in
      let enqueue c lines =
        let add = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
        if pending c + String.length add > max_out_buffer then begin
          (* The reader is too slow to keep up with its own replies:
             shed the session rather than buffer without bound or stall
             the loop.  The engine's decisions stand either way. *)
          Ffc_obs.Ctx.incr_named "service.slow_reader_drops";
          drop c
        end
        else if pending c = 0 then begin
          c.out <- add;
          c.out_pos <- 0
        end
        else begin
          c.out <- String.sub c.out c.out_pos (pending c) ^ add;
          c.out_pos <- 0
        end
      in
      let sids () = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) conns []) in
      let process_input c =
        (* Split complete lines off the head of [inbuf], keeping the
           partial tail for the next read. *)
        let data = Buffer.contents c.inbuf in
        match String.rindex_opt data '\n' with
        | None ->
          if String.length data > max_line_bytes then begin
            enqueue c [ error_reply t "request line too long" ];
            if Hashtbl.mem conns c.state.sid then begin
              Buffer.clear c.inbuf;
              c.closing <- true
            end
          end
        | Some last ->
          Buffer.clear c.inbuf;
          Buffer.add_substring c.inbuf data (last + 1)
            (String.length data - last - 1);
          let lines = String.split_on_char '\n' (String.sub data 0 last) in
          List.iter
            (fun line ->
              if Hashtbl.mem conns c.state.sid && not !shutting_down then
                match handle_session_line t c.state line with
                | `Silent -> ()
                | `Replies rs -> enqueue c rs
                | `Quit rs ->
                  enqueue c rs;
                  if Hashtbl.mem conns c.state.sid then c.closing <- true;
                  shutting_down := true;
                  shutdown_deadline := Unix.gettimeofday () +. shutdown_grace)
            lines
      in
      let accept_round () =
        let continue = ref true in
        while !continue do
          match Unix.accept lfd with
          | cfd, _ ->
            Unix.set_nonblock cfd;
            if Hashtbl.length conns >= max_sessions then begin
              (* Accept-time shedding: the bounded session table is the
                 service's connection backpressure.  The shed line is
                 composed without touching the engine, so the decision
                 log never depends on connection timing. *)
              Ffc_obs.Ctx.incr_named "service.sessions_shed";
              let line =
                json
                  [
                    ("ok", "false");
                    ("error", jstr "session table full; shed at accept");
                    ("sessions", string_of_int max_sessions);
                  ]
                ^ "\n"
              in
              (try
                 ignore
                   (Unix.single_write_substring cfd line 0 (String.length line)
                     : int)
               with Unix.Unix_error _ -> ());
              (try Unix.close cfd with Unix.Unix_error _ -> ())
            end
            else begin
              Ffc_obs.Ctx.incr_named "service.sessions_opened";
              incr next_sid;
              let state = new_session ~sid:!next_sid () in
              Hashtbl.replace conns state.sid
                {
                  fd = cfd;
                  state;
                  inbuf = Buffer.create 256;
                  out = "";
                  out_pos = 0;
                  last_activity = Unix.gettimeofday ();
                  closing = false;
                }
            end
          | exception Unix.Unix_error (e, _, _) -> (
            match classify_accept_error e with
            | `Retry -> ()
            | `Ignore -> continue := false
            | `Backoff ->
              Ffc_obs.Ctx.incr_named "service.accept_backoffs";
              continue := false
            | `Fatal -> raise (Unix.Unix_error (e, "accept", socket)))
        done
      in
      while
        not
          (!shutting_down
          && (Unix.gettimeofday () > !shutdown_deadline
             || List.for_all
                  (fun sid ->
                    match Hashtbl.find_opt conns sid with
                    | None -> true
                    | Some c -> pending c = 0)
                  (sids ())))
      do
        let now = Unix.gettimeofday () in
        let reads =
          (if !shutting_down then [] else [ lfd ])
          @ List.filter_map
              (fun sid ->
                match Hashtbl.find_opt conns sid with
                | Some c when (not c.closing) && not !shutting_down -> Some c.fd
                | _ -> None)
              (sids ())
        in
        let writes =
          List.filter_map
            (fun sid ->
              match Hashtbl.find_opt conns sid with
              | Some c when pending c > 0 -> Some c.fd
              | _ -> None)
            (sids ())
        in
        let timeout =
          if !shutting_down then 0.05
          else if idle_timeout > 0. then
            Hashtbl.fold
              (fun _ c acc ->
                Float.min acc (Float.max 0.01 (c.last_activity +. idle_timeout -. now)))
              conns 1.0
          else if writes = [] then -1.0
          else 1.0
        in
        let readable, writable, _ =
          try Unix.select reads writes [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if List.mem lfd readable then accept_round ();
        (* Read phase, in stable sid order so the service order of
           simultaneously-ready sessions is reproducible. *)
        List.iter
          (fun sid ->
            match Hashtbl.find_opt conns sid with
            | None -> ()
            | Some c ->
              if List.mem c.fd readable then (
                match Unix.read c.fd scratch 0 (Bytes.length scratch) with
                | 0 ->
                  (* EOF: an unterminated batch bracket dies with the
                     session — a bracket is never applied implicitly. *)
                  if pending c = 0 then drop c else c.closing <- true
                | n ->
                  c.last_activity <- Unix.gettimeofday ();
                  Buffer.add_subbytes c.inbuf scratch 0 n;
                  process_input c
                | exception
                    Unix.Unix_error
                      ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                  ()
                | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
                  ->
                  drop c))
          (sids ());
        (* Write phase: non-blocking, partial writes kept for the next
           round — a slow reader never stalls the loop. *)
        List.iter
          (fun sid ->
            match Hashtbl.find_opt conns sid with
            | None -> ()
            | Some c ->
              if (List.mem c.fd writable || !shutting_down) && pending c > 0 then (
                match
                  Unix.single_write_substring c.fd c.out c.out_pos (pending c)
                with
                | n ->
                  c.out_pos <- c.out_pos + n;
                  c.last_activity <- Unix.gettimeofday ();
                  if pending c = 0 && c.closing then drop c
                | exception
                    Unix.Unix_error
                      ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                  ()
                | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
                  ->
                  drop c))
          (sids ());
        if idle_timeout > 0. && not !shutting_down then begin
          let now = Unix.gettimeofday () in
          List.iter
            (fun sid ->
              match Hashtbl.find_opt conns sid with
              | Some c when now -. c.last_activity > idle_timeout ->
                Ffc_obs.Ctx.incr_named "service.idle_closed";
                drop c
              | _ -> ())
            (sids ())
        end
      done;
      List.iter
        (fun sid ->
          match Hashtbl.find_opt conns sid with None -> () | Some c -> drop c)
        (sids ()))
