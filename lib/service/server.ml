type t = {
  engine : Admission.t;
  snapshot_path : string option;
  snapshot_every : int;
}

let create ?snapshot_path ?(snapshot_every = 16) engine =
  if snapshot_every <= 0 then
    invalid_arg "Server.create: snapshot_every must be positive";
  { engine; snapshot_path; snapshot_every }

let engine t = t.engine

let recover t =
  match t.snapshot_path with
  | None -> Ok false
  | Some path ->
    if not (Sys.file_exists path) then Ok false
    else (
      match Snapshot.load ~path with
      | Error e -> Error e
      | Ok state -> (
        match Admission.restore t.engine state with
        | Ok () -> Ok true
        | Error e -> Error e))

let json fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Ffc_obs.Jsonf.add_escaped buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let jstr = Ffc_obs.Jsonf.string

let take_snapshot t ~seq =
  match t.snapshot_path with
  | None -> Error "snapshotting is off (no snapshot path configured)"
  | Some path ->
    let bytes = Snapshot.write ~path (Admission.state t.engine) in
    Ffc_obs.Ctx.incr_named "service.snapshots";
    (match Ffc_obs.Ctx.tracing () with
    | Some c -> Ffc_obs.Ctx.emit c (Ffc_obs.Event.svc_snapshot ~seq ~bytes)
    | None -> ());
    Ok bytes

let handle_line t line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then `Silent
  else
    match Protocol.parse trimmed with
    | Error e ->
      let seq = Admission.next_seq t.engine in
      `Reply
        (json
           [
             ("ok", "false"); ("seq", string_of_int seq); ("error", jstr e);
           ])
    | Ok Protocol.Snapshot -> (
      let seq = Admission.next_seq t.engine in
      match take_snapshot t ~seq with
      | Error e ->
        `Reply
          (json
             [ ("ok", "false"); ("seq", string_of_int seq); ("error", jstr e) ])
      | Ok bytes ->
        `Reply
          (json
             [
               ("ok", "true");
               ("op", jstr "snapshot");
               ("seq", string_of_int seq);
               ("bytes", string_of_int bytes);
               ("mutations", string_of_int (Admission.mutations t.engine));
             ]))
    | Ok Protocol.Shutdown ->
      let seq = Admission.next_seq t.engine in
      let snapshot_field =
        (* Best effort: shutdown still succeeds when the final snapshot
           cannot be written, but the reply says so. *)
        match t.snapshot_path with
        | None -> [ ("snapshot", "false") ]
        | Some _ -> (
          match take_snapshot t ~seq with
          | Ok _ -> [ ("snapshot", "true") ]
          | Error e -> [ ("snapshot", "false"); ("snapshot_error", jstr e) ])
      in
      `Quit
        (json
           ([
              ("ok", "true");
              ("op", jstr "shutdown");
              ("seq", string_of_int seq);
              ("served", string_of_int (Admission.seq t.engine));
            ]
           @ snapshot_field))
    | Ok (Protocol.Metrics { prom }) -> (
      let seq = Admission.next_seq t.engine in
      (* Live introspection of the daemon's ambient metrics registry —
         answered at the server level so the admission engine's logical
         clock and decision stream stay untouched. *)
      match Ffc_obs.Ctx.ambient () with
      | None ->
        `Reply
          (json
             [
               ("ok", "false");
               ("seq", string_of_int seq);
               ("error", jstr "no metrics registry installed");
             ])
      | Some c ->
        let snap = Ffc_obs.Metrics.snapshot (Ffc_obs.Ctx.metrics c) in
        let body =
          if prom then
            [
              ("format", jstr "prometheus");
              ("text", jstr (Ffc_obs.Metrics.render_prometheus snap));
            ]
          else
            [
              ("format", jstr "json");
              ("metrics", Ffc_obs.Metrics.render_json_line snap);
            ]
        in
        `Reply
          (json
             ([ ("ok", "true"); ("op", jstr "metrics"); ("seq", string_of_int seq) ]
             @ body)))
    | Ok req ->
      let { Admission.line = reply; mutated } = Admission.handle t.engine req in
      if
        mutated && t.snapshot_path <> None
        && Admission.mutations t.engine mod t.snapshot_every = 0
      then
        ignore (take_snapshot t ~seq:(Admission.seq t.engine) : (int, string) result);
      `Reply reply

let run_script t lines =
  let rec go acc = function
    | [] -> List.rev acc
    | line :: rest -> (
      match handle_line t line with
      | `Silent -> go acc rest
      | `Reply r -> go (r :: acc) rest
      | `Quit r -> List.rev (r :: acc))
  in
  go [] lines

(* ------------------------------------------------------------------ *)
(* Unix-domain-socket daemon                                           *)
(* ------------------------------------------------------------------ *)

let serve t ~socket =
  (* A dead server leaves its socket file behind; replace it.  Refuse
     to unlink anything that is not a socket — a mistyped path must not
     delete a real file. *)
  (match Unix.lstat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" socket)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* A client vanishing mid-reply must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Unix.close fd;
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind fd (Unix.ADDR_UNIX socket);
      Unix.listen fd 8;
      let shutdown = ref false in
      while not !shutdown do
        let client, _ = Unix.accept fd in
        let ic = Unix.in_channel_of_descr client in
        let oc = Unix.out_channel_of_descr client in
        let rec session () =
          match In_channel.input_line ic with
          | None -> ()
          | Some line -> (
            match handle_line t line with
            | `Silent -> session ()
            | `Reply r ->
              output_string oc (r ^ "\n");
              flush oc;
              session ()
            | `Quit r ->
              output_string oc (r ^ "\n");
              flush oc;
              shutdown := true)
        in
        (try session () with
        | Sys_error _ | End_of_file -> ()
        | Unix.Unix_error (Unix.EPIPE, _, _) -> ());
        (try Unix.close client with Unix.Unix_error _ -> ())
      done)
