open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_faults

type tier = Full | Incremental | Cached

let tier_label = function
  | Full -> "full"
  | Incremental -> "incremental"
  | Cached -> "cached"

(* Ladder position of a served request, "shed" included; lower is
   healthier.  Transitions between successive requests are the
   degrade/recover events. *)
let rank_of_label = function
  | "full" -> 0
  | "incremental" -> 1
  | "cached" -> 2
  | "shed" -> 3
  | _ -> 3

type config = {
  signal : Signal.t;
  b_ss : float;
  epsilon : float;
  min_rate : float;
  backlog_incremental : float;
  backlog_cached : float;
  backlog_shed : float;
  cost_full : float;
  cost_incremental : float;
  cost_cached : float;
  cost_shed : float;
  cost_query : float;
  timeout : float;
  retries : int;
  backoff_base : float;
  sleep_backoff : bool;
  seed : int;
  plan : Fault.plan;
  sup_retries : int;
  escape : float;
}

let default_config =
  {
    signal = Signal.linear_fractional;
    b_ss = 0.5;
    epsilon = 1e-6;
    min_rate = 0.;
    backlog_incremental = 0.5;
    backlog_cached = 2.;
    backlog_shed = 8.;
    cost_full = 0.05;
    cost_incremental = 0.01;
    cost_cached = 0.002;
    cost_shed = 5e-4;
    cost_query = 0.05;
    timeout = 0.;
    retries = 2;
    backoff_base = 0.05;
    sleep_backoff = false;
    seed = 0;
    plan = Fault.none;
    sup_retries = 3;
    escape = 1e12;
  }

type t = {
  config : config;
  controller : Controller.t;
  net : Network.t;
  n : int;
  names : string array;
  index_of : (string, int) Hashtbl.t;
  b_ss_per_conn : float array;  (* declared adjuster b_SS, config default *)
  digest : string;
  failure_hook : (seq:int -> attempt:int -> bool) option;
  slow_hook : (seq:int -> attempt:int -> float) option;
  mutable active : bool array;
  mutable ss : Vec.t;
  mutable df : (Mat.Sparse.t * Vec.t) option;  (* DF and its build point *)
  mutable rho : float;
  mutable rho_fresh : bool;
  mutable vclock : float;
  mutable last_time : float;
  mutable seq_counter : int;
  mutable mutation_count : int;
  mutable last_tier : string;
  (* Counters, persisted through snapshots in [counter_order]. *)
  mutable admits : int;
  mutable rejects : int;
  mutable sheds : int;
  mutable removes : int;
  mutable queries : int;
  mutable degrades : int;
  mutable recovers : int;
  mutable backoffs : int;
  (* Requests served at each ladder rung (decision events only: add and
     remove, not read-only verbs) — the counts `ffc trace report` cross
     checks against the span stream. *)
  mutable served_full : int;
  mutable served_incremental : int;
  mutable served_cached : int;
  mutable served_shed : int;
}

let counter_order =
  [
    "admits"; "rejects"; "sheds"; "removes"; "queries"; "degrades"; "recovers";
    "backoffs"; "served_full"; "served_incremental"; "served_cached";
    "served_shed";
  ]

let counters t =
  [
    ("admits", t.admits);
    ("rejects", t.rejects);
    ("sheds", t.sheds);
    ("removes", t.removes);
    ("queries", t.queries);
    ("degrades", t.degrades);
    ("recovers", t.recovers);
    ("backoffs", t.backoffs);
    ("served_full", t.served_full);
    ("served_incremental", t.served_incremental);
    ("served_cached", t.served_cached);
    ("served_shed", t.served_shed);
  ]

(* Everything a snapshot must have been taken under for restore to be
   sound: the model (topology, adjusters, signal, b_SS), the admission
   thresholds, the ladder geometry, and the verdict machinery's
   parameters. *)
let compute_digest ~config:c ~controller ~net =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Dsl.to_string net);
  Array.iter
    (fun a ->
      Buffer.add_string buf (Rate_adjust.name a);
      Buffer.add_char buf '\n')
    (Controller.adjusters controller);
  List.iter (fun s -> Buffer.add_string buf (s ^ "\n")) (Fault.describe c.plan);
  Buffer.add_string buf
    (Printf.sprintf "%s|%h|%h|%h|%h|%h|%h|%h|%h|%h|%h|%h|%h|%d|%h|%d|%d|%h"
       (Signal.name c.signal) c.b_ss c.epsilon c.min_rate c.backlog_incremental
       c.backlog_cached c.backlog_shed c.cost_full c.cost_incremental
       c.cost_cached c.cost_shed c.cost_query c.timeout c.retries
       c.backoff_base c.seed c.sup_retries c.escape);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let create ?(config = default_config) ?failure_hook ?slow_hook controller ~net =
  let n = Network.num_connections net in
  if Array.length (Controller.adjusters controller) <> n then
    invalid_arg "Admission.create: adjuster count does not match the network";
  if not (config.b_ss > 0. && config.b_ss < 1.) then
    invalid_arg "Admission.create: b_ss must be in (0,1)";
  if
    not
      (config.backlog_incremental >= 0.
      && config.backlog_cached >= config.backlog_incremental
      && config.backlog_shed >= config.backlog_cached)
  then invalid_arg "Admission.create: ladder thresholds must be nondecreasing";
  if config.retries < 0 then invalid_arg "Admission.create: retries must be >= 0";
  Fault.validate config.plan ~net;
  let names =
    Array.init n (fun i -> (Network.connection net i).Network.conn_name)
  in
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i name -> Hashtbl.replace index_of name i) names;
  let b_ss_per_conn =
    Array.map
      (fun a -> Option.value (Rate_adjust.declared_b_ss a) ~default:config.b_ss)
      (Controller.adjusters controller)
  in
  {
    config;
    controller;
    net;
    n;
    names;
    index_of;
    b_ss_per_conn;
    digest = compute_digest ~config ~controller ~net;
    failure_hook;
    slow_hook;
    active = Array.make n false;
    ss = Array.make n 0.;
    df = None;
    rho = 0.;
    rho_fresh = true;
    vclock = 0.;
    last_time = 0.;
    seq_counter = 0;
    mutation_count = 0;
    last_tier = "full";
    admits = 0;
    rejects = 0;
    sheds = 0;
    removes = 0;
    queries = 0;
    degrades = 0;
    recovers = 0;
    backoffs = 0;
    served_full = 0;
    served_incremental = 0;
    served_cached = 0;
    served_shed = 0;
  }

let net t = t.net
let active t = Array.copy t.active
let active_count t = Array.fold_left (fun a b -> if b then a + 1 else a) 0 t.active
let rates t = Array.copy t.ss
let rho t = t.rho
let seq t = t.seq_counter
let mutations t = t.mutation_count
let vclock t = t.vclock
let config_digest t = t.digest

let next_seq t =
  t.seq_counter <- t.seq_counter + 1;
  t.seq_counter

type reply = { line : string; mutated : bool }

(* ------------------------------------------------------------------ *)
(* Response rendering                                                  *)
(* ------------------------------------------------------------------ *)

let json fields =
  let buf = Buffer.create 192 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Ffc_obs.Jsonf.add_escaped buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let jnum = Ffc_obs.Jsonf.float_json
let jstr = Ffc_obs.Jsonf.string
let jint = string_of_int
let jbool = string_of_bool
let error_line ~seq msg = json [ ("ok", "false"); ("seq", jint seq); ("error", jstr msg) ]

(* ------------------------------------------------------------------ *)
(* Ladder mechanics                                                    *)
(* ------------------------------------------------------------------ *)

let backlog_at t ~time = Float.max 0. (t.vclock -. time)

let pick_tier t ~backlog =
  if backlog >= t.config.backlog_cached then Cached
  else if backlog >= t.config.backlog_incremental then Incremental
  else Full

let cost_of t = function
  | Full -> t.config.cost_full
  | Incremental -> t.config.cost_incremental
  | Cached -> t.config.cost_cached

let charge t ~time cost = t.vclock <- Float.max t.vclock time +. cost

(* Record the ladder transition implied by serving this request at
   [label], updating counters and trace. *)
let note_tier t ~seq label =
  let prev = rank_of_label t.last_tier and cur = rank_of_label label in
  if cur > prev then begin
    t.degrades <- t.degrades + 1;
    Ffc_obs.Ctx.incr_named "service.degrades";
    match Ffc_obs.Ctx.tracing () with
    | Some c ->
      Ffc_obs.Ctx.emit c
        (Ffc_obs.Event.svc_degrade ~seq ~from_tier:t.last_tier ~to_tier:label)
    | None -> ()
  end
  else if cur < prev then begin
    t.recovers <- t.recovers + 1;
    Ffc_obs.Ctx.incr_named "service.recovers";
    match Ffc_obs.Ctx.tracing () with
    | Some c -> Ffc_obs.Ctx.emit c (Ffc_obs.Event.svc_recover ~seq ~tier:label)
    | None -> ()
  end;
  t.last_tier <- label

exception Transient of string

(* Run one solve under the robustness envelope: injected-fault seam,
   observational wall-clock deadline, bounded retries with deterministic
   jittered exponential backoff.  The jitter stream is a pure function
   of (config seed, request seq), so identical request streams back off
   identically wherever they run.

   A solve that finishes after the deadline still finished: the result
   is kept (discarding it would throw away completed work and re-pay
   the whole solve), and the overrun is recorded only in the ambient
   metrics registry, which — like the latency histograms — sits outside
   the determinism contract.  Nothing on the decision path reads the
   wall clock, so decision logs are reproducible even with
   [timeout > 0]. *)
let solve_with_retry t ~seq f =
  let rng = Rng.create (t.config.seed lxor (seq * 0x9E3779B9)) in
  let rec go attempt =
    let retry () =
      if attempt >= t.config.retries then None
      else begin
        let delay =
          t.config.backoff_base
          *. Float.pow 2. (float_of_int attempt)
          *. (1. +. Rng.uniform rng)
        in
        t.backoffs <- t.backoffs + 1;
        Ffc_obs.Ctx.incr_named "service.backoffs";
        (match Ffc_obs.Ctx.tracing () with
        | Some c -> Ffc_obs.Ctx.emit c (Ffc_obs.Event.svc_backoff ~seq ~attempt ~delay)
        | None -> ());
        if t.config.sleep_backoff then Unix.sleepf delay;
        go (attempt + 1)
      end
    in
    match
      (match t.failure_hook with
      | Some hook when hook ~seq ~attempt -> raise (Transient "injected solver fault")
      | Some _ | None -> ());
      let t0 = if t.config.timeout > 0. then Unix.gettimeofday () else 0. in
      (* The slow-solve seam sleeps inside the timed window, so a test
         can make this attempt overrun the deadline. *)
      (match t.slow_hook with
      | Some hook ->
        let d = hook ~seq ~attempt in
        if d > 0. then Unix.sleepf d
      | None -> ());
      let r = f () in
      if t.config.timeout > 0. && Unix.gettimeofday () -. t0 > t.config.timeout
      then Ffc_obs.Ctx.incr_named "service.timeouts";
      r
    with
    | r -> Some (r, attempt + 1)
    | exception Transient _ -> retry ()
    | exception Failure _ -> retry ()
  in
  go 0

(* The DF cache, rebuilt lazily after a restore (bit-identical to the
   pre-crash matrix; warm from the result cache when one is installed). *)
let ensure_df t =
  match t.df with
  | Some (df, at) -> (df, at)
  | None ->
    let df = Jacobian.of_controller_sparse t.controller ~net:t.net ~at:t.ss in
    t.df <- Some (df, t.ss);
    (df, t.ss)

type solved = {
  s_ss : Vec.t;
  s_df : (Mat.Sparse.t * Vec.t) option;
  s_rho : float;
  s_fresh : bool;
}

let solve_mask t tier ~mask =
  let { signal; b_ss; _ } = t.config in
  match tier with
  | Full ->
    let ss' = Steady_state.fair_masked ~signal ~b_ss ~net:t.net ~active:mask in
    let df' = Jacobian.of_controller_sparse t.controller ~net:t.net ~at:ss' in
    let rho' = Jacobian.spectral_radius_sparse df' in
    { s_ss = ss'; s_df = Some (df', ss'); s_rho = rho'; s_fresh = true }
  | Incremental ->
    let ss' =
      Steady_state.update_fair ~signal ~b_ss ~net:t.net ~prev:t.ss
        ~prev_active:t.active ~active:mask
    in
    let prev_df, prev_at = ensure_df t in
    let df' =
      Jacobian.update_flow t.controller ~net:t.net ~prev:prev_df ~prev_at ~at:ss'
    in
    let rho' = Jacobian.spectral_radius_incremental df' in
    { s_ss = ss'; s_df = Some (df', ss'); s_rho = rho'; s_fresh = true }
  | Cached ->
    let ss' =
      Steady_state.update_fair ~signal ~b_ss ~net:t.net ~prev:t.ss
        ~prev_active:t.active ~active:mask
    in
    { s_ss = ss'; s_df = t.df; s_rho = t.rho; s_fresh = false }

(* Walk the ladder downward from [tier] until a solve survives the
   retry envelope; every forced step down is a degrade event. *)
let solve_degrading t ~seq ~mask tier =
  let rec go tier =
    match solve_with_retry t ~seq (fun () -> solve_mask t tier ~mask) with
    | Some (solved, attempts) -> Some (tier, solved, attempts)
    | None -> (
      match tier with
      | Full -> go Incremental
      | Incremental -> go Cached
      | Cached -> None)
  in
  go tier

let min_ratio_of t ~mask ~rates =
  let baselines =
    Robustness.baselines_masked ~signal:t.config.signal ~b_ss:t.b_ss_per_conn
      ~net:t.net ~active:mask
  in
  let best = ref Float.infinity in
  Array.iteri
    (fun i b -> if mask.(i) && b > 0. then best := Float.min !best (rates.(i) /. b))
    baselines;
  if Float.is_finite !best then Some !best else None

let commit ?(mutations = 1) t ~mask solved =
  t.active <- mask;
  t.ss <- solved.s_ss;
  (match solved.s_df with Some _ as df -> t.df <- df | None -> ());
  t.rho <- solved.s_rho;
  t.rho_fresh <- solved.s_fresh;
  t.mutation_count <- t.mutation_count + mutations;
  (* Per-window fairness of the committed allocation: Jain's index over
     the rates of the flows active after this mutation.  A pure function
     of the model state, so the gauge is deterministic. *)
  match Ffc_obs.Ctx.ambient () with
  | None -> ()
  | Some c ->
    let k = ref 0 in
    Array.iter (fun a -> if a then incr k) t.active;
    if !k > 0 then begin
      let rates = Array.make !k 0. in
      let j = ref 0 in
      Array.iteri
        (fun i a ->
          if a then begin
            rates.(!j) <- t.ss.(i);
            incr j
          end)
        t.active;
      Ffc_obs.Metrics.Gauge.set
        (Ffc_obs.Metrics.gauge (Ffc_obs.Ctx.metrics c) "service.jain_fairness")
        (Stats.jain_index rates)
    end

let emit_decision t ~seq ~op ?conn ~decision ~tier ?rho:rho_v ?min_ratio ?rate
    ~backlog () =
  (match rank_of_label tier with
  | 0 -> t.served_full <- t.served_full + 1
  | 1 -> t.served_incremental <- t.served_incremental + 1
  | 2 -> t.served_cached <- t.served_cached + 1
  | _ -> t.served_shed <- t.served_shed + 1);
  match Ffc_obs.Ctx.tracing () with
  | Some c ->
    Ffc_obs.Ctx.emit c
      (Ffc_obs.Event.svc_decision ~seq ~op ?conn ~decision ~tier ?rho:rho_v
         ?min_ratio ?rate ~backlog ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* add                                                                 *)
(* ------------------------------------------------------------------ *)

let request_time t = function
  | Some time when Float.is_finite time -> Float.max t.last_time time
  | Some _ | None -> t.last_time

(* Slot lookup against an explicit occupancy mask, so a batch can probe
   its tentative population rather than the committed one. *)
let find_slot_in t mask = function
  | Some name -> (
    match Hashtbl.find_opt t.index_of name with
    | None -> Error (Printf.sprintf "unknown connection %S" name)
    | Some i -> if mask.(i) then Error (Printf.sprintf "slot %S is busy" name) else Ok i)
  | None -> (
    let rec first i =
      if i >= t.n then Error "no idle slot"
      else if mask.(i) then first (i + 1)
      else Ok i
    in
    first 0)

let find_slot t conn = find_slot_in t t.active conn

let handle_add t ~conn ~time ~size =
  let seq = next_seq t in
  let time = request_time t time in
  t.last_time <- time;
  let backlog = backlog_at t ~time in
  ignore size;
  match find_slot t conn with
  | Error msg ->
    charge t ~time t.config.cost_shed;
    t.rejects <- t.rejects + 1;
    Ffc_obs.Ctx.incr_named "service.rejects";
    { line = error_line ~seq msg; mutated = false }
  | Ok slot ->
    let name = t.names.(slot) in
    let finish ~decision ~tier ?reason ?rho_v ?min_ratio ?rate ~attempts () =
      note_tier t ~seq tier;
      emit_decision t ~seq ~op:"add" ~conn:name ~decision ~tier ?rho:rho_v
        ?min_ratio ?rate ~backlog ();
      let fields =
        [
          ("ok", "true");
          ("op", jstr "add");
          ("seq", jint seq);
          ("conn", jstr name);
          ("decision", jstr decision);
          ("tier", jstr tier);
        ]
        @ (match reason with None -> [] | Some r -> [ ("reason", jstr r) ])
        @ (match rate with None -> [] | Some r -> [ ("rate", jnum r) ])
        @ (match rho_v with None -> [] | Some r -> [ ("rho", jnum r) ])
        @ [ ("rho_fresh", jbool t.rho_fresh) ]
        @ (match min_ratio with None -> [] | Some r -> [ ("min_ratio", jnum r) ])
        @ [
            ("active", jint (active_count t));
            ("attempts", jint attempts);
            ("backlog", jnum backlog);
            ("vclock", jnum t.vclock);
          ]
      in
      json fields
    in
    if backlog >= t.config.backlog_shed then begin
      (* Overload ladder floor: discard at ingress without touching the
         solvers at all. *)
      charge t ~time t.config.cost_shed;
      t.sheds <- t.sheds + 1;
      Ffc_obs.Ctx.incr_named "service.sheds";
      {
        line = finish ~decision:"reject" ~tier:"shed" ~reason:"overload" ~attempts:0 ();
        mutated = false;
      }
    end
    else begin
      let mask = Array.copy t.active in
      mask.(slot) <- true;
      match solve_degrading t ~seq ~mask (pick_tier t ~backlog) with
      | None ->
        charge t ~time t.config.cost_cached;
        t.rejects <- t.rejects + 1;
        Ffc_obs.Ctx.incr_named "service.rejects";
        {
          line =
            finish ~decision:"reject" ~tier:"cached" ~reason:"solver_failure"
              ~attempts:(t.config.retries + 1) ();
          mutated = false;
        }
      | Some (tier, solved, attempts) ->
        charge t ~time (cost_of t tier);
        let rate = solved.s_ss.(slot) in
        let min_ratio = min_ratio_of t ~mask ~rates:solved.s_ss in
        let reason =
          if rate < t.config.min_rate then Some "min_rate"
          else if
            match min_ratio with
            | Some r -> r < 1. -. t.config.epsilon
            | None -> false
          then Some "min_ratio"
          else if solved.s_rho >= 1. then Some "rho"
          else None
        in
        (match reason with
        | None ->
          commit t ~mask solved;
          t.admits <- t.admits + 1;
          Ffc_obs.Ctx.incr_named "service.admits"
        | Some _ ->
          t.rejects <- t.rejects + 1;
          Ffc_obs.Ctx.incr_named "service.rejects");
        let decision = match reason with None -> "admit" | Some _ -> "reject" in
        {
          line =
            finish ~decision ~tier:(tier_label tier) ?reason ~rho_v:solved.s_rho
              ?min_ratio ~rate ~attempts ();
          mutated = reason = None;
        }
    end

(* ------------------------------------------------------------------ *)
(* batch: rank-k admission                                             *)
(* ------------------------------------------------------------------ *)

(* The reply fields shared by every add-shaped response a batch member
   can get; unlike serial [handle_add]'s [finish] this takes every
   value explicitly because member replies are composed against the
   chain state their member saw, not the live engine state. *)
let add_reply ~seq ~name ~decision ~tier ?reason ?rate ?rho_v ~rho_fresh
    ?min_ratio ~active ~attempts ~backlog ~vclock ~batch () =
  json
    ([
       ("ok", "true");
       ("op", jstr "add");
       ("seq", jint seq);
       ("conn", jstr name);
       ("decision", jstr decision);
       ("tier", jstr tier);
     ]
    @ (match reason with None -> [] | Some r -> [ ("reason", jstr r) ])
    @ (match rate with None -> [] | Some r -> [ ("rate", jnum r) ])
    @ (match rho_v with None -> [] | Some r -> [ ("rho", jnum r) ])
    @ [ ("rho_fresh", jbool rho_fresh) ]
    @ (match min_ratio with None -> [] | Some r -> [ ("min_ratio", jnum r) ])
    @ [
        ("active", jint active);
        ("attempts", jint attempts);
        ("backlog", jnum backlog);
        ("vclock", jnum vclock);
        ("batch", jint batch);
      ])

(* One batch member after pass 1: [Settled] members (slot errors,
   ingress sheds, per-member rejections) already have their reply line;
   [Candidate]s passed every per-member check and await the single
   batch-final rho(DF) verdict. *)
type candidate = {
  c_seq : int;
  c_conn : string option;  (* the request's own name, for serial replay *)
  c_slot : int;
  c_name : string;
  c_rate : float;
  c_min_ratio : float option;
  c_attempts : int;
  c_backlog : float;
  c_vclock : float;
  c_active : int;  (* population size with this member joined *)
}

type member = Settled of string | Candidate of candidate

(* Rank-k admission: the members' rates are solved as a chain of
   {!Steady_state.update_fair} patches against a tentative population —
   each of those rate vectors is bit-identical to what the serial adds
   would have produced (the incremental kernels are prev-independent) —
   and the expensive stability evidence, DF and rho(DF), is computed
   once on the batch-final accepted mask.  Whenever rho stays on the
   same side of 1 throughout the batch (the regular case), every
   verdict bit-matches serial execution; if the single check lands at
   rho >= 1, the candidates are replayed serially against committed
   state so the greedy serial verdicts are reproduced exactly. *)
let handle_batch_requests t (adds : Protocol.add list) =
  let { signal; b_ss; _ } = t.config in
  let k = List.length adds in
  let base_active = active_count t in
  let cur_mask = ref t.active in
  let cur_ss = ref t.ss in
  let n_cand = ref 0 in
  let admits = ref 0 and rejects = ref 0 and sheds = ref 0 and errors = ref 0 in
  let batch_tier = ref None in
  (* ---- pass 1: per-member slot/shed/rate checks on the chain ---- *)
  let members =
    List.map
      (fun { Protocol.conn; time; size } ->
        ignore size;
        let seq = next_seq t in
        let time = request_time t time in
        t.last_time <- time;
        let backlog = backlog_at t ~time in
        match find_slot_in t !cur_mask conn with
        | Error msg ->
          charge t ~time t.config.cost_shed;
          t.rejects <- t.rejects + 1;
          incr errors;
          Ffc_obs.Ctx.incr_named "service.rejects";
          Settled (error_line ~seq msg)
        | Ok slot ->
          let name = t.names.(slot) in
          if backlog >= t.config.backlog_shed then begin
            charge t ~time t.config.cost_shed;
            t.sheds <- t.sheds + 1;
            incr sheds;
            Ffc_obs.Ctx.incr_named "service.sheds";
            note_tier t ~seq "shed";
            emit_decision t ~seq ~op:"add" ~conn:name ~decision:"reject"
              ~tier:"shed" ~backlog ();
            Settled
              (add_reply ~seq ~name ~decision:"reject" ~tier:"shed"
                 ~reason:"overload" ~rho_fresh:t.rho_fresh
                 ~active:(base_active + !n_cand) ~attempts:0 ~backlog
                 ~vclock:t.vclock ~batch:k ())
          end
          else begin
            let mask = Array.copy !cur_mask in
            mask.(slot) <- true;
            match
              solve_with_retry t ~seq (fun () ->
                  Steady_state.update_fair ~signal ~b_ss ~net:t.net
                    ~prev:!cur_ss ~prev_active:!cur_mask ~active:mask)
            with
            | None ->
              charge t ~time t.config.cost_cached;
              t.rejects <- t.rejects + 1;
              incr rejects;
              Ffc_obs.Ctx.incr_named "service.rejects";
              note_tier t ~seq "cached";
              emit_decision t ~seq ~op:"add" ~conn:name ~decision:"reject"
                ~tier:"cached" ~backlog ();
              Settled
                (add_reply ~seq ~name ~decision:"reject" ~tier:"cached"
                   ~reason:"solver_failure" ~rho_fresh:t.rho_fresh
                   ~active:(base_active + !n_cand)
                   ~attempts:(t.config.retries + 1) ~backlog ~vclock:t.vclock
                   ~batch:k ())
            | Some (ss', attempts) ->
              if !batch_tier = None then batch_tier := Some (pick_tier t ~backlog);
              charge t ~time t.config.cost_cached;
              let rate = ss'.(slot) in
              let min_ratio = min_ratio_of t ~mask ~rates:ss' in
              let reason =
                if rate < t.config.min_rate then Some "min_rate"
                else if
                  match min_ratio with
                  | Some r -> r < 1. -. t.config.epsilon
                  | None -> false
                then Some "min_ratio"
                else None
              in
              (match reason with
              | Some reason ->
                t.rejects <- t.rejects + 1;
                incr rejects;
                Ffc_obs.Ctx.incr_named "service.rejects";
                note_tier t ~seq "cached";
                emit_decision t ~seq ~op:"add" ~conn:name ~decision:"reject"
                  ~tier:"cached" ~rho:t.rho ?min_ratio ~rate ~backlog ();
                Settled
                  (add_reply ~seq ~name ~decision:"reject" ~tier:"cached"
                     ~reason ~rate ~rho_v:t.rho ~rho_fresh:t.rho_fresh
                     ?min_ratio ~active:(base_active + !n_cand) ~attempts
                     ~backlog ~vclock:t.vclock ~batch:k ())
              | None ->
                cur_mask := mask;
                cur_ss := ss';
                incr n_cand;
                Candidate
                  {
                    c_seq = seq;
                    c_conn = conn;
                    c_slot = slot;
                    c_name = name;
                    c_rate = rate;
                    c_min_ratio = min_ratio;
                    c_attempts = attempts;
                    c_backlog = backlog;
                    c_vclock = t.vclock;
                    c_active = base_active + !n_cand;
                  })
          end)
      adds
  in
  (* ---- pass 2: one batch-final stability verdict ---- *)
  let summary_seq = next_seq t in
  let sum_time = t.last_time in
  let sum_backlog = backlog_at t ~time:sum_time in
  let tier = match !batch_tier with Some tr -> tr | None -> Cached in
  let final_mask = !cur_mask and final_ss = !cur_ss in
  let attempts_final = ref 0 in
  let batch_label = ref "cached" in
  let candidate_line =
    if !n_cand = 0 then begin
      charge t ~time:sum_time t.config.cost_shed;
      fun (_ : candidate) -> assert false
    end
    else begin
      let solved_final =
        match tier with
        | Cached ->
          charge t ~time:sum_time t.config.cost_cached;
          Some ({ s_ss = final_ss; s_df = t.df; s_rho = t.rho; s_fresh = false }, 0)
        | Full -> (
          match
            solve_with_retry t ~seq:summary_seq (fun () ->
                let df' =
                  Jacobian.of_controller_sparse t.controller ~net:t.net
                    ~at:final_ss
                in
                (df', Jacobian.spectral_radius_sparse df'))
          with
          | Some ((df', rho'), attempts) ->
            charge t ~time:sum_time t.config.cost_full;
            Some
              ( { s_ss = final_ss; s_df = Some (df', final_ss); s_rho = rho';
                  s_fresh = true },
                attempts )
          | None -> None)
        | Incremental -> (
          match
            solve_with_retry t ~seq:summary_seq (fun () ->
                let prev_df, prev_at = ensure_df t in
                let df' =
                  Jacobian.update_flow t.controller ~net:t.net ~prev:prev_df
                    ~prev_at ~at:final_ss
                in
                (df', Jacobian.spectral_radius_incremental df'))
          with
          | Some ((df', rho'), attempts) ->
            charge t ~time:sum_time t.config.cost_incremental;
            Some
              ( { s_ss = final_ss; s_df = Some (df', final_ss); s_rho = rho';
                  s_fresh = true },
                attempts )
          | None -> None)
      in
      let solved, solver_failed =
        match solved_final with
        | Some (s, a) ->
          attempts_final := a;
          (s, false)
        | None ->
          (* The batch-final DF/rho solve failed under the whole retry
             envelope: degrade the batch to cached-tier evidence, like
             serial adds stuck at the ladder floor. *)
          charge t ~time:sum_time t.config.cost_cached;
          attempts_final := t.config.retries + 1;
          ( { s_ss = final_ss; s_df = t.df; s_rho = t.rho; s_fresh = false },
            true )
      in
      let stale = (not solved.s_fresh) || solver_failed in
      let label = if stale then "cached" else tier_label tier in
      batch_label := label;
      if solved.s_rho >= 1. && not stale then begin
        (* rho crossed 1 somewhere inside the batch: replay the
           candidates one by one against committed state at the batch's
           tier — exactly what serial adds would have done — so the
           greedy serial verdicts (including which member crosses the
           line) are reproduced. *)
        fun cand ->
          (* Serial adds find their slot against committed state: when
             an earlier replayed member is rejected its slot frees, and
             the next anonymous member lands on it — re-find rather than
             reuse the pass-1 assignment.  (Re-finding cannot fail: the
             committed population is a subset of the tentative one the
             pass-1 lookup succeeded against.) *)
          let slot =
            match find_slot t cand.c_conn with
            | Ok s -> s
            | Error _ -> cand.c_slot
          in
          let name = t.names.(slot) in
          let mask = Array.copy t.active in
          mask.(slot) <- true;
          match
            solve_with_retry t ~seq:cand.c_seq (fun () -> solve_mask t tier ~mask)
          with
          | None ->
            t.rejects <- t.rejects + 1;
            incr rejects;
            Ffc_obs.Ctx.incr_named "service.rejects";
            note_tier t ~seq:cand.c_seq "cached";
            emit_decision t ~seq:cand.c_seq ~op:"add" ~conn:name
              ~decision:"reject" ~tier:"cached" ~backlog:cand.c_backlog ();
            add_reply ~seq:cand.c_seq ~name ~decision:"reject"
              ~tier:"cached" ~reason:"solver_failure" ~rho_fresh:t.rho_fresh
              ~active:(active_count t) ~attempts:(t.config.retries + 1)
              ~backlog:cand.c_backlog ~vclock:t.vclock ~batch:k ()
          | Some (solved, attempts) ->
            let rate = solved.s_ss.(slot) in
            let min_ratio = min_ratio_of t ~mask ~rates:solved.s_ss in
            let reason =
              if rate < t.config.min_rate then Some "min_rate"
              else if
                match min_ratio with
                | Some r -> r < 1. -. t.config.epsilon
                | None -> false
              then Some "min_ratio"
              else if solved.s_rho >= 1. then Some "rho"
              else None
            in
            (match reason with
            | None ->
              commit t ~mask solved;
              t.admits <- t.admits + 1;
              incr admits;
              Ffc_obs.Ctx.incr_named "service.admits"
            | Some _ ->
              t.rejects <- t.rejects + 1;
              incr rejects;
              Ffc_obs.Ctx.incr_named "service.rejects");
            let decision = match reason with None -> "admit" | Some _ -> "reject" in
            let lbl = tier_label tier in
            note_tier t ~seq:cand.c_seq lbl;
            emit_decision t ~seq:cand.c_seq ~op:"add" ~conn:name ~decision
              ~tier:lbl ~rho:solved.s_rho ?min_ratio ~rate
              ~backlog:cand.c_backlog ();
            add_reply ~seq:cand.c_seq ~name ~decision ~tier:lbl
              ?reason ~rate ~rho_v:solved.s_rho ~rho_fresh:t.rho_fresh
              ?min_ratio ~active:(active_count t) ~attempts
              ~backlog:cand.c_backlog ~vclock:t.vclock ~batch:k ()
      end
      else if solved.s_rho >= 1. then begin
        (* Stale rho already sits at >= 1 (cached tier or a failed batch
           solve): serial cached-tier adds would reject every one with
           reason "rho" without committing — reproduce that verbatim. *)
        fun cand ->
          t.rejects <- t.rejects + 1;
          incr rejects;
          Ffc_obs.Ctx.incr_named "service.rejects";
          note_tier t ~seq:cand.c_seq "cached";
          emit_decision t ~seq:cand.c_seq ~op:"add" ~conn:cand.c_name
            ~decision:"reject" ~tier:"cached" ~rho:t.rho
            ?min_ratio:cand.c_min_ratio ~rate:cand.c_rate
            ~backlog:cand.c_backlog ();
          add_reply ~seq:cand.c_seq ~name:cand.c_name ~decision:"reject"
            ~tier:"cached" ~reason:"rho" ~rate:cand.c_rate ~rho_v:t.rho
            ~rho_fresh:t.rho_fresh ?min_ratio:cand.c_min_ratio
            ~active:base_active ~attempts:cand.c_attempts
            ~backlog:cand.c_backlog ~vclock:cand.c_vclock ~batch:k ()
      end
      else begin
        commit ~mutations:!n_cand t ~mask:final_mask solved;
        t.admits <- t.admits + !n_cand;
        admits := !n_cand;
        fun cand ->
          Ffc_obs.Ctx.incr_named "service.admits";
          note_tier t ~seq:cand.c_seq label;
          emit_decision t ~seq:cand.c_seq ~op:"add" ~conn:cand.c_name
            ~decision:"admit" ~tier:label ~rho:t.rho ?min_ratio:cand.c_min_ratio
            ~rate:cand.c_rate ~backlog:cand.c_backlog ();
          add_reply ~seq:cand.c_seq ~name:cand.c_name ~decision:"admit"
            ~tier:label ~rate:cand.c_rate ~rho_v:t.rho ~rho_fresh:t.rho_fresh
            ?min_ratio:cand.c_min_ratio ~active:cand.c_active
            ~attempts:cand.c_attempts ~backlog:cand.c_backlog
            ~vclock:cand.c_vclock ~batch:k ()
      end
    end
  in
  let member_lines =
    List.map
      (function Settled line -> line | Candidate c -> candidate_line c)
      members
  in
  let summary_label = !batch_label in
  let summary =
    json
      [
        ("ok", "true");
        ("op", jstr "batch");
        ("seq", jint summary_seq);
        ("adds", jint k);
        ("admits", jint !admits);
        ("rejects", jint !rejects);
        ("sheds", jint !sheds);
        ("errors", jint !errors);
        ("tier", jstr summary_label);
        ("rho", jnum t.rho);
        ("rho_fresh", jbool t.rho_fresh);
        ("active", jint (active_count t));
        ("attempts", jint !attempts_final);
        ("backlog", jnum sum_backlog);
        ("vclock", jnum t.vclock);
      ]
  in
  let replies =
    List.map (fun line -> { line; mutated = false }) member_lines
    @ [ { line = summary; mutated = !admits > 0 } ]
  in
  (replies, summary_label, !admits, !rejects + !errors, !sheds)

let handle_batch ?sid t adds =
  match Ffc_obs.Ctx.ambient () with
  | None ->
    let replies, _, _, _, _ = handle_batch_requests t adds in
    replies
  | Some c ->
    (* One span per batch bracket — the "one rank-k solve" is visible as
       exactly one svc.batch span wrapping the member decisions. *)
    let t0 = if Ffc_obs.Ctx.timing c then Unix.gettimeofday () else 0. in
    let span =
      Ffc_obs.Span.start
        ~attrs:
          ([ ("op", jstr "batch"); ("adds", jint (List.length adds)) ]
          @ match sid with None -> [] | Some s -> [ ("sid", jint s) ])
        "svc.batch"
    in
    Fun.protect
      ~finally:(fun () -> if Ffc_obs.Span.on span then Ffc_obs.Span.finish span)
      (fun () ->
        let replies, tier, admits, rejects, sheds =
          handle_batch_requests t adds
        in
        if Ffc_obs.Span.on span then
          Ffc_obs.Span.finish
            ~attrs:
              [
                ("tier", jstr tier);
                ("admits", jint admits);
                ("rejects", jint rejects);
                ("sheds", jint sheds);
              ]
            span;
        let wall =
          if Ffc_obs.Ctx.timing c then Unix.gettimeofday () -. t0 else 0.
        in
        Ffc_obs.Metrics.Histogram.observe
          (Ffc_obs.Metrics.histogram (Ffc_obs.Ctx.metrics c)
             ("service.latency." ^ tier))
          wall;
        replies)

(* ------------------------------------------------------------------ *)
(* remove                                                              *)
(* ------------------------------------------------------------------ *)

let handle_remove t ~conn ~time =
  let seq = next_seq t in
  let time = request_time t time in
  t.last_time <- time;
  let backlog = backlog_at t ~time in
  match Hashtbl.find_opt t.index_of conn with
  | None ->
    charge t ~time t.config.cost_shed;
    { line = error_line ~seq (Printf.sprintf "unknown connection %S" conn); mutated = false }
  | Some slot when not t.active.(slot) ->
    charge t ~time t.config.cost_shed;
    { line = error_line ~seq (Printf.sprintf "slot %S is not active" conn); mutated = false }
  | Some slot ->
    let mask = Array.copy t.active in
    mask.(slot) <- false;
    (* Departures are never shed — the flow is gone whether or not we
       are overloaded; the ladder only decides how much bookkeeping the
       departure gets. *)
    let tier0 =
      if backlog >= t.config.backlog_shed then Cached else pick_tier t ~backlog
    in
    let tier, solved, attempts =
      match solve_degrading t ~seq ~mask tier0 with
      | Some r -> r
      | None ->
        (* Every tier's solver failed: deactivate the slot and zero its
           rate so the population stays consistent; rho goes stale. *)
        let ss' = Array.copy t.ss in
        ss'.(slot) <- 0.;
        (Cached, { s_ss = ss'; s_df = t.df; s_rho = t.rho; s_fresh = false },
         t.config.retries + 1)
    in
    charge t ~time (cost_of t tier);
    commit t ~mask solved;
    t.removes <- t.removes + 1;
    Ffc_obs.Ctx.incr_named "service.removes";
    let label = tier_label tier in
    note_tier t ~seq label;
    emit_decision t ~seq ~op:"remove" ~conn ~decision:"ok" ~tier:label
      ~rho:solved.s_rho ~backlog ();
    {
      line =
        json
          [
            ("ok", "true");
            ("op", jstr "remove");
            ("seq", jint seq);
            ("conn", jstr conn);
            ("decision", jstr "ok");
            ("tier", jstr label);
            ("rho", jnum solved.s_rho);
            ("rho_fresh", jbool t.rho_fresh);
            ("active", jint (active_count t));
            ("attempts", jint attempts);
            ("backlog", jnum backlog);
            ("vclock", jnum t.vclock);
          ];
      mutated = true;
    }

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

(* The active sub-population as a standalone network, for the
   supervised verdict: gateways unchanged, idle slots dropped, fault
   targets remapped onto the surviving indices. *)
let sub_population t =
  let sub_index = Array.make t.n (-1) in
  let order = ref [] in
  let k = ref 0 in
  Array.iteri
    (fun i a ->
      if a then begin
        sub_index.(i) <- !k;
        incr k;
        order := i :: !order
      end)
    t.active;
  let order = Array.of_list (List.rev !order) in
  let gateways =
    Array.init (Network.num_gateways t.net) (fun a -> Network.gateway t.net a)
  in
  let connections = Array.map (fun i -> Network.connection t.net i) order in
  let sub_net = Network.create ~gateways ~connections in
  let adjusters = Array.map (fun i -> (Controller.adjusters t.controller).(i)) order in
  let sub_controller =
    Controller.create ~config:(Controller.config t.controller) ~adjusters
  in
  let r0 = Array.map (fun i -> t.ss.(i)) order in
  let specs =
    List.filter_map
      (fun { Fault.kind; conns } ->
        match conns with
        | None -> Some { Fault.kind; conns = None }
        | Some l -> (
          let l' =
            List.filter_map
              (fun i ->
                if i >= 0 && i < t.n && sub_index.(i) >= 0 then Some sub_index.(i)
                else None)
              l
          in
          match l' with [] -> None | _ -> Some { Fault.kind; conns = Some l' }))
      t.config.plan.Fault.specs
  in
  let sub_plan = Fault.plan ~seed:t.config.plan.Fault.seed specs in
  (sub_net, sub_controller, r0, sub_plan)

let handle_query t ~time =
  let seq = next_seq t in
  let time = request_time t time in
  t.last_time <- time;
  let backlog = backlog_at t ~time in
  t.queries <- t.queries + 1;
  Ffc_obs.Ctx.incr_named "service.queries";
  (* Read-only verbs are never refused: past the shed threshold the
     query is answered from the last committed state at shed cost (no
     solver work at all); in the cached band the verdict machinery is
     skipped but the bookkeeping is live.  Either way the reply carries
     [stale=true] so callers know the verdict was withheld. *)
  let shed = backlog >= t.config.backlog_shed in
  let degraded = backlog >= t.config.backlog_cached in
  let verdict =
    if degraded || active_count t = 0 then None
    else begin
      let sub_net, sub_controller, r0, sub_plan = sub_population t in
      let v =
        Supervisor.run ~escape:t.config.escape ~retries:t.config.sup_retries
          ~plan:sub_plan sub_controller ~net:sub_net ~r0
      in
      Some (Supervisor.verdict_to_json v)
    end
  in
  charge t ~time
    (if shed then t.config.cost_shed
     else if degraded then t.config.cost_cached
     else t.config.cost_query);
  let tier =
    if shed then "shed" else if degraded then "cached" else t.last_tier
  in
  {
    line =
      json
        ([
           ("ok", "true");
           ("op", jstr "query");
           ("seq", jint seq);
           ("active", jint (active_count t));
           ("rho", jnum t.rho);
           ("rho_fresh", jbool t.rho_fresh);
           ("tier", jstr tier);
         ]
        @ (if degraded then [ ("stale", "true") ] else [])
        @ [
            ("backlog", jnum backlog);
            ("vclock", jnum t.vclock);
            ("verdict", match verdict with None -> "null" | Some v -> v);
          ]);
    mutated = false;
  }

let handle_stats t ~time =
  let seq = next_seq t in
  let time = request_time t time in
  t.last_time <- time;
  let backlog = backlog_at t ~time in
  (* Counters are always live — a stats probe is how an operator watches
     an overloaded daemon, so it is free (no vclock charge) and never
     shed; past the shed threshold the reply is merely tagged stale. *)
  let overloaded = backlog >= t.config.backlog_shed in
  {
    line =
      json
        ([
           ("ok", "true");
           ("op", jstr "stats");
           ("seq", jint seq);
           ("active", jint (active_count t));
           ("mutations", jint t.mutation_count);
           ("tier", jstr (if overloaded then "shed" else t.last_tier));
         ]
        @ (if overloaded then [ ("stale", "true") ] else [])
        @ [
            ("rho", jnum t.rho);
            ("rho_fresh", jbool t.rho_fresh);
            ("backlog", jnum backlog);
            ("vclock", jnum t.vclock);
          ]
        @ List.map (fun (k, v) -> (k, jint v)) (counters t));
    mutated = false;
  }

let dispatch t = function
  | Protocol.Add { conn; time; size } -> handle_add t ~conn ~time ~size
  | Protocol.Remove { conn; time } -> handle_remove t ~conn ~time
  | Protocol.Query { time } -> handle_query t ~time
  | Protocol.Stats { time } -> handle_stats t ~time
  | Protocol.Batch_begin | Protocol.Batch_end ->
    invalid_arg
      "Admission.handle: batch brackets are session-level (use handle_batch)"
  | Protocol.Metrics _ | Protocol.Snapshot | Protocol.Shutdown ->
    invalid_arg
      "Admission.handle: metrics/snapshot/shutdown are server-level requests"

let op_of = function
  | Protocol.Add _ -> "add"
  | Protocol.Batch_begin -> "batch"
  | Protocol.Batch_end -> "end"
  | Protocol.Remove _ -> "remove"
  | Protocol.Query _ -> "query"
  | Protocol.Stats _ -> "stats"
  | Protocol.Metrics _ -> "metrics"
  | Protocol.Snapshot -> "snapshot"
  | Protocol.Shutdown -> "shutdown"

(* The reply line is the source of truth for how the request was served
   — scrape tier/decision back out of it rather than threading them
   through every handler. *)
let tier_of_reply line =
  match Protocol.json_string_field line ~key:"tier" with
  | Some tier -> tier
  | None -> "error"

let decision_of_reply line =
  match Protocol.json_string_field line ~key:"decision" with
  | Some d -> d
  | None -> (
    match Protocol.json_string_field line ~key:"error" with
    | Some _ -> "error"
    | None -> "ok")

let handle ?sid t req =
  match Ffc_obs.Ctx.ambient () with
  | None -> dispatch t req
  | Some c ->
    (* One span per request, tagged with the served tier and the
       decision once the reply is known; the latency histogram shares
       the span's wall clock and, like it, reads zero under
       --trace-deterministic. *)
    let t0 = if Ffc_obs.Ctx.timing c then Unix.gettimeofday () else 0. in
    let span =
      Ffc_obs.Span.start
        ~attrs:
          ([ ("op", jstr (op_of req)) ]
          @ match sid with None -> [] | Some s -> [ ("sid", jint s) ])
        "svc.request"
    in
    Fun.protect
      ~finally:(fun () -> if Ffc_obs.Span.on span then Ffc_obs.Span.finish span)
      (fun () ->
        let reply = dispatch t req in
        let tier = tier_of_reply reply.line in
        if Ffc_obs.Span.on span then
          Ffc_obs.Span.finish
            ~attrs:
              [
                ("tier", jstr tier);
                ("decision", jstr (decision_of_reply reply.line));
              ]
            span;
        let wall =
          if Ffc_obs.Ctx.timing c then Unix.gettimeofday () -. t0 else 0.
        in
        Ffc_obs.Metrics.Histogram.observe
          (Ffc_obs.Metrics.histogram (Ffc_obs.Ctx.metrics c)
             ("service.latency." ^ tier))
          wall;
        reply)

(* ------------------------------------------------------------------ *)
(* Snapshot integration                                                *)
(* ------------------------------------------------------------------ *)

let state t =
  {
    Snapshot.digest = t.digest;
    seq = t.seq_counter;
    mutations = t.mutation_count;
    vclock = t.vclock;
    last_time = t.last_time;
    active = Array.copy t.active;
    rates = Array.copy t.ss;
    rho = t.rho;
    rho_fresh = t.rho_fresh;
    last_tier = t.last_tier;
    counters = counters t;
  }

let restore t (s : Snapshot.state) =
  if s.Snapshot.digest <> t.digest then
    Error
      (Printf.sprintf
         "snapshot digest %s does not match this configuration (%s)"
         s.Snapshot.digest t.digest)
  else if Array.length s.Snapshot.active <> t.n then
    Error "snapshot population size does not match the topology"
  else begin
    t.active <- Array.copy s.Snapshot.active;
    t.ss <- Array.copy s.Snapshot.rates;
    t.df <- None;
    t.rho <- s.Snapshot.rho;
    t.rho_fresh <- s.Snapshot.rho_fresh;
    t.vclock <- s.Snapshot.vclock;
    t.last_time <- s.Snapshot.last_time;
    t.seq_counter <- s.Snapshot.seq;
    t.mutation_count <- s.Snapshot.mutations;
    t.last_tier <- s.Snapshot.last_tier;
    let lookup k = match List.assoc_opt k s.Snapshot.counters with Some v -> v | None -> 0 in
    t.admits <- lookup "admits";
    t.rejects <- lookup "rejects";
    t.sheds <- lookup "sheds";
    t.removes <- lookup "removes";
    t.queries <- lookup "queries";
    t.degrades <- lookup "degrades";
    t.recovers <- lookup "recovers";
    t.backoffs <- lookup "backoffs";
    t.served_full <- lookup "served_full";
    t.served_incremental <- lookup "served_incremental";
    t.served_cached <- lookup "served_cached";
    t.served_shed <- lookup "served_shed";
    ignore counter_order;
    Ok ()
  end
