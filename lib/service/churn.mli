(** Poisson churn driver with general document-size demands.

    Gromoll–Williams style processor-sharing churn: flows arrive in a
    Poisson stream of rate [rate]; each brings a document whose size is
    drawn from a general distribution, and departs once the document has
    been served at the rate the gateway service admitted it at
    (departure time = arrival + size / admitted rate).  The driver
    speaks the {!Protocol} line language through a [send] callback, so
    the same generator exercises an in-process engine (tests), a Unix
    socket daemon ([ffc drive]), or a scripted replay.

    Everything is drawn from one seeded stream in a fixed order
    (interarrival, then size, per arrival), so a (seed, rate, arrivals,
    size distribution) tuple names one exact request sequence — the
    determinism tests replay it against differently-degraded servers
    and diff the decision logs. *)

type size_dist =
  | Const of float
  | Exp of float  (** mean *)
  | Uniform of float * float  (** inclusive bounds *)
  | Pareto of { alpha : float; xmin : float }
      (** heavy-tailed documents; finite mean needs α > 1. *)

val parse_size_dist : string -> (size_dist, string) result
(** ["const:2"], ["exp:1.5"], ["uniform:0.5:2"], ["pareto:1.5:0.25"]. *)

val describe_size_dist : size_dist -> string
(** Round-trips through {!parse_size_dist}. *)

type stats = {
  arrivals : int;  (** Adds sent. *)
  admits : int;
  rejects : int;  (** Admission-test rejections (not overload). *)
  sheds : int;  (** Overload-ladder ingress discards. *)
  departures : int;  (** Removes sent. *)
  queries : int;
  errors : int;  (** [ok:false] responses (e.g. no idle slot). *)
  min_min_ratio : float option;
      (** Tightest Theorem-5 min-ratio over every admitted flow — the
          churn-storm acceptance asserts it stays ≥ 1 − ε. *)
  last_time : float;  (** Logical time of the final event. *)
}

val run :
  ?query_every:int ->
  ?batch:int ->
  ?send_batch:(string list -> string list) ->
  seed:int ->
  rate:float ->
  arrivals:int ->
  size_dist:size_dist ->
  send:(string -> string) ->
  unit ->
  stats
(** Generate [arrivals] Poisson arrivals and drive them (with the
    departures they induce, in global time order) through [send].
    [query_every] > 0 additionally issues a [query] after every that
    many requests.  Departures still pending when the last arrival has
    been processed are flushed in order.

    [batch] > 1 coalesces consecutive adds into explicit
    [batch ... end] brackets of up to that many members, sent through
    [send_batch] (the whole bracket's lines in, one reply per member
    plus the batch summary out — required when [batch] > 1).  A bracket
    flushes when full, before any departure or query (the request
    stream stays globally time-ordered), and at end of stream.  The
    arrival process itself is untouched: (seed, rate, arrivals,
    size_dist) still names the same add sequence at any [batch]. *)
