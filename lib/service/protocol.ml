type add = { conn : string option; time : float option; size : float option }

type request =
  | Add of add
  | Batch_begin
  | Batch_end
  | Remove of { conn : string; time : float option }
  | Query of { time : float option }
  | Stats of { time : float option }
  | Metrics of { prom : bool }
  | Snapshot
  | Shutdown

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* [key=value] fields after the positional part.  Unknown keys are an
   error: a typo silently ignored would corrupt the decision log. *)
let parse_fields words ~allowed =
  let rec go acc = function
    | [] -> Ok acc
    | w :: rest -> (
      match String.index_opt w '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" w)
      | Some i ->
        let key = String.sub w 0 i in
        let value = String.sub w (i + 1) (String.length w - i - 1) in
        if not (List.mem key allowed) then
          Error (Printf.sprintf "unknown field %S" key)
        else if List.mem_assoc key acc then
          Error (Printf.sprintf "duplicate field %S" key)
        else
          match float_of_string_opt value with
          | Some v when Float.is_finite v -> go ((key, v) :: acc) rest
          | _ -> Error (Printf.sprintf "bad number for %S: %S" key value))
  in
  go [] words

let parse line =
  match split_words line with
  | [] -> Error "empty request"
  | verb :: rest when String.length verb > 0 && verb.[0] = '#' ->
    ignore rest;
    Error "comment line"
  | verb :: rest -> (
    let fields ?(positional = false) allowed k =
      (* A leading word without '=' is the positional name; everything
         else is key=value fields.  One pass, and an error in the tail
         is reported as the tail's error, not as the name failing to
         parse as a field. *)
      match rest with
      | name :: rest' when positional && not (String.contains name '=') -> (
        match parse_fields rest' ~allowed with
        | Ok f -> k (Some name) f
        | Error e -> Error e)
      | _ -> (
        match parse_fields rest ~allowed with
        | Ok f -> k None f
        | Error e -> Error e)
    in
    match verb with
    | "add" ->
      fields ~positional:true [ "t"; "size" ] (fun name f ->
          Ok
            (Add
               {
                 conn = name;
                 time = List.assoc_opt "t" f;
                 size = List.assoc_opt "size" f;
               }))
    | "batch" ->
      if rest = [] then Ok Batch_begin else Error "batch takes no arguments"
    | "end" ->
      if rest = [] then Ok Batch_end else Error "end takes no arguments"
    | "remove" -> (
      match rest with
      | name :: rest' when not (String.contains name '=') -> (
        match parse_fields rest' ~allowed:[ "t" ] with
        | Ok f -> Ok (Remove { conn = name; time = List.assoc_opt "t" f })
        | Error e -> Error e)
      | _ -> Error "remove needs a connection name")
    | "query" -> (
      match parse_fields rest ~allowed:[ "t" ] with
      | Ok f -> Ok (Query { time = List.assoc_opt "t" f })
      | Error e -> Error e)
    | "stats" -> (
      match parse_fields rest ~allowed:[ "t" ] with
      | Ok f -> Ok (Stats { time = List.assoc_opt "t" f })
      | Error e -> Error e)
    | "metrics" -> (
      match rest with
      | [] -> Ok (Metrics { prom = false })
      | [ "prom" ] -> Ok (Metrics { prom = true })
      | _ -> Error "metrics takes at most one argument: prom")
    | "snapshot" ->
      if rest = [] then Ok Snapshot else Error "snapshot takes no arguments"
    | "shutdown" ->
      if rest = [] then Ok Shutdown else Error "shutdown takes no arguments"
    | v -> Error (Printf.sprintf "unknown request %S" v))

let render_time = function
  | None -> ""
  | Some t -> Printf.sprintf " t=%s" (Ffc_obs.Jsonf.float_rt t)

let render = function
  | Add { conn; time; size } ->
    "add"
    ^ (match conn with None -> "" | Some c -> " " ^ c)
    ^ render_time time
    ^ (match size with
      | None -> ""
      | Some s -> Printf.sprintf " size=%s" (Ffc_obs.Jsonf.float_rt s))
  | Batch_begin -> "batch"
  | Batch_end -> "end"
  | Remove { conn; time } -> "remove " ^ conn ^ render_time time
  | Query { time } -> "query" ^ render_time time
  | Stats { time } -> "stats" ^ render_time time
  | Metrics { prom } -> if prom then "metrics prom" else "metrics"
  | Snapshot -> "snapshot"
  | Shutdown -> "shutdown"

(* ------------------------------------------------------------------ *)
(* Response scraping                                                   *)
(* ------------------------------------------------------------------ *)

(* The scrapers moved down to Ffc_obs.Jsonf (the trace aggregator and
   the bench comparator share them); these aliases keep the protocol
   API stable for the churn driver and the tests. *)

let json_string_field = Ffc_obs.Jsonf.string_field
let json_number_field = Ffc_obs.Jsonf.number_field
let json_bool_field = Ffc_obs.Jsonf.bool_field
