type request =
  | Add of { conn : string option; time : float option; size : float option }
  | Remove of { conn : string; time : float option }
  | Query of { time : float option }
  | Stats
  | Snapshot
  | Shutdown

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* [key=value] fields after the positional part.  Unknown keys are an
   error: a typo silently ignored would corrupt the decision log. *)
let parse_fields words ~allowed =
  let rec go acc = function
    | [] -> Ok acc
    | w :: rest -> (
      match String.index_opt w '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" w)
      | Some i ->
        let key = String.sub w 0 i in
        let value = String.sub w (i + 1) (String.length w - i - 1) in
        if not (List.mem key allowed) then
          Error (Printf.sprintf "unknown field %S" key)
        else if List.mem_assoc key acc then
          Error (Printf.sprintf "duplicate field %S" key)
        else
          match float_of_string_opt value with
          | Some v when Float.is_finite v -> go ((key, v) :: acc) rest
          | _ -> Error (Printf.sprintf "bad number for %S: %S" key value))
  in
  go [] words

let parse line =
  match split_words line with
  | [] -> Error "empty request"
  | verb :: rest when String.length verb > 0 && verb.[0] = '#' ->
    ignore rest;
    Error "comment line"
  | verb :: rest -> (
    let fields ?(positional = None) allowed k =
      match parse_fields rest ~allowed with
      | Error _ when positional <> None -> (
        (* First word may be a positional name; retry on the tail. *)
        match rest with
        | name :: rest' when not (String.contains name '=') -> (
          match parse_fields rest' ~allowed with
          | Ok f -> k (Some name) f
          | Error e -> Error e)
        | _ -> (
          match parse_fields rest ~allowed with
          | Ok f -> k None f
          | Error e -> Error e))
      | Ok f -> k None f
      | Error e -> Error e
    in
    match verb with
    | "add" ->
      fields ~positional:(Some `Name) [ "t"; "size" ] (fun name f ->
          Ok
            (Add
               {
                 conn = name;
                 time = List.assoc_opt "t" f;
                 size = List.assoc_opt "size" f;
               }))
    | "remove" -> (
      match rest with
      | name :: rest' when not (String.contains name '=') -> (
        match parse_fields rest' ~allowed:[ "t" ] with
        | Ok f -> Ok (Remove { conn = name; time = List.assoc_opt "t" f })
        | Error e -> Error e)
      | _ -> Error "remove needs a connection name")
    | "query" -> (
      match parse_fields rest ~allowed:[ "t" ] with
      | Ok f -> Ok (Query { time = List.assoc_opt "t" f })
      | Error e -> Error e)
    | "stats" -> if rest = [] then Ok Stats else Error "stats takes no arguments"
    | "snapshot" ->
      if rest = [] then Ok Snapshot else Error "snapshot takes no arguments"
    | "shutdown" ->
      if rest = [] then Ok Shutdown else Error "shutdown takes no arguments"
    | v -> Error (Printf.sprintf "unknown request %S" v))

let render_time = function
  | None -> ""
  | Some t -> Printf.sprintf " t=%s" (Ffc_obs.Jsonf.float_rt t)

let render = function
  | Add { conn; time; size } ->
    "add"
    ^ (match conn with None -> "" | Some c -> " " ^ c)
    ^ render_time time
    ^ (match size with
      | None -> ""
      | Some s -> Printf.sprintf " size=%s" (Ffc_obs.Jsonf.float_rt s))
  | Remove { conn; time } -> "remove " ^ conn ^ render_time time
  | Query { time } -> "query" ^ render_time time
  | Stats -> "stats"
  | Snapshot -> "snapshot"
  | Shutdown -> "shutdown"

(* ------------------------------------------------------------------ *)
(* Response scraping                                                   *)
(* ------------------------------------------------------------------ *)

(* Position just after ["key":] in [s], if the key occurs. *)
let after_key s ~key =
  let pat = Printf.sprintf "\"%s\":" key in
  let n = String.length s and m = String.length pat in
  let rec scan i =
    if i + m > n then None
    else if String.sub s i m = pat then Some (i + m)
    else scan (i + 1)
  in
  scan 0

let json_string_field s ~key =
  match after_key s ~key with
  | None -> None
  | Some i ->
    if i >= String.length s || s.[i] <> '"' then None
    else
      let buf = Buffer.create 16 in
      let rec go j =
        if j >= String.length s then None
        else
          match s.[j] with
          | '"' -> Some (Buffer.contents buf)
          | '\\' when j + 1 < String.length s ->
            (* Our own renderer only emits the simple JSON escapes;
               the scraper handles exactly those. *)
            (match s.[j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | c -> Buffer.add_char buf c);
            go (j + 2)
          | c ->
            Buffer.add_char buf c;
            go (j + 1)
      in
      go (i + 1)

let json_number_field s ~key =
  match after_key s ~key with
  | None -> None
  | Some i ->
    let n = String.length s in
    let stop = ref i in
    while
      !stop < n
      && (match s.[!stop] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr stop
    done;
    if !stop = i then None else float_of_string_opt (String.sub s i (!stop - i))

let json_bool_field s ~key =
  match after_key s ~key with
  | None -> None
  | Some i ->
    let n = String.length s in
    if i + 4 <= n && String.sub s i 4 = "true" then Some true
    else if i + 5 <= n && String.sub s i 5 = "false" then Some false
    else None
