type gateway = { gw_name : string; mu : float; latency : float }

type connection = { conn_name : string; path : int list }

type t = {
  gateways : gateway array;
  connections : connection array;
  at_gateway : int list array;  (** Γ(a), increasing connection index. *)
  local_idx : (int * int, int) Hashtbl.t;
      (** (conn, gw) -> position of conn within Γ(gw). *)
}

let validate ~gateways ~connections =
  let ng = Array.length gateways in
  Array.iter
    (fun g ->
      if not (g.mu > 0.) then
        invalid_arg (Printf.sprintf "Network: gateway %s has non-positive mu" g.gw_name);
      if g.latency < 0. then
        invalid_arg (Printf.sprintf "Network: gateway %s has negative latency" g.gw_name))
    gateways;
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      if Hashtbl.mem seen g.gw_name then
        invalid_arg (Printf.sprintf "Network: duplicate gateway name %s" g.gw_name);
      Hashtbl.add seen g.gw_name ())
    gateways;
  let seen_c = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      if Hashtbl.mem seen_c c.conn_name then
        invalid_arg (Printf.sprintf "Network: duplicate connection name %s" c.conn_name);
      Hashtbl.add seen_c c.conn_name ();
      if c.path = [] then
        invalid_arg (Printf.sprintf "Network: connection %s has an empty path" c.conn_name);
      let on_path = Hashtbl.create 8 in
      List.iter
        (fun a ->
          if a < 0 || a >= ng then
            invalid_arg
              (Printf.sprintf "Network: connection %s references unknown gateway %d"
                 c.conn_name a);
          if Hashtbl.mem on_path a then
            invalid_arg
              (Printf.sprintf "Network: connection %s repeats gateway %d" c.conn_name a);
          Hashtbl.add on_path a ())
        c.path)
    connections

let create ~gateways ~connections =
  validate ~gateways ~connections;
  let gateways = Array.copy gateways and connections = Array.copy connections in
  let ng = Array.length gateways in
  let at_gateway = Array.make ng [] in
  Array.iteri
    (fun i c -> List.iter (fun a -> at_gateway.(a) <- i :: at_gateway.(a)) c.path)
    connections;
  let at_gateway = Array.map (fun l -> List.sort compare l) at_gateway in
  let local_idx = Hashtbl.create 64 in
  Array.iteri
    (fun a conns -> List.iteri (fun pos i -> Hashtbl.add local_idx (i, a) pos) conns)
    at_gateway;
  { gateways; connections; at_gateway; local_idx }

let num_gateways t = Array.length t.gateways
let num_connections t = Array.length t.connections

let gateway t a =
  if a < 0 || a >= num_gateways t then invalid_arg "Network.gateway: index out of bounds";
  t.gateways.(a)

let connection t i =
  if i < 0 || i >= num_connections t then
    invalid_arg "Network.connection: index out of bounds";
  t.connections.(i)

let gateways_of_connection t i = (connection t i).path

let connections_at_gateway t a =
  if a < 0 || a >= num_gateways t then
    invalid_arg "Network.connections_at_gateway: index out of bounds";
  t.at_gateway.(a)

let fanin t a = List.length (connections_at_gateway t a)

let gateway_index t name =
  let found = ref (-1) in
  Array.iteri (fun i g -> if g.gw_name = name then found := i) t.gateways;
  if !found < 0 then raise Not_found else !found

let connection_index t name =
  let found = ref (-1) in
  Array.iteri (fun i c -> if c.conn_name = name then found := i) t.connections;
  if !found < 0 then raise Not_found else !found

let scale_mu t c =
  if not (c > 0.) then invalid_arg "Network.scale_mu: scale must be positive";
  create
    ~gateways:(Array.map (fun g -> { g with mu = g.mu *. c }) t.gateways)
    ~connections:t.connections

let with_mu t ~gw ~mu =
  if gw < 0 || gw >= num_gateways t then
    invalid_arg "Network.with_mu: gateway index out of bounds";
  if not (mu > 0.) then invalid_arg "Network.with_mu: mu must be positive";
  create
    ~gateways:(Array.mapi (fun a g -> if a = gw then { g with mu } else g) t.gateways)
    ~connections:t.connections

let with_latencies t lats =
  if Array.length lats <> num_gateways t then
    invalid_arg "Network.with_latencies: wrong length";
  create
    ~gateways:(Array.mapi (fun a g -> { g with latency = lats.(a) }) t.gateways)
    ~connections:t.connections

let rates_at_gateway t ~rates a =
  if Array.length rates <> num_connections t then
    invalid_arg "Network.rates_at_gateway: rates length mismatch";
  connections_at_gateway t a |> List.map (fun i -> rates.(i)) |> Array.of_list

let local_index t ~conn ~gw =
  match Hashtbl.find_opt t.local_idx (conn, gw) with
  | Some pos -> pos
  | None -> raise Not_found

let pp ppf t =
  Format.fprintf ppf "@[<v>network: %d gateways, %d connections@," (num_gateways t)
    (num_connections t);
  Array.iteri
    (fun a g ->
      Format.fprintf ppf "  gw %s: mu=%g latency=%g fanin=%d@," g.gw_name g.mu g.latency
        (fanin t a))
    t.gateways;
  Array.iteri
    (fun _ c ->
      Format.fprintf ppf "  conn %s: path=[%a]@," c.conn_name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        c.path)
    t.connections;
  Format.fprintf ppf "@]"
