(** Canonical network topologies used throughout the evaluation.

    Each builder returns a validated {!Network.t}.  Unless stated
    otherwise, all gateways share service rate [mu] (default 1.0) and
    latency [latency] (default 0.0), matching the paper's examples. *)

val single : ?mu:float -> ?latency:float -> n:int -> unit -> Network.t
(** A single gateway shared by [n] connections — the configuration of the
    paper's Theorem 2 proof, instability example, and robustness
    example. *)

val parking_lot : ?mu:float -> ?latency:float -> hops:int -> unit -> Network.t
(** The classic multi-bottleneck layout: one long connection traverses all
    [hops] gateways; each gateway also carries one single-hop cross
    connection.  Connection 0 is the long one. *)

val multi_parking_lot :
  ?mu:float -> ?latency:float -> lots:int -> hops:int -> unit -> Network.t
(** [lots] disjoint copies of {!parking_lot}[ ~hops] — [lots * hops]
    gateways, [lots * (hops + 1)] connections, no gateway shared across
    lots.  Connection [l * (hops + 1)] is lot [l]'s long flow.  The
    stability matrix's coupling pattern is block-diagonal, which makes
    this the canonical topology for sparse/grouped Jacobian probing and
    for localized churn (a join or leave perturbs one lot only). *)

val chain :
  ?mu:float -> ?latency:float -> hops:int -> conns:int -> unit -> Network.t
(** [conns] identical connections all traversing the same [hops] gateways
    in sequence. *)

val star : ?mu:float -> ?latency:float -> legs:int -> unit -> Network.t
(** [legs] inbound gateways feeding one shared outbound gateway; each of
    the [legs] connections crosses its own inbound gateway then the shared
    one (which is the common bottleneck when rates are equal). *)

val dumbbell :
  ?mu:float -> ?latency:float -> left:int -> right:int -> unit -> Network.t
(** [left + right] connections share one middle bottleneck gateway; each
    connection also crosses a private access gateway with ample capacity
    (10x [mu]). *)

val random :
  ?mu_range:float * float ->
  ?latency_range:float * float ->
  rng:Ffc_numerics.Rng.t ->
  gateways:int ->
  connections:int ->
  max_path:int ->
  unit ->
  Network.t
(** A random topology: every connection picks a uniformly random non-empty
    subset path of length ≤ [max_path] (distinct gateways, random order);
    service rates and latencies drawn uniformly from the given ranges
    (defaults [0.5, 2.0] and [0.0, 1.0]). Every gateway is guaranteed at
    least one traversing connection re-rolled onto it if initially
    unused. *)
