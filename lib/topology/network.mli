(** Static network and traffic model (paper §2.1).

    A network is a set of logical gateways (one per directed communication
    line, each an exponential server with rate μ^a and line latency l_a)
    and a set of connections (source–destination pairs with a fixed route).
    Routing is static, so everything the model needs is captured by the
    incidence sets γ(i) — the gateways on connection i's path — and
    Γ(a) — the connections through gateway a. *)

type gateway = {
  gw_name : string;
  mu : float;  (** Exponential service rate μ^a, packets per unit time. *)
  latency : float;  (** Propagation latency l_a of the outgoing line. *)
}

type connection = {
  conn_name : string;
  path : int list;  (** γ(i): gateway indices in path order, no repeats. *)
}

type t

val create : gateways:gateway array -> connections:connection array -> t
(** Validates and freezes a topology. Raises [Invalid_argument] when a
    path references an unknown gateway, repeats a gateway, or is empty;
    when a service rate is non-positive; when a latency is negative; or
    when names collide. *)

val num_gateways : t -> int
val num_connections : t -> int

val gateway : t -> int -> gateway
val connection : t -> int -> connection

val gateways_of_connection : t -> int -> int list
(** γ(i), in path order. *)

val connections_at_gateway : t -> int -> int list
(** Γ(a), in increasing connection index. *)

val fanin : t -> int -> int
(** N^a = |Γ(a)|. *)

val gateway_index : t -> string -> int
(** Index by name. Raises [Not_found]. *)

val connection_index : t -> string -> int

val scale_mu : t -> float -> t
(** [scale_mu net c] multiplies every service rate by [c > 0] — the
    scaling under which TSI steady states must scale linearly
    (Theorem 1). Latencies are unchanged. *)

val with_mu : t -> gw:int -> mu:float -> t
(** [with_mu net ~gw ~mu] replaces gateway [gw]'s service rate with
    [mu > 0], leaving everything else unchanged — the primitive behind
    gateway-degradation fault events (a line cut to a fraction of its
    capacity and later restored). *)

val with_latencies : t -> float array -> t
(** Replaces per-gateway latencies (array indexed by gateway). TSI steady
    states must be invariant under this. *)

val rates_at_gateway : t -> rates:float array -> int -> float array
(** The rate sub-vector of the connections in Γ(a), ordered as
    [connections_at_gateway]. [rates] is indexed by connection. *)

val local_index : t -> conn:int -> gw:int -> int
(** Position of connection [conn] within [connections_at_gateway gw].
    Raises [Not_found] when the connection does not traverse the
    gateway. *)

val pp : Format.formatter -> t -> unit
(** Human-readable topology summary. *)
