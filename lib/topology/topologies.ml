open Ffc_numerics

let gw name mu latency = { Network.gw_name = name; mu; latency }
let conn name path = { Network.conn_name = name; path }

let single ?(mu = 1.) ?(latency = 0.) ~n () =
  if n <= 0 then invalid_arg "Topologies.single: need n > 0";
  Network.create
    ~gateways:[| gw "gw0" mu latency |]
    ~connections:(Array.init n (fun i -> conn (Printf.sprintf "conn%d" i) [ 0 ]))

let parking_lot ?(mu = 1.) ?(latency = 0.) ~hops () =
  if hops <= 0 then invalid_arg "Topologies.parking_lot: need hops > 0";
  let gateways = Array.init hops (fun a -> gw (Printf.sprintf "gw%d" a) mu latency) in
  let long = conn "long" (List.init hops Fun.id) in
  let cross = Array.init hops (fun a -> conn (Printf.sprintf "cross%d" a) [ a ]) in
  Network.create ~gateways ~connections:(Array.append [| long |] cross)

(* [lots] disjoint copies of [parking_lot ~hops]: no gateway is shared
   across lots, so the route-incidence pattern of the stability matrix
   is block-diagonal with [lots] blocks of [hops + 1] connections.
   This is the canonical genuinely-sparse benchmark topology: every
   single-lot layout above has one flow (or one gateway) coupling all
   connections pairwise, which forces column-per-column Jacobian
   probing, while here probe groups can take one column per lot. *)
let multi_parking_lot ?(mu = 1.) ?(latency = 0.) ~lots ~hops () =
  if lots <= 0 || hops <= 0 then
    invalid_arg "Topologies.multi_parking_lot: need positive sizes";
  let gateways =
    Array.init (lots * hops) (fun g ->
        gw (Printf.sprintf "lot%d.gw%d" (g / hops) (g mod hops)) mu latency)
  in
  let per_lot = hops + 1 in
  let connections =
    Array.init (lots * per_lot) (fun c ->
        let l = c / per_lot and k = c mod per_lot in
        let base = l * hops in
        if k = 0 then
          conn (Printf.sprintf "lot%d.long" l) (List.init hops (fun a -> base + a))
        else conn (Printf.sprintf "lot%d.cross%d" l (k - 1)) [ base + k - 1 ])
  in
  Network.create ~gateways ~connections

let chain ?(mu = 1.) ?(latency = 0.) ~hops ~conns () =
  if hops <= 0 || conns <= 0 then invalid_arg "Topologies.chain: need positive sizes";
  let gateways = Array.init hops (fun a -> gw (Printf.sprintf "gw%d" a) mu latency) in
  let path = List.init hops Fun.id in
  Network.create ~gateways
    ~connections:(Array.init conns (fun i -> conn (Printf.sprintf "conn%d" i) path))

let star ?(mu = 1.) ?(latency = 0.) ~legs () =
  if legs <= 0 then invalid_arg "Topologies.star: need legs > 0";
  let gateways =
    Array.init (legs + 1) (fun a ->
        if a < legs then gw (Printf.sprintf "in%d" a) mu latency
        else gw "hub" mu latency)
  in
  Network.create ~gateways
    ~connections:
      (Array.init legs (fun i -> conn (Printf.sprintf "conn%d" i) [ i; legs ]))

let dumbbell ?(mu = 1.) ?(latency = 0.) ~left ~right () =
  if left <= 0 || right <= 0 then invalid_arg "Topologies.dumbbell: need positive sides";
  let n = left + right in
  let gateways =
    Array.init (n + 1) (fun a ->
        if a = 0 then gw "bottleneck" mu latency
        else gw (Printf.sprintf "access%d" (a - 1)) (10. *. mu) latency)
  in
  Network.create ~gateways
    ~connections:(Array.init n (fun i -> conn (Printf.sprintf "conn%d" i) [ i + 1; 0 ]))

let random ?(mu_range = (0.5, 2.0)) ?(latency_range = (0.0, 1.0)) ~rng ~gateways
    ~connections ~max_path () =
  if gateways <= 0 || connections <= 0 || max_path <= 0 then
    invalid_arg "Topologies.random: need positive sizes";
  let mu_lo, mu_hi = mu_range and lat_lo, lat_hi = latency_range in
  if not (mu_lo > 0. && mu_hi >= mu_lo) then
    invalid_arg "Topologies.random: bad mu range";
  if not (lat_lo >= 0. && lat_hi >= lat_lo) then
    invalid_arg "Topologies.random: bad latency range";
  let gws =
    Array.init gateways (fun a ->
        gw
          (Printf.sprintf "gw%d" a)
          (if mu_hi > mu_lo then Rng.range rng mu_lo mu_hi else mu_lo)
          (if lat_hi > lat_lo then Rng.range rng lat_lo lat_hi else lat_lo))
  in
  let random_path () =
    let len = 1 + Rng.int rng (Stdlib.min max_path gateways) in
    let perm = Array.init gateways Fun.id in
    Rng.shuffle rng perm;
    Array.to_list (Array.sub perm 0 len)
  in
  let conns =
    Array.init connections (fun i -> conn (Printf.sprintf "conn%d" i) (random_path ()))
  in
  (* Ensure no gateway is left without traffic: reroute one connection per
     unused gateway through it. *)
  let used = Array.make gateways false in
  Array.iter (fun c -> List.iter (fun a -> used.(a) <- true) c.Network.path) conns;
  Array.iteri
    (fun a u ->
      if not u then begin
        let victim = Rng.int rng connections in
        let c = conns.(victim) in
        conns.(victim) <- { c with Network.path = a :: c.Network.path }
      end)
    used;
  Network.create ~gateways:gws ~connections:conns
