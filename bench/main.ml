(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper (experiments
   E1-E13) — the reproduction artifacts themselves.

   Part 2 runs Bechamel micro-benchmarks of the computational kernels so
   that performance regressions in the model code are visible: the Fair
   Share queue recursion, the FIFO baseline, one controller step on a
   parking-lot network, the numeric Jacobian + eigensolve that powers the
   stability analysis, the water-filling construction, and the
   discrete-event simulator's event loop. *)

open Bechamel
open Toolkit
open Ffc_numerics
open Ffc_queueing
open Ffc_topology
open Ffc_core
open Ffc_faults

let fs_rates = Array.init 64 (fun i -> 0.001 *. float_of_int (i + 1))
let fs_mu = Vec.sum fs_rates *. 2.

let bench_fs_queues =
  Test.make ~name:"fair_share.queue_lengths (N=64)"
    (Staged.stage (fun () -> Fair_share.queue_lengths ~mu:fs_mu fs_rates))

let bench_fifo_queues =
  Test.make ~name:"fifo.queue_lengths (N=64)"
    (Staged.stage (fun () -> Fifo.queue_lengths ~mu:fs_mu fs_rates))

let controller_net = Topologies.parking_lot ~hops:4 ()

let controller =
  Controller.homogeneous ~config:Feedback.individual_fair_share
    ~adjuster:Scenario.standard_adjuster
    ~n:(Network.num_connections controller_net)

let controller_rates = Array.make (Network.num_connections controller_net) 0.1

let bench_controller_step =
  Test.make ~name:"controller.step (parking lot, 4 hops)"
    (Staged.stage (fun () ->
         Controller.step controller ~net:controller_net controller_rates))

(* The fault-injection hook on the same network: an empty plan must cost
   one branch over the bare step (the trivial path skips all
   bookkeeping, so the repeated step index is fine), and a full plan
   shows the faulted-path price.  The full-plan injector requires
   consecutive step indices, hence the counter. *)
let empty_injector = Injector.create controller ~net:controller_net

let bench_injector_empty =
  Test.make ~name:"injector.step empty plan (parking lot, 4 hops)"
    (Staged.stage (fun () ->
         Injector.step empty_injector ~step:0 controller_rates))

let full_plan =
  Fault.plan ~seed:17
    [
      Fault.everywhere (Fault.Stale { lag = 4 });
      Fault.everywhere (Fault.Lossy { p = 0.1 });
      Fault.everywhere (Fault.Noisy { sigma = 0.02 });
    ]

let bench_injector_full =
  let inj = Injector.create ~plan:full_plan controller ~net:controller_net in
  let k = ref 0 in
  Test.make ~name:"injector.step stale+lossy+noisy (parking lot, 4 hops)"
    (Staged.stage (fun () ->
         let r = Injector.step inj ~step:!k controller_rates in
         incr k;
         r))

let jac_net = Topologies.single ~n:12 ()

let jac_controller =
  Controller.homogeneous ~config:Feedback.individual_fair_share
    ~adjuster:Scenario.standard_adjuster ~n:12

let jac_point = Array.make 12 (0.5 /. 12.)

let bench_jacobian =
  Test.make ~name:"jacobian + eigenvalues (N=12)"
    (Staged.stage (fun () ->
         let df = Jacobian.of_controller jac_controller ~net:jac_net ~at:jac_point in
         Eigen.spectral_radius df))

let wf_rng = Rng.create 99
let wf_net = Topologies.random ~rng:wf_rng ~gateways:8 ~connections:24 ~max_path:4 ()

let bench_water_filling =
  Test.make ~name:"steady_state.fair (8 gw, 24 conns)"
    (Staged.stage (fun () ->
         Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:0.5 ~net:wf_net))

let desim_net = Topologies.single ~mu:1. ~n:2 ()

let bench_desim =
  Test.make ~name:"desim 1000 time units (FS, rho=0.6)"
    (Staged.stage (fun () ->
         Ffc_desim.Netsim.run ~net:desim_net ~rates:[| 0.3; 0.3 |]
           ~discipline:Ffc_desim.Netsim.Fs_priority ~seed:3 ~horizon:1000. ()))

let bench_eigen_dense =
  let m =
    Mat.init 24 24 (fun i j ->
        sin (float_of_int ((i * 31) + j)) /. (1. +. float_of_int (abs (i - j))))
  in
  Test.make ~name:"eigenvalues dense 24x24" (Staged.stage (fun () -> Eigen.eigenvalues m))

(* Structure-aware stability kernel at scale: a Fair Share population
   with distinct rates (load = mu/2), where DF is exactly triangular in
   rate order, so [Eigen.spectral_radius] takes the Theorem-4 diagonal
   read while [spectral_radius_dense] pays the full QR iteration on the
   same matrix.  The Jacobian cases measure the pooled
   finite-difference fan-out end to end. *)
let big_point n =
  let scale = 0.5 /. (float_of_int n *. float_of_int (n + 1) /. 2.) in
  Array.init n (fun i -> scale *. float_of_int (i + 1))

let big_controller n =
  Controller.homogeneous ~config:Feedback.individual_fair_share
    ~adjuster:Scenario.standard_adjuster ~n

let big_df n =
  Jacobian.of_controller (big_controller n) ~net:(Topologies.single ~mu:1. ~n ())
    ~at:(big_point n)

let bench_jacobian_at n =
  let net = Topologies.single ~mu:1. ~n () in
  let c = big_controller n in
  let at = big_point n in
  Test.make
    ~name:(Printf.sprintf "jacobian pooled + eigenvalues (N=%d)" n)
    (Staged.stage (fun () ->
         let df = Jacobian.of_controller c ~net ~at in
         Eigen.spectral_radius df))

let bench_eigen_fast_at n =
  let df = big_df n in
  Test.make
    ~name:(Printf.sprintf "eigen structure-aware (FS DF, N=%d)" n)
    (Staged.stage (fun () -> Eigen.spectral_radius df))

let bench_eigen_dense_at n =
  let df = big_df n in
  Test.make
    ~name:(Printf.sprintf "eigen dense QR (FS DF, N=%d)" n)
    (Staged.stage (fun () -> Eigen.spectral_radius_dense df))

let window_net = Topologies.parking_lot ~hops:2 ~latency:0.2 ()

let bench_window_fixed_point =
  Test.make ~name:"window fixed point (parking lot)"
    (Staged.stage (fun () ->
         Window.rates_of_windows Feedback.individual_fifo ~net:window_net
           ~windows:[| 0.8; 0.5; 1.2 |]))

let bench_nash =
  let utility = Ffc_game.Utility.linear ~delay_cost:0.01 in
  Test.make ~name:"nash solve (FS, N=3)"
    (Staged.stage (fun () ->
         Ffc_game.Nash.solve Ffc_queueing.Service.fair_share utility ~mu:1. ~n:3
           ~r0:[| 0.1; 0.1; 0.1 |]))

let closed_loop_net = Topologies.single ~mu:1. ~n:2 ()

let bench_closed_loop =
  Test.make ~name:"closed loop, 10 updates x 100 time units"
    (Staged.stage (fun () ->
         Ffc_closedloop.Closed_loop.run ~net:closed_loop_net
           ~discipline:Ffc_closedloop.Closed_loop.Fs_priority
           ~style:Congestion.Individual ~signal:Signal.linear_fractional
           ~adjusters:(Array.make 2 Scenario.standard_adjuster)
           ~r0:[| 0.1; 0.1 |] ~interval:100. ~updates:10 ~seed:5 ()))

let tests =
  Test.make_grouped ~name:"ffc"
    [
      bench_fifo_queues;
      bench_fs_queues;
      bench_controller_step;
      bench_injector_empty;
      bench_injector_full;
      bench_jacobian;
      bench_eigen_dense;
      bench_jacobian_at 64;
      bench_jacobian_at 128;
      bench_eigen_fast_at 64;
      bench_eigen_dense_at 64;
      bench_eigen_fast_at 128;
      bench_eigen_dense_at 128;
      bench_water_filling;
      bench_desim;
      bench_window_fixed_point;
      bench_nash;
      bench_closed_loop;
    ]

type kernel_row = {
  kernel : string;
  ns_per_run : float;
  minor_words_per_run : float;
  major_words_per_run : float;
}

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock; minor_allocated; major_allocated ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | Some ols_result -> (
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> est
      | Some [] | None -> Float.nan)
    | None -> Float.nan
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let minors = Analyze.all ols Instance.minor_allocated raw in
  let majors = Analyze.all ols Instance.major_allocated raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) times [] in
  let rows =
    List.map
      (fun name ->
        {
          kernel = name;
          ns_per_run = estimate times name;
          minor_words_per_run = estimate minors name;
          major_words_per_run = estimate majors name;
        })
      (List.sort compare names)
  in
  Printf.printf "%-55s %14s %14s %14s\n" "kernel" "ns/run" "minor w/run"
    "major w/run";
  Printf.printf "%s\n" (String.make 100 '-');
  List.iter
    (fun r ->
      Printf.printf "%-55s %14.1f %14.1f %14.1f\n" r.kernel r.ns_per_run
        r.minor_words_per_run r.major_words_per_run)
    rows;
  rows

(* Wall-clock comparison of the pooled experiment scans at jobs = 1 vs
   jobs = 4, with a structural identical-output check: the determinism
   contract says the rows must compare equal whatever the jobs count. *)
type scan_row = {
  scan : string;
  seconds_jobs1 : float;
  seconds_jobs4 : float;
  scan_speedup : float;
  identical : bool;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let compare_scan name (f : jobs:int -> 'a) =
  let a, t1 = time (fun () -> f ~jobs:1) in
  let b, t4 = time (fun () -> f ~jobs:4) in
  {
    scan = name;
    seconds_jobs1 = t1;
    seconds_jobs4 = t4;
    scan_speedup = t1 /. t4;
    identical = a = b;
  }

let run_scans () =
  let open Ffc_experiments in
  let rows =
    [
      compare_scan "E5 stability sweep (8 sizes)" (fun ~jobs ->
          E05_stability.compute ~jobs ());
      compare_scan "E7 Theorem-4 sweep (10 trials)" (fun ~jobs ->
          E07_triangular.compute ~jobs ());
      compare_scan "E22 gain ablation (18 cells)" (fun ~jobs ->
          E22_gain.compute ~jobs ());
      compare_scan "E25 stress matrix (33 cells)" (fun ~jobs ->
          E25_stress.compute ~jobs ());
    ]
  in
  Printf.printf "%-45s %10s %10s %8s %10s\n" "scan" "jobs=1 (s)" "jobs=4 (s)"
    "speedup" "identical";
  Printf.printf "%s\n" (String.make 88 '-');
  List.iter
    (fun r ->
      Printf.printf "%-45s %10.2f %10.2f %7.2fx %10s\n" r.scan r.seconds_jobs1
        r.seconds_jobs4 r.scan_speedup
        (if r.identical then "yes" else "NO"))
    rows;
  rows

(* Head-to-head fault-hook overhead with matched manual timing loops:
   bechamel's per-test OLS fits carry enough jitter to swamp a
   few-percent delta, so the <5% contract for the unfaulted path is
   checked by timing identical loops over the same closure shape.  The
   empty-plan injector must delegate straight to [Controller.step]. *)
type fault_overhead = {
  bare_step_ns : float;
  empty_injector_ns : float;
  overhead_pct : float;
  full_plan_ns : float;
  fault_rounds : int;
}

let time_loop ~iters f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let fault_overhead_comparison () =
  (* The empty-plan hook costs one branch and one int store per step —
     constant, independent of the network — so it is measured against a
     64-connection step (~15 us) where wall-clock jitter and code-layout
     luck (easily 100+ ns/call on a ~2 us step, i.e. a fake 5%) sit well
     under 1%.  Paired rounds with a median-of-deltas estimate: timing
     bare and hooked adjacently inside each round and taking the median
     per-round difference cancels drift that is slow relative to one
     round, which a min over separate loops does not. *)
  let n = 64 in
  let net = Topologies.single ~mu:1. ~n () in
  let c =
    Controller.homogeneous ~config:Feedback.individual_fair_share
      ~adjuster:Scenario.standard_adjuster ~n
  in
  let rates = Array.init n (fun i -> 0.001 *. float_of_int (i + 1)) in
  let empty_inj = Injector.create c ~net in
  let iters = 2_000 and rounds = 21 in
  let bare_f () = Controller.step c ~net rates in
  let empty_f () = Injector.step empty_inj ~step:0 rates in
  let full_inj = Injector.create ~plan:full_plan c ~net in
  let k = ref 0 in
  let full_f () =
    let r = Injector.step full_inj ~step:!k rates in
    incr k;
    r
  in
  ignore (time_loop ~iters bare_f);
  ignore (time_loop ~iters empty_f);
  ignore (time_loop ~iters full_f);
  Gc.compact ();
  let bares = Array.make rounds 0.
  and empties = Array.make rounds 0.
  and fulls = Array.make rounds 0. in
  for i = 0 to rounds - 1 do
    bares.(i) <- time_loop ~iters bare_f;
    empties.(i) <- time_loop ~iters empty_f;
    fulls.(i) <- time_loop ~iters full_f
  done;
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let bare = median bares and full = median fulls in
  (* The true overhead is a branch and a store — never negative.  A
     negative median delta is measurement noise (the hooked loop won the
     coin flips that round), so it is clamped to 0 rather than reported
     as a nonsensical speedup. *)
  let delta =
    Float.max 0. (median (Array.init rounds (fun i -> empties.(i) -. bares.(i))))
  in
  let empty = bare +. delta in
  let overhead_pct = delta /. bare *. 100. in
  Printf.printf "bare Controller.step (single gw, N=64)  %10.1f ns/run\n" bare;
  Printf.printf
    "Injector.step, empty plan               %10.1f ns/run   overhead %+.2f%% %s\n"
    empty overhead_pct
    (if overhead_pct < 5. then "(< 5% contract: ok)" else "(>= 5%: VIOLATION)");
  Printf.printf "Injector.step, stale+lossy+noisy        %10.1f ns/run\n" full;
  Printf.printf "(%d paired rounds of %d iterations)\n" rounds iters;
  {
    bare_step_ns = bare;
    empty_injector_ns = empty;
    overhead_pct;
    full_plan_ns = full;
    fault_rounds = rounds;
  }

(* Observability overhead: an installed context with a null sink must
   cost < 2% on the instrumented hot paths — one atomic load, a branch
   and an atomic increment per tap, no allocation.  Measured the same
   way as the fault hook: paired rounds, median of per-round deltas,
   clamped at 0. *)
type obs_row = {
  obs_kernel : string;
  obs_bare_ns : float;
  obs_null_ctx_ns : float;
  obs_overhead_pct : float;
  obs_rounds : int;
}

let obs_overhead_one ~name ~iters ~rounds f =
  let ctx = Ffc_obs.Ctx.make () in
  let hooked () = Ffc_obs.Ctx.with_ctx ctx (fun () -> time_loop ~iters f) in
  ignore (time_loop ~iters f);
  ignore (hooked ());
  Gc.compact ();
  let bares = Array.make rounds 0. and nulls = Array.make rounds 0. in
  (* Alternate which arm runs first so monotonic drift (thermal,
     frequency scaling, GC heap growth) doesn't favour one arm. *)
  for i = 0 to rounds - 1 do
    if i land 1 = 0 then begin
      bares.(i) <- time_loop ~iters f;
      nulls.(i) <- hooked ()
    end
    else begin
      nulls.(i) <- hooked ();
      bares.(i) <- time_loop ~iters f
    end
  done;
  (* Median of paired deltas over many short rounds.  Host interference
     here comes in bursts lasting tens of milliseconds, so a pair whose
     two arms run back-to-back inside a quiet window measures the true
     delta, and the median only needs a majority of quiet pairs — which
     short arms and a large round count buy.  (Per-arm minima fail when
     a burst blankets every round of one arm; few long rounds fail when
     a burst lands inside most pairs.)  Overhead can't be negative;
     clamp at 0. *)
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let bare = median bares in
  let delta =
    Float.max 0. (median (Array.init rounds (fun i -> nulls.(i) -. bares.(i))))
  in
  let pct = delta /. bare *. 100. in
  Printf.printf "%-40s %12.1f ns bare  %12.1f ns hooked  %+6.2f%% %s\n" name bare
    (bare +. delta) pct
    (if pct < 2. then "(< 2% contract: ok)" else "(>= 2%: VIOLATION)");
  {
    obs_kernel = name;
    obs_bare_ns = bare;
    obs_null_ctx_ns = bare +. delta;
    obs_overhead_pct = pct;
    obs_rounds = rounds;
  }

let obs_overhead_comparison () =
  let n = 64 in
  let net = Topologies.single ~mu:1. ~n () in
  let c =
    Controller.homogeneous ~config:Feedback.individual_fair_share
      ~adjuster:Scenario.standard_adjuster ~n
  in
  let rates = Array.init n (fun i -> 0.001 *. float_of_int (i + 1)) in
  (* Arms of ~5-10 ms keep each pair inside one scheduler quantum;
     ~100 rounds give the median a solid majority of quiet pairs. *)
  let step =
    obs_overhead_one ~name:"controller.step (single gw, N=64)" ~iters:200
      ~rounds:101 (fun () -> Controller.step c ~net rates)
  in
  let desim =
    obs_overhead_one ~name:"desim 1000 time units (FS, rho=0.6)" ~iters:15
      ~rounds:101 (fun () ->
        Ffc_desim.Netsim.run ~net:desim_net ~rates:[| 0.3; 0.3 |]
          ~discipline:Ffc_desim.Netsim.Fs_priority ~seed:3 ~horizon:1000. ())
  in
  (* The span-instrumented solve pipeline (steady.fair_masked + jac.sparse
     + eigen spans).  The masks alternate so each iteration misses the
     one-slot memos and really solves — measuring the per-solve span
     guard, not a memo hit. *)
  let solve =
    let net = Topologies.parking_lot ~hops:4 () in
    let np = Network.num_connections net in
    let c =
      Controller.homogeneous ~config:Feedback.individual_fair_share
        ~adjuster:Scenario.standard_adjuster ~n:np
    in
    let masks =
      [| Array.make np true; Array.init np (fun i -> i <> np - 1) |]
    in
    let k = ref 0 in
    obs_overhead_one ~name:"solve pipeline (fair+DF+rho, parking lot)"
      ~iters:50 ~rounds:101 (fun () ->
        let mask = masks.(!k land 1) in
        incr k;
        let ss =
          Steady_state.fair_masked ~signal:Signal.linear_fractional ~b_ss:0.5
            ~net ~active:mask
        in
        let df = Jacobian.of_controller_sparse c ~net ~at:ss in
        ignore (Jacobian.spectral_radius_sparse df : float))
  in
  [ step; desim; solve ]

(* Result cache: cold vs warm full experiment sweeps against a scratch
   cache directory.  The warm sweep must be a 100% hit replay with
   byte-identical output; the cold sweep's lookup overhead must stay
   under 1% of the uncached wall time.  A single cold-vs-uncached
   wall-clock diff is noise-dominated at the percent level, so the
   overhead is derived instead: per-lookup cost measured hot in a
   timing loop, multiplied by the cold run's actual lookup count. *)
type cache_comp = {
  cache_jobs : int;
  cache_uncached_s : float;
  cache_cold_s : float;
  cache_warm_s : float;
  cache_warm_speedup : float;
  cache_warm_hit_ratio : float;
  cache_cold_lookups : int;
  cache_lookup_ns : float;
  cache_cold_overhead_pct : float;
  cache_identical : bool;
}

let time_loop_ns ~iters f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let cache_comparison () =
  let open Ffc_cache in
  Printf.printf "%s\nresult cache: cold vs warm exp sweep\n%s\n"
    (String.make 72 '=') (String.make 72 '=');
  let dir = Filename.temp_dir "ffc-bench-cache" "" in
  let jobs = Stdlib.min 4 (Domain.recommended_domain_count ()) in
  Fun.protect
    ~finally:(fun () ->
      Store.clear (Store.create ~root:dir ());
      if Sys.file_exists dir then Sys.rmdir dir)
    (fun () ->
      let c = Cache.create ~dir () in
      let uncached, t_un =
        time (fun () -> Ffc_experiments.Registry.run_all ~jobs ())
      in
      let cold, t_cold =
        time (fun () ->
            Cache.with_cache c (fun () ->
                Ffc_experiments.Registry.run_all ~jobs ()))
      in
      let cold_lookups = Cache.lookups (Cache.counters c) in
      Cache.reset c;
      let warm, t_warm =
        time (fun () ->
            Cache.with_cache c (fun () ->
                Ffc_experiments.Registry.run_all ~jobs ()))
      in
      let warm_hit_ratio = Cache.hit_ratio (Cache.counters c) in
      let identical = String.equal uncached cold && String.equal uncached warm in
      (* Hot per-lookup cost (key build + probe + decode of a small
         entry), so the derived cold overhead is an upper bound on the
         lookup share of the uncached wall time. *)
      let lookup_ns =
        Cache.with_cache c (fun () ->
            let probe () =
              Cache.memo ~tier:"bench"
                ~build:(fun k -> Key.str k "lookup-probe")
                ~encode:(fun v -> Codec.encode (fun b -> Codec.put_floats b v))
                ~decode:Codec.get_floats
                (fun () -> [| 1.; 2. |])
            in
            ignore (probe ());
            time_loop_ns ~iters:5_000 probe)
      in
      let overhead_pct =
        float_of_int cold_lookups *. lookup_ns /. (t_un *. 1e9) *. 100.
      in
      Printf.printf "uncached sweep (--jobs %d)  %8.2f s\n" jobs t_un;
      Printf.printf "cold cached sweep           %8.2f s   (%d lookups)\n"
        t_cold cold_lookups;
      Printf.printf "warm cached sweep           %8.2f s   speedup %.0fx   hit ratio %.3f\n"
        t_warm (t_un /. t_warm) warm_hit_ratio;
      Printf.printf "per-lookup cost             %8.0f ns\n" lookup_ns;
      Printf.printf "cold lookup overhead        %8.3f %%  %s\n" overhead_pct
        (if overhead_pct < 1. then "(< 1% contract: ok)"
         else "(>= 1%: VIOLATION)");
      Printf.printf "outputs byte-identical: %s\n"
        (if identical then "yes" else "NO");
      {
        cache_jobs = jobs;
        cache_uncached_s = t_un;
        cache_cold_s = t_cold;
        cache_warm_s = t_warm;
        cache_warm_speedup = t_un /. t_warm;
        cache_warm_hit_ratio = warm_hit_ratio;
        cache_cold_lookups = cold_lookups;
        cache_lookup_ns = lookup_ns;
        cache_cold_overhead_pct = overhead_pct;
        cache_identical = identical;
      })

(* Structure-aware Jacobian path: dense probing vs grouped sparse
   probing vs the incremental churn update, on disjoint parking lots
   where the route-incidence pattern is genuinely sparse (nnz grows
   linearly, probe groups stay at hops+1 whatever N).  Identity is part
   of the contract and is asserted here, not just timed: the CSR build
   must match the dense build bit for bit, and the incremental update
   after a one-flow change must match a from-scratch rebuild. *)
type sparse_row = {
  sp_n : int;
  sp_nnz : int;
  sp_groups : int;
  sp_dense_ns : float;  (* dense FD Jacobian + spectral radius *)
  sp_sparse_ns : float;  (* grouped CSR Jacobian + sparse spectral radius *)
  sp_speedup : float;
  sp_rebuild_ns : float;  (* from-scratch CSR rebuild at the new point *)
  sp_update_ns : float;  (* update_flow after a single-flow change *)
  sp_update_speedup : float;
  sp_identical : bool;
}

let sparse_comparison_one ~lots ~hops ~iters =
  let net = Topologies.multi_parking_lot ~lots ~hops () in
  let n = Network.num_connections net in
  let pattern = Sparsity.of_network net in
  let c = big_controller n in
  let at = big_point n in
  let f r = Controller.step c ~net r in
  (* Identity checks, once, outside the timing loops. *)
  let dense_df = Jacobian.numeric f ~at in
  let sp_df = Jacobian.numeric_sparse f ~pattern ~at in
  let bits = Int64.bits_of_float in
  let build_identical =
    let d = Mat.Sparse.to_dense sp_df in
    try
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if bits (Mat.get d i j) <> bits (Mat.get dense_df i j) then raise Exit
        done
      done;
      true
    with Exit -> false
  in
  (* Churn: bump one flow's rate (lot 0's long flow, so the touched
     region is exactly one lot) and patch vs rebuild. *)
  let at' = Array.copy at in
  at'.(0) <- at'.(0) *. 1.5;
  let full' = Jacobian.of_controller_sparse c ~net ~at:at' in
  let upd = Jacobian.update_flow c ~net ~prev:sp_df ~prev_at:at ~at:at' in
  let update_identical = Mat.Sparse.equal upd full' in
  let dense_op () =
    let df = Jacobian.numeric f ~at in
    Jacobian.spectral_radius df
  in
  let sparse_op () =
    let s = Jacobian.numeric_sparse f ~pattern ~at in
    Jacobian.spectral_radius_sparse s
  in
  let rebuild_op () = Jacobian.of_controller_sparse c ~net ~at:at' in
  let update_op () =
    Jacobian.update_flow c ~net ~prev:sp_df ~prev_at:at ~at:at'
  in
  ignore (dense_op ());
  ignore (sparse_op ());
  ignore (rebuild_op ());
  ignore (update_op ());
  let dense_ns = time_loop ~iters dense_op in
  let sparse_ns = time_loop ~iters sparse_op in
  let rebuild_ns = time_loop ~iters rebuild_op in
  let update_ns = time_loop ~iters update_op in
  {
    sp_n = n;
    sp_nnz = Sparsity.nnz pattern;
    sp_groups = Array.length (Sparsity.groups pattern);
    sp_dense_ns = dense_ns;
    sp_sparse_ns = sparse_ns;
    sp_speedup = dense_ns /. sparse_ns;
    sp_rebuild_ns = rebuild_ns;
    sp_update_ns = update_ns;
    sp_update_speedup = rebuild_ns /. update_ns;
    sp_identical = build_identical && update_identical;
  }

let sparse_comparison () =
  Printf.printf "%s\nsparse Jacobian: dense vs grouped CSR vs incremental\n%s\n"
    (String.make 72 '=') (String.make 72 '=');
  let rows =
    [
      sparse_comparison_one ~lots:16 ~hops:3 ~iters:30;
      sparse_comparison_one ~lots:32 ~hops:3 ~iters:10;
      sparse_comparison_one ~lots:128 ~hops:3 ~iters:3;
    ]
  in
  Printf.printf "%5s %7s %7s %12s %12s %8s %12s %12s %8s %10s\n" "N" "nnz"
    "groups" "dense ns" "sparse ns" "speedup" "rebuild ns" "update ns"
    "speedup" "identical";
  Printf.printf "%s\n" (String.make 104 '-');
  List.iter
    (fun r ->
      Printf.printf "%5d %7d %7d %12.0f %12.0f %7.1fx %12.0f %12.0f %7.1fx %10s\n"
        r.sp_n r.sp_nnz r.sp_groups r.sp_dense_ns r.sp_sparse_ns r.sp_speedup
        r.sp_rebuild_ns r.sp_update_ns r.sp_update_speedup
        (if r.sp_identical then "yes" else "NO"))
    rows;
  rows

(* Gateway admission: serial adds vs one batched bracket, over an
   add-k / remove-k churn cycle.  The service contract says batch
   verdicts bit-match serial execution, so identity (decisions, the
   committed rates, ρ) is asserted once outside the timing loops and
   the only legitimate win left for the batched row is amortising the
   ρ(DF) stability check over the bracket.  Arrival stamps advance one
   logical second per request, so the backlog never climbs and every
   request is served at the full tier — the rows compare the expensive
   path, not a degraded one. *)
type service_row = {
  sv_name : string;
  sv_k : int;  (* adds per cycle (and bracket size for the batch row) *)
  sv_ns_per_req : float;  (* per request: k adds + k removes per cycle *)
  sv_identical : bool;
}

let service_comparison () =
  let open Ffc_service in
  Printf.printf "%s\ngateway admission: serial vs batched brackets\n%s\n"
    (String.make 72 '=') (String.make 72 '=');
  let n = 32 and k = 8 and iters = 60 in
  let fresh_engine () =
    let net = Topologies.single ~n () in
    let controller =
      Controller.homogeneous ~config:Feedback.individual_fair_share
        ~adjuster:Scenario.standard_adjuster ~n
    in
    Admission.create controller ~net
  in
  let clock = ref 0. in
  let tick () =
    clock := !clock +. 1.;
    Some !clock
  in
  let add engine =
    (Admission.handle engine
       (Protocol.Add { conn = None; time = tick (); size = None }))
      .Admission.line
  in
  let remove engine i =
    ignore
      (Admission.handle engine
         (Protocol.Remove { conn = "conn" ^ string_of_int i; time = tick () }))
  in
  let batch_adds () =
    List.init k (fun _ ->
        { Protocol.conn = None; time = tick (); size = None })
  in
  (* Identity check, once, outside the timing loops: same k adds from
     the same committed state, serially and as one bracket. *)
  let serial_engine = fresh_engine () and batch_engine = fresh_engine () in
  let serial_lines = List.init k (fun _ -> add serial_engine) in
  let batch_lines =
    List.map
      (fun (r : Admission.reply) -> r.Admission.line)
      (Admission.handle_batch batch_engine (batch_adds ()))
  in
  let decision line =
    match Ffc_obs.Jsonf.string_field line ~key:"decision" with
    | Some d -> d
    | None -> "?"
  in
  let members = List.filteri (fun i _ -> i < k) batch_lines in
  let bits = Int64.bits_of_float in
  let identical =
    List.for_all2
      (fun s b -> String.equal (decision s) (decision b))
      serial_lines members
    && Array.for_all2
         (fun a b -> Int64.equal (bits a) (bits b))
         (Admission.rates serial_engine)
         (Admission.rates batch_engine)
    && Int64.equal (bits (Admission.rho serial_engine))
         (bits (Admission.rho batch_engine))
    && Admission.active_count serial_engine
       = Admission.active_count batch_engine
  in
  let per_req seconds = seconds *. 1e9 /. float_of_int (iters * 2 * k) in
  let serial_ns =
    let engine = fresh_engine () in
    let _, s =
      time (fun () ->
          for _ = 1 to iters do
            for _ = 1 to k do
              ignore (add engine)
            done;
            for i = 0 to k - 1 do
              remove engine i
            done
          done)
    in
    per_req s
  in
  let batch_ns =
    let engine = fresh_engine () in
    let _, s =
      time (fun () ->
          for _ = 1 to iters do
            ignore (Admission.handle_batch engine (batch_adds ()));
            for i = 0 to k - 1 do
              remove engine i
            done
          done)
    in
    per_req s
  in
  let rows =
    [
      {
        sv_name = Printf.sprintf "service.churn serial (single:%d, k=%d)" n k;
        sv_k = k;
        sv_ns_per_req = serial_ns;
        sv_identical = identical;
      };
      {
        sv_name = Printf.sprintf "service.churn batch=%d (single:%d)" k n;
        sv_k = k;
        sv_ns_per_req = batch_ns;
        sv_identical = identical;
      };
    ]
  in
  Printf.printf "%-42s %4s %14s %10s\n" "row" "k" "ns/request" "identical";
  Printf.printf "%s\n" (String.make 74 '-');
  List.iter
    (fun r ->
      Printf.printf "%-42s %4d %14.0f %10s\n" r.sv_name r.sv_k r.sv_ns_per_req
        (if r.sv_identical then "yes" else "NO"))
    rows;
  Printf.printf "batch speedup over serial: %.2fx\n" (serial_ns /. batch_ns);
  rows

(* Desim core: the timing-wheel scheduler against the reference binary
   heap, and whole-engine events/sec at growing flow counts.  The
   scheduler rows use the classic hold model — N pending timers spread
   uniformly, then a pop/reschedule churn with exponential gaps of mean
   N ticks, which keeps the population spread at ~1 event per tick
   (re-inserting at mean gap 1 would collapse all timers into a few
   ticks and measure only the ready heap).  Gaps are drawn outside the
   timed loop so the rows compare scheduler cost, not RNG cost.  The
   netsim rows run the E27 topology (disjoint parking lots, Fair Share)
   and also check that heap, wheel, and sharded-parallel runs agree bit
   for bit while being timed. *)
type sched_row = {
  sd_held : int;  (* pending events during the churn *)
  sd_heap_ns : float;  (* per schedule+pop pair *)
  sd_wheel_ns : float;
  sd_sched_speedup : float;
}

let scheduler_churn kind ~held ~ops ~gaps =
  let open Ffc_desim in
  let s = Scheduler.create kind in
  let rng = Rng.create 11 in
  for i = 0 to held - 1 do
    Scheduler.schedule s ~time:(Rng.uniform rng *. float_of_int held) ~handler:i
      ~a:i ~b:0
  done;
  let t0 = Unix.gettimeofday () in
  for i = 0 to ops - 1 do
    ignore (Scheduler.pop s);
    Scheduler.schedule s
      ~time:(Scheduler.popped_time s +. gaps.(i))
      ~handler:0 ~a:0 ~b:0
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int ops

let scheduler_comparison_one ~held =
  let open Ffc_desim in
  let ops = 200_000 in
  let rng = Rng.create 13 in
  let gaps =
    Array.init ops (fun _ ->
        Rng.exponential rng ~rate:(1. /. float_of_int held))
  in
  let heap_ns = scheduler_churn Scheduler.Heap ~held ~ops ~gaps in
  let wheel_ns = scheduler_churn (Scheduler.Wheel { tick = 1.0 }) ~held ~ops ~gaps in
  {
    sd_held = held;
    sd_heap_ns = heap_ns;
    sd_wheel_ns = wheel_ns;
    sd_sched_speedup = heap_ns /. wheel_ns;
  }

type desim_row = {
  ds_flows : int;
  ds_events : int;
  ds_heap_s : float;  (* 1 shard, reference heap *)
  ds_wheel_s : float;  (* 1 shard, timing wheel *)
  ds_par_s : float;  (* sharded over the pool, timing wheel *)
  ds_par_jobs : int;
  ds_events_per_sec : float;  (* wheel, 1 shard *)
  ds_identical : bool;
}

let desim_comparison_one ~flows =
  let open Ffc_desim in
  let hops = 3 in
  let lots = Stdlib.max 1 (flows / (hops + 1)) in
  let net = Topologies.multi_parking_lot ~mu:1. ~latency:0.05 ~lots ~hops () in
  let n = Network.num_connections net in
  let rates =
    Array.init n (fun i ->
        if i mod (hops + 1) = 0 then 0.25
        else 0.21 +. (0.03 *. float_of_int (i mod 3)))
  in
  let horizon = Float.max 20. (2e5 /. float_of_int flows) in
  let run ~scheduler ~shards ~jobs =
    Netsim.run ~net ~rates ~discipline:Netsim.Fs_priority ~seed:7 ~scheduler
      ~shards ~jobs ~horizon ()
  in
  let fingerprint r =
    List.init (Stdlib.min n 64) (fun i ->
        (Netsim.delay_mean r ~conn:i, Netsim.deliveries r ~conn:i))
  in
  let jobs = Stdlib.min 8 (Domain.recommended_domain_count ()) in
  let heap, t_heap = time (fun () -> run ~scheduler:`Heap ~shards:1 ~jobs:1) in
  let wheel, t_wheel = time (fun () -> run ~scheduler:`Wheel ~shards:1 ~jobs:1) in
  let par, t_par = time (fun () -> run ~scheduler:`Wheel ~shards:(4 * jobs) ~jobs) in
  {
    ds_flows = n;
    ds_events = Netsim.events wheel;
    ds_heap_s = t_heap;
    ds_wheel_s = t_wheel;
    ds_par_s = t_par;
    ds_par_jobs = jobs;
    ds_events_per_sec = float_of_int (Netsim.events wheel) /. t_wheel;
    ds_identical =
      fingerprint heap = fingerprint wheel
      && fingerprint wheel = fingerprint par
      && Netsim.events heap = Netsim.events par;
  }

let desim_comparison () =
  Printf.printf "%s\ndesim core: timing wheel vs heap, sharded events/sec\n%s\n"
    (String.make 72 '=') (String.make 72 '=');
  let sched =
    [
      scheduler_comparison_one ~held:1_000;
      scheduler_comparison_one ~held:10_000;
      scheduler_comparison_one ~held:100_000;
    ]
  in
  Printf.printf "%10s %12s %12s %8s\n" "held" "heap ns/ev" "wheel ns/ev" "speedup";
  Printf.printf "%s\n" (String.make 46 '-');
  List.iter
    (fun r ->
      Printf.printf "%10d %12.1f %12.1f %7.1fx\n" r.sd_held r.sd_heap_ns
        r.sd_wheel_ns r.sd_sched_speedup)
    sched;
  let rows =
    [
      desim_comparison_one ~flows:1_000;
      desim_comparison_one ~flows:10_000;
      desim_comparison_one ~flows:100_000;
    ]
  in
  Printf.printf "\n%8s %9s %9s %9s %9s %6s %12s %10s\n" "flows" "events"
    "heap s" "wheel s" "par s" "jobs" "events/s" "identical";
  Printf.printf "%s\n" (String.make 80 '-');
  List.iter
    (fun r ->
      Printf.printf "%8d %9d %9.3f %9.3f %9.3f %6d %12.0f %10s\n" r.ds_flows
        r.ds_events r.ds_heap_s r.ds_wheel_s r.ds_par_s r.ds_par_jobs
        r.ds_events_per_sec
        (if r.ds_identical then "yes" else "NO"))
    rows;
  (sched, rows)

(* Machine-readable dump alongside the human tables, for tracking the
   perf trajectory across commits. *)
let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let write_bench_json ~kernels ~scans ~faults ~obs ~cache ~sparse ~service ~desim
    ~run_all =
  let oc = open_out "BENCH.json" in
  let out fmt = Printf.fprintf oc fmt in
  (* [cpus_available] is the hardware's recommended domain count;
     [jobs_effective] is what the pool actually fans out to after its
     physical-core clamp.  A speedup near 1.0 with jobs_effective = 1 is
     expected, not a regression. *)
  out "{\n  \"cpus_available\": %d,\n  \"jobs_effective\": %d,\n"
    (Domain.recommended_domain_count ())
    (Stdlib.min (Pool.default_jobs ()) (Domain.recommended_domain_count ()));
  out "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"name\": %S, \"ns_per_run\": %s, \"minor_words_per_run\": %s, \
         \"major_words_per_run\": %s}%s\n"
        r.kernel (json_float r.ns_per_run)
        (json_float r.minor_words_per_run)
        (json_float r.major_words_per_run)
        (if i < List.length kernels - 1 then "," else ""))
    kernels;
  out "  ],\n  \"scans\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"name\": %S, \"seconds_jobs1\": %s, \"seconds_jobs4\": %s, \
         \"speedup\": %s, \"identical_output\": %b}%s\n"
        r.scan (json_float r.seconds_jobs1) (json_float r.seconds_jobs4)
        (json_float r.scan_speedup) r.identical
        (if i < List.length scans - 1 then "," else ""))
    scans;
  out "  ],\n";
  out
    "  \"faults\": {\"bare_step_ns\": %s, \"empty_injector_ns\": %s, \
     \"overhead_pct\": %s, \"full_plan_ns\": %s, \"rounds\": %d},\n"
    (json_float faults.bare_step_ns)
    (json_float faults.empty_injector_ns)
    (json_float faults.overhead_pct)
    (json_float faults.full_plan_ns)
    faults.fault_rounds;
  out "  \"obs\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"name\": %S, \"bare_ns\": %s, \"null_ctx_ns\": %s, \
         \"overhead_pct\": %s, \"rounds\": %d}%s\n"
        r.obs_kernel (json_float r.obs_bare_ns)
        (json_float r.obs_null_ctx_ns)
        (json_float r.obs_overhead_pct)
        r.obs_rounds
        (if i < List.length obs - 1 then "," else ""))
    obs;
  out "  ],\n";
  out
    "  \"cache\": {\"jobs\": %d, \"seconds_uncached\": %s, \"seconds_cold\": \
     %s, \"seconds_warm\": %s, \"warm_speedup\": %s, \"warm_hit_ratio\": %s, \
     \"cold_lookups\": %d, \"lookup_ns\": %s, \"cold_lookup_overhead_pct\": \
     %s, \"identical_output\": %b},\n"
    cache.cache_jobs
    (json_float cache.cache_uncached_s)
    (json_float cache.cache_cold_s)
    (json_float cache.cache_warm_s)
    (json_float cache.cache_warm_speedup)
    (json_float cache.cache_warm_hit_ratio)
    cache.cache_cold_lookups
    (json_float cache.cache_lookup_ns)
    (json_float cache.cache_cold_overhead_pct)
    cache.cache_identical;
  out "  \"sparse\": [\n";
  List.iteri
    (fun i r ->
      out
        "    {\"n\": %d, \"nnz\": %d, \"groups\": %d, \"dense_ns\": %s, \
         \"sparse_ns\": %s, \"speedup\": %s, \"rebuild_ns\": %s, \
         \"update_ns\": %s, \"update_speedup\": %s, \"identical\": %b}%s\n"
        r.sp_n r.sp_nnz r.sp_groups (json_float r.sp_dense_ns)
        (json_float r.sp_sparse_ns) (json_float r.sp_speedup)
        (json_float r.sp_rebuild_ns) (json_float r.sp_update_ns)
        (json_float r.sp_update_speedup) r.sp_identical
        (if i < List.length sparse - 1 then "," else ""))
    sparse;
  out "  ],\n";
  (* The service rows carry "name" + "ns_per_run" on purpose: that is
     the shape `ffc bench diff` scrapes, so the gateway's serial and
     batched admission paths ride the perf-regression gate alongside
     the bechamel kernels. *)
  out "  \"service\": [\n";
  List.iteri
    (fun i r ->
      out "    {\"name\": %S, \"ns_per_run\": %s, \"k\": %d, \"identical\": %b}%s\n"
        r.sv_name (json_float r.sv_ns_per_req) r.sv_k r.sv_identical
        (if i < List.length service - 1 then "," else ""))
    service;
  out "  ],\n";
  let sched_rows, netsim_rows = desim in
  out "  \"desim\": {\n    \"scheduler\": [\n";
  List.iteri
    (fun i r ->
      out
        "      {\"held_events\": %d, \"heap_ns_per_event\": %s, \
         \"wheel_ns_per_event\": %s, \"speedup\": %s}%s\n"
        r.sd_held (json_float r.sd_heap_ns) (json_float r.sd_wheel_ns)
        (json_float r.sd_sched_speedup)
        (if i < List.length sched_rows - 1 then "," else ""))
    sched_rows;
  out "    ],\n    \"netsim\": [\n";
  List.iteri
    (fun i r ->
      out
        "      {\"flows\": %d, \"events\": %d, \"seconds_heap\": %s, \
         \"seconds_wheel\": %s, \"seconds_sharded\": %s, \"jobs\": %d, \
         \"events_per_sec_wheel\": %s, \"identical_output\": %b}%s\n"
        r.ds_flows r.ds_events (json_float r.ds_heap_s)
        (json_float r.ds_wheel_s) (json_float r.ds_par_s) r.ds_par_jobs
        (json_float r.ds_events_per_sec) r.ds_identical
        (if i < List.length netsim_rows - 1 then "," else ""))
    netsim_rows;
  out "    ]\n  },\n";
  (match run_all with
  | jobs, t_seq, Some (t_par, identical) ->
    out
      "  \"run_all\": {\"jobs\": %d, \"seconds_jobs1\": %s, \"seconds_jobsN\": \
       %s, \"speedup\": %s, \"identical_output\": %b}\n"
      jobs (json_float t_seq) (json_float t_par)
      (json_float (t_seq /. t_par))
      identical
  | _, t_seq, None ->
    out
      "  \"run_all\": {\"jobs\": 1, \"seconds_jobs1\": %s, \"note\": \"single \
       core: sequential-vs-parallel comparison skipped\"}\n"
      (json_float t_seq));
  out "}\n";
  close_out oc

(* Wall-clock comparison of sequential vs parallel [run_all], so the
   multicore speedup (and the byte-identical-output guarantee) is part
   of the tracked perf trajectory. *)
let run_all_comparison () =
  let jobs = Domain.recommended_domain_count () in
  Printf.printf "%s\nrun_all: sequential vs parallel\n%s\n" (String.make 72 '=')
    (String.make 72 '=');
  let seq, t_seq = time (fun () -> Ffc_experiments.Registry.run_all ~jobs:1 ()) in
  Printf.printf "sequential (--jobs 1)   %8.2f s\n" t_seq;
  if jobs <= 1 then begin
    (* One core: the pool clamps every fan-out to the calling domain, so
       a "parallel" rerun would only measure noise and report a fake
       sub-1.0 speedup. *)
    Printf.printf
      "single core: sequential-vs-parallel comparison skipped\n";
    (seq, (jobs, t_seq, None))
  end
  else begin
    let par, t_par = time (fun () -> Ffc_experiments.Registry.run_all ~jobs ()) in
    Printf.printf "parallel   (--jobs %-2d)  %8.2f s   speedup %.2fx\n" jobs t_par
      (t_seq /. t_par);
    let identical = String.equal seq par in
    Printf.printf "outputs byte-identical: %s\n" (if identical then "yes" else "NO");
    (seq, (jobs, t_seq, Some (t_par, identical)))
  end

let () =
  let all, run_all = run_all_comparison () in
  print_string all;
  print_newline ();
  Printf.printf "%s\nparallel scans: jobs=1 vs jobs=4\n%s\n" (String.make 72 '=')
    (String.make 72 '=');
  let scans = run_scans () in
  Printf.printf "%s\nfault-injection hook overhead\n%s\n" (String.make 72 '=')
    (String.make 72 '=');
  let faults = fault_overhead_comparison () in
  Printf.printf "%s\nobservability overhead (null sink)\n%s\n" (String.make 72 '=')
    (String.make 72 '=');
  let obs = obs_overhead_comparison () in
  let cache = cache_comparison () in
  let sparse = sparse_comparison () in
  let service = service_comparison () in
  let desim = desim_comparison () in
  Printf.printf "%s\nmicro-benchmarks (bechamel)\n%s\n" (String.make 72 '=')
    (String.make 72 '=');
  let kernels = run_benchmarks () in
  write_bench_json ~kernels ~scans ~faults ~obs ~cache ~sparse ~service ~desim
    ~run_all;
  print_endline "wrote BENCH.json"
