(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper (experiments
   E1-E13) — the reproduction artifacts themselves.

   Part 2 runs Bechamel micro-benchmarks of the computational kernels so
   that performance regressions in the model code are visible: the Fair
   Share queue recursion, the FIFO baseline, one controller step on a
   parking-lot network, the numeric Jacobian + eigensolve that powers the
   stability analysis, the water-filling construction, and the
   discrete-event simulator's event loop. *)

open Bechamel
open Toolkit
open Ffc_numerics
open Ffc_queueing
open Ffc_topology
open Ffc_core

let fs_rates = Array.init 64 (fun i -> 0.001 *. float_of_int (i + 1))
let fs_mu = Vec.sum fs_rates *. 2.

let bench_fs_queues =
  Test.make ~name:"fair_share.queue_lengths (N=64)"
    (Staged.stage (fun () -> Fair_share.queue_lengths ~mu:fs_mu fs_rates))

let bench_fifo_queues =
  Test.make ~name:"fifo.queue_lengths (N=64)"
    (Staged.stage (fun () -> Fifo.queue_lengths ~mu:fs_mu fs_rates))

let controller_net = Topologies.parking_lot ~hops:4 ()

let controller =
  Controller.homogeneous ~config:Feedback.individual_fair_share
    ~adjuster:Scenario.standard_adjuster
    ~n:(Network.num_connections controller_net)

let controller_rates = Array.make (Network.num_connections controller_net) 0.1

let bench_controller_step =
  Test.make ~name:"controller.step (parking lot, 4 hops)"
    (Staged.stage (fun () ->
         Controller.step controller ~net:controller_net controller_rates))

let jac_net = Topologies.single ~n:12 ()

let jac_controller =
  Controller.homogeneous ~config:Feedback.individual_fair_share
    ~adjuster:Scenario.standard_adjuster ~n:12

let jac_point = Array.make 12 (0.5 /. 12.)

let bench_jacobian =
  Test.make ~name:"jacobian + eigenvalues (N=12)"
    (Staged.stage (fun () ->
         let df = Jacobian.of_controller jac_controller ~net:jac_net ~at:jac_point in
         Eigen.spectral_radius df))

let wf_rng = Rng.create 99
let wf_net = Topologies.random ~rng:wf_rng ~gateways:8 ~connections:24 ~max_path:4 ()

let bench_water_filling =
  Test.make ~name:"steady_state.fair (8 gw, 24 conns)"
    (Staged.stage (fun () ->
         Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:0.5 ~net:wf_net))

let desim_net = Topologies.single ~mu:1. ~n:2 ()

let bench_desim =
  Test.make ~name:"desim 1000 time units (FS, rho=0.6)"
    (Staged.stage (fun () ->
         Ffc_desim.Netsim.run ~net:desim_net ~rates:[| 0.3; 0.3 |]
           ~discipline:Ffc_desim.Netsim.Fs_priority ~seed:3 ~horizon:1000. ()))

let bench_eigen_dense =
  let m =
    Mat.init 24 24 (fun i j ->
        sin (float_of_int ((i * 31) + j)) /. (1. +. float_of_int (abs (i - j))))
  in
  Test.make ~name:"eigenvalues dense 24x24" (Staged.stage (fun () -> Eigen.eigenvalues m))

let window_net = Topologies.parking_lot ~hops:2 ~latency:0.2 ()

let bench_window_fixed_point =
  Test.make ~name:"window fixed point (parking lot)"
    (Staged.stage (fun () ->
         Window.rates_of_windows Feedback.individual_fifo ~net:window_net
           ~windows:[| 0.8; 0.5; 1.2 |]))

let bench_nash =
  let utility = Ffc_game.Utility.linear ~delay_cost:0.01 in
  Test.make ~name:"nash solve (FS, N=3)"
    (Staged.stage (fun () ->
         Ffc_game.Nash.solve Ffc_queueing.Service.fair_share utility ~mu:1. ~n:3
           ~r0:[| 0.1; 0.1; 0.1 |]))

let closed_loop_net = Topologies.single ~mu:1. ~n:2 ()

let bench_closed_loop =
  Test.make ~name:"closed loop, 10 updates x 100 time units"
    (Staged.stage (fun () ->
         Ffc_closedloop.Closed_loop.run ~net:closed_loop_net
           ~discipline:Ffc_closedloop.Closed_loop.Fs_priority
           ~style:Congestion.Individual ~signal:Signal.linear_fractional
           ~adjusters:(Array.make 2 Scenario.standard_adjuster)
           ~r0:[| 0.1; 0.1 |] ~interval:100. ~updates:10 ~seed:5 ()))

let tests =
  Test.make_grouped ~name:"ffc"
    [
      bench_fifo_queues;
      bench_fs_queues;
      bench_controller_step;
      bench_jacobian;
      bench_eigen_dense;
      bench_water_filling;
      bench_desim;
      bench_window_fixed_point;
      bench_nash;
      bench_closed_loop;
    ]

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns_per_run =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | Some [] | None -> Float.nan
      in
      rows := (name, ns_per_run) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) !rows in
  Printf.printf "%-55s %16s\n" "kernel" "ns/run";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter (fun (name, ns) -> Printf.printf "%-55s %16.1f\n" name ns) rows

(* Wall-clock comparison of sequential vs parallel [run_all], so the
   multicore speedup (and the byte-identical-output guarantee) is part
   of the tracked perf trajectory. *)
let run_all_comparison () =
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let jobs = Domain.recommended_domain_count () in
  let seq, t_seq = time (fun () -> Ffc_experiments.Registry.run_all ~jobs:1 ()) in
  let par, t_par = time (fun () -> Ffc_experiments.Registry.run_all ~jobs ()) in
  Printf.printf "%s\nrun_all: sequential vs parallel\n%s\n" (String.make 72 '=')
    (String.make 72 '=');
  Printf.printf "sequential (--jobs 1)   %8.2f s\n" t_seq;
  Printf.printf "parallel   (--jobs %-2d)  %8.2f s   speedup %.2fx\n" jobs t_par
    (t_seq /. t_par);
  Printf.printf "outputs byte-identical: %s\n" (if String.equal seq par then "yes" else "NO");
  seq

let () =
  let all = run_all_comparison () in
  print_string all;
  print_newline ();
  Printf.printf "%s\nmicro-benchmarks (bechamel)\n%s\n" (String.make 72 '=')
    (String.make 72 '=');
  run_benchmarks ()
