(* The gateway game: what happens when sources are simply greedy.

   No flow-control protocol at all — each source picks the rate that
   maximizes its own utility U = log(1+r) - c*W given everyone else's.
   The service discipline decides whether that ends in mutual ruin or in
   something close to the social optimum ([She89], the companion paper
   Fair Share comes from).

     dune exec examples/gateway_game.exe *)

open Ffc_numerics
open Ffc_queueing
open Ffc_game

let () =
  let u = Utility.log_throughput ~delay_cost:0.02 in
  let n = 4 and mu = 1. in
  Printf.printf "four greedy sources, one gateway (mu = %g), U = log(1+r) - 0.02 W\n\n" mu;

  List.iter
    (fun (name, svc) ->
      Printf.printf "--- %s ---\n" name;
      (match Nash.solve svc u ~mu ~n ~r0:(Array.make n 0.1) with
      | Nash.Equilibrium { rates; rounds } ->
        Printf.printf "iterated best response settled in %d rounds:\n" rounds;
        Array.iteri
          (fun i r ->
            Printf.printf "  source %d: rate %-8.4f payoff %.4f%s\n" i r
              (Nash.payoff svc u ~mu ~rates i)
              (if r = 0. then "   <- shut out" else ""))
          rates;
        let opt_r, opt_w = Nash.symmetric_optimum svc u ~mu ~n in
        Printf.printf "welfare %.4f   (symmetric optimum: %.4f at r = %.4f each)\n"
          (Nash.welfare svc u ~mu ~rates) opt_w opt_r
      | Nash.No_convergence _ -> print_endline "did not converge");
      print_newline ())
    [ ("FIFO", Service.fifo); ("Fair Share", Service.fair_share) ];

  Printf.printf
    "Under FIFO, early movers grab the gateway and deter everyone else —\n\
     any positive rate would earn an entrant negative utility.  Under\n\
     Fair Share each source's delay is its own doing, so greed stops\n\
     where it should: everyone active, welfare at the optimum.  This is\n\
     the game-theoretic reason the paper's robustness results need the\n\
     Fair Share discipline.\n";

  (* Bonus: visualize an entrant's payoff landscape against a FIFO
     monopolist vs against an FS incumbent at the same rate. *)
  let incumbent = 0.81 in
  let payoff svc r = Nash.payoff svc u ~mu ~rates:[| incumbent; r |] 1 in
  let xs = Array.init 60 (fun k -> 0.001 +. (0.0025 *. float_of_int k)) in
  let canvas = Ascii_plot.canvas ~width:64 ~height:14 () in
  Ascii_plot.plot_points canvas ~glyph:'f'
    (Array.map (fun r -> (r, payoff Service.fifo r)) xs);
  Ascii_plot.plot_points canvas ~glyph:'s'
    (Array.map (fun r -> (r, payoff Service.fair_share r)) xs);
  print_newline ();
  print_string
    (Ascii_plot.render
       ~title:
         (Printf.sprintf
            "entrant payoff vs own rate (incumbent at %.2f): f = FIFO, s = Fair Share"
            incumbent)
       ~x_label:"entrant rate" ~y_label:"payoff" canvas)
