(* Quickstart: the paper's model in ~40 lines of API use.

   Three connections share one gateway.  We run the same TSI rate
   adjustment algorithm under the three feedback designs the paper
   compares and print what each one converges to.

     dune exec examples/quickstart.exe *)

open Ffc_numerics
open Ffc_topology
open Ffc_core

let () =
  (* A single gateway with unit service rate, three connections. *)
  let net = Topologies.single ~mu:1. ~n:3 () in

  (* Everyone runs f = eta (beta - b): time-scale invariant, steady when
     the bottleneck signal reaches beta = 0.5. *)
  let adjusters = Array.make 3 Scenario.standard_adjuster in

  (* Start from unequal rates to expose (un)fairness. *)
  let r0 = [| 0.05; 0.10; 0.25 |] in
  Printf.printf "initial rates: %s\n\n" (Vec.to_string r0);

  let reports = Analysis.evaluate_all ~manifold_dim:2 ~adjusters ~net r0 in
  List.iter
    (fun report -> Format.printf "%a@.@." Analysis.pp_report report)
    reports;

  (* The theory's prediction for the individual-feedback designs: the
     unique fair steady state from Theorem 2's water-filling. *)
  let fair = Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:0.5 ~net in
  Printf.printf "water-filling fair steady state: %s\n" (Vec.to_string fair);
  Printf.printf
    "\nTakeaway: aggregate feedback converged but kept the initial\n\
     inequality; both individual designs found the fair point.\n"
