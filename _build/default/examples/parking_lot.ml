(* Multi-bottleneck fairness: the "parking lot" topology.

   One long connection crosses every gateway; each gateway also carries a
   local cross connection.  The second gateway is twice as fast, so
   max-min fairness should give its cross connection the slack while the
   long connection is held to its tightest bottleneck.

     dune exec examples/parking_lot.exe *)

open Ffc_numerics
open Ffc_topology
open Ffc_core

let describe net =
  Format.printf "%a@." Network.pp net

let () =
  (* Build the topology from the DSL — the same format `ffc topology`
     emits and accepts. *)
  let net =
    Dsl.parse_exn
      "gateway g0 mu=1.0\n\
       gateway g1 mu=2.0\n\
       connection long   path=g0,g1\n\
       connection cross0 path=g0\n\
       connection cross1 path=g1\n"
  in
  describe net;

  let n = Network.num_connections net in
  let r0 = Array.make n 0.02 in
  let run config =
    let c = Controller.homogeneous ~config ~adjuster:Scenario.standard_adjuster ~n in
    match Controller.run c ~net ~r0 with
    | Controller.Converged { steady; steps } -> (steady, steps)
    | _ -> failwith "did not converge"
  in

  let fifo, fifo_steps = run Feedback.individual_fifo in
  let fs, fs_steps = run Feedback.individual_fair_share in
  let predicted = Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:0.5 ~net in

  Printf.printf "\npredicted (water-filling): %s\n" (Vec.to_string predicted);
  Printf.printf "individual + FIFO        : %s  (%d steps)\n" (Vec.to_string fifo)
    fifo_steps;
  Printf.printf "individual + Fair Share  : %s  (%d steps)\n" (Vec.to_string fs) fs_steps;

  (* Show each connection's allocation as a bar chart. *)
  let labels = [ "long (g0+g1)"; "cross0 (g0)"; "cross1 (g1)" ] in
  print_newline ();
  print_string
    (Ascii_plot.bars ~title:"steady-state allocation (Fair Share)"
       (List.mapi (fun i l -> (l, fs.(i))) labels));
  Printf.printf
    "\nThe long connection and cross0 split the slow gateway (0.25 each);\n\
     cross1 alone soaks up the fast gateway's remaining capacity (0.75).\n\
     Gateway utilizations settle at rho_SS = 1/2, where B(g(rho)) = 0.5.\n"
