(* End-to-end: the paper's control loop over a live packet simulation.

   No analytic shortcuts — Poisson packets flow through simulated
   gateways, and every 300 time units each source reads the congestion
   signal computed from the *measured* queue averages of the last window
   and adjusts its rate.  Compare what the theory predicts (water-filling
   at rho_SS = 1/2) with what the noisy, delayed loop actually does, then
   rerun the heterogeneous matchup.

     dune exec examples/closed_loop_demo.exe *)

open Ffc_numerics
open Ffc_topology
open Ffc_core
open Ffc_closedloop

let () =
  let n = 3 in
  let net = Topologies.single ~mu:1. ~n () in
  let predicted = Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:0.5 ~net in
  Printf.printf "theory: water-filling fair point = %s\n\n" (Vec.to_string predicted);

  let r =
    Closed_loop.run ~net ~discipline:Closed_loop.Fs_priority
      ~style:Congestion.Individual ~signal:Signal.linear_fractional
      ~adjusters:(Array.make n Scenario.standard_adjuster)
      ~r0:(Array.make n 0.02) ~interval:300. ~updates:120 ~seed:7 ()
  in
  let canvas = Ascii_plot.canvas ~width:64 ~height:14 () in
  for i = 0 to n - 1 do
    Ascii_plot.plot_series canvas
      ~glyph:(Char.chr (Char.code 'a' + i))
      (Array.map (fun rates -> rates.(i)) r.Closed_loop.rates)
  done;
  print_string
    (Ascii_plot.render ~title:"rates driven by measured signals (Fair Share gateway)"
       ~x_label:"update" ~y_label:"rate" canvas);
  Printf.printf "\ntail-mean rates: %s\n\n" (Vec.to_string r.Closed_loop.mean_tail_rates);

  (* The heterogeneous matchup, live. *)
  let net2 = Topologies.single ~mu:1. ~n:2 () in
  let baselines =
    Robustness.baselines ~signal:Signal.linear_fractional ~b_ss:[| 0.3; 0.7 |]
      ~net:net2
  in
  Printf.printf "timid (beta 0.3) vs greedy (beta 0.7); baselines %s\n"
    (Vec.to_string baselines);
  List.iter
    (fun (name, discipline, style) ->
      let r =
        Closed_loop.run ~net:net2 ~discipline ~style
          ~signal:Signal.linear_fractional
          ~adjusters:[| Scenario.timid_adjuster; Scenario.greedy_adjuster |]
          ~r0:[| 0.2; 0.2 |] ~interval:300. ~updates:120 ~seed:7 ()
      in
      let tail = r.Closed_loop.mean_tail_rates in
      Printf.printf "  %-22s timid %.4f  greedy %.4f%s\n" name tail.(0) tail.(1)
        (if tail.(0) >= 0.9 *. baselines.(0) then "   <- timid kept its share" else ""))
    [
      ("aggregate", Closed_loop.Fifo, Congestion.Aggregate);
      ("individual+fifo", Closed_loop.Fifo, Congestion.Individual);
      ("individual+fair-share", Closed_loop.Fs_priority, Congestion.Individual);
    ];
  Printf.printf
    "\nThe live loop reproduces the model's verdicts: only the Fair Share\n\
     gateway protects the timid connection.\n"
