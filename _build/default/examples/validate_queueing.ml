(* Packet-level validation of the analytic queue model.

   Runs the discrete-event simulator (Poisson sources, exponential
   servers) against the closed-form Q(r) of Section 2.2 for FIFO and
   Fair Share, then demonstrates the robustness mechanism live: a
   misbehaving source floods the gateway while a slow connection keeps
   its service under FS but not under FIFO.

     dune exec examples/validate_queueing.exe *)

open Ffc_numerics
open Ffc_queueing
open Ffc_topology
open Ffc_desim

let () =
  let mu = 1.5 in
  let rates = [| 0.15; 0.3; 0.45 |] in
  let net = Topologies.single ~mu ~n:(Array.length rates) () in
  let horizon = 40_000. in

  Printf.printf "gateway mu = %g, Poisson rates %s, horizon %g\n\n" mu
    (Vec.to_string rates) horizon;

  let show name discipline analytic =
    let result = Netsim.run ~net ~rates ~discipline ~seed:17 ~horizon () in
    Printf.printf "%s:\n" name;
    Array.iteri
      (fun i _ ->
        Printf.printf "  conn %d: analytic Q = %-8.4f simulated Q = %-8.4f\n" i
          analytic.(i)
          (Netsim.mean_queue result ~gw:0 ~conn:i))
      rates;
    print_newline ()
  in
  show "FIFO" Netsim.Fifo (Fifo.queue_lengths ~mu rates);
  show "Fair Share (thinning + preemptive priority)" Netsim.Fs_priority
    (Fair_share.queue_lengths ~mu rates);

  (* Overload drama: connection 1 floods at twice the capacity. *)
  Printf.printf "--- overload: conn1 floods at 2*mu ---\n\n";
  let flood = [| 0.15; 3.0 |] in
  let net2 = Topologies.single ~mu ~n:2 () in
  List.iter
    (fun (name, discipline) ->
      let result = Netsim.run ~net:net2 ~rates:flood ~discipline ~seed:23
          ~horizon:20_000. () in
      Printf.printf
        "%-12s slow conn: queue = %-10.3f throughput = %.4f (offered %.2f)\n" name
        (Netsim.mean_queue result ~gw:0 ~conn:0)
        (Netsim.throughput result ~conn:0)
        flood.(0))
    [ ("FIFO", Netsim.Fifo); ("Fair Share", Netsim.Fs_priority);
      ("Fair Queueing", Netsim.Fair_queueing) ];
  Printf.printf
    "\nUnder FIFO the flood destroys the slow connection's service; under\n\
     Fair Share (and its packet-level cousin Fair Queueing) the slow\n\
     connection keeps its throughput with a small queue — the isolation\n\
     behind Theorem 5.\n"
