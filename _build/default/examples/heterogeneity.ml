(* Robustness under heterogeneity: the paper's core practical warning.

   A "timid" algorithm (backs off at signal 0.3) shares a gateway with a
   "greedy" one (tolerates 0.7).  We plot the rate trajectories under
   each of the three designs and compare the outcome with the
   reservation-based baseline each connection is entitled to.

     dune exec examples/heterogeneity.exe *)

open Ffc_numerics
open Ffc_topology
open Ffc_core

let () =
  let net = Topologies.single ~mu:1. ~n:2 () in
  let adjusters = [| Scenario.timid_adjuster; Scenario.greedy_adjuster |] in
  let baselines =
    Robustness.baselines ~signal:Signal.linear_fractional ~b_ss:[| 0.3; 0.7 |] ~net
  in
  Printf.printf "reservation baselines (timid, greedy): %s\n\n"
    (Vec.to_string baselines);

  List.iter
    (fun design ->
      let c = Controller.create ~config:design.Analysis.config ~adjusters in
      let traj = Controller.trajectory c ~net ~r0:[| 0.2; 0.2 |] ~steps:300 in
      let final = traj.(300) in
      let canvas = Ascii_plot.canvas ~width:64 ~height:12 () in
      Ascii_plot.plot_series canvas ~glyph:'t'
        (Array.map (fun s -> s.(0)) traj);
      Ascii_plot.plot_series canvas ~glyph:'g'
        (Array.map (fun s -> s.(1)) traj);
      print_string
        (Ascii_plot.render
           ~title:(design.Analysis.label ^ "   (t = timid, g = greedy)")
           ~x_label:"step" canvas);
      Printf.printf "final: %s   robust: %b\n\n" (Vec.to_string final)
        (Robustness.is_robust_outcome ~baselines final))
    Analysis.designs;

  Printf.printf
    "Aggregate feedback shuts the timid connection down entirely;\n\
     individual+FIFO leaves it some throughput but below its entitlement;\n\
     individual+Fair Share delivers at least the reservation baseline to\n\
     both — Theorem 5 in action.\n"
