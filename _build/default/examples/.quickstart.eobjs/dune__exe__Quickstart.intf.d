examples/quickstart.mli:
