examples/window_dynamics.mli:
