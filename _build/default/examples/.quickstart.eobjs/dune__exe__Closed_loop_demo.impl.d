examples/closed_loop_demo.ml: Array Ascii_plot Char Closed_loop Congestion Ffc_closedloop Ffc_core Ffc_numerics Ffc_topology List Printf Robustness Scenario Signal Steady_state Topologies Vec
