examples/window_dynamics.ml: Array Dsl Feedback Ffc_core Ffc_numerics Ffc_topology List Printf Vec Window
