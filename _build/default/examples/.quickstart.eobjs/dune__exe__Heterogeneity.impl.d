examples/heterogeneity.ml: Analysis Array Ascii_plot Controller Ffc_core Ffc_numerics Ffc_topology List Printf Robustness Scenario Signal Topologies Vec
