examples/heterogeneity.mli:
