examples/parking_lot.mli:
