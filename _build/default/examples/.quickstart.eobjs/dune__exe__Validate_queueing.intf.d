examples/validate_queueing.mli:
