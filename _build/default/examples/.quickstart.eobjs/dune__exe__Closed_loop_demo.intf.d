examples/closed_loop_demo.mli:
