examples/quickstart.ml: Analysis Array Ffc_core Ffc_numerics Ffc_topology Format List Printf Scenario Signal Steady_state Topologies Vec
