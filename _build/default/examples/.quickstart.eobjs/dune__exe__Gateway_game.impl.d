examples/gateway_game.ml: Array Ascii_plot Ffc_game Ffc_numerics Ffc_queueing List Nash Printf Service Utility
