examples/chaos_explorer.ml: Ascii_plot Dynamics E06_chaos Ffc_experiments Ffc_numerics List Printf
