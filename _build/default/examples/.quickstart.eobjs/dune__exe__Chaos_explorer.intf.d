examples/chaos_explorer.mli:
