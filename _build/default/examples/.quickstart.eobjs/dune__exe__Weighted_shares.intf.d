examples/weighted_shares.mli:
