examples/gateway_game.mli:
