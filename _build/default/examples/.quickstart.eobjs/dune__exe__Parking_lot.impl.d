examples/parking_lot.ml: Array Ascii_plot Controller Dsl Feedback Ffc_core Ffc_numerics Ffc_topology Format List Network Printf Scenario Signal Steady_state Vec
