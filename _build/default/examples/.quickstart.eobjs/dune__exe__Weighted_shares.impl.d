examples/weighted_shares.ml: Array Ascii_plot Congestion Controller Feedback Ffc_core Ffc_numerics Ffc_queueing Ffc_topology List Printf Scenario Signal Topologies Vec Weighted_fair_share
