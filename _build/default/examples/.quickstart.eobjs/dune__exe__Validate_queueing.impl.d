examples/validate_queueing.ml: Array Fair_share Ffc_desim Ffc_numerics Ffc_queueing Ffc_topology Fifo List Netsim Printf Topologies Vec
