(* The route to chaos of an unstable aggregate controller.

   With B = (C/(1+C))^2, the symmetric single-gateway iteration reduces
   to the scalar recursion r' = r + eta (beta - (N r)^2).  This explorer
   classifies the orbit at each N, prints orbit traces around the
   transitions, and draws the bifurcation diagram.

     dune exec examples/chaos_explorer.exe *)

open Ffc_numerics
open Ffc_experiments

let () =
  let eta = 0.1 and beta = 0.5 in
  Printf.printf "map: r' = max(0, r + %.2g*(%.2g - (N*r)^2))\n\n" eta beta;

  (* Orbit classification across N — both the paper's literal recursion
     and the truncated model map. *)
  List.iter
    (fun row ->
      Printf.printf "N = %-3d  paper: %-16s  clamped model: %s\n" row.E06_chaos.n
        row.E06_chaos.untruncated row.E06_chaos.truncated)
    (E06_chaos.compute ~eta ~beta ());

  (* Show an actual chaotic trace at N = 21 (paper recursion). *)
  let n = 21 in
  let g = E06_chaos.scalar_map ~truncate:false ~eta ~beta ~n in
  let orbit = Dynamics.orbit_tail g ~x0:(0.9 *. sqrt beta /. float_of_int n)
      ~transient:500 ~keep:120 in
  print_newline ();
  print_string
    (Ascii_plot.series ~width:70 ~height:14
       ~title:(Printf.sprintf "chaotic rate trace at N = %d (paper recursion)" n)
       ~x_label:"step" ~y_label:"r" orbit);
  Printf.printf "\nLyapunov exponent at N = %d: %.3f (positive = chaos)\n\n" n
    (Dynamics.lyapunov g ~x0:0.02 ~n:3000);

  print_string (E06_chaos.bifurcation_diagram ~eta ~beta ())
