(* Weighted Fair Share: bandwidth differentiation from the same theory.

   Generalize the FS priority decomposition with per-connection weights
   (greediness measured as r/w, levels split weight-proportionally) and
   pair it with the weighted individual congestion measure: the same TSI
   controller now converges to rates proportional to the weights, while
   conservation, overload isolation and the robustness bound all carry
   over.

     dune exec examples/weighted_shares.exe *)

open Ffc_numerics
open Ffc_queueing
open Ffc_topology
open Ffc_core

let () =
  let weights = [| 1.; 2.; 4. |] in
  let n = Array.length weights in
  let net = Topologies.single ~mu:1. ~n () in
  let config =
    Feedback.make ~weights ~style:Congestion.Individual
      ~signal:Signal.linear_fractional
      ~discipline:(Weighted_fair_share.service ~weights) ()
  in
  let c = Controller.homogeneous ~config ~adjuster:Scenario.standard_adjuster ~n in
  Printf.printf "weights: %s\n" (Vec.to_string weights);
  (match Controller.run c ~net ~r0:[| 0.02; 0.05; 0.08 |] with
  | Controller.Converged { steady; steps } ->
    Printf.printf "converged in %d steps: %s\n\n" steps (Vec.to_string steady);
    print_string
      (Ascii_plot.bars ~title:"steady allocation (target 1:2:4)"
         (List.init n (fun i -> (Printf.sprintf "w=%g" weights.(i), steady.(i)))))
  | _ -> print_endline "did not converge");

  (* The weighted isolation property, analytically: a heavy-weight
     connection keeps a finite queue while a light-weight flooder
     saturates. *)
  let rates = [| 0.4; 3.0 |] and w2 = [| 4.; 1. |] in
  let q = Weighted_fair_share.queue_lengths ~mu:1. ~weights:w2 rates in
  Printf.printf
    "\nisolation under flooding (weights %s, rates %s):\n  queues = %s\n"
    (Vec.to_string w2) (Vec.to_string rates) (Vec.to_string q);
  Printf.printf
    "\nThe weight-4 connection keeps its small finite queue while the\n\
     weight-1 flooder saturates — Theorem 5's protection, now in\n\
     weight-proportional form.\n"
