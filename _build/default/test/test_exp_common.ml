open Ffc_experiments
open Test_util

let contains s sub =
  let n = String.length sub in
  let found = ref false in
  for i = 0 to String.length s - n do
    if String.sub s i n = sub then found := true
  done;
  !found

let test_table_alignment () =
  let t =
    Exp_common.table ~header:[ "a"; "long-header" ]
      ~rows:[ [ "xxxx"; "y" ]; [ "z"; "wwwww" ] ]
  in
  let lines = String.split_on_char '\n' t |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* All lines equal length (fixed-width columns). *)
  let widths = List.map String.length lines in
  List.iter (fun w -> Alcotest.(check int) "uniform width" (List.hd widths) w) widths;
  check_true "rule present" (contains t "----")

let test_table_ragged_rows () =
  (* Missing cells render as blanks, no exception. *)
  let t = Exp_common.table ~header:[ "a"; "b"; "c" ] ~rows:[ [ "1" ]; [ "1"; "2"; "3" ] ] in
  check_true "renders" (String.length t > 0)

let test_fnum () =
  Alcotest.(check string) "zero" "0" (Exp_common.fnum 0.);
  Alcotest.(check string) "inf" "inf" (Exp_common.fnum Float.infinity);
  Alcotest.(check string) "-inf" "-inf" (Exp_common.fnum Float.neg_infinity);
  Alcotest.(check string) "nan" "nan" (Exp_common.fnum Float.nan);
  Alcotest.(check string) "plain" "0.25" (Exp_common.fnum 0.25);
  check_true "tiny uses scientific" (contains (Exp_common.fnum 1e-7) "e");
  check_true "huge uses scientific" (contains (Exp_common.fnum 1e9) "e")

let test_fbool () =
  Alcotest.(check string) "yes" "yes" (Exp_common.fbool true);
  Alcotest.(check string) "no" "no" (Exp_common.fbool false)

let test_section () =
  let s = Exp_common.section "Title" in
  check_true "underlined" (contains s "~~~~~")

let test_render_header () =
  let e =
    { Exp_common.id = "EX"; title = "demo"; paper_ref = "here"; run = (fun () -> "body") }
  in
  let s = Exp_common.render e in
  check_true "id" (contains s "EX");
  check_true "title" (contains s "demo");
  check_true "paper ref" (contains s "here");
  check_true "body" (contains s "body")

let suites =
  [
    ( "experiments.common",
      [
        case "table alignment" test_table_alignment;
        case "table ragged rows" test_table_ragged_rows;
        case "numeric formatting" test_fnum;
        case "boolean formatting" test_fbool;
        case "section headers" test_section;
        case "render header block" test_render_header;
      ] );
  ]
