open Ffc_numerics
open Test_util

(* Logistic map x' = a x (1 - x): the canonical period-doubling family the
   paper's chaos example follows (Collet-Eckmann). *)
let logistic a x = a *. x *. (1. -. x)

let test_iterate () =
  let xs = Dynamics.iterate (fun x -> 2. *. x) ~x0:1. ~n:4 in
  check_vec "doubling orbit" [| 2.; 4.; 8.; 16. |] xs

let test_orbit_tail () =
  let xs = Dynamics.orbit_tail (fun x -> x /. 2.) ~x0:1024. ~transient:10 ~keep:2 in
  check_vec "tail after transient" [| 0.5; 0.25 |] xs

let test_fixed_point_logistic () =
  match Dynamics.classify (logistic 2.8) ~x0:0.3 with
  | Dynamics.Fixed_point x -> check_float ~tol:1e-5 "fp of logistic 2.8" (1. -. (1. /. 2.8)) x
  | _ -> Alcotest.fail "logistic a=2.8 has an attracting fixed point"

let test_period2_logistic () =
  match Dynamics.classify (logistic 3.2) ~x0:0.3 with
  | Dynamics.Cycle c ->
    Alcotest.(check int) "period 2" 2 (Array.length c);
    (* The two cycle points satisfy f(x) = y, f(y) = x. *)
    check_float ~tol:1e-5 "cycle consistency" c.(1) (logistic 3.2 c.(0));
    check_float ~tol:1e-5 "cycle closes" c.(0) (logistic 3.2 c.(1))
  | _ -> Alcotest.fail "logistic a=3.2 has a 2-cycle"

let test_period4_logistic () =
  match Dynamics.classify (logistic 3.5) ~x0:0.3 with
  | Dynamics.Cycle c -> Alcotest.(check int) "period 4" 4 (Array.length c)
  | _ -> Alcotest.fail "logistic a=3.5 has a 4-cycle"

let test_chaos_logistic () =
  match Dynamics.classify (logistic 4.) ~x0:0.3 with
  | Dynamics.Chaotic le ->
    (* The logistic map at a=4 has Lyapunov exponent log 2. *)
    check_float ~tol:0.1 "lyapunov ~ log 2" (log 2.) le
  | c ->
    Alcotest.failf "logistic a=4 should be chaotic, got %s"
      (match c with
      | Dynamics.Fixed_point _ -> "fixed point"
      | Dynamics.Cycle _ -> "cycle"
      | Dynamics.Aperiodic _ -> "aperiodic"
      | Dynamics.Divergent -> "divergent"
      | Dynamics.Chaotic _ -> "chaotic")

let test_divergent () =
  check_true "escaping orbit detected"
    (Dynamics.classify (fun x -> (2. *. x) +. 1.) ~x0:1. = Dynamics.Divergent)

let test_divergent_nan () =
  check_true "nan orbit is divergent"
    (Dynamics.classify (fun x -> sqrt (x -. 1e9)) ~x0:0. = Dynamics.Divergent)

let test_lyapunov_signs () =
  check_true "contracting map has negative exponent"
    (Dynamics.lyapunov (fun x -> 0.5 *. x) ~x0:1. ~n:200 < 0.);
  check_true "chaotic map has positive exponent"
    (Dynamics.lyapunov (logistic 4.) ~x0:0.3 ~n:2000 > 0.)

let test_bifurcation_scan () =
  let scan =
    Dynamics.bifurcation_scan logistic ~params:[| 2.8; 3.2 |] ~x0:0.3 ~keep:64
  in
  Alcotest.(check int) "two parameter values" 2 (Array.length scan);
  let _, fixed_samples = scan.(0) and _, cycle_samples = scan.(1) in
  (* At a=2.8 all samples agree; at a=3.2 they alternate between two values. *)
  let spread xs = Vec.max xs -. Vec.min xs in
  check_true "fixed point samples tight" (spread fixed_samples < 1e-4);
  check_true "2-cycle samples spread" (spread cycle_samples > 0.1)

let prop_logistic_classification_total =
  prop "classification always terminates in a defined state" ~count:50
    QCheck2.Gen.(float_range 2.5 4.0)
    (fun a ->
      match Dynamics.classify (logistic a) ~x0:0.31 with
      | Dynamics.Fixed_point x -> x >= 0. && x <= 1.
      | Dynamics.Cycle c -> Array.length c >= 2
      | Dynamics.Chaotic _ | Dynamics.Aperiodic _ -> true
      | Dynamics.Divergent -> false (* logistic on [0,1] never escapes *))

let suites =
  [
    ( "numerics.dynamics",
      [
        case "iterate" test_iterate;
        case "orbit tail" test_orbit_tail;
        case "logistic fixed point" test_fixed_point_logistic;
        case "logistic period 2" test_period2_logistic;
        case "logistic period 4" test_period4_logistic;
        case "logistic chaos" test_chaos_logistic;
        case "divergence" test_divergent;
        case "nan divergence" test_divergent_nan;
        case "lyapunov signs" test_lyapunov_signs;
        case "bifurcation scan" test_bifurcation_scan;
        prop_logistic_classification_total;
      ] );
  ]
