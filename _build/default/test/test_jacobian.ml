open Ffc_numerics
open Ffc_topology
open Ffc_core
open Test_util

let test_numeric_linear_map () =
  (* Jacobian of an affine map recovers its matrix exactly. *)
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let f x = Mat.mul_vec a x in
  let j = Jacobian.numeric f ~at:[| 0.3; 0.7 |] in
  check_true "exact for linear maps" (Mat.approx_equal ~tol:1e-6 j a)

let test_numeric_nonlinear () =
  (* f(x,y) = (x^2, x*y): J = [[2x, 0], [y, x]]. *)
  let f v = [| v.(0) ** 2.; v.(0) *. v.(1) |] in
  let j = Jacobian.numeric f ~at:[| 2.; 3. |] in
  check_float ~tol:1e-5 "d(x^2)/dx" 4. (Mat.get j 0 0);
  check_float ~tol:1e-5 "d(x^2)/dy" 0. (Mat.get j 0 1);
  check_float ~tol:1e-5 "d(xy)/dx" 3. (Mat.get j 1 0);
  check_float ~tol:1e-5 "d(xy)/dy" 2. (Mat.get j 1 1)

let test_modes_agree_on_smooth_map () =
  let f v = [| sin v.(0); cos v.(1) |] in
  let at = [| 0.4; 0.9 |] in
  let c = Jacobian.numeric ~mode:Jacobian.Central f ~at in
  let fwd = Jacobian.numeric ~mode:Jacobian.Forward f ~at in
  let bwd = Jacobian.numeric ~mode:Jacobian.Backward f ~at in
  check_true "central ~ forward" (Mat.approx_equal ~tol:1e-5 c fwd);
  check_true "central ~ backward" (Mat.approx_equal ~tol:1e-5 c bwd)

let test_aggregate_df_matches_paper () =
  (* Section 3.3: at a single gateway with B = C/(1+C) and f = eta(beta-b),
     DF_ij = delta_ij - eta exactly. *)
  let n = 4 and eta = 0.1 in
  let net = Topologies.single ~n () in
  let c =
    Controller.homogeneous ~config:Feedback.aggregate_fifo
      ~adjuster:(Rate_adjust.additive ~eta ~beta:0.5)
      ~n
  in
  let fair = Array.make n (0.5 /. float_of_int n) in
  let df = Jacobian.of_controller c ~net ~at:fair in
  let expected = Mat.init n n (fun i j -> (if i = j then 1. else 0.) -. eta) in
  check_true "DF = I - eta * ones" (Mat.approx_equal ~tol:1e-5 df expected)

let test_aggregate_eigenvalue_formula () =
  (* Leading eigenvalue 1 - eta*N (plus N-1 unit eigenvalues along the
     steady-state manifold). *)
  let n = 6 and eta = 0.3 in
  let net = Topologies.single ~n () in
  let c =
    Controller.homogeneous ~config:Feedback.aggregate_fifo
      ~adjuster:(Rate_adjust.additive ~eta ~beta:0.5)
      ~n
  in
  let fair = Array.make n (0.5 /. float_of_int n) in
  let df = Jacobian.of_controller c ~net ~at:fair in
  let ev = Eigen.eigenvalues_sorted df in
  let smallest = Array.fold_left (fun acc z -> Float.min acc z.Complex.re) 1. ev in
  check_float ~tol:1e-4 "leading eigenvalue 1 - eta N"
    (1. -. (eta *. float_of_int n))
    smallest

let test_unilateral_vs_systemic_gap () =
  (* eta = 0.1, N = 30: |DF_ii| = 0.9 < 1 (unilaterally stable) yet the
     eigenvalue 1 - 3 = -2 breaks systemic stability — the paper's
     counterexample. *)
  let n = 30 and eta = 0.1 in
  let net = Topologies.single ~n () in
  let c =
    Controller.homogeneous ~config:Feedback.aggregate_fifo
      ~adjuster:(Rate_adjust.additive ~eta ~beta:0.5)
      ~n
  in
  let fair = Array.make n (0.5 /. float_of_int n) in
  let df = Jacobian.of_controller c ~net ~at:fair in
  check_true "unilaterally stable" (Jacobian.unilaterally_stable df);
  check_false "systemically unstable"
    (Jacobian.systemically_stable ~ignore_unit:(n - 1) df);
  check_float ~tol:1e-3 "spectral radius = |1 - eta N|" 2. (Jacobian.spectral_radius df)

let heterogeneous_fs_controller () =
  (* Individual + FS with distinct betas gives a steady state with
     distinct rates — the clean setting for Theorem 4's triangularity. *)
  let net = Topologies.single ~n:2 () in
  let c =
    Controller.create ~config:Feedback.individual_fair_share
      ~adjusters:[| Scenario.timid_adjuster; Scenario.greedy_adjuster |]
  in
  (net, c)

let test_fs_triangular_df () =
  let net, c = heterogeneous_fs_controller () in
  match Controller.run c ~net ~r0:[| 0.1; 0.1 |] with
  | Controller.Converged { steady; _ } ->
    (* Steady state from Section 3: r = (0.15, 0.55). *)
    check_vec ~tol:1e-5 "steady rates" [| 0.15; 0.55 |] steady;
    let df = Jacobian.of_controller ~mode:Jacobian.Forward c ~net ~at:steady in
    check_true "DF triangular in rate order"
      (Jacobian.triangular_in_rate_order ~tol:1e-4 df ~rates:steady);
    check_true "unilateral implies systemic here"
      (Jacobian.unilaterally_stable df = Jacobian.systemically_stable df)
  | _ -> Alcotest.fail "heterogeneous FS system should converge"

let test_fifo_df_not_triangular () =
  (* The same heterogeneous setting under FIFO couples all connections:
     DF has no triangular structure. *)
  let net = Topologies.single ~n:2 () in
  let c =
    Controller.create ~config:Feedback.individual_fifo
      ~adjusters:[| Scenario.timid_adjuster; Scenario.greedy_adjuster |]
  in
  match Controller.run c ~net ~r0:[| 0.1; 0.1 |] with
  | Controller.Converged { steady; _ } ->
    let df = Jacobian.of_controller ~mode:Jacobian.Forward c ~net ~at:steady in
    check_false "FIFO DF is full"
      (Jacobian.triangular_in_rate_order ~tol:1e-4 df ~rates:steady)
  | _ -> Alcotest.fail "heterogeneous FIFO system should converge"

let test_diagonal_accessor () =
  let m = Mat.of_arrays [| [| 0.5; 9. |]; [| 9.; -0.25 |] |] in
  check_vec "diagonal" [| 0.5; -0.25 |] (Jacobian.diagonal m);
  check_true "unilateral on diagonal only" (Jacobian.unilaterally_stable m)

let suites =
  [
    ( "core.jacobian",
      [
        case "linear map exact" test_numeric_linear_map;
        case "nonlinear map" test_numeric_nonlinear;
        case "modes agree when smooth" test_modes_agree_on_smooth_map;
        case "aggregate DF = I - eta*ones (paper)" test_aggregate_df_matches_paper;
        case "eigenvalue 1 - eta*N (paper)" test_aggregate_eigenvalue_formula;
        case "unilateral/systemic gap (paper)" test_unilateral_vs_systemic_gap;
        case "Theorem 4: FS triangular DF" test_fs_triangular_df;
        case "FIFO DF not triangular" test_fifo_df_not_triangular;
        case "diagonal accessor" test_diagonal_accessor;
      ] );
  ]
