open Ffc_queueing
open Ffc_game
open Test_util

let linear = Utility.linear ~delay_cost:0.01

(* ------------------------------------------------------------------ *)
(* Utility                                                             *)
(* ------------------------------------------------------------------ *)

let test_utility_values () =
  check_float ~tol:1e-12 "linear" 0.95 (Utility.eval linear ~rate:1. ~delay:5.);
  check_float "silence normalized to 0" 0. (Utility.eval linear ~rate:0. ~delay:3.);
  check_true "infinite delay worthless"
    (Utility.eval linear ~rate:1. ~delay:Float.infinity = Float.neg_infinity);
  let lg = Utility.log_throughput ~delay_cost:0.5 in
  check_float ~tol:1e-12 "log utility" (log 2. -. 0.5) (Utility.eval lg ~rate:1. ~delay:1.)

let test_utility_validation () =
  Alcotest.check_raises "negative rate" (Invalid_argument "Utility.eval: negative rate")
    (fun () -> ignore (Utility.eval linear ~rate:(-1.) ~delay:1.));
  check_true "delay_cost validated"
    (try
       ignore (Utility.linear ~delay_cost:0.);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Payoffs and best responses                                          *)
(* ------------------------------------------------------------------ *)

let test_payoff_matches_formula () =
  (* Single connection under FIFO: W = 1/(mu - r). *)
  let rates = [| 0.5 |] in
  let expected = 0.5 -. (0.01 /. 0.5) in
  check_float ~tol:1e-12 "payoff" expected
    (Nash.payoff Service.fifo linear ~mu:1. ~rates 0)

let test_payoff_overload_is_ruin () =
  check_true "overload pays -inf"
    (Nash.payoff Service.fifo linear ~mu:1. ~rates:[| 1.5 |] 0 = Float.neg_infinity)

let test_best_response_single_fifo () =
  (* Alone on a FIFO gateway: maximize r - c/(mu - r): r* = mu - sqrt c. *)
  let br = Nash.best_response Service.fifo linear ~mu:1. ~rates:[| 0.3 |] 0 in
  check_float ~tol:1e-4 "monopolist best response" 0.9 br

let test_best_response_deterred_entrant () =
  (* Against a monopolist at 0.9 the entrant's best response is to stay
     out entirely. *)
  let br = Nash.best_response Service.fifo linear ~mu:1. ~rates:[| 0.9; 0.1 |] 1 in
  check_float "entry deterred" 0. br

let test_symmetric_fifo_equilibrium_formula () =
  (* The symmetric FIFO profile r = (mu - sqrt c)/N is a Nash equilibrium. *)
  let n = 4 in
  let r = (1. -. sqrt 0.01) /. float_of_int n in
  check_true "closed-form symmetric equilibrium"
    (Nash.is_equilibrium ~tol:1e-5 Service.fifo linear ~mu:1.
       ~rates:(Array.make n r))

let test_fs_nash_is_social_optimum () =
  (* N = 4, linear utility: FS equilibrium = symmetric optimum exactly. *)
  match Nash.solve Service.fair_share linear ~mu:1. ~n:4 ~r0:(Array.make 4 0.1) with
  | Nash.Equilibrium { rates; _ } ->
    let opt_r, opt_w = Nash.symmetric_optimum Service.fair_share linear ~mu:1. ~n:4 in
    Array.iter (fun r -> check_float ~tol:1e-3 "rate = optimum rate" opt_r r) rates;
    check_float ~tol:1e-4 "welfare = optimum welfare" opt_w
      (Nash.welfare Service.fair_share linear ~mu:1. ~rates)
  | Nash.No_convergence _ -> Alcotest.fail "FS game should converge"

let test_fs_nash_start_independent () =
  let solve r0 =
    match Nash.solve Service.fair_share linear ~mu:1. ~n:3 ~r0 with
    | Nash.Equilibrium { rates; _ } -> rates
    | Nash.No_convergence _ -> Alcotest.fail "FS game should converge"
  in
  let a = solve (Array.make 3 0.05) in
  let b = solve [| 0.3; 0.01; 0.15 |] in
  check_vec ~tol:1e-3 "same equilibrium from different starts" a b

let test_fifo_excludes_under_log_utility () =
  let lg = Utility.log_throughput ~delay_cost:0.02 in
  match Nash.solve Service.fifo lg ~mu:1. ~n:4 ~r0:(Array.make 4 0.1) with
  | Nash.Equilibrium { rates; _ } ->
    let excluded = Array.fold_left (fun acc r -> if r = 0. then acc + 1 else acc) 0 rates in
    check_true "FIFO excludes sources" (excluded >= 1);
    check_true "it is a genuine equilibrium"
      (Nash.is_equilibrium Service.fifo lg ~mu:1. ~rates)
  | Nash.No_convergence _ -> Alcotest.fail "FIFO game should converge"

let test_fs_never_excludes_under_log_utility () =
  let lg = Utility.log_throughput ~delay_cost:0.02 in
  match Nash.solve Service.fair_share lg ~mu:1. ~n:4 ~r0:(Array.make 4 0.1) with
  | Nash.Equilibrium { rates; _ } ->
    Array.iter (fun r -> check_true "everyone active" (r > 0.05)) rates
  | Nash.No_convergence _ -> Alcotest.fail "FS game should converge"

let test_welfare_additivity () =
  let rates = [| 0.2; 0.3 |] in
  let w = Nash.welfare Service.fifo linear ~mu:1. ~rates in
  let sum =
    Nash.payoff Service.fifo linear ~mu:1. ~rates 0
    +. Nash.payoff Service.fifo linear ~mu:1. ~rates 1
  in
  check_float ~tol:1e-12 "welfare sums payoffs" sum w

let test_symmetric_optimum_formula () =
  (* FIFO symmetric welfare N(r - c/(mu - N r)) peaks at R = mu - sqrt(N c):
     check against the closed form. *)
  let n = 4 in
  let r_star, _ = Nash.symmetric_optimum Service.fifo linear ~mu:1. ~n in
  check_float ~tol:1e-3 "optimum matches closed form"
    ((1. -. sqrt (float_of_int n *. 0.01)) /. float_of_int n)
    r_star

let prop_equilibria_verified =
  prop "solved equilibria pass the deviation test" ~count:15
    QCheck2.Gen.(pair (int_range 2 5) (float_range 0.005 0.05))
    (fun (n, c) ->
      let u = Utility.linear ~delay_cost:c in
      List.for_all
        (fun svc ->
          match Nash.solve svc u ~mu:1. ~n ~r0:(Array.make n 0.1) with
          | Nash.Equilibrium { rates; _ } ->
            Nash.is_equilibrium ~tol:1e-4 svc u ~mu:1. ~rates
          | Nash.No_convergence _ -> false)
        [ Service.fifo; Service.fair_share ])

let suites =
  [
    ( "game",
      [
        case "utility values" test_utility_values;
        case "utility validation" test_utility_validation;
        case "payoff formula" test_payoff_matches_formula;
        case "overload ruins payoff" test_payoff_overload_is_ruin;
        case "monopolist best response" test_best_response_single_fifo;
        case "entry deterrence" test_best_response_deterred_entrant;
        case "symmetric FIFO equilibrium (closed form)" test_symmetric_fifo_equilibrium_formula;
        case "FS Nash = social optimum" test_fs_nash_is_social_optimum;
        case "FS Nash start-independent" test_fs_nash_start_independent;
        case "FIFO excludes (log utility)" test_fifo_excludes_under_log_utility;
        case "FS excludes nobody (log utility)" test_fs_never_excludes_under_log_utility;
        case "welfare additivity" test_welfare_additivity;
        case "symmetric optimum closed form" test_symmetric_optimum_formula;
        prop_equilibria_verified;
      ] );
  ]
