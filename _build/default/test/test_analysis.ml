open Ffc_topology
open Ffc_core
open Test_util

let find_report label reports =
  match List.find_opt (fun r -> r.Analysis.design = label) reports with
  | Some r -> r
  | None -> Alcotest.failf "missing design %s" label

let test_designs_cover_matrix () =
  let labels = List.map (fun d -> d.Analysis.label) Analysis.designs in
  Alcotest.(check (list string)) "three designs"
    [ "aggregate"; "individual+fifo"; "individual+fair-share" ]
    labels

let test_homogeneous_single_gateway () =
  let net = Topologies.single ~n:3 () in
  let adjusters = Array.make 3 Scenario.standard_adjuster in
  let reports =
    Analysis.evaluate_all ~manifold_dim:2 ~adjusters ~net [| 0.05; 0.15; 0.3 |]
  in
  (* Aggregate: converges but keeps initial differences -> unfair. *)
  let agg = find_report "aggregate" reports in
  check_true "aggregate converged"
    (match agg.Analysis.outcome with Controller.Converged _ -> true | _ -> false);
  Alcotest.(check (option bool)) "aggregate unfair" (Some false) agg.Analysis.fair;
  (* Individual designs: fair, robust, stable. *)
  List.iter
    (fun label ->
      let r = find_report label reports in
      Alcotest.(check (option bool)) (label ^ " fair") (Some true) r.Analysis.fair;
      Alcotest.(check (option bool)) (label ^ " robust") (Some true) r.Analysis.robust;
      Alcotest.(check (option bool)) (label ^ " unilateral") (Some true)
        r.Analysis.unilateral;
      (match r.Analysis.jain with
      | Some j -> check_float ~tol:1e-6 (label ^ " jain = 1") 1. j
      | None -> Alcotest.fail "jain expected");
      match r.Analysis.steady with
      | Some steady ->
        check_vec ~tol:1e-5 (label ^ " fair point")
          [| 0.5 /. 3.; 0.5 /. 3.; 0.5 /. 3. |]
          steady
      | None -> Alcotest.fail "steady expected")
    [ "individual+fifo"; "individual+fair-share" ]

let test_heterogeneous_matrix () =
  (* The paper's bottom line on one screen: with heterogeneous betas only
     individual+fair-share is robust. *)
  let net = Topologies.single ~n:2 () in
  let adjusters = [| Scenario.timid_adjuster; Scenario.greedy_adjuster |] in
  let reports = Analysis.evaluate_all ~adjusters ~net [| 0.2; 0.2 |] in
  let robust label = (find_report label reports).Analysis.robust in
  Alcotest.(check (option bool)) "aggregate not robust" (Some false) (robust "aggregate");
  Alcotest.(check (option bool)) "indiv+fifo not robust" (Some false)
    (robust "individual+fifo");
  Alcotest.(check (option bool)) "indiv+fs robust" (Some true)
    (robust "individual+fair-share");
  (* FS also shows the triangular stability matrix here. *)
  Alcotest.(check (option bool)) "FS triangular DF" (Some true)
    (find_report "individual+fair-share" reports).Analysis.df_triangular

let test_unconverged_report_empty () =
  (* An unstable configuration reports its outcome with no verdicts. *)
  let n = 30 in
  let net = Topologies.single ~n () in
  let adjusters = Array.make n Scenario.standard_adjuster in
  let r0 = Array.init n (fun i -> 0.5 /. float_of_int n *. (1. +. (0.01 *. float_of_int i))) in
  let report =
    Analysis.evaluate ~max_steps:3000
      (List.hd Analysis.designs) (* aggregate *)
      ~adjusters ~net ~r0
  in
  check_true "did not converge"
    (match report.Analysis.outcome with Controller.Converged _ -> false | _ -> true);
  Alcotest.(check (option bool)) "no fairness verdict" None report.Analysis.fair;
  check_true "no spectral radius" (report.Analysis.spectral_radius = None)

let test_robust_verdict_requires_declared_bss () =
  (* The DECbit window form declares no b_ss: robustness is unknown. *)
  let net = Topologies.single ~n:1 () in
  let adjusters = [| Rate_adjust.decbit_window ~eta:0.2 ~beta:0.5 |] in
  let report =
    Analysis.evaluate
      (List.nth Analysis.designs 1)
      ~adjusters ~net ~r0:[| 0.1 |]
  in
  check_true "converged"
    (match report.Analysis.outcome with Controller.Converged _ -> true | _ -> false);
  Alcotest.(check (option bool)) "robust unknown" None report.Analysis.robust

let test_pp_report_renders () =
  let net = Topologies.single ~n:2 () in
  let adjusters = Array.make 2 Scenario.standard_adjuster in
  let reports = Analysis.evaluate_all ~adjusters ~net [| 0.1; 0.1 |] in
  List.iter
    (fun r ->
      let s = Format.asprintf "%a" Analysis.pp_report r in
      check_true "non-empty rendering" (String.length s > 10))
    reports

let suites =
  [
    ( "core.analysis",
      [
        case "design matrix labels" test_designs_cover_matrix;
        case "homogeneous single gateway" test_homogeneous_single_gateway;
        case "heterogeneous design matrix (paper core claim)" test_heterogeneous_matrix;
        case "unconverged report" test_unconverged_report_empty;
        case "robustness needs declared b_ss" test_robust_verdict_requires_declared_bss;
        case "report rendering" test_pp_report_renders;
      ] );
  ]
