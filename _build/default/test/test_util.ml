(* Shared helpers for the test suite. *)

let check_float ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %.2g)" msg expected actual tol

let check_float_rel ?(tol = 1e-6) msg expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  if Float.abs (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel tol %.2g)" msg expected actual tol

let check_vec ?(tol = 1e-9) msg expected actual =
  if Array.length expected <> Array.length actual then
    Alcotest.failf "%s: dimension mismatch %d vs %d" msg (Array.length expected)
      (Array.length actual);
  Array.iteri
    (fun i e ->
      if Float.abs (e -. actual.(i)) > tol then
        Alcotest.failf "%s: component %d: expected %.12g, got %.12g" msg i e actual.(i))
    expected

let check_true msg cond = Alcotest.(check bool) msg true cond
let check_false msg cond = Alcotest.(check bool) msg false cond

let case name f = Alcotest.test_case name `Quick f

(* Registers a qcheck property as an alcotest case with a deterministic
   seed so failures are reproducible. *)
let prop name ?(count = 200) gen law =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xffc |])
    (QCheck2.Test.make ~name ~count gen law)
