open Ffc_core
open Test_util

let all_signals =
  [
    Signal.linear_fractional;
    Signal.scaled 2.;
    Signal.power 2.;
    Signal.exponential 0.7;
  ]

let test_linear_fractional () =
  let s = Signal.linear_fractional in
  check_float "B(0)" 0. (Signal.eval s 0.);
  check_float "B(1)" 0.5 (Signal.eval s 1.);
  check_float ~tol:1e-12 "B(3)" 0.75 (Signal.eval s 3.);
  check_float "B(inf)" 1. (Signal.eval s Float.infinity)

let test_inverse_roundtrip () =
  List.iter
    (fun s ->
      List.iter
        (fun b ->
          let c = Signal.inverse s b in
          check_float ~tol:1e-9
            (Printf.sprintf "%s roundtrip at %g" (Signal.name s) b)
            b (Signal.eval s c))
        [ 0.1; 0.25; 0.5; 0.75; 0.9 ])
    all_signals

let test_inverse_extremes () =
  List.iter
    (fun s ->
      check_float (Signal.name s ^ " inverse 0") 0. (Signal.inverse s 0.);
      check_true (Signal.name s ^ " inverse 1")
        (Signal.inverse s 1. = Float.infinity))
    all_signals

let test_eval_clamps () =
  (* A sloppy custom eval is clamped into [0,1]. *)
  let s = Signal.make ~name:"sloppy" ~eval:(fun c -> 2. *. c) ~inverse:(fun b -> b /. 2.) in
  check_float "clamped at 1" 1. (Signal.eval s 3.)

let test_eval_rejects_negative () =
  Alcotest.check_raises "negative congestion"
    (Invalid_argument "Signal.eval: congestion must be >= 0") (fun () ->
      ignore (Signal.eval Signal.linear_fractional (-1.)))

let test_inverse_rejects_out_of_range () =
  Alcotest.check_raises "signal above 1"
    (Invalid_argument "Signal.inverse: signal outside [0,1]") (fun () ->
      ignore (Signal.inverse Signal.linear_fractional 1.5))

let test_power_reduces_to_rho_squared () =
  (* With B = (C/(1+C))^2 and C = g(rho), the signal is rho^2 — the
     reduction behind the paper's chaos example. *)
  let s = Signal.power 2. in
  List.iter
    (fun rho ->
      let c = Ffc_queueing.Mm1.g rho in
      check_float ~tol:1e-12
        (Printf.sprintf "b = rho^2 at %g" rho)
        (rho *. rho) (Signal.eval s c))
    [ 0.1; 0.5; 0.9 ]

let test_linear_fractional_is_rho () =
  (* With B = C/(1+C) and C = g(rho), the signal equals rho — the
     reduction behind the instability example. *)
  List.iter
    (fun rho ->
      let c = Ffc_queueing.Mm1.g rho in
      check_float ~tol:1e-12
        (Printf.sprintf "b = rho at %g" rho)
        rho
        (Signal.eval Signal.linear_fractional c))
    [ 0.2; 0.5; 0.8 ]

let test_check_accepts_builtins () =
  List.iter
    (fun s -> check_true (Signal.name s ^ " passes check") (Signal.check s))
    all_signals

let test_check_rejects_nonmonotone () =
  let bad =
    Signal.make ~name:"bump"
      ~eval:(fun c -> if c < 1. then c /. 2. else 0.4)
      ~inverse:(fun b -> b)
  in
  check_false "non-monotone rejected" (Signal.check bad)

let test_binary () =
  let s = Signal.binary 1. in
  check_float "below threshold" 0. (Signal.eval s 0.5);
  check_float "at threshold" 1. (Signal.eval s 1.);
  check_float "above threshold" 1. (Signal.eval s 5.);
  check_float "binary inverse of 0" 0. (Signal.inverse s 0.);
  check_float "binary inverse interior" 1. (Signal.inverse s 0.5);
  (* Binary feedback deliberately breaks the dB/dC > 0 contract. *)
  check_false "check rejects binary" (Signal.check s)

let test_invalid_params () =
  check_true "scaled rejects k<=0"
    (try
       ignore (Signal.scaled 0.);
       false
     with Invalid_argument _ -> true);
  check_true "power rejects p<1"
    (try
       ignore (Signal.power 0.5);
       false
     with Invalid_argument _ -> true)

let prop_monotone =
  prop "signals are monotone in congestion"
    QCheck2.Gen.(pair (float_range 0. 50.) (float_range 0. 50.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      List.for_all
        (fun s -> Signal.eval s lo <= Signal.eval s hi +. 1e-12)
        all_signals)

let prop_range =
  prop "signals stay in [0,1]"
    QCheck2.Gen.(float_range 0. 1e6)
    (fun c ->
      List.for_all
        (fun s ->
          let b = Signal.eval s c in
          b >= 0. && b <= 1.)
        all_signals)

let suites =
  [
    ( "core.signal",
      [
        case "linear fractional values" test_linear_fractional;
        case "inverse roundtrip" test_inverse_roundtrip;
        case "inverse extremes" test_inverse_extremes;
        case "eval clamps" test_eval_clamps;
        case "eval rejects negative" test_eval_rejects_negative;
        case "inverse range check" test_inverse_rejects_out_of_range;
        case "power(2) gives rho^2" test_power_reduces_to_rho_squared;
        case "linear fractional gives rho" test_linear_fractional_is_rho;
        case "check accepts builtins" test_check_accepts_builtins;
        case "check rejects non-monotone" test_check_rejects_nonmonotone;
        case "binary signal" test_binary;
        case "parameter validation" test_invalid_params;
        prop_monotone;
        prop_range;
      ] );
  ]
