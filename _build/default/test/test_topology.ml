open Ffc_numerics
open Ffc_topology
open Test_util

let gw name mu latency = { Network.gw_name = name; mu; latency }
let conn name path = { Network.conn_name = name; path }

let two_hop () =
  Network.create
    ~gateways:[| gw "g0" 1. 0.1; gw "g1" 2. 0.2 |]
    ~connections:[| conn "long" [ 0; 1 ]; conn "short" [ 1 ] |]

let test_create_accessors () =
  let net = two_hop () in
  Alcotest.(check int) "gateways" 2 (Network.num_gateways net);
  Alcotest.(check int) "connections" 2 (Network.num_connections net);
  check_float "mu" 2. (Network.gateway net 1).Network.mu;
  Alcotest.(check (list int)) "gamma(long)" [ 0; 1 ] (Network.gateways_of_connection net 0);
  Alcotest.(check (list int)) "Gamma(g1)" [ 0; 1 ] (Network.connections_at_gateway net 1);
  Alcotest.(check (list int)) "Gamma(g0)" [ 0 ] (Network.connections_at_gateway net 0);
  Alcotest.(check int) "fanin g1" 2 (Network.fanin net 1)

let test_name_lookup () =
  let net = two_hop () in
  Alcotest.(check int) "gateway by name" 1 (Network.gateway_index net "g1");
  Alcotest.(check int) "connection by name" 1 (Network.connection_index net "short");
  Alcotest.check_raises "unknown gateway" Not_found (fun () ->
      ignore (Network.gateway_index net "nope"))

let test_validation () =
  let bad_path () =
    Network.create ~gateways:[| gw "g" 1. 0. |] ~connections:[| conn "c" [ 5 ] |]
  in
  check_true "unknown gateway rejected"
    (try
       ignore (bad_path ());
       false
     with Invalid_argument _ -> true);
  let empty_path () =
    Network.create ~gateways:[| gw "g" 1. 0. |] ~connections:[| conn "c" [] |]
  in
  check_true "empty path rejected"
    (try
       ignore (empty_path ());
       false
     with Invalid_argument _ -> true);
  let repeat_gateway () =
    Network.create ~gateways:[| gw "g" 1. 0. |] ~connections:[| conn "c" [ 0; 0 ] |]
  in
  check_true "repeated gateway rejected"
    (try
       ignore (repeat_gateway ());
       false
     with Invalid_argument _ -> true);
  let bad_mu () =
    Network.create ~gateways:[| gw "g" 0. 0. |] ~connections:[| conn "c" [ 0 ] |]
  in
  check_true "non-positive mu rejected"
    (try
       ignore (bad_mu ());
       false
     with Invalid_argument _ -> true);
  let dup_names () =
    Network.create
      ~gateways:[| gw "g" 1. 0.; gw "g" 1. 0. |]
      ~connections:[| conn "c" [ 0 ] |]
  in
  check_true "duplicate names rejected"
    (try
       ignore (dup_names ());
       false
     with Invalid_argument _ -> true)

let test_scale_mu () =
  let net = two_hop () in
  let scaled = Network.scale_mu net 3. in
  check_float "mu scaled" 3. (Network.gateway scaled 0).Network.mu;
  check_float "latency unchanged" 0.1 (Network.gateway scaled 0).Network.latency

let test_with_latencies () =
  let net = two_hop () in
  let changed = Network.with_latencies net [| 5.; 6. |] in
  check_float "latency replaced" 6. (Network.gateway changed 1).Network.latency;
  check_float "mu unchanged" 2. (Network.gateway changed 1).Network.mu

let test_rates_at_gateway () =
  let net = two_hop () in
  let rates = [| 0.3; 0.7 |] in
  check_vec "g1 sees both" [| 0.3; 0.7 |] (Network.rates_at_gateway net ~rates 1);
  check_vec "g0 sees only long" [| 0.3 |] (Network.rates_at_gateway net ~rates 0)

let test_local_index () =
  let net = two_hop () in
  Alcotest.(check int) "long at g1" 0 (Network.local_index net ~conn:0 ~gw:1);
  Alcotest.(check int) "short at g1" 1 (Network.local_index net ~conn:1 ~gw:1);
  Alcotest.check_raises "not on path" Not_found (fun () ->
      ignore (Network.local_index net ~conn:1 ~gw:0))

let test_single () =
  let net = Topologies.single ~n:4 () in
  Alcotest.(check int) "one gateway" 1 (Network.num_gateways net);
  Alcotest.(check int) "four connections" 4 (Network.num_connections net);
  Alcotest.(check int) "fanin 4" 4 (Network.fanin net 0)

let test_parking_lot () =
  let net = Topologies.parking_lot ~hops:3 () in
  Alcotest.(check int) "gateways" 3 (Network.num_gateways net);
  Alcotest.(check int) "connections" 4 (Network.num_connections net);
  Alcotest.(check (list int)) "long path" [ 0; 1; 2 ] (Network.gateways_of_connection net 0);
  (* Each gateway carries the long connection plus one cross. *)
  for a = 0 to 2 do
    Alcotest.(check int) (Printf.sprintf "fanin gw%d" a) 2 (Network.fanin net a)
  done

let test_chain () =
  let net = Topologies.chain ~hops:2 ~conns:3 () in
  Alcotest.(check int) "connections" 3 (Network.num_connections net);
  for i = 0 to 2 do
    Alcotest.(check (list int))
      (Printf.sprintf "conn%d path" i)
      [ 0; 1 ]
      (Network.gateways_of_connection net i)
  done

let test_star () =
  let net = Topologies.star ~legs:3 () in
  Alcotest.(check int) "gateways" 4 (Network.num_gateways net);
  Alcotest.(check int) "hub fanin" 3 (Network.fanin net 3);
  Alcotest.(check int) "leg fanin" 1 (Network.fanin net 0)

let test_dumbbell () =
  let net = Topologies.dumbbell ~left:2 ~right:3 () in
  Alcotest.(check int) "bottleneck fanin" 5 (Network.fanin net 0);
  check_float "access is fat" 10. (Network.gateway net 1).Network.mu

let test_random_valid () =
  let rng = Rng.create 123 in
  for trial = 0 to 9 do
    let net =
      Topologies.random ~rng ~gateways:5 ~connections:6 ~max_path:3 ()
    in
    Alcotest.(check int)
      (Printf.sprintf "trial %d connections" trial)
      6 (Network.num_connections net);
    (* Every gateway must carry traffic. *)
    for a = 0 to Network.num_gateways net - 1 do
      check_true
        (Printf.sprintf "trial %d gw %d used" trial a)
        (Network.fanin net a > 0)
    done
  done

let test_random_deterministic () =
  let build seed =
    let rng = Rng.create seed in
    Dsl.to_string (Topologies.random ~rng ~gateways:4 ~connections:5 ~max_path:2 ())
  in
  Alcotest.(check string) "same seed, same topology" (build 7) (build 7);
  check_true "different seeds usually differ" (build 7 <> build 8)

let test_dsl_roundtrip () =
  let net = Topologies.parking_lot ~hops:3 ~mu:1.5 ~latency:0.25 () in
  let text = Dsl.to_string net in
  let net' = Dsl.parse_exn text in
  Alcotest.(check string) "roundtrip identical" text (Dsl.to_string net')

let test_dsl_parse_example () =
  let text =
    "# two-hop example\n\
     gateway g0 mu=1.0 latency=0.1\n\
     gateway g1 mu=2.0\n\
     \n\
     connection long path=g0,g1\n\
     connection short path=g1\n"
  in
  let net = Dsl.parse_exn text in
  Alcotest.(check int) "two gateways" 2 (Network.num_gateways net);
  check_float "latency default 0" 0. (Network.gateway net 1).Network.latency;
  Alcotest.(check (list int)) "long path" [ 0; 1 ] (Network.gateways_of_connection net 0)

let expect_error text fragment =
  match Dsl.parse text with
  | Ok _ -> Alcotest.failf "expected parse error mentioning %S" fragment
  | Error { message; _ } ->
    let contains s sub =
      let n = String.length sub in
      let found = ref false in
      for i = 0 to String.length s - n do
        if String.sub s i n = sub then found := true
      done;
      !found
    in
    if not (contains message fragment) then
      Alcotest.failf "error %S does not mention %S" message fragment

let test_dsl_errors () =
  expect_error "gateway g0\n" "mu";
  expect_error "gateway g0 mu=abc\n" "invalid mu";
  expect_error "gateway g0 mu=1.0\nconnection c path=zz\n" "unknown gateway";
  expect_error "frobnicate x\n" "unknown declaration";
  expect_error "gateway g0 mu=1.0\nconnection c\n" "path";
  expect_error "connection c path=g0\n" "unknown gateway";
  expect_error "" "no gateways"

let test_dsl_error_line_numbers () =
  match Dsl.parse "gateway g0 mu=1.0\n# fine\nbogus\n" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error { line; _ } -> Alcotest.(check int) "error on line 3" 3 line

let prop_random_topology_valid =
  prop "random topologies validate and expose consistent incidence" ~count:50
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let net = Topologies.random ~rng ~gateways:4 ~connections:5 ~max_path:3 () in
      (* Incidence consistency: i in Gamma(a) iff a in gamma(i). *)
      let ok = ref true in
      for i = 0 to Network.num_connections net - 1 do
        List.iter
          (fun a ->
            if not (List.mem i (Network.connections_at_gateway net a)) then ok := false)
          (Network.gateways_of_connection net i)
      done;
      for a = 0 to Network.num_gateways net - 1 do
        List.iter
          (fun i ->
            if not (List.mem a (Network.gateways_of_connection net i)) then ok := false)
          (Network.connections_at_gateway net a)
      done;
      !ok)

let prop_dsl_roundtrip =
  prop "DSL roundtrips random topologies" ~count:50
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let net = Topologies.random ~rng ~gateways:3 ~connections:4 ~max_path:2 () in
      let text = Dsl.to_string net in
      match Dsl.parse text with
      | Error _ -> false
      | Ok net' -> Dsl.to_string net' = text)

let suites =
  [
    ( "topology.network",
      [
        case "create and accessors" test_create_accessors;
        case "name lookup" test_name_lookup;
        case "validation" test_validation;
        case "scale_mu" test_scale_mu;
        case "with_latencies" test_with_latencies;
        case "rates at gateway" test_rates_at_gateway;
        case "local index" test_local_index;
      ] );
    ( "topology.builders",
      [
        case "single" test_single;
        case "parking lot" test_parking_lot;
        case "chain" test_chain;
        case "star" test_star;
        case "dumbbell" test_dumbbell;
        case "random validity" test_random_valid;
        case "random determinism" test_random_deterministic;
        prop_random_topology_valid;
      ] );
    ( "topology.dsl",
      [
        case "roundtrip" test_dsl_roundtrip;
        case "parse example" test_dsl_parse_example;
        case "parse errors" test_dsl_errors;
        case "error line numbers" test_dsl_error_line_numbers;
        prop_dsl_roundtrip;
      ] );
  ]
