open Ffc_numerics
open Test_util

let contains s sub =
  let n = String.length sub in
  let found = ref false in
  for i = 0 to String.length s - n do
    if String.sub s i n = sub then found := true
  done;
  !found

let test_series_renders () =
  let out = Ascii_plot.series ~title:"ramp" (Array.init 10 float_of_int) in
  check_true "has title" (contains out "ramp");
  check_true "has frame" (contains out "+---");
  check_true "has glyphs" (contains out "*")

let test_scatter_renders () =
  let out = Ascii_plot.scatter [| (0., 0.); (1., 1.); (2., 4.) |] in
  check_true "has points" (contains out "*")

let test_empty_canvas () =
  let c = Ascii_plot.canvas () in
  let out = Ascii_plot.render c in
  check_true "renders frame without data" (contains out "+")

let test_nonfinite_filtered () =
  let c = Ascii_plot.canvas () in
  Ascii_plot.plot_points c [| (Float.nan, 1.); (1., Float.infinity); (1., 1.) |];
  let out = Ascii_plot.render c in
  check_true "renders despite non-finite inputs" (contains out "*")

let test_custom_glyph () =
  let c = Ascii_plot.canvas () in
  Ascii_plot.plot_series c ~glyph:'o' [| 1.; 2.; 3. |];
  check_true "custom glyph used" (contains (Ascii_plot.render c) "o")

let test_axis_labels () =
  let out =
    Ascii_plot.series ~x_label:"time step" ~y_label:"rate" [| 1.; 2. |]
  in
  check_true "x label" (contains out "time step");
  check_true "y label" (contains out "rate")

let test_bars () =
  let out = Ascii_plot.bars ~title:"alloc" [ ("fifo", 2.); ("fs", 4.) ] in
  check_true "bar title" (contains out "alloc");
  check_true "labels present" (contains out "fifo" && contains out "fs");
  check_true "bars drawn" (contains out "##")

let test_bars_negative_rejected () =
  Alcotest.check_raises "negative bar" (Invalid_argument "Ascii_plot.bars: negative value")
    (fun () -> ignore (Ascii_plot.bars [ ("x", -1.) ]))

let test_too_small_canvas () =
  Alcotest.check_raises "tiny canvas" (Invalid_argument "Ascii_plot.canvas: too small")
    (fun () -> ignore (Ascii_plot.canvas ~width:2 ~height:2 ()))

let test_value_range_in_render () =
  let out = Ascii_plot.series [| 0.; 100. |] in
  check_true "max tick present" (contains out "100")

let suites =
  [
    ( "numerics.ascii_plot",
      [
        case "series rendering" test_series_renders;
        case "scatter rendering" test_scatter_renders;
        case "empty canvas" test_empty_canvas;
        case "non-finite filtering" test_nonfinite_filtered;
        case "custom glyph" test_custom_glyph;
        case "axis labels" test_axis_labels;
        case "bar chart" test_bars;
        case "bars reject negatives" test_bars_negative_rejected;
        case "canvas size validation" test_too_small_canvas;
        case "tick labels show range" test_value_range_in_render;
      ] );
  ]
