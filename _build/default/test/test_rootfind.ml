open Ffc_numerics
open Test_util

let root_of = function
  | Rootfind.Root r -> r
  | Rootfind.No_bracket -> Alcotest.fail "unexpected No_bracket"
  | Rootfind.No_convergence _ -> Alcotest.fail "unexpected No_convergence"

let test_bisect_sqrt2 () =
  let f x = (x *. x) -. 2. in
  check_float ~tol:1e-10 "sqrt 2" (sqrt 2.) (root_of (Rootfind.bisect f ~lo:0. ~hi:2.))

let test_bisect_endpoint_root () =
  let f x = x -. 1. in
  check_float "endpoint root lo" 1. (root_of (Rootfind.bisect f ~lo:1. ~hi:2.));
  check_float "endpoint root hi" 1. (root_of (Rootfind.bisect f ~lo:0. ~hi:1.))

let test_bisect_no_bracket () =
  check_true "no bracket reported"
    (Rootfind.bisect (fun x -> (x *. x) +. 1.) ~lo:0. ~hi:1. = Rootfind.No_bracket)

let test_brent_sqrt2 () =
  let f x = (x *. x) -. 2. in
  check_float ~tol:1e-10 "sqrt 2" (sqrt 2.) (root_of (Rootfind.brent f ~lo:0. ~hi:2.))

let test_brent_transcendental () =
  (* cos x = x has root ~ 0.7390851332151607 *)
  let f x = cos x -. x in
  check_float ~tol:1e-9 "dottie number" 0.7390851332151607
    (root_of (Rootfind.brent f ~lo:0. ~hi:1.))

let test_brent_signal_inverse () =
  (* Inverting B(C) = C/(1+C) at b: root of B(C) - b in C, used to compute
     steady congestion. *)
  let b = 0.42 in
  let f c = (c /. (1. +. c)) -. b in
  let expected = b /. (1. -. b) in
  check_float ~tol:1e-9 "B inverse" expected
    (root_of (Rootfind.brent f ~lo:0. ~hi:100.))

let test_newton_cubic () =
  let f x = (x ** 3.) -. 8. and df x = 3. *. (x ** 2.) in
  check_float ~tol:1e-8 "cube root of 8" 2. (root_of (Rootfind.newton ~f ~df 3.))

let test_newton_flat_derivative () =
  (* f = x^2 starting at 0: derivative 0 at the root; must not diverge or
     loop forever. *)
  match Rootfind.newton ~f:(fun x -> x *. x) ~df:(fun x -> 2. *. x) 0. with
  | Rootfind.Root r -> check_float ~tol:1e-6 "root 0" 0. r
  | Rootfind.No_convergence _ -> ()
  | Rootfind.No_bracket -> Alcotest.fail "newton never reports No_bracket"

let test_fixed_point_cosine () =
  check_float ~tol:1e-9 "cos fixed point" 0.7390851332151607
    (root_of (Rootfind.fixed_point cos 0.5))

let test_fixed_point_divergent () =
  match Rootfind.fixed_point ~max_iter:50 (fun x -> (2. *. x) +. 1.) 1. with
  | Rootfind.No_convergence _ -> ()
  | Rootfind.Root _ -> Alcotest.fail "divergent map should not converge"
  | Rootfind.No_bracket -> Alcotest.fail "fixed_point never reports No_bracket"

let test_expand_bracket () =
  let f x = x -. 50. in
  match Rootfind.expand_bracket f ~lo:0. ~hi:1. with
  | None -> Alcotest.fail "bracket should be found"
  | Some (lo, hi) ->
    check_true "brackets root" (f lo *. f hi <= 0.);
    check_float ~tol:1e-9 "lo unchanged" 0. lo

let test_expand_bracket_failure () =
  check_true "no sign change found"
    (Rootfind.expand_bracket ~max_iter:5 (fun _ -> 1.) ~lo:0. ~hi:1. = None)

let prop_brent_matches_bisect =
  prop "brent and bisect agree on monotone functions" ~count:100
    QCheck2.Gen.(float_range 0.1 0.9)
    (fun b ->
      let f c = (c /. (1. +. c)) -. b in
      match (Rootfind.brent f ~lo:0. ~hi:1000., Rootfind.bisect f ~lo:0. ~hi:1000.) with
      | Rootfind.Root x, Rootfind.Root y -> Float.abs (x -. y) <= 1e-6 *. (1. +. Float.abs x)
      | _ -> false)

let suites =
  [
    ( "numerics.rootfind",
      [
        case "bisect sqrt2" test_bisect_sqrt2;
        case "bisect endpoint roots" test_bisect_endpoint_root;
        case "bisect no bracket" test_bisect_no_bracket;
        case "brent sqrt2" test_brent_sqrt2;
        case "brent transcendental" test_brent_transcendental;
        case "brent inverts signal function" test_brent_signal_inverse;
        case "newton cubic" test_newton_cubic;
        case "newton flat derivative" test_newton_flat_derivative;
        case "fixed point of cos" test_fixed_point_cosine;
        case "fixed point divergence" test_fixed_point_divergent;
        case "expand bracket" test_expand_bracket;
        case "expand bracket failure" test_expand_bracket_failure;
        prop_brent_matches_bisect;
      ] );
  ]
