test/test_ascii_plot.ml: Alcotest Array Ascii_plot Ffc_numerics Float String Test_util
