test/test_robustness.ml: Alcotest Array Controller Feedback Ffc_core Ffc_numerics Ffc_queueing Ffc_topology Mm1 Network QCheck2 Rng Robustness Scenario Service Signal Test_util Topologies
