test/test_eigen.ml: Alcotest Array Complex Eigen Ffc_numerics Float Mat Printf QCheck2 Test_util
