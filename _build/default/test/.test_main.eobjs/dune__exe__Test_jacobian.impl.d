test/test_jacobian.ml: Alcotest Array Complex Controller Eigen Feedback Ffc_core Ffc_numerics Ffc_topology Float Jacobian Mat Rate_adjust Scenario Test_util Topologies
