test/test_mat.ml: Alcotest Array Ffc_numerics Float Mat QCheck2 Test_util Vec
