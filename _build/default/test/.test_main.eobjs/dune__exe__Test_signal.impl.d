test/test_signal.ml: Alcotest Ffc_core Ffc_queueing Float List Printf QCheck2 Signal Test_util
