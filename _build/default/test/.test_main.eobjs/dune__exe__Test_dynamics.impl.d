test/test_dynamics.ml: Alcotest Array Dynamics Ffc_numerics QCheck2 Test_util Vec
