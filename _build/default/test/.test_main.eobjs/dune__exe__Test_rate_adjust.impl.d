test/test_rate_adjust.ml: Alcotest Ffc_core Float QCheck2 Rate_adjust Test_util
