test/test_util.ml: Alcotest Array Float QCheck2 QCheck_alcotest Random
