test/test_queueing.ml: Alcotest Array Delay Fair_share Feasibility Ffc_numerics Ffc_queueing Fifo Float List Mm1 Printf Priority QCheck2 Service Test_util Vec
