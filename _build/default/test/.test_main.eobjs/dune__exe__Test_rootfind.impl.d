test/test_rootfind.ml: Alcotest Ffc_numerics Float QCheck2 Rootfind Test_util
