test/test_weighted_fs.ml: Array Fair_share Ffc_numerics Ffc_queueing Float Mm1 QCheck2 Rng Service Test_util Vec Weighted_fair_share
