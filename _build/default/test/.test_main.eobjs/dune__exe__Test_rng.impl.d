test/test_rng.ml: Alcotest Array Ffc_numerics Fun Printf QCheck2 Rng Stats Test_util
