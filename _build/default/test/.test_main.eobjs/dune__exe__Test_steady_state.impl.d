test/test_steady_state.ml: Array Congestion Controller Feedback Ffc_core Ffc_numerics Ffc_topology List Network QCheck2 Scenario Signal Steady_state Test_util Topologies
