test/test_vec.ml: Alcotest Array Ffc_numerics QCheck2 String Test_util Vec
