test/test_game.ml: Alcotest Array Ffc_game Ffc_queueing Float List Nash QCheck2 Service Test_util Utility
