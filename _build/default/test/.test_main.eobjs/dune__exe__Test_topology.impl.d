test/test_topology.ml: Alcotest Dsl Ffc_numerics Ffc_topology List Network Printf QCheck2 Rng String Test_util Topologies
