test/test_stats.ml: Alcotest Array Ffc_numerics Float List QCheck2 Rng Stats Test_util
