test/test_transient.ml: Alcotest Array Feedback Ffc_core Ffc_numerics Ffc_topology Float Ode Scenario Test_util Topologies Transient
