test/test_exp_common.ml: Alcotest Exp_common Ffc_experiments Float List String Test_util
