test/test_analysis.ml: Alcotest Analysis Array Controller Ffc_core Ffc_topology Format List Rate_adjust Scenario String Test_util Topologies
