test/test_window.ml: Alcotest Array Feedback Ffc_core Ffc_topology Float List Network Printf QCheck2 Test_util Topologies Window
