test/test_fairness.ml: Alcotest Fairness Feedback Ffc_core Ffc_numerics Ffc_topology Network QCheck2 Signal Steady_state Test_util Topologies
