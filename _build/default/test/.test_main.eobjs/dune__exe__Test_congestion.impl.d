test/test_congestion.ml: Alcotest Array Congestion Ffc_core Ffc_numerics Float QCheck2 Test_util
