open Ffc_numerics
open Ffc_topology
open Ffc_core
open Test_util

(* ------------------------------------------------------------------ *)
(* ODE integrator                                                      *)
(* ------------------------------------------------------------------ *)

let test_rk4_exponential () =
  (* y' = -y from 1: y(t) = e^{-t}. *)
  let f ~t:_ y = [| -.y.(0) |] in
  let traj = Ode.integrate ~f ~t0:0. ~t1:2. ~dt:0.01 [| 1. |] in
  let _, last = traj.(Array.length traj - 1) in
  check_float ~tol:1e-8 "e^{-2}" (exp (-2.)) last.(0)

let test_rk4_harmonic_oscillator () =
  (* y'' = -y  as a system: energy is conserved to RK4 accuracy. *)
  let f ~t:_ y = [| y.(1); -.y.(0) |] in
  let traj = Ode.integrate ~f ~t0:0. ~t1:(2. *. Float.pi) ~dt:0.001 [| 1.; 0. |] in
  let _, last = traj.(Array.length traj - 1) in
  check_float ~tol:1e-8 "full period returns" 1. last.(0);
  check_float ~tol:1e-8 "velocity returns" 0. last.(1)

let test_rk4_endpoint_exact () =
  let f ~t:_ _ = [| 1. |] in
  let traj = Ode.integrate ~f ~t0:0. ~t1:1. ~dt:0.3 [| 0. |] in
  let t_last, y_last = traj.(Array.length traj - 1) in
  check_float "lands exactly on t1" 1. t_last;
  check_float ~tol:1e-12 "integral of 1 is t" 1. y_last.(0)

let test_integrate_post_clamp () =
  let f ~t:_ _ = [| -10. |] in
  let traj =
    Ode.integrate ~post:(Array.map (Float.max 0.)) ~f ~t0:0. ~t1:1. ~dt:0.1 [| 0.5 |]
  in
  Array.iter (fun (_, y) -> check_true "clamped" (y.(0) >= 0.)) traj

let test_integrate_validation () =
  let f ~t:_ y = y in
  check_true "dt <= 0 rejected"
    (try
       ignore (Ode.integrate ~f ~t0:0. ~t1:1. ~dt:0. [| 1. |]);
       false
     with Invalid_argument _ -> true);
  check_true "t1 < t0 rejected"
    (try
       ignore (Ode.integrate ~f ~t0:1. ~t1:0. ~dt:0.1 [| 1. |]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Transient fluid model                                               *)
(* ------------------------------------------------------------------ *)

let config = Feedback.individual_fifo

let test_fluid_settles_at_fair_point () =
  let n = 3 in
  let net = Topologies.single ~mu:1. ~n () in
  let r =
    Transient.run ~dt:0.05 ~t_end:800. ~config ~net
      ~adjusters:(Array.make n Scenario.standard_adjuster)
      ~gain:1. ~r0:[| 0.02; 0.1; 0.2 |] ()
  in
  match r.Transient.outcome with
  | Transient.Settled rates ->
    check_vec ~tol:1e-3 "fluid fair point" [| 1. /. 6.; 1. /. 6.; 1. /. 6. |] rates
  | Transient.Oscillating _ -> Alcotest.fail "moderate gain should settle"

let test_fluid_queue_equilibrium () =
  (* At the settled point the fluid queue mass equals g(rho) = 1. *)
  let n = 2 in
  let net = Topologies.single ~mu:1. ~n () in
  let r =
    Transient.run ~dt:0.05 ~t_end:800. ~config ~net
      ~adjusters:(Array.make n Scenario.standard_adjuster)
      ~gain:1. ~r0:[| 0.1; 0.1 |] ()
  in
  let q_last = r.Transient.total_queue.(Array.length r.Transient.total_queue - 1) in
  check_float ~tol:0.01 "fluid mass = g(1/2) = 1" 1. q_last

let test_fluid_chain_oscillates_at_high_gain () =
  let net = Topologies.chain ~mu:1. ~hops:3 ~conns:2 () in
  let adjusters = Array.make 2 Scenario.standard_adjuster in
  let outcome gain =
    (Transient.run ~dt:0.025 ~t_end:600. ~config ~net ~adjusters ~gain
       ~r0:[| 0.05; 0.1 |] ())
      .Transient.outcome
  in
  check_true "low gain settles"
    (match outcome 5. with Transient.Settled _ -> true | _ -> false);
  check_true "high gain oscillates"
    (match outcome 80. with Transient.Oscillating _ -> true | _ -> false)

let test_fluid_validation () =
  let net = Topologies.single ~n:2 () in
  check_true "gain must be positive"
    (try
       ignore
         (Transient.run ~config ~net
            ~adjusters:(Array.make 2 Scenario.standard_adjuster)
            ~gain:0. ~r0:[| 0.1; 0.1 |] ());
       false
     with Invalid_argument _ -> true)

let test_critical_gain_ordering () =
  (* The critical gain of the slow chain is below the fast chain's. *)
  let critical mu =
    let net = Topologies.chain ~mu ~hops:3 ~conns:2 () in
    Transient.critical_gain ~lo:1. ~hi:400. ~ratio:1.3 ~dt:0.05 ~t_end:400.
      ~config ~net
      ~adjusters:(Array.make 2 Scenario.standard_adjuster)
      ~r0:[| 0.05 *. mu; 0.1 *. mu |] ()
  in
  let slow = critical 0.5 and fast = critical 2. in
  check_true "faster servers tolerate more gain" (fast > 2. *. slow)

let suites =
  [
    ( "core.transient",
      [
        case "rk4 exponential decay" test_rk4_exponential;
        case "rk4 harmonic oscillator" test_rk4_harmonic_oscillator;
        case "rk4 endpoint handling" test_rk4_endpoint_exact;
        case "integrate post clamp" test_integrate_post_clamp;
        case "integrate validation" test_integrate_validation;
        case "fluid settles at fair point" test_fluid_settles_at_fair_point;
        case "fluid queue equilibrium" test_fluid_queue_equilibrium;
        case "chain oscillates at high gain" test_fluid_chain_oscillates_at_high_gain;
        case "input validation" test_fluid_validation;
        case "critical gain grows with mu" test_critical_gain_ordering;
      ] );
  ]
