open Ffc_topology
open Ffc_core
open Test_util

let signal = Signal.linear_fractional

let test_steady_utilization () =
  (* b_ss = 0.5 with B = C/(1+C): C_ss = 1, rho_ss = 1/2. *)
  check_float ~tol:1e-12 "rho_ss" 0.5 (Steady_state.steady_utilization ~signal ~b_ss:0.5);
  check_float ~tol:1e-12 "rho_ss at 0.75" 0.75
    (Steady_state.steady_utilization ~signal ~b_ss:0.75)

let test_single_gateway_fair () =
  let net = Topologies.single ~mu:2. ~n:4 () in
  let fair = Steady_state.fair ~signal ~b_ss:0.5 ~net in
  (* Capacity 2 * 0.5 = 1, four ways: 0.25 each. *)
  check_vec ~tol:1e-12 "equal split" [| 0.25; 0.25; 0.25; 0.25 |] fair

let test_heterogeneous_parking_lot () =
  let net =
    Network.create
      ~gateways:
        [|
          { Network.gw_name = "g0"; mu = 1.; latency = 0. };
          { Network.gw_name = "g1"; mu = 2.; latency = 0. };
        |]
      ~connections:
        [|
          { Network.conn_name = "long"; path = [ 0; 1 ] };
          { Network.conn_name = "cross0"; path = [ 0 ] };
          { Network.conn_name = "cross1"; path = [ 1 ] };
        |]
  in
  let fair = Steady_state.fair ~signal ~b_ss:0.5 ~net in
  (* Capacities (0.5, 1.0): gw0 binds long and cross0 at 0.25; cross1
     takes the remaining 0.75 at gw1. *)
  check_vec ~tol:1e-12 "max-min allocation" [| 0.25; 0.25; 0.75 |] fair

let test_water_filling_multiple_rounds () =
  (* Three gateways with cascading slack: each round frees capacity
     downstream. *)
  let net =
    Network.create
      ~gateways:
        [|
          { Network.gw_name = "g0"; mu = 1.; latency = 0. };
          { Network.gw_name = "g1"; mu = 4.; latency = 0. };
        |]
      ~connections:
        [|
          { Network.conn_name = "a"; path = [ 0; 1 ] };
          { Network.conn_name = "b"; path = [ 0 ] };
          { Network.conn_name = "c"; path = [ 1 ] };
          { Network.conn_name = "d"; path = [ 1 ] };
        |]
  in
  let fair = Steady_state.max_min_fair ~capacities:[| 1.; 4. |] ~net in
  (* gw0: share 0.5 binds a and b. gw1 then has 3.5 for c and d: 1.75. *)
  check_vec ~tol:1e-12 "two-round filling" [| 0.5; 0.5; 1.75; 1.75 |] fair

let test_fair_is_steady_state_of_individual_feedback () =
  (* The Corollary: the water-filling allocation is the fixed point of the
     TSI individual-feedback map under both disciplines. *)
  let net = Topologies.parking_lot ~hops:3 () in
  let fair = Steady_state.fair ~signal ~b_ss:0.5 ~net in
  List.iter
    (fun config ->
      let c =
        Controller.homogeneous ~config ~adjuster:Scenario.standard_adjuster
          ~n:(Network.num_connections net)
      in
      check_true
        (Congestion.style_name config.Feedback.style ^ " fixed point")
        (Controller.steady_state ~tol:1e-7 c ~net fair))
    [ Feedback.individual_fifo; Feedback.individual_fair_share ]

let test_fair_is_steady_for_aggregate_too () =
  (* Theorem 2(2): the fair allocation is also a steady state (one of
     many) of the aggregate-feedback map. *)
  let net = Topologies.single ~n:5 () in
  let fair = Steady_state.fair ~signal ~b_ss:0.5 ~net in
  let c =
    Controller.homogeneous ~config:Feedback.aggregate_fifo
      ~adjuster:Scenario.standard_adjuster ~n:5
  in
  check_true "aggregate fixed point" (Controller.steady_state ~tol:1e-7 c ~net fair)

let test_scaling_property () =
  (* TSI: scaling mu scales the fair point linearly. *)
  let net = Topologies.parking_lot ~hops:2 () in
  let fair = Steady_state.fair ~signal ~b_ss:0.5 ~net in
  let scaled = Steady_state.fair ~signal ~b_ss:0.5 ~net:(Network.scale_mu net 10.) in
  check_vec ~tol:1e-9 "scales with mu" (Ffc_numerics.Vec.scale 10. fair) scaled

let test_bottleneck_shares () =
  let net = Topologies.single ~mu:4. ~n:2 () in
  check_vec ~tol:1e-12 "capacity mu*rho" [| 2. |]
    (Steady_state.bottleneck_shares ~signal ~b_ss:0.5 ~net)

let test_b_ss_validation () =
  let net = Topologies.single ~n:1 () in
  check_true "b_ss = 0 rejected"
    (try
       ignore (Steady_state.fair ~signal ~b_ss:0. ~net);
       false
     with Invalid_argument _ -> true)

let prop_fair_saturates_bottlenecks =
  (* In the fair allocation, every connection has at least one gateway
     where the full capacity mu*rho_ss is consumed. *)
  prop "fair allocation saturates each connection's bottleneck" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Ffc_numerics.Rng.create seed in
      let net = Topologies.random ~rng ~gateways:4 ~connections:5 ~max_path:3 () in
      let fair = Steady_state.fair ~signal ~b_ss:0.5 ~net in
      let ok = ref true in
      for i = 0 to Network.num_connections net - 1 do
        let has_saturated =
          List.exists
            (fun a ->
              let total =
                List.fold_left
                  (fun acc j -> acc +. fair.(j))
                  0.
                  (Network.connections_at_gateway net a)
              in
              let cap = (Network.gateway net a).Network.mu *. 0.5 in
              total >= cap -. 1e-9)
            (Network.gateways_of_connection net i)
        in
        if not has_saturated then ok := false
      done;
      !ok)

let prop_fair_never_overfills =
  prop "fair allocation never exceeds any capacity" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Ffc_numerics.Rng.create seed in
      let net = Topologies.random ~rng ~gateways:4 ~connections:5 ~max_path:3 () in
      let fair = Steady_state.fair ~signal ~b_ss:0.5 ~net in
      let ok = ref true in
      for a = 0 to Network.num_gateways net - 1 do
        let total =
          List.fold_left (fun acc j -> acc +. fair.(j)) 0.
            (Network.connections_at_gateway net a)
        in
        if total > ((Network.gateway net a).Network.mu *. 0.5) +. 1e-9 then ok := false
      done;
      !ok)

let suites =
  [
    ( "core.steady_state",
      [
        case "steady utilization" test_steady_utilization;
        case "single gateway fair split" test_single_gateway_fair;
        case "heterogeneous parking lot" test_heterogeneous_parking_lot;
        case "multi-round water filling" test_water_filling_multiple_rounds;
        case "fair point is individual-feedback fixed point"
          test_fair_is_steady_state_of_individual_feedback;
        case "fair point is aggregate fixed point" test_fair_is_steady_for_aggregate_too;
        case "TSI scaling" test_scaling_property;
        case "bottleneck shares" test_bottleneck_shares;
        case "b_ss validation" test_b_ss_validation;
        prop_fair_saturates_bottlenecks;
        prop_fair_never_overfills;
      ] );
  ]
