open Ffc_core
open Test_util

let test_aggregate () =
  check_float "total" 6. (Congestion.aggregate [| 1.; 2.; 3. |]);
  check_true "infinity propagates"
    (Congestion.aggregate [| 1.; Float.infinity |] = Float.infinity)

let test_individual_values () =
  let q = [| 1.; 2.; 4. |] in
  (* C_0 = min(1,1)+min(2,1)+min(4,1) = 3 = N*Q_0 (smallest queue). *)
  check_float "smallest: N*Q_i" 3. (Congestion.individual q 0);
  (* C_1 = 1 + 2 + 2 = 5. *)
  check_float "middle" 5. (Congestion.individual q 1);
  (* C_2 = 1 + 2 + 4 = 7 = aggregate (largest queue). *)
  check_float "largest: aggregate" (Congestion.aggregate q) (Congestion.individual q 2)

let test_individual_equal_queues () =
  let q = [| 2.; 2. |] in
  check_float "equal queues give aggregate" 4. (Congestion.individual q 0);
  check_float "same for both" (Congestion.individual q 0) (Congestion.individual q 1)

let test_individual_with_infinite_peer () =
  (* A finite queue is not charged for an infinite neighbour. *)
  let q = [| 0.5; Float.infinity |] in
  check_float "finite connection shielded" 1. (Congestion.individual q 0);
  check_true "infinite connection sees infinity"
    (Congestion.individual q 1 = Float.infinity)

let test_measures_aggregate_uniform () =
  let m = Congestion.measures Congestion.Aggregate [| 1.; 2. |] in
  check_vec "same signal for all" [| 3.; 3. |] m

let test_measures_individual () =
  let m = Congestion.measures Congestion.Individual [| 1.; 2.; 4. |] in
  check_vec "per-connection measures" [| 3.; 5.; 7. |] m

let test_individual_bounds_check () =
  Alcotest.check_raises "index out of bounds"
    (Invalid_argument "Congestion.individual: index out of bounds") (fun () ->
      ignore (Congestion.individual [| 1. |] 5))

let test_style_names () =
  Alcotest.(check string) "aggregate" "aggregate" (Congestion.style_name Congestion.Aggregate);
  Alcotest.(check string) "individual" "individual"
    (Congestion.style_name Congestion.Individual)

let gen_queues = QCheck2.Gen.(array_size (int_range 1 10) (float_range 0. 20.))

let prop_individual_monotone_in_queue_order =
  prop "larger queue receives larger individual measure" gen_queues (fun q ->
      let m = Congestion.measures Congestion.Individual q in
      let ok = ref true in
      Array.iteri
        (fun i qi ->
          Array.iteri (fun j qj -> if qi < qj && m.(i) > m.(j) +. 1e-9 then ok := false) q)
        q;
      !ok)

let prop_individual_below_aggregate =
  prop "individual measure never exceeds the aggregate" gen_queues (fun q ->
      let total = Congestion.aggregate q in
      let m = Congestion.measures Congestion.Individual q in
      Array.for_all (fun c -> c <= total +. 1e-9) m)

let prop_individual_max_equals_aggregate =
  prop "largest-queue connection sees the aggregate" gen_queues (fun q ->
      let m = Congestion.measures Congestion.Individual q in
      let imax = Ffc_numerics.Vec.argmax q in
      Float.abs (m.(imax) -. Congestion.aggregate q) <= 1e-9)

let suites =
  [
    ( "core.congestion",
      [
        case "aggregate" test_aggregate;
        case "individual values" test_individual_values;
        case "equal queues" test_individual_equal_queues;
        case "infinite peer" test_individual_with_infinite_peer;
        case "aggregate measures uniform" test_measures_aggregate_uniform;
        case "individual measures" test_measures_individual;
        case "bounds check" test_individual_bounds_check;
        case "style names" test_style_names;
        prop_individual_monotone_in_queue_order;
        prop_individual_below_aggregate;
        prop_individual_max_equals_aggregate;
      ] );
  ]
