open Ffc_numerics
open Test_util

let test_make_init () =
  check_vec "make" [| 2.; 2.; 2. |] (Vec.make 3 2.);
  check_vec "init" [| 0.; 1.; 4. |] (Vec.init 3 (fun i -> float_of_int (i * i)))

let test_arith () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  check_vec "add" [| 5.; 7.; 9. |] (Vec.add a b);
  check_vec "sub" [| -3.; -3.; -3. |] (Vec.sub a b);
  check_vec "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a);
  check_vec "axpy" [| 6.; 9.; 12. |] (Vec.axpy 2. a b)

let test_dot_sum () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  check_float "dot" 32. (Vec.dot a b);
  check_float "sum" 6. (Vec.sum a);
  check_float "mean" 2. (Vec.mean a)

let test_norms () =
  let v = [| 3.; -4. |] in
  check_float "norm2" 5. (Vec.norm2 v);
  check_float "norm_inf" 4. (Vec.norm_inf v);
  check_float "dist_inf" 7. (Vec.dist_inf v [| -4.; 3. |]);
  check_float "dist2" (sqrt 98.) (Vec.dist2 v [| -4.; 3. |])

let test_extrema () =
  let v = [| 3.; -1.; 7.; 2. |] in
  check_float "max" 7. (Vec.max v);
  check_float "min" (-1.) (Vec.min v);
  Alcotest.(check int) "argmax" 2 (Vec.argmax v);
  Alcotest.(check int) "argmin" 1 (Vec.argmin v)

let test_empty_extrema_raise () =
  Alcotest.check_raises "max on empty" (Invalid_argument "Vec.max: empty vector")
    (fun () -> ignore (Vec.max [||]));
  Alcotest.check_raises "mean on empty" (Invalid_argument "Vec.mean: empty vector")
    (fun () -> ignore (Vec.mean [||]))

let test_clamp () =
  check_vec "clamp_nonneg" [| 0.; 1.; 0. |] (Vec.clamp_nonneg [| -2.; 1.; -0.1 |])

let test_mismatch_raises () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.map2: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add [| 1.; 2. |] [| 1.; 2.; 3. |]))

let test_sorted () =
  check_vec "sorted copy" [| 1.; 2.; 3. |] (Vec.sorted_increasing [| 3.; 1.; 2. |]);
  check_true "is_sorted yes" (Vec.is_sorted_increasing [| 1.; 1.; 2. |]);
  check_false "is_sorted no" (Vec.is_sorted_increasing [| 2.; 1. |])

let test_approx_equal () =
  check_true "within tol" (Vec.approx_equal ~tol:0.01 [| 1. |] [| 1.005 |]);
  check_false "outside tol" (Vec.approx_equal ~tol:0.001 [| 1. |] [| 1.005 |]);
  check_false "dim mismatch" (Vec.approx_equal [| 1. |] [| 1.; 2. |])

let contains_substring s sub =
  let n = String.length sub in
  let found = ref false in
  for i = 0 to String.length s - n do
    if String.sub s i n = sub then found := true
  done;
  !found

let test_pp () =
  let s = Vec.to_string [| 1.5; 2.5 |] in
  check_true "mentions 1.5" (contains_substring s "1.5");
  check_true "mentions 2.5" (contains_substring s "2.5")

let gen_vec = QCheck2.Gen.(array_size (int_range 1 12) (float_range (-100.) 100.))

let prop_add_comm =
  prop "vector addition commutes"
    QCheck2.Gen.(pair gen_vec gen_vec)
    (fun (a, b) ->
      Array.length a <> Array.length b
      || Vec.approx_equal (Vec.add a b) (Vec.add b a))

let prop_norm_triangle =
  prop "triangle inequality"
    QCheck2.Gen.(pair gen_vec gen_vec)
    (fun (a, b) ->
      Array.length a <> Array.length b
      || Vec.norm2 (Vec.add a b) <= Vec.norm2 a +. Vec.norm2 b +. 1e-9)

let prop_clamp_idempotent =
  prop "clamp_nonneg idempotent" gen_vec (fun v ->
      Vec.approx_equal (Vec.clamp_nonneg v) (Vec.clamp_nonneg (Vec.clamp_nonneg v)))

let prop_sorted_is_sorted =
  prop "sorted_increasing sorts" gen_vec (fun v ->
      Vec.is_sorted_increasing (Vec.sorted_increasing v))

let suites =
  [
    ( "numerics.vec",
      [
        case "make/init" test_make_init;
        case "arithmetic" test_arith;
        case "dot/sum/mean" test_dot_sum;
        case "norms" test_norms;
        case "extrema" test_extrema;
        case "empty extrema raise" test_empty_extrema_raise;
        case "clamp" test_clamp;
        case "dimension mismatch" test_mismatch_raises;
        case "sorting" test_sorted;
        case "pretty printing" test_pp;
        prop_add_comm;
        prop_norm_triangle;
        prop_clamp_idempotent;
        prop_sorted_is_sorted;
      ] );
  ]
