open Ffc_numerics
open Test_util

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d identical" i)
      (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_false "different seeds give different streams" (Rng.bits64 a = Rng.bits64 b)

let test_copy_replays () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  check_false "split stream differs" (Rng.bits64 a = Rng.bits64 b)

let test_uniform_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let u = Rng.uniform r in
    check_true "uniform in [0,1)" (u >= 0. && u < 1.)
  done

let test_uniform_mean () =
  let r = Rng.create 5 in
  let acc = Stats.running_create () in
  for _ = 1 to 50_000 do
    Stats.running_add acc (Rng.uniform r)
  done;
  check_float ~tol:0.01 "uniform mean ~ 0.5" 0.5 (Stats.running_mean acc)

let test_uniform_pos_never_zero () =
  let r = Rng.create 11 in
  for _ = 1 to 10_000 do
    check_true "uniform_pos > 0" (Rng.uniform_pos r > 0.)
  done

let test_int_bounds () =
  let r = Rng.create 13 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    check_true "int in [0,7)" (v >= 0 && v < 7)
  done

let test_int_covers_all_values () =
  let r = Rng.create 17 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int r 5) <- true
  done;
  Array.iteri (fun i s -> check_true (Printf.sprintf "value %d seen" i) s) seen

let test_int_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_exponential_mean () =
  let r = Rng.create 19 in
  let acc = Stats.running_create () in
  for _ = 1 to 100_000 do
    Stats.running_add acc (Rng.exponential r ~rate:2.)
  done;
  check_float ~tol:0.01 "exp(2) mean ~ 0.5" 0.5 (Stats.running_mean acc)

let test_exponential_positive () =
  let r = Rng.create 23 in
  for _ = 1 to 10_000 do
    check_true "exponential > 0" (Rng.exponential r ~rate:0.5 > 0.)
  done

let test_poisson_small_mean () =
  let r = Rng.create 29 in
  let acc = Stats.running_create () in
  for _ = 1 to 50_000 do
    Stats.running_add acc (float_of_int (Rng.poisson r ~mean:3.))
  done;
  check_float ~tol:0.05 "poisson(3) mean" 3. (Stats.running_mean acc);
  check_float ~tol:0.1 "poisson(3) variance" 3. (Stats.running_variance acc)

let test_poisson_large_mean () =
  let r = Rng.create 31 in
  let acc = Stats.running_create () in
  for _ = 1 to 20_000 do
    Stats.running_add acc (float_of_int (Rng.poisson r ~mean:100.))
  done;
  check_float_rel ~tol:0.02 "poisson(100) mean" 100. (Stats.running_mean acc)

let test_poisson_zero () =
  let r = Rng.create 37 in
  Alcotest.(check int) "poisson(0) = 0" 0 (Rng.poisson r ~mean:0.)

let test_gaussian_moments () =
  let r = Rng.create 41 in
  let acc = Stats.running_create () in
  for _ = 1 to 100_000 do
    Stats.running_add acc (Rng.gaussian r)
  done;
  check_float ~tol:0.02 "gaussian mean ~ 0" 0. (Stats.running_mean acc);
  check_float ~tol:0.03 "gaussian variance ~ 1" 1. (Stats.running_variance acc)

let test_shuffle_permutes () =
  let r = Rng.create 43 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 20 Fun.id) sorted

let test_choose () =
  let r = Rng.create 47 in
  for _ = 1 to 100 do
    let v = Rng.choose r [| 1; 2; 3 |] in
    check_true "choose picks member" (v >= 1 && v <= 3)
  done

let prop_float_bound =
  prop "float bound respected"
    QCheck2.Gen.(pair (int_range 0 1000) (float_range 0.001 100.))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.float r bound in
      v >= 0. && v < bound)

let suites =
  [
    ( "numerics.rng",
      [
        case "determinism" test_determinism;
        case "seed sensitivity" test_seed_sensitivity;
        case "copy replays" test_copy_replays;
        case "split independence" test_split_independent;
        case "uniform range" test_uniform_range;
        case "uniform mean" test_uniform_mean;
        case "uniform_pos nonzero" test_uniform_pos_never_zero;
        case "int bounds" test_int_bounds;
        case "int coverage" test_int_covers_all_values;
        case "int invalid bound" test_int_invalid;
        case "exponential mean" test_exponential_mean;
        case "exponential positivity" test_exponential_positive;
        case "poisson small mean" test_poisson_small_mean;
        case "poisson large mean" test_poisson_large_mean;
        case "poisson zero mean" test_poisson_zero;
        case "gaussian moments" test_gaussian_moments;
        case "shuffle permutes" test_shuffle_permutes;
        case "choose membership" test_choose;
        prop_float_bound;
      ] );
  ]
