open Ffc_topology
open Ffc_core
open Test_util

let config = Feedback.individual_fifo

let test_equal_rates_fair () =
  let net = Topologies.single ~n:3 () in
  check_true "equal split fair"
    (Fairness.is_fair config ~net ~rates:[| 0.15; 0.15; 0.15 |])

let test_unequal_at_bottleneck_unfair () =
  let net = Topologies.single ~n:2 () in
  (* Both share the only gateway; unequal rates are unfair and the slower
     connection witnesses it. *)
  let rates = [| 0.1; 0.3 |] in
  check_false "unequal rates unfair" (Fairness.is_fair config ~net ~rates);
  match Fairness.unfair_witness config ~net ~rates with
  | Some (i, j, a) ->
    Alcotest.(check int) "victim is slow conn" 0 i;
    Alcotest.(check int) "offender is fast conn" 1 j;
    Alcotest.(check int) "at the shared gateway" 0 a
  | None -> Alcotest.fail "witness expected"

let test_maxmin_allocation_fair_across_gateways () =
  (* The heterogeneous parking lot: cross1 sends 0.75 > long's 0.25, but
     cross1 does not share long's bottleneck signal, so the allocation is
     fair in the paper's sense. *)
  let net =
    Network.create
      ~gateways:
        [|
          { Network.gw_name = "g0"; mu = 1.; latency = 0. };
          { Network.gw_name = "g1"; mu = 2.; latency = 0. };
        |]
      ~connections:
        [|
          { Network.conn_name = "long"; path = [ 0; 1 ] };
          { Network.conn_name = "cross0"; path = [ 0 ] };
          { Network.conn_name = "cross1"; path = [ 1 ] };
        |]
  in
  let rates = [| 0.25; 0.25; 0.75 |] in
  check_true "max-min allocation is fair" (Fairness.is_fair config ~net ~rates)

let test_reversed_allocation_unfair () =
  (* Give the long connection more than its bottleneck peers: unfair. *)
  let net = Topologies.parking_lot ~hops:2 () in
  let rates = [| 0.4; 0.1; 0.1 |] in
  check_false "long over-allocated" (Fairness.is_fair config ~net ~rates)

let test_aggregate_style_fairness_check () =
  (* Fairness predicate also works for aggregate configs: all connections
     at a gateway share one signal, so any bottlenecked gateway requires
     full equality there. *)
  let net = Topologies.single ~n:2 () in
  check_false "unequal unfair under aggregate too"
    (Fairness.is_fair Feedback.aggregate_fifo ~net ~rates:[| 0.1; 0.4 |]);
  check_true "equal fair under aggregate"
    (Fairness.is_fair Feedback.aggregate_fifo ~net ~rates:[| 0.25; 0.25 |])

let test_zero_rates_fair () =
  let net = Topologies.single ~n:2 () in
  check_true "all-zero allocation trivially fair"
    (Fairness.is_fair config ~net ~rates:[| 0.; 0. |])

let test_jain_reexport () =
  check_float "jain passthrough" 1. (Fairness.jain [| 1.; 1. |]);
  check_float "max-min passthrough" 2. (Fairness.max_min_ratio [| 1.; 2. |])

let prop_water_filling_always_fair =
  prop "water-filling allocations satisfy the fairness predicate" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Ffc_numerics.Rng.create seed in
      let net = Topologies.random ~rng ~gateways:4 ~connections:5 ~max_path:3 () in
      let fair =
        Steady_state.fair ~signal:Signal.linear_fractional ~b_ss:0.5 ~net
      in
      Fairness.is_fair ~tol:1e-6 Feedback.individual_fifo ~net ~rates:fair
      && Fairness.is_fair ~tol:1e-6 Feedback.individual_fair_share ~net ~rates:fair)

let suites =
  [
    ( "core.fairness",
      [
        case "equal rates fair" test_equal_rates_fair;
        case "unequal at bottleneck unfair" test_unequal_at_bottleneck_unfair;
        case "max-min across gateways fair" test_maxmin_allocation_fair_across_gateways;
        case "over-allocated long unfair" test_reversed_allocation_unfair;
        case "aggregate-style checks" test_aggregate_style_fairness_check;
        case "zero rates fair" test_zero_rates_fair;
        case "index re-exports" test_jain_reexport;
        prop_water_filling_always_fair;
      ] );
  ]
