open Ffc_numerics
open Test_util

let m22 a b c d = Mat.of_arrays [| [| a; b |]; [| c; d |] |]

let test_create_get_set () =
  let m = Mat.create 2 3 in
  Alcotest.(check int) "rows" 2 (Mat.rows m);
  Alcotest.(check int) "cols" 3 (Mat.cols m);
  check_float "zero init" 0. (Mat.get m 1 2);
  Mat.set m 1 2 5.;
  check_float "set/get" 5. (Mat.get m 1 2)

let test_bounds () =
  let m = Mat.create 2 2 in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Mat.get: index out of bounds")
    (fun () -> ignore (Mat.get m 2 0))

let test_identity_mul () =
  let i3 = Mat.identity 3 in
  let m = Mat.init 3 3 (fun i j -> float_of_int ((i * 3) + j)) in
  check_true "I*m = m" (Mat.approx_equal (Mat.mul i3 m) m);
  check_true "m*I = m" (Mat.approx_equal (Mat.mul m i3) m)

let test_mul_known () =
  let a = m22 1. 2. 3. 4. and b = m22 5. 6. 7. 8. in
  let expected = m22 19. 22. 43. 50. in
  check_true "2x2 product" (Mat.approx_equal (Mat.mul a b) expected)

let test_mul_vec () =
  let a = m22 1. 2. 3. 4. in
  check_vec "matvec" [| 5.; 11. |] (Mat.mul_vec a [| 1.; 2. |])

let test_transpose () =
  let a = Mat.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Mat.transpose a in
  Alcotest.(check int) "transpose rows" 3 (Mat.rows t);
  check_float "t(0,1)" 4. (Mat.get t 0 1);
  check_true "double transpose" (Mat.approx_equal (Mat.transpose t) a)

let test_trace_frobenius () =
  let a = m22 1. 2. 3. 4. in
  check_float "trace" 5. (Mat.trace a);
  check_float "frobenius" (sqrt 30.) (Mat.frobenius_norm a)

let test_solve_known () =
  (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
  let a = m22 2. 1. 1. 3. in
  match Mat.solve a [| 5.; 10. |] with
  | None -> Alcotest.fail "system should be solvable"
  | Some x -> check_vec ~tol:1e-12 "solution" [| 1.; 3. |] x

let test_solve_singular () =
  let a = m22 1. 2. 2. 4. in
  check_true "singular detected" (Mat.solve a [| 1.; 2. |] = None)

let test_det () =
  check_float ~tol:1e-12 "det 2x2" (-2.) (Mat.det (m22 1. 2. 3. 4.));
  check_float ~tol:1e-12 "det singular" 0. (Mat.det (m22 1. 2. 2. 4.));
  check_float ~tol:1e-9 "det identity" 1. (Mat.det (Mat.identity 5))

let test_inverse () =
  let a = m22 4. 7. 2. 6. in
  match Mat.inverse a with
  | None -> Alcotest.fail "invertible matrix"
  | Some inv ->
    check_true "a * a^-1 = I"
      (Mat.approx_equal ~tol:1e-12 (Mat.mul a inv) (Mat.identity 2))

let test_inverse_singular () =
  check_true "singular has no inverse" (Mat.inverse (m22 1. 2. 2. 4.) = None)

let test_triangular_predicates () =
  let lower = m22 1. 0. 5. 2. in
  let upper = m22 1. 5. 0. 2. in
  let full = m22 1. 5. 5. 2. in
  check_true "lower detected" (Mat.is_lower_triangular lower);
  check_false "lower is not upper" (Mat.is_upper_triangular lower);
  check_true "upper detected" (Mat.is_upper_triangular upper);
  check_true "lower is triangular" (Mat.is_triangular lower);
  check_false "full not triangular" (Mat.is_triangular full)

let test_permute () =
  let m = m22 1. 2. 3. 4. in
  let p = Mat.permute_rows_cols m [| 1; 0 |] in
  check_true "permuted" (Mat.approx_equal p (m22 4. 3. 2. 1.))

let test_diagonal () =
  check_vec "diagonal" [| 1.; 4. |] (Mat.diagonal (m22 1. 2. 3. 4.))

let test_lu_reconstruction () =
  let a =
    Mat.of_arrays [| [| 2.; 1.; 1. |]; [| 4.; -6.; 0. |]; [| -2.; 7.; 2. |] |]
  in
  match Mat.lu a with
  | None -> Alcotest.fail "matrix is nonsingular"
  | Some (f, perm, _) ->
    (* Rebuild P*A = L*U from the packed factors. *)
    let n = 3 in
    let l = Mat.identity n and u = Mat.create n n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if j < i then Mat.set l i j (Mat.get f i j) else Mat.set u i j (Mat.get f i j)
      done
    done;
    let pa = Mat.init n n (fun i j -> Mat.get a perm.(i) j) in
    check_true "PA = LU" (Mat.approx_equal ~tol:1e-12 (Mat.mul l u) pa)

let gen_mat n =
  QCheck2.Gen.(
    array_size (pure (n * n)) (float_range (-10.) 10.)
    |> map (fun data -> Mat.init n n (fun i j -> data.((i * n) + j))))

let prop_solve_residual =
  prop "solve gives small residual" ~count:100
    QCheck2.Gen.(pair (gen_mat 4) (array_size (pure 4) (float_range (-10.) 10.)))
    (fun (a, b) ->
      match Mat.solve a b with
      | None -> true (* singular draw *)
      | Some x ->
        let r = Vec.sub (Mat.mul_vec a x) b in
        Vec.norm_inf r <= 1e-6 *. (1. +. Vec.norm_inf b))

let prop_det_product =
  prop "det is multiplicative" ~count:60
    QCheck2.Gen.(pair (gen_mat 3) (gen_mat 3))
    (fun (a, b) ->
      let lhs = Mat.det (Mat.mul a b) and rhs = Mat.det a *. Mat.det b in
      Float.abs (lhs -. rhs) <= 1e-6 *. (1. +. Float.abs rhs))

let prop_transpose_involution =
  prop "transpose involutive" ~count:100 (gen_mat 5) (fun m ->
      Mat.approx_equal (Mat.transpose (Mat.transpose m)) m)

let suites =
  [
    ( "numerics.mat",
      [
        case "create/get/set" test_create_get_set;
        case "bounds checking" test_bounds;
        case "identity multiplication" test_identity_mul;
        case "known product" test_mul_known;
        case "matrix-vector product" test_mul_vec;
        case "transpose" test_transpose;
        case "trace and frobenius" test_trace_frobenius;
        case "solve known system" test_solve_known;
        case "solve singular" test_solve_singular;
        case "determinants" test_det;
        case "inverse" test_inverse;
        case "inverse singular" test_inverse_singular;
        case "triangular predicates" test_triangular_predicates;
        case "permutation" test_permute;
        case "diagonal" test_diagonal;
        case "LU reconstruction" test_lu_reconstruction;
        prop_solve_residual;
        prop_det_product;
        prop_transpose_involution;
      ] );
  ]
