lib/closedloop/closed_loop.mli: Congestion Ffc_core Ffc_numerics Ffc_topology Network Rate_adjust Signal Vec
