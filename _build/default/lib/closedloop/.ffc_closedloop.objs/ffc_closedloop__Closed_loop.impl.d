lib/closedloop/closed_loop.ml: Array Congestion Ffc_core Ffc_desim Ffc_numerics Ffc_topology Float Hashtbl List Measure Network Packet Qdisc Rate_adjust Rng Server Signal Sim Source Stdlib Vec
