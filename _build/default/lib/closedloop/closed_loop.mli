(** Closed-loop flow control over the packet simulator.

    The paper's model computes congestion signals from the {e analytic}
    queue functions and assumes instant equilibration.  This subsystem
    closes the loop the way a real network would: Poisson sources send
    into simulated gateways; every [interval] time units each connection
    reads the congestion signal computed from the {e measured}
    time-average queue lengths of the last window (combined across its
    path, bottleneck-max, exactly as §2.3.1 prescribes) and adjusts its
    rate with its own f(r, b, d), where d is its measured mean end-to-end
    delay.  Fair Share thinning probabilities are recomputed from the
    current rate vector at every update, as an implementation of FS would
    have to.

    This removes the two central idealizations at once (instant
    equilibration and noiseless signals) and lets the paper's
    steady-state predictions be checked against a live system. *)

open Ffc_numerics
open Ffc_topology
open Ffc_core

type discipline = Fifo | Fs_priority | Fair_queueing

type result = {
  times : float array;  (** Update instants. *)
  rates : float array array;  (** [rates.(k)] — rate vector set at update k. *)
  signals : float array array;  (** Combined signals that drove update k. *)
  final_rates : float array;  (** Rates after the last update. *)
  mean_tail_rates : float array;
      (** Per-connection mean of the rates over the last quarter of the
          updates — the "steady" operating point with noise averaged
          out. *)
}

val run :
  net:Network.t ->
  discipline:discipline ->
  style:Congestion.style ->
  signal:Signal.t ->
  adjusters:Rate_adjust.t array ->
  r0:Vec.t ->
  interval:float ->
  updates:int ->
  seed:int ->
  unit ->
  result
(** Runs [updates] control intervals of length [interval].  [r0] gives the
    initial sending rates.  Raises [Invalid_argument] on dimension
    mismatches or non-positive [interval]/[updates]. *)

type drop_result = {
  dr_times : float array;
  dr_rates : float array array;
  dr_mean_tail_rates : float array;
  drop_fraction : float array;
      (** Per-connection drops/emitted over the whole run. *)
  mean_utilization : float;
      (** Delivered total throughput over Σμ across the tail window. *)
}

val run_drop_tail :
  net:Network.t ->
  buffer:int ->
  adjusters:Rate_adjust.t array ->
  r0:Vec.t ->
  interval:float ->
  updates:int ->
  seed:int ->
  unit ->
  drop_result
(** Implicit-feedback flow control in the style of Jacobson's algorithm
    (paper §1): gateways are drop-tail FIFOs with [buffer] slots; no
    explicit signal exists.  Each interval, a connection's congestion
    signal is the {e binary drop indicator} — 1 if any of its packets
    were dropped in the window, else 0 — so pairing this with
    {!Rate_adjust.aimd} reproduces the classic TCP-style control loop.
    Like aggregate feedback, drops signal the aggregate congestion, so
    the paper's fairness/robustness limits for aggregate feedback apply. *)
