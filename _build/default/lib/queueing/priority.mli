(** Preemptive-resume priority M/M/1 queue.

    The substrate for the Fair Share discipline: with exponential service
    at rate μ shared by K priority classes (class 1 highest), the classes
    1..k together behave exactly as an M/M/1 queue at load Λ_k/μ where
    Λ_k is their combined arrival rate — lower classes are invisible to
    higher ones under preemption.  Per-class mean occupancy follows by
    telescoping. *)

val cumulative_in_system : mu:float -> float array -> float array
(** [cumulative_in_system ~mu lambdas] — element [k] is the mean total
    number in system of classes 0..k: g(Λ_k/μ).  [lambdas] are per-class
    arrival rates ordered from highest priority; all must be
    non-negative. *)

val per_class_in_system : mu:float -> float array -> float array
(** Mean number in system of each class alone.  Once the cumulative load
    reaches 1, that class and all lower ones saturate: their value is
    [infinity] when their arrival rate is positive, 0 when it is zero
    (a class with no traffic holds no packets even under saturation). *)

val total_in_system : mu:float -> float array -> float
(** g of the total load. *)
