open Ffc_numerics

let conservation_ok ?(tol = 1e-9) svc ~mu rates =
  let total = Service.total_queue svc ~mu rates in
  let expected = Mm1.g (Vec.sum rates /. mu) in
  if expected = Float.infinity then total = Float.infinity
  else Float.abs (total -. expected) <= tol *. (1. +. expected)

let apply_perm perm v = Array.map (fun i -> v.(i)) perm

let invert_perm perm =
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun pos idx -> inv.(idx) <- pos) perm;
  inv

let symmetric_ok ?(tol = 1e-9) svc ~mu rates =
  let n = Array.length rates in
  if n <= 1 then true
  else begin
    let base = Service.queue_lengths svc ~mu rates in
    let test_perm perm =
      let permuted = apply_perm perm rates in
      let q = Service.queue_lengths svc ~mu permuted in
      (* Undo the permutation and compare, treating infinities as equal. *)
      let q_back = apply_perm (invert_perm perm) q in
      Array.for_all2
        (fun a b ->
          if a = Float.infinity || b = Float.infinity then a = b
          else Float.abs (a -. b) <= tol *. (1. +. Float.abs b))
        q_back base
    in
    let reversal = Array.init n (fun i -> n - 1 - i) in
    let rotation = Array.init n (fun i -> (i + 1) mod n) in
    test_perm reversal && test_perm rotation
  end

let partial_sums_ok ?(tol = 1e-9) svc ~mu rates =
  let n = Array.length rates in
  let q = Service.queue_lengths svc ~mu rates in
  if Array.exists (fun x -> x = Float.infinity) q then true
  else begin
    let ratio i = if rates.(i) > 0. then q.(i) /. rates.(i) else 0. in
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> Float.compare (ratio a) (ratio b)) order;
    let ok = ref true in
    let q_partial = ref 0. and r_partial = ref 0. in
    Array.iter
      (fun idx ->
        q_partial := !q_partial +. q.(idx);
        r_partial := !r_partial +. rates.(idx);
        let bound = Mm1.g (!r_partial /. mu) in
        if bound <> Float.infinity && !q_partial < bound -. (tol *. (1. +. bound)) then
          ok := false)
      order;
    !ok
  end

let monotone_in_own_rate_ok ?dr ?(tol = 1e-7) svc ~mu rates =
  let dr = match dr with Some d -> d | None -> 1e-6 *. mu in
  let q = Service.queue_lengths svc ~mu rates in
  let ok = ref true in
  Array.iteri
    (fun i qi ->
      if qi <> Float.infinity then begin
        let bumped = Array.copy rates in
        bumped.(i) <- bumped.(i) +. dr;
        let q' = Service.queue_lengths svc ~mu bumped in
        if q'.(i) <> Float.infinity && q'.(i) < qi -. tol then ok := false
      end)
    q;
  !ok

let order_consistent_ok ?(tol = 1e-9) svc ~mu rates =
  let q = Service.queue_lengths svc ~mu rates in
  let n = Array.length rates in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if rates.(i) > rates.(j) then begin
        (* Q_i must not be smaller than Q_j (infinite Q_i is fine). *)
        if q.(i) <> Float.infinity && q.(i) < q.(j) -. tol then ok := false
      end
      else if rates.(i) = rates.(j) then
        if
          q.(i) <> q.(j)
          && (q.(i) = Float.infinity || q.(j) = Float.infinity
             || Float.abs (q.(i) -. q.(j)) > tol *. (1. +. Float.abs q.(i)))
        then ok := false
    done
  done;
  !ok

let all_ok svc ~mu rates =
  [
    ("conservation", conservation_ok svc ~mu rates);
    ("symmetry", symmetric_ok svc ~mu rates);
    ("partial-sums", partial_sums_ok svc ~mu rates);
    ("monotone-own-rate", monotone_in_own_rate_ok svc ~mu rates);
    ("order-consistency", order_consistent_ok svc ~mu rates);
  ]
