let g x =
  if x < 0. then invalid_arg "Mm1.g: negative load";
  if x >= 1. then Float.infinity else x /. (1. -. x)

let g_inv y =
  if y < 0. then invalid_arg "Mm1.g_inv: negative value";
  if y = Float.infinity then 1. else y /. (1. +. y)

let check_mu mu = if not (mu > 0.) then invalid_arg "Mm1: mu must be positive"

let utilization ~mu ~rate =
  check_mu mu;
  rate /. mu

let number_in_system ~mu ~rate = g (utilization ~mu ~rate)

let sojourn_time ~mu ~rate =
  check_mu mu;
  if rate >= mu then Float.infinity else 1. /. (mu -. rate)

let queueing_delay ~mu ~rate =
  let s = sojourn_time ~mu ~rate in
  if s = Float.infinity then Float.infinity else s -. (1. /. mu)
