let check ~mu lambdas =
  if not (mu > 0.) then invalid_arg "Priority: mu must be positive";
  Array.iter
    (fun l ->
      if (not (Float.is_finite l)) || l < 0. then
        invalid_arg "Priority: arrival rates must be finite and non-negative")
    lambdas

let cumulative_in_system ~mu lambdas =
  check ~mu lambdas;
  let acc = ref 0. in
  Array.map
    (fun l ->
      acc := !acc +. l;
      Mm1.g (!acc /. mu))
    lambdas

let per_class_in_system ~mu lambdas =
  let cum = cumulative_in_system ~mu lambdas in
  Array.mapi
    (fun k l ->
      let above = if k = 0 then 0. else cum.(k - 1) in
      if cum.(k) = Float.infinity then if l > 0. then Float.infinity else 0.
      else cum.(k) -. above)
    lambdas

let total_in_system ~mu lambdas =
  check ~mu lambdas;
  Mm1.g (Array.fold_left ( +. ) 0. lambdas /. mu)
