open Ffc_numerics

let check ~mu rates =
  if not (mu > 0.) then invalid_arg "Fifo: mu must be positive";
  Array.iter
    (fun r ->
      if (not (Float.is_finite r)) || r < 0. then
        invalid_arg "Fifo: rates must be finite and non-negative")
    rates

let queue_lengths ~mu rates =
  check ~mu rates;
  let rho_tot = Vec.sum rates /. mu in
  if rho_tot >= 1. then
    Array.map (fun r -> if r > 0. then Float.infinity else 0.) rates
  else Array.map (fun r -> r /. mu /. (1. -. rho_tot)) rates

let total_queue ~mu rates =
  check ~mu rates;
  Mm1.g (Vec.sum rates /. mu)

let sojourn_time ~mu rates =
  check ~mu rates;
  let total = Vec.sum rates in
  if total >= mu then Float.infinity else 1. /. (mu -. total)
