open Ffc_numerics

type t = { name : string; queue_lengths : mu:float -> Vec.t -> Vec.t }

let make ~name queue_lengths = { name; queue_lengths }

let fifo = make ~name:"fifo" Fifo.queue_lengths
let fair_share = make ~name:"fair-share" Fair_share.queue_lengths

(* M/M/1-PS has the same mean per-class occupancy as M/M/1-FIFO. *)
let processor_sharing = make ~name:"processor-sharing" Fifo.queue_lengths

let name t = t.name

let queue_lengths t ~mu rates = t.queue_lengths ~mu rates

let total_queue t ~mu rates = Vec.sum (queue_lengths t ~mu rates)

let sojourn_times t ~mu rates =
  let q = queue_lengths t ~mu rates in
  Array.mapi
    (fun i r ->
      if r > 0. then q.(i) /. r
      else begin
        let probe = 1e-9 *. mu in
        let rates' = Array.copy rates in
        rates'.(i) <- probe;
        (queue_lengths t ~mu rates').(i) /. probe
      end)
    rates

let builtin = [ fifo; fair_share ]
