type hop = { mu : float; latency : float; discipline : Service.t }

let hop_sojourn h ~rates i =
  if i < 0 || i >= Array.length rates then
    invalid_arg "Delay.hop_sojourn: index out of bounds";
  (Service.sojourn_times h.discipline ~mu:h.mu rates).(i)

let roundtrip hops =
  List.fold_left
    (fun acc (hop, rates, i) -> acc +. hop.latency +. hop_sojourn hop ~rates i)
    0. hops
