(** The Fair Share (FS) service discipline (paper §2.2, [She89]).

    FS is a preemptive priority discipline built from a rate
    decomposition: with connections labelled so that r_1 ≤ … ≤ r_N, each
    connection contributes rate r_1 to the highest priority level, each
    connection except the first contributes r_2 − r_1 to the next level,
    and so on (the paper's Table 1).  A connection's queue therefore only
    depends on the rates of connections no faster than itself — the
    triangularity that drives Theorem 4 — and stays finite as long as its
    own "fair" cumulative load T_i = Σ_k min(r_k, r_i) is below μ, even
    when the gateway as a whole is overloaded.  That isolation is what
    satisfies the Theorem 5 robustness criterion.

    With T_i = Σ_k min(r_k, r_i) and g(x) = x/(1−x), the mean queues obey
    the recursion (connections sorted by increasing rate)

      Q_i = ( g(T_i/μ) − Σ_{m<i} Q_m ) / (N − i + 1)

    equivalently Q_i = Σ_{j≤i} (g(T_j/μ) − g(T_{j−1}/μ))/(N−j+1). *)

open Ffc_numerics

val fair_cumulative_load : Vec.t -> int -> float
(** [fair_cumulative_load rates i] = T_i = Σ_k min(r_k, r_i), the traffic
    that connection [i] "sees" under FS (its own plus every other
    connection capped at its rate). *)

val queue_lengths : mu:float -> Vec.t -> Vec.t
(** Mean per-connection numbers in system, in the input order (connections
    need not be pre-sorted).  Connection [i]'s queue is [infinity] iff
    T_i ≥ μ and its rate is positive.  Rates must be non-negative and
    finite, [mu] positive. *)

val total_queue : mu:float -> Vec.t -> float
(** Σ Q_i = g(ρ_tot) — by work conservation identical to FIFO's total. *)

val decomposition : Vec.t -> float array array
(** [decomposition rates] is the Table 1 matrix: entry [(i, j)] is the rate
    connection [i] sends at priority level [j] (level 0 is the highest).
    Rows are in the input order, columns in increasing-rate order of the
    distinct priority levels; each row sums to the connection's rate.
    Entries for levels above a connection's rate are 0. *)

val level_rates : Vec.t -> float array
(** The distinct per-level rate increments r_(1), r_(2)−r_(1), … of the
    sorted rate vector (zero increments from tied rates are kept so that
    level indices align with sorted connection indices). *)

val sojourn_times : mu:float -> Vec.t -> Vec.t
(** Mean per-packet time in system per connection, by Little's law
    W_i = Q_i/r_i; connections with zero rate get the limiting value of an
    infinitesimal-rate connection (computed at a vanishing probe rate). *)
