(** M/M/1 queue formulas.

    The paper's gateways are exponential servers fed by Poisson sources, so
    every analytic queue-length expression reduces to the M/M/1 mean-value
    function g(x) = x/(1−x).  Loads at or above 1 yield [infinity] —
    the model's "maximal congestion" limit, which the signal functions map
    to b = 1. *)

val g : float -> float
(** [g x] = x/(1−x) — mean number in system of an M/M/1 queue at load [x];
    [infinity] for [x >= 1.]; [x] must be non-negative. *)

val g_inv : float -> float
(** [g_inv y] = y/(1+y) — the load that produces mean number [y]; maps
    [infinity] to 1. [y] must be non-negative. *)

val number_in_system : mu:float -> rate:float -> float
(** Mean number in system for arrival rate [rate] and service rate [mu]. *)

val sojourn_time : mu:float -> rate:float -> float
(** Mean time in system 1/(μ−λ); [infinity] at or above saturation. *)

val queueing_delay : mu:float -> rate:float -> float
(** Mean waiting time before service: sojourn − 1/μ. *)

val utilization : mu:float -> rate:float -> float
(** λ/μ (may exceed 1 for infeasible inputs). *)
