(** FIFO service discipline (paper §2.2).

    Packets are served in arrival order with no per-connection distinction;
    the classical M/M/1 decomposition gives Q_i(r) = ρ_i/(1−ρ_tot) with
    ρ_i = r_i/μ. *)

open Ffc_numerics

val queue_lengths : mu:float -> Vec.t -> Vec.t
(** [queue_lengths ~mu rates] — mean per-connection numbers in system.
    When total load reaches 1, every connection with positive rate has an
    infinite queue (zero-rate connections keep queue 0).  Rates must be
    non-negative and [mu] positive. *)

val total_queue : mu:float -> Vec.t -> float
(** Aggregate mean number in system g(ρ_tot). *)

val sojourn_time : mu:float -> Vec.t -> float
(** Per-packet mean time in system 1/(μ−Σr) — the same for every
    connection under FIFO; [infinity] at saturation. *)
