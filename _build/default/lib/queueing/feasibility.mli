(** Numeric checks of the paper's feasibility constraints on service
    disciplines (§2.2).

    A realizable, non-stalling discipline must (a) be symmetric in the
    connections, (b) conserve total work: Σ Q_i = g(Σ ρ_i), (c) satisfy
    the partial-sum constraints of [Reg86]: ordering connections by
    increasing Q_i/r_i, the k most-favored connections cannot hold less
    work than they would holding the server alone:
    Σ_{i≤k} Q_i ≥ g(Σ_{i≤k} ρ_i), and (d) be monotone: ∂Q_i/∂r_i ≥ 0 and
    Q_i > Q_j ⟺ r_i > r_j.  These checks back the property-based test
    suite and guard custom disciplines. *)

open Ffc_numerics

val conservation_ok : ?tol:float -> Service.t -> mu:float -> Vec.t -> bool
(** Total queue equals g(ρ_tot) within relative tolerance [tol]
    (default 1e-9). Holds vacuously when both sides are infinite. *)

val symmetric_ok : ?tol:float -> Service.t -> mu:float -> Vec.t -> bool
(** Q commutes with a deterministic set of test permutations (reversal and
    a rotation) of the rate vector. *)

val partial_sums_ok : ?tol:float -> Service.t -> mu:float -> Vec.t -> bool
(** The Regnier partial-sum lower bounds, connections ordered by
    increasing Q_i/r_i (zero-rate connections first, ratio 0 by
    convention since they hold no work). *)

val monotone_in_own_rate_ok :
  ?dr:float -> ?tol:float -> Service.t -> mu:float -> Vec.t -> bool
(** ∂Q_i/∂r_i ≥ −[tol] for every i, by forward differences of width [dr]
    (default 1e-6·μ), skipping connections whose queue is infinite. *)

val order_consistent_ok : ?tol:float -> Service.t -> mu:float -> Vec.t -> bool
(** r_i > r_j implies Q_i ≥ Q_j (within [tol]) and r_i = r_j implies
    Q_i = Q_j. *)

val all_ok : Service.t -> mu:float -> Vec.t -> (string * bool) list
(** Every check by name, for reporting. *)
