(** Round-trip delay assembly (paper §2.1, §2.3.2).

    A connection's average round-trip delay d_i is the sum, over the
    gateways on its path, of the per-gateway sojourn time (queueing plus
    service, Q^a_i/r_i by Little's law) plus the propagation latencies of
    the lines.  Only the non-TSI rate-adjustment algorithms (the DECbit
    window form of §4) actually read d_i, but the model always carries
    it. *)

open Ffc_numerics

type hop = { mu : float; latency : float; discipline : Service.t }
(** One gateway on a path: service rate, line latency, and the service
    discipline in force. *)

val hop_sojourn : hop -> rates:Vec.t -> int -> float
(** [hop_sojourn h ~rates i] — mean sojourn of connection [i]'s packets at
    this hop given the rates of all connections through it. *)

val roundtrip : (hop * Vec.t * int) list -> float
(** Total delay over a path: Σ (latency + sojourn) per hop, where each
    element carries the hop, the rate vector of connections at that hop,
    and the index of the connection of interest within that vector. *)
