lib/queueing/priority.mli:
