lib/queueing/delay.mli: Ffc_numerics Service Vec
