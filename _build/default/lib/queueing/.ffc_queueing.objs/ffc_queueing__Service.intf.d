lib/queueing/service.mli: Ffc_numerics Vec
