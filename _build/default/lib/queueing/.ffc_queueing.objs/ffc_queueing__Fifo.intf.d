lib/queueing/fifo.mli: Ffc_numerics Vec
