lib/queueing/weighted_fair_share.mli: Ffc_numerics Service Vec
