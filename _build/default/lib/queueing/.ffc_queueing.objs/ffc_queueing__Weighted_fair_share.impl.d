lib/queueing/weighted_fair_share.ml: Array Ffc_numerics Float Fun Mm1 Printf Service Vec
