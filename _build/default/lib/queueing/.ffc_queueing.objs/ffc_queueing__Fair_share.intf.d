lib/queueing/fair_share.mli: Ffc_numerics Vec
