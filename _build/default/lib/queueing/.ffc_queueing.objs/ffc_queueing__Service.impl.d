lib/queueing/service.ml: Array Fair_share Ffc_numerics Fifo Vec
