lib/queueing/priority.ml: Array Float Mm1
