lib/queueing/fifo.ml: Array Ffc_numerics Float Mm1 Vec
