lib/queueing/feasibility.mli: Ffc_numerics Service Vec
