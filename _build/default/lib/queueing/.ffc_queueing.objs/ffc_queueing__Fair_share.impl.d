lib/queueing/fair_share.ml: Array Ffc_numerics Float Fun Mm1 Vec
