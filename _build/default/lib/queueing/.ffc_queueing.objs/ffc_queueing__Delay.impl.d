lib/queueing/delay.ml: Array List Service
