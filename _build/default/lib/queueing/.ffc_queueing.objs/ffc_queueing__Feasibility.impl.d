lib/queueing/feasibility.ml: Array Ffc_numerics Float Fun Mm1 Service Vec
