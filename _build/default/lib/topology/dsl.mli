(** A small textual topology description language.

    Grammar (one declaration per line; [#] starts a comment; blank lines
    ignored):

    {v
    gateway <name> mu=<float> [latency=<float>]
    connection <name> path=<gw>[,<gw>...]
    v}

    Gateways must be declared before the connections that reference them.
    Example:

    {v
    # two-hop parking lot
    gateway g0 mu=1.0 latency=0.1
    gateway g1 mu=1.0
    connection long path=g0,g1
    connection cross0 path=g0
    connection cross1 path=g1
    v} *)

type error = { line : int; message : string }

val parse : string -> (Network.t, error) result
(** Parses a full document. The first error is reported with its
    1-based line number. *)

val parse_exn : string -> Network.t
(** Like {!parse} but raises [Failure] with a formatted message. *)

val to_string : Network.t -> string
(** Renders a network back to the DSL; [parse] of the result yields an
    equivalent network. *)
