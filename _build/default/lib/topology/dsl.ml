type error = { line : int; message : string }

let split_whitespace s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun tok -> tok <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_float_field ~line ~field value =
  match float_of_string_opt value with
  | Some f -> Ok f
  | None -> Error { line; message = Printf.sprintf "invalid %s value %S" field value }

let parse_kv ~line tok =
  match String.index_opt tok '=' with
  | None -> Error { line; message = Printf.sprintf "expected key=value, got %S" tok }
  | Some i ->
    Ok (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))

type decl =
  | Gateway of Network.gateway
  | Connection of string * string list  (** name, gateway names. *)

let parse_line ~line tokens =
  match tokens with
  | [] -> Ok None
  | "gateway" :: name :: fields ->
    let mu = ref None and latency = ref 0. in
    let rec go = function
      | [] -> (
        match !mu with
        | None -> Error { line; message = "gateway requires mu=<float>" }
        | Some m ->
          Ok (Some (Gateway { Network.gw_name = name; mu = m; latency = !latency })))
      | tok :: rest -> (
        match parse_kv ~line tok with
        | Error e -> Error e
        | Ok ("mu", v) -> (
          match parse_float_field ~line ~field:"mu" v with
          | Error e -> Error e
          | Ok f ->
            mu := Some f;
            go rest)
        | Ok ("latency", v) -> (
          match parse_float_field ~line ~field:"latency" v with
          | Error e -> Error e
          | Ok f ->
            latency := f;
            go rest)
        | Ok (k, _) -> Error { line; message = Printf.sprintf "unknown gateway field %S" k })
    in
    go fields
  | "connection" :: name :: fields -> (
    match fields with
    | [ tok ] -> (
      match parse_kv ~line tok with
      | Error e -> Error e
      | Ok ("path", v) ->
        let gws = String.split_on_char ',' v |> List.filter (fun s -> s <> "") in
        if gws = [] then Error { line; message = "connection path is empty" }
        else Ok (Some (Connection (name, gws)))
      | Ok (k, _) ->
        Error { line; message = Printf.sprintf "unknown connection field %S" k })
    | _ -> Error { line; message = "connection requires exactly path=<gw,...>" })
  | "gateway" :: [] -> Error { line; message = "gateway requires a name" }
  | "connection" :: [] -> Error { line; message = "connection requires a name" }
  | kw :: _ -> Error { line; message = Printf.sprintf "unknown declaration %S" kw }

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go line_no gateways connections = function
    | [] -> Ok (List.rev gateways, List.rev connections)
    | line :: rest -> (
      let tokens = split_whitespace (strip_comment line) in
      match parse_line ~line:line_no tokens with
      | Error e -> Error e
      | Ok None -> go (line_no + 1) gateways connections rest
      | Ok (Some (Gateway g)) -> go (line_no + 1) (g :: gateways) connections rest
      | Ok (Some (Connection (name, path))) ->
        go (line_no + 1) gateways ((line_no, name, path) :: connections) rest)
  in
  match go 1 [] [] lines with
  | Error e -> Error e
  | Ok (gateways, connections) -> (
    let gw_arr = Array.of_list gateways in
    let index_of name =
      let found = ref (-1) in
      Array.iteri (fun i g -> if g.Network.gw_name = name then found := i) gw_arr;
      !found
    in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | (line, name, path) :: rest -> (
        let rec resolve_path racc = function
          | [] -> Ok (List.rev racc)
          | g :: grest -> (
            match index_of g with
            | -1 -> Error { line; message = Printf.sprintf "unknown gateway %S" g }
            | i -> resolve_path (i :: racc) grest)
        in
        match resolve_path [] path with
        | Error e -> Error e
        | Ok idxs -> resolve ({ Network.conn_name = name; path = idxs } :: acc) rest)
    in
    match resolve [] connections with
    | Error e -> Error e
    | Ok conns -> (
      if Array.length gw_arr = 0 then Error { line = 1; message = "no gateways declared" }
      else
        try Ok (Network.create ~gateways:gw_arr ~connections:(Array.of_list conns))
        with Invalid_argument msg -> Error { line = 0; message = msg }))

let parse_exn text =
  match parse text with
  | Ok net -> net
  | Error { line; message } -> failwith (Printf.sprintf "line %d: %s" line message)

let to_string net =
  let buf = Buffer.create 256 in
  for a = 0 to Network.num_gateways net - 1 do
    let g = Network.gateway net a in
    Buffer.add_string buf
      (Printf.sprintf "gateway %s mu=%.17g latency=%.17g\n" g.Network.gw_name
         g.Network.mu g.Network.latency)
  done;
  for i = 0 to Network.num_connections net - 1 do
    let c = Network.connection net i in
    let names =
      List.map (fun a -> (Network.gateway net a).Network.gw_name) c.Network.path
    in
    Buffer.add_string buf
      (Printf.sprintf "connection %s path=%s\n" c.Network.conn_name
         (String.concat "," names))
  done;
  Buffer.contents buf
