lib/topology/topologies.ml: Array Ffc_numerics Fun List Network Printf Rng Stdlib
