lib/topology/topologies.mli: Ffc_numerics Network
