lib/topology/dsl.ml: Array Buffer List Network Printf String
