lib/topology/dsl.mli: Network
