lib/topology/network.ml: Array Format Hashtbl List Printf
