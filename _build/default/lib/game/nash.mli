(** The gateway game: greedy sources best-responding through a service
    discipline ([She89]).

    Each of N connections at a shared gateway picks its own sending rate
    to maximize a utility over (throughput, mean sojourn), taking the
    other rates as given.  The service discipline decides how much of the
    congestion a source causes lands back on itself: under FIFO delay is
    common property (a tragedy of the commons), under Fair Share a
    source's delay is driven by its own fair load (greed is
    internalized).  This module computes best responses, iterates them to
    a Nash equilibrium, and scores outcomes against the social optimum —
    the game-theoretic backdrop for the paper's claim that gateway
    disciplines are crucial. *)

open Ffc_numerics
open Ffc_queueing

val sojourn : Service.t -> mu:float -> rates:Vec.t -> int -> float
(** Mean per-packet sojourn of connection [i] (Q_i/r_i with the
    zero-rate probe limit). *)

val payoff : Service.t -> Utility.t -> mu:float -> rates:Vec.t -> int -> float
(** Connection [i]'s utility at the profile [rates]. *)

val best_response :
  ?grid:int -> Service.t -> Utility.t -> mu:float -> rates:Vec.t -> int -> float
(** The rate in [0, μ] maximizing [i]'s utility with all other rates
    fixed.  Found by a [grid]-point scan (default 400) refined by
    golden-section search around the best cell — robust to the kinks and
    plateaus of the disciplines' delay functions. *)

type outcome =
  | Equilibrium of { rates : Vec.t; rounds : int }
  | No_convergence of Vec.t

val solve :
  ?tol:float -> ?max_rounds:int -> Service.t -> Utility.t -> mu:float ->
  n:int -> r0:Vec.t -> outcome
(** Round-robin iterated best response from [r0] until no rate moves by
    more than [tol] (default 1e-6) in a full round. *)

val is_equilibrium :
  ?tol:float -> Service.t -> Utility.t -> mu:float -> rates:Vec.t -> bool
(** No connection can gain more than [tol] (default 1e-6) by deviating to
    its best response. *)

val welfare : Service.t -> Utility.t -> mu:float -> rates:Vec.t -> float
(** Σ_i U_i — the social objective. *)

val symmetric_optimum :
  ?grid:int -> Service.t -> Utility.t -> mu:float -> n:int -> float * float
(** [(r, welfare)] — the common rate maximizing welfare over symmetric
    profiles (the relevant benchmark: both disciplines treat equal rates
    identically). *)
