type t = { name : string; f : rate:float -> delay:float -> float }

let name t = t.name

let eval t ~rate ~delay =
  if rate < 0. then invalid_arg "Utility.eval: negative rate";
  if rate = 0. then 0.
  else if delay = Float.infinity then Float.neg_infinity
  else t.f ~rate ~delay

let make ~name f = { name; f }

let linear ~delay_cost =
  if not (delay_cost > 0.) then invalid_arg "Utility.linear: delay_cost must be positive";
  make
    ~name:(Printf.sprintf "r - %g*W" delay_cost)
    (fun ~rate ~delay -> rate -. (delay_cost *. delay))

let log_throughput ~delay_cost =
  if not (delay_cost > 0.) then
    invalid_arg "Utility.log_throughput: delay_cost must be positive";
  make
    ~name:(Printf.sprintf "log(1+r) - %g*W" delay_cost)
    (fun ~rate ~delay -> log (1. +. rate) -. (delay_cost *. delay))
