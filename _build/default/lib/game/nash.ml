open Ffc_numerics
open Ffc_queueing

let sojourn svc ~mu ~rates i = (Service.sojourn_times svc ~mu rates).(i)

let payoff svc utility ~mu ~rates i =
  if rates.(i) = 0. then 0.
  else begin
    let q = (Service.queue_lengths svc ~mu rates).(i) in
    let delay = if q = Float.infinity then Float.infinity else q /. rates.(i) in
    Utility.eval utility ~rate:rates.(i) ~delay
  end

(* Golden-section maximization of a unimodal-ish function on [lo, hi]. *)
let golden_max f ~lo ~hi =
  let phi = (sqrt 5. -. 1.) /. 2. in
  let a = ref lo and b = ref hi in
  let x1 = ref (!b -. (phi *. (!b -. !a))) in
  let x2 = ref (!a +. (phi *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  for _ = 1 to 60 do
    if !f1 >= !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (phi *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (phi *. (!b -. !a));
      f2 := f !x2
    end
  done;
  let x = 0.5 *. (!a +. !b) in
  (x, f x)

let best_response ?(grid = 400) svc utility ~mu ~rates i =
  if i < 0 || i >= Array.length rates then
    invalid_arg "Nash.best_response: index out of bounds";
  let trial = Array.copy rates in
  let value r =
    trial.(i) <- r;
    payoff svc utility ~mu ~rates:trial i
  in
  (* Coarse scan over [0, mu]. *)
  let best_r = ref 0. and best_v = ref (value 0.) in
  for k = 1 to grid do
    let r = mu *. float_of_int k /. float_of_int grid in
    let v = value r in
    if v > !best_v then begin
      best_v := v;
      best_r := r
    end
  done;
  (* Local refinement around the best cell. *)
  let cell = mu /. float_of_int grid in
  let lo = Float.max 0. (!best_r -. cell) and hi = Float.min mu (!best_r +. cell) in
  let refined_r, refined_v = golden_max value ~lo ~hi in
  let result = if refined_v > !best_v then refined_r else !best_r in
  trial.(i) <- rates.(i);
  result

type outcome = Equilibrium of { rates : Vec.t; rounds : int } | No_convergence of Vec.t

let solve ?(tol = 1e-6) ?(max_rounds = 200) svc utility ~mu ~n ~r0 =
  if Array.length r0 <> n then invalid_arg "Nash.solve: r0 length mismatch";
  let rates = Array.copy r0 in
  let result = ref None in
  let round = ref 0 in
  while !result = None && !round < max_rounds do
    incr round;
    let moved = ref 0. in
    for i = 0 to n - 1 do
      let br = best_response svc utility ~mu ~rates i in
      moved := Float.max !moved (Float.abs (br -. rates.(i)));
      rates.(i) <- br
    done;
    if !moved <= tol then result := Some (Equilibrium { rates = Array.copy rates; rounds = !round })
  done;
  match !result with Some e -> e | None -> No_convergence (Array.copy rates)

let is_equilibrium ?(tol = 1e-6) svc utility ~mu ~rates =
  let ok = ref true in
  Array.iteri
    (fun i _ ->
      let current = payoff svc utility ~mu ~rates i in
      let br = best_response svc utility ~mu ~rates i in
      let trial = Array.copy rates in
      trial.(i) <- br;
      let best = payoff svc utility ~mu ~rates:trial i in
      if best > current +. tol then ok := false)
    rates;
  !ok

let welfare svc utility ~mu ~rates =
  let acc = ref 0. in
  Array.iteri (fun i _ -> acc := !acc +. payoff svc utility ~mu ~rates i) rates;
  !acc

let symmetric_optimum ?(grid = 400) svc utility ~mu ~n =
  if n <= 0 then invalid_arg "Nash.symmetric_optimum: n must be positive";
  let value r =
    let rates = Array.make n r in
    welfare svc utility ~mu ~rates
  in
  let per_conn_cap = mu /. float_of_int n in
  let best_r = ref 0. and best_v = ref (value 0.) in
  for k = 1 to grid do
    let r = per_conn_cap *. float_of_int k /. float_of_int grid in
    let v = value r in
    if v > !best_v then begin
      best_v := v;
      best_r := r
    end
  done;
  let cell = per_conn_cap /. float_of_int grid in
  let lo = Float.max 0. (!best_r -. cell) in
  let hi = Float.min per_conn_cap (!best_r +. cell) in
  let refined_r, refined_v = golden_max value ~lo ~hi in
  if refined_v > !best_v then (refined_r, refined_v) else (!best_r, !best_v)
