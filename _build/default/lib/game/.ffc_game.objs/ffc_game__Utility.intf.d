lib/game/utility.mli:
