lib/game/nash.ml: Array Ffc_numerics Ffc_queueing Float Service Utility Vec
