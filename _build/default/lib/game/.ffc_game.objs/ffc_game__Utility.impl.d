lib/game/utility.ml: Float Printf
