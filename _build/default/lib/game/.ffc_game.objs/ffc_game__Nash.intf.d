lib/game/nash.mli: Ffc_numerics Ffc_queueing Service Utility Vec
