(** Source utility functions for the gateway game ([She89], the companion
    paper the Fair Share discipline comes from).

    A greedy source cares about its throughput and suffers from its
    per-packet delay; a utility function scores a (rate, delay) pair.
    Utilities are increasing in rate and decreasing in delay, with
    [neg_infinity] at infinite delay (an overloaded gateway is worthless
    to everyone). *)

type t

val name : t -> string

val eval : t -> rate:float -> delay:float -> float
(** Utility of sending at [rate] with mean per-packet sojourn [delay].
    [delay = infinity] yields [neg_infinity] whenever the rate is
    positive; a silent source (rate 0) has utility 0 by normalization. *)

val linear : delay_cost:float -> t
(** U = r − c·W — throughput valued linearly, delay charged linearly.
    [delay_cost > 0]. *)

val log_throughput : delay_cost:float -> t
(** U = log(1 + r) − c·W — diminishing returns on throughput. *)

val make : name:string -> (rate:float -> delay:float -> float) -> t
