open Ffc_numerics
open Ffc_topology

type outcome = Settled of Vec.t | Oscillating of { amplitude : float }

type result = {
  times : float array;
  rates : float array array;
  total_queue : float array;
  outcome : outcome;
}

(* State layout: [r_0 .. r_{n-1}] followed by, for each gateway in index
   order, its local queue vector (in Γ(a) order). *)
type layout = {
  n : int;
  n_gws : int;
  gw_offset : int array;  (** Offset of gateway a's queue block. *)
  gw_conns : int array array;  (** Γ(a) as arrays. *)
  first_hop : int array;  (** First gateway of each connection. *)
  prev_hop : (int * int) option array array;
      (** For each gateway a and local position k: the (gateway, local
          position) of the previous hop of that connection, if any. *)
  dim : int;
}

let build_layout net =
  let n = Network.num_connections net in
  let n_gws = Network.num_gateways net in
  let gw_conns =
    Array.init n_gws (fun a -> Array.of_list (Network.connections_at_gateway net a))
  in
  let gw_offset = Array.make n_gws 0 in
  let dim = ref n in
  for a = 0 to n_gws - 1 do
    gw_offset.(a) <- !dim;
    dim := !dim + Array.length gw_conns.(a)
  done;
  let first_hop =
    Array.init n (fun i ->
        match Network.gateways_of_connection net i with
        | a :: _ -> a
        | [] -> assert false)
  in
  let prev_hop =
    Array.init n_gws (fun a ->
        Array.map
          (fun i ->
            let path = Network.gateways_of_connection net i in
            let rec find = function
              | p :: a' :: _ when a' = a -> Some (p, Network.local_index net ~conn:i ~gw:p)
              | _ :: rest -> find rest
              | [] -> None
            in
            find path)
          gw_conns.(a))
  in
  { n; n_gws; gw_offset; gw_conns; first_hop; prev_hop; dim = !dim }

let run ?(dt = 0.01) ?(t_end = 2000.) ~config ~net ~adjusters ~gain ~r0 () =
  let lay = build_layout net in
  if Array.length adjusters <> lay.n then
    invalid_arg "Transient.run: adjuster count mismatch";
  if Array.length r0 <> lay.n then invalid_arg "Transient.run: r0 length mismatch";
  if not (gain > 0.) then invalid_arg "Transient.run: gain must be positive";
  let mu = Array.init lay.n_gws (fun a -> (Network.gateway net a).Network.mu) in
  let latency = Array.init lay.n_gws (fun a -> (Network.gateway net a).Network.latency) in
  let eps = 1e-9 in
  let derivative ~t:_ y =
    let dy = Array.make lay.dim 0. in
    (* Fluid departures per gateway. *)
    let departures =
      Array.init lay.n_gws (fun a ->
          let len = Array.length lay.gw_conns.(a) in
          let base = lay.gw_offset.(a) in
          let q_tot = ref 0. in
          for k = 0 to len - 1 do
            q_tot := !q_tot +. Float.max 0. y.(base + k)
          done;
          Array.init len (fun k ->
              mu.(a) *. Float.max 0. y.(base + k) /. (!q_tot +. 1.)))
    in
    (* Queue dynamics. *)
    for a = 0 to lay.n_gws - 1 do
      let base = lay.gw_offset.(a) in
      Array.iteri
        (fun k i ->
          let arrival =
            match lay.prev_hop.(a).(k) with
            | Some (p, kp) -> departures.(p).(kp)
            | None -> if lay.first_hop.(i) = a then Float.max 0. y.(i) else 0.
          in
          dy.(base + k) <- arrival -. departures.(a).(k))
        lay.gw_conns.(a)
    done;
    (* Signals from the instantaneous queues. *)
    let b = Array.make lay.n 0. in
    let d = Array.make lay.n 0. in
    for a = 0 to lay.n_gws - 1 do
      let base = lay.gw_offset.(a) in
      let len = Array.length lay.gw_conns.(a) in
      let q = Array.init len (fun k -> Float.max 0. y.(base + k)) in
      let measures = Congestion.measures config.Feedback.style q in
      Array.iteri
        (fun k i ->
          b.(i) <- Float.max b.(i) (Signal.eval config.Feedback.signal measures.(k));
          d.(i) <- d.(i) +. latency.(a) +. (q.(k) /. Float.max eps y.(i)))
        lay.gw_conns.(a)
    done;
    (* Rate dynamics. *)
    for i = 0 to lay.n - 1 do
      let r = Float.max 0. y.(i) in
      dy.(i) <- gain *. Rate_adjust.eval adjusters.(i) ~r ~b:b.(i) ~d:d.(i)
    done;
    dy
  in
  let clamp y = Array.map (fun x -> Float.max 0. x) y in
  let y0 = Array.append (Array.copy r0) (Array.make (lay.dim - lay.n) 0.) in
  let trajectory = Ode.integrate ~post:clamp ~f:derivative ~t0:0. ~t1:t_end ~dt y0 in
  (* Downsample to at most ~2000 samples for the result arrays. *)
  let stride = Stdlib.max 1 (Array.length trajectory / 2000) in
  let sampled =
    Array.of_list
      (List.filteri
         (fun k _ -> k mod stride = 0 || k = Array.length trajectory - 1)
         (Array.to_list trajectory))
  in
  let times = Array.map fst sampled in
  let rates = Array.map (fun (_, y) -> Array.sub y 0 lay.n) sampled in
  (* Report the fluid mass of the most loaded gateway per sample. *)
  let total_queue =
    Array.map
      (fun (_, y) ->
        let best = ref 0. in
        for a = 0 to lay.n_gws - 1 do
          let base = lay.gw_offset.(a) in
          let len = Array.length lay.gw_conns.(a) in
          let q = ref 0. in
          for k = 0 to len - 1 do
            q := !q +. y.(base + k)
          done;
          best := Float.max !best !q
        done;
        !best)
      sampled
  in
  (* Settle test over the last 10% of samples. *)
  let tail_start = Array.length rates * 9 / 10 in
  let amplitude = ref 0. and scale = ref 0. in
  for i = 0 to lay.n - 1 do
    let lo = ref Float.infinity and hi = ref Float.neg_infinity in
    for k = tail_start to Array.length rates - 1 do
      lo := Float.min !lo rates.(k).(i);
      hi := Float.max !hi rates.(k).(i)
    done;
    amplitude := Float.max !amplitude (!hi -. !lo);
    scale := Float.max !scale !hi
  done;
  let outcome =
    if !amplitude <= 1e-3 *. (1. +. !scale) then
      Settled rates.(Array.length rates - 1)
    else Oscillating { amplitude = !amplitude }
  in
  { times; rates; total_queue; outcome }

let critical_gain ?(lo = 0.01) ?(hi = 10.) ?(ratio = 1.02) ?dt ?t_end ~config ~net
    ~adjusters ~r0 () =
  if not (ratio > 1.) then invalid_arg "Transient.critical_gain: ratio must be > 1";
  let settles gain =
    match (run ?dt ?t_end ~config ~net ~adjusters ~gain ~r0 ()).outcome with
    | Settled _ -> true
    | Oscillating _ -> false
  in
  if not (settles lo) then lo
  else if settles hi then hi
  else begin
    let lo = ref lo and hi = ref hi in
    while !hi /. !lo > ratio do
      let mid = sqrt (!lo *. !hi) in
      if settles mid then lo := mid else hi := mid
    done;
    !lo
  end
