type t = {
  name : string;
  eval : float -> float;
  inverse : float -> float;
}

let name t = t.name

let eval t c =
  if Float.is_nan c || c < 0. then invalid_arg "Signal.eval: congestion must be >= 0";
  if c = Float.infinity then 1. else Float.min 1. (Float.max 0. (t.eval c))

let inverse t s =
  if not (s >= 0. && s <= 1.) then invalid_arg "Signal.inverse: signal outside [0,1]";
  if s = 1. then Float.infinity else Float.max 0. (t.inverse s)

let make ~name ~eval ~inverse = { name; eval; inverse }

let linear_fractional =
  make ~name:"C/(1+C)"
    ~eval:(fun c -> c /. (1. +. c))
    ~inverse:(fun s -> s /. (1. -. s))

let scaled k =
  if not (k > 0.) then invalid_arg "Signal.scaled: k must be positive";
  make
    ~name:(Printf.sprintf "C/(%g+C)" k)
    ~eval:(fun c -> c /. (k +. c))
    ~inverse:(fun s -> k *. s /. (1. -. s))

let power p =
  if not (p >= 1.) then invalid_arg "Signal.power: p must be >= 1";
  make
    ~name:(Printf.sprintf "(C/(1+C))^%g" p)
    ~eval:(fun c -> (c /. (1. +. c)) ** p)
    ~inverse:(fun s ->
      let root = s ** (1. /. p) in
      root /. (1. -. root))

let exponential k =
  if not (k > 0.) then invalid_arg "Signal.exponential: k must be positive";
  make
    ~name:(Printf.sprintf "1-exp(-%gC)" k)
    ~eval:(fun c -> 1. -. exp (-.k *. c))
    ~inverse:(fun s -> -.log (1. -. s) /. k)

let binary threshold =
  if not (threshold > 0.) then invalid_arg "Signal.binary: threshold must be positive";
  make
    ~name:(Printf.sprintf "binary(C>=%g)" threshold)
    ~eval:(fun c -> if c >= threshold then 1. else 0.)
    ~inverse:(fun s -> if s = 0. then 0. else threshold)

let check ?(samples = 64) t =
  let ok = ref true in
  if Float.abs (eval t 0.) > 1e-12 then ok := false;
  if eval t Float.infinity <> 1. then ok := false;
  (* Monotonicity on a log-spaced grid; strictness is only required while
     the signal has not yet saturated to 1 in floating point. *)
  let prev = ref (eval t 0.) in
  for k = 0 to samples - 1 do
    let c = 10. ** (-3. +. (6. *. float_of_int k /. float_of_int (samples - 1))) in
    let v = eval t c in
    if v < !prev then ok := false;
    if v <= !prev && v < 1. -. 1e-9 then ok := false;
    prev := v
  done;
  (* Inverse consistency at interior points. *)
  List.iter
    (fun s ->
      let c = inverse t s in
      if Float.abs (eval t c -. s) > 1e-6 then ok := false)
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ];
  !ok
