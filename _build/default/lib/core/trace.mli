(** CSV export of trajectories and series.

    The ASCII plots are for the terminal; this writes the same data in a
    form external tools can plot.  Deliberately minimal: comma-separated,
    one header row, floats printed with round-trip precision. *)

open Ffc_numerics

val csv_of_trajectory : ?names:string array -> Vec.t array -> string
(** [csv_of_trajectory traj] renders one row per step with a leading
    [step] column; [names] (default [r0], [r1], …) label the remaining
    columns.  All states must share the dimension of the first. *)

val csv_of_series : name:string -> float array -> string
(** Two columns: [step, name]. *)

val write_file : path:string -> string -> unit
(** Writes the string to [path] (truncating). *)
