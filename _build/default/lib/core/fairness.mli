(** The paper's fairness notion (§2.4.2).

    A steady state is fair when, at every gateway that is a bottleneck
    for connection i (one achieving its maximal signal b_i), no
    connection through that gateway sends faster than i.  Equivalently:
    throughput is allocated evenly among the connections for whom the
    gateway is a bottleneck. *)

open Ffc_numerics
open Ffc_topology

val is_fair :
  ?tol:float -> Feedback.config -> net:Network.t -> rates:Vec.t -> bool
(** The bottleneck-fairness predicate at rate vector [rates] (not
    necessarily a steady state). [tol] (default 1e-6) is the relative
    slack allowed on rate comparisons. *)

val unfair_witness :
  ?tol:float -> Feedback.config -> net:Network.t -> rates:Vec.t ->
  (int * int * int) option
(** [Some (i, j, a)] — gateway [a] is a bottleneck for [i], yet [j]
    through [a] sends more than [i]; [None] when fair. *)

val jain : Vec.t -> float
(** Jain's index of the allocation (re-exported for convenience). *)

val max_min_ratio : Vec.t -> float
