(** Congestion measures at a gateway (paper §2.3.1).

    Given the vector of per-connection mean queue lengths Q^a at a
    gateway, the {e aggregate} measure is the total queue
    C^a = Σ_k Q^a_k — every connection is signalled identically, and by
    work conservation the measure is independent of the service
    discipline.  The {e individual} measure for connection i is
    C^a_i = Σ_k min(Q^a_k, Q^a_i): connection i is not charged for queues
    larger than its own, so the signal reflects its own contribution.
    For the connection with the smallest queue C_i = N·Q_i; for the
    largest, C_i = C (the aggregate). *)

open Ffc_numerics

type style = Aggregate | Individual

val style_name : style -> string

val aggregate : Vec.t -> float
(** Total queue Σ Q_k ([infinity] propagates). *)

val individual : Vec.t -> int -> float
(** [individual queues i] = Σ_k min(Q_k, Q_i). *)

val measures : style -> Vec.t -> Vec.t
(** Per-connection congestion measures C^a_i under the given style. *)

val weighted_individual : weights:Vec.t -> Vec.t -> int -> float
(** [weighted_individual ~weights queues i] =
    Σ_k w_k · min(Q_k/w_k, Q_i/w_i) — the weighted generalization of the
    individual measure: connection i is charged for other connections'
    queues only up to its own {e per-weight} backlog.  With equal
    weights this is exactly [individual].  At a weight-proportional
    steady state every connection sees the aggregate, keeping the
    construction consistent with aggregate feedback (requirement (1) of
    §2.3.1).  Used by the weighted Fair Share extension (E18). *)

val weighted_measures : weights:Vec.t -> Vec.t -> Vec.t
(** [weighted_individual] for every connection. *)
