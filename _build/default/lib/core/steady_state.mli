(** Steady-state theory: the fair construction of Theorem 2.

    For a TSI algorithm with steady signal b_SS, every bottleneck gateway
    is pinned at congestion C_SS = B⁻¹(b_SS), i.e. at utilization
    ρ_SS = C_SS/(1+C_SS).  The unique fair steady state is then the
    max-min fair ("water-filling") allocation against per-gateway
    capacities μ^a·ρ_SS: repeatedly find the gateway with the smallest
    equal share, freeze its connections at that share, remove them, and
    continue (the construction in the proof of Theorem 2).  By the
    Corollary this is also the unique steady state of every TSI
    {e individual}-feedback algorithm, whatever the service discipline. *)

open Ffc_numerics
open Ffc_topology

val steady_utilization : signal:Signal.t -> b_ss:float -> float
(** ρ_SS = g⁻¹(B⁻¹(b_SS)) ∈ [0, 1). *)

val fair : signal:Signal.t -> b_ss:float -> net:Network.t -> Vec.t
(** The unique fair steady state. Requires [b_ss] ∈ (0, 1) and every
    gateway to carry at least one connection. *)

val bottleneck_shares : signal:Signal.t -> b_ss:float -> net:Network.t -> float array
(** Per-gateway capacity μ^a·ρ_SS used by the construction (diagnostic). *)

val max_min_fair : capacities:float array -> net:Network.t -> Vec.t
(** The underlying water-filling against arbitrary per-gateway
    capacities — exposed for reuse and tests. *)
