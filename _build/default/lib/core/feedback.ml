open Ffc_numerics
open Ffc_queueing
open Ffc_topology

type config = {
  style : Congestion.style;
  signal : Signal.t;
  discipline : Service.t;
  weights : Vec.t option;
}

let make ?weights ~style ~signal ~discipline () = { style; signal; discipline; weights }

let aggregate_fifo =
  make ~style:Congestion.Aggregate ~signal:Signal.linear_fractional
    ~discipline:Service.fifo ()

let individual_fifo =
  make ~style:Congestion.Individual ~signal:Signal.linear_fractional
    ~discipline:Service.fifo ()

let individual_fair_share =
  make ~style:Congestion.Individual ~signal:Signal.linear_fractional
    ~discipline:Service.fair_share ()

let queues config ~net ~rates ~gw =
  let local = Network.rates_at_gateway net ~rates gw in
  Service.queue_lengths config.discipline ~mu:(Network.gateway net gw).Network.mu local

(* Per-gateway congestion measures, honoring the optional weights (mapped
   into the gateway's local connection order). *)
let local_measures config ~net ~gw queues =
  match (config.style, config.weights) with
  | Congestion.Individual, Some weights ->
    let local_weights =
      Network.connections_at_gateway net gw
      |> List.map (fun i -> weights.(i))
      |> Array.of_list
    in
    Congestion.weighted_measures ~weights:local_weights queues
  | (Congestion.Aggregate | Congestion.Individual), _ ->
    Congestion.measures config.style queues

let per_gateway_signals config ~net ~rates =
  Array.init (Network.num_gateways net) (fun a ->
      let q = queues config ~net ~rates ~gw:a in
      let c = local_measures config ~net ~gw:a q in
      Array.map (Signal.eval config.signal) c)

let signals config ~net ~rates =
  let per_gw = per_gateway_signals config ~net ~rates in
  Array.init (Network.num_connections net) (fun i ->
      List.fold_left
        (fun acc a ->
          let pos = Network.local_index net ~conn:i ~gw:a in
          Float.max acc per_gw.(a).(pos))
        0.
        (Network.gateways_of_connection net i))

let bottlenecks config ~net ~rates =
  let per_gw = per_gateway_signals config ~net ~rates in
  let b = signals config ~net ~rates in
  Array.init (Network.num_connections net) (fun i ->
      List.filter
        (fun a ->
          let pos = Network.local_index net ~conn:i ~gw:a in
          Float.abs (per_gw.(a).(pos) -. b.(i)) <= 1e-12)
        (Network.gateways_of_connection net i))

let delays config ~net ~rates =
  (* Memoize per-gateway sojourn vectors; each costs a queue-length
     evaluation plus probes for zero-rate connections. *)
  let sojourns = Array.make (Network.num_gateways net) None in
  let sojourn_at a =
    match sojourns.(a) with
    | Some w -> w
    | None ->
      let local = Network.rates_at_gateway net ~rates a in
      let w =
        Service.sojourn_times config.discipline
          ~mu:(Network.gateway net a).Network.mu local
      in
      sojourns.(a) <- Some w;
      w
  in
  Array.init (Network.num_connections net) (fun i ->
      List.fold_left
        (fun acc a ->
          let w = sojourn_at a in
          let pos = Network.local_index net ~conn:i ~gw:a in
          acc +. (Network.gateway net a).Network.latency +. w.(pos))
        0.
        (Network.gateways_of_connection net i))
