open Ffc_numerics
open Ffc_topology

let rates_of_windows ?(tol = 1e-10) ?(max_iter = 50_000) config ~net ~windows =
  let n = Network.num_connections net in
  if Array.length windows <> n then
    invalid_arg "Window.rates_of_windows: windows length mismatch";
  Array.iter
    (fun w ->
      if (not (Float.is_finite w)) || w < 0. then
        invalid_arg "Window.rates_of_windows: windows must be finite and non-negative")
    windows;
  (* Gauss-Seidel sweeps: for each connection in turn, solve the scalar
     equation r_i = w_i / d_i(r) with the other rates held fixed.  d_i is
     increasing in r_i, so h(r_i) = w_i/d_i − r_i is strictly decreasing
     with a unique root, found by bisection — robust arbitrarily close to
     saturation (where naive fixed-point iteration on r = w/d
     oscillates). *)
  let r = Array.make n 0. in
  let solve_component i =
    if windows.(i) = 0. then r.(i) <- 0.
    else begin
      let residual x =
        r.(i) <- x;
        let d = (Feedback.delays config ~net ~rates:r).(i) in
        if d = Float.infinity then -.x else (windows.(i) /. d) -. x
      in
      (* Upper bracket: the rate a window commands at the empty-network
         delay; h is <= 0 there. *)
      r.(i) <- 0.;
      let d0 = (Feedback.delays config ~net ~rates:r).(i) in
      let hi = windows.(i) /. d0 in
      let lo = ref 0. and hi = ref hi in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if residual mid > 0. then lo := mid else hi := mid
      done;
      r.(i) <- 0.5 *. (!lo +. !hi)
    end
  in
  let finished = ref false in
  let sweep = ref 0 in
  while (not !finished) && !sweep < max_iter do
    incr sweep;
    let before = Array.copy r in
    for i = 0 to n - 1 do
      solve_component i
    done;
    if Vec.dist_inf r before <= tol *. (1. +. Vec.norm_inf r) then finished := true
  done;
  r

type adjuster = { name : string; f : w:float -> b:float -> d:float -> float }

let adjuster_name a = a.name

let make_adjuster ~name f = { name; f }

let additive_tsi ~eta ~beta =
  if not (eta > 0.) then invalid_arg "Window.additive_tsi: eta must be positive";
  if not (beta > 0. && beta < 1.) then
    invalid_arg "Window.additive_tsi: beta must be in (0,1)";
  make_adjuster
    ~name:(Printf.sprintf "window-additive(eta=%g,beta=%g)" eta beta)
    (fun ~w:_ ~b ~d:_ -> eta *. (beta -. b))

let decbit ~eta ~beta =
  if not (eta > 0.) then invalid_arg "Window.decbit: eta must be positive";
  if not (beta > 0. && beta < 1.) then invalid_arg "Window.decbit: beta must be in (0,1)";
  make_adjuster
    ~name:(Printf.sprintf "window-decbit(eta=%g,beta=%g)" eta beta)
    (fun ~w ~b ~d:_ -> ((1. -. b) *. eta) -. (beta *. b *. w))

type outcome =
  | Converged of { windows : Vec.t; rates : Vec.t; steps : int }
  | No_convergence of { windows : Vec.t; rates : Vec.t }

let run ?(tol = 1e-9) ?(max_steps = 20_000) config ~net ~adjusters ~w0 =
  let n = Network.num_connections net in
  if Array.length adjusters <> n then invalid_arg "Window.run: adjuster count mismatch";
  if Array.length w0 <> n then invalid_arg "Window.run: w0 length mismatch";
  let w = ref (Array.copy w0) in
  let result = ref None in
  let quiet = ref 0 in
  let step = ref 0 in
  while !result = None && !step < max_steps do
    incr step;
    let rates = rates_of_windows config ~net ~windows:!w in
    let b = Feedback.signals config ~net ~rates in
    let d = Feedback.delays config ~net ~rates in
    let next =
      Array.mapi
        (fun i wi ->
          let dw = (adjusters.(i)).f ~w:wi ~b:b.(i) ~d:d.(i) in
          if Float.is_nan dw then
            failwith "Window.run: adjuster produced NaN"
          else Float.max 0. (wi +. dw))
        !w
    in
    if Vec.dist_inf next !w <= tol *. (1. +. Vec.norm_inf next) then begin
      incr quiet;
      if !quiet >= 3 then begin
        let rates = rates_of_windows config ~net ~windows:next in
        result := Some (Converged { windows = next; rates; steps = !step })
      end
    end
    else quiet := 0;
    w := next
  done;
  match !result with
  | Some o -> o
  | None ->
    let rates = rates_of_windows config ~net ~windows:!w in
    No_convergence { windows = !w; rates }
