open Ffc_numerics
open Ffc_topology

let unfair_witness ?(tol = 1e-6) config ~net ~rates =
  let bn = Feedback.bottlenecks config ~net ~rates in
  let witness = ref None in
  Array.iteri
    (fun i bottleneck_gws ->
      if !witness = None then
        List.iter
          (fun a ->
            if !witness = None then
              List.iter
                (fun j ->
                  if
                    !witness = None
                    && rates.(j) > rates.(i) *. (1. +. tol) +. tol
                  then witness := Some (i, j, a))
                (Network.connections_at_gateway net a))
          bottleneck_gws)
    bn;
  !witness

let is_fair ?tol config ~net ~rates = unfair_witness ?tol config ~net ~rates = None

let jain = Stats.jain_index

let max_min_ratio = Stats.max_min_ratio
