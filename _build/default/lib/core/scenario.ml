open Ffc_numerics
open Ffc_topology

let default_eta = 0.1
let default_beta = 0.5

let standard_adjuster = Rate_adjust.additive ~eta:default_eta ~beta:default_beta
let timid_adjuster = Rate_adjust.additive ~eta:default_eta ~beta:0.3
let greedy_adjuster = Rate_adjust.additive ~eta:default_eta ~beta:0.7

let uniform_start ~net r = Array.make (Network.num_connections net) r

let random_start ~rng ~net ~lo ~hi =
  Array.init (Network.num_connections net) (fun _ -> Rng.range rng lo hi)
