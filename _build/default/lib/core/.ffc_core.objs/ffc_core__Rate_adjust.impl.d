lib/core/rate_adjust.ml: Array Ffc_numerics Float List Printf Rootfind
