lib/core/signal.ml: Float List Printf
