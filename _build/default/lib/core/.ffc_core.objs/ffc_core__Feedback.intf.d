lib/core/feedback.mli: Congestion Ffc_numerics Ffc_queueing Ffc_topology Network Service Signal Vec
