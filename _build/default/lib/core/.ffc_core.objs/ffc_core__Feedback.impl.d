lib/core/feedback.ml: Array Congestion Ffc_numerics Ffc_queueing Ffc_topology Float List Network Service Signal Vec
