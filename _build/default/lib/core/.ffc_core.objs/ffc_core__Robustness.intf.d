lib/core/robustness.mli: Ffc_numerics Ffc_queueing Ffc_topology Network Rng Service Signal Vec
