lib/core/congestion.ml: Array Ffc_numerics Float Vec
