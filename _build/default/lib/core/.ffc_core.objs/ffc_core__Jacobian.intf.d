lib/core/jacobian.mli: Controller Ffc_numerics Ffc_topology Mat Vec
