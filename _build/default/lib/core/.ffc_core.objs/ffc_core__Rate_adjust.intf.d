lib/core/rate_adjust.mli:
