lib/core/transient.mli: Feedback Ffc_numerics Ffc_topology Network Rate_adjust Vec
