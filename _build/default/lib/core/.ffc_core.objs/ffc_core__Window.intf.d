lib/core/window.mli: Feedback Ffc_numerics Ffc_topology Network Vec
