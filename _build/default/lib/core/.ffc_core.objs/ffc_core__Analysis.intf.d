lib/core/analysis.mli: Controller Feedback Ffc_numerics Ffc_topology Format Network Rate_adjust Vec
