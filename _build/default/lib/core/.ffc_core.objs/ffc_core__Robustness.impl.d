lib/core/robustness.ml: Array Ffc_numerics Ffc_queueing Ffc_topology Float List Mm1 Network Rng Service Signal
