lib/core/trace.mli: Ffc_numerics Vec
