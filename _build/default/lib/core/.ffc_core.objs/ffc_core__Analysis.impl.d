lib/core/analysis.ml: Array Controller Fairness Feedback Ffc_numerics Format Jacobian List Option Printf Rate_adjust Robustness Vec
