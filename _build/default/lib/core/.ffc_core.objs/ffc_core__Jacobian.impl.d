lib/core/jacobian.ml: Array Controller Eigen Ffc_numerics Float Fun Lazy Mat
