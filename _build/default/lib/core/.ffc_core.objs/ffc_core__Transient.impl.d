lib/core/transient.ml: Array Congestion Feedback Ffc_numerics Ffc_topology Float List Network Ode Rate_adjust Signal Stdlib Vec
