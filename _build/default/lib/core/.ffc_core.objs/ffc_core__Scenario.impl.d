lib/core/scenario.ml: Array Ffc_numerics Ffc_topology Network Rate_adjust Rng
