lib/core/window.ml: Array Feedback Ffc_numerics Ffc_topology Float Network Printf Vec
