lib/core/fairness.mli: Feedback Ffc_numerics Ffc_topology Network Vec
