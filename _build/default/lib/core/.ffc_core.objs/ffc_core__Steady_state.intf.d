lib/core/steady_state.mli: Ffc_numerics Ffc_topology Network Signal Vec
