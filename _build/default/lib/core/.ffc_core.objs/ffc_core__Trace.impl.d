lib/core/trace.ml: Array Buffer Out_channel Printf
