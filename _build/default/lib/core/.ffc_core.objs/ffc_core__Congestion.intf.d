lib/core/congestion.mli: Ffc_numerics Vec
