lib/core/steady_state.ml: Array Ffc_queueing Ffc_topology Float List Mm1 Network Signal
