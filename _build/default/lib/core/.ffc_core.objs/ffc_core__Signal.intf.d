lib/core/signal.mli:
