lib/core/scenario.mli: Ffc_numerics Ffc_topology Network Rate_adjust Rng Vec
