lib/core/controller.mli: Feedback Ffc_numerics Ffc_topology Network Rate_adjust Rng Vec
