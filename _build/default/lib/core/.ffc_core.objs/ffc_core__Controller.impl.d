lib/core/controller.ml: Array Feedback Ffc_numerics Ffc_topology Float Network Rate_adjust Rng Vec
