lib/core/fairness.ml: Array Feedback Ffc_numerics Ffc_topology List Network Stats
