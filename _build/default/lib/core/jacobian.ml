open Ffc_numerics

type mode = Central | Forward | Backward

let numeric ?(dx = 1e-7) ?(mode = Central) f ~at =
  let n = Array.length at in
  let fx = lazy (f at) in
  let cols =
    Array.init n (fun j ->
        let h = dx *. (1. +. Float.abs at.(j)) in
        let bump delta =
          let x = Array.copy at in
          x.(j) <- x.(j) +. delta;
          f x
        in
        (* The flow-control map lives on r >= 0: fall back to a forward
           difference when a central probe would leave the domain. *)
        let mode = if mode = Central && at.(j) -. h < 0. then Forward else mode in
        match mode with
        | Central ->
          let plus = bump h and minus = bump (-.h) in
          Array.init n (fun i -> (plus.(i) -. minus.(i)) /. (2. *. h))
        | Forward ->
          let plus = bump h and base = Lazy.force fx in
          Array.init n (fun i -> (plus.(i) -. base.(i)) /. h)
        | Backward ->
          let minus = bump (-.h) and base = Lazy.force fx in
          Array.init n (fun i -> (base.(i) -. minus.(i)) /. h))
  in
  Mat.init n n (fun i j -> cols.(j).(i))

let of_controller ?dx ?mode controller ~net ~at =
  numeric ?dx ?mode (fun r -> Controller.map controller ~net r) ~at

let unilaterally_stable ?(tol = 1e-9) df =
  let d = Mat.diagonal df in
  Array.for_all (fun x -> Float.abs x < 1. -. tol) d

let systemically_stable ?tol ?ignore_unit df =
  Eigen.is_linearly_stable ?tol ?ignore_unit df

let spectral_radius = Eigen.spectral_radius

let triangular_in_rate_order ?(tol = 1e-6) df ~rates =
  let n = Array.length rates in
  if Mat.rows df <> n then invalid_arg "Jacobian.triangular_in_rate_order: size mismatch";
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare rates.(a) rates.(b)) order;
  Mat.is_lower_triangular ~tol (Mat.permute_rows_cols df order)

let diagonal = Mat.diagonal
