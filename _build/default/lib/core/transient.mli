(** The transient fluid model: flow control without the
    instant-equilibration assumption (paper §2.1/§2.5).

    The paper assumes queue lengths always reflect the current sending
    rates.  Here the queues get their own dynamics — the standard fluid
    approximation of an M/M/1 gateway,

      dQ^a_i/dt = λ^a_i − μ^a · Q^a_i/(Q^a_tot + 1),

    whose equilibrium is exactly the FIFO formula ρ_i/(1−ρ_tot) (so the
    model's analytic layer is the fast-queue limit of this one) — while
    the rates evolve continuously at a configurable speed,

      dr_i/dt = gain · f(r_i, b_i(Q(t)), d_i(Q(t))),

    with signals computed from the {e instantaneous} queues.  λ^a_i is
    r_i at connection i's first hop and the fluid departure rate of the
    previous hop afterwards.

    The interesting question is the time-scale ratio: when the
    controller is slow relative to queue equilibration the discrete
    theory's predictions hold; as [gain] approaches the queues' natural
    rate (∝ μ) the coupled system overshoots and oscillates — which
    quantifies the §2.5 caveat and breaks time-scale invariance in the
    transient regime (stability depends on μ, not just on ratios). *)

open Ffc_numerics
open Ffc_topology

type outcome =
  | Settled of Vec.t  (** Rates essentially constant over the tail. *)
  | Oscillating of { amplitude : float }
      (** Peak-to-peak rate swing over the tail window. *)

type result = {
  times : float array;
  rates : float array array;  (** Per sample. *)
  total_queue : float array;  (** Bottleneck-gateway fluid mass, per sample. *)
  outcome : outcome;
}

val run :
  ?dt:float -> ?t_end:float -> config:Feedback.config -> net:Network.t ->
  adjusters:Rate_adjust.t array -> gain:float -> r0:Vec.t -> unit -> result
(** Integrates the coupled system from rates [r0] and empty queues.
    [gain] multiplies every f (per unit time); [dt] defaults to 0.01 and
    [t_end] to 2000.  The settle test uses the last 10% of the horizon
    with a relative amplitude threshold of 1e-3. *)

val critical_gain :
  ?lo:float -> ?hi:float -> ?ratio:float -> ?dt:float -> ?t_end:float ->
  config:Feedback.config -> net:Network.t ->
  adjusters:Rate_adjust.t array -> r0:Vec.t -> unit -> float
(** Largest gain (within [lo, hi], geometric bisection to relative
    precision [ratio], default 1.02) at which the system still settles —
    the empirical stability edge of the transient model.  [dt]/[t_end]
    are forwarded to {!run}. *)
