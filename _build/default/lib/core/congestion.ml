open Ffc_numerics

type style = Aggregate | Individual

let style_name = function Aggregate -> "aggregate" | Individual -> "individual"

let aggregate queues = Vec.sum queues

let individual queues i =
  if i < 0 || i >= Array.length queues then
    invalid_arg "Congestion.individual: index out of bounds";
  let qi = queues.(i) in
  Array.fold_left (fun acc q -> acc +. Float.min q qi) 0. queues

let weighted_individual ~weights queues i =
  if Array.length weights <> Array.length queues then
    invalid_arg "Congestion.weighted_individual: weights length mismatch";
  if i < 0 || i >= Array.length queues then
    invalid_arg "Congestion.weighted_individual: index out of bounds";
  let per_weight_i = queues.(i) /. weights.(i) in
  let acc = ref 0. in
  Array.iteri
    (fun k qk -> acc := !acc +. (weights.(k) *. Float.min (qk /. weights.(k)) per_weight_i))
    queues;
  !acc

let weighted_measures ~weights queues =
  Array.mapi (fun i _ -> weighted_individual ~weights queues i) queues

let measures style queues =
  match style with
  | Aggregate ->
    let c = aggregate queues in
    Array.map (fun _ -> c) queues
  | Individual -> Array.mapi (fun i _ -> individual queues i) queues
