(** Ready-made scenario ingredients shared by the examples, CLI, and
    experiment harness: standard parameter choices for adjusters and
    starting rate vectors. *)

open Ffc_numerics
open Ffc_topology

val default_eta : float
(** 0.1 — small enough for unilateral stability (η < 2 in the §3.3
    example) with a comfortable margin. *)

val default_beta : float
(** 0.5 — the steady congestion signal used throughout the experiments:
    with B = C/(1+C) it pins each bottleneck at total queue C_SS = 1,
    i.e. utilization ρ_SS = 1/2. *)

val standard_adjuster : Rate_adjust.t
(** additive(η = 0.1, β = 0.5). *)

val timid_adjuster : Rate_adjust.t
(** additive(η = 0.1, β = 0.3) — backs off earlier; the victim in the
    §3.4 heterogeneity example. *)

val greedy_adjuster : Rate_adjust.t
(** additive(η = 0.1, β = 0.7) — tolerates more congestion; the winner
    under aggregate feedback. *)

val uniform_start : net:Network.t -> float -> Vec.t
(** Every connection starting at the given rate. *)

val random_start : rng:Rng.t -> net:Network.t -> lo:float -> hi:float -> Vec.t
(** Componentwise uniform in [lo, hi). *)
