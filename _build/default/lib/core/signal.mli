(** Congestion-signal functions B(C) (paper §2.3.1).

    A gateway turns a congestion measure C ∈ [0, ∞] into a signal
    b = B(C) ∈ [0, 1].  The paper requires B nowhere constant
    (dB/dC > 0), B(0) = 0 and B(∞) = 1; every built-in family satisfies
    these.  Signals are time-scale invariant by construction: they depend
    only on queue lengths, which depend only on the ratios r/μ. *)

type t

val name : t -> string

val eval : t -> float -> float
(** [eval b c] — the signal for congestion measure [c ≥ 0], with
    [eval b infinity = 1.]. *)

val inverse : t -> float -> float
(** [inverse b s] — the congestion measure C with B(C) = s, for
    s ∈ [0, 1]; [infinity] at s = 1.  This is the C_SS a TSI rate
    adjuster with steady signal b_SS pins at every bottleneck. *)

val linear_fractional : t
(** B(C) = C/(1+C).  At a single FIFO gateway with aggregate feedback this
    makes b equal the total utilization ρ, which is what reduces the
    paper's §3.3 example to the linear map r' = r + η(β − Σr). *)

val scaled : float -> t
(** [scaled k] : B(C) = C/(k+C), [k > 0] — shifts how much congestion maps
    to a given signal level; used in ablations. *)

val power : float -> t
(** [power p] : B(C) = (C/(1+C))^p, [p >= 1].  [power 2.] turns the
    single-gateway symmetric aggregate map into the quadratic recursion
    r' = r + η(β − (Σr)²) — the paper's §3.3 route to chaos. *)

val exponential : float -> t
(** [exponential k] : B(C) = 1 − exp(−kC), [k > 0]. *)

val binary : float -> t
(** [binary threshold] : B(C) = 0 for C < threshold, 1 otherwise — the
    single-bit feedback of the DECbit scheme as analyzed by Chiu–Jain
    [Chi89].  This {e deliberately violates} the paper's dB/dC > 0
    assumption ([check] rejects it): with binary feedback the system is
    "either increasing or decreasing at every point" and never reaches a
    steady state, which is exactly the contrast experiment E14 explores.
    [inverse] returns [threshold] for every s ∈ (0, 1]. *)

val make : name:string -> eval:(float -> float) -> inverse:(float -> float) -> t
(** Custom signal function; the caller is responsible for the B(0)=0,
    B(∞)=1, monotonicity contract ([check] can verify it numerically). *)

val check : ?samples:int -> t -> bool
(** Numerically verifies the contract: endpoints, strict monotonicity on a
    log-spaced grid, and inverse consistency. *)
