(** Eigenvalues of small dense real matrices.

    The stability analysis of the flow-control map (paper §3.3) requires
    all eigenvalues of the Jacobian DF — which is real but generally
    non-symmetric, so eigenvalues may form complex-conjugate pairs.  The
    implementation is the classical dense path: balancing, reduction to
    upper Hessenberg form by stabilized elementary transformations, then
    the implicit double-shift (Francis) QR iteration with deflation.

    Accuracy is more than adequate for the ≤ 100x100 Jacobians arising
    here; all routines operate on copies and never mutate their input. *)

val hessenberg : Mat.t -> Mat.t
(** [hessenberg m] is an upper-Hessenberg matrix similar to square [m]
    (entries below the first subdiagonal are exactly zero). *)

val eigenvalues : Mat.t -> Complex.t array
(** All eigenvalues of a square matrix, in no particular order. Raises
    [Failure] if the QR iteration fails to converge (does not happen for
    the matrices in this repository) and [Invalid_argument] if the matrix
    is not square. *)

val eigenvalues_sorted : Mat.t -> Complex.t array
(** Eigenvalues sorted by decreasing modulus (ties broken by real part). *)

val spectral_radius : Mat.t -> float
(** Largest eigenvalue modulus — the quantity that decides linear
    stability of the iteration r' = F(r). *)

val is_linearly_stable : ?tol:float -> ?ignore_unit:int -> Mat.t -> bool
(** [is_linearly_stable df] holds when every eigenvalue of [df] has
    modulus < 1 − [tol] (default [tol = 1e-9]).  [ignore_unit] (default 0)
    discounts that many eigenvalues closest to modulus 1 — used for
    steady-state manifolds, where deviations *along* the manifold carry
    unit eigenvalues that the paper's stability notion ignores. *)

val power_iteration :
  ?max_iter:int -> ?tol:float -> Mat.t -> (float * Vec.t) option
(** Dominant eigenvalue (by modulus, assuming it is real) and its
    eigenvector, via normalized power iteration; [None] when the iteration
    does not settle — e.g. a complex dominant pair. Used as an independent
    cross-check of [eigenvalues]. *)

val triangular_eigenvalues : Mat.t -> Vec.t option
(** For a (numerically) triangular matrix, its eigenvalues are the
    diagonal; [None] when the matrix is not triangular. Implements the
    observation at the heart of Theorem 4. *)
