(** Dense float vectors.

    Thin, allocation-explicit wrappers over [float array] used throughout
    the flow-control model for rate vectors, queue-length vectors, and
    congestion-signal vectors.  Functions never mutate their inputs unless
    the name says so. *)

type t = float array

val make : int -> float -> t
(** [make n x] is the length-[n] vector with every component [x]. *)

val init : int -> (int -> float) -> t

val dim : t -> int

val copy : t -> t

val of_list : float list -> t

val to_list : t -> float list

val fill : t -> float -> unit

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** Pointwise combination. Raises [Invalid_argument] on dimension
    mismatch. *)

val mapi : (int -> float -> float) -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y]. *)

val dot : t -> t -> float

val sum : t -> float

val mean : t -> float
(** Mean of the components. The vector must be non-empty. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max absolute component (0 for the empty vector). *)

val dist_inf : t -> t -> float
(** Chebyshev distance. *)

val dist2 : t -> t -> float
(** Euclidean distance. *)

val max : t -> float
(** Largest component. The vector must be non-empty. *)

val min : t -> float
(** Smallest component. The vector must be non-empty. *)

val argmax : t -> int

val argmin : t -> int

val clamp_nonneg : t -> t
(** Pointwise [max 0.] — the paper's truncation of negative rates. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison within absolute tolerance [tol]
    (default [1e-9]); [false] on dimension mismatch. *)

val sorted_increasing : t -> t
(** A sorted copy. *)

val is_sorted_increasing : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [[v0; v1; ...]] with 6 significant digits. *)

val to_string : t -> string
