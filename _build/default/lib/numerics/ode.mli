(** Fixed-step ODE integration (classical Runge–Kutta).

    Powers the transient fluid model, which couples queue equilibration
    to the flow-control dynamics instead of assuming queues jump to
    steady state instantly.  RK4 with a fixed step is ample for these
    smooth, moderately stiff systems; no adaptive machinery needed. *)

val rk4_step : f:(t:float -> Vec.t -> Vec.t) -> t:float -> dt:float -> Vec.t -> Vec.t
(** One classical fourth-order Runge–Kutta step. *)

val integrate :
  ?post:(Vec.t -> Vec.t) ->
  f:(t:float -> Vec.t -> Vec.t) ->
  t0:float -> t1:float -> dt:float -> Vec.t ->
  (float * Vec.t) array
(** Trajectory sampled at every step from [t0] to [t1] (inclusive of both
    endpoints; the last step is shortened to land on [t1]).  [post] is
    applied to the state after every step — used to clamp rates and queue
    masses to their physical domain (non-negative).  Raises
    [Invalid_argument] when [dt <= 0.] or [t1 < t0]. *)
