let rk4_step ~f ~t ~dt y =
  let n = Array.length y in
  let k1 = f ~t y in
  let k2 = f ~t:(t +. (dt /. 2.)) (Array.init n (fun i -> y.(i) +. (dt /. 2. *. k1.(i)))) in
  let k3 = f ~t:(t +. (dt /. 2.)) (Array.init n (fun i -> y.(i) +. (dt /. 2. *. k2.(i)))) in
  let k4 = f ~t:(t +. dt) (Array.init n (fun i -> y.(i) +. (dt *. k3.(i)))) in
  Array.init n (fun i ->
      y.(i) +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

let integrate ?(post = Fun.id) ~f ~t0 ~t1 ~dt y0 =
  if not (dt > 0.) then invalid_arg "Ode.integrate: dt must be positive";
  if t1 < t0 then invalid_arg "Ode.integrate: t1 must be >= t0";
  let samples = ref [ (t0, y0) ] in
  let t = ref t0 and y = ref y0 in
  while !t < t1 -. 1e-12 do
    let step = Float.min dt (t1 -. !t) in
    y := post (rk4_step ~f ~t:!t ~dt:step !y);
    t := !t +. step;
    samples := (!t, !y) :: !samples
  done;
  Array.of_list (List.rev !samples)
