type canvas = {
  width : int;
  height : int;
  mutable points : (float * float * char) list;
}

let canvas ?(width = 72) ?(height = 20) () =
  if width < 8 || height < 4 then invalid_arg "Ascii_plot.canvas: too small";
  { width; height; points = [] }

let plot_points c ?(glyph = '*') pts =
  Array.iter
    (fun (x, y) ->
      if Float.is_finite x && Float.is_finite y then
        c.points <- (x, y, glyph) :: c.points)
    pts

let plot_series c ?(glyph = '*') ys =
  plot_points c ~glyph (Array.mapi (fun i y -> (float_of_int i, y)) ys)

let data_range c =
  match c.points with
  | [] -> ((0., 1.), (0., 1.))
  | (x0, y0, _) :: rest ->
    let fold (xmin, xmax, ymin, ymax) (x, y, _) =
      (Float.min xmin x, Float.max xmax x, Float.min ymin y, Float.max ymax y)
    in
    let xmin, xmax, ymin, ymax = List.fold_left fold (x0, x0, y0, y0) rest in
    let pad lo hi = if hi > lo then (lo, hi) else (lo -. 0.5, hi +. 0.5) in
    (pad xmin xmax, pad ymin ymax)

let render ?title ?x_label ?y_label c =
  let (xmin, xmax), (ymin, ymax) = data_range c in
  let grid = Array.make_matrix c.height c.width ' ' in
  let place (x, y, glyph) =
    let col =
      int_of_float ((x -. xmin) /. (xmax -. xmin) *. float_of_int (c.width - 1))
    in
    let row =
      (* Row 0 is the top of the chart. *)
      c.height - 1
      - int_of_float ((y -. ymin) /. (ymax -. ymin) *. float_of_int (c.height - 1))
    in
    if col >= 0 && col < c.width && row >= 0 && row < c.height then
      grid.(row).(col) <- glyph
  in
  List.iter place (List.rev c.points);
  let buf = Buffer.create ((c.width + 16) * (c.height + 4)) in
  (match title with
  | Some t -> Buffer.add_string buf (Printf.sprintf "  %s\n" t)
  | None -> ());
  (match y_label with
  | Some l -> Buffer.add_string buf (Printf.sprintf "  %s\n" l)
  | None -> ());
  let label_width = 10 in
  let y_tick row =
    if row = 0 then Some ymax
    else if row = c.height - 1 then Some ymin
    else if row = (c.height - 1) / 2 then Some (ymin +. ((ymax -. ymin) /. 2.))
    else None
  in
  for row = 0 to c.height - 1 do
    (match y_tick row with
    | Some v -> Buffer.add_string buf (Printf.sprintf "%*.4g |" label_width v)
    | None -> Buffer.add_string buf (Printf.sprintf "%*s |" label_width ""));
    Buffer.add_string buf (String.init c.width (fun col -> grid.(row).(col)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Printf.sprintf "%*s +%s\n" label_width "" (String.make c.width '-'));
  let xmin_s = Printf.sprintf "%.4g" xmin and xmax_s = Printf.sprintf "%.4g" xmax in
  let gap = Stdlib.max 1 (c.width - String.length xmin_s - String.length xmax_s) in
  Buffer.add_string buf
    (Printf.sprintf "%*s  %s%*s%s\n" label_width "" xmin_s gap "" xmax_s);
  (match x_label with
  | Some l ->
    Buffer.add_string buf
      (Printf.sprintf "%*s  %s\n" label_width "" l)
  | None -> ());
  Buffer.contents buf

let series ?width ?height ?title ?x_label ?y_label ys =
  let c = canvas ?width ?height () in
  plot_series c ys;
  render ?title ?x_label ?y_label c

let scatter ?width ?height ?title ?x_label ?y_label pts =
  let c = canvas ?width ?height () in
  plot_points c pts;
  render ?title ?x_label ?y_label c

let bars ?(width = 50) ?title entries =
  List.iter
    (fun (_, v) -> if v < 0. then invalid_arg "Ascii_plot.bars: negative value")
    entries;
  let buf = Buffer.create 256 in
  (match title with
  | Some t -> Buffer.add_string buf (Printf.sprintf "  %s\n" t)
  | None -> ());
  let max_v = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. entries in
  let label_w =
    List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 entries
  in
  List.iter
    (fun (label, v) ->
      let len =
        if max_v <= 0. then 0
        else int_of_float (Float.round (v /. max_v *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%*s | %s %.6g\n" label_w label (String.make len '#') v))
    entries;
  Buffer.contents buf
