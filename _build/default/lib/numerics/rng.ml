type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

(* 53 uniform mantissa bits, in [0,1). *)
let uniform t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform_pos t =
  let rec go () =
    let u = uniform t in
    if u > 0. then u else go ()
  in
  go ()

let float t bound =
  if not (bound > 0.) then invalid_arg "Rng.float: bound must be positive";
  uniform t *. bound

let range t lo hi =
  if not (lo < hi) then invalid_arg "Rng.range: need lo < hi";
  lo +. uniform t *. (hi -. lo)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int b) in
  let rec go () =
    let v = Int64.shift_right_logical (bits64 t) 1 in
    if v >= limit then go () else Int64.to_int (Int64.rem v b)
  in
  go ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~rate =
  if not (rate > 0.) then invalid_arg "Rng.exponential: rate must be positive";
  -.log (uniform_pos t) /. rate

let gaussian t =
  let u1 = uniform_pos t and u2 = uniform t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let poisson t ~mean =
  if not (mean >= 0.) then invalid_arg "Rng.poisson: mean must be >= 0";
  if mean = 0. then 0
  else if mean > 30. then
    (* Normal approximation with continuity correction; adequate for the
       workload-generation uses in this repository. *)
    let x = mean +. sqrt mean *. gaussian t in
    Stdlib.max 0 (int_of_float (Float.round x))
  else
    let limit = exp (-.mean) in
    let rec go k p =
      let p = p *. uniform t in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
