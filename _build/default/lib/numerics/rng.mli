(** Deterministic, splittable pseudo-random number generation.

    The generator is SplitMix64 (Steele, Lea, Flood 2014): a 64-bit
    counter-based generator with excellent statistical quality for
    simulation workloads, cheap splitting, and full reproducibility from a
    single integer seed.  All stochastic components of this repository
    (Poisson sources, exponential servers, random topologies, property
    tests) draw from this module so that every experiment is replayable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. Distinct seeds give statistically independent streams. *)

val copy : t -> t
(** [copy t] is an independent generator whose future outputs replicate
    those of [t]. *)

val split : t -> t
(** [split t] derives a new generator statistically independent of the
    future output of [t], advancing [t]. Use to give each simulation
    component its own stream so that adding draws to one component does not
    perturb the others. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val uniform : t -> float
(** [uniform t] is uniform in [\[0, 1)]. *)

val uniform_pos : t -> float
(** [uniform_pos t] is uniform in [(0, 1)] — never exactly zero, safe as an
    argument to [log]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val range : t -> float -> float -> float
(** [range t lo hi] is uniform in [\[lo, hi)]. Requires [lo < hi]. *)

val bool : t -> bool
(** Fair coin flip. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] samples Exp(rate): mean [1. /. rate]. [rate] must
    be positive. Used for Poisson interarrival gaps and exponential service
    times. *)

val poisson : t -> mean:float -> int
(** [poisson t ~mean] samples a Poisson random variable. Uses Knuth's
    product method for small means and a normal approximation with
    continuity correction for [mean > 30.]. *)

val gaussian : t -> float
(** Standard normal via the Box–Muller transform (one value per call). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. The array must be non-empty. *)
