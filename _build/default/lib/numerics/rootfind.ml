type outcome = Root of float | No_bracket | No_convergence of float

let bisect ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if flo = 0. then Root lo
  else if fhi = 0. then Root hi
  else if flo *. fhi > 0. then No_bracket
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let result = ref None in
    let iter = ref 0 in
    while !result = None && !iter < max_iter do
      incr iter;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0. || (!hi -. !lo) /. 2. < tol then result := Some mid
      else if !flo *. fmid < 0. then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    match !result with
    | Some r -> Root r
    | None -> No_convergence (0.5 *. (!lo +. !hi))
  end

let brent ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let fa = f lo and fb = f hi in
  if fa = 0. then Root lo
  else if fb = 0. then Root hi
  else if fa *. fb > 0. then No_bracket
  else begin
    let a = ref lo and b = ref hi and fa = ref fa and fb = ref fb in
    (* Keep |f b| <= |f a|: b is the best iterate. *)
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let mflag = ref true in
    let d = ref !a in
    let result = ref None in
    let iter = ref 0 in
    while !result = None && !iter < max_iter do
      incr iter;
      if !fb = 0. || Float.abs (!b -. !a) < tol then result := Some !b
      else begin
        let s =
          if !fa <> !fc && !fb <> !fc then
            (* Inverse quadratic interpolation. *)
            (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
            +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
            +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
          else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
        in
        let lo_lim = ((3. *. !a) +. !b) /. 4. in
        let bad_interp =
          let between = if lo_lim < !b then s > lo_lim && s < !b else s > !b && s < lo_lim in
          (not between)
          || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.)
          || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.)
          || (!mflag && Float.abs (!b -. !c) < tol)
          || ((not !mflag) && Float.abs (!c -. !d) < tol)
        in
        let s =
          if bad_interp then begin
            mflag := true;
            (!a +. !b) /. 2.
          end
          else begin
            mflag := false;
            s
          end
        in
        let fs = f s in
        d := !c;
        c := !b;
        fc := !fb;
        if !fa *. fs < 0. then begin
          b := s;
          fb := fs
        end
        else begin
          a := s;
          fa := fs
        end;
        if Float.abs !fa < Float.abs !fb then begin
          let t = !a in
          a := !b;
          b := t;
          let t = !fa in
          fa := !fb;
          fb := t
        end
      end
    done;
    match !result with Some r -> Root r | None -> No_convergence !b
  end

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df x0 =
  let x = ref x0 in
  let result = ref None in
  let iter = ref 0 in
  while !result = None && !iter < max_iter do
    incr iter;
    let fx = f !x in
    if Float.abs fx <= tol then result := Some !x
    else begin
      let dfx = df !x in
      if Float.abs dfx < 1e-300 || not (Float.is_finite dfx) then iter := max_iter
      else begin
        let step = fx /. dfx in
        x := !x -. step;
        if Float.abs step <= tol *. (1. +. Float.abs !x) then
          if Float.abs (f !x) <= sqrt tol then result := Some !x
      end
    end
  done;
  match !result with Some r -> Root r | None -> No_convergence !x

let fixed_point ?(tol = 1e-12) ?(max_iter = 10_000) g x0 =
  let x = ref x0 in
  let result = ref None in
  let iter = ref 0 in
  while !result = None && !iter < max_iter do
    incr iter;
    let next = g !x in
    if Float.abs (next -. !x) <= tol *. (1. +. Float.abs next) then result := Some next;
    x := next
  done;
  match !result with Some r -> Root r | None -> No_convergence !x

let expand_bracket ?(factor = 1.6) ?(max_iter = 60) f ~lo ~hi =
  if not (lo < hi) then invalid_arg "Rootfind.expand_bracket: need lo < hi";
  let hi = ref hi in
  let flo = f lo in
  let rec go i =
    if i >= max_iter then None
    else if flo *. f !hi <= 0. then Some (lo, !hi)
    else begin
      hi := lo +. ((!hi -. lo) *. factor);
      go (i + 1)
    end
  in
  go 0
