lib/numerics/ascii_plot.mli:
