lib/numerics/rootfind.mli:
