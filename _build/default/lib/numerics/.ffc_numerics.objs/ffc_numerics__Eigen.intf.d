lib/numerics/eigen.mli: Complex Mat Vec
