lib/numerics/rng.mli:
