lib/numerics/eigen.ml: Array Complex Float Mat Stdlib Vec
