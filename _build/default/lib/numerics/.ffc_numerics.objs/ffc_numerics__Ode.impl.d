lib/numerics/ode.ml: Array Float Fun List
