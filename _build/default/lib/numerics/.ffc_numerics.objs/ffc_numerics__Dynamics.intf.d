lib/numerics/dynamics.mli:
