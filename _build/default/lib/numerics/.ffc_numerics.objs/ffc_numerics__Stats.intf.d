lib/numerics/stats.mli:
