lib/numerics/dynamics.ml: Array Float
