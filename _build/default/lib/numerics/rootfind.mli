(** Scalar root finding and fixed points.

    Used to invert congestion-signal functions B(C) (finding the steady
    congestion C_SS with B(C_SS) = b_SS) and to solve steady-state rate
    equations for single-connection baselines. *)

type outcome =
  | Root of float  (** Converged to a root within tolerance. *)
  | No_bracket  (** The supplied interval does not bracket a sign change. *)
  | No_convergence of float  (** Best iterate when the budget ran out. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> outcome
(** Bisection on [\[lo, hi\]]. Requires [f lo] and [f hi] of opposite sign
    (zero endpoints count as roots). Always converges when bracketed.
    [tol] (default [1e-12]) bounds the interval width. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> outcome
(** Brent's method: inverse quadratic interpolation safeguarded by
    bisection. Superlinear on smooth functions, never worse than
    bisection. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) ->
  float -> outcome
(** [newton ~f ~df x0] — Newton iteration from [x0]; reports
    [No_convergence] with the best iterate on derivative blow-ups. *)

val fixed_point : ?tol:float -> ?max_iter:int -> (float -> float) -> float -> outcome
(** [fixed_point g x0] iterates [x <- g x] until [|g x - x| <= tol]; the
    scalar analogue of the flow-control iteration. *)

val expand_bracket :
  ?factor:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float ->
  (float * float) option
(** Geometrically expands [\[lo, hi\]] rightward until it brackets a sign
    change of [f]; [None] if none is found within the budget. *)
