type t = float array

let make = Array.make
let init = Array.init
let dim = Array.length
let copy = Array.copy
let of_list = Array.of_list
let to_list = Array.to_list
let fill v x = Array.fill v 0 (Array.length v) x
let map = Array.map
let mapi = Array.mapi

let check_dims name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length a) (Array.length b))

let map2 f a b =
  check_dims "map2" a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale s v = Array.map (fun x -> s *. x) v

let axpy a x y =
  check_dims "axpy" x y;
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let dot a b =
  check_dims "dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let sum v = Array.fold_left ( +. ) 0. v

let mean v =
  if Array.length v = 0 then invalid_arg "Vec.mean: empty vector";
  sum v /. float_of_int (Array.length v)

let norm2 v = sqrt (dot v v)

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. v

let dist_inf a b = norm_inf (sub a b)
let dist2 a b = norm2 (sub a b)

let extremum name cmp v =
  if Array.length v = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector");
  Array.fold_left (fun acc x -> if cmp x acc then x else acc) v.(0) v

let max v = extremum "max" ( > ) v
let min v = extremum "min" ( < ) v

let arg_extremum name cmp v =
  if Array.length v = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector");
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if cmp v.(i) v.(!best) then best := i
  done;
  !best

let argmax v = arg_extremum "argmax" ( > ) v
let argmin v = arg_extremum "argmin" ( < ) v

let clamp_nonneg v = Array.map (fun x -> Float.max 0. x) v

let approx_equal ?(tol = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a b

let sorted_increasing v =
  let c = Array.copy v in
  Array.sort Float.compare c;
  c

let is_sorted_increasing v =
  let ok = ref true in
  for i = 0 to Array.length v - 2 do
    if v.(i) > v.(i + 1) then ok := false
  done;
  !ok

let pp ppf v =
  Format.fprintf ppf "[@[<hov>%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%.6g" x))
    v

let to_string v = Format.asprintf "%a" pp v
