(** Terminal plotting.

    The offline OCaml ecosystem has no plotting stack, so the "figures" of
    this reproduction are rendered as ASCII charts: time-series traces of
    rate trajectories, scatter/bifurcation diagrams, and horizontal bar
    charts for allocation comparisons.  Output is plain text suitable for
    logs and EXPERIMENTS.md. *)

type canvas

val canvas : ?width:int -> ?height:int -> unit -> canvas
(** A blank plotting surface (default 72x20 character cells). *)

val plot_points : canvas -> ?glyph:char -> (float * float) array -> unit
(** Adds points in data coordinates. Axis ranges auto-expand to include
    all data ever added to the canvas; rendering happens at [render]. *)

val plot_series : canvas -> ?glyph:char -> float array -> unit
(** Adds a series [y.(i)] plotted against index [i]. *)

val render :
  ?title:string -> ?x_label:string -> ?y_label:string -> canvas -> string
(** Draws all accumulated data with a frame, tick labels on both axes, and
    an optional title. An empty canvas renders as an empty frame. *)

val series :
  ?width:int -> ?height:int -> ?title:string -> ?x_label:string ->
  ?y_label:string -> float array -> string
(** One-shot line chart of a series. *)

val scatter :
  ?width:int -> ?height:int -> ?title:string -> ?x_label:string ->
  ?y_label:string -> (float * float) array -> string
(** One-shot scatter plot — this is how bifurcation diagrams are drawn. *)

val bars : ?width:int -> ?title:string -> (string * float) list -> string
(** Horizontal bar chart; labels are right-aligned, bar lengths are scaled
    to the maximum value. Values must be non-negative. *)
