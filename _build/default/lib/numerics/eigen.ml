(* Dense real eigensolver: balance -> Hessenberg -> double-shift QR.
   The QR iteration follows the classical `hqr` scheme (Wilkinson;
   Press et al.), rewritten 0-indexed with relative-epsilon deflation
   tests instead of the historical float-rounding tricks. *)

let eps = 1e-13

(* Diagonal similarity scaling so that row and column norms are comparable;
   improves eigenvalue accuracy on badly scaled matrices. *)
let balance a n =
  let radix = 2. in
  let sqrdx = radix *. radix in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let c = ref 0. and r = ref 0. in
      for j = 0 to n - 1 do
        if j <> i then begin
          c := !c +. Float.abs a.(j).(i);
          r := !r +. Float.abs a.(i).(j)
        end
      done;
      if !c <> 0. && !r <> 0. then begin
        let g = ref (!r /. radix) in
        let f = ref 1. in
        let s = !c +. !r in
        while !c < !g do
          f := !f *. radix;
          c := !c *. sqrdx
        done;
        g := !r *. radix;
        while !c > !g do
          f := !f /. radix;
          c := !c /. sqrdx
        done;
        if (!c +. !r) /. !f < 0.95 *. s then begin
          changed := true;
          let g = 1. /. !f in
          for j = 0 to n - 1 do
            a.(i).(j) <- a.(i).(j) *. g
          done;
          for j = 0 to n - 1 do
            a.(j).(i) <- a.(j).(i) *. !f
          done
        end
      end
    done
  done

(* Reduction to upper Hessenberg form by stabilized elementary similarity
   transformations (Gaussian elimination with pivoting). *)
let reduce_hessenberg a n =
  for m = 1 to n - 2 do
    let x = ref 0. in
    let pivot = ref m in
    for j = m to n - 1 do
      if Float.abs a.(j).(m - 1) > Float.abs !x then begin
        x := a.(j).(m - 1);
        pivot := j
      end
    done;
    if !pivot <> m then begin
      for j = m - 1 to n - 1 do
        let t = a.(!pivot).(j) in
        a.(!pivot).(j) <- a.(m).(j);
        a.(m).(j) <- t
      done;
      for j = 0 to n - 1 do
        let t = a.(j).(!pivot) in
        a.(j).(!pivot) <- a.(j).(m);
        a.(j).(m) <- t
      done
    end;
    if !x <> 0. then
      for i = m + 1 to n - 1 do
        let y = a.(i).(m - 1) in
        if y <> 0. then begin
          let y = y /. !x in
          for j = m to n - 1 do
            a.(i).(j) <- a.(i).(j) -. (y *. a.(m).(j))
          done;
          for j = 0 to n - 1 do
            a.(j).(m) <- a.(j).(m) +. (y *. a.(j).(i))
          done
        end
      done
  done;
  (* Clear the multipliers stored below the subdiagonal. *)
  for i = 0 to n - 1 do
    for j = 0 to i - 2 do
      a.(i).(j) <- 0.
    done
  done

let hessenberg m =
  if Mat.rows m <> Mat.cols m then invalid_arg "Eigen.hessenberg: not square";
  let n = Mat.rows m in
  let a = Mat.to_arrays m in
  reduce_hessenberg a n;
  Mat.of_arrays a

let sign_of magnitude reference =
  if reference >= 0. then Float.abs magnitude else -.Float.abs magnitude

(* Double-shift QR on an upper Hessenberg matrix, with deflation.  [a] is
   destroyed.  Returns eigenvalues as (re, im) pairs. *)
let hqr a n =
  let wr = Array.make n 0. and wi = Array.make n 0. in
  let anorm = ref 0. in
  for i = 0 to n - 1 do
    for j = Stdlib.max (i - 1) 0 to n - 1 do
      anorm := !anorm +. Float.abs a.(i).(j)
    done
  done;
  if !anorm = 0. then anorm := 1.;
  let nn = ref (n - 1) in
  let t = ref 0. in
  while !nn >= 0 do
    let its = ref 0 in
    let finished_block = ref false in
    while not !finished_block do
      (* Look for a single small subdiagonal element to split the matrix. *)
      let l = ref !nn in
      (try
         while !l >= 1 do
           let s =
             let s = Float.abs a.(!l - 1).(!l - 1) +. Float.abs a.(!l).(!l) in
             if s = 0. then !anorm else s
           in
           if Float.abs a.(!l).(!l - 1) <= eps *. s then begin
             a.(!l).(!l - 1) <- 0.;
             raise Exit
           end;
           decr l
         done
       with Exit -> ());
      let x = ref a.(!nn).(!nn) in
      if !l = !nn then begin
        (* One real root found. *)
        wr.(!nn) <- !x +. !t;
        wi.(!nn) <- 0.;
        decr nn;
        finished_block := true
      end
      else begin
        let y = ref a.(!nn - 1).(!nn - 1) in
        let w = ref (a.(!nn).(!nn - 1) *. a.(!nn - 1).(!nn)) in
        if !l = !nn - 1 then begin
          (* A 2x2 block: two roots, real or complex-conjugate. *)
          let p = ref (0.5 *. (!y -. !x)) in
          let q = (!p *. !p) +. !w in
          let z = ref (sqrt (Float.abs q)) in
          x := !x +. !t;
          if q >= 0. then begin
            z := !p +. sign_of !z !p;
            wr.(!nn - 1) <- !x +. !z;
            wr.(!nn) <- wr.(!nn - 1);
            if !z <> 0. then wr.(!nn) <- !x -. (!w /. !z);
            wi.(!nn - 1) <- 0.;
            wi.(!nn) <- 0.
          end
          else begin
            wr.(!nn - 1) <- !x +. !p;
            wr.(!nn) <- !x +. !p;
            wi.(!nn) <- -. !z;
            wi.(!nn - 1) <- !z
          end;
          nn := !nn - 2;
          finished_block := true
        end
        else begin
          if !its = 60 then failwith "Eigen.eigenvalues: QR did not converge";
          if !its = 10 || !its = 20 || !its = 30 || !its = 40 || !its = 50 then begin
            (* Exceptional shift to break symmetry-induced stalls. *)
            t := !t +. !x;
            for i = 0 to !nn do
              a.(i).(i) <- a.(i).(i) -. !x
            done;
            let s = Float.abs a.(!nn).(!nn - 1) +. Float.abs a.(!nn - 1).(!nn - 2) in
            x := 0.75 *. s;
            y := !x;
            w := -0.4375 *. s *. s
          end;
          incr its;
          (* Find two consecutive small subdiagonal elements: start row m. *)
          let m = ref (!nn - 2) in
          let p = ref 0. and q = ref 0. and r = ref 0. in
          (try
             while !m >= !l do
               let z = a.(!m).(!m) in
               let rr = !x -. z in
               let ss = !y -. z in
               p := (((rr *. ss) -. !w) /. a.(!m + 1).(!m)) +. a.(!m).(!m + 1);
               q := a.(!m + 1).(!m + 1) -. z -. rr -. ss;
               r := a.(!m + 2).(!m + 1);
               let s = Float.abs !p +. Float.abs !q +. Float.abs !r in
               p := !p /. s;
               q := !q /. s;
               r := !r /. s;
               if !m = !l then raise Exit;
               let u = Float.abs a.(!m).(!m - 1) *. (Float.abs !q +. Float.abs !r) in
               let v =
                 Float.abs !p
                 *. (Float.abs a.(!m - 1).(!m - 1) +. Float.abs z
                    +. Float.abs a.(!m + 1).(!m + 1))
               in
               if u <= eps *. v then raise Exit;
               decr m
             done;
             m := !l
           with Exit -> ());
          for i = !m + 2 to !nn do
            a.(i).(i - 2) <- 0.;
            if i <> !m + 2 then a.(i).(i - 3) <- 0.
          done;
          (* Double QR step on rows l..nn, columns m..nn. *)
          for k = !m to !nn - 1 do
            if k <> !m then begin
              p := a.(k).(k - 1);
              q := a.(k + 1).(k - 1);
              r := 0.;
              if k <> !nn - 1 then r := a.(k + 2).(k - 1);
              x := Float.abs !p +. Float.abs !q +. Float.abs !r;
              if !x <> 0. then begin
                p := !p /. !x;
                q := !q /. !x;
                r := !r /. !x
              end
            end;
            let s = sign_of (sqrt ((!p *. !p) +. (!q *. !q) +. (!r *. !r))) !p in
            if s <> 0. then begin
              if k = !m then begin
                if !l <> !m then a.(k).(k - 1) <- -.a.(k).(k - 1)
              end
              else a.(k).(k - 1) <- -.s *. !x;
              p := !p +. s;
              x := !p /. s;
              y := !q /. s;
              let z = !r /. s in
              q := !q /. !p;
              r := !r /. !p;
              for j = k to !nn do
                let pj = a.(k).(j) +. (!q *. a.(k + 1).(j)) in
                let pj =
                  if k <> !nn - 1 then begin
                    let pj = pj +. (!r *. a.(k + 2).(j)) in
                    a.(k + 2).(j) <- a.(k + 2).(j) -. (pj *. z);
                    pj
                  end
                  else pj
                in
                a.(k + 1).(j) <- a.(k + 1).(j) -. (pj *. !y);
                a.(k).(j) <- a.(k).(j) -. (pj *. !x)
              done;
              let mmin = Stdlib.min !nn (k + 3) in
              for i = !l to mmin do
                let pi = (!x *. a.(i).(k)) +. (!y *. a.(i).(k + 1)) in
                let pi =
                  if k <> !nn - 1 then begin
                    let pi = pi +. (z *. a.(i).(k + 2)) in
                    a.(i).(k + 2) <- a.(i).(k + 2) -. (pi *. !r);
                    pi
                  end
                  else pi
                in
                a.(i).(k + 1) <- a.(i).(k + 1) -. (pi *. !q);
                a.(i).(k) <- a.(i).(k) -. pi
              done
            end
          done
        end
      end
    done
  done;
  Array.init n (fun i -> { Complex.re = wr.(i); im = wi.(i) })

let eigenvalues m =
  if Mat.rows m <> Mat.cols m then invalid_arg "Eigen.eigenvalues: not square";
  let n = Mat.rows m in
  if n = 0 then [||]
  else if n = 1 then [| { Complex.re = Mat.get m 0 0; im = 0. } |]
  else begin
    let a = Mat.to_arrays m in
    balance a n;
    reduce_hessenberg a n;
    hqr a n
  end

let eigenvalues_sorted m =
  let ev = eigenvalues m in
  Array.sort
    (fun a b ->
      let c = Float.compare (Complex.norm b) (Complex.norm a) in
      if c <> 0 then c else Float.compare b.Complex.re a.Complex.re)
    ev;
  ev

let spectral_radius m =
  Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 0. (eigenvalues m)

let is_linearly_stable ?(tol = 1e-9) ?(ignore_unit = 0) m =
  let ev = eigenvalues_sorted m in
  let n = Array.length ev in
  if ignore_unit >= n then true
  else Complex.norm ev.(ignore_unit) < 1. -. tol

let power_iteration ?(max_iter = 10_000) ?(tol = 1e-12) m =
  if Mat.rows m <> Mat.cols m then invalid_arg "Eigen.power_iteration: not square";
  let n = Mat.rows m in
  if n = 0 then None
  else begin
    (* A fixed, slightly asymmetric start vector avoids starting orthogonal
       to the dominant eigenvector for the structured matrices tested. *)
    let v = ref (Array.init n (fun i -> 1. +. (0.01 *. float_of_int i))) in
    let lambda = ref 0. in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iter do
      incr iter;
      let w = Mat.mul_vec m !v in
      let norm = Vec.norm2 w in
      if norm < 1e-300 then begin
        lambda := 0.;
        converged := true
      end
      else begin
        let w = Vec.scale (1. /. norm) w in
        let next = Vec.dot w (Mat.mul_vec m w) in
        if Float.abs (next -. !lambda) <= tol *. (1. +. Float.abs next) then
          converged := true;
        lambda := next;
        v := w
      end
    done;
    if !converged then Some (!lambda, !v) else None
  end

let triangular_eigenvalues m =
  if Mat.is_triangular m then Some (Mat.diagonal m) else None
