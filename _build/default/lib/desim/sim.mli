(** Discrete-event simulation core: a clock and an event calendar.

    Events are thunks executed in timestamp order (ties broken by
    scheduling order); executing an event may schedule further events.
    Time never flows backwards. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time (0 before the first event). *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Raises [Invalid_argument] when [at] is in the past or non-finite. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** [delay] must be non-negative and finite. *)

val step : t -> bool
(** Executes the next event; [false] when the calendar is empty. *)

val run : ?until:float -> t -> unit
(** Executes events until the calendar empties or the next event is past
    [until]; the clock is then advanced to [until] when given (so
    time-weighted measurements can close their window there). *)

val pending : t -> int
(** Number of scheduled events. *)
