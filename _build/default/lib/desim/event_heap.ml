type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let new_cap = Stdlib.max 16 (cap * 2) in
    let data = Array.make new_cap t.data.(0) in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && precedes t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && precedes t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~time payload =
  if not (Float.is_finite time) then invalid_arg "Event_heap.push: non-finite time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.len = 0 && Array.length t.data = 0 then t.data <- Array.make 16 entry
  else grow t;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop_min t =
  if t.len = 0 then None
  else begin
    let min = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (min.time, min.payload)
  end

let peek_min t = if t.len = 0 then None else Some (t.data.(0).time, t.data.(0).payload)

let size t = t.len

let is_empty t = t.len = 0
