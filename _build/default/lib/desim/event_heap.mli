(** Binary min-heap of timestamped events.

    Orders by time, breaking ties by insertion sequence so that events
    scheduled earlier fire earlier — a determinism guarantee the
    simulator's reproducibility relies on. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** [time] must be finite. *)

val pop_min : 'a t -> (float * 'a) option
(** Removes and returns the earliest event; [None] when empty. *)

val peek_min : 'a t -> (float * 'a) option

val size : 'a t -> int

val is_empty : 'a t -> bool
