type t = {
  id : int;
  conn : int;
  born : float;
  mutable klass : int;
  mutable work : float;
}

let create ~id ~conn ~born = { id; conn; born; klass = 0; work = 0. }
