(** Poisson packet sources (paper §2.1).

    A source emits packets for one connection with exponential
    interarrival gaps.  The rate is adjustable at runtime ({!set_rate}),
    which is what closed-loop flow control drives: a change takes effect
    from the next scheduled gap (at most one in-flight interarrival uses
    the old rate).  An optional [classify] hook assigns each packet its
    priority class at emission — the Fair Share thinning installs its
    per-gateway class draw at injection instead, so the source-level hook
    is mainly for single-gateway tests. *)

type t

val create :
  sim:Sim.t ->
  rng:Ffc_numerics.Rng.t ->
  conn:int ->
  rate:float ->
  ?classify:(Ffc_numerics.Rng.t -> int) ->
  emit:(Packet.t -> unit) ->
  unit ->
  t
(** [rate] must be non-negative; a zero-rate source never emits. The
    source starts emitting when [start] is called. *)

val start : t -> unit
(** Schedules the first arrival. Idempotent. *)

val rate : t -> float
(** The current sending rate. *)

val set_rate : t -> float -> unit
(** Changes the sending rate.  Raising the rate of a stopped (zero-rate)
    source restarts it; lowering it to zero lets the pending arrival fire
    and then stops.  Rates must be finite and non-negative. *)

val emitted : t -> int
(** Packets emitted so far. *)
