lib/desim/qdisc.ml: Event_heap Float Hashtbl List Packet Queue
