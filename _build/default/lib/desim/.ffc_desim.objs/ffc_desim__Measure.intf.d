lib/desim/measure.mli:
