lib/desim/netsim.mli: Ffc_topology Network
