lib/desim/qdisc.mli: Packet
